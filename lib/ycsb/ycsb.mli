(** YCSB-based microbenchmark workloads (paper §6.1).

    An initialization phase inserts [num_keys] entries (measured and
    reported as the insert-only workload), then a measurement phase runs
    [num_ops] operations of one of YCSB's core mixes with Zipfian key
    popularity: read-only (C), read-write (A, 50/50), scan-insert (E,
    95/5), or the htap mix — workload A with a periodic analytical pass
    over a pinned index snapshot (DESIGN.md §16). *)

type workload = Insert_only | Read_only | Read_write | Scan_insert | Htap

val htap_analytic_period : int
(** OLTP operations between analytical passes in the [Htap] mix. *)

val workload_name : workload -> string
val all_workloads : workload list

type spec = {
  workload : workload;
  key_type : Hi_util.Key_codec.key_type;
  num_keys : int;  (** entries loaded in the initialization phase *)
  num_ops : int;  (** operations in the measurement phase *)
  values_per_key : int;  (** 1 for primary-index runs, 10 for secondary (App E) *)
  max_scan_len : int;  (** scan lengths are uniform in [1, max_scan_len] *)
  theta : float;  (** Zipfian skew *)
  seed : int;
}

val default_spec : spec

type result = {
  spec : spec;
  load_seconds : float;
  run_seconds : float;
  load_mops : float;  (** million inserts/s during the load *)
  run_mops : float;  (** million ops/s in the measurement phase *)
  memory_bytes : int;  (** measured at the end of the trial, like the paper *)
}

val run : ?primary:bool -> Hi_index.Index_intf.index -> spec -> result
(** Run [spec] against any index behind the uniform interface.  [primary]
    (default true) selects unique-insert semantics; [false] loads
    [values_per_key] values per key with blind inserts (Appendix E). *)

val generate_keys : spec -> string array
(** The key population a run would use (loaded keys first, then the
    scan-insert growth keys). *)
