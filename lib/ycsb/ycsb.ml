(* YCSB-based microbenchmark workloads (paper §6.1).

   Mirrors the paper's setup: an initialization phase inserts N entries
   (measured and reported as the insert-only workload), then a measurement
   phase executes M operations drawn from one of YCSB's core mixes with a
   Zipfian key-popularity distribution:

     insert-only   — the load phase itself
     read-only     — workload C
     read-write    — workload A (50 % reads / 50 % updates)
     scan-insert   — workload E (95 % short scans / 5 % inserts)
     htap          — workload A plus a periodic analytical pass: every
                     1024 ops the driver pins an index snapshot and folds
                     a count/sum over it (the hybrid-index HTAP story:
                     analytics read the compact static stage while the
                     OLTP mix keeps writing; DESIGN.md §16)

   Key types: 64-bit random integers, 64-bit monotonically increasing
   integers, and ~30-byte emails.  Values are 64-bit "tuple pointers". *)

open Hi_util

type workload = Insert_only | Read_only | Read_write | Scan_insert | Htap

let workload_name = function
  | Insert_only -> "insert-only"
  | Read_only -> "read-only"
  | Read_write -> "read/write"
  | Scan_insert -> "scan/insert"
  | Htap -> "htap"

(* [Htap] is not a paper workload, so the Fig 8/9 sweeps exclude it. *)
let all_workloads = [ Insert_only; Read_write; Read_only; Scan_insert ]

(* OLTP ops between analytical passes in the [Htap] mix. *)
let htap_analytic_period = 1024

type spec = {
  workload : workload;
  key_type : Key_codec.key_type;
  num_keys : int; (* entries loaded in the initialization phase *)
  num_ops : int; (* operations in the measurement phase *)
  values_per_key : int; (* 1 for primary-index runs, 10 for secondary (App E) *)
  max_scan_len : int;
  theta : float;
  seed : int;
}

let default_spec =
  {
    workload = Read_only;
    key_type = Key_codec.Rand_int;
    num_keys = 100_000;
    num_ops = 100_000;
    values_per_key = 1;
    max_scan_len = 100;
    theta = Zipf.default_theta;
    seed = 42;
  }

type result = {
  spec : spec;
  load_seconds : float;
  run_seconds : float;
  load_mops : float; (* million inserts per second during the load *)
  run_mops : float; (* million operations per second in the measurement phase *)
  memory_bytes : int; (* measured at the end of the trial, like the paper *)
}

let mops ops seconds = if seconds <= 0.0 then 0.0 else float_of_int ops /. seconds /. 1.0e6

(* Extra keys consumed by the insert fraction of scan/insert runs. *)
let extra_keys spec = if spec.workload = Scan_insert then spec.num_ops else 0

let generate_keys spec = Key_codec.generate_keys ~seed:spec.seed spec.key_type (spec.num_keys + extra_keys spec)

(* Run the workload against any index behind the uniform interface.
   [primary] selects unique-insert semantics (and values_per_key = 1). *)
let run ?(primary = true) (module I : Hi_index.Index_intf.INDEX) spec =
  let keys = generate_keys spec in
  let t = I.create () in
  (* --- initialization phase (the insert-only workload) --- *)
  let t0 = Unix.gettimeofday () in
  for i = 0 to spec.num_keys - 1 do
    if primary then ignore (I.insert_unique t keys.(i) i)
    else
      for v = 0 to spec.values_per_key - 1 do
        I.insert t keys.(i) ((i * spec.values_per_key) + v)
      done
  done;
  let load_seconds = Unix.gettimeofday () -. t0 in
  let load_ops = spec.num_keys * if primary then 1 else spec.values_per_key in
  (* --- measurement phase --- *)
  let rng = Xorshift.create (spec.seed + 1) in
  let zipf = Zipf.create ~theta:spec.theta ~items:spec.num_keys rng in
  let next_insert = ref spec.num_keys in
  let t1 = Unix.gettimeofday () in
  (match spec.workload with
  | Insert_only -> () (* the load phase was the workload *)
  | Read_only ->
    for _ = 1 to spec.num_ops do
      ignore (I.find t keys.(Zipf.next zipf))
    done
  | Read_write ->
    for op = 1 to spec.num_ops do
      let k = keys.(Zipf.next zipf) in
      if op land 1 = 0 then ignore (I.find t k) else ignore (I.update t k op)
    done
  | Scan_insert ->
    for op = 1 to spec.num_ops do
      if Xorshift.int rng 100 < 5 && !next_insert < Array.length keys then begin
        let k = keys.(!next_insert) in
        incr next_insert;
        if primary then ignore (I.insert_unique t k op) else I.insert t k op
      end
      else begin
        let len = 1 + Xorshift.int rng spec.max_scan_len in
        ignore (I.scan_from t keys.(Zipf.next zipf) len)
      end
    done
  | Htap ->
    for op = 1 to spec.num_ops do
      if op mod htap_analytic_period = 0 then begin
        (* the analytical pass: pin a snapshot, fold count+sum over every
           entry, release — the in-index equivalent of a Scan_agg *)
        let snap = I.snapshot t in
        let count = ref 0 and sum = ref 0 in
        snap.Hi_index.Index_intf.snap_iter "" (fun _k vs ->
            count := !count + Array.length vs;
            Array.iter (fun v -> sum := !sum + v) vs;
            true);
        ignore !count;
        ignore !sum;
        snap.Hi_index.Index_intf.snap_release ()
      end
      else begin
        let k = keys.(Zipf.next zipf) in
        if op land 1 = 0 then ignore (I.find t k) else ignore (I.update t k op)
      end
    done);
  let run_seconds = Unix.gettimeofday () -. t1 in
  let measured_ops = if spec.workload = Insert_only then load_ops else spec.num_ops in
  let measured_seconds = if spec.workload = Insert_only then load_seconds else run_seconds in
  {
    spec;
    load_seconds;
    run_seconds;
    load_mops = mops load_ops load_seconds;
    run_mops = mops measured_ops measured_seconds;
    memory_bytes = I.memory_bytes t;
  }
