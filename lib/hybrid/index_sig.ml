(** Re-export of the canonical uniform index interface plus the adapters
    that package plain and hybrid structures behind it.

    The module type itself lives in {!Hi_index.Index_intf.INDEX} — the one
    canonical home of the index signatures — so the DBMS engine, the
    benchmarks and the check harness all program against the same
    definition; this module keeps the historical [Index_sig.INDEX] path
    working and holds the functors that need the hybrid machinery. *)

module type INDEX = Hi_index.Index_intf.INDEX

type index = (module INDEX)

(** Adapt a plain dynamic structure to {!INDEX}. *)
module Of_dynamic (D : Hi_index.Index_intf.DYNAMIC) : INDEX = struct
  include D

  let insert_unique t key value =
    if D.mem t key then false
    else begin
      D.insert t key value;
      true
    end

  let flush _ = ()
  let merge_pending _ = false
  let check_invariants = D.check_structure
end

(** Instantiate a hybrid index with a fixed configuration as {!INDEX}. *)
module Of_hybrid
    (D : Hi_index.Index_intf.DYNAMIC)
    (S : Hi_index.Index_intf.STATIC)
    (C : sig
      val config : Hybrid.config
    end) : INDEX = struct
  module H = Hybrid.Make (D) (S)

  type t = H.t

  let name = H.name
  let create () = H.create ~config:C.config ()
  let insert = H.insert
  let insert_unique = H.insert_unique
  let mem = H.mem
  let find = H.find
  let find_all = H.find_all
  let update = H.update
  let delete = H.delete
  let delete_value = H.delete_value
  let scan_from = H.scan_from
  let iter_sorted = H.iter_sorted
  let entry_count = H.entry_count
  let clear = H.clear
  let memory_bytes = H.memory_bytes
  let flush = H.force_merge
  let merge_pending = H.merge_pending
  let check_invariants = H.check_invariants
end
