(** A uniform first-class-module interface over plain dynamic indexes and
    hybrid indexes, so benchmarks and the DBMS engine can swap index
    implementations freely (paper §6.4 compares each hybrid index against
    its original structure through exactly this kind of common API). *)

module type INDEX = sig
  type t

  val name : string
  val create : unit -> t

  val insert : t -> string -> int -> unit
  (** Blind (secondary-style) insert. *)

  val insert_unique : t -> string -> int -> bool
  (** Primary-style insert: [false] if the key already exists. *)

  val mem : t -> string -> bool
  val find : t -> string -> int option
  val find_all : t -> string -> int list
  val update : t -> string -> int -> bool
  val delete : t -> string -> bool
  val delete_value : t -> string -> int -> bool
  val scan_from : t -> string -> int -> (string * int) list
  val iter_sorted : t -> (string -> int array -> unit) -> unit
  val entry_count : t -> int
  val clear : t -> unit
  val memory_bytes : t -> int

  val flush : t -> unit
  (** Force pending migrations (a merge for hybrid indexes; no-op for plain
      structures). *)

  val merge_pending : t -> bool
  (** True when a background migration is due ([false] for plain
      structures).  Lets an owner running with deferred merges poll and
      [flush] off the transaction critical path. *)

  val check_invariants : t -> string list
  (** Structural self-check, [] when consistent.  For hybrid indexes this
      verifies the dual-stage invariants (see {!Hybrid.S.check_invariants});
      plain structures have nothing to check. *)
end

type index = (module INDEX)

(** Adapt a plain dynamic structure to {!INDEX}. *)
module Of_dynamic (D : Hi_index.Index_intf.DYNAMIC) : INDEX = struct
  include D

  let insert_unique t key value =
    if D.mem t key then false
    else begin
      D.insert t key value;
      true
    end

  let flush _ = ()
  let merge_pending _ = false
  let check_invariants = D.check_structure
end

(** Instantiate a hybrid index with a fixed configuration as {!INDEX}. *)
module Of_hybrid
    (D : Hi_index.Index_intf.DYNAMIC)
    (S : Hi_index.Index_intf.STATIC)
    (C : sig
      val config : Hybrid.config
    end) : INDEX = struct
  module H = Hybrid.Make (D) (S)

  type t = H.t

  let name = H.name
  let create () = H.create ~config:C.config ()
  let insert = H.insert
  let insert_unique = H.insert_unique
  let mem = H.mem
  let find = H.find
  let find_all = H.find_all
  let update = H.update
  let delete = H.delete
  let delete_value = H.delete_value
  let scan_from = H.scan_from
  let iter_sorted = H.iter_sorted
  let entry_count = H.entry_count
  let clear = H.clear
  let memory_bytes = H.memory_bytes
  let flush = H.force_merge
  let merge_pending = H.merge_pending
  let check_invariants = H.check_invariants
end
