(** Re-export of the canonical uniform index interface plus the adapters
    that package plain and hybrid structures behind it.

    The module type itself lives in {!Hi_index.Index_intf.INDEX} — the one
    canonical home of the index signatures — so the DBMS engine, the
    benchmarks and the check harness all program against the same
    definition; this module keeps the historical [Index_sig.INDEX] path
    working and holds the functors that need the hybrid machinery. *)

module type INDEX = Hi_index.Index_intf.INDEX

type index = (module INDEX)

(** Adapt a plain dynamic structure to {!INDEX}. *)
module Of_dynamic (D : Hi_index.Index_intf.DYNAMIC) : INDEX = struct
  (* Wrapped rather than [include]d: the uniform interface carries
     snapshot state — a generation and a pin count (DESIGN.md §16) — that
     the plain structure does not track. *)
  type t = { d : D.t; mutable gen : int; mutable pinned : int }

  let name = D.name
  let create () = { d = D.create (); gen = 0; pinned = 0 }
  let bump t = t.gen <- t.gen + 1

  let insert t key value =
    bump t;
    D.insert t.d key value

  let insert_unique t key value =
    if D.mem t.d key then false
    else begin
      bump t;
      D.insert t.d key value;
      true
    end

  let mem t key = D.mem t.d key
  let find t key = D.find t.d key
  let find_all t key = D.find_all t.d key

  let update t key value =
    let r = D.update t.d key value in
    if r then bump t;
    r

  let delete t key =
    let r = D.delete t.d key in
    if r then bump t;
    r

  let delete_value t key value =
    let r = D.delete_value t.d key value in
    if r then bump t;
    r

  let scan_from t key n = D.scan_from t.d key n
  let iter_sorted t f = D.iter_sorted t.d f
  let entry_count t = D.entry_count t.d

  let clear t =
    bump t;
    D.clear t.d

  let memory_bytes t = D.memory_bytes t.d
  let flush _ = ()
  let merge_pending _ = false
  let check_invariants t = D.check_structure t.d

  (* Every write is a trivial "merge boundary" for a single-stage
     structure: a snapshot materializes the current contents and the
     generation advances per mutation, so equal generations really do
     mean identical data. *)
  let snapshot t =
    let out = ref [] in
    D.iter_sorted t.d (fun k vs -> out := (k, Array.copy vs) :: !out);
    let entries = Array.of_list (List.rev !out) in
    t.pinned <- t.pinned + 1;
    Hi_index.Index_intf.materialized_snapshot ~generation:t.gen
      ~release:(fun () -> t.pinned <- t.pinned - 1)
      entries

  let generation t = t.gen
  let pinned_snapshots t = t.pinned
end

(** Instantiate a hybrid index with a fixed configuration as {!INDEX}. *)
module Of_hybrid
    (D : Hi_index.Index_intf.DYNAMIC)
    (S : Hi_index.Index_intf.STATIC)
    (C : sig
      val config : Hybrid.config
    end) : INDEX = struct
  module H = Hybrid.Make (D) (S)

  type t = H.t

  let name = H.name
  let create () = H.create ~config:C.config ()
  let insert = H.insert
  let insert_unique = H.insert_unique
  let mem = H.mem
  let find = H.find
  let find_all = H.find_all
  let update = H.update
  let delete = H.delete
  let delete_value = H.delete_value
  let scan_from = H.scan_from
  let iter_sorted = H.iter_sorted
  let entry_count = H.entry_count
  let clear = H.clear
  let memory_bytes = H.memory_bytes
  let flush = H.force_merge
  let merge_pending = H.merge_pending
  let check_invariants = H.check_invariants
  let snapshot = H.snapshot
  let generation = H.generation
  let pinned_snapshots = H.pinned_snapshots
end
