(** Hybrid index — the dual-stage architecture of paper §3 (Fig 1).

    All writes go to a small write-optimized dynamic stage; the bulk of
    the entries live in a compact read-only static stage.  A Bloom filter
    over the dynamic-stage keys lets most point queries search a single
    stage.  When the merge trigger fires, dynamic-stage entries migrate
    into the static stage in one sorted batch (§5). *)

type kind = Primary | Secondary

(** §5.2: what to merge. *)
type merge_strategy =
  | Merge_all  (** dynamic stage is a write buffer: migrate everything *)
  | Merge_cold  (** dynamic stage is a write-back cache: keep the hottest half *)

(** §5.2: when to merge. *)
type merge_trigger =
  | Ratio of int  (** merge when dynamic * ratio >= static (default, ratio 10) *)
  | Constant of int  (** merge when dynamic size reaches a constant *)

type config = {
  kind : kind;
  strategy : merge_strategy;
  trigger : merge_trigger;
  use_bloom : bool;
  bloom_fpr : float;
  min_merge_size : int;  (** floor below which the ratio trigger stays quiet *)
  defer_merge : bool;
      (** when set, writes never merge inline; the owner polls
          [merge_pending] and calls [force_merge] off the critical path
          (the partition domain's background scheduler, DESIGN.md §11) *)
}

val default_config : config

type stats = {
  merges : int;
  total_merge_seconds : float;
  last_merge_seconds : float;
  merge_entries_moved : int;  (** entries migrated into the static stage *)
  merge_bytes_moved : int;  (** key + value bytes those entries carried *)
  bloom_negative_skips : int;  (** dynamic-stage searches avoided *)
  bloom_checks : int;  (** filter consultations *)
  bloom_false_positives : int;  (** positive answers the dynamic stage refuted *)
  bloom_measured_fpr : float;  (** false positives / (false positives + skips) *)
  bloom_rebuilds : int;  (** adaptive growths when the load outran capacity *)
}

(** Public operations of a hybrid index. *)
module type S = sig
  type t

  val name : string
  val create : ?config:config -> unit -> t

  val insert : t -> string -> int -> unit
  (** Secondary-style blind insert into the dynamic stage. *)

  val insert_unique : t -> string -> int -> bool
  (** Primary-style insert with the two-stage uniqueness check (§3). *)

  val mem : t -> string -> bool
  val find : t -> string -> int option
  val find_all : t -> string -> int list
  val update : t -> string -> int -> bool
  val delete : t -> string -> bool
  val delete_value : t -> string -> int -> bool
  val scan_from : t -> string -> int -> (string * int) list
  val iter_sorted : t -> (string -> int array -> unit) -> unit

  val force_merge : t -> unit
  (** Run the merge immediately regardless of the trigger. *)

  val merge_pending : t -> bool
  (** True when the configured trigger says a merge is due.  With
      [defer_merge] set, this is how the owning domain's scheduler decides
      to call [force_merge]. *)

  val entry_count : t -> int
  val dynamic_entry_count : t -> int
  val static_entry_count : t -> int
  val memory_bytes : t -> int
  val dynamic_memory_bytes : t -> int
  val static_memory_bytes : t -> int
  val bloom_memory_bytes : t -> int
  val clear : t -> unit
  val stats : t -> stats

  val merge_log : t -> (int * float) list
  (** One entry per merge, oldest first: (static-stage bytes before the
      merge, merge duration in seconds) — the Fig 6 series. *)

  val check_invariants : t -> string list
  (** Dual-stage invariant check, [] when consistent.  Meaningful after a
      {!force_merge}: every tombstone must shadow a static-resident key,
      and (primary indexes) no key may be live in both stages — between
      merges a primary-key delete+reinsert legitimately leaves a stale,
      logically-dead static entry behind, which the next merge collects. *)

  val snapshot : t -> Hi_index.Index_intf.snapshot
  (** Pin a point-in-time view of both stages for analytical scans
      (DESIGN.md §16).  The static stage is pinned by reference — a
      concurrent merge swaps it wholesale rather than mutating it, so the
      pinned arrays stay intact until release — and dynamic-stage entries
      plus tombstones are copied, making the capture O(dynamic stage). *)

  val generation : t -> int
  (** Merge count — the [snap_generation] a capture taken now carries. *)

  val pinned_snapshots : t -> int
  (** Snapshots captured but not yet released. *)
end

(** Apply the dual-stage transformation to a (dynamic, static) structure
    pair. *)
module Make (D : Hi_index.Index_intf.DYNAMIC) (S : Hi_index.Index_intf.STATIC) : S
