(** Incremental (non-blocking-style) merge — the first item of the paper's
    future work (§9).

    The blocking merge of §5 pauses all queries for a time linear in the
    static-stage size (the MAX-latency blowup of Table 3).  This variant
    bounds the work any single operation performs: when the trigger fires
    the dynamic stage is snapshotted into a sorted frozen run and emptied,
    and every subsequent operation advances the merge by at most
    [config.step] entries until the new static stage is swapped in.
    Merge-cold is not supported (the frozen run is immutable by design).

    In a single-threaded runtime "non-blocking" means bounded pauses; a
    concurrent version would do the same steps on a background thread. *)

(** A static stage that also exposes a lazy entry cursor. *)
module type STATIC_SEQ = sig
  include Hi_index.Index_intf.STATIC

  val to_seq : t -> (string * int array) Seq.t
end

type config = {
  trigger : Hybrid.merge_trigger;
  kind : Hybrid.kind;
  use_bloom : bool;
  bloom_fpr : float;
  min_merge_size : int;
  step : int;  (** max entries emitted per operation while a merge is active *)
}

val default_config : config

type stats = {
  merges_started : int;
  merges_completed : int;
  max_entries_per_op : int;  (** peak merge work performed by one operation *)
  total_merge_seconds : float;
}

(** Public operations of an incremental-merge hybrid index.  A subset of
    {!Hybrid.S}: no [delete_value], no grouped ordered iteration, no
    [clear] (see [Hi_check.Adapters.Of_incremental] for the synthesized
    pieces). *)
module type S = sig
  type t

  val name : string
  val create : ?config:config -> unit -> t

  val insert : t -> string -> int -> unit
  val insert_unique : t -> string -> int -> bool
  val mem : t -> string -> bool
  val find : t -> string -> int option
  val find_all : t -> string -> int list
  val update : t -> string -> int -> bool
  val delete : t -> string -> bool
  val scan_from : t -> string -> int -> (string * int) list

  val drain : t -> unit
  (** Run any active merge to completion (e.g. before a measurement). *)

  val force_merge : t -> unit
  (** {!drain}, then start and drain one more merge if there is pending
      dynamic-stage data or tombstones. *)

  val merging : t -> bool
  (** True while a merge is in flight. *)

  val entry_count : t -> int
  val dynamic_entry_count : t -> int
  val memory_bytes : t -> int
  val stats : t -> stats

  val snapshot : t -> Hi_index.Index_intf.snapshot
  (** Pin a point-in-time view for analytical scans (DESIGN.md §16):
      dynamic-stage and frozen-run entries are copied, the static stage
      is pinned by reference (merge completion swaps it wholesale), and
      both tombstone generations are applied as of capture. *)

  val generation : t -> int
  (** Completed-merge count — the [snap_generation] a capture carries. *)

  val pinned_snapshots : t -> int
  (** Snapshots captured but not yet released. *)
end

module Make (D : Hi_index.Index_intf.DYNAMIC) (S : STATIC_SEQ) : S

(** The four instantiations evaluated by the latency experiments. *)

module Incremental_btree : S
module Incremental_skiplist : S
module Incremental_masstree : S
module Incremental_art : S
