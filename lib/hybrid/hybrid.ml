(* Hybrid index — the dual-stage architecture of paper §3 (Fig 1).

   All writes go to a small write-optimized dynamic stage; the bulk of the
   entries live in a compact read-only static stage.  A Bloom filter over
   the dynamic-stage keys lets most point queries search a single stage.
   When the merge trigger fires, dynamic-stage entries migrate into the
   static stage in one sorted batch (§5).

   Semantics follow §3 precisely:
   - primary-index inserts enforce key uniqueness across both stages;
   - primary-index updates of static-resident keys insert a fresh entry
     into the dynamic stage, logically overwriting the static value until
     the next merge garbage-collects it;
   - secondary-index updates modify values in place even in the static
     stage, so one key is never live in both stages with divergent values;
   - deletes in the static stage only mark a tombstone, collected at the
     next merge. *)

open Hi_util
open Hi_index

type kind = Primary | Secondary

(* §5.2: what to merge *)
type merge_strategy =
  | Merge_all (* dynamic stage is a write buffer: migrate everything *)
  | Merge_cold (* dynamic stage is a write-back cache: keep the hottest half *)

(* §5.2: when to merge *)
type merge_trigger =
  | Ratio of int (* merge when dynamic * ratio >= static (default, ratio 10) *)
  | Constant of int (* merge when dynamic size reaches a constant *)

type config = {
  kind : kind;
  strategy : merge_strategy;
  trigger : merge_trigger;
  use_bloom : bool;
  bloom_fpr : float;
  min_merge_size : int; (* floor below which the ratio trigger stays quiet *)
  defer_merge : bool;
      (* when set, writes never merge inline; the owner polls
         [merge_pending] and calls [force_merge] off the critical path
         (the partition domain's background scheduler, DESIGN.md §11) *)
}

let default_config =
  {
    kind = Primary;
    strategy = Merge_all;
    trigger = Ratio 10;
    use_bloom = true;
    bloom_fpr = 0.01;
    min_merge_size = 4096;
    defer_merge = false;
  }

type stats = {
  merges : int;
  total_merge_seconds : float;
  last_merge_seconds : float;
  merge_entries_moved : int; (* entries migrated into the static stage *)
  merge_bytes_moved : int; (* key + value bytes those entries carried *)
  bloom_negative_skips : int; (* dynamic-stage searches avoided *)
  bloom_checks : int; (* filter consultations *)
  bloom_false_positives : int; (* positive answers the dynamic stage refuted *)
  bloom_measured_fpr : float; (* false positives / (false positives + skips) *)
  bloom_rebuilds : int; (* adaptive growths when the load outran capacity *)
}

(** Public operations of a hybrid index. *)
module type S = sig
  type t

  val name : string
  val create : ?config:config -> unit -> t

  val insert : t -> string -> int -> unit
  (** Secondary-style blind insert into the dynamic stage. *)

  val insert_unique : t -> string -> int -> bool
  (** Primary-style insert with the two-stage uniqueness check (§3). *)

  val mem : t -> string -> bool
  val find : t -> string -> int option
  val find_all : t -> string -> int list
  val update : t -> string -> int -> bool
  val delete : t -> string -> bool
  val delete_value : t -> string -> int -> bool
  val scan_from : t -> string -> int -> (string * int) list
  val iter_sorted : t -> (string -> int array -> unit) -> unit

  val force_merge : t -> unit

  val merge_pending : t -> bool
  (* True when the configured trigger says a merge is due.  With
     [defer_merge] set, this is how the owning domain's scheduler decides
     to call [force_merge]. *)
  (** Run the merge immediately regardless of the trigger. *)

  val entry_count : t -> int
  val dynamic_entry_count : t -> int
  val static_entry_count : t -> int
  val memory_bytes : t -> int
  val dynamic_memory_bytes : t -> int
  val static_memory_bytes : t -> int
  val bloom_memory_bytes : t -> int
  val clear : t -> unit
  val stats : t -> stats

  val merge_log : t -> (int * float) list
  (** One entry per merge, oldest first: (static-stage bytes before the
      merge, merge duration in seconds) — the Fig 6 series. *)

  val check_invariants : t -> string list
  (** Dual-stage invariant check, [] when consistent.  Meaningful after a
      {!force_merge}: every tombstone must shadow a static-resident key,
      and (primary indexes) no key may be live in both stages — between
      merges a primary-key delete+reinsert legitimately leaves a stale,
      logically-dead static entry behind, which the next merge collects. *)

  val snapshot : t -> Index_intf.snapshot
  (** Pin a point-in-time view of both stages for analytical scans
      (DESIGN.md §16).  The static stage is pinned by reference — a
      concurrent merge swaps [stat] wholesale rather than mutating it, so
      the pinned arrays stay intact until the snapshot is released — and
      dynamic-stage entries plus tombstones are copied, making the
      capture O(dynamic stage), independent of static-stage size. *)

  val generation : t -> int
  (** Merge count — the [snap_generation] a capture taken now carries.
      Static-stage contents only change at merges, so equal generations
      mean the bulk of the snapshot data is shared. *)

  val pinned_snapshots : t -> int
  (** Snapshots captured but not yet released. *)
end

module Make (D : Index_intf.DYNAMIC) (S : Index_intf.STATIC) : S = struct
  type t = {
    config : config;
    dyn : D.t;
    mutable stat : S.t;
    mutable bloom : Bloom.t;
    tombstones : (string, unit) Hashtbl.t; (* deleted static-stage keys *)
    access : (string, int) Hashtbl.t; (* last-access op number (merge-cold) *)
    mutable ops : int;
    mutable merges : int;
    mutable total_merge_seconds : float;
    mutable last_merge_seconds : float;
    mutable merge_entries_moved : int;
    mutable merge_bytes_moved : int;
    mutable bloom_negative_skips : int;
    mutable bloom_checks : int;
    mutable bloom_false_positives : int;
    mutable bloom_rebuilds : int;
    mutable merge_log : (int * float) list; (* newest first internally *)
    mutable pinned : int; (* live snapshots (DESIGN.md §16) *)
  }

  let name = "hybrid-" ^ D.name

  (* Registry handles, shared by every instance of this instantiation:
     counters aggregate across instances, per-stage gauges are
     last-writer-wins (refreshed on merge and on [stats]). *)
  let mscope = Metrics.scope ~labels:[ ("index", name) ] "hybrid"
  let m_merges = Metrics.counter mscope "merges"
  let m_merge_seconds = Metrics.histogram mscope "merge_seconds"
  let m_merge_entries = Metrics.counter mscope "merge_entries_moved"
  let m_merge_bytes = Metrics.counter mscope "merge_bytes_moved"
  let m_bloom_checks = Metrics.counter mscope "bloom_checks"
  let m_bloom_skips = Metrics.counter mscope "bloom_negative_skips"
  let m_bloom_fp = Metrics.counter mscope "bloom_false_positives"
  let m_bloom_rebuilds = Metrics.counter mscope "bloom_rebuilds"
  let m_bloom_fpr = Metrics.gauge mscope "bloom_measured_fpr"
  let m_dynamic_entries = Metrics.gauge mscope "dynamic_entries"
  let m_static_entries = Metrics.gauge mscope "static_entries"
  let m_dynamic_bytes = Metrics.gauge mscope "dynamic_bytes"
  let m_static_bytes = Metrics.gauge mscope "static_bytes"

  let create ?(config = default_config) () =
    {
      config;
      dyn = D.create ();
      stat = S.empty;
      bloom = Bloom.create ~fpr:config.bloom_fpr ~expected:config.min_merge_size ();
      tombstones = Hashtbl.create 64;
      access = Hashtbl.create 64;
      ops = 0;
      merges = 0;
      total_merge_seconds = 0.0;
      last_merge_seconds = 0.0;
      merge_entries_moved = 0;
      merge_bytes_moved = 0;
      bloom_negative_skips = 0;
      bloom_checks = 0;
      bloom_false_positives = 0;
      bloom_rebuilds = 0;
      merge_log = [];
      pinned = 0;
    }

  let tombstoned t key = Hashtbl.mem t.tombstones key

  let touch t key =
    t.ops <- t.ops + 1;
    if t.config.strategy = Merge_cold then Hashtbl.replace t.access key t.ops

  (* Bloom-guided stage order for point operations (§3): negative filter
     answers skip the dynamic stage entirely. *)
  let maybe_in_dynamic t key =
    if not t.config.use_bloom then true
    else begin
      t.bloom_checks <- t.bloom_checks + 1;
      Metrics.incr m_bloom_checks;
      if Bloom.mem t.bloom key then true
      else begin
        t.bloom_negative_skips <- t.bloom_negative_skips + 1;
        Metrics.incr m_bloom_skips;
        false
      end
    end

  (* Called when the filter answered positive but the dynamic-stage probe
     came up empty: a measured false positive (the filter never returns
     false negatives, so positives refuted by the stage are the only error
     class). *)
  let note_bloom_fp t =
    if t.config.use_bloom then begin
      t.bloom_false_positives <- t.bloom_false_positives + 1;
      Metrics.incr m_bloom_fp
    end

  let static_find t key = if tombstoned t key then None else S.find t.stat key
  let static_find_all t key = if tombstoned t key then [] else S.find_all t.stat key

  let find t key =
    touch t key;
    if maybe_in_dynamic t key then
      match D.find t.dyn key with
      | Some v -> Some v
      | None ->
        note_bloom_fp t;
        static_find t key
    else static_find t key

  let mem t key = find t key <> None

  let find_all t key =
    touch t key;
    match t.config.kind with
    | Primary -> (
      (* a primary key lives logically in one stage: dynamic wins *)
      if maybe_in_dynamic t key then
        match D.find_all t.dyn key with
        | [] ->
          note_bloom_fp t;
          static_find_all t key
        | vs -> vs
      else static_find_all t key)
    | Secondary ->
      (* value lists may be split across stages *)
      let dyn_vs =
        if maybe_in_dynamic t key then begin
          match D.find_all t.dyn key with
          | [] ->
            note_bloom_fp t;
            []
          | vs -> vs
        end
        else []
      in
      dyn_vs @ static_find_all t key

  (* --- merge (§5) --- *)

  let collect_dynamic_entries t =
    let out = ref [] in
    D.iter_sorted t.dyn (fun k vs -> out := (k, vs) :: !out);
    Array.of_list (List.rev !out)

  (* Partition for merge-cold: migrate the oldest-accessed half, keep the
     most recently accessed keys in the dynamic stage.  A primary key whose
     stale copy sits in the static stage must merge regardless of heat:
     keeping it in the dynamic stage would leave the stale static entry
     uncollected (and the key live in both stages) after the merge. *)
  let split_cold t entries =
    let n = Array.length entries in
    let last_access k = match Hashtbl.find_opt t.access k with Some x -> x | None -> 0 in
    let ages = Array.map (fun (k, _) -> last_access k) entries in
    let sorted_ages = Array.copy ages in
    Array.sort compare sorted_ages;
    let threshold = sorted_ages.(n / 2) in
    let shadows_static k =
      t.config.kind = Primary && (not (tombstoned t k)) && S.mem t.stat k
    in
    let cold = ref [] and hot = ref [] in
    Array.iteri
      (fun i ((k, _) as e) ->
        if ages.(i) <= threshold || shadows_static k then cold := e :: !cold else hot := e :: !hot)
      entries;
    (Array.of_list (List.rev !cold), List.rev !hot)

  let rebuild_bloom ?expected t =
    let expected =
      match expected with
      | Some e -> e
      | None -> max t.config.min_merge_size (D.entry_count t.dyn * 2)
    in
    t.bloom <- Bloom.create ~fpr:t.config.bloom_fpr ~expected ();
    D.iter_sorted t.dyn (fun k _ -> Bloom.add t.bloom k)

  (* A merge sizes the next filter for the (usually empty) dynamic stage,
     but a Ratio trigger then lets the stage grow to ~static/ratio entries
     before the next merge: once the load passes the sized capacity the
     false-positive rate degrades toward 1 and every lookup pays both
     stages.  Doubling on overflow keeps the measured rate within a small
     factor of the configured one at amortized O(1) per insert. *)
  let maybe_grow_bloom t =
    if Bloom.count t.bloom > Bloom.capacity t.bloom then begin
      rebuild_bloom ~expected:(2 * max (Bloom.count t.bloom) (Bloom.capacity t.bloom)) t;
      t.bloom_rebuilds <- t.bloom_rebuilds + 1;
      Metrics.incr m_bloom_rebuilds
    end

  let measured_fpr t =
    let refuted = t.bloom_false_positives + t.bloom_negative_skips in
    if refuted = 0 then 0.0 else float_of_int t.bloom_false_positives /. float_of_int refuted

  let publish_gauges t =
    Metrics.set_int m_dynamic_entries (D.entry_count t.dyn);
    Metrics.set_int m_static_entries (S.entry_count t.stat);
    Metrics.set_int m_dynamic_bytes (D.memory_bytes t.dyn);
    Metrics.set_int m_static_bytes (S.memory_bytes t.stat);
    if t.config.use_bloom then Metrics.set m_bloom_fpr (measured_fpr t)

  let batch_entries b = Array.fold_left (fun acc (_, vs) -> acc + Array.length vs) 0 b

  let batch_bytes b =
    Array.fold_left (fun acc (k, vs) -> acc + String.length k + (8 * Array.length vs)) 0 b

  (* Merge only when there is work — entries to migrate or tombstones to
     collect — and always collect tombstones through [S.merge]: resetting
     the tombstone table without the collecting merge would resurrect
     deleted static-resident keys (a tombstone-only [force_merge] under
     [Merge_cold] used to do exactly that). *)
  let do_merge t =
    let entries = collect_dynamic_entries t in
    if Array.length entries > 0 || Hashtbl.length t.tombstones > 0 then begin
      let static_bytes_before = S.memory_bytes t.stat in
      let t0 = Unix.gettimeofday () in
      let mode =
        match t.config.kind with Primary -> Index_intf.Replace | Secondary -> Index_intf.Concat
      in
      let deleted key = Hashtbl.mem t.tombstones key in
      let moved =
        match t.config.strategy with
        | Merge_all ->
          t.stat <- S.merge t.stat entries ~mode ~deleted;
          D.clear t.dyn;
          Hashtbl.reset t.access;
          entries
        | Merge_cold ->
          if Array.length entries = 0 then begin
            (* tombstone-only merge: nothing to migrate or keep hot, but
               the static stage must still drop the deleted keys *)
            t.stat <- S.merge t.stat [||] ~mode ~deleted;
            [||]
          end
          else begin
            let cold, hot = split_cold t entries in
            t.stat <- S.merge t.stat cold ~mode ~deleted;
            D.clear t.dyn;
            Hashtbl.reset t.access;
            List.iter (fun (k, vs) -> Array.iter (fun v -> D.insert t.dyn k v) vs) hot;
            cold
          end
      in
      Hashtbl.reset t.tombstones;
      rebuild_bloom t;
      let dt = Unix.gettimeofday () -. t0 in
      t.merges <- t.merges + 1;
      t.total_merge_seconds <- t.total_merge_seconds +. dt;
      t.last_merge_seconds <- dt;
      t.merge_entries_moved <- t.merge_entries_moved + batch_entries moved;
      t.merge_bytes_moved <- t.merge_bytes_moved + batch_bytes moved;
      t.merge_log <- (static_bytes_before, dt) :: t.merge_log;
      Metrics.incr m_merges;
      Metrics.observe m_merge_seconds dt;
      Metrics.add m_merge_entries (batch_entries moved);
      Metrics.add m_merge_bytes (batch_bytes moved);
      publish_gauges t
    end

  let should_merge t =
    let d = D.entry_count t.dyn in
    match t.config.trigger with
    | Ratio r -> d >= t.config.min_merge_size && d * r >= S.entry_count t.stat
    | Constant c -> d >= c

  let merge_pending = should_merge
  let maybe_merge t = if (not t.config.defer_merge) && should_merge t then do_merge t
  let force_merge t = do_merge t

  (* --- writes --- *)

  let dynamic_insert t key value =
    D.insert t.dyn key value;
    if t.config.use_bloom then begin
      Bloom.add t.bloom key;
      maybe_grow_bloom t
    end;
    touch t key;
    maybe_merge t

  (* Primary-index insert with the two-stage uniqueness check (§6.4).
     A tombstone on [key] is deliberately kept: it must keep masking the
     stale static-stage values until the next merge collects them — the
     reinserted entry lives in the dynamic stage and survives the merge on
     its own. *)
  let insert_unique t key value =
    let in_dyn =
      maybe_in_dynamic t key
      &&
      let hit = D.mem t.dyn key in
      if not hit then note_bloom_fp t;
      hit
    in
    let exists = in_dyn || static_find t key <> None in
    if exists then false
    else begin
      dynamic_insert t key value;
      true
    end

  (* Secondary-index insert: no uniqueness requirement.  Tombstones are
     kept for the same reason as in [insert_unique]; dropping one here
     would resurrect the dead static-stage values of this key. *)
  let insert t key value = dynamic_insert t key value

  let update t key value =
    touch t key;
    match t.config.kind with
    | Primary ->
      if maybe_in_dynamic t key && D.update t.dyn key value then true
      else if static_find t key <> None then begin
        (* overwrite via the dynamic stage; the stale static entry is
           garbage-collected at the next merge (§3) *)
        dynamic_insert t key value;
        true
      end
      else false
    | Secondary ->
      if maybe_in_dynamic t key && D.update t.dyn key value then true
      else if tombstoned t key then false
      else S.update t.stat key value

  let delete t key =
    touch t key;
    let in_dyn =
      maybe_in_dynamic t key
      &&
      let hit = D.delete t.dyn key in
      if not hit then note_bloom_fp t;
      hit
    in
    let in_static = (not (tombstoned t key)) && S.mem t.stat key in
    if in_static then Hashtbl.replace t.tombstones key ();
    in_dyn || in_static

  let delete_value t key value =
    touch t key;
    let in_dyn = if maybe_in_dynamic t key then D.delete_value t.dyn key value else false in
    if in_dyn then true
    else begin
      let vs = static_find_all t key in
      if List.mem value vs then begin
        (* drop the key from the static stage and re-home the surviving
           values in the dynamic stage *)
        Hashtbl.replace t.tombstones key ();
        let survivors =
          let removed = ref false in
          List.filter
            (fun v ->
              if (not !removed) && v = value then begin
                removed := true;
                false
              end
              else true)
            vs
        in
        List.iter (fun v -> dynamic_insert t key v) survivors;
        true
      end
      else false
    end

  (* --- scans (§3: compare keys from both stages to advance) --- *)

  let scan_from t key n =
    touch t key;
    let dyn_list = D.scan_from t.dyn key n in
    (* over-fetch exactly as many entries as the tombstones mask — a single
       tombstoned secondary key can hide a whole value list — saturating
       instead of overflowing for scan-everything callers passing
       [max_int] *)
    let extra =
      Hashtbl.fold (fun k () acc -> acc + List.length (S.find_all t.stat k)) t.tombstones 0
    in
    let stat_n = if n > max_int - extra then max_int else n + extra in
    let stat_list =
      List.filter (fun (k, _) -> not (tombstoned t k)) (S.scan_from t.stat key stat_n)
    in
    let rec merge_take ds ss acc remaining =
      if remaining = 0 then List.rev acc
      else
        match (ds, ss) with
        | [], [] -> List.rev acc
        | (k, v) :: ds', [] -> merge_take ds' [] ((k, v) :: acc) (remaining - 1)
        | [], (k, v) :: ss' -> merge_take [] ss' ((k, v) :: acc) (remaining - 1)
        | (dk, dv) :: ds', (sk, sv) :: ss' ->
          let c = String.compare dk sk in
          if c < 0 then merge_take ds' ss ((dk, dv) :: acc) (remaining - 1)
          else if c > 0 then merge_take ds ss' ((sk, sv) :: acc) (remaining - 1)
          else (
            match t.config.kind with
            | Primary ->
              (* dynamic entry logically overwrites the static one *)
              let ss' = List.filter (fun (k, _) -> k <> dk) ss in
              merge_take ds' ss' ((dk, dv) :: acc) (remaining - 1)
            | Secondary -> merge_take ds' ss ((dk, dv) :: acc) (remaining - 1))
    in
    merge_take dyn_list stat_list [] n

  let iter_sorted t f =
    (* merge both stages' grouped iterations *)
    let dyn = ref [] in
    D.iter_sorted t.dyn (fun k vs -> dyn := (k, vs) :: !dyn);
    let stat = ref [] in
    S.iter_sorted t.stat (fun k vs -> if not (tombstoned t k) then stat := (k, vs) :: !stat);
    let rec go ds ss =
      match (ds, ss) with
      | [], [] -> ()
      | (k, vs) :: ds', [] ->
        f k vs;
        go ds' []
      | [], (k, vs) :: ss' ->
        f k vs;
        go [] ss'
      | (dk, dvs) :: ds', (sk, svs) :: ss' ->
        let c = String.compare dk sk in
        if c < 0 then begin
          f dk dvs;
          go ds' ss
        end
        else if c > 0 then begin
          f sk svs;
          go ds ss'
        end
        else begin
          (match t.config.kind with
          | Primary -> f dk dvs
          | Secondary -> f dk (Array.append dvs svs));
          go ds' ss'
        end
    in
    go (List.rev !dyn) (List.rev !stat)

  (* --- snapshots (DESIGN.md §16) --- *)

  (* Pin a point-in-time view.  The static stage needs no copy: merges
     replace [t.stat] wholesale ([t.stat <- S.merge ...]), never mutate
     the structure a snapshot holds, so keeping the old value reachable
     from the closure IS the pin — the GC frees the arrays only once the
     last snapshot over them is dropped.  Dynamic-stage entries are
     deep-copied (their value arrays are mutated in place by updates) and
     the tombstone set is copied, so the view is immutable under every
     concurrent write.  Caveat: a [Secondary] static stage updates value
     cells in place; the primary-index OLAP path never does this, and the
     exposure is documented rather than paid for with a full copy. *)
  let snapshot t =
    let stat = t.stat in
    let kind = t.config.kind in
    let dead = Hashtbl.copy t.tombstones in
    let dyn_entries =
      let out = ref [] in
      D.iter_sorted t.dyn (fun k vs -> out := (k, Array.copy vs) :: !out);
      List.rev !out
    in
    let masked =
      Hashtbl.fold (fun k () acc -> acc + List.length (S.find_all stat k)) dead 0
    in
    let count =
      List.fold_left (fun acc (_, vs) -> acc + Array.length vs) 0 dyn_entries
      + S.entry_count stat - masked
    in
    let snap_iter probe f =
      let ds = List.filter (fun (k, _) -> String.compare k probe >= 0) dyn_entries in
      let ss = ref [] in
      S.iter_sorted stat (fun k vs ->
          if String.compare k probe >= 0 && not (Hashtbl.mem dead k) then ss := (k, vs) :: !ss);
      let exception Stop in
      let emit k vs = if not (f k vs) then raise_notrace Stop in
      let rec go ds ss =
        match (ds, ss) with
        | [], [] -> ()
        | (k, vs) :: ds', [] ->
          emit k vs;
          go ds' []
        | [], (k, vs) :: ss' ->
          emit k vs;
          go [] ss'
        | (dk, dvs) :: ds', (sk, svs) :: ss' ->
          let c = String.compare dk sk in
          if c < 0 then begin
            emit dk dvs;
            go ds' ss
          end
          else if c > 0 then begin
            emit sk svs;
            go ds ss'
          end
          else begin
            (match kind with
            | Primary -> emit dk dvs
            | Secondary -> emit dk (Array.append dvs svs));
            go ds' ss'
          end
      in
      (try go ds (List.rev !ss) with Stop -> ())
    in
    t.pinned <- t.pinned + 1;
    let released = ref false in
    let snap_release () =
      if not !released then begin
        released := true;
        t.pinned <- t.pinned - 1
      end
    in
    {
      Index_intf.snap_generation = t.merges;
      snap_captured_at = Unix.gettimeofday ();
      snap_entry_count = count;
      snap_iter;
      snap_release;
    }

  let generation t = t.merges
  let pinned_snapshots t = t.pinned

  (* --- accounting --- *)

  let entry_count t =
    (* tombstoned static keys remain physically present until the merge *)
    D.entry_count t.dyn + S.entry_count t.stat

  let dynamic_entry_count t = D.entry_count t.dyn
  let static_entry_count t = S.entry_count t.stat
  let dynamic_memory_bytes t = D.memory_bytes t.dyn
  let static_memory_bytes t = S.memory_bytes t.stat
  let bloom_memory_bytes t = if t.config.use_bloom then Bloom.memory_bytes t.bloom else 0

  let memory_bytes t = dynamic_memory_bytes t + static_memory_bytes t + bloom_memory_bytes t

  let clear t =
    D.clear t.dyn;
    t.stat <- S.empty;
    Hashtbl.reset t.tombstones;
    Hashtbl.reset t.access;
    rebuild_bloom t

  let merge_log t = List.rev t.merge_log

  let check_invariants t =
    let violations = ref [] in
    let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
    Hashtbl.iter
      (fun k () -> if not (S.mem t.stat k) then add "tombstone over non-static key %S" k)
      t.tombstones;
    if t.config.kind = Primary then
      D.iter_sorted t.dyn (fun k _ ->
          if (not (tombstoned t k)) && S.mem t.stat k then
            add "primary key %S live in both stages" k);
    (* the Bloom filter must never give a false negative for a
       dynamic-stage key, or point lookups would skip live entries *)
    if t.config.use_bloom then
      D.iter_sorted t.dyn (fun k _ ->
          if not (Bloom.mem t.bloom k) then add "bloom false negative on dynamic key %S" k);
    (* the static stage must hold strictly-sorted keys with non-empty,
       correctly-counted value groups *)
    let prev = ref None in
    let keys = ref 0 and entries = ref 0 in
    S.iter_sorted t.stat (fun k vs ->
        incr keys;
        entries := !entries + Array.length vs;
        if Array.length vs = 0 then add "static key %S has empty value group" k;
        (match !prev with
        | Some p when String.compare p k >= 0 -> add "static keys not strictly sorted: %S then %S" p k
        | _ -> ());
        prev := Some k);
    if !keys <> S.key_count t.stat then
      add "static key_count %d <> iterated keys %d" (S.key_count t.stat) !keys;
    if !entries <> S.entry_count t.stat then
      add "static entry_count %d <> iterated entries %d" (S.entry_count t.stat) !entries;
    (* dynamic-stage structural self-check *)
    List.iter (fun v -> add "dynamic: %s" v) (D.check_structure t.dyn);
    List.rev !violations

  let stats t =
    publish_gauges t;
    {
      merges = t.merges;
      total_merge_seconds = t.total_merge_seconds;
      last_merge_seconds = t.last_merge_seconds;
      merge_entries_moved = t.merge_entries_moved;
      merge_bytes_moved = t.merge_bytes_moved;
      bloom_negative_skips = t.bloom_negative_skips;
      bloom_checks = t.bloom_checks;
      bloom_false_positives = t.bloom_false_positives;
      bloom_measured_fpr = measured_fpr t;
      bloom_rebuilds = t.bloom_rebuilds;
    }
end
