(** The five hybrid indexes evaluated in the paper (§6): DST applied to
    B+tree, Masstree, Skip List and ART, plus the Hybrid-Compressed B+tree
    whose static stage also applies the Compression rule. *)

module Hybrid_btree : Hybrid.S
module Hybrid_compressed_btree : Hybrid.S

(** Future-work (§9) variant: front-coded static stage — between Compact
    and Compressed on the space/performance curve. *)
module Hybrid_frontcoded_btree : Hybrid.S

module Hybrid_skiplist : Hybrid.S
module Hybrid_masstree : Hybrid.S
module Hybrid_art : Hybrid.S

(** Instantiate a hybrid index with a fixed configuration behind the
    uniform {!Hi_index.Index_intf.INDEX} interface — the hybrid
    counterpart of {!Hi_index.Index_pack.Of_dynamic}. *)
module Of_hybrid
    (_ : Hi_index.Index_intf.DYNAMIC)
    (_ : Hi_index.Index_intf.STATIC)
    (_ : sig
      val config : Hybrid.config
    end) : Hi_index.Index_intf.INDEX

(** {!Hi_index.Index_intf.INDEX} packages of the four original
    structures. *)

module Btree_index : Hi_index.Index_intf.INDEX
module Skiplist_index : Hi_index.Index_intf.INDEX
module Masstree_index : Hi_index.Index_intf.INDEX
module Art_index : Hi_index.Index_intf.INDEX

val original_indexes : (string * Hi_index.Index_intf.index) list

val hybrid_index : ?config:Hybrid.config -> string -> Hi_index.Index_intf.index
(** Hybrid {!Hi_index.Index_intf.INDEX} package for a given configuration:
    one of ["btree"], ["compressed-btree"], ["frontcoded-btree"],
    ["masstree"], ["skiplist"], ["art"].
    @raise Invalid_argument on an unknown structure name. *)
