(** The five hybrid indexes evaluated in the paper (§6): DST applied to
    B+tree, Masstree, Skip List and ART, plus the Hybrid-Compressed B+tree
    whose static stage also applies the Compression rule. *)

module Hybrid_btree = Hybrid.Make (Hi_btree.Btree) (Hi_btree.Compact_btree)
module Hybrid_compressed_btree = Hybrid.Make (Hi_btree.Btree) (Hi_btree.Compressed_btree)

(** Future-work (§9) variant: front-coded static stage — between Compact
    and Compressed on the space/performance curve. *)
module Hybrid_frontcoded_btree = Hybrid.Make (Hi_btree.Btree) (Hi_btree.Frontcoded_btree)
module Hybrid_skiplist = Hybrid.Make (Hi_skiplist.Skiplist) (Hi_skiplist.Compact_skiplist)
module Hybrid_masstree = Hybrid.Make (Hi_masstree.Masstree) (Hi_masstree.Compact_masstree)
module Hybrid_art = Hybrid.Make (Hi_art.Art) (Hi_art.Compact_art)

(** Instantiate a hybrid index with a fixed configuration as
    {!Hi_index.Index_intf.INDEX}.  This is the hybrid counterpart of
    {!Hi_index.Index_pack.Of_dynamic}; it lives here because only the
    hybrid library knows the dual-stage machinery. *)
module Of_hybrid
    (D : Hi_index.Index_intf.DYNAMIC)
    (S : Hi_index.Index_intf.STATIC)
    (C : sig
      val config : Hybrid.config
    end) : Hi_index.Index_intf.INDEX = struct
  module H = Hybrid.Make (D) (S)

  type t = H.t

  let name = H.name
  let create () = H.create ~config:C.config ()
  let insert = H.insert
  let insert_unique = H.insert_unique
  let mem = H.mem
  let find = H.find
  let find_all = H.find_all
  let update = H.update
  let delete = H.delete
  let delete_value = H.delete_value
  let scan_from = H.scan_from
  let iter_sorted = H.iter_sorted
  let entry_count = H.entry_count
  let clear = H.clear
  let memory_bytes = H.memory_bytes
  let flush = H.force_merge
  let merge_pending = H.merge_pending
  let check_invariants = H.check_invariants
  let snapshot = H.snapshot
  let generation = H.generation
  let pinned_snapshots = H.pinned_snapshots
end

(** {!Hi_index.Index_intf.INDEX} packages of the four original
    structures. *)

module Btree_index = Hi_index.Index_pack.Of_dynamic (Hi_btree.Btree)
module Skiplist_index = Hi_index.Index_pack.Of_dynamic (Hi_skiplist.Skiplist)
module Masstree_index = Hi_index.Index_pack.Of_dynamic (Hi_masstree.Masstree)
module Art_index = Hi_index.Index_pack.Of_dynamic (Hi_art.Art)

let original_indexes : (string * Hi_index.Index_intf.index) list =
  [
    ("btree", (module Btree_index));
    ("masstree", (module Masstree_index));
    ("skiplist", (module Skiplist_index));
    ("art", (module Art_index));
  ]

(** Hybrid {!Hi_index.Index_intf.INDEX} packages for a given
    configuration. *)
let hybrid_index ?(config = Hybrid.default_config) name : Hi_index.Index_intf.index =
  let module C = struct
    let config = config
  end in
  match name with
  | "btree" -> (module Of_hybrid (Hi_btree.Btree) (Hi_btree.Compact_btree) (C))
  | "compressed-btree" -> (module Of_hybrid (Hi_btree.Btree) (Hi_btree.Compressed_btree) (C))
  | "frontcoded-btree" -> (module Of_hybrid (Hi_btree.Btree) (Hi_btree.Frontcoded_btree) (C))
  | "masstree" -> (module Of_hybrid (Hi_masstree.Masstree) (Hi_masstree.Compact_masstree) (C))
  | "skiplist" -> (module Of_hybrid (Hi_skiplist.Skiplist) (Hi_skiplist.Compact_skiplist) (C))
  | "art" -> (module Of_hybrid (Hi_art.Art) (Hi_art.Compact_art) (C))
  | other -> invalid_arg ("Instances.hybrid_index: unknown structure " ^ other)
