(* Incremental (non-blocking-style) merge — the first item of the paper's
   future work (§9): "developing space-efficient non-blocking merge
   algorithms for hybrid indexes can further satisfy the needs of
   tail-latency-sensitive applications".

   The blocking merge of §5 pauses all queries for a time linear in the
   static-stage size, which is what blows up the MAX latency in Table 3.
   This variant bounds the work any single operation performs:

   - when the trigger fires, the dynamic stage is snapshotted into a sorted
     [frozen] run (cost: linear in the *dynamic* stage only) and emptied;
   - every subsequent operation advances the merge by at most [step]
     entries, zipping [frozen] with a lazy cursor over the old static stage
     into an output buffer;
   - when both runs are exhausted, the output is built into the new static
     structure and swapped in.

   Reads during a merge consult dynamic stage, then the frozen run (binary
   search), then the old static stage.  Tombstones created mid-merge for
   already-emitted keys survive to the next merge; reads filter them
   meanwhile.  The merge-cold strategy is not supported here (the frozen
   run is immutable by design), matching the paper's framing of merge-all
   as the general approach (§5.2).

   In a single-threaded runtime "non-blocking" means bounded pauses; a
   concurrent version would do the same steps on a background thread. *)

open Hi_util
open Hi_index

(* A static stage that also exposes a lazy entry cursor. *)
module type STATIC_SEQ = sig
  include Index_intf.STATIC

  val to_seq : t -> (string * int array) Seq.t
end

type config = {
  trigger : Hybrid.merge_trigger;
  kind : Hybrid.kind;
  use_bloom : bool;
  bloom_fpr : float;
  min_merge_size : int;
  step : int; (* max entries emitted per operation while a merge is active *)
}

let default_config =
  {
    trigger = Hybrid.Ratio 10;
    kind = Hybrid.Primary;
    use_bloom = true;
    bloom_fpr = 0.01;
    min_merge_size = 4096;
    step = 256;
  }

type stats = {
  merges_started : int;
  merges_completed : int;
  max_entries_per_op : int; (* peak merge work performed by one operation *)
  total_merge_seconds : float;
}

(* Public operations (see the interface): a subset of Hybrid.S — no
   delete_value, no grouped ordered iteration, no clear. *)
module type S = sig
  type t

  val name : string
  val create : ?config:config -> unit -> t

  val insert : t -> string -> int -> unit
  val insert_unique : t -> string -> int -> bool
  val mem : t -> string -> bool
  val find : t -> string -> int option
  val find_all : t -> string -> int list
  val update : t -> string -> int -> bool
  val delete : t -> string -> bool
  val scan_from : t -> string -> int -> (string * int) list

  val drain : t -> unit
  val force_merge : t -> unit
  val merging : t -> bool

  val entry_count : t -> int
  val dynamic_entry_count : t -> int
  val memory_bytes : t -> int
  val stats : t -> stats

  val snapshot : t -> Index_intf.snapshot
  val generation : t -> int
  val pinned_snapshots : t -> int
end

module Make (D : Index_intf.DYNAMIC) (S : STATIC_SEQ) = struct
  type merge_state = {
    frozen : Index_intf.entries;
    mutable fi : int; (* cursor into frozen *)
    mutable rest : (string * int array) Seq.t; (* remaining old static entries *)
    mutable rest_head : (string * int array) option;
    out : (string * int array) Vec.t;
    dead : (string, unit) Hashtbl.t;
        (* tombstones from before the freeze: they mask (and collect) old
           static-stage copies only — a key deleted and then reinserted
           before the merge began carries its live copy in [frozen], which
           these must not touch.  [t.tombstones] holds only deletes issued
           while this merge is active; those mask frozen and static both. *)
  }

  type t = {
    config : config;
    dyn : D.t;
    mutable stat : S.t;
    mutable merging : merge_state option;
    mutable bloom : Bloom.t;
    tombstones : (string, unit) Hashtbl.t;
    mutable merges_started : int;
    mutable merges_completed : int;
    mutable max_entries_per_op : int;
    mutable total_merge_seconds : float;
    mutable pinned : int; (* live snapshots (DESIGN.md §16) *)
  }

  let name = "incremental-hybrid-" ^ D.name

  let create ?(config = default_config) () =
    {
      config;
      dyn = D.create ();
      stat = S.empty;
      merging = None;
      bloom = Bloom.create ~fpr:config.bloom_fpr ~expected:config.min_merge_size ();
      tombstones = Hashtbl.create 64;
      merges_started = 0;
      merges_completed = 0;
      max_entries_per_op = 0;
      total_merge_seconds = 0.0;
      pinned = 0;
    }

  let tombstoned t key = Hashtbl.mem t.tombstones key

  (* Is the static-stage copy of [key] logically dead?  Either tombstone
     generation masks it. *)
  let static_dead t key =
    tombstoned t key
    || (match t.merging with Some ms -> Hashtbl.mem ms.dead key | None -> false)

  (* --- frozen-run lookups --- *)

  let frozen_index ms key =
    let lo = ref 0 and hi = ref (Array.length ms.frozen) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if String.compare (fst ms.frozen.(mid)) key < 0 then lo := mid + 1 else hi := mid
    done;
    if !lo < Array.length ms.frozen && fst ms.frozen.(!lo) = key then Some !lo else None

  let frozen_find t key =
    match t.merging with
    | None -> None
    | Some ms -> (
      if tombstoned t key then None
      else
        match frozen_index ms key with
        | Some i -> (match snd ms.frozen.(i) with [||] -> None | vs -> Some vs)
        | None -> None)

  (* --- merge machinery --- *)

  let resolve_values t old_vs new_vs =
    match t.config.kind with Hybrid.Primary -> new_vs | Hybrid.Secondary -> Array.append old_vs new_vs

  let pull_rest ms =
    match ms.rest_head with
    | Some _ as h -> h
    | None -> (
      match ms.rest () with
      | Seq.Nil -> None
      | Seq.Cons (e, rest) ->
        ms.rest <- rest;
        ms.rest_head <- Some e;
        Some e)

  let consume_rest ms = ms.rest_head <- None

  (* Emit up to [budget] merged entries; true when the merge finished. *)
  let emit t ms budget =
    let emitted = ref 0 in
    let finished = ref false in
    while (not !finished) && !emitted < budget do
      let from_frozen = if ms.fi < Array.length ms.frozen then Some ms.frozen.(ms.fi) else None in
      match (from_frozen, pull_rest ms) with
      | None, None -> finished := true
      | Some (k, vs), None ->
        ms.fi <- ms.fi + 1;
        if not (tombstoned t k) then begin
          Vec.push ms.out (k, vs);
          incr emitted
        end
      | None, Some (k, vs) ->
        consume_rest ms;
        if not (tombstoned t k || Hashtbl.mem ms.dead k) then begin
          Vec.push ms.out (k, vs);
          incr emitted
        end
      | Some (fk, fvs), Some (sk, svs) ->
        let c = String.compare fk sk in
        if c <= 0 then begin
          ms.fi <- ms.fi + 1;
          (* a pre-freeze tombstone kills only the static-side values of
             the key, never the frozen (reinserted) ones *)
          let vs =
            if c = 0 && not (Hashtbl.mem ms.dead fk) then resolve_values t svs fvs else fvs
          in
          if c = 0 then consume_rest ms;
          if not (tombstoned t fk) then begin
            Vec.push ms.out (fk, vs);
            incr emitted
          end
        end
        else begin
          consume_rest ms;
          if not (tombstoned t sk || Hashtbl.mem ms.dead sk) then begin
            Vec.push ms.out (sk, svs);
            incr emitted
          end
        end
    done;
    !finished

  let finish_merge t ms =
    t.stat <- S.build (Vec.to_array ms.out);
    t.merging <- None;
    t.merges_completed <- t.merges_completed + 1;
    (* tombstones applied by this merge are done; those for keys that had
       already been emitted stay for the next merge *)
    let stale = Hashtbl.fold (fun k () acc -> if S.mem t.stat k then acc else k :: acc) t.tombstones [] in
    List.iter (Hashtbl.remove t.tombstones) stale

  (* One bounded slice of merge work, charged to the current operation. *)
  let step t =
    match t.merging with
    | None -> ()
    | Some ms ->
      let t0 = Unix.gettimeofday () in
      let budget = t.config.step in
      t.max_entries_per_op <- max t.max_entries_per_op (min budget (Array.length ms.frozen + Vec.length ms.out));
      if emit t ms budget then finish_merge t ms;
      t.total_merge_seconds <- t.total_merge_seconds +. (Unix.gettimeofday () -. t0)

  let collect_dynamic t =
    let out = ref [] in
    D.iter_sorted t.dyn (fun k vs -> out := (k, vs) :: !out);
    Array.of_list (List.rev !out)

  let rebuild_bloom t =
    t.bloom <- Bloom.create ~fpr:t.config.bloom_fpr ~expected:t.config.min_merge_size ()

  let start_merge t =
    let frozen = collect_dynamic t in
    D.clear t.dyn;
    rebuild_bloom t;
    (* split the tombstone generations: everything issued so far applies
       to the old static stage only (see [merge_state.dead]) *)
    let dead = Hashtbl.copy t.tombstones in
    Hashtbl.reset t.tombstones;
    t.merging <-
      Some
        { frozen; fi = 0; rest = S.to_seq t.stat; rest_head = None; out = Vec.create ("", [||]); dead };
    t.merges_started <- t.merges_started + 1

  let logical_static_count t =
    match t.merging with
    | None -> S.entry_count t.stat
    | Some ms -> S.entry_count t.stat + Array.length ms.frozen

  let should_merge t =
    t.merging = None
    &&
    let d = D.entry_count t.dyn in
    match t.config.trigger with
    | Hybrid.Ratio r -> d >= t.config.min_merge_size && d * r >= logical_static_count t
    | Hybrid.Constant c -> d >= c

  let tick t =
    step t;
    if should_merge t then start_merge t

  (* --- reads --- *)

  let maybe_in_dynamic t key = (not t.config.use_bloom) || Bloom.mem t.bloom key

  let static_find t key = if static_dead t key then None else S.find t.stat key

  let find t key =
    tick t;
    let dyn_hit = if maybe_in_dynamic t key then D.find t.dyn key else None in
    match dyn_hit with
    | Some v -> Some v
    | None -> (
      match frozen_find t key with
      | Some vs -> Some vs.(0)
      | None -> static_find t key)

  let mem t key = find t key <> None

  let find_all t key =
    tick t;
    let dyn_vs = if maybe_in_dynamic t key then D.find_all t.dyn key else [] in
    let frozen_vs = match frozen_find t key with Some vs -> Array.to_list vs | None -> [] in
    let stat_vs = if static_dead t key then [] else S.find_all t.stat key in
    match t.config.kind with
    | Hybrid.Primary -> (
      match (dyn_vs, frozen_vs) with
      | (_ :: _ as vs), _ -> vs
      | [], (_ :: _ as vs) -> vs
      | [], [] -> stat_vs)
    | Hybrid.Secondary -> dyn_vs @ frozen_vs @ stat_vs

  (* --- writes --- *)

  let dynamic_insert t key value =
    D.insert t.dyn key value;
    if t.config.use_bloom then Bloom.add t.bloom key

  let insert_unique t key value =
    tick t;
    let exists =
      (maybe_in_dynamic t key && D.mem t.dyn key)
      || frozen_find t key <> None
      || static_find t key <> None
    in
    if exists then false
    else begin
      (* a tombstone on [key] is kept: it must keep masking the dead
         frozen/static copies until the merge drops them — the reinserted
         entry lives in the (new) dynamic stage and is never filtered *)
      dynamic_insert t key value;
      true
    end

  let insert t key value =
    tick t;
    dynamic_insert t key value

  let update t key value =
    tick t;
    if maybe_in_dynamic t key && D.update t.dyn key value then true
    else if frozen_find t key <> None || static_find t key <> None then begin
      match t.config.kind with
      | Hybrid.Primary ->
        (* overwrite through the dynamic stage; the stale copy is collected
           by a later merge *)
        dynamic_insert t key value;
        true
      | Hybrid.Secondary -> (
        (* in place where possible; the frozen run's arrays are mutable *)
        match t.merging with
        | Some ms when frozen_index ms key <> None ->
          (match frozen_index ms key with
          | Some i ->
            (snd ms.frozen.(i)).(0) <- value;
            true
          | None -> false)
        | _ -> S.update t.stat key value)
    end
    else false

  let delete t key =
    tick t;
    let in_dyn = if maybe_in_dynamic t key then D.delete t.dyn key else false in
    let in_later =
      (not (tombstoned t key))
      && ((match t.merging with Some ms -> frozen_index ms key <> None | None -> false)
         || (S.mem t.stat key && not (static_dead t key)))
    in
    if in_later then Hashtbl.replace t.tombstones key ();
    in_dyn || in_later

  (* --- scans: three-way ordered merge --- *)

  let frozen_scan t key n =
    match t.merging with
    | None -> []
    | Some ms ->
      let lo = ref 0 and hi = ref (Array.length ms.frozen) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if String.compare (fst ms.frozen.(mid)) key < 0 then lo := mid + 1 else hi := mid
      done;
      let out = ref [] and taken = ref 0 and i = ref !lo in
      while !taken < n && !i < Array.length ms.frozen do
        let k, vs = ms.frozen.(!i) in
        if not (tombstoned t k) then
          Array.iter
            (fun v ->
              if !taken < n then begin
                out := (k, v) :: !out;
                incr taken
              end)
            vs;
        incr i
      done;
      List.rev !out

  let scan_from t key n =
    tick t;
    (* over-fetch exactly as many entries as the tombstones mask — a single
       tombstoned secondary key can hide a whole value list — saturating
       instead of overflowing for scan-everything callers passing
       [max_int] *)
    let masked k acc = acc + List.length (S.find_all t.stat k) in
    let extra =
      Hashtbl.fold (fun k () acc -> masked k acc) t.tombstones 0
      + (match t.merging with
        | Some ms -> Hashtbl.fold (fun k () acc -> masked k acc) ms.dead 0
        | None -> 0)
    in
    let dyn_l = D.scan_from t.dyn key n in
    let fro_l = frozen_scan t key n in
    let sta_n = if n > max_int - extra then max_int else n + extra in
    let sta_l = List.filter (fun (k, _) -> not (static_dead t k)) (S.scan_from t.stat key sta_n) in
    (* three-way merge with primary-key overwrite priority dyn > frozen > static *)
    let rec merge3 a b c acc remaining =
      if remaining = 0 then List.rev acc
      else
        let head l = match l with [] -> None | (k, _) :: _ -> Some k in
        let ka = head a and kb = head b and kc = head c in
        let smaller acc k =
          match (acc, k) with
          | None, x -> x
          | Some a, Some b -> Some (min a b)
          | (Some _ as a), None -> a
        in
        let smallest = List.fold_left smaller None [ ka; kb; kc ] in
        match smallest with
        | None -> List.rev acc
        | Some k ->
          let take_from l = match l with (k', v) :: rest when k' = k -> (Some v, rest) | _ -> (None, l) in
          let va, a = take_from a in
          let vb, b = take_from b in
          let vc, c = take_from c in
          let v =
            match t.config.kind with
            | Hybrid.Primary -> ( match (va, vb, vc) with Some v, _, _ -> [ v ] | None, Some v, _ -> [ v ] | None, None, Some v -> [ v ] | _ -> [])
            | Hybrid.Secondary ->
              List.concat_map (function Some v -> [ v ] | None -> []) [ va; vb; vc ]
          in
          (* drop remaining duplicates of k from every source *)
          let drop l = List.filter (fun (k', _) -> k' <> k || t.config.kind = Hybrid.Secondary) l in
          let a, b, c =
            if t.config.kind = Hybrid.Primary then (drop a, drop b, drop c) else (a, b, c)
          in
          let acc, remaining =
            List.fold_left (fun (acc, r) v -> if r > 0 then ((k, v) :: acc, r - 1) else (acc, r)) (acc, remaining) v
          in
          merge3 a b c acc remaining
    in
    merge3 dyn_l fro_l sta_l [] n

  (* Drain any active merge to completion (e.g. before a measurement). *)
  let drain t =
    while t.merging <> None do
      step t
    done

  let force_merge t =
    drain t;
    if D.entry_count t.dyn > 0 || Hashtbl.length t.tombstones > 0 then begin
      start_merge t;
      drain t
    end

  let entry_count t = D.entry_count t.dyn + logical_static_count t
  let dynamic_entry_count t = D.entry_count t.dyn

  let memory_bytes t =
    let frozen_bytes =
      match t.merging with
      | None -> 0
      | Some ms ->
        Array.fold_left
          (fun acc (k, vs) -> acc + Mem_model.key_slot_bytes (String.length k) + (8 * Array.length vs))
          0 ms.frozen
    in
    D.memory_bytes t.dyn + S.memory_bytes t.stat + frozen_bytes
    + (if t.config.use_bloom then Bloom.memory_bytes t.bloom else 0)

  let merging t = t.merging <> None

  (* --- snapshots (DESIGN.md §16) --- *)

  (* Pin the full logical view at capture: dynamic stage (copied), frozen
     run if a merge is in flight (copied — its value cells are mutable),
     and the old static stage (by reference: merge completion swaps
     [t.stat] wholesale, never mutates the pinned structure).  Both
     tombstone generations are frozen with it — [t.tombstones] masks the
     frozen run and the static stage, [ms.dead] masks the static stage
     only — mirroring the live read path exactly. *)
  let snapshot t =
    let stat = t.stat in
    let kind = t.config.kind in
    let tomb = Hashtbl.copy t.tombstones in
    let dead = match t.merging with Some ms -> Hashtbl.copy ms.dead | None -> Hashtbl.create 1 in
    let dyn_entries =
      let out = ref [] in
      D.iter_sorted t.dyn (fun k vs -> out := (k, Array.copy vs) :: !out);
      List.rev !out
    in
    let frozen_entries =
      match t.merging with
      | None -> []
      | Some ms ->
        Array.to_list ms.frozen
        |> List.filter_map (fun (k, vs) ->
               if Array.length vs = 0 then None else Some (k, Array.copy vs))
    in
    let count =
      List.fold_left (fun acc (_, vs) -> acc + Array.length vs) 0 dyn_entries
      + List.fold_left
          (fun acc (k, vs) -> if Hashtbl.mem tomb k then acc else acc + Array.length vs)
          0 frozen_entries
      + S.entry_count stat
      - Hashtbl.fold (fun k () acc -> acc + List.length (S.find_all stat k)) tomb 0
      - Hashtbl.fold
          (fun k () acc ->
            if Hashtbl.mem tomb k then acc else acc + List.length (S.find_all stat k))
          dead 0
    in
    let snap_iter probe f =
      let ge k = String.compare k probe >= 0 in
      let ds = List.filter (fun (k, _) -> ge k) dyn_entries in
      let fs = List.filter (fun (k, _) -> ge k && not (Hashtbl.mem tomb k)) frozen_entries in
      let ss = ref [] in
      S.iter_sorted stat (fun k vs ->
          if ge k && (not (Hashtbl.mem tomb k)) && not (Hashtbl.mem dead k) then
            ss := (k, vs) :: !ss);
      let exception Stop in
      let emit k vs = if Array.length vs > 0 && not (f k vs) then raise_notrace Stop in
      let head = function [] -> None | (k, _) :: _ -> Some k in
      let rec go ds fs ss =
        let kmin =
          List.fold_left
            (fun acc k ->
              match (acc, k) with
              | None, x -> x
              | x, None -> x
              | Some a, Some b -> Some (if String.compare a b <= 0 then a else b))
            None
            [ head ds; head fs; head ss ]
        in
        match kmin with
        | None -> ()
        | Some k ->
          let take l =
            match l with (k', vs) :: rest when k' = k -> (Some vs, rest) | _ -> (None, l)
          in
          let dv, ds = take ds in
          let fv, fs = take fs in
          let sv, ss = take ss in
          let vs =
            match kind with
            | Hybrid.Primary -> (
              (* overwrite priority dyn > frozen > static *)
              match (dv, fv, sv) with
              | Some v, _, _ -> v
              | None, Some v, _ -> v
              | None, None, Some v -> v
              | None, None, None -> [||])
            | Hybrid.Secondary ->
              Array.concat (List.filter_map (fun x -> x) [ dv; fv; sv ])
          in
          emit k vs;
          go ds fs ss
      in
      (try go ds fs (List.rev !ss) with Stop -> ())
    in
    t.pinned <- t.pinned + 1;
    let released = ref false in
    let snap_release () =
      if not !released then begin
        released := true;
        t.pinned <- t.pinned - 1
      end
    in
    {
      Index_intf.snap_generation = t.merges_completed;
      snap_captured_at = Unix.gettimeofday ();
      snap_entry_count = count;
      snap_iter;
      snap_release;
    }

  let generation t = t.merges_completed
  let pinned_snapshots t = t.pinned

  let stats t =
    {
      merges_started = t.merges_started;
      merges_completed = t.merges_completed;
      max_entries_per_op = t.max_entries_per_op;
      total_merge_seconds = t.total_merge_seconds;
    }
end

module Incremental_btree = Make (Hi_btree.Btree) (Hi_btree.Compact_btree)
module Incremental_skiplist = Make (Hi_skiplist.Skiplist) (Hi_skiplist.Compact_skiplist)
module Incremental_masstree = Make (Hi_masstree.Masstree) (Hi_masstree.Compact_masstree)
module Incremental_art = Make (Hi_art.Art) (Hi_art.Compact_art)
