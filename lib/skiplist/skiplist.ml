(* Paged-deterministic Skip List (paper §4.1): entries live in B+tree-like
   pages chained at level 0; pages additionally carry deterministic express
   towers (height = 1 + trailing zeros of the page-creation counter), so the
   structure "resembles a B+tree" as in the implementation the paper uses.
   Duplicate keys are permitted, as in the B+tree baseline.

   A page covers the key range [first key, next page's first key); a run of
   equal keys may straddle a page boundary after a split, so searches
   normalize across the chain exactly like the B+tree leaf walk. *)

open Hi_util

let page_capacity = 32
let max_height = 16

type page = {
  pkeys : string array;
  pvals : int array;
  mutable pn : int;
  forward : page option array; (* length = this page's height *)
}

type t = {
  head : page; (* sentinel, pn = 0, height = max_height *)
  mutable entries : int;
  mutable pages : int;
  mutable splits : int;
}

let name = "skiplist"

let new_page height =
  {
    pkeys = Array.make page_capacity "";
    pvals = Array.make page_capacity 0;
    pn = 0;
    forward = Array.make height None;
  }

let create () = { head = new_page max_height; entries = 0; pages = 0; splits = 0 }

let first_key p = p.pkeys.(0)

(* number of trailing zeros, for deterministic tower heights *)
let trailing_zeros n =
  if n = 0 then max_height - 1
  else begin
    let n = ref n and z = ref 0 in
    while !n land 1 = 0 do
      incr z;
      n := !n asr 1
    done;
    !z
  end

(* Descend from the head: returns the last page at each level whose first
   key satisfies [before] (strict for lookups, non-strict for inserts). *)
let descend t probe ~strict =
  let preds = Array.make max_height t.head in
  let node = ref t.head in
  for level = max_height - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match
        (if level < Array.length !node.forward then !node.forward.(level) else None)
      with
      | Some nxt when
          nxt.pn > 0
          &&
          (Op_counter.compare_keys 1;
           let c = String.compare (first_key nxt) probe in
           if strict then c < 0 else c <= 0) ->
        Op_counter.deref ();
        node := nxt
      | _ -> continue := false
    done;
    preds.(level) <- !node
  done;
  preds

let page_lower_bound p probe =
  let lo = ref 0 and hi = ref p.pn in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Op_counter.compare_keys 1;
    if String.compare p.pkeys.(mid) probe < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let page_upper_bound p probe =
  let lo = ref 0 and hi = ref p.pn in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Op_counter.compare_keys 1;
    if String.compare p.pkeys.(mid) probe <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Cursor normalization: step to the next live entry across the chain. *)
let rec advance p pos =
  if pos < p.pn then Some (p, pos)
  else match p.forward.(0) with None -> None | Some nxt -> advance nxt 0

let locate t probe =
  Op_counter.visit ();
  let preds = descend t probe ~strict:true in
  let p = preds.(0) in
  (p, page_lower_bound p probe)

(* --- inserts --- *)

let split_page t preds left =
  t.splits <- t.splits + 1;
  t.pages <- t.pages + 1;
  let height = 1 + min (max_height - 1) (trailing_zeros t.splits) in
  let right = new_page height in
  let mid = left.pn / 2 in
  Array.blit left.pkeys mid right.pkeys 0 (left.pn - mid);
  Array.blit left.pvals mid right.pvals 0 (left.pn - mid);
  right.pn <- left.pn - mid;
  Array.fill left.pkeys mid (left.pn - mid) "";
  left.pn <- mid;
  (* link the new page immediately after [left]: at level l the correct
     predecessor is [left] itself when tall enough, else the recorded
     descent predecessor *)
  for level = 0 to height - 1 do
    let pred = if level < Array.length left.forward then left else preds.(level) in
    right.forward.(level) <- pred.forward.(level);
    pred.forward.(level) <- Some right
  done;
  right

let insert t key value =
  let preds = descend t key ~strict:false in
  let target = preds.(0) in
  let target =
    if target.pn = page_capacity then begin
      let right = split_page t preds target in
      Op_counter.compare_keys 1;
      if String.compare key (first_key right) >= 0 then right else target
    end
    else target
  in
  (* the sentinel head holds no entries; bootstrap the first page *)
  let target =
    if target == t.head then begin
      let p = new_page 1 in
      p.forward.(0) <- t.head.forward.(0);
      t.head.forward.(0) <- Some p;
      t.pages <- t.pages + 1;
      p
    end
    else target
  in
  let pos = page_upper_bound target key in
  Array.blit target.pkeys pos target.pkeys (pos + 1) (target.pn - pos);
  Array.blit target.pvals pos target.pvals (pos + 1) (target.pn - pos);
  target.pkeys.(pos) <- key;
  target.pvals.(pos) <- value;
  target.pn <- target.pn + 1;
  t.entries <- t.entries + 1

(* --- lookups --- *)

let find t probe =
  let p, pos = locate t probe in
  match advance p pos with
  | Some (p, pos) when p.pkeys.(pos) = probe -> Some p.pvals.(pos)
  | _ -> None

let mem t probe = find t probe <> None

let find_all t probe =
  let rec collect cursor acc =
    match cursor with
    | Some (p, pos) when p.pkeys.(pos) = probe -> collect (advance p (pos + 1)) (p.pvals.(pos) :: acc)
    | _ -> List.rev acc
  in
  let p, pos = locate t probe in
  collect (advance p pos) []

let update t probe value =
  let p, pos = locate t probe in
  match advance p pos with
  | Some (p, pos) when p.pkeys.(pos) = probe ->
    p.pvals.(pos) <- value;
    true
  | _ -> false

(* --- deletes ---

   A page that becomes empty is unlinked immediately: an empty page has no
   first key, so leaving it chained would corrupt tower routing.  The
   unlink walks each level list from the head by identity; its own forward
   pointers are left intact so in-flight cursors can still advance. *)

let unlink t page =
  for level = Array.length page.forward - 1 downto 0 do
    let node = ref t.head in
    let continue = ref true in
    while !continue do
      match !node.forward.(level) with
      | Some p when p == page ->
        !node.forward.(level) <- page.forward.(level);
        continue := false
      | Some p -> node := p
      | None -> continue := false
    done
  done;
  t.pages <- t.pages - 1

let remove_at t p pos =
  Array.blit p.pkeys (pos + 1) p.pkeys pos (p.pn - pos - 1);
  Array.blit p.pvals (pos + 1) p.pvals pos (p.pn - pos - 1);
  p.pn <- p.pn - 1;
  p.pkeys.(p.pn) <- "";
  if p.pn = 0 then unlink t p

let delete t probe =
  let rec drop cursor removed =
    match cursor with
    | Some (p, pos) when pos < p.pn && p.pkeys.(pos) = probe ->
      remove_at t p pos;
      t.entries <- t.entries - 1;
      drop (advance p pos) true
    | _ -> removed
  in
  let p, pos = locate t probe in
  drop (advance p pos) false

let delete_value t probe value =
  let rec hunt cursor =
    match cursor with
    | Some (p, pos) when p.pkeys.(pos) = probe ->
      if p.pvals.(pos) = value then begin
        remove_at t p pos;
        t.entries <- t.entries - 1;
        true
      end
      else hunt (advance p (pos + 1))
    | _ -> false
  in
  let p, pos = locate t probe in
  hunt (advance p pos)

(* --- scans and iteration --- *)

let scan_from t probe n =
  let rec take cursor acc remaining =
    if remaining = 0 then List.rev acc
    else
      match cursor with
      | None -> List.rev acc
      | Some (p, pos) -> take (advance p (pos + 1)) ((p.pkeys.(pos), p.pvals.(pos)) :: acc) (remaining - 1)
  in
  let p, pos = locate t probe in
  take (advance p pos) [] n

let iter_sorted t f =
  let emit key vs = f key (Array.of_list (List.rev vs)) in
  let rec walk cursor current =
    match cursor with
    | None -> (match current with None -> () | Some (k, vs) -> emit k vs)
    | Some (p, pos) ->
      let k = p.pkeys.(pos) and v = p.pvals.(pos) in
      let current =
        match current with
        | Some (k0, vs) when k0 = k -> Some (k0, v :: vs)
        | Some (k0, vs) ->
          emit k0 vs;
          Some (k, [ v ])
        | None -> Some (k, [ v ])
      in
      walk (advance p (pos + 1)) current
  in
  walk (advance t.head 0) None

let entry_count t = t.entries

let clear t =
  Array.fill t.head.forward 0 max_height None;
  t.entries <- 0;
  t.pages <- 0;
  t.splits <- 0

(* --- memory model --- *)

(* Pages occupy the same fixed node size as B+tree nodes plus their tower
   pointers; long keys live out of line. *)
let memory_bytes t =
  let bytes = ref 0 in
  let rec walk = function
    | None -> ()
    | Some p ->
      bytes := !bytes + Mem_model.btree_node_size + (Array.length p.forward * Mem_model.pointer_size);
      for i = 0 to p.pn - 1 do
        let len = String.length p.pkeys.(i) in
        if len > 8 then bytes := !bytes + len
      done;
      walk p.forward.(0)
  in
  walk t.head.forward.(0);
  !bytes

let page_occupancy t =
  let slots = ref 0 and used = ref 0 in
  let rec go = function
    | None -> ()
    | Some p ->
      slots := !slots + page_capacity;
      used := !used + p.pn;
      go p.forward.(0)
  in
  go t.head.forward.(0);
  if !slots = 0 then 0.0 else float_of_int !used /. float_of_int !slots

let page_count t = t.pages

(* --- structural self-check (differential-testing harness support) ---

   Checks page ordering and fill, counter accounting, and tower ("level
   monotonicity") consistency: the level-l list must be an order-preserving
   subsequence of the level-(l-1) list, and every chained page must be
   non-empty (empty pages are unlinked eagerly). *)
let check_structure t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let level_chain level =
    let rec go p acc =
      if Array.length p.forward <= level then begin
        err "page in level-%d chain has height %d" level (Array.length p.forward);
        List.rev acc
      end
      else
        match p.forward.(level) with
        | None -> List.rev acc
        | Some nxt -> go nxt (nxt :: acc)
    in
    go t.head []
  in
  let base = level_chain 0 in
  let n_pages = List.length base in
  if n_pages <> t.pages then err "page counter %d <> chained pages %d" t.pages n_pages;
  let n_entries = List.fold_left (fun acc p -> acc + p.pn) 0 base in
  if n_entries <> t.entries then err "entry counter %d <> chained entries %d" t.entries n_entries;
  let last = ref None in
  List.iter
    (fun p ->
      if p.pn < 1 || p.pn > page_capacity then err "page fill %d outside [1,%d]" p.pn page_capacity;
      for i = 0 to p.pn - 2 do
        if String.compare p.pkeys.(i) p.pkeys.(i + 1) > 0 then
          err "page keys unsorted: %S > %S" p.pkeys.(i) p.pkeys.(i + 1)
      done;
      if p.pn > 0 then begin
        (match !last with
        | Some k when String.compare k p.pkeys.(0) > 0 ->
          err "page chain key order broken: %S > %S" k p.pkeys.(0)
        | _ -> ());
        last := Some p.pkeys.(p.pn - 1)
      end)
    base;
  if Array.length t.head.forward <> max_height then
    err "head sentinel height %d <> %d" (Array.length t.head.forward) max_height;
  let lower = ref base in
  (try
     for level = 1 to max_height - 1 do
       let chain = level_chain level in
       (* subsequence check against the level below, by identity *)
       let rec subseq upper lower =
         match (upper, lower) with
         | [], _ -> true
         | _ :: _, [] -> false
         | u :: us, l :: ls -> if u == l then subseq us ls else subseq upper ls
       in
       if not (subseq chain !lower) then begin
         err "level-%d list is not a subsequence of level-%d" level (level - 1);
         raise Exit
       end;
       lower := chain
     done
   with Exit -> ());
  List.rev !errs
