(** Paged-deterministic Skip List (paper §4.1): entries live in B+tree-like
    pages chained at level 0, with deterministic express towers, so the
    structure "resembles a B+tree" as in the implementation the paper used.
    Duplicate keys permitted.

    Implements {!Hi_index.Index_intf.DYNAMIC}. *)

type t

val name : string
val create : unit -> t
val insert : t -> string -> int -> unit
val mem : t -> string -> bool
val find : t -> string -> int option
val find_all : t -> string -> int list
val update : t -> string -> int -> bool
val delete : t -> string -> bool
val delete_value : t -> string -> int -> bool
val scan_from : t -> string -> int -> (string * int) list
val iter_sorted : t -> (string -> int array -> unit) -> unit
val entry_count : t -> int
val clear : t -> unit

val memory_bytes : t -> int
(** Modelled layout: one fixed-size node per page plus its tower pointers,
    plus out-of-line bytes for long keys. *)

val page_occupancy : t -> float
(** Average page fill factor (~0.69 for random insertion order). *)

val page_count : t -> int
val page_capacity : int

val check_structure : t -> string list
(** Structural invariant self-check: page ordering and fill, tower
    level-monotonicity (each level list is a subsequence of the one
    below), counter accounting.  [] when consistent. *)
