(* Replication tap (DESIGN.md §15): the publish side of WAL streaming.

   One tap serves a whole primary.  It owns [streams] independent record
   streams — one per partition WAL plus one for the coordinator decision
   log — and assigns each published record a per-stream log sequence
   number (LSN), dense from 0 at primary boot.  [stream_id] identifies
   the boot: a restarted primary draws fresh LSNs, so a subscriber
   presenting positions from another [stream_id] must resynchronize from
   a snapshot rather than resume.

   Records enter through {!publish}, called by the WAL's {!Wal.set_tap}
   hook with each group-commit batch *after* its fsync — only durable
   records are ever streamed.  Each stream keeps a bounded ring of its
   most recent records so a briefly-disconnected follower can resume by
   replaying the gap; a follower whose position has fallen out of the
   ring needs a snapshot.

   Followers are registered with {!subscribe} and receive batches
   through a [push] callback (the server enqueues frames on the
   connection's writer).  A follower starts inactive on every stream:
   {!attach} activates all streams atomically when the follower can
   resume, and {!activate} brings one stream live at the end of its
   snapshot.  Activation and publication serialize on the tap lock, so a
   follower observes each stream as a gap-free LSN sequence.

   Semi-synchronous replication: with [sync_replicas = n > 0],
   {!publish} blocks (bounded by [ack_timeout_s]) until [n] sync
   followers have acknowledged the batch's last LSN.  Because the tap
   callback runs inside the partition's group-commit barrier, this
   delays the primary's client acknowledgments until the batch is also
   applied on the replicas — the zero-loss-failover guarantee.  When
   fewer than [n] sync followers are attached, or the deadline passes,
   the wait degrades to asynchronous (counted in [repl_degraded]) rather
   than stalling the primary forever. *)

module Metrics = Hi_util.Metrics

let mscope = Metrics.scope "repl"
let m_published = Metrics.counter mscope "records_published"
let m_degraded = Metrics.counter mscope "semi_sync_degraded"
let m_waits = Metrics.histogram mscope "semi_sync_wait_seconds"
let m_detached = Metrics.counter mscope "followers_detached"

type batch = { stream : int; lsn : int; records : string list }

type follower = {
  fid : int;
  push : batch -> bool; (* false = dead sink; the tap detaches it *)
  sync : bool; (* counts toward the semi-sync quorum *)
  active : bool array; (* per stream: attached and in LSN order *)
  acked : int array; (* per stream: highest applied LSN reported *)
}

type stream_state = {
  mutable next_lsn : int;
  ring : (int * int * string) Queue.t;
      (* (lsn, publish seq, record), oldest first, contiguous LSNs; the
         seq is global across streams so a resume can replay the gaps in
         the original publish order *)
  mutable ring_bytes : int;
}

type t = {
  lock : Mutex.t;
  streams : stream_state array;
  stream_id : int;
  retain_bytes : int;
  sync_replicas : int;
  ack_timeout_s : float;
  mutable pub_seq : int; (* global publish order, all streams *)
  mutable followers : follower list;
  mutable next_fid : int;
}

let create ~streams ~stream_id ~retain_bytes ~sync_replicas ~ack_timeout_s =
  if streams <= 0 then invalid_arg "Repl_tap.create: need at least one stream";
  {
    lock = Mutex.create ();
    streams =
      Array.init streams (fun _ -> { next_lsn = 0; ring = Queue.create (); ring_bytes = 0 });
    stream_id;
    retain_bytes;
    sync_replicas;
    ack_timeout_s;
    pub_seq = 0;
    followers = [];
    next_fid = 0;
  }

let stream_id t = t.stream_id
let streams t = Array.length t.streams

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let next_lsn t ~stream = locked t (fun () -> t.streams.(stream).next_lsn)

let positions t =
  locked t (fun () -> Array.map (fun st -> st.next_lsn - 1) t.streams)

let followers t = locked t (fun () -> List.length t.followers)

(* -- follower registry --------------------------------------------------- *)

let subscribe t ~sync ~push =
  locked t (fun () ->
      let fid = t.next_fid in
      t.next_fid <- t.next_fid + 1;
      let n = Array.length t.streams in
      t.followers <-
        { fid; push; sync; active = Array.make n false; acked = Array.make n (-1) }
        :: t.followers;
      fid)

let unsubscribe t fid =
  locked t (fun () -> t.followers <- List.filter (fun f -> f.fid <> fid) t.followers)

let find_follower t fid = List.find_opt (fun f -> f.fid = fid) t.followers

let detach_locked t fid =
  Metrics.incr m_detached;
  t.followers <- List.filter (fun f -> f.fid <> fid) t.followers

let ack t fid ~stream ~lsn =
  locked t (fun () ->
      match find_follower t fid with
      | Some f -> if lsn > f.acked.(stream) then f.acked.(stream) <- lsn
      | None -> ())

(* -- attachment ---------------------------------------------------------- *)

(* The ring holds LSNs [next_lsn - length .. next_lsn - 1]; a follower at
   position [from] can resume iff every record it is missing is still
   retained (or it is missing nothing). *)
let tailable st ~from =
  from <= st.next_lsn - 1
  && (from >= st.next_lsn - 1 - Queue.length st.ring)

(* Atomically decide resume-vs-snapshot for a subscriber and, on resume,
   replay each stream's gap and activate it.  [hello ~resync] runs under
   the tap lock before any gap batch is pushed, so the server can queue
   its hello frame ahead of the stream — the decision and the first
   batches are a single atomic step with respect to {!publish}.
   [applied = None] (fresh replica or a foreign [stream_id]) always
   snapshots.  Returns [true] when the follower resumed and is live. *)
let attach t fid ~applied ~hello =
  locked t (fun () ->
      match find_follower t fid with
      | None -> invalid_arg "Repl_tap.attach: unknown follower"
      | Some f ->
        let ok =
          match applied with
          | Some a when Array.length a = Array.length t.streams ->
            Array.for_all2 (fun st from -> tailable st ~from) t.streams a
          | Some _ | None -> false
        in
        hello ~resync:(not ok);
        (match (ok, applied) with
        | true, Some a ->
          (* Replay the gaps of every stream merged by their global
             publish sequence, so a resumed follower observes exactly
             the record order a live connection saw: each Decide after
             the Prepares that precede it, each Mark after everything
             published before it.  Replaying stream by stream would
             invert cross-stream orderings — a stashed Prepare could
             apply after later commits to the same keys, or a Mark
             could prune a decision a partition gap still needs. *)
          let entries = ref [] in
          Array.iteri
            (fun s st ->
              Queue.iter
                (fun (lsn, seq, r) ->
                  if lsn > a.(s) then entries := (seq, s, lsn, r) :: !entries)
                st.ring)
            t.streams;
          let entries =
            List.sort (fun (s1, _, _, _) (s2, _, _, _) -> compare s1 s2) !entries
          in
          (* batch maximal same-stream runs: per-stream LSNs are dense,
             so a run is a contiguous slice of its stream *)
          let rec emit = function
            | [] -> ()
            | (_, s, lsn, r) :: rest ->
              let rec take acc next = function
                | (_, s', lsn', r') :: rest' when s' = s && lsn' = next ->
                  take (r' :: acc) (next + 1) rest'
                | rest' -> (List.rev acc, rest')
              in
              let records, rest = take [ r ] (lsn + 1) rest in
              ignore (f.push { stream = s; lsn; records });
              emit rest
          in
          emit entries;
          Array.iteri
            (fun s _ ->
              f.active.(s) <- true;
              f.acked.(s) <- a.(s))
            t.streams
        | _ -> ());
        ok)

(* Snapshot-mode attachment of one stream: mark it live and return the
   LSN the snapshot represents ([next_lsn - 1]).  The caller must hold
   whatever excludes publishes to this stream while it enumerates the
   snapshot (the partition's own domain; the coordinator lock), so
   nothing can slip between the snapshot and the activation. *)
let activate t fid ~stream =
  locked t (fun () ->
      match find_follower t fid with
      | None -> None (* unsubscribed while the snapshot job was queued *)
      | Some f ->
        f.active.(stream) <- true;
        Some (t.streams.(stream).next_lsn - 1))

(* -- publication --------------------------------------------------------- *)

let trim_ring t st =
  while st.ring_bytes > t.retain_bytes && Queue.length st.ring > 1 do
    let _, _, r = Queue.pop st.ring in
    st.ring_bytes <- st.ring_bytes - String.length r
  done

(* Block until [t.sync_replicas] sync followers have acked [lsn] on
   [stream], the attached sync-follower count drops below the quorum, or
   the deadline passes (both degrade to async).  Polling instead of a
   condition wait: the stdlib's [Condition] has no timed wait, and the
   poll granularity is far below the fsync the caller just paid. *)
let wait_quorum t ~stream ~lsn =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. t.ack_timeout_s in
  let rec loop () =
    let acked, attached =
      locked t (fun () ->
          List.fold_left
            (fun (acked, attached) f ->
              if f.sync && f.active.(stream) then
                ((if f.acked.(stream) >= lsn then acked + 1 else acked), attached + 1)
              else (acked, attached))
            (0, 0) t.followers)
    in
    if acked >= t.sync_replicas then true
    else if attached < t.sync_replicas then false
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.0002;
      loop ()
    end
  in
  let ok = loop () in
  Metrics.observe m_waits (Unix.gettimeofday () -. t0);
  if not ok then Metrics.incr m_degraded

(* Assign LSNs, retain, and push to active followers — the part that
   must serialize with other publishes and with attachment.  Returns the
   batch's last LSN ([next_lsn - 1] when [records] is empty).  The
   semi-sync wait is separate ({!wait}) so a caller holding a lock the
   acking followers contend with (the coordinator's decision log lock)
   can release it first. *)
let publish_nowait t ~stream records =
  locked t (fun () ->
      let st = t.streams.(stream) in
      let first = st.next_lsn in
      List.iter
        (fun r ->
          Queue.add (st.next_lsn, t.pub_seq, r) st.ring;
          t.pub_seq <- t.pub_seq + 1;
          st.ring_bytes <- st.ring_bytes + String.length r;
          st.next_lsn <- st.next_lsn + 1)
        records;
      trim_ring t st;
      Metrics.add m_published (List.length records);
      (if records <> [] then begin
         let batch = { stream; lsn = first; records } in
         let dead =
           List.filter_map
             (fun f ->
               if f.active.(stream) && not (f.push batch) then Some f.fid else None)
             t.followers
         in
         List.iter (detach_locked t) dead
       end);
      st.next_lsn - 1)

let wait t ~stream ~lsn =
  if t.sync_replicas > 0 && lsn >= 0 then wait_quorum t ~stream ~lsn

let publish t ~stream records =
  if records <> [] then begin
    let last = publish_nowait t ~stream records in
    wait t ~stream ~lsn:last
  end
