(* Append-only write-ahead log file: length-prefixed, CRC-32-checksummed
   records with buffered appends and an explicit sync barrier
   (DESIGN.md §13).

   frame = u32 BE payload-length | payload | u32 BE CRC-32(payload)

   The framing is the Wire discipline (DESIGN.md §12) applied to a file:
   the CRC is verified before a record is surfaced, and a corrupted
   length field is caught by the bounded [max_record] check or by the CRC
   over the mis-framed span.  The reader stops at the first record that
   does not check out — everything before it is the durable prefix,
   everything after is a torn tail to be truncated, never a crash.

   Group commit: [append] only buffers; [sync] writes the buffered batch
   with one write(2) and one fsync(2).  Callers amortize the barrier by
   appending every record of a batch of transactions before syncing once;
   acknowledgments must wait for [sync] to return (the engine's
   [on_durable] queue enforces this).

   Fault injection ([create ~fault]) models what a crash or failing disk
   does to the file: a torn write persists a mid-record byte prefix of
   the batch, a short write persists only whole leading records, and an
   fsync failure writes everything but the barrier fails.  All three
   raise {!Io_error} so the caller knows durability was not achieved;
   the damage on disk is deterministic from the fault seed. *)

module Metrics = Hi_util.Metrics
module Crc32 = Hi_util.Crc32
module Fault = Hi_util.Fault

exception Io_error of string

(* A record big enough to trip this is a corrupted length field, not a
   real record: the engine's transactions are bounded far below it. *)
let max_record = 1 lsl 26

let mscope = Metrics.scope "wal"
let m_appends = Metrics.counter mscope "wal_appends"
let m_fsyncs = Metrics.counter mscope "fsync_count"
let m_bytes = Metrics.counter mscope "bytes_written"
let m_sync_errors = Metrics.counter mscope "sync_errors"
let m_batch = Metrics.histogram mscope "group_commit_batch"
let m_recovery = Metrics.histogram mscope "recovery_replay_seconds"
let m_torn_tails = Metrics.counter mscope "torn_tails_truncated"

type tail = Clean | Torn of { dropped_bytes : int }

let tail_to_string = function
  | Clean -> "clean"
  | Torn { dropped_bytes } -> Printf.sprintf "torn (%d bytes dropped)" dropped_bytes

(* -- framing ------------------------------------------------------------- *)

let frame_into buf record =
  let len = String.length record in
  Buffer.add_int32_be buf (Int32.of_int len);
  Buffer.add_string buf record;
  Buffer.add_int32_be buf (Crc32.string record)

let framed_size record = String.length record + 8

(* Scan [len] bytes of [data] for valid frames.  Returns the records of
   the longest valid prefix (in order) and the byte length of that
   prefix; anything past it is torn. *)
let scan data len =
  let records = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && len - !pos >= 8 do
    let rlen = Int32.to_int (Bytes.get_int32_be data !pos) land 0xffffffff in
    if rlen > max_record || !pos + 8 + rlen > len then ok := false
    else
      let payload = Bytes.sub_string data (!pos + 4) rlen in
      let stored = Bytes.get_int32_be data (!pos + 4 + rlen) in
      if Crc32.string payload <> stored then ok := false
      else begin
        records := payload :: !records;
        pos := !pos + 8 + rlen
      end
  done;
  (List.rev !records, !pos)

(* -- reading ------------------------------------------------------------- *)

let read_fd fd =
  let size = (Unix.fstat fd).Unix.st_size in
  let data = Bytes.create size in
  let got = ref 0 in
  (try
     while !got < size do
       match Unix.read fd data !got (size - !got) with
       | 0 -> raise Exit
       | n -> got := !got + n
     done
   with Exit -> ());
  let records, valid = scan data !got in
  let tail = if valid = !got then Clean else Torn { dropped_bytes = !got - valid } in
  (records, valid, tail)

let read path =
  if not (Sys.file_exists path) then ([], Clean)
  else begin
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let records, _, tail = read_fd fd in
        (records, tail))
  end

(* -- writer -------------------------------------------------------------- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  buf : Buffer.t; (* framed, unsynced records *)
  mutable pending : int; (* records in [buf] *)
  mutable pending_sizes : int list; (* framed sizes, newest first (short-write cuts) *)
  mutable pending_records : string list; (* raw payloads, newest first (replication tap) *)
  mutable synced_bytes : int; (* durable bytes on disk *)
  mutable closed : bool;
  mutable tap : (string list -> unit) option; (* called with each durable batch *)
  fault : Fault.t option;
}

let wrap_unix f = try f () with Unix.Unix_error (e, op, _) -> raise (Io_error (op ^ ": " ^ Unix.error_message e))

(* Open (creating if needed), truncate any torn tail so appends extend a
   valid prefix, and position at the end.  Returns the surviving records
   alongside the writer. *)
let open_log ?fault path =
  wrap_unix (fun () ->
      let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
      let records, valid, tail = read_fd fd in
      (match tail with
      | Torn _ ->
        Metrics.incr m_torn_tails;
        Unix.ftruncate fd valid
      | Clean -> ());
      ignore (Unix.lseek fd valid Unix.SEEK_SET);
      ( records,
        tail,
        {
          path;
          fd;
          buf = Buffer.create 4096;
          pending = 0;
          pending_sizes = [];
          pending_records = [];
          synced_bytes = valid;
          closed = false;
          tap = None;
          fault;
        } ))

let create ?fault path =
  let _, _, t = open_log ?fault path in
  t

let append t record =
  if t.closed then invalid_arg "Wal.append: closed";
  frame_into t.buf record;
  t.pending <- t.pending + 1;
  t.pending_sizes <- framed_size record :: t.pending_sizes;
  (match t.tap with
  | Some _ -> t.pending_records <- record :: t.pending_records
  | None -> ());
  Metrics.incr m_appends

(* Replication tap (DESIGN.md §15): [f] is called with each batch of raw
   record payloads, in append order, immediately after the batch's fsync
   succeeds — i.e. only with records that are genuinely durable.  A
   failed sync never reaches the tap: its records were not acknowledged
   and must not be replicated.  The callback runs on the syncing thread
   (the partition domain), so a blocking tap delays acknowledgment — the
   hook semi-synchronous replication uses to gate acks on follower
   acks. *)
let set_tap t f =
  t.tap <- f;
  match f with None -> t.pending_records <- [] | Some _ -> ()

let pending t = t.pending
let bytes_on_disk t = t.synced_bytes
let path t = t.path

let write_all fd s pos len =
  let written = ref 0 in
  while !written < len do
    match Unix.write_substring fd s (pos + !written) (len - !written) with
    | n -> written := !written + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Largest frame-boundary offset <= cut, so a short write drops whole
   trailing records.  [sizes] is newest-first. *)
let boundary_before sizes cut =
  let rec go acc = function
    | [] -> acc
    | sz :: rest ->
      let b = acc + sz in
      if b <= cut then go b rest else acc
  in
  go 0 (List.rev sizes)

(* Flush the buffered batch with one write and one fsync.  Returns how
   many records became durable.  Under an injected disk fault the damage
   is applied to the file and {!Io_error} is raised: the records were NOT
   acknowledged durable. *)
let sync t =
  if t.closed then invalid_arg "Wal.sync: closed";
  if t.pending = 0 then 0
  else begin
    let batch = Buffer.contents t.buf in
    let len = String.length batch in
    let count = t.pending in
    let records = List.rev t.pending_records in
    let fail msg =
      Buffer.clear t.buf;
      t.pending <- 0;
      t.pending_sizes <- [];
      t.pending_records <- [];
      Metrics.incr m_sync_errors;
      raise (Io_error msg)
    in
    (match t.fault with
    | Some f when Fault.fsync_fail f ->
      (* data reaches the page cache, the barrier fails: nothing in the
         batch may be trusted (it may or may not survive a real crash —
         deterministically, here it does) *)
      wrap_unix (fun () -> write_all t.fd batch 0 len);
      t.synced_bytes <- t.synced_bytes + len;
      fail "fsync failed"
    | Some f when Fault.torn_write f ->
      let cut = Fault.cut_point f len in
      wrap_unix (fun () -> write_all t.fd batch 0 cut);
      t.synced_bytes <- t.synced_bytes + cut;
      fail (Printf.sprintf "torn write (%d of %d bytes)" cut len)
    | Some f when Fault.short_write f ->
      let cut = boundary_before t.pending_sizes (Fault.cut_point f len) in
      wrap_unix (fun () -> write_all t.fd batch 0 cut);
      t.synced_bytes <- t.synced_bytes + cut;
      fail (Printf.sprintf "short write (%d of %d bytes)" cut len)
    | _ -> ());
    wrap_unix (fun () ->
        write_all t.fd batch 0 len;
        Unix.fsync t.fd);
    t.synced_bytes <- t.synced_bytes + len;
    Buffer.clear t.buf;
    t.pending <- 0;
    t.pending_sizes <- [];
    t.pending_records <- [];
    Metrics.incr m_fsyncs;
    Metrics.add m_bytes len;
    Metrics.observe m_batch (float_of_int count);
    (* publish after the barrier: the tap sees only durable records *)
    (match t.tap with Some f -> f records | None -> ());
    count
  end

(* Drop everything (post-checkpoint): the log's contents are now captured
   by the checkpoint file, so restart replay must not see them again. *)
let truncate t =
  if t.closed then invalid_arg "Wal.truncate: closed";
  Buffer.clear t.buf;
  t.pending <- 0;
  t.pending_sizes <- [];
  t.pending_records <- [];
  wrap_unix (fun () ->
      Unix.ftruncate t.fd 0;
      ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
      Unix.fsync t.fd);
  t.synced_bytes <- 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end

(* -- atomic snapshot files (checkpoints) --------------------------------- *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Write a framed-record file atomically: stream to [path ^ ".tmp"],
   fsync, rename over [path], fsync the directory.  A crash leaves either
   the old file or the new one, never a half-written snapshot. *)
let write_file_atomic ~path emit =
  wrap_unix (fun () ->
      let tmp = path ^ ".tmp" in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let buf = Buffer.create 65536 in
          let flush () =
            if Buffer.length buf > 0 then begin
              write_all fd (Buffer.contents buf) 0 (Buffer.length buf);
              Buffer.clear buf
            end
          in
          emit (fun record ->
              frame_into buf record;
              if Buffer.length buf >= 1 lsl 20 then flush ());
          flush ();
          Unix.fsync fd);
      Unix.rename tmp path;
      fsync_dir (Filename.dirname path))

(* -- recovery instrumentation -------------------------------------------- *)

let observe_recovery seconds = Metrics.observe m_recovery seconds
