(** Append-only write-ahead log file (DESIGN.md §13): length-prefixed,
    CRC-32-checksummed records, buffered appends, and an explicit group
    commit barrier.

    [frame = u32 BE len | payload | u32 BE CRC-32(payload)] — the Wire
    framing discipline applied to a file.  {!append} buffers; {!sync}
    makes everything appended so far durable with one write and one
    fsync.  Readers surface only records whose CRC checks out and stop at
    the first that does not: a torn tail truncates to the last valid
    prefix instead of crashing recovery.

    Injected disk faults ({!Hi_util.Fault}: torn write, short write,
    fsync failure) damage the file deterministically and raise
    {!Io_error}, so tests can prove recovery degrades gracefully. *)

exception Io_error of string

val max_record : int
(** Upper bound on one record's payload; larger declared lengths are
    treated as corruption. *)

(** What the reader found after the last valid record. *)
type tail = Clean | Torn of { dropped_bytes : int }

val tail_to_string : tail -> string

val read : string -> string list * tail
(** [read path] scans the file (missing file = empty log) and returns the
    records of the longest valid prefix, in append order.  Never raises
    on corrupt contents. *)

type t

val create : ?fault:Hi_util.Fault.t -> string -> t
(** Open for appending, creating the file if needed and truncating any
    torn tail first.  @raise Io_error on filesystem errors. *)

val open_log : ?fault:Hi_util.Fault.t -> string -> string list * tail * t
(** {!create}, but also return the surviving records (recovery replay)
    and whether a torn tail was truncated. *)

val append : t -> string -> unit
(** Buffer one record.  Not durable until {!sync} returns. *)

val sync : t -> int
(** Group commit barrier: write the buffered batch (one write, one
    fsync) and return how many records became durable; [0] when nothing
    was pending (no fsync issued).  Under an injected disk fault the
    deterministic damage is applied and {!Io_error} is raised — the batch
    was NOT acknowledged durable. *)

val pending : t -> int
(** Records appended but not yet synced. *)

val set_tap : t -> (string list -> unit) option -> unit
(** Replication tap (DESIGN.md §15): install a callback invoked with
    each batch of raw record payloads, in append order, immediately
    after the batch's fsync succeeds — only durable records reach it; a
    failed sync drops the batch without publishing.  Runs on the syncing
    thread, so a blocking tap delays acknowledgment (the semi-sync
    hook).  [None] uninstalls. *)

val bytes_on_disk : t -> int
(** Durable log size (checkpoint trigger input). *)

val path : t -> string

val truncate : t -> unit
(** Drop the log (post-checkpoint): ftruncate to zero and fsync. *)

val close : t -> unit

val write_file_atomic : path:string -> ((string -> unit) -> unit) -> unit
(** [write_file_atomic ~path emit] streams framed records into
    [path ^ ".tmp"], fsyncs, renames over [path] and fsyncs the
    directory — a crash leaves the old snapshot or the new one, never a
    half-written file.  [emit append] calls [append] once per record. *)

val observe_recovery : float -> unit
(** Record a recovery replay duration in the wal metrics scope. *)
