(** Replication tap (DESIGN.md §15): the publish side of WAL streaming.

    One tap per primary, holding [streams] independent record streams
    (one per partition WAL plus one for the coordinator decision log).
    Every published record gets a per-stream LSN, dense from 0 at
    primary boot; [stream_id] names the boot, so positions from another
    boot force a snapshot resync instead of a bogus resume.  Each stream
    retains a bounded ring of recent records for gap replay.

    {!publish} is driven by {!Wal.set_tap}, i.e. runs after each
    group-commit fsync with only durable records, on the syncing
    domain.  With [sync_replicas > 0] it also blocks (bounded by
    [ack_timeout_s]) until that many sync followers acknowledged the
    batch — semi-synchronous replication, degrading to asynchronous when
    too few followers are attached or the deadline passes. *)

(** One ordered slice of a stream: [records] carry LSNs
    [lsn, lsn + length records - 1]. *)
type batch = { stream : int; lsn : int; records : string list }

type t

val create :
  streams:int ->
  stream_id:int ->
  retain_bytes:int ->
  sync_replicas:int ->
  ack_timeout_s:float ->
  t

val stream_id : t -> int
val streams : t -> int

val publish : t -> stream:int -> string list -> unit
(** Assign LSNs to a durable batch, retain it in the stream's ring, push
    it to every follower active on [stream] (dead sinks are detached),
    then run the semi-sync wait if configured.  Call only from the
    WAL tap of the matching stream. *)

val publish_nowait : t -> stream:int -> string list -> int
(** Like {!publish} but without the semi-sync wait; returns the batch's
    last LSN.  For publishers that hold a lock the acking followers
    contend with (the coordinator decision-log lock): publish under the
    lock, release it, then {!wait} on the returned LSN. *)

val wait : t -> stream:int -> lsn:int -> unit
(** The semi-sync quorum wait of {!publish}, alone: block (bounded by
    [ack_timeout_s]) until [sync_replicas] sync followers acked [lsn]
    on [stream].  No-op when semi-sync is off or [lsn < 0]. *)

val subscribe : t -> sync:bool -> push:(batch -> bool) -> int
(** Register a follower (inactive on every stream) and return its id.
    [push] must enqueue without blocking and return [false] when the
    sink is dead — the tap detaches the follower.  [sync] followers
    count toward the semi-sync quorum. *)

val unsubscribe : t -> int -> unit

val attach : t -> int -> applied:int array option -> hello:(resync:bool -> unit) -> bool
(** Atomically decide resume-vs-snapshot for follower [fid].  When
    [applied] holds a position per stream and every gap is still
    retained, replay the gaps through [push], activate all streams and
    return [true].  Otherwise return [false]: the caller must snapshot
    every stream and {!activate} each.  [hello ~resync] is invoked under
    the tap lock before any gap batch, so a hello frame queued there is
    ordered ahead of the stream.  Gaps replay merged across streams in
    the original global publish order, so a resumed follower observes
    exactly what a live connection delivered: every Decide after the
    Prepares that precede it, every Mark after all records published
    before it. *)

val activate : t -> int -> stream:int -> int option
(** Snapshot-mode attachment: mark [stream] live for [fid] and return
    the LSN the snapshot represents ([next_lsn - 1]), or [None] if the
    follower has unsubscribed meanwhile (a dead connection's snapshot
    job draining late — skip the snapshot).  The caller must exclude
    publishes to [stream] from snapshot enumeration through activation
    (partition domain; coordinator lock). *)

val ack : t -> int -> stream:int -> lsn:int -> unit
(** Follower [fid] reports it applied [stream] through [lsn]
    (monotonic; stale acks are ignored). *)

val next_lsn : t -> stream:int -> int

val positions : t -> int array
(** Last assigned LSN per stream ([-1] when nothing published). *)

val followers : t -> int
