(** Exact latency recorder with percentile queries (used for Table 3's
    50 %-tile / 99 %-tile / MAX transaction latencies). *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]]; [nan] when empty.
    @raise Invalid_argument when [p] is out of range. *)

val median : t -> float
val max_value : t -> float
val mean : t -> float

val iter : (float -> unit) -> t -> unit
(** Visit every recorded sample in insertion order. *)

val merge_into : into:t -> t -> unit
(** Append all of [t]'s samples to [into] (combining per-partition
    recorders after their domains are joined). *)

val clear : t -> unit
