(** Deterministic fault injection for the storage path.

    A seeded decision source (driven by {!Xorshift}) consulted by the
    anti-caching block store on every write and fetch.  Models transient
    fetch failures, permanent at-rest block corruption, and latency
    spikes.  All decisions derive from one integer seed, so a fault
    schedule replays identically across runs. *)

type config = {
  transient_fetch_p : float;  (** per-fetch-attempt probability of a transient failure *)
  corrupt_block_p : float;  (** per-write probability the stored block is corrupted *)
  latency_spike_p : float;  (** per-fetch probability of a latency spike *)
  latency_spike_s : float;  (** duration of an injected spike, seconds *)
}

val no_faults : config
(** All probabilities zero. *)

type t

val create : ?config:config -> int -> t
(** [create ~config seed] — decisions are a pure function of [seed] and
    the call sequence. *)

val transient_fetch : t -> bool
(** Should this fetch attempt fail transiently? *)

val corrupt_write : t -> bool
(** Should this block be corrupted at rest? *)

val latency_spike : t -> float
(** Extra seconds of latency for this fetch ([0.0] most of the time). *)

val corruption_offset : t -> int -> int
(** [corruption_offset t len] picks the payload byte to flip. *)

(** Injection counts, for reporting faults injected vs. faults survived. *)
type counters = { transient_injected : int; corruptions_injected : int; spikes_injected : int }

val counters : t -> counters
