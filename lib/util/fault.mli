(** Deterministic fault injection for the storage path.

    A seeded decision source (driven by {!Xorshift}) consulted by the
    anti-caching block store on every write and fetch, and by the
    write-ahead log on every sync.  Models transient fetch failures,
    permanent at-rest block corruption, latency spikes, and the disk
    faults a crash inflicts on an append-only log: torn writes, short
    writes and fsync failures (DESIGN.md §13).  All decisions derive from
    one integer seed, so a fault schedule replays identically across
    runs. *)

type config = {
  transient_fetch_p : float;  (** per-fetch-attempt probability of a transient failure *)
  corrupt_block_p : float;  (** per-write probability the stored block is corrupted *)
  latency_spike_p : float;  (** per-fetch probability of a latency spike *)
  latency_spike_s : float;  (** duration of an injected spike, seconds *)
  torn_write_p : float;  (** per-sync probability the batch is cut mid-record *)
  short_write_p : float;  (** per-sync probability trailing whole records are dropped *)
  fsync_fail_p : float;  (** per-sync probability the fsync barrier fails *)
}

val no_faults : config
(** All probabilities zero. *)

type t

val create : ?config:config -> int -> t
(** [create ~config seed] — decisions are a pure function of [seed] and
    the call sequence. *)

val transient_fetch : t -> bool
(** Should this fetch attempt fail transiently? *)

val corrupt_write : t -> bool
(** Should this block be corrupted at rest? *)

val latency_spike : t -> float
(** Extra seconds of latency for this fetch ([0.0] most of the time). *)

val corruption_offset : t -> int -> int
(** [corruption_offset t len] picks the payload byte to flip. *)

(** {1 Disk faults (write-ahead log, DESIGN.md §13)} *)

val torn_write : t -> bool
(** Should this sync persist only a mid-record byte prefix of the batch? *)

val short_write : t -> bool
(** Should this sync drop trailing whole records of the batch? *)

val fsync_fail : t -> bool
(** Should this sync's fsync barrier fail after the data is written? *)

val cut_point : t -> int -> int
(** [cut_point t len] picks where a torn or short write cuts the batch. *)

(** Injection counts, for reporting faults injected vs. faults survived. *)
type counters = {
  transient_injected : int;
  corruptions_injected : int;
  spikes_injected : int;
  torn_writes_injected : int;
  short_writes_injected : int;
  fsync_failures_injected : int;
}

val counters : t -> counters
