(** Deterministic profiling proxy for Table 2's PAPI hardware counters.

    Indexes increment logical counters (node visits, key comparisons,
    pointer dereferences) during traversal; {!instructions} and
    {!cache_lines_touched} model the hardware metrics.  The counters are
    domain-local: each partition domain of the sharded runtime profiles
    only its own traversals, and {!reset}/{!snapshot} operate on the
    calling domain's set. *)

type snapshot = {
  node_visits : int;
  key_comparisons : int;
  pointer_derefs : int;
}

val visit : unit -> unit
(** Record visiting one index node. *)

val compare_keys : int -> unit
(** Record [n] key comparisons. *)

val deref : unit -> unit
(** Record one pointer dereference (a cache-line jump in the C layout). *)

val reset : unit -> unit
val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff before after] is the per-interval delta. *)

val cache_lines_touched : snapshot -> int
(** Modelled distinct cache lines touched. *)

val instructions : snapshot -> int
(** Modelled instruction count. *)
