(** Process-wide metrics registry: counters, gauges and latency histograms
    under labeled scopes, with a snapshot API and a JSON emitter.

    Handles are resolved once and updated without re-resolving, so they
    are safe on hot paths.  Metrics with the same (scope, labels, name)
    share a handle and aggregate; gauges are last-writer-wins.  See
    DESIGN.md §10 for the metric name catalogue.

    The registry is domain-safe (DESIGN.md §11): registry mutation is
    mutex-guarded, counters and gauges are atomic cells, and histogram
    recording takes a per-histogram lock, so parallel partitions touching
    shared handles neither lose nor corrupt counts. *)

type labels = (string * string) list

type scope

val scope : ?labels:labels -> string -> scope
(** [scope ~labels name] names a subsystem; labels distinguish instances
    (e.g. [("index", "hybrid-btree")]).  Label order is normalized. *)

(** {1 Instruments} *)

type counter

val counter : scope -> string -> counter
(** Get or create a monotonic counter.
    @raise Invalid_argument if the name is registered with another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : scope -> string -> gauge
val set : gauge -> float -> unit
val set_int : gauge -> int -> unit
val gauge_value : gauge -> float

type histogram

val histogram : scope -> string -> histogram
val observe : histogram -> float -> unit

val histogram_count : histogram -> int
(** Number of samples recorded so far. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run a thunk, recording its wall-clock duration in seconds. *)

(** {1 Snapshot} *)

type hist_summary = { samples : int; mean : float; p50 : float; p99 : float; max : float }

type value =
  | Counter_value of int
  | Gauge_value of float
  | Hist_value of hist_summary

type sample = { sample_scope : string; sample_labels : labels; name : string; value : value }

val snapshot : unit -> sample list
(** Every registered metric, sorted by (scope, labels, name). *)

val to_json : sample list -> Json.t

val dump : unit -> string
(** [to_string_pretty (to_json (snapshot ()))]. *)

val reset : unit -> unit
(** Zero every registered metric in place (test/bench isolation).
    Handles stay valid. *)

val find_counter : scope -> string -> int option
val find_gauge : scope -> string -> float option
