(* Latency recorder with percentile queries (Table 3 reports 50%-tile,
   99%-tile and MAX transaction latencies).  Samples are kept exactly and
   sorted lazily on first query. *)

type t = { samples : float Vec.t; mutable sorted : bool }

let create () = { samples = Vec.create 0.0; sorted = true }

let record t x =
  Vec.push t.samples x;
  t.sorted <- false

let count t = Vec.length t.samples

let ensure_sorted t =
  if not t.sorted then begin
    let data = Vec.unsafe_data t.samples in
    (* only the first [len] entries are live; sort that prefix *)
    let live = Array.sub data 0 (Vec.length t.samples) in
    Array.sort compare live;
    Array.blit live 0 data 0 (Array.length live);
    t.sorted <- true
  end

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile";
  let n = Vec.length t.samples in
  if n = 0 then nan
  else begin
    ensure_sorted t;
    let rank = int_of_float (Float.round (p /. 100.0 *. float_of_int (n - 1))) in
    Vec.get t.samples rank
  end

let max_value t = percentile t 100.0
let median t = percentile t 50.0

let mean t =
  let n = Vec.length t.samples in
  if n = 0 then nan
  else begin
    let sum = ref 0.0 in
    Vec.iter (fun x -> sum := !sum +. x) t.samples;
    !sum /. float_of_int n
  end

let iter f t = Vec.iter f t.samples

(* Used to combine per-partition recorders after their domains have been
   joined; neither histogram may be touched concurrently. *)
let merge_into ~into t = Vec.iter (fun x -> record into x) t.samples

let clear t =
  Vec.clear t.samples;
  t.sorted <- true
