(** Minimal JSON value type and emitter (no parsing, no dependencies).

    Used by {!Metrics} and the benchmark harness to write machine-readable
    output such as [BENCH_results.json]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for human-diffable files. *)

val number : float -> t
(** [Float f], except nan and infinities become [Null] (JSON has no
    literal for them). *)
