(* CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.  Guards every
   anti-caching block against at-rest corruption: the checksum is computed
   when a block is written and re-verified on every fetch, so a flipped
   byte on the simulated cold store surfaces as a typed [Corrupt] error
   instead of silently reinstating garbage tuples. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then invalid_arg "Crc32.update: range";
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let string s = update 0l s 0 (String.length s)
let bytes b = string (Bytes.unsafe_to_string b)
