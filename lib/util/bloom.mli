(** Bloom filter over string keys.

    The hybrid index keeps one of these over the dynamic-stage keys so that
    most point queries search only one stage (paper §3, Appendix D). *)

type t

val create : ?fpr:float -> expected:int -> unit -> t
(** [create ~expected ()] sizes the filter for [expected] keys at target
    false-positive rate [fpr] (default 1 %). *)

val add : t -> string -> unit
(** Insert a key. *)

val mem : t -> string -> bool
(** Membership test: never a false negative; false positives at roughly the
    configured rate when at or below the expected load. *)

val clear : t -> unit
(** Reset all bits (used after each merge empties the dynamic stage). *)

val count : t -> int
(** Keys added since the last {!clear}. *)

val capacity : t -> int
(** The [expected] load the filter was sized for; beyond it the
    false-positive rate degrades past the configured target, so callers
    tracking {!count} can rebuild a bigger filter in time. *)

val nbits : t -> int
(** Number of bits in the filter. *)

val hash_count : t -> int
(** Number of hash probes per operation. *)

val memory_bytes : t -> int
(** Size of the bit array in bytes. *)

val fnv1a_64 : ?seed:int64 -> string -> int64
(** FNV-1a 64-bit hash of a string (exposed for reuse and tests). *)
