(* Minimal JSON value type and emitter, hand-rolled so the benchmark
   harness and the metrics registry can write machine-readable output
   without any new dependency.  Emission only — nothing in this repository
   needs to parse JSON (CI validates BENCH_results.json with jq). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* RFC 8259 string escaping: quote, backslash and control characters; the
   common control characters use their short forms. *)
let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no nan/infinity literals; they serialize as null.  %.17g
   round-trips every finite double and stays a valid JSON number. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    (* trim to the shortest representation that still round-trips *)
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else s
  end

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* Pretty printer with two-space indentation, for human-diffable files. *)
let to_string_pretty v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as atom -> emit buf atom
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          go (depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          escape_to buf k;
          Buffer.add_string buf ": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* Total float constructor: callers with possibly-nan measurements (empty
   histograms, zero-duration timings) get null instead of invalid JSON. *)
let number f = if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then Null else Float f
