(* Deterministic fault injection for the storage path.

   A [Fault.t] is a seeded decision source (driven by {!Xorshift}) that the
   anti-caching block store consults on every write and fetch.  Three fault
   classes model what a real cold store exhibits:

   - transient fetch failures (a read that fails now but succeeds on retry,
     like an I/O timeout);
   - permanent block corruption (a byte flipped at rest, detected later by
     the block checksum);
   - latency spikes (a fetch that takes much longer than the device's
     nominal latency).

   The write-ahead log consults three more kinds that model what a crash
   or a failing disk does to an append-only file (DESIGN.md §13):

   - torn writes (a sync persists only a byte prefix of the batch, cut
     mid-record — the classic torn tail);
   - short writes (a sync persists only whole leading records; the file
     stays well-formed but is missing acknowledged-batch suffixes);
   - fsync failures (the data reached the page cache but the barrier
     itself failed, so nothing in the batch may be trusted).

   All decisions flow from one integer seed, so a fault schedule replays
   identically across runs — tests assert exact outcomes and benchmarks
   compare configurations under the same schedule. *)

type config = {
  transient_fetch_p : float; (* per-fetch-attempt probability of a transient failure *)
  corrupt_block_p : float; (* per-write probability the stored block is corrupted *)
  latency_spike_p : float; (* per-fetch probability of a latency spike *)
  latency_spike_s : float; (* duration of an injected spike, seconds *)
  torn_write_p : float; (* per-sync probability the batch is cut mid-record *)
  short_write_p : float; (* per-sync probability trailing whole records are dropped *)
  fsync_fail_p : float; (* per-sync probability the fsync barrier fails *)
}

let no_faults =
  {
    transient_fetch_p = 0.0;
    corrupt_block_p = 0.0;
    latency_spike_p = 0.0;
    latency_spike_s = 0.0;
    torn_write_p = 0.0;
    short_write_p = 0.0;
    fsync_fail_p = 0.0;
  }

type t = {
  config : config;
  rng : Xorshift.t;
  mutable transient_injected : int;
  mutable corruptions_injected : int;
  mutable spikes_injected : int;
  mutable torn_writes_injected : int;
  mutable short_writes_injected : int;
  mutable fsync_failures_injected : int;
}

let create ?(config = no_faults) seed = {
  config;
  rng = Xorshift.create seed;
  transient_injected = 0;
  corruptions_injected = 0;
  spikes_injected = 0;
  torn_writes_injected = 0;
  short_writes_injected = 0;
  fsync_failures_injected = 0;
}

let roll t p = p > 0.0 && Xorshift.float01 t.rng < p

let transient_fetch t =
  let hit = roll t t.config.transient_fetch_p in
  if hit then t.transient_injected <- t.transient_injected + 1;
  hit

let corrupt_write t =
  let hit = roll t t.config.corrupt_block_p in
  if hit then t.corruptions_injected <- t.corruptions_injected + 1;
  hit

(* Extra seconds of latency to add to this fetch (0.0 most of the time). *)
let latency_spike t =
  if roll t t.config.latency_spike_p then begin
    t.spikes_injected <- t.spikes_injected + 1;
    t.config.latency_spike_s
  end
  else 0.0

(* Position used to pick which byte of a block's payload gets flipped. *)
let corruption_offset t len = if len <= 0 then 0 else Xorshift.int t.rng len

(* --- disk faults (write-ahead log, DESIGN.md §13) --- *)

let torn_write t =
  let hit = roll t t.config.torn_write_p in
  if hit then t.torn_writes_injected <- t.torn_writes_injected + 1;
  hit

let short_write t =
  let hit = roll t t.config.short_write_p in
  if hit then t.short_writes_injected <- t.short_writes_injected + 1;
  hit

let fsync_fail t =
  let hit = roll t t.config.fsync_fail_p in
  if hit then t.fsync_failures_injected <- t.fsync_failures_injected + 1;
  hit

(* Where a torn or short write cuts the batch. *)
let cut_point t len = if len <= 0 then 0 else Xorshift.int t.rng len

type counters = {
  transient_injected : int;
  corruptions_injected : int;
  spikes_injected : int;
  torn_writes_injected : int;
  short_writes_injected : int;
  fsync_failures_injected : int;
}

let counters (t : t) =
  {
    transient_injected = t.transient_injected;
    corruptions_injected = t.corruptions_injected;
    spikes_injected = t.spikes_injected;
    torn_writes_injected = t.torn_writes_injected;
    short_writes_injected = t.short_writes_injected;
    fsync_failures_injected = t.fsync_failures_injected;
  }
