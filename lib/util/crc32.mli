(** CRC-32 checksum (IEEE 802.3 polynomial, reflected).

    Used by the anti-caching block store to detect at-rest corruption of
    evicted blocks: checksums are computed on write and re-verified on
    every fetch. *)

val string : string -> int32
(** Checksum of a whole string.  [string "123456789" = 0xCBF43926l]. *)

val bytes : bytes -> int32

val update : int32 -> string -> int -> int -> int32
(** [update crc s pos len] extends [crc] over [len] bytes of [s] starting
    at [pos], so checksums can be computed incrementally.
    @raise Invalid_argument when the range is out of bounds. *)
