(* Process-wide metrics registry: named counters, gauges and latency
   histograms under labeled scopes, with a snapshot API and a JSON
   emitter.

   The registry exists so every layer of the stack — the hybrid index
   (merge counts/durations/bytes-moved, Bloom filter hit rates), the
   H-Store engine and its anti-cache block store (evictions, fetches,
   retries, checksum failures, transaction latency) and the workload
   runner (throughput windows, abort breakdown) — reports into one place
   that benchmarks and the CLI can snapshot and serialize.

   Handles are cheap mutable records resolved once (a Hashtbl lookup at
   registration) and then updated with plain field writes, so counters are
   safe to touch on hot paths.  Metrics with the same (scope, labels,
   name) share a handle: several index instances of the same configuration
   aggregate into one counter, which is what a process-wide registry
   wants.  Gauges are last-writer-wins. *)

type labels = (string * string) list

type scope = { scope_name : string; labels : labels }

let scope ?(labels = []) scope_name = { scope_name; labels = List.sort compare labels }

type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = Histogram.t

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of histogram

(* Registry key: scope name, sorted labels, metric name. *)
type key = string * labels * string

let registry : (key, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Hist _ -> "histogram"

let register scope name make match_existing =
  let key = (scope.scope_name, scope.labels, name) in
  match Hashtbl.find_opt registry key with
  | Some m -> (
    match match_existing m with
    | Some handle -> handle
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s/%s already registered as a %s" scope.scope_name name
           (kind_name m)))
  | None ->
    let m, handle = make () in
    Hashtbl.replace registry key m;
    handle

let counter scope name =
  register scope name
    (fun () ->
      let c = { count = 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge scope name =
  register scope name
    (fun () ->
      let g = { value = 0.0 } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram scope name =
  register scope name
    (fun () ->
      let h = Histogram.create () in
      (Hist h, h))
    (function Hist h -> Some h | _ -> None)

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count
let set g v = g.value <- v
let set_int g v = g.value <- float_of_int v
let gauge_value g = g.value
let observe h v = Histogram.record h v

let time h f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Histogram.record h (Unix.gettimeofday () -. t0);
  r

(* --- snapshot --- *)

type hist_summary = { samples : int; mean : float; p50 : float; p99 : float; max : float }

type value =
  | Counter_value of int
  | Gauge_value of float
  | Hist_value of hist_summary

type sample = { sample_scope : string; sample_labels : labels; name : string; value : value }

let summarize h =
  {
    samples = Histogram.count h;
    mean = Histogram.mean h;
    p50 = Histogram.median h;
    p99 = Histogram.percentile h 99.0;
    max = Histogram.max_value h;
  }

let snapshot () =
  let rows =
    Hashtbl.fold
      (fun (sample_scope, sample_labels, name) metric acc ->
        let value =
          match metric with
          | Counter c -> Counter_value c.count
          | Gauge g -> Gauge_value g.value
          | Hist h -> Hist_value (summarize h)
        in
        { sample_scope; sample_labels; name; value } :: acc)
      registry []
  in
  (* deterministic order for diffable output *)
  List.sort
    (fun a b ->
      compare
        (a.sample_scope, a.sample_labels, a.name)
        (b.sample_scope, b.sample_labels, b.name))
    rows

let value_to_json = function
  | Counter_value n -> Json.Int n
  | Gauge_value v -> Json.number v
  | Hist_value h ->
    Json.Obj
      [
        ("samples", Json.Int h.samples);
        ("mean", Json.number h.mean);
        ("p50", Json.number h.p50);
        ("p99", Json.number h.p99);
        ("max", Json.number h.max);
      ]

let sample_to_json s =
  Json.Obj
    ([ ("scope", Json.Str s.sample_scope) ]
    @ (if s.sample_labels = [] then []
       else [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.sample_labels)) ])
    @ [ ("name", Json.Str s.name); ("value", value_to_json s.value) ])

let to_json samples = Json.List (List.map sample_to_json samples)

let dump () = Json.to_string_pretty (to_json (snapshot ()))

(* Zero every registered metric in place.  Handles stay valid — they are
   held at module level by instrumented code (the hybrid functor, the
   engine), so dropping entries would silently orphan them.  Meant for
   test isolation and between-run hygiene. *)
let reset () =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.count <- 0
      | Gauge g -> g.value <- 0.0
      | Hist h -> Histogram.clear h)
    registry

(* Find a registered counter/gauge value by path, mostly for tests and
   assertions over instrumented code. *)
let find_counter scope name =
  match Hashtbl.find_opt registry (scope.scope_name, scope.labels, name) with
  | Some (Counter c) -> Some c.count
  | _ -> None

let find_gauge scope name =
  match Hashtbl.find_opt registry (scope.scope_name, scope.labels, name) with
  | Some (Gauge g) -> Some g.value
  | _ -> None
