(* Process-wide metrics registry: named counters, gauges and latency
   histograms under labeled scopes, with a snapshot API and a JSON
   emitter.

   The registry exists so every layer of the stack — the hybrid index
   (merge counts/durations/bytes-moved, Bloom filter hit rates), the
   H-Store engine and its anti-cache block store (evictions, fetches,
   retries, checksum failures, transaction latency) and the workload
   runner (throughput windows, abort breakdown) — reports into one place
   that benchmarks and the CLI can snapshot and serialize.

   Handles are cheap records resolved once (a Hashtbl lookup at
   registration) and then updated without re-resolving, so counters are
   safe to touch on hot paths.  Metrics with the same (scope, labels,
   name) share a handle: several index instances of the same configuration
   aggregate into one counter, which is what a process-wide registry
   wants.  Gauges are last-writer-wins.

   Domain safety: partitions of the sharded runtime (DESIGN.md §11) touch
   shared handles from several domains at once, so registry mutation is
   serialized by a mutex, counter/gauge cells are atomics, and histogram
   recording takes a per-histogram lock (observations are rare relative
   to counter bumps: merge durations, throughput windows, transaction
   latencies). *)

type labels = (string * string) list

type scope = { scope_name : string; labels : labels }

let scope ?(labels = []) scope_name = { scope_name; labels = List.sort compare labels }

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = { hist : Histogram.t; hlock : Mutex.t }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of histogram

(* Registry key: scope name, sorted labels, metric name. *)
type key = string * labels * string

let registry : (key, metric) Hashtbl.t = Hashtbl.create 64

(* Guards [registry] itself; individual handles synchronize on their own
   (atomics, per-histogram locks). *)
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Hist _ -> "histogram"

let register scope name make match_existing =
  let key = (scope.scope_name, scope.labels, name) in
  with_registry (fun () ->
      match Hashtbl.find_opt registry key with
      | Some m -> (
        match match_existing m with
        | Some handle -> handle
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s/%s already registered as a %s" scope.scope_name name
               (kind_name m)))
      | None ->
        let m, handle = make () in
        Hashtbl.replace registry key m;
        handle)

let counter scope name =
  register scope name
    (fun () ->
      let c = Atomic.make 0 in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge scope name =
  register scope name
    (fun () ->
      let g = Atomic.make 0.0 in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram scope name =
  register scope name
    (fun () ->
      let h = { hist = Histogram.create (); hlock = Mutex.create () } in
      (Hist h, h))
    (function Hist h -> Some h | _ -> None)

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c
let set g v = Atomic.set g v
let set_int g v = Atomic.set g (float_of_int v)
let gauge_value g = Atomic.get g

let observe h v =
  Mutex.lock h.hlock;
  Histogram.record h.hist v;
  Mutex.unlock h.hlock

let histogram_count h =
  Mutex.lock h.hlock;
  let n = Histogram.count h.hist in
  Mutex.unlock h.hlock;
  n

let time h f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  observe h (Unix.gettimeofday () -. t0);
  r

(* --- snapshot --- *)

type hist_summary = { samples : int; mean : float; p50 : float; p99 : float; max : float }

type value =
  | Counter_value of int
  | Gauge_value of float
  | Hist_value of hist_summary

type sample = { sample_scope : string; sample_labels : labels; name : string; value : value }

let summarize h =
  Mutex.lock h.hlock;
  let s =
    {
      samples = Histogram.count h.hist;
      mean = Histogram.mean h.hist;
      p50 = Histogram.median h.hist;
      p99 = Histogram.percentile h.hist 99.0;
      max = Histogram.max_value h.hist;
    }
  in
  Mutex.unlock h.hlock;
  s

let snapshot () =
  let rows =
    with_registry (fun () ->
        Hashtbl.fold (fun key metric acc -> (key, metric) :: acc) registry [])
  in
  let rows =
    List.map
      (fun ((sample_scope, sample_labels, name), metric) ->
        let value =
          match metric with
          | Counter c -> Counter_value (Atomic.get c)
          | Gauge g -> Gauge_value (Atomic.get g)
          | Hist h -> Hist_value (summarize h)
        in
        { sample_scope; sample_labels; name; value })
      rows
  in
  (* deterministic order for diffable output *)
  List.sort
    (fun a b ->
      compare
        (a.sample_scope, a.sample_labels, a.name)
        (b.sample_scope, b.sample_labels, b.name))
    rows

let value_to_json = function
  | Counter_value n -> Json.Int n
  | Gauge_value v -> Json.number v
  | Hist_value h ->
    Json.Obj
      [
        ("samples", Json.Int h.samples);
        ("mean", Json.number h.mean);
        ("p50", Json.number h.p50);
        ("p99", Json.number h.p99);
        ("max", Json.number h.max);
      ]

let sample_to_json s =
  Json.Obj
    ([ ("scope", Json.Str s.sample_scope) ]
    @ (if s.sample_labels = [] then []
       else [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.sample_labels)) ])
    @ [ ("name", Json.Str s.name); ("value", value_to_json s.value) ])

let to_json samples = Json.List (List.map sample_to_json samples)

let dump () = Json.to_string_pretty (to_json (snapshot ()))

(* Zero every registered metric in place.  Handles stay valid — they are
   held at module level by instrumented code (the hybrid functor, the
   engine), so dropping entries would silently orphan them.  Meant for
   test isolation and between-run hygiene. *)
let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0.0
          | Hist h ->
            Mutex.lock h.hlock;
            Histogram.clear h.hist;
            Mutex.unlock h.hlock)
        registry)

(* Find a registered counter/gauge value by path, mostly for tests and
   assertions over instrumented code. *)
let find_counter scope name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry (scope.scope_name, scope.labels, name) with
      | Some (Counter c) -> Some (Atomic.get c)
      | _ -> None)

let find_gauge scope name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry (scope.scope_name, scope.labels, name) with
      | Some (Gauge g) -> Some (Atomic.get g)
      | _ -> None)
