(* Bloom filter over string keys (paper §3: a filter over the dynamic-stage
   keys lets most point queries search only one stage).

   Uses Kirsch–Mitzenmacher double hashing: two independent 64-bit FNV-1a
   hashes h1, h2 generate the k probe positions h1 + i*h2. *)

type t = {
  mutable bits : Bytes.t;
  mutable nbits : int;
  k : int;
  capacity : int; (* the [expected] load the filter was sized for *)
  mutable count : int; (* keys added since last clear *)
}

let fnv1a_64 ?(seed = 0xcbf29ce484222325L) s =
  let open Int64 in
  let prime = 0x100000001b3L in
  let hash = ref seed in
  for i = 0 to String.length s - 1 do
    hash := mul (logxor !hash (of_int (Char.code (String.unsafe_get s i)))) prime
  done;
  !hash

let bits_for ~expected ~fpr =
  let n = float_of_int (max 1 expected) in
  let m = -.n *. log fpr /. (log 2.0 *. log 2.0) in
  max 64 (int_of_float (ceil m))

let hashes_for ~expected ~nbits =
  let ratio = float_of_int nbits /. float_of_int (max 1 expected) in
  max 1 (int_of_float (Float.round (ratio *. log 2.0)))

let create ?(fpr = 0.01) ~expected () =
  let nbits = bits_for ~expected ~fpr in
  let k = hashes_for ~expected ~nbits in
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits; k; capacity = max 1 expected; count = 0 }

let set_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  let v = Char.code (Bytes.unsafe_get t.bits byte) in
  Bytes.unsafe_set t.bits byte (Char.unsafe_chr (v lor (1 lsl bit)))

let get_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl bit) <> 0

let probe t key i h1 h2 =
  ignore key;
  let h = Int64.add h1 (Int64.mul (Int64.of_int i) h2) in
  (* shift by 2: Int64.to_int keeps the low 63 bits signed, so a 62-bit
     value is needed to guarantee a non-negative index *)
  Int64.to_int (Int64.shift_right_logical h 2) mod t.nbits

(* 8-byte keys (encoded integers — the common OLTP case) hash as one
   machine word through two splitmix64-style finalizers, which is far
   cheaper than byte-wise FNV. *)
let mix64 c1 c2 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) c1 in
  let z = mul (logxor z (shift_right_logical z 27)) c2 in
  logxor z (shift_right_logical z 31)

let hash_pair key =
  if String.length key = 8 then begin
    let x = String.get_int64_be key 0 in
    (mix64 0xBF58476D1CE4E5B9L 0x94D049BB133111EBL x, mix64 0xFF51AFD7ED558CCDL 0xC4CEB9FE1A85EC53L x)
  end
  else (fnv1a_64 key, fnv1a_64 ~seed:0x9e3779b97f4a7c15L key)

let add t key =
  let h1, h2 = hash_pair key in
  for i = 0 to t.k - 1 do
    set_bit t (probe t key i h1 h2)
  done;
  t.count <- t.count + 1

let mem t key =
  let h1, h2 = hash_pair key in
  let rec check i = i >= t.k || (get_bit t (probe t key i h1 h2) && check (i + 1)) in
  check 0

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.count <- 0

let count t = t.count
let capacity t = t.capacity
let nbits t = t.nbits
let hash_count t = t.k
let memory_bytes t = Bytes.length t.bits
