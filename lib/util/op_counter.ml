(* Deterministic profiling proxy for Table 2.

   The paper profiles point queries with PAPI hardware counters
   (instructions, IPC, L1/L2 misses).  Hardware counters are unavailable
   here, so indexes increment these logical counters instead: node visits
   and pointer dereferences track memory-hierarchy traffic (each is a fresh
   cache line touched in the C layout), key comparisons track instruction
   count.  Table 2's conclusion is about the *relative* ranking of the four
   structures, which these proxies preserve.

   The counters are domain-local (one set per domain, via Domain.DLS), so
   each partition of the sharded runtime profiles exactly the traversals
   its own domain performed: parallel partitions neither race nor bleed
   counts into each other, and single-domain measurement runs behave as
   before. *)

type snapshot = {
  node_visits : int;
  key_comparisons : int;
  pointer_derefs : int;
}

type counters = {
  mutable nv : int;
  mutable kc : int;
  mutable pd : int;
}

let key : counters Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { nv = 0; kc = 0; pd = 0 })

let local () = Domain.DLS.get key

let visit () =
  let c = local () in
  c.nv <- c.nv + 1

let compare_keys n =
  let c = local () in
  c.kc <- c.kc + n

let deref () =
  let c = local () in
  c.pd <- c.pd + 1

let reset () =
  let c = local () in
  c.nv <- 0;
  c.kc <- 0;
  c.pd <- 0

let snapshot () =
  let c = local () in
  { node_visits = c.nv; key_comparisons = c.kc; pointer_derefs = c.pd }

let diff a b =
  {
    node_visits = b.node_visits - a.node_visits;
    key_comparisons = b.key_comparisons - a.key_comparisons;
    pointer_derefs = b.pointer_derefs - a.pointer_derefs;
  }

(* Modelled cache lines touched: each node visit or pointer dereference
   lands on a distinct line in the C layout. *)
let cache_lines_touched s = s.node_visits + s.pointer_derefs

(* Modelled instruction count: a handful of instructions per comparison and
   per pointer chase. *)
let instructions s = (8 * s.key_comparisons) + (12 * s.pointer_derefs) + (20 * s.node_visits)
