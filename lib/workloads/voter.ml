(* Voter (paper §7.2): a phone-based election application saturating the
   DBMS with short-lived transactions that each update a small number of
   records.  A caller may vote at most [vote_limit] times; the running
   totals live in the contestants table.  Only primary-key indexes are
   used, matching Table 1's 0 % secondary-index share for Voter. *)

open Hi_util
open Hi_hstore
open Value

type scale = { contestants : int; phone_numbers : int; vote_limit : int }

let default_scale = { contestants = 6; phone_numbers = 100_000; vote_limit = 2 }

let contestants_schema =
  Schema.make ~name:"contestants"
    ~columns:[ ("contestant_id", TInt); ("contestant_name", TStr 50); ("num_votes", TInt) ]
    ~pk:[ "contestant_id" ] ()

(* votes keyed by (phone_number, serial): the per-phone vote count is the
   number of pk entries sharing the phone prefix — no secondary index. *)
let votes_schema =
  Schema.make ~name:"votes"
    ~columns:
      [ ("phone_number", TInt); ("vote_serial", TInt); ("state", TStr 2); ("contestant_id", TInt) ]
    ~pk:[ "phone_number"; "vote_serial" ] ()

type state = { scale : scale; rng : Xorshift.t }

let name = "voter"

let setup ?(scale = default_scale) (engine : Engine.t) =
  ignore (Engine.create_table engine contestants_schema);
  ignore (Engine.create_table engine votes_schema);
  let contestants = Engine.table engine "contestants" in
  for c = 1 to scale.contestants do
    ignore (Table.insert contestants [| Int c; Str (Printf.sprintf "contestant-%d" c); Int 0 |])
  done;
  { scale; rng = Xorshift.create 17 }

let col schema n = Schema.column schema n


(* The vote stored procedure body with the caller and choice fixed:
   validate contestant, enforce the per-phone limit, record the vote and
   bump the contestant's total.  Parameterized so the sharded runtime
   (DESIGN.md §11) can generate (phone, contestant) on the coordinator and
   execute on the phone's partition; {!vote} draws them from the workload
   RNG for the single-partition path. *)
let vote_as ~vote_limit ~phone ~contestant engine =
  let contestants = Engine.table engine "contestants" in
  let votes = Engine.table engine "votes" in
  let c_rowid =
    match Table.find_by_pk contestants [ Int contestant ] with
    | Some r -> r
    | None -> raise (Engine.Abort "unknown contestant")
  in
  let votes_pk = Engine.index_of engine ~table:"votes" "votes_pk" in
  let prior =
    List.length (Table.scan_prefix_eq votes_pk ~prefix:[ Int phone ] ~limit:vote_limit)
  in
  if prior >= vote_limit then raise (Engine.Abort "vote limit reached");
  ignore (Engine.insert engine votes [| Int phone; Int (prior + 1); Str "ca"; Int contestant |]);
  let c_row = Engine.read engine contestants c_rowid in
  Engine.update engine contestants c_rowid
    [ (col contestants_schema "num_votes", Int (as_int c_row.(col contestants_schema "num_votes") + 1)) ]

let vote st engine =
  let phone = Xorshift.int st.rng st.scale.phone_numbers in
  let contestant = 1 + Xorshift.int st.rng st.scale.contestants in
  vote_as ~vote_limit:st.scale.vote_limit ~phone ~contestant engine

let transaction st engine = Engine.run engine (vote st)

(* Invariant: sum of contestant totals = number of vote rows (tests). *)
let check_consistency engine =
  let contestants = Engine.table engine "contestants" in
  let votes = Engine.table engine "votes" in
  let total = ref 0 in
  List.iter
    (fun rowid -> total := !total + as_int (Table.read contestants rowid).(col contestants_schema "num_votes"))
    (Table.scan (Engine.index_of engine ~table:"contestants" "contestants_pk") ~prefix:[] ~limit:max_int);
  !total = Table.row_count votes
