(** Voter (paper §7.2): a phone-based election application — many short
    transactions updating a few records, primary-key indexes only (matching
    Table 1's 0 % secondary share). *)

type scale = { contestants : int; phone_numbers : int; vote_limit : int }

val default_scale : scale

type state

val name : string
val setup : ?scale:scale -> Hi_hstore.Engine.t -> state

val vote : state -> Hi_hstore.Engine.t -> unit
(** The vote stored procedure: validates the contestant, enforces the
    per-phone limit (raising {!Hi_hstore.Engine.Abort} beyond it), records
    the vote and bumps the total. *)

val vote_as : vote_limit:int -> phone:int -> contestant:int -> Hi_hstore.Engine.t -> unit
(** {!vote} with the caller and choice fixed, for the sharded runtime
    (DESIGN.md §11): generation happens on the coordinator, execution on
    the phone's partition. *)

val transaction : state -> Hi_hstore.Engine.t -> (unit, Hi_hstore.Engine.txn_error) result

val check_consistency : Hi_hstore.Engine.t -> bool
(** Sum of contestant totals = number of vote rows. *)

val contestants_schema : Hi_hstore.Schema.t
val votes_schema : Hi_hstore.Schema.t
