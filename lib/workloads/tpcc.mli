(** TPC-C (paper §7.2): all nine tables and the five stored procedures in
    the standard 45/43/4/4/4 mix; ~88 % of transactions modify the
    database.  Scale (warehouses, items, customers) is configurable. *)

type scale = { warehouses : int; items : int; customers_per_district : int }

val default_scale : scale
val districts_per_warehouse : int

type state
(** Workload generator state (RNG, id counters, name pool). *)

val name : string

val setup : ?scale:scale -> Hi_hstore.Engine.t -> state
(** Create the nine tables and load warehouses, districts, customers,
    items, stock and one initial order per customer. *)

val transaction : state -> Hi_hstore.Engine.t -> (unit, Hi_hstore.Engine.txn_error) result
(** Execute one transaction drawn from the standard mix. *)

(** Individual stored procedures (run them via {!Hi_hstore.Engine.run}). *)

val new_order : state -> Hi_hstore.Engine.t -> unit
val payment : state -> Hi_hstore.Engine.t -> unit
val order_status : state -> Hi_hstore.Engine.t -> unit
val delivery : state -> Hi_hstore.Engine.t -> unit
val stock_level : state -> Hi_hstore.Engine.t -> unit

val check_ytd_consistency : Hi_hstore.Engine.t -> bool
(** TPC-C consistency condition 1: W_YTD = sum of the warehouse's D_YTD. *)

(** Schemas (exposed for tests and tooling). *)

val warehouse_schema : Hi_hstore.Schema.t
val district_schema : Hi_hstore.Schema.t
val customer_schema : Hi_hstore.Schema.t
val history_schema : Hi_hstore.Schema.t
val neworder_schema : Hi_hstore.Schema.t
val orders_schema : Hi_hstore.Schema.t
val orderline_schema : Hi_hstore.Schema.t
val item_schema : Hi_hstore.Schema.t
val stock_schema : Hi_hstore.Schema.t
