(** TPC-C (paper §7.2): all nine tables and the five stored procedures in
    the standard 45/43/4/4/4 mix; ~88 % of transactions modify the
    database.  Scale (warehouses, items, customers) is configurable. *)

type scale = { warehouses : int; items : int; customers_per_district : int }

val default_scale : scale
val districts_per_warehouse : int

type state
(** Workload generator state (RNG, id counters, name pool). *)

val name : string

val setup : ?scale:scale -> Hi_hstore.Engine.t -> state
(** Create the nine tables and load warehouses, districts, customers,
    items, stock and one initial order per customer. *)

val transaction : state -> Hi_hstore.Engine.t -> (unit, Hi_hstore.Engine.txn_error) result
(** Execute one transaction drawn from the standard mix. *)

(** Individual stored procedures (run them via {!Hi_hstore.Engine.run}). *)

val new_order : state -> Hi_hstore.Engine.t -> unit
val payment : state -> Hi_hstore.Engine.t -> unit
val order_status : state -> Hi_hstore.Engine.t -> unit
val delivery : state -> Hi_hstore.Engine.t -> unit
val stock_level : state -> Hi_hstore.Engine.t -> unit

val check_ytd_consistency : Hi_hstore.Engine.t -> bool
(** TPC-C consistency condition 1: W_YTD = sum of the warehouse's D_YTD. *)

(** {1 Sharded building blocks (DESIGN.md §11)}

    Generation is separated from execution so the sharded runtime can draw
    a transaction's parameters on the coordinator (learning every
    participant partition up front) and run pure bodies on the partitions
    that own the data. *)

val make_state : ?seed:int -> scale -> state
(** Generator state without loading anything (per-partition seeds). *)

val setup_partition :
  ?scale:scale -> ?seed:int -> warehouses:int list -> Hi_hstore.Engine.t -> state
(** Create the nine tables and load items (replicated) plus only the given
    warehouses — one partition's slice of the database. *)

(** How payment/order-status picks its customer: drawn up front (60 % by
    last name, 40 % by id, per spec). *)
type customer_sel = By_id of int | By_name of string

val pick_customer_sel : state -> customer_sel
val pick_district : state -> int
val pick_customer : state -> int

(** One pre-drawn order line of a new-order. *)
type line_spec = { li_item : int; li_supply_w : int; li_qty : int }

val gen_order_lines : state -> supply:(unit -> int) -> line_spec list
(** 5..15 lines with NURand items and the spec's 1 % invalid-item abort;
    [supply] picks each line's supplying warehouse. *)

val new_order_with :
  Hi_hstore.Engine.t -> w:int -> d:int -> c:int -> lines:line_spec list -> local:(int -> bool) -> unit
(** Home body: district bump, order/new-order/order-line inserts, stock
    updates for the lines whose supplying warehouse passes [local]. *)

val remote_stock_updates : Hi_hstore.Engine.t -> lines:line_spec list -> unit
(** Remote-participant body: stock updates for the lines this partition
    supplies (bumps s_remote_cnt). *)

val payment_home : Hi_hstore.Engine.t -> w:int -> d:int -> amount:float -> unit

val payment_customer :
  state ->
  Hi_hstore.Engine.t ->
  c_w:int -> c_d:int -> sel:customer_sel -> amount:float -> h_w:int -> h_d:int -> unit
(** Customer-partition body: balance update + history row.  [state] must be
    the executing partition's (its history-id counter is touched). *)

val order_status_with : Hi_hstore.Engine.t -> w:int -> d:int -> sel:customer_sel -> unit
val delivery_with : Hi_hstore.Engine.t -> w:int -> carrier:int -> unit
val stock_level_with : Hi_hstore.Engine.t -> w:int -> d:int -> threshold:int -> unit

(** Schemas (exposed for tests and tooling). *)

val warehouse_schema : Hi_hstore.Schema.t
val district_schema : Hi_hstore.Schema.t
val customer_schema : Hi_hstore.Schema.t
val history_schema : Hi_hstore.Schema.t
val neworder_schema : Hi_hstore.Schema.t
val orders_schema : Hi_hstore.Schema.t
val orderline_schema : Hi_hstore.Schema.t
val item_schema : Hi_hstore.Schema.t
val stock_schema : Hi_hstore.Schema.t
