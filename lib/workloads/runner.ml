(* Shared benchmark runner for the full-DBMS experiments (paper §7):
   executes a transaction stream against an engine, recording throughput,
   per-transaction latency percentiles (Table 3), and periodic
   throughput/memory samples for the anti-caching timelines (Fig 9). *)

open Hi_util
open Hi_hstore

type sample = {
  at_txn : int;
  window_tps : float;
  memory : Engine.memory_breakdown;
}

type result = {
  txns : int;
  seconds : float;
  tps : float;
  latency : Histogram.t;
  memory : Engine.memory_breakdown; (* at the end of the run *)
  samples : sample list; (* oldest first *)
  committed : int;
  user_aborts : int;
  evicted_restarts : int;
  lost_block_aborts : int;
}

let mscope = Metrics.scope "runner"
let m_tps = Metrics.gauge mscope "tps"
let m_window_tps = Metrics.histogram mscope "window_tps"

(* Run [num_txns] transactions; [transaction] returns a result we ignore
   beyond abort accounting (the engine tracks commits/aborts itself). *)
let run (engine : Engine.t) ~transaction ~num_txns ?(warmup = 0) ?(sample_every = 0) () =
  for _ = 1 to warmup do
    ignore (transaction engine)
  done;
  (* [Engine.stats] returns the engine's live mutable record, so snapshot
     the counts now and report deltas: warmup transactions must not
     inflate [committed]/abort totals relative to [txns]. *)
  let s0 = Engine.stats engine in
  let committed0 = s0.Engine.committed in
  let user_aborts0 = s0.Engine.user_aborts in
  let evicted_restarts0 = s0.Engine.evicted_restarts in
  let lost_block_aborts0 = s0.Engine.lost_block_aborts in
  let latency = Histogram.create () in
  let samples = ref [] in
  let window_start = ref (Unix.gettimeofday ()) in
  let t0 = Unix.gettimeofday () in
  for i = 1 to num_txns do
    let s = Unix.gettimeofday () in
    ignore (transaction engine);
    Histogram.record latency (Unix.gettimeofday () -. s);
    if sample_every > 0 && i mod sample_every = 0 then begin
      let now = Unix.gettimeofday () in
      let window_tps = float_of_int sample_every /. (now -. !window_start) in
      window_start := now;
      Metrics.observe m_window_tps window_tps;
      samples := { at_txn = i; window_tps; memory = Engine.memory_breakdown engine } :: !samples
    end
  done;
  let seconds = Unix.gettimeofday () -. t0 in
  let tps = float_of_int num_txns /. seconds in
  Metrics.set m_tps tps;
  let stats = Engine.stats engine in
  {
    txns = num_txns;
    seconds;
    tps;
    latency;
    memory = Engine.memory_breakdown engine;
    samples = List.rev !samples;
    committed = stats.Engine.committed - committed0;
    user_aborts = stats.Engine.user_aborts - user_aborts0;
    evicted_restarts = stats.Engine.evicted_restarts - evicted_restarts0;
    lost_block_aborts = stats.Engine.lost_block_aborts - lost_block_aborts0;
  }
