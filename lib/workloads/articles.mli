(** Articles (paper §7.2): an on-line news site — read-intensive, with
    look-ups through primary and secondary indexes, scaled to resemble a
    week of Reddit traffic. *)

type scale = { users : int; initial_articles : int; comments_per_article : int }

val default_scale : scale

type state = {
  scale : scale;
  rng : Hi_util.Xorshift.t;
  mutable next_article : int;
  mutable next_comment : int;
}

val name : string
val setup : ?scale:scale -> Hi_hstore.Engine.t -> state

val setup_partition : ?scale:scale -> ?partition:int * int -> Hi_hstore.Engine.t -> state
(** [setup_partition ~partition:(p, n)] loads partition [p] of [n]'s slice
    (DESIGN.md §11): all users, but only the articles with
    [(a_id - 1) mod n = p] and their comments.  Default [(0, 1)] is a full
    load. *)

val get_article : state -> Hi_hstore.Engine.t -> unit
val get_articles_by_user : state -> Hi_hstore.Engine.t -> unit
val post_article : state -> Hi_hstore.Engine.t -> unit
val post_comment : state -> Hi_hstore.Engine.t -> unit
val update_rating : state -> Hi_hstore.Engine.t -> unit

val transaction : state -> Hi_hstore.Engine.t -> (unit, Hi_hstore.Engine.txn_error) result
(** 50 % article reads, 10 % user pages, 28 % comments, 2 % submissions,
    10 % rating updates. *)

val check_comment_counts : Hi_hstore.Engine.t -> int -> bool
(** [a_num_comments] equals the actual comment rows for articles 1..n. *)

(** {1 Sharded building blocks (DESIGN.md §11)}

    Bodies with ids and text pre-drawn, routed by article id. *)

val get_article_by_id : Hi_hstore.Engine.t -> int -> unit
val get_articles_of_user : Hi_hstore.Engine.t -> int -> unit
val post_article_row : Hi_hstore.Engine.t -> a_id:int -> u:int -> title:string -> text:string -> unit
val post_comment_as : Hi_hstore.Engine.t -> c_id:int -> a:int -> u:int -> text:string -> unit
val update_rating_by_id : Hi_hstore.Engine.t -> int -> unit

val users_schema : Hi_hstore.Schema.t
val articles_schema : Hi_hstore.Schema.t
val comments_schema : Hi_hstore.Schema.t
