(* TPC-C (paper §7.2): the warehouse-centric order-processing benchmark,
   with all nine tables and the five stored procedures in the standard
   45/43/4/4/4 mix.  ~88 % of transactions modify the database.

   Column widths follow the TPC-C specification closely enough that tuple
   and index sizes reproduce the paper's memory-breakdown ratios; the
   scale (warehouses, items) is configurable. *)

open Hi_util
open Hi_hstore
open Value

type scale = { warehouses : int; items : int; customers_per_district : int }

let default_scale = { warehouses = 8; items = 10_000; customers_per_district = 300 }

let districts_per_warehouse = 10

(* --- schemas --- *)

let warehouse_schema =
  Schema.make ~name:"warehouse"
    ~columns:
      [
        ("w_id", TInt); ("w_name", TStr 10); ("w_street", TStr 20); ("w_city", TStr 20);
        ("w_state", TStr 2); ("w_zip", TStr 9); ("w_tax", TFloat); ("w_ytd", TFloat);
      ]
    ~pk:[ "w_id" ] ()

let district_schema =
  Schema.make ~name:"district"
    ~columns:
      [
        ("d_w_id", TInt); ("d_id", TInt); ("d_name", TStr 10); ("d_street", TStr 20);
        ("d_city", TStr 20); ("d_state", TStr 2); ("d_zip", TStr 9); ("d_tax", TFloat);
        ("d_ytd", TFloat); ("d_next_o_id", TInt);
      ]
    ~pk:[ "d_w_id"; "d_id" ] ()

let customer_schema =
  Schema.make ~name:"customer"
    ~columns:
      [
        ("c_w_id", TInt); ("c_d_id", TInt); ("c_id", TInt); ("c_first", TStr 16);
        ("c_middle", TStr 2); ("c_last", TStr 16); ("c_street", TStr 20); ("c_city", TStr 20);
        ("c_state", TStr 2); ("c_zip", TStr 9); ("c_phone", TStr 16); ("c_since", TInt);
        ("c_credit", TStr 2); ("c_credit_lim", TFloat); ("c_discount", TFloat);
        ("c_balance", TFloat); ("c_ytd_payment", TFloat); ("c_payment_cnt", TInt);
        ("c_delivery_cnt", TInt); ("c_data", TStr 250);
      ]
    ~pk:[ "c_w_id"; "c_d_id"; "c_id" ]
    ~secondary:[ ("customer_name_idx", [ "c_w_id"; "c_d_id"; "c_last"; "c_id" ], false) ]
    ()

let history_schema =
  Schema.make ~name:"history"
    ~columns:
      [
        ("h_id", TInt); ("h_c_id", TInt); ("h_c_d_id", TInt); ("h_c_w_id", TInt);
        ("h_d_id", TInt); ("h_w_id", TInt); ("h_date", TInt); ("h_amount", TFloat);
        ("h_data", TStr 24);
      ]
    ~pk:[ "h_id" ] ()

let neworder_schema =
  Schema.make ~name:"new_order"
    ~columns:[ ("no_w_id", TInt); ("no_d_id", TInt); ("no_o_id", TInt) ]
    ~pk:[ "no_w_id"; "no_d_id"; "no_o_id" ] ()

let orders_schema =
  Schema.make ~name:"orders"
    ~columns:
      [
        ("o_w_id", TInt); ("o_d_id", TInt); ("o_id", TInt); ("o_c_id", TInt);
        ("o_entry_d", TInt); ("o_carrier_id", TInt); ("o_ol_cnt", TInt); ("o_all_local", TInt);
      ]
    ~pk:[ "o_w_id"; "o_d_id"; "o_id" ]
    ~secondary:[ ("orders_customer_idx", [ "o_w_id"; "o_d_id"; "o_c_id"; "o_id" ], false) ]
    ()

let orderline_schema =
  Schema.make ~name:"order_line"
    ~columns:
      [
        ("ol_w_id", TInt); ("ol_d_id", TInt); ("ol_o_id", TInt); ("ol_number", TInt);
        ("ol_i_id", TInt); ("ol_supply_w_id", TInt); ("ol_delivery_d", TInt);
        ("ol_quantity", TInt); ("ol_amount", TFloat); ("ol_dist_info", TStr 24);
      ]
    ~pk:[ "ol_w_id"; "ol_d_id"; "ol_o_id"; "ol_number" ] ()

let item_schema =
  Schema.make ~name:"item"
    ~columns:[ ("i_id", TInt); ("i_im_id", TInt); ("i_name", TStr 24); ("i_price", TFloat); ("i_data", TStr 50) ]
    ~pk:[ "i_id" ] ()

let stock_schema =
  Schema.make ~name:"stock"
    ~columns:
      [
        ("s_w_id", TInt); ("s_i_id", TInt); ("s_quantity", TInt); ("s_dist_01", TStr 24);
        ("s_ytd", TInt); ("s_order_cnt", TInt); ("s_remote_cnt", TInt); ("s_data", TStr 50);
      ]
    ~pk:[ "s_w_id"; "s_i_id" ] ()

let all_schemas =
  [
    warehouse_schema; district_schema; customer_schema; history_schema; neworder_schema;
    orders_schema; orderline_schema; item_schema; stock_schema;
  ]

(* --- state --- *)

type state = {
  scale : scale;
  rng : Xorshift.t;
  mutable next_history_id : int;
  last_names : string array;
}

let name = "tpcc"

(* TPC-C last-name syllables *)
let syllables = [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION"; "EING" |]

let last_name n = syllables.(n / 100 mod 10) ^ syllables.(n / 10 mod 10) ^ syllables.(n mod 10)

(* NURand as in the TPC-C spec *)
let nurand rng a x y = ((Xorshift.int rng (a + 1) lor (x + Xorshift.int rng (y - x + 1))) mod (y - x + 1)) + x

let rand_str rng n =
  String.init (4 + Xorshift.int rng (max 1 (n - 4))) (fun _ -> Char.chr (97 + Xorshift.int rng 26))

(* --- load --- *)

let make_state ?(seed = 7) scale =
  { scale; rng = Xorshift.create seed; next_history_id = 0; last_names = Array.init 1000 last_name }

(* Load items plus the given warehouses only — the per-partition loader of
   the sharded runtime (DESIGN.md §11): items are replicated read-only on
   every partition, warehouses are partitioned. *)
let setup_partition ?(scale = default_scale) ?seed ~warehouses:warehouse_ids (engine : Engine.t) =
  List.iter (fun s -> ignore (Engine.create_table engine s)) all_schemas;
  let st = make_state ?seed scale in
  let rng = st.rng in
  let warehouse = Engine.table engine "warehouse" in
  let district = Engine.table engine "district" in
  let customer = Engine.table engine "customer" in
  let item = Engine.table engine "item" in
  let stock = Engine.table engine "stock" in
  for i = 1 to scale.items do
    ignore
      (Table.insert item
         [| Int i; Int (Xorshift.int rng 10_000); Str (rand_str rng 24); Float (1.0 +. Xorshift.float01 rng *. 99.0); Str (rand_str rng 50) |])
  done;
  List.iter (fun w ->
    ignore
      (Table.insert warehouse
         [| Int w; Str (rand_str rng 10); Str (rand_str rng 20); Str (rand_str rng 20);
            Str "ca"; Str "123456789"; Float 0.05; Float 300_000.0 |]);
    for i = 1 to scale.items do
      ignore
        (Table.insert stock
           [| Int w; Int i; Int (10 + Xorshift.int rng 90); Str (rand_str rng 24);
              Int 0; Int 0; Int 0; Str (rand_str rng 50) |])
    done;
    for d = 1 to districts_per_warehouse do
      ignore
        (Table.insert district
           [| Int w; Int d; Str (rand_str rng 10); Str (rand_str rng 20); Str (rand_str rng 20);
              Str "ca"; Str "123456789"; Float 0.07; Float 30_000.0; Int (scale.customers_per_district + 1) |]);
      for c = 1 to scale.customers_per_district do
        (* guarantee every name in the lookup range exists, even at small
           scale: the first [coverage] customers enumerate the name space *)
        let coverage = min 1000 scale.customers_per_district in
        let lname =
          if c <= coverage then st.last_names.(c - 1)
          else st.last_names.(nurand rng 255 0 (coverage - 1))
        in
        ignore
          (Table.insert customer
             [| Int w; Int d; Int c; Str (rand_str rng 16); Str "OE"; Str lname;
                Str (rand_str rng 20); Str (rand_str rng 20); Str "ca"; Str "123456789";
                Str "0123456789012345"; Int 0; Str (if Xorshift.int rng 10 = 0 then "BC" else "GC");
                Float 50_000.0; Float (Xorshift.float01 rng /. 2.0); Float (-10.0); Float 10.0;
                Int 1; Int 0; Str (rand_str rng 250) |])
      done;
      (* one initial order per customer so order-status and delivery have
         data from the start *)
      let orders = Engine.table engine "orders" in
      let orderline = Engine.table engine "order_line" in
      let neworder = Engine.table engine "new_order" in
      for o = 1 to scale.customers_per_district do
        let ol_cnt = 5 + Xorshift.int rng 11 in
        ignore
          (Table.insert orders
             [| Int w; Int d; Int o; Int o; Int 0; Int (if o < scale.customers_per_district * 7 / 10 then 1 + Xorshift.int rng 10 else 0); Int ol_cnt; Int 1 |]);
        for ol = 1 to ol_cnt do
          ignore
            (Table.insert orderline
               [| Int w; Int d; Int o; Int ol; Int (1 + Xorshift.int rng scale.items); Int w;
                  Int 0; Int 5; Float (Xorshift.float01 rng *. 9_999.0); Str (rand_str rng 24) |])
        done;
        if o >= scale.customers_per_district * 7 / 10 then
          ignore (Table.insert neworder [| Int w; Int d; Int o |])
      done
    done)
    warehouse_ids;
  st

let setup ?(scale = default_scale) (engine : Engine.t) =
  setup_partition ~scale ~warehouses:(List.init scale.warehouses (fun i -> i + 1)) engine

(* --- stored procedures --- *)

let pick_warehouse st = 1 + Xorshift.int st.rng st.scale.warehouses
let pick_district st = 1 + Xorshift.int st.rng districts_per_warehouse
let pick_customer st = nurand st.rng 1023 1 st.scale.customers_per_district
let pick_item st = nurand st.rng 8191 1 st.scale.items

let col schema n = Schema.column schema n

(* Customer selection is split from the lookup so the sharded runtime can
   draw the selector on the coordinator and resolve it on the customer's
   partition: 60 % by last name (via the secondary index, taking the middle
   match), 40 % by id — as in the TPC-C spec. *)
type customer_sel = By_id of int | By_name of string

let pick_customer_sel st =
  if Xorshift.int st.rng 100 < 60 then begin
    let coverage = min 1000 st.scale.customers_per_district in
    By_name st.last_names.(nurand st.rng 255 0 (coverage - 1))
  end
  else By_id (pick_customer st)

let lookup_customer_sel engine w d = function
  | By_name lname -> (
    let name_idx = Engine.index_of engine ~table:"customer" "customer_name_idx" in
    let rowids =
      Table.scan_prefix_eq name_idx ~prefix:[ Int w; Int d; Str lname ] ~limit:100
    in
    match rowids with
    | [] -> None
    | _ ->
      let arr = Array.of_list rowids in
      Some arr.(Array.length arr / 2))
  | By_id c -> Table.find_by_pk (Engine.table engine "customer") [ Int w; Int d; Int c ]

(* Pre-drawn order lines: generation is separated from execution so the
   sharded coordinator knows every supplying warehouse — and hence every
   participant partition — before dispatching. *)
type line_spec = { li_item : int; li_supply_w : int; li_qty : int }

(* Draw the order lines for one new-order: 5..15 lines, NURand items, and
   the spec's 1 % invalid-item abort on the last line.  [supply] picks the
   supplying warehouse per line (always the home warehouse in the
   single-partition workload; ~1 % remote per line in the sharded one). *)
let gen_order_lines st ~supply =
  let ol_cnt = 5 + Xorshift.int st.rng 11 in
  let invalid = Xorshift.int st.rng 100 = 0 in
  List.init ol_cnt (fun i ->
      let ol = i + 1 in
      let li_item = if invalid && ol = ol_cnt then st.scale.items + 1 else pick_item st in
      let li_supply_w = supply () in
      { li_item; li_supply_w; li_qty = 1 + Xorshift.int st.rng 10 })

(* Decrement stock for one order line; [remote] additionally bumps
   s_remote_cnt (TPC-C §2.4.2.2). *)
let stock_update engine ~supply_w ~i_id ~qty ~remote =
  let stock = Engine.table engine "stock" in
  let s_rowid =
    match Table.find_by_pk stock [ Int supply_w; Int i_id ] with
    | Some r -> r
    | None -> raise (Engine.Abort "missing stock")
  in
  let s_row = Engine.read engine stock s_rowid in
  let q = as_int s_row.(col stock_schema "s_quantity") in
  let new_q = if q - qty >= 10 then q - qty else q - qty + 91 in
  Engine.update engine stock s_rowid
    ([
       (col stock_schema "s_quantity", Int new_q);
       (col stock_schema "s_ytd", Int (as_int s_row.(col stock_schema "s_ytd") + qty));
       (col stock_schema "s_order_cnt", Int (as_int s_row.(col stock_schema "s_order_cnt") + 1));
     ]
    @
    if remote then
      [ (col stock_schema "s_remote_cnt", Int (as_int s_row.(col stock_schema "s_remote_cnt") + 1)) ]
    else [])

(* Home-partition body of new-order: district bump, order/new-order/
   order-line inserts, and stock updates for the lines whose supplying
   warehouse passes [local].  Remote lines' stock lives on other
   partitions and is updated there via {!remote_stock_updates}. *)
let new_order_with engine ~w ~d ~c ~lines ~local =
  let district = Engine.table engine "district" in
  let customer = Engine.table engine "customer" in
  let orders = Engine.table engine "orders" in
  let neworder = Engine.table engine "new_order" in
  let orderline = Engine.table engine "order_line" in
  let item = Engine.table engine "item" in
  let d_rowid =
    match Table.find_by_pk district [ Int w; Int d ] with
    | Some r -> r
    | None -> raise (Engine.Abort "missing district")
  in
  let d_row = Engine.read engine district d_rowid in
  let o_id = as_int d_row.(col district_schema "d_next_o_id") in
  Engine.update engine district d_rowid [ (col district_schema "d_next_o_id", Int (o_id + 1)) ];
  (match Table.find_by_pk customer [ Int w; Int d; Int c ] with
  | Some r -> ignore (Engine.read engine customer r)
  | None -> raise (Engine.Abort "missing customer"));
  let ol_cnt = List.length lines in
  let all_local = List.for_all (fun l -> l.li_supply_w = w) lines in
  ignore
    (Engine.insert engine orders
       [| Int w; Int d; Int o_id; Int c; Int 0; Int 0; Int ol_cnt; Int (if all_local then 1 else 0) |]);
  ignore (Engine.insert engine neworder [| Int w; Int d; Int o_id |]);
  List.iteri
    (fun i l ->
      let ol = i + 1 in
      match Table.find_by_pk item [ Int l.li_item ] with
      | None -> raise (Engine.Abort "invalid item")
      | Some i_rowid ->
        let i_row = Engine.read engine item i_rowid in
        let price = as_float i_row.(col item_schema "i_price") in
        if local l.li_supply_w then
          stock_update engine ~supply_w:l.li_supply_w ~i_id:l.li_item ~qty:l.li_qty
            ~remote:(l.li_supply_w <> w);
        ignore
          (Engine.insert engine orderline
             [| Int w; Int d; Int o_id; Int ol; Int l.li_item; Int l.li_supply_w; Int 0;
                Int l.li_qty; Float (float_of_int l.li_qty *. price); Str "distinfo................" |]))
    lines

(* Remote-participant body of a distributed new-order: the stock updates
   for the lines this partition supplies. *)
let remote_stock_updates engine ~lines =
  List.iter
    (fun l -> stock_update engine ~supply_w:l.li_supply_w ~i_id:l.li_item ~qty:l.li_qty ~remote:true)
    lines

let new_order st engine =
  let w = pick_warehouse st in
  let d = pick_district st in
  let c = pick_customer st in
  let lines = gen_order_lines st ~supply:(fun () -> w) in
  new_order_with engine ~w ~d ~c ~lines ~local:(fun _ -> true)

(* Home-partition body of payment: warehouse and district YTD bumps. *)
let payment_home engine ~w ~d ~amount =
  let warehouse = Engine.table engine "warehouse" in
  let district = Engine.table engine "district" in
  let w_rowid =
    match Table.find_by_pk warehouse [ Int w ] with
    | Some r -> r
    | None -> raise (Engine.Abort "missing warehouse")
  in
  let w_row = Engine.read engine warehouse w_rowid in
  Engine.update engine warehouse w_rowid
    [ (col warehouse_schema "w_ytd", Float (as_float w_row.(col warehouse_schema "w_ytd") +. amount)) ];
  let d_rowid =
    match Table.find_by_pk district [ Int w; Int d ] with
    | Some r -> r
    | None -> raise (Engine.Abort "missing district")
  in
  let d_row = Engine.read engine district d_rowid in
  Engine.update engine district d_rowid
    [ (col district_schema "d_ytd", Float (as_float d_row.(col district_schema "d_ytd") +. amount)) ]

(* Customer-partition body of payment: balance/ytd/count update plus the
   history row.  [st] is the executing partition's state (its history-id
   counter is only ever touched from that partition's domain); (h_w, h_d)
   identify the paying warehouse/district, which differ from (c_w, c_d) in
   the spec's 15 % remote-customer case. *)
let payment_customer st engine ~c_w ~c_d ~sel ~amount ~h_w ~h_d =
  let customer = Engine.table engine "customer" in
  let history = Engine.table engine "history" in
  match lookup_customer_sel engine c_w c_d sel with
  | None -> raise (Engine.Abort "customer not found")
  | Some c_rowid ->
    let c_row = Engine.read engine customer c_rowid in
    let c_id = as_int c_row.(col customer_schema "c_id") in
    Engine.update engine customer c_rowid
      [
        (col customer_schema "c_balance", Float (as_float c_row.(col customer_schema "c_balance") -. amount));
        ( col customer_schema "c_ytd_payment",
          Float (as_float c_row.(col customer_schema "c_ytd_payment") +. amount) );
        (col customer_schema "c_payment_cnt", Int (as_int c_row.(col customer_schema "c_payment_cnt") + 1));
      ];
    st.next_history_id <- st.next_history_id + 1;
    ignore
      (Engine.insert engine history
         [| Int st.next_history_id; Int c_id; Int c_d; Int c_w; Int h_d; Int h_w; Int 0;
            Float amount; Str "historydata" |])

let payment st engine =
  let w = pick_warehouse st in
  let d = pick_district st in
  let amount = 1.0 +. (Xorshift.float01 st.rng *. 4_999.0) in
  payment_home engine ~w ~d ~amount;
  let sel = pick_customer_sel st in
  payment_customer st engine ~c_w:w ~c_d:d ~sel ~amount ~h_w:w ~h_d:d

let order_status_with engine ~w ~d ~sel =
  let customer = Engine.table engine "customer" in
  let orders = Engine.table engine "orders" in
  let orderline = Engine.table engine "order_line" in
  match lookup_customer_sel engine w d sel with
  | None -> raise (Engine.Abort "customer not found")
  | Some c_rowid ->
    let c_row = Engine.read engine customer c_rowid in
    let c_id = as_int c_row.(col customer_schema "c_id") in
    (* most recent order of this customer via the secondary index *)
    let rowids =
      Table.scan_prefix_eq
        (Engine.index_of engine ~table:"orders" "orders_customer_idx")
        ~prefix:[ Int w; Int d; Int c_id ] ~limit:1000
    in
    (match List.rev rowids with
    | [] -> ()
    | o_rowid :: _ ->
      let o_row = Engine.read engine orders o_rowid in
      let o_id = as_int o_row.(col orders_schema "o_id") in
      let ol_cnt = as_int o_row.(col orders_schema "o_ol_cnt") in
      for ol = 1 to ol_cnt do
        match Table.find_by_pk orderline [ Int w; Int d; Int o_id; Int ol ] with
        | Some r -> ignore (Engine.read engine orderline r)
        | None -> ()
      done)

let order_status st engine =
  let w = pick_warehouse st in
  let d = pick_district st in
  order_status_with engine ~w ~d ~sel:(pick_customer_sel st)

let delivery_with engine ~w ~carrier =
  let neworder = Engine.table engine "new_order" in
  let orders = Engine.table engine "orders" in
  let orderline = Engine.table engine "order_line" in
  let customer = Engine.table engine "customer" in
  for d = 1 to districts_per_warehouse do
    (* oldest undelivered order in this district *)
    match
      Table.scan_prefix_eq
        (Engine.index_of engine ~table:"new_order" "new_order_pk")
        ~prefix:[ Int w; Int d ] ~limit:1
    with
    | [] -> ()
    | no_rowid :: _ ->
      let no_row = Engine.read engine neworder no_rowid in
      let o_id = as_int no_row.(col neworder_schema "no_o_id") in
      Engine.delete engine neworder no_rowid;
      (match Table.find_by_pk orders [ Int w; Int d; Int o_id ] with
      | None -> ()
      | Some o_rowid ->
        let o_row = Engine.read engine orders o_rowid in
        let c_id = as_int o_row.(col orders_schema "o_c_id") in
        let ol_cnt = as_int o_row.(col orders_schema "o_ol_cnt") in
        Engine.update engine orders o_rowid [ (col orders_schema "o_carrier_id", Int carrier) ];
        let total = ref 0.0 in
        for ol = 1 to ol_cnt do
          match Table.find_by_pk orderline [ Int w; Int d; Int o_id; Int ol ] with
          | None -> ()
          | Some ol_rowid ->
            let ol_row = Engine.read engine orderline ol_rowid in
            total := !total +. as_float ol_row.(col orderline_schema "ol_amount");
            Engine.update engine orderline ol_rowid [ (col orderline_schema "ol_delivery_d", Int 1) ]
        done;
        (match Table.find_by_pk customer [ Int w; Int d; Int c_id ] with
        | None -> ()
        | Some c_rowid ->
          let c_row = Engine.read engine customer c_rowid in
          Engine.update engine customer c_rowid
            [
              (col customer_schema "c_balance", Float (as_float c_row.(col customer_schema "c_balance") +. !total));
              ( col customer_schema "c_delivery_cnt",
                Int (as_int c_row.(col customer_schema "c_delivery_cnt") + 1) );
            ]))
  done

let delivery st engine =
  let w = pick_warehouse st in
  delivery_with engine ~w ~carrier:(1 + Xorshift.int st.rng 10)

let stock_level_with engine ~w ~d ~threshold =
  let district = Engine.table engine "district" in
  let orderline = Engine.table engine "order_line" in
  let stock = Engine.table engine "stock" in
  match Table.find_by_pk district [ Int w; Int d ] with
  | None -> raise (Engine.Abort "missing district")
  | Some d_rowid ->
    let d_row = Engine.read engine district d_rowid in
    let next_o = as_int d_row.(col district_schema "d_next_o_id") in
    let seen = Hashtbl.create 64 in
    let low = ref 0 in
    for o_id = max 1 (next_o - 20) to next_o - 1 do
      List.iter
        (fun ol_rowid ->
          let ol_row = Engine.read engine orderline ol_rowid in
          let i_id = as_int ol_row.(col orderline_schema "ol_i_id") in
          if not (Hashtbl.mem seen i_id) then begin
            Hashtbl.replace seen i_id ();
            match Table.find_by_pk stock [ Int w; Int i_id ] with
            | None -> ()
            | Some s_rowid ->
              let s_row = Engine.read engine stock s_rowid in
              if as_int s_row.(col stock_schema "s_quantity") < threshold then incr low
          end)
        (Table.scan_prefix_eq
           (Engine.index_of engine ~table:"order_line" "order_line_pk")
           ~prefix:[ Int w; Int d; Int o_id ] ~limit:20)
    done;
    ignore !low

let stock_level st engine =
  let w = pick_warehouse st in
  let d = pick_district st in
  stock_level_with engine ~w ~d ~threshold:(10 + Xorshift.int st.rng 11)

(* --- mix (45/43/4/4/4) --- *)

let transaction st engine =
  let r = Xorshift.int st.rng 100 in
  if r < 45 then Engine.run engine (new_order st)
  else if r < 88 then Engine.run engine (payment st)
  else if r < 92 then Engine.run engine (order_status st)
  else if r < 96 then Engine.run engine (delivery st)
  else Engine.run engine (stock_level st)

(* Consistency condition (TPC-C §3.3.2.1): W_YTD = sum(D_YTD) per
   warehouse — used by the test suite. *)
let check_ytd_consistency engine =
  let warehouse = Engine.table engine "warehouse" in
  let district = Engine.table engine "district" in
  let ok = ref true in
  List.iter
    (fun (_, w_rowid) ->
      let w_row = Table.read warehouse w_rowid in
      let w = as_int w_row.(col warehouse_schema "w_id") in
      let w_ytd = as_float w_row.(col warehouse_schema "w_ytd") in
      let d_sum = ref 0.0 in
      for d = 1 to districts_per_warehouse do
        match Table.find_by_pk district [ Int w; Int d ] with
        | Some r -> d_sum := !d_sum +. as_float (Table.read district r).(col district_schema "d_ytd")
        | None -> ok := false
      done;
      (* loaded values: w_ytd = 300 000, d_ytd = 30 000 * 10 *)
      if abs_float (w_ytd -. !d_sum) > 0.01 then ok := false)
    (let pk =
       Table.scan (Engine.index_of engine ~table:"warehouse" "warehouse_pk") ~prefix:[] ~limit:max_int
     in
     List.map (fun r -> ((), r)) pk);
  !ok
