(* Articles (paper §7.2): an on-line news site where users submit articles
   and post comments — read-intensive, with look-ups through both primary
   and secondary indexes, scaled to resemble a week of Reddit traffic. *)

open Hi_util
open Hi_hstore
open Value

type scale = { users : int; initial_articles : int; comments_per_article : int }

let default_scale = { users = 10_000; initial_articles = 5_000; comments_per_article = 4 }

let users_schema =
  Schema.make ~name:"users"
    ~columns:[ ("u_id", TInt); ("u_name", TStr 20); ("u_email", TStr 40); ("u_karma", TInt) ]
    ~pk:[ "u_id" ] ()

let articles_schema =
  Schema.make ~name:"articles"
    ~columns:
      [
        ("a_id", TInt); ("a_u_id", TInt); ("a_title", TStr 60); ("a_text", TStr 200);
        ("a_num_comments", TInt); ("a_rating", TInt);
      ]
    ~pk:[ "a_id" ]
    ~secondary:[ ("articles_user_idx", [ "a_u_id"; "a_id" ], false) ]
    ()

let comments_schema =
  Schema.make ~name:"comments"
    ~columns:[ ("c_id", TInt); ("c_a_id", TInt); ("c_u_id", TInt); ("c_text", TStr 120) ]
    ~pk:[ "c_id" ]
    ~secondary:[ ("comments_article_idx", [ "c_a_id"; "c_id" ], false) ]
    ()

type state = {
  scale : scale;
  rng : Xorshift.t;
  mutable next_article : int;
  mutable next_comment : int;
}

let name = "articles"

let col schema n = Schema.column schema n

let rand_text rng n = String.init (n / 2 + Xorshift.int rng (n / 2)) (fun _ -> Char.chr (97 + Xorshift.int rng 26))

(* Per-partition loader (DESIGN.md §11): users are replicated on every
   partition; partition [p] of [n] owns the articles with
   (a_id - 1) mod n = p, plus their comments.  [setup] is the
   single-partition special case (0 of 1). *)
let setup_partition ?(scale = default_scale) ?(partition = (0, 1)) (engine : Engine.t) =
  let p, n = partition in
  List.iter (fun s -> ignore (Engine.create_table engine s)) [ users_schema; articles_schema; comments_schema ];
  let rng = Xorshift.create 23 in
  let users = Engine.table engine "users" in
  let articles = Engine.table engine "articles" in
  let comments = Engine.table engine "comments" in
  for u = 1 to scale.users do
    ignore
      (Table.insert users
         [| Int u; Str (Printf.sprintf "user%d" u); Str (Key_codec.email_of_id u); Int 0 |])
  done;
  let st = { scale; rng; next_article = 0; next_comment = 0 } in
  for _ = 1 to scale.initial_articles do
    st.next_article <- st.next_article + 1;
    let a = st.next_article in
    (* every partition draws the same stream so the data is identical to a
       single-partition load restricted to its slice *)
    let author = 1 + Xorshift.int rng scale.users in
    let title = rand_text rng 60 in
    let text = rand_text rng 200 in
    let owned = (a - 1) mod n = p in
    if owned then
      ignore
        (Table.insert articles
           [| Int a; Int author; Str title; Str text; Int scale.comments_per_article; Int 0 |]);
    for _ = 1 to scale.comments_per_article do
      st.next_comment <- st.next_comment + 1;
      let commenter = 1 + Xorshift.int rng scale.users in
      let ctext = rand_text rng 120 in
      if owned then
        ignore (Table.insert comments [| Int st.next_comment; Int a; Int commenter; Str ctext |])
    done
  done;
  st

let setup ?scale engine = setup_partition ?scale engine

(* --- stored procedures --- *)

(* Parameterized bodies (DESIGN.md §11): the sharded runtime draws ids and
   text on the coordinator and routes each body to the article's
   partition; the single-engine procedures below delegate to them. *)

let get_article_by_id engine a =
  let articles = Engine.table engine "articles" in
  let comments = Engine.table engine "comments" in
  match Table.find_by_pk articles [ Int a ] with
  | None -> raise (Engine.Abort "missing article")
  | Some a_rowid ->
    ignore (Engine.read engine articles a_rowid);
    List.iter
      (fun c_rowid -> ignore (Engine.read engine comments c_rowid))
      (Table.scan_prefix_eq
         (Engine.index_of engine ~table:"comments" "comments_article_idx")
         ~prefix:[ Int a ] ~limit:50)

let get_article st engine = get_article_by_id engine (1 + Xorshift.int st.rng st.next_article)

let get_articles_of_user engine u =
  let articles = Engine.table engine "articles" in
  List.iter
    (fun a_rowid -> ignore (Engine.read engine articles a_rowid))
    (Table.scan_prefix_eq
       (Engine.index_of engine ~table:"articles" "articles_user_idx")
       ~prefix:[ Int u ] ~limit:20)

let get_articles_by_user st engine =
  get_articles_of_user engine (1 + Xorshift.int st.rng st.scale.users)

let post_article_row engine ~a_id ~u ~title ~text =
  let articles = Engine.table engine "articles" in
  ignore (Engine.insert engine articles [| Int a_id; Int u; Str title; Str text; Int 0; Int 0 |])

let post_article st engine =
  st.next_article <- st.next_article + 1;
  post_article_row engine ~a_id:st.next_article
    ~u:(1 + Xorshift.int st.rng st.scale.users)
    ~title:(rand_text st.rng 60) ~text:(rand_text st.rng 200)

let post_comment_as engine ~c_id ~a ~u ~text =
  let articles = Engine.table engine "articles" in
  let comments = Engine.table engine "comments" in
  match Table.find_by_pk articles [ Int a ] with
  | None -> raise (Engine.Abort "missing article")
  | Some a_rowid ->
    ignore (Engine.insert engine comments [| Int c_id; Int a; Int u; Str text |]);
    let a_row = Engine.read engine articles a_rowid in
    Engine.update engine articles a_rowid
      [ (col articles_schema "a_num_comments", Int (as_int a_row.(col articles_schema "a_num_comments") + 1)) ]

let post_comment st engine =
  let a = 1 + Xorshift.int st.rng st.next_article in
  st.next_comment <- st.next_comment + 1;
  post_comment_as engine ~c_id:st.next_comment ~a
    ~u:(1 + Xorshift.int st.rng st.scale.users)
    ~text:(rand_text st.rng 120)

let update_rating_by_id engine a =
  let articles = Engine.table engine "articles" in
  match Table.find_by_pk articles [ Int a ] with
  | None -> raise (Engine.Abort "missing article")
  | Some a_rowid ->
    let a_row = Engine.read engine articles a_rowid in
    Engine.update engine articles a_rowid
      [ (col articles_schema "a_rating", Int (as_int a_row.(col articles_schema "a_rating") + 1)) ]

let update_rating st engine = update_rating_by_id engine (1 + Xorshift.int st.rng st.next_article)

(* Read-intensive mix: 50 % article reads, 10 % user-page reads,
   28 % comments, 2 % submissions, 10 % rating updates. *)
let transaction st engine =
  let r = Xorshift.int st.rng 100 in
  if r < 50 then Engine.run engine (get_article st)
  else if r < 60 then Engine.run engine (get_articles_by_user st)
  else if r < 88 then Engine.run engine (post_comment st)
  else if r < 90 then Engine.run engine (post_article st)
  else Engine.run engine (update_rating st)

(* Invariant: a_num_comments equals the comment rows per article for
   articles that existed at load (tests use small runs). *)
let check_comment_counts engine upto =
  let articles = Engine.table engine "articles" in
  let ok = ref true in
  for a = 1 to upto do
    match Table.find_by_pk articles [ Int a ] with
    | None -> ok := false
    | Some a_rowid ->
      let declared = as_int (Table.read articles a_rowid).(col articles_schema "a_num_comments") in
      let actual =
        List.length
          (Table.scan_prefix_eq
             (Engine.index_of engine ~table:"comments" "comments_article_idx")
             ~prefix:[ Int a ] ~limit:10_000)
      in
      if declared <> actual then ok := false
  done;
  !ok
