(** Shared benchmark runner for the full-DBMS experiments (paper §7):
    executes a transaction stream, recording throughput, per-transaction
    latency percentiles (Table 3) and periodic throughput/memory samples
    for the anti-caching timelines (Fig 9). *)

type sample = {
  at_txn : int;
  window_tps : float;
  memory : Hi_hstore.Engine.memory_breakdown;
}

type result = {
  txns : int;
  seconds : float;
  tps : float;
  latency : Hi_util.Histogram.t;
  memory : Hi_hstore.Engine.memory_breakdown;  (** at the end of the run *)
  samples : sample list;  (** oldest first *)
  committed : int;
  user_aborts : int;
  evicted_restarts : int;
  lost_block_aborts : int;
}

val run :
  Hi_hstore.Engine.t ->
  transaction:(Hi_hstore.Engine.t -> 'a) ->
  num_txns:int ->
  ?warmup:int ->
  ?sample_every:int ->
  unit ->
  result
(** Run [num_txns] transactions ([warmup] extra unmeasured ones first);
    with [sample_every] > 0 a throughput/memory sample is taken every that
    many transactions.  Commit/abort counts are deltas over the measured
    transactions only — warmup work is excluded, so
    [committed + user_aborts + failed = txns]. *)
