(* Compact ART — the static-stage structure from applying the Compaction
   rule to ART (paper §4.2).  The radix-tree shape is kept (Structural
   Reduction leaves ART unchanged, §4.3), but every node is allocated at
   its exact size: Layout 1 with array length n for n <= 227 children,
   Layout 3 (direct 256-way array) otherwise.

   The merge routine is the recursive trie merge of Appendix B: subtrees
   the batch does not touch are reused as-is, which is why merging
   monotonically increasing keys only rebuilds the rightmost path
   (Fig 6d). *)

open Hi_util
open Hi_index

(* paper §4.2: Layout 1 is denser than Layout 3 up to n = 227 *)
let layout1_max = 227

type cnode =
  | CLeaf of { ckey : string; cvalues : int array }
  | CInner of cinner

and cinner = {
  cprefix : string;
  cterm : centry option;
  clayout : clayout;
}

and centry = { tkey : string; tvalues : int array }

and clayout =
  | CL1 of string * cnode array (* child bytes (sorted) and children, exact length *)
  | CL256 of cnode option array

type t = { croot : cnode option; cnkeys : int; cnentries : int }

let name = "compact-art"
let empty = { croot = None; cnkeys = 0; cnentries = 0 }

(* --- construction from sorted entries --- *)

let lcp_at a b depth =
  let la = String.length a and lb = String.length b in
  let m = min la lb - depth in
  let rec go i = if i < m && a.[depth + i] = b.[depth + i] then go (i + 1) else i in
  if m <= 0 then 0 else go 0

let make_layout (children : (char * cnode) list) =
  let n = List.length children in
  if n <= layout1_max then begin
    let bytes = Bytes.create n in
    let arr = Array.make n (CLeaf { ckey = ""; cvalues = [||] }) in
    List.iteri
      (fun i (c, ch) ->
        Bytes.set bytes i c;
        arr.(i) <- ch)
      children;
    CL1 (Bytes.unsafe_to_string bytes, arr)
  end
  else begin
    let arr = Array.make 256 None in
    List.iter (fun (c, ch) -> arr.(Char.code c) <- Some ch) children;
    CL256 arr
  end

(* entries.(lo..hi) sorted and distinct; build the subtree for suffixes
   starting at [depth] *)
let rec build_range (entries : Index_intf.entries) lo hi depth =
  if hi - lo = 1 then
    let k, vs = entries.(lo) in
    CLeaf { ckey = k; cvalues = vs }
  else begin
    let first, _ = entries.(lo) and last, _ = entries.(hi - 1) in
    let plen = lcp_at first last depth in
    let d = depth + plen in
    let cprefix = String.sub first depth plen in
    let cterm, lo =
      if String.length first = d then (
        let k, vs = entries.(lo) in
        (Some { tkey = k; tvalues = vs }, lo + 1))
      else (None, lo)
    in
    (* group by the byte at position d *)
    let children = ref [] in
    let i = ref lo in
    while !i < hi do
      let c = (fst entries.(!i)).[d] in
      let j = ref !i in
      while !j < hi && (fst entries.(!j)).[d] = c do
        incr j
      done;
      children := (c, build_range entries !i !j (d + 1)) :: !children;
      i := !j
    done;
    CInner { cprefix; cterm; clayout = make_layout (List.rev !children) }
  end

let count_entries entries =
  Array.fold_left (fun acc (_, vs) -> acc + Array.length vs) 0 entries

let build (entries : Index_intf.entries) =
  let n = Array.length entries in
  if n = 0 then empty
  else { croot = Some (build_range entries 0 n 0); cnkeys = n; cnentries = count_entries entries }

(* --- lookups --- *)

let layout_find layout c =
  Op_counter.compare_keys 1;
  match layout with
  | CL1 (bytes, children) ->
    (* binary search over the sorted byte array *)
    let lo = ref 0 and hi = ref (String.length bytes) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if bytes.[mid] < c then lo := mid + 1 else hi := mid
    done;
    if !lo < String.length bytes && bytes.[!lo] = c then Some children.(!lo) else None
  | CL256 arr -> arr.(Char.code c)

let rec find_centry node key depth =
  match node with
  | CLeaf l ->
    Op_counter.compare_keys 1;
    if l.ckey = key then Some (l.ckey, l.cvalues) else None
  | CInner n ->
    Op_counter.visit ();
    let plen = String.length n.cprefix in
    let klen = String.length key in
    if klen - depth < plen then None
    else begin
      let rec matches i = i >= plen || (n.cprefix.[i] = key.[depth + i] && matches (i + 1)) in
      Op_counter.compare_keys 1;
      if not (matches 0) then None
      else begin
        let depth = depth + plen in
        if klen = depth then match n.cterm with Some e -> Some (e.tkey, e.tvalues) | None -> None
        else
          match layout_find n.clayout key.[depth] with
          | None -> None
          | Some ch ->
            Op_counter.deref ();
            find_centry ch key (depth + 1)
      end
    end

let centry t key = match t.croot with None -> None | Some node -> find_centry node key 0
let mem t key = centry t key <> None
let find t key = match centry t key with Some (_, vs) -> Some vs.(0) | None -> None
let find_all t key = match centry t key with Some (_, vs) -> Array.to_list vs | None -> []

let update t key v =
  match centry t key with
  | Some (_, vs) ->
    vs.(0) <- v;
    true
  | None -> false

(* --- traversal --- *)

let iter_layout layout f =
  match layout with
  | CL1 (bytes, children) ->
    for i = 0 to String.length bytes - 1 do
      f bytes.[i] children.(i)
    done
  | CL256 arr ->
    for c = 0 to 255 do
      match arr.(c) with Some ch -> f (Char.chr c) ch | None -> ()
    done

let rec iter_node node f =
  match node with
  | CLeaf l -> f l.ckey l.cvalues
  | CInner n ->
    (match n.cterm with Some e -> f e.tkey e.tvalues | None -> ());
    iter_layout n.clayout (fun _ ch -> iter_node ch f)

let iter_sorted t f = match t.croot with None -> () | Some node -> iter_node node f

let rec scan_node node probe depth f =
  match node with
  | CLeaf l -> if String.compare l.ckey probe >= 0 then f l.ckey l.cvalues
  | CInner n ->
    let plen = String.length n.cprefix in
    let klen = String.length probe in
    if depth >= klen then iter_node node f
    else begin
      let m = min plen (klen - depth) in
      let rec cmp i =
        if i >= m then 0
        else if n.cprefix.[i] <> probe.[depth + i] then Char.compare n.cprefix.[i] probe.[depth + i]
        else cmp (i + 1)
      in
      let c = cmp 0 in
      if c > 0 then iter_node node f
      else if c < 0 then ()
      else begin
        let depth = depth + plen in
        if depth >= klen then iter_node node f
        else begin
          let pc = probe.[depth] in
          iter_layout n.clayout (fun c ch ->
              if c > pc then iter_node ch f
              else if c = pc then scan_node ch probe (depth + 1) f)
        end
      end
    end

exception Enough

let scan_from t probe n =
  let out = ref [] and taken = ref 0 in
  (try
     match t.croot with
     | None -> ()
     | Some node ->
       scan_node node probe 0 (fun k vs ->
           Array.iter
             (fun v ->
               if !taken >= n then raise Enough;
               out := (k, v) :: !out;
               incr taken)
             vs)
   with Enough -> ());
  List.rev !out

let key_count t = t.cnkeys
let entry_count t = t.cnentries

let to_entries t =
  let out = ref [] in
  iter_sorted t (fun k vs -> out := (k, vs) :: !out);
  Array.of_list (List.rev !out)

(* --- recursive merge (Appendix B) --- *)

let resolve_values mode old_vs new_vs =
  match (mode : Index_intf.merge_mode) with Replace -> new_vs | Concat -> Array.append old_vs new_vs

(* Materialize a subtree's entries and merge them flat — the fallback for
   batch keys diverging inside a compressed path. *)
let rebuild_subtree node (batch : Index_intf.entries) lo hi depth mode =
  let olds = ref [] in
  iter_node node (fun k vs -> olds := (k, vs) :: !olds);
  let olds = Array.of_list (List.rev !olds) in
  let news = Array.sub batch lo (hi - lo) in
  let cmp (a, _) (b, _) = String.compare a b in
  let resolve (k, ov) (_, nv) = Some (k, resolve_values mode ov nv) in
  let merged = Inplace_merge.merge_resolve ~cmp ~resolve olds news in
  build_range merged 0 (Array.length merged) depth

(* Merge batch.(lo..hi) into [node]; all batch keys in the slice agree with
   the path leading to [node] up to [depth]. *)
let rec merge_node node (batch : Index_intf.entries) lo hi depth mode =
  if lo >= hi then node (* untouched subtree reused as-is *)
  else
    match node with
    | CLeaf _ -> rebuild_subtree node batch lo hi depth mode
    | CInner n ->
      let plen = String.length n.cprefix in
      let d = depth + plen in
      (* check every batch key matches the compressed path *)
      let diverges =
        let rec check i =
          if i >= hi then false
          else
            let k = fst batch.(i) in
            if String.length k < d then true
            else begin
              let rec m j = j >= plen || (n.cprefix.[j] = k.[depth + j] && m (j + 1)) in
              if m 0 then check (i + 1) else true
            end
        in
        check lo
      in
      if diverges then rebuild_subtree node batch lo hi depth mode
      else begin
        (* batch keys ending exactly at d merge with the terminal entry *)
        let cterm, lo =
          if lo < hi && String.length (fst batch.(lo)) = d then begin
            let k, nv = batch.(lo) in
            let merged =
              match n.cterm with
              | Some e -> { tkey = k; tvalues = resolve_values mode e.tvalues nv }
              | None -> { tkey = k; tvalues = nv }
            in
            (Some merged, lo + 1)
          end
          else (n.cterm, lo)
        in
        (* walk existing children and batch groups in byte order *)
        let groups = ref [] in
        let i = ref lo in
        while !i < hi do
          let c = (fst batch.(!i)).[d] in
          let j = ref !i in
          while !j < hi && (fst batch.(!j)).[d] = c do
            incr j
          done;
          groups := (c, !i, !j) :: !groups;
          i := !j
        done;
        let groups = List.rev !groups in
        let children = ref [] in
        let add c ch = children := (c, ch) :: !children in
        let rec zip olds groups =
          match (olds, groups) with
          | [], [] -> ()
          | (c, ch) :: olds', [] ->
            add c ch;
            zip olds' []
          | [], (c, glo, ghi) :: groups' ->
            add c (build_range batch glo ghi (d + 1));
            zip [] groups'
          | (oc, ch) :: olds', (gc, glo, ghi) :: groups' ->
            if oc < gc then begin
              add oc ch;
              zip olds' groups
            end
            else if oc > gc then begin
              add gc (build_range batch glo ghi (d + 1));
              zip olds groups'
            end
            else begin
              add oc (merge_node ch batch glo ghi (d + 1) mode);
              zip olds' groups'
            end
        in
        let olds = ref [] in
        iter_layout n.clayout (fun c ch -> olds := (c, ch) :: !olds);
        zip (List.rev !olds) groups;
        CInner { cprefix = n.cprefix; cterm; clayout = make_layout (List.rev !children) }
      end

let merge t (batch : Index_intf.entries) ~(mode : Index_intf.merge_mode) ~deleted =
  (* Tombstone collection cannot reuse untouched subtrees, so deletions take
     the flat rebuild path; insert/update-only merges (the common case) use
     the recursive trie merge. *)
  (* [deleted] applies to pre-existing static entries only; the batch
     always survives (a deleted key may since have been reinserted) *)
  let old_entries = to_entries t in
  let has_deletions = Array.exists (fun (k, _) -> deleted k) old_entries in
  if has_deletions then begin
    let cmp (a, _) (b, _) = String.compare a b in
    let resolve (k, ov) (_, nv) = Some (k, resolve_values mode ov nv) in
    let keep =
      Array.of_seq (Seq.filter (fun (k, _) -> not (deleted k)) (Array.to_seq old_entries))
    in
    build (Inplace_merge.merge_resolve ~cmp ~resolve keep batch)
  end
  else
    match t.croot with
    | None -> build batch
    | Some node ->
      let root = merge_node node batch 0 (Array.length batch) 0 mode in
      let nkeys = ref 0 and nentries = ref 0 in
      iter_node root (fun _ vs ->
          incr nkeys;
          nentries := !nentries + Array.length vs);
      { croot = Some root; cnkeys = !nkeys; cnentries = !nentries }

(* --- memory model (paper §4.2) --- *)

let header_bytes = 16

let memory_bytes t =
  let bytes = ref 0 in
  let rec walk = function
    | CLeaf l -> if Array.length l.cvalues > 1 then bytes := !bytes + 16 + (Mem_model.value_size * Array.length l.cvalues)
    | CInner n ->
      let body =
        match n.clayout with
        | CL1 (b, _) -> String.length b * (1 + Mem_model.pointer_size)
        | CL256 _ -> 256 * Mem_model.pointer_size
      in
      bytes := !bytes + header_bytes + body + max 0 (String.length n.cprefix - 8);
      (match n.cterm with
      | Some e -> if Array.length e.tvalues > 1 then bytes := !bytes + 16 + (Mem_model.value_size * Array.length e.tvalues)
      | None -> ());
      iter_layout n.clayout (fun _ ch -> walk ch)
  in
  (match t.croot with None -> () | Some node -> walk node);
  !bytes

(* Lazy entry cursor via an explicit work stack. *)
let to_seq t =
  let children_list layout =
    let acc = ref [] in
    iter_layout layout (fun _ ch -> acc := ch :: !acc);
    List.rev !acc
  in
  let rec walk stack () =
    match stack with
    | [] -> Seq.Nil
    | CLeaf l :: rest -> Seq.Cons ((l.ckey, l.cvalues), walk rest)
    | CInner n :: rest ->
      let tail = children_list n.clayout @ rest in
      (match n.cterm with
      | Some e -> Seq.Cons ((e.tkey, e.tvalues), walk tail)
      | None -> walk tail ())
  in
  match t.croot with None -> Seq.empty | Some node -> walk [ node ]
