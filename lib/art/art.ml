(* Adaptive Radix Tree (Leis et al., ICDE '13) — the fourth index the paper
   transforms (§4.1, Fig 3).  A 256-way radix tree whose nodes adapt among
   four layouts (Node4 / Node16 / Node48 / Node256), with the two standard
   space optimizations:

   - lazy expansion: single-key subtrees are a leaf holding the full key;
   - path compression: one-child chains collapse into a per-node prefix.

   Keys may be prefixes of one another (email keys), which classic ART
   forbids; each inner node therefore carries an optional terminal leaf for
   the key ending exactly at that node — equivalent to the 0-terminator
   trick but without forbidding embedded zero bytes (int keys contain
   them).

   As in the paper's C++ ART, leaves model tagged pointers into the tuple
   store: the index itself does not store key bytes, so full-key comparison
   at a leaf stands for "fetching the key from the record" (§6.4). *)

open Hi_util

type node = Leaf of leaf | Inner of inner

and leaf = { lkey : string; mutable lvalues : int array }

and inner = {
  mutable prefix : string;
  mutable term : leaf option; (* key that ends exactly at this node *)
  mutable count : int; (* live children *)
  mutable layout : layout;
}

and layout =
  | L4 of char array * node array
  | L16 of char array * node array
  | L48 of int array * node array (* 256-entry index into 48 slots; -1 = empty *)
  | L256 of node option array

type t = { mutable root : node option; mutable entries : int }

let name = "art"
let create () = { root = None; entries = 0 }

let new_leaf key value = { lkey = key; lvalues = [| value |] }

let new_inner prefix =
  { prefix; term = None; count = 0; layout = L4 (Array.make 4 '\000', Array.make 4 (Leaf (new_leaf "" 0))) }

(* --- child access --- *)

let sorted_find keys n c =
  let rec go i = if i >= n then None else if keys.(i) = c then Some i else if keys.(i) > c then None else go (i + 1) in
  go 0

let child_find n c =
  Op_counter.compare_keys 1;
  match n.layout with
  | L4 (keys, children) | L16 (keys, children) -> (
    match sorted_find keys n.count c with None -> None | Some i -> Some children.(i))
  | L48 (index, children) ->
    let slot = index.(Char.code c) in
    if slot >= 0 then Some children.(slot) else None
  | L256 children -> children.(Char.code c)

let set_child n c node =
  match n.layout with
  | L4 (keys, children) | L16 (keys, children) -> (
    match sorted_find keys n.count c with
    | Some i -> children.(i) <- node
    | None -> invalid_arg "Art.set_child: absent child")
  | L48 (index, children) ->
    let slot = index.(Char.code c) in
    if slot < 0 then invalid_arg "Art.set_child: absent child";
    children.(slot) <- node
  | L256 children -> children.(Char.code c) <- Some node

(* Grow to the next layout when full (paper Fig 3). *)
let grow n =
  match n.layout with
  | L4 (keys, children) when n.count = 4 ->
    let keys16 = Array.make 16 '\000' and children16 = Array.make 16 children.(0) in
    Array.blit keys 0 keys16 0 4;
    Array.blit children 0 children16 0 4;
    n.layout <- L16 (keys16, children16)
  | L16 (keys, children) when n.count = 16 ->
    let index = Array.make 256 (-1) and slots = Array.make 48 children.(0) in
    for i = 0 to 15 do
      index.(Char.code keys.(i)) <- i;
      slots.(i) <- children.(i)
    done;
    n.layout <- L48 (index, slots)
  | L48 (index, children) when n.count = 48 ->
    let arr = Array.make 256 None in
    Array.iteri (fun c slot -> if slot >= 0 then arr.(c) <- Some children.(slot)) index;
    n.layout <- L256 arr
  | _ -> ()

let add_child n c node =
  (match n.layout with
  | L4 (_, _) when n.count = 4 -> grow n
  | L16 (_, _) when n.count = 16 -> grow n
  | L48 (_, _) when n.count = 48 -> grow n
  | _ -> ());
  (match n.layout with
  | L4 (keys, children) | L16 (keys, children) ->
    (* keep keys sorted for ordered iteration *)
    let pos = ref n.count in
    while !pos > 0 && keys.(!pos - 1) > c do
      keys.(!pos) <- keys.(!pos - 1);
      children.(!pos) <- children.(!pos - 1);
      decr pos
    done;
    keys.(!pos) <- c;
    children.(!pos) <- node
  | L48 (index, children) ->
    (* find a free slot: count < 48 guaranteed *)
    let slot = ref 0 in
    let used = Array.make 48 false in
    Array.iter (fun s -> if s >= 0 then used.(s) <- true) index;
    while used.(!slot) do
      incr slot
    done;
    index.(Char.code c) <- !slot;
    children.(!slot) <- node
  | L256 children -> children.(Char.code c) <- Some node);
  n.count <- n.count + 1

let remove_child n c =
  (match n.layout with
  | L4 (keys, children) | L16 (keys, children) -> (
    match sorted_find keys n.count c with
    | None -> invalid_arg "Art.remove_child: absent child"
    | Some i ->
      Array.blit keys (i + 1) keys i (n.count - i - 1);
      Array.blit children (i + 1) children i (n.count - i - 1))
  | L48 (index, _) ->
    if index.(Char.code c) < 0 then invalid_arg "Art.remove_child: absent child";
    index.(Char.code c) <- -1
  | L256 children -> children.(Char.code c) <- None);
  n.count <- n.count - 1

(* iterate children in ascending byte order *)
let iter_children n f =
  match n.layout with
  | L4 (keys, children) | L16 (keys, children) ->
    for i = 0 to n.count - 1 do
      f keys.(i) children.(i)
    done
  | L48 (index, children) ->
    for c = 0 to 255 do
      let slot = index.(c) in
      if slot >= 0 then f (Char.chr c) children.(slot)
    done
  | L256 children ->
    for c = 0 to 255 do
      match children.(c) with Some ch -> f (Char.chr c) ch | None -> ()
    done

(* --- prefix helpers --- *)

(* length of the common run between [n.prefix] and [key] at [depth] *)
let common_prefix prefix key depth =
  let plen = String.length prefix and klen = String.length key in
  let m = min plen (klen - depth) in
  let rec go i = if i < m && prefix.[i] = key.[depth + i] then go (i + 1) else i in
  Op_counter.compare_keys 1;
  go 0

(* --- insert --- *)

let append_value l value = l.lvalues <- Array.append l.lvalues [| value |]

(* Replace leaf [l] (reached at [depth]) by an inner node distinguishing it
   from [key]: lazy-expansion split. *)
let diverge l key depth value =
  let cp = common_prefix (String.sub l.lkey depth (String.length l.lkey - depth)) key depth in
  let node = new_inner (String.sub key depth cp) in
  let d = depth + cp in
  (if String.length l.lkey = d then node.term <- Some l
   else add_child node l.lkey.[d] (Leaf l));
  (if String.length key = d then node.term <- Some (new_leaf key value)
   else add_child node key.[d] (Leaf (new_leaf key value)));
  Inner node

let rec insert_rec node key depth value =
  match node with
  | Leaf l ->
    if l.lkey = key then begin
      append_value l value;
      node
    end
    else diverge l key depth value
  | Inner n ->
    Op_counter.visit ();
    let plen = String.length n.prefix in
    let m = common_prefix n.prefix key depth in
    if m < plen then begin
      (* the key diverges inside the compressed path: split it *)
      let parent = new_inner (String.sub n.prefix 0 m) in
      let old_byte = n.prefix.[m] in
      n.prefix <- String.sub n.prefix (m + 1) (plen - m - 1);
      add_child parent old_byte (Inner n);
      let d = depth + m in
      (if String.length key = d then parent.term <- Some (new_leaf key value)
       else add_child parent key.[d] (Leaf (new_leaf key value)));
      Inner parent
    end
    else begin
      let depth = depth + plen in
      if String.length key = depth then begin
        (match n.term with
        | Some l -> append_value l value
        | None -> n.term <- Some (new_leaf key value));
        node
      end
      else begin
        let c = key.[depth] in
        (match child_find n c with
        | Some ch ->
          Op_counter.deref ();
          let ch' = insert_rec ch key (depth + 1) value in
          if ch' != ch then set_child n c ch'
        | None -> add_child n c (Leaf (new_leaf key value)));
        node
      end
    end

let insert t key value =
  (match t.root with
  | None -> t.root <- Some (Leaf (new_leaf key value))
  | Some node -> t.root <- Some (insert_rec node key 0 value));
  t.entries <- t.entries + 1

(* --- lookups --- *)

let rec find_leaf node key depth =
  match node with
  | Leaf l ->
    Op_counter.compare_keys 1;
    if l.lkey = key then Some l else None
  | Inner n ->
    Op_counter.visit ();
    let plen = String.length n.prefix in
    if common_prefix n.prefix key depth < plen then None
    else begin
      let depth = depth + plen in
      if String.length key = depth then n.term
      else
        match child_find n key.[depth] with
        | None -> None
        | Some ch ->
          Op_counter.deref ();
          find_leaf ch key (depth + 1)
    end

let leaf_opt t key = match t.root with None -> None | Some node -> find_leaf node key 0
let mem t key = leaf_opt t key <> None
let find t key = match leaf_opt t key with Some l -> Some l.lvalues.(0) | None -> None
let find_all t key = match leaf_opt t key with Some l -> Array.to_list l.lvalues | None -> []

let update t key value =
  match leaf_opt t key with
  | Some l ->
    l.lvalues.(0) <- value;
    true
  | None -> false

(* --- delete --- *)

(* After removing something from [n], collapse single-child chains to keep
   paths compressed. *)
let collapse n =
  if n.count = 0 then (match n.term with None -> None | Some l -> Some (Leaf l))
  else if n.count = 1 && n.term = None then begin
    let only = ref None in
    iter_children n (fun c ch -> only := Some (c, ch));
    match !only with
    | Some (c, Inner ci) ->
      ci.prefix <- n.prefix ^ String.make 1 c ^ ci.prefix;
      Some (Inner ci)
    | Some (_, Leaf l) -> Some (Leaf l)
    | None -> assert false
  end
  else Some (Inner n)

(* [remove] drops a whole leaf; [trim] optionally removes a single value.
   Returns (replacement, removed). *)
let rec delete_rec node key depth ~value =
  match node with
  | Leaf l ->
    if l.lkey <> key then (Some node, false)
    else begin
      match value with
      | None -> (None, true)
      | Some v ->
        if Array.exists (fun x -> x = v) l.lvalues then begin
          let removed = ref false in
          let vs =
            Array.of_list
              (List.filter
                 (fun x ->
                   if (not !removed) && x = v then begin
                     removed := true;
                     false
                   end
                   else true)
                 (Array.to_list l.lvalues))
          in
          if Array.length vs = 0 then (None, true)
          else begin
            l.lvalues <- vs;
            (Some node, true)
          end
        end
        else (Some node, false)
    end
  | Inner n ->
    let plen = String.length n.prefix in
    if common_prefix n.prefix key depth < plen then (Some node, false)
    else begin
      let depth = depth + plen in
      if String.length key = depth then begin
        match n.term with
        | None -> (Some node, false)
        | Some l -> (
          match delete_rec (Leaf l) key depth ~value with
          | Some (Leaf l'), removed ->
            n.term <- Some l';
            (Some node, removed)
          | None, removed ->
            n.term <- None;
            (collapse n, removed)
          | Some (Inner _), _ -> assert false)
      end
      else begin
        let c = key.[depth] in
        match child_find n c with
        | None -> (Some node, false)
        | Some ch -> (
          match delete_rec ch key (depth + 1) ~value with
          | Some ch', removed ->
            if ch' != ch then set_child n c ch';
            (Some node, removed)
          | None, removed ->
            remove_child n c;
            (collapse n, removed))
      end
    end

(* number of values attached to a key, to keep [entries] exact *)
let value_count t key = match leaf_opt t key with Some l -> Array.length l.lvalues | None -> 0

let delete t key =
  let n = value_count t key in
  if n = 0 then false
  else begin
    (match t.root with
    | None -> ()
    | Some node ->
      let replacement, _ = delete_rec node key 0 ~value:None in
      t.root <- replacement);
    t.entries <- t.entries - n;
    true
  end

let delete_value t key value =
  match t.root with
  | None -> false
  | Some node ->
    let replacement, removed = delete_rec node key 0 ~value:(Some value) in
    t.root <- replacement;
    if removed then t.entries <- t.entries - 1;
    removed

(* --- ordered traversal --- *)

let rec iter_node node f =
  match node with
  | Leaf l -> f l
  | Inner n ->
    (match n.term with Some l -> f l | None -> ());
    iter_children n (fun _ ch -> iter_node ch f)

let iter_sorted t f =
  match t.root with None -> () | Some node -> iter_node node (fun l -> f l.lkey l.lvalues)

(* Range traversal: visit leaves with key >= probe in order.  [ge] becomes
   true once the subtree is known to be entirely >= probe, after which no
   more comparisons are needed. *)
let rec scan_node node probe depth ge f =
  match node with
  | Leaf l -> if ge || String.compare l.lkey probe >= 0 then f l
  | Inner n ->
    if ge then iter_node node f
    else begin
      let plen = String.length n.prefix in
      let klen = String.length probe in
      if depth >= klen then iter_node node f
      else begin
        let m = min plen (klen - depth) in
        let rec cmp i = if i >= m then 0 else if n.prefix.[i] <> probe.[depth + i] then Char.compare n.prefix.[i] probe.[depth + i] else cmp (i + 1) in
        let c = cmp 0 in
        if c > 0 then iter_node node f
        else if c < 0 then ()
        else begin
          (* prefix matches the probe so far *)
          let depth = depth + plen in
          if depth >= klen then iter_node node f
          else begin
            (match n.term with Some _ -> () | None -> ());
            let pc = probe.[depth] in
            iter_children n (fun c ch ->
                if c > pc then iter_node ch f
                else if c = pc then scan_node ch probe (depth + 1) false f)
          end
        end
      end
    end

exception Enough

let scan_from t probe n =
  let out = ref [] and taken = ref 0 in
  (try
     match t.root with
     | None -> ()
     | Some node ->
       scan_node node probe 0 false (fun l ->
           Array.iter
             (fun v ->
               if !taken >= n then raise Enough;
               out := (l.lkey, v) :: !out;
               incr taken)
             l.lvalues;
           if !taken >= n then raise Enough)
   with Enough -> ());
  List.rev !out

let entry_count t = t.entries

let clear t =
  t.root <- None;
  t.entries <- 0

(* --- memory model (paper Fig 3 node layouts) --- *)

let header_bytes = 16 (* type tag, child count, prefix length, 8-byte inline prefix *)

let layout_bytes n =
  let body =
    match n.layout with
    | L4 _ -> 4 * (1 + Mem_model.pointer_size)
    | L16 _ -> 16 * (1 + Mem_model.pointer_size)
    | L48 _ -> 256 + (48 * Mem_model.pointer_size)
    | L256 _ -> 256 * Mem_model.pointer_size
  in
  let prefix_overflow = max 0 (String.length n.prefix - 8) in
  header_bytes + body + prefix_overflow

(* Index memory: inner nodes plus multi-value arrays; the leaf "pointer" is
   the parent's child slot (keys live in the tuple store, as in C++ ART). *)
let memory_bytes t =
  let bytes = ref 0 in
  let rec walk = function
    | Leaf l -> if Array.length l.lvalues > 1 then bytes := !bytes + 16 + (Mem_model.value_size * Array.length l.lvalues)
    | Inner n ->
      bytes := !bytes + layout_bytes n;
      (match n.term with Some l -> walk (Leaf l) | None -> ());
      iter_children n (fun _ ch -> walk ch)
  in
  (match t.root with None -> () | Some node -> walk node);
  !bytes

(* Average slot occupancy across inner nodes (paper reports ~51 % for 50 M
   random 64-bit keys). *)
let node_occupancy t =
  let slots = ref 0 and used = ref 0 in
  let rec walk = function
    | Leaf _ -> ()
    | Inner n ->
      let cap = match n.layout with L4 _ -> 4 | L16 _ -> 16 | L48 _ -> 48 | L256 _ -> 256 in
      slots := !slots + cap;
      used := !used + n.count;
      (match n.term with Some _ -> () | None -> ());
      iter_children n (fun _ ch -> walk ch)
  in
  (match t.root with None -> () | Some node -> walk node);
  if !slots = 0 then 0.0 else float_of_int !used /. float_of_int !slots

(* --- structural self-check (differential-testing harness support) ---

   Checks child-count/layout consistency, sorted child bytes in L4/L16,
   L48 index-slot injectivity, path-compression invariants (no collapsible
   one-child chain without a terminal), leaf reachability (every leaf key
   extends the byte path used to reach it), and entry accounting. *)
let check_structure t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let n_entries = ref 0 in
  let check_leaf l path ~terminal =
    if Array.length l.lvalues = 0 then err "leaf %S has empty value array" l.lkey;
    n_entries := !n_entries + Array.length l.lvalues;
    if terminal then begin
      if l.lkey <> path then err "terminal leaf key %S <> node path %S" l.lkey path
    end
    else begin
      let plen = String.length path in
      if String.length l.lkey < plen || String.sub l.lkey 0 plen <> path then
        err "leaf key %S unreachable via byte path %S" l.lkey path
    end
  in
  let rec walk node path =
    match node with
    | Leaf l -> check_leaf l path ~terminal:false
    | Inner n ->
      let path = path ^ n.prefix in
      (match n.term with Some l -> check_leaf l path ~terminal:true | None -> ());
      let live =
        match n.layout with
        | L4 (keys, _) | L16 (keys, _) ->
          let cap = match n.layout with L4 _ -> 4 | _ -> 16 in
          if n.count > cap then err "count %d exceeds layout capacity %d" n.count cap;
          for i = 0 to min n.count cap - 2 do
            if keys.(i) >= keys.(i + 1) then
              err "child bytes not strictly sorted at %S: %C >= %C" path keys.(i) keys.(i + 1)
          done;
          min n.count cap
        | L48 (index, _) ->
          let seen = Array.make 48 false in
          let live = ref 0 in
          Array.iteri
            (fun c slot ->
              if slot >= 0 then begin
                if slot >= 48 then err "L48 slot %d out of range for byte %d" slot c
                else if seen.(slot) then err "L48 slot %d aliased (byte %d)" slot c
                else seen.(slot) <- true;
                incr live
              end)
            index;
          !live
        | L256 children ->
          Array.fold_left (fun acc ch -> match ch with Some _ -> acc + 1 | None -> acc) 0 children
      in
      if live <> n.count then err "node at %S: count %d <> live children %d" path n.count live;
      if n.count = 0 && n.term = None then err "node at %S has no children and no terminal" path;
      if n.count = 0 && n.term <> None then err "uncollapsed terminal-only node at %S" path;
      if n.count = 1 && n.term = None then err "uncollapsed one-child chain at %S" path;
      iter_children n (fun c ch -> walk ch (path ^ String.make 1 c))
  in
  (match t.root with None -> () | Some node -> walk node "");
  if !n_entries <> t.entries then err "entry counter %d <> actual %d" t.entries !n_entries;
  List.rev !errs
