(** Adaptive Radix Tree (Leis et al., ICDE '13) — paper §4.1, Fig 3.

    A 256-way radix tree with four adaptive node layouts (Node4 / Node16 /
    Node48 / Node256), lazy expansion and path compression.  Keys may be
    prefixes of one another: each inner node carries an optional terminal
    leaf, which also permits embedded zero bytes (unlike the classic
    0-terminator trick).

    As in the paper's C++ ART, leaves model tagged pointers into the tuple
    store, so the index memory excludes key bytes and full-key comparison
    at a leaf stands for fetching the key from the record (§6.4).

    Implements {!Hi_index.Index_intf.DYNAMIC}. *)

type t

val name : string
val create : unit -> t
val insert : t -> string -> int -> unit
val mem : t -> string -> bool
val find : t -> string -> int option
val find_all : t -> string -> int list
val update : t -> string -> int -> bool
val delete : t -> string -> bool
val delete_value : t -> string -> int -> bool
val scan_from : t -> string -> int -> (string * int) list
val iter_sorted : t -> (string -> int array -> unit) -> unit
val entry_count : t -> int
val clear : t -> unit

val memory_bytes : t -> int
(** Modelled Fig 3 node layouts: Node4 = 52 B, Node16 = 160 B, Node48 =
    656 B, Node256 = 2064 B (16-byte headers), plus prefix overflow and
    multi-value arrays. *)

val node_occupancy : t -> float
(** Average child-slot fill across inner nodes (~0.51 for random 64-bit
    keys, §4.2). *)

val check_structure : t -> string list
(** Structural invariant self-check: child-count/layout consistency,
    sorted child bytes, path-compression invariants, leaf reachability,
    entry accounting.  [] when consistent. *)
