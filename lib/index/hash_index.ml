(* Open-addressing hash index (robin-hood probing).

   Appendix A of the paper observes that most in-memory OLTP DBMSs also
   ship a hash index, but none uses it as the default because it cannot
   answer range queries.  This implementation provides the equality-only
   counterpart for that comparison: point operations in O(1) expected
   time, no ordered scans.  Tables use it as the primary-key sidecar
   (DESIGN.md §17), so it carries production niceties: load-factor
   driven resize in both directions, a clear-free presized rebuild for
   recovery, and hit/miss/probe-length counters under the "hash"
   metrics scope.

   One value per key (primary-index style); inserting an existing key
   replaces its value. *)

open Hi_util

let metrics_scope = Metrics.scope "hash"
let m_hits = Metrics.counter metrics_scope "hits"
let m_misses = Metrics.counter metrics_scope "misses"
let m_probe_steps = Metrics.counter metrics_scope "probe_steps"
let m_grows = Metrics.counter metrics_scope "grows"
let m_shrinks = Metrics.counter metrics_scope "shrinks"
let m_rebuilds = Metrics.counter metrics_scope "rebuilds"

type t = {
  mutable keys : string array; (* "" = empty slot *)
  mutable values : int array;
  mutable dist : int array; (* probe distance of the resident entry, -1 = empty *)
  mutable count : int;
  mutable mask : int;
}

let name = "hash"

let min_capacity = 16

(* Smallest power-of-two table that keeps [n] entries under the 0.7
   load-factor growth target. *)
let capacity_for n =
  let c = ref min_capacity in
  while n * 10 > !c * 7 do
    c := !c * 2
  done;
  !c

let create ?(capacity = 0) () =
  let capacity = capacity_for capacity in
  {
    keys = Array.make capacity "";
    values = Array.make capacity 0;
    dist = Array.make capacity (-1);
    count = 0;
    mask = capacity - 1;
  }

let hash key = Int64.to_int (Int64.shift_right_logical (Bloom.fnv1a_64 key) 2)

let insert_slot t key value =
  (* robin-hood: displace entries closer to their home slot *)
  let key = ref key and value = ref value and d = ref 0 in
  let i = ref (hash !key land t.mask) in
  let placed = ref false in
  while not !placed do
    if t.dist.(!i) < 0 then begin
      t.keys.(!i) <- !key;
      t.values.(!i) <- !value;
      t.dist.(!i) <- !d;
      t.count <- t.count + 1;
      placed := true
    end
    else if t.keys.(!i) = !key then begin
      t.values.(!i) <- !value;
      placed := true
    end
    else begin
      if t.dist.(!i) < !d then begin
        (* swap with the richer resident *)
        let k = t.keys.(!i) and v = t.values.(!i) and dd = t.dist.(!i) in
        t.keys.(!i) <- !key;
        t.values.(!i) <- !value;
        t.dist.(!i) <- !d;
        key := k;
        value := v;
        d := dd
      end;
      incr d;
      i := (!i + 1) land t.mask
    end
  done

let resize t capacity =
  let old_keys = t.keys and old_values = t.values and old_dist = t.dist in
  t.keys <- Array.make capacity "";
  t.values <- Array.make capacity 0;
  t.dist <- Array.make capacity (-1);
  t.mask <- capacity - 1;
  t.count <- 0;
  Array.iteri (fun i k -> if old_dist.(i) >= 0 then insert_slot t k old_values.(i)) old_keys

let grow t =
  Metrics.incr m_grows;
  resize t ((t.mask + 1) * 2)

let insert t key value =
  if (t.count + 1) * 10 > (t.mask + 1) * 7 then grow t;
  insert_slot t key value

let find_slot t key =
  let i = ref (hash key land t.mask) and d = ref 0 in
  let result = ref (-1) and stop = ref false in
  while not !stop do
    if t.dist.(!i) < 0 || t.dist.(!i) < !d then stop := true
    else if t.keys.(!i) = key then begin
      result := !i;
      stop := true
    end
    else begin
      incr d;
      i := (!i + 1) land t.mask
    end
  done;
  Metrics.add m_probe_steps (!d + 1);
  !result

let find t key =
  Op_counter.visit ();
  let s = find_slot t key in
  if s >= 0 then begin
    Metrics.incr m_hits;
    Some t.values.(s)
  end
  else begin
    Metrics.incr m_misses;
    None
  end

let mem t key = find_slot t key >= 0

(* Shrink once occupancy drops below 1/8th; landing at half capacity
   leaves the survivor around 25% full, well clear of both the growth
   target and the next shrink trigger (hysteresis against thrash). *)
let maybe_shrink t =
  let capacity = t.mask + 1 in
  if capacity > min_capacity && t.count * 8 < capacity then begin
    Metrics.incr m_shrinks;
    resize t (max min_capacity (capacity / 2))
  end

let delete t key =
  let s = find_slot t key in
  if s < 0 then false
  else begin
    (* backward-shift deletion keeps probe chains intact *)
    let i = ref s in
    let continue = ref true in
    while !continue do
      let next = (!i + 1) land t.mask in
      if t.dist.(next) <= 0 then begin
        t.keys.(!i) <- "";
        t.dist.(!i) <- -1;
        continue := false
      end
      else begin
        t.keys.(!i) <- t.keys.(next);
        t.values.(!i) <- t.values.(next);
        t.dist.(!i) <- t.dist.(next) - 1;
        i := next
      end
    done;
    t.count <- t.count - 1;
    maybe_shrink t;
    true
  end

let entry_count t = t.count

let clear t =
  t.keys <- Array.make min_capacity "";
  t.values <- Array.make min_capacity 0;
  t.dist <- Array.make min_capacity (-1);
  t.count <- 0;
  t.mask <- min_capacity - 1

let rebuild t ~expect iter =
  Metrics.incr m_rebuilds;
  (* Single right-sized allocation: with an accurate [expect] the feed
     below never triggers an intermediate grow (recovery replays the
     table exactly once, so this is the clear-free rebuild path). *)
  let capacity = capacity_for expect in
  t.keys <- Array.make capacity "";
  t.values <- Array.make capacity 0;
  t.dist <- Array.make capacity (-1);
  t.count <- 0;
  t.mask <- capacity - 1;
  iter (fun key value -> insert t key value)

(* Modelled layout: per slot an 8-byte key pointer/slice, 8-byte value and
   1-byte metadata, plus out-of-line long keys. *)
let memory_bytes t =
  let out_of_line = ref 0 in
  Array.iteri
    (fun i k -> if t.dist.(i) >= 0 && String.length k > 8 then out_of_line := !out_of_line + String.length k)
    t.keys;
  ((t.mask + 1) * 17) + !out_of_line

let load_factor t = float_of_int t.count /. float_of_int (t.mask + 1)

let iter t f =
  Array.iteri (fun i k -> if t.dist.(i) >= 0 then f k t.values.(i)) t.keys
