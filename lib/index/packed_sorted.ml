(* Packed sorted-entries store: the structural core shared by the Compact
   B+tree and the Compact Skip List after the Compaction and Structural
   Reduction rules (paper §4.2–4.3, Fig 2).

   All keys are concatenated in a single byte array with an offset array
   (100% occupancy, no per-node slack); values are likewise packed with a
   per-key offset array so a key maps to one or more values without
   duplicating the key.  Parent-to-child pointers are gone: upper "levels"
   are sampled separator arrays whose child windows are computed from
   in-memory offsets, exactly the dashed arrows of Fig 2. *)

open Hi_util

let fanout = 32

type t = {
  nkeys : int;
  key_bytes : Bytes.t;
  key_offsets : int array; (* nkeys + 1 *)
  values : int array;
  val_offsets : int array; (* nkeys + 1 *)
  levels : string array array; (* levels.(0) samples the leaf entries *)
}

let empty =
  {
    nkeys = 0;
    key_bytes = Bytes.empty;
    key_offsets = [| 0 |];
    values = [||];
    val_offsets = [| 0 |];
    levels = [||];
  }

let key_count t = t.nkeys
let entry_count t = Array.length t.values

let get_key t i = Bytes.sub_string t.key_bytes t.key_offsets.(i) (t.key_offsets.(i + 1) - t.key_offsets.(i))

(* Compare entry [i]'s key with [probe] without materializing the key.
   8-byte keys (the encoded-integer case) compare as one unsigned word. *)
let compare_at t i probe =
  Op_counter.compare_keys 1;
  let off = t.key_offsets.(i) in
  let len = t.key_offsets.(i + 1) - off in
  let plen = String.length probe in
  if len = 8 && plen = 8 then
    Int64.unsigned_compare (Bytes.get_int64_be t.key_bytes off) (String.get_int64_be probe 0)
  else begin
    (* longer keys: compare word-at-a-time over the packed bytes *)
    let m = min len plen in
    let words = m lsr 3 in
    let rec go_words w =
      if w >= words then go_bytes (words lsl 3)
      else
        let a = Bytes.get_int64_be t.key_bytes (off + (w lsl 3)) in
        let b = String.get_int64_be probe (w lsl 3) in
        if a = b then go_words (w + 1) else Int64.unsigned_compare a b
    and go_bytes j =
      if j >= m then compare len plen
      else
        let c = Char.compare (Bytes.unsafe_get t.key_bytes (off + j)) (String.unsafe_get probe j) in
        if c <> 0 then c else go_bytes (j + 1)
    in
    go_words 0
  end

(* Leftmost index in [lo, hi) whose key >= probe (= hi when none). *)
let lower_bound_range t probe lo hi =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_at t mid probe < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Walk the separator levels top-down to narrow the search window, then
   binary-search the leaf window: the computed-offset traversal of the
   compact structure. *)
let lower_bound t probe =
  if t.nkeys = 0 then 0
  else begin
    let nlevels = Array.length t.levels in
    (* window in level [l] units; level -1 means leaf entries *)
    let rec descend l lo hi =
      Op_counter.visit ();
      if l < 0 then lower_bound_range t probe lo (min hi t.nkeys)
      else begin
        let level = t.levels.(l) in
        let hi = min hi (Array.length level) in
        (* leftmost separator >= probe within [lo, hi) *)
        let a = ref lo and b = ref hi in
        while !a < !b do
          let mid = (!a + !b) / 2 in
          Op_counter.compare_keys 1;
          if String.compare level.(mid) probe < 0 then a := mid + 1 else b := mid
        done;
        (* the block to search starts one separator earlier: keys equal to
           the separator may begin in the previous block only when the
           separator is the block's first key, so start at !a - 1 *)
        let block = max lo (!a - 1) in
        descend (l - 1) (block * fanout) ((!a + 1) * fanout)
      end
    in
    let top = nlevels - 1 in
    if top < 0 then descend (-1) 0 t.nkeys else descend top 0 (Array.length t.levels.(top))
  end

let find_index t probe =
  if t.nkeys = 0 then None
  else
    let i = lower_bound t probe in
    if i < t.nkeys && compare_at t i probe = 0 then Some i else None

let mem t probe = find_index t probe <> None

let values_of t i = Array.sub t.values t.val_offsets.(i) (t.val_offsets.(i + 1) - t.val_offsets.(i))

let find t probe =
  match find_index t probe with None -> None | Some i -> Some t.values.(t.val_offsets.(i))

let find_all t probe =
  match find_index t probe with None -> [] | Some i -> Array.to_list (values_of t i)

let update t probe v =
  match find_index t probe with
  | None -> false
  | Some i ->
    t.values.(t.val_offsets.(i)) <- v;
    true

let scan_from t probe n =
  let out = ref [] and taken = ref 0 in
  let i = ref (lower_bound t probe) in
  while !taken < n && !i < t.nkeys do
    let key = get_key t !i in
    let vlo = t.val_offsets.(!i) and vhi = t.val_offsets.(!i + 1) in
    let j = ref vlo in
    while !taken < n && !j < vhi do
      out := (key, t.values.(!j)) :: !out;
      incr taken;
      incr j
    done;
    incr i
  done;
  List.rev !out

let iter_sorted t f =
  for i = 0 to t.nkeys - 1 do
    f (get_key t i) (values_of t i)
  done

let to_entries t = Array.init t.nkeys (fun i -> (get_key t i, values_of t i))

let build_levels keys nkeys get =
  (* sample every [fanout]-th key per level until a level fits in one node *)
  let rec up level acc =
    let n = Array.length level in
    if n <= fanout then List.rev (level :: acc)
    else begin
      let next = Array.init ((n + fanout - 1) / fanout) (fun i -> level.(i * fanout)) in
      up next (level :: acc)
    end
  in
  if nkeys <= fanout then [||]
  else begin
    let level0 = Array.init ((nkeys + fanout - 1) / fanout) (fun i -> get keys (i * fanout)) in
    Array.of_list (up level0 [])
  end

let build (entries : Index_intf.entries) =
  let nkeys = Array.length entries in
  if nkeys = 0 then empty
  else begin
    let key_offsets = Array.make (nkeys + 1) 0 in
    let val_offsets = Array.make (nkeys + 1) 0 in
    for i = 0 to nkeys - 1 do
      let k, vs = entries.(i) in
      key_offsets.(i + 1) <- key_offsets.(i) + String.length k;
      val_offsets.(i + 1) <- val_offsets.(i) + Array.length vs
    done;
    let key_bytes = Bytes.create key_offsets.(nkeys) in
    let values = Array.make val_offsets.(nkeys) 0 in
    for i = 0 to nkeys - 1 do
      let k, vs = entries.(i) in
      Bytes.blit_string k 0 key_bytes key_offsets.(i) (String.length k);
      Array.blit vs 0 values val_offsets.(i) (Array.length vs)
    done;
    let levels = build_levels entries nkeys (fun e i -> fst e.(i)) in
    { nkeys; key_bytes; key_offsets; values; val_offsets; levels }
  end

let merge t (batch : Index_intf.entries) ~(mode : Index_intf.merge_mode) ~deleted =
  let resolve (k, old_vs) (_, new_vs) =
    match mode with
    | Index_intf.Replace -> Some (k, new_vs)
    | Index_intf.Concat -> Some (k, Array.append old_vs new_vs)
  in
  let cmp (a, _) (b, _) = String.compare a b in
  (* [deleted] collects tombstones over pre-existing static entries only;
     batch entries always survive (a deleted key may since have been
     reinserted into the batch) *)
  let keep =
    Array.of_seq (Seq.filter (fun (k, _) -> not (deleted k)) (Array.to_seq (to_entries t)))
  in
  build (Inplace_merge.merge_resolve ~cmp ~resolve keep batch)

(* Memory accounting hooks: wrappers add their own structural constants. *)

(* Leaf-level key storage: fixed 8-byte keys sit inline in 8-byte slots
   (no offset array needed); variable-length keys are packed with a 4-byte
   offset each. *)
let leaf_key_store_bytes t =
  let fixed8 = ref true in
  for i = 0 to t.nkeys - 1 do
    if t.key_offsets.(i + 1) - t.key_offsets.(i) <> 8 then fixed8 := false
  done;
  if !fixed8 then 8 * t.nkeys else Bytes.length t.key_bytes + (4 * (t.nkeys + 1))

(* Leaf-level value storage: one value per key stores inline; multi-value
   keys need a per-key offset array. *)
let leaf_value_store_bytes t =
  let entries = Array.length t.values in
  let base = Mem_model.value_size * entries in
  if entries = t.nkeys then base else base + (4 * (t.nkeys + 1))

let key_bytes_total t = Bytes.length t.key_bytes

let level_key_slots t =
  Array.fold_left (fun acc level -> acc + Array.length level) 0 t.levels

let level_key_bytes t =
  Array.fold_left
    (fun acc level -> Array.fold_left (fun a k -> a + Mem_model.key_slot_bytes (String.length k)) acc level)
    0 t.levels

(* Lazy entry cursor (for incremental merging): entries in key order,
   produced on demand. *)
let to_seq t =
  let rec from i () =
    if i >= t.nkeys then Seq.Nil else Seq.Cons ((get_key t i, values_of t i), from (i + 1))
  in
  from 0
