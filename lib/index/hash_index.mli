(** Open-addressing hash index (robin-hood probing, backward-shift
    deletion).

    The equality-only counterpart discussed in the paper's Appendix A:
    supported by most in-memory DBMSs, default in none, because it
    cannot answer range queries.  Used as the per-table primary-key
    sidecar (DESIGN.md §17).  One value per key; inserting an existing
    key replaces its value.

    Capacity management: the table grows at a 0.7 load factor, shrinks
    when occupancy drops below 1/8th, and [rebuild] reallocates once at
    the right size for bulk reloads.  Point probes report hit/miss and
    probe-length counters under the ["hash"] metrics scope. *)

type t

val name : string

val create : ?capacity:int -> unit -> t
(** [capacity] is an expected-entry hint: the table is presized so that
    many inserts fit without resizing.  Defaults to a minimal table. *)

val insert : t -> string -> int -> unit
(** Insert or replace. *)

val find : t -> string -> int option
val mem : t -> string -> bool

val delete : t -> string -> bool
(** Remove a key; [false] when absent.  May shrink the table. *)

val entry_count : t -> int
val clear : t -> unit

val rebuild : t -> expect:int -> ((string -> int -> unit) -> unit) -> unit
(** [rebuild t ~expect feed] discards the current contents and reloads
    from [feed insert_fn] with a single allocation sized for [expect]
    entries — the clear-free path for recovery/checkpoint replay.  An
    inaccurate [expect] is safe (the table resizes as usual). *)

val iter : t -> (string -> int -> unit) -> unit
(** Iterate live entries in unspecified order. *)

val memory_bytes : t -> int
(** Modelled layout: 17 bytes per slot (key slice/pointer, value,
    metadata) plus out-of-line long keys. *)

val load_factor : t -> float

val metrics_scope : Hi_util.Metrics.scope
(** The ["hash"] scope carrying hits/misses/probe_steps/grows/shrinks/
    rebuilds counters. *)
