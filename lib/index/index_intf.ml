(** Module types shared by every index structure in the repository — the
    one canonical home of the index signatures.  {!DYNAMIC} and {!STATIC}
    describe the two stages of the dual-stage architecture; {!INDEX} is
    the uniform client-facing interface the DBMS engine, benchmarks and
    check harness program against.  {!Index_pack.Of_dynamic} packages a
    plain dynamic structure behind {!INDEX};
    [Hybrid_index.Instances.Of_hybrid] does the same for the dual-stage
    hybrid machinery.

    All indexes are keyed by order-preserving byte strings (see
    {!Hi_util.Key_codec}) and hold [int] values (tuple pointers, paper
    §6.1).  A key may map to several values when the index is used as a
    secondary index; entries are then grouped per key as a value array
    (paper §4.2). *)

(** How a merge resolves a key present in both the static stage and the
    incoming batch. *)
type merge_mode =
  | Replace  (** primary index: the dynamic-stage value overwrites *)
  | Concat  (** secondary index: value arrays are concatenated *)

(** An entry batch handed to a static-stage build or merge: keys strictly
    sorted, values non-empty. *)
type entries = (string * int array) array

(** Write-optimized dynamic-stage structure (paper §3: "a fast dynamic data
    structure [used] as a write buffer").  Stores individual (key, value)
    entries; duplicate keys are allowed for secondary-index use. *)
module type DYNAMIC = sig
  type t

  val name : string

  val create : unit -> t

  val insert : t -> string -> int -> unit
  (** Add one (key, value) entry. Duplicate keys allowed. *)

  val mem : t -> string -> bool

  val find : t -> string -> int option
  (** First (leftmost) value for the key. *)

  val find_all : t -> string -> int list
  (** All values for the key, insertion-position order. *)

  val update : t -> string -> int -> bool
  (** Replace the first value in place; [false] when the key is absent. *)

  val delete : t -> string -> bool
  (** Remove the key and all its values; [false] when absent. *)

  val delete_value : t -> string -> int -> bool
  (** Remove one (key, value) entry; [false] when no such entry. *)

  val scan_from : t -> string -> int -> (string * int) list
  (** Up to [n] entries with key >= the probe, ascending key order. *)

  val iter_sorted : t -> (string -> int array -> unit) -> unit
  (** Visit keys in ascending order, each with its grouped value array. *)

  val entry_count : t -> int
  (** Number of (key, value) entries. *)

  val clear : t -> unit

  val memory_bytes : t -> int
  (** Modelled C-layout footprint (see {!Hi_util.Mem_model}). *)

  val check_structure : t -> string list
  (** Structural invariant self-check: key ordering, node fill bounds,
      link consistency, entry accounting.  Returns one human-readable
      message per violation, [] when the structure is consistent. *)
end

(** Read-only static-stage structure produced by the D-to-S rules (paper
    §4).  Built in bulk; value cells stay mutable so secondary indexes can
    update values in place (paper §3). *)
module type STATIC = sig
  type t

  val name : string

  val empty : t

  val build : entries -> t
  (** Build from strictly-sorted, duplicate-free entries. *)

  val mem : t -> string -> bool
  val find : t -> string -> int option
  val find_all : t -> string -> int list

  val update : t -> string -> int -> bool
  (** In-place first-value replacement (secondary-index semantics). *)

  val scan_from : t -> string -> int -> (string * int) list
  val iter_sorted : t -> (string -> int array -> unit) -> unit

  val key_count : t -> int
  val entry_count : t -> int

  val merge : t -> entries -> mode:merge_mode -> deleted:(string -> bool) -> t
  (** Migrate a sorted dynamic-stage batch into a new static structure.
      Pre-existing static entries whose key satisfies [deleted] are dropped
      (tombstone collection, paper §3); batch entries always survive, since
      a tombstoned key may have been reinserted after its delete and the
      batch then carries the only live copy.  Duplicates resolve per
      [mode]. *)

  val memory_bytes : t -> int
end

(** A pinned, point-in-time view of an index, captured at a merge
    boundary for analytical scans (HTAP read path, DESIGN.md §16).  The
    snapshot stays valid — its arrays are never freed or mutated under a
    reader — while concurrent writes and merges proceed on the live
    index.  [snap_iter probe f] visits entries with key >= [probe] in
    ascending key order until [f] returns [false].  [snap_release] drops
    the pin; releasing twice is a no-op. *)
type snapshot = {
  snap_generation : int;
      (** Stage generation the snapshot was cut at: merge count for
          hybrid indexes, a per-write mutation counter for plain ones.
          Equal generations from the same index mean identical data. *)
  snap_captured_at : float;  (** [Unix.gettimeofday] at capture. *)
  snap_entry_count : int;
  snap_iter : string -> (string -> int array -> bool) -> unit;
  snap_release : unit -> unit;
}

(** Snapshot backed by a materialized sorted entry array — the simple
    pinning strategy for structures without cheap stage sharing: copy
    once at capture, then readers touch only the private copy. *)
let materialized_snapshot ~generation ?release (entries : entries) =
  let n = Array.length entries in
  let total = Array.fold_left (fun acc (_, vs) -> acc + Array.length vs) 0 entries in
  (* leftmost index with key >= probe *)
  let lower_bound probe =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if String.compare (fst entries.(mid)) probe < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let snap_iter probe f =
    let i = ref (lower_bound probe) in
    let continue = ref true in
    while !continue && !i < n do
      let k, vs = entries.(!i) in
      continue := f k vs;
      incr i
    done
  in
  let released = ref false in
  let snap_release () =
    if not !released then begin
      released := true;
      match release with Some r -> r () | None -> ()
    end
  in
  {
    snap_generation = generation;
    snap_captured_at = Unix.gettimeofday ();
    snap_entry_count = total;
    snap_iter;
    snap_release;
  }

(** The uniform first-class-module interface over plain dynamic indexes
    and hybrid indexes, so benchmarks and the DBMS engine can swap index
    implementations freely (paper §6.4 compares each hybrid index against
    its original structure through exactly this kind of common API).
    Adapters packaging concrete structures behind it live in
    {!Index_pack} and [Hybrid_index.Instances]. *)
module type INDEX = sig
  type t

  val name : string
  val create : unit -> t

  val insert : t -> string -> int -> unit
  (** Blind (secondary-style) insert. *)

  val insert_unique : t -> string -> int -> bool
  (** Primary-style insert: [false] if the key already exists. *)

  val mem : t -> string -> bool
  val find : t -> string -> int option
  val find_all : t -> string -> int list
  val update : t -> string -> int -> bool
  val delete : t -> string -> bool
  val delete_value : t -> string -> int -> bool
  val scan_from : t -> string -> int -> (string * int) list
  val iter_sorted : t -> (string -> int array -> unit) -> unit
  val entry_count : t -> int
  val clear : t -> unit
  val memory_bytes : t -> int

  val flush : t -> unit
  (** Force pending migrations (a merge for hybrid indexes; no-op for plain
      structures). *)

  val merge_pending : t -> bool
  (** True when a background migration is due ([false] for plain
      structures).  Lets an owner running with deferred merges poll and
      [flush] off the transaction critical path. *)

  val check_invariants : t -> string list
  (** Structural self-check, [] when consistent.  For hybrid indexes this
      verifies the dual-stage invariants (see [Hybrid.S.check_invariants]);
      plain structures have nothing to check. *)

  val snapshot : t -> snapshot
  (** Pin a point-in-time view for analytical scans (DESIGN.md §16).
      Concurrent writes and merges never mutate a pinned snapshot; the
      caller must [snap_release] it when done. *)

  val generation : t -> int
  (** Current stage generation — the [snap_generation] a snapshot taken
      now would carry.  Hybrid indexes advance it per merge, plain
      structures per write. *)

  val pinned_snapshots : t -> int
  (** Snapshots captured but not yet released. *)
end

(** A first-class {!INDEX} package — the currency the engine, benchmarks
    and check harness pass index implementations around as. *)
type index = (module INDEX)
