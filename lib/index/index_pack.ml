(** Packaging of plain dynamic structures behind the uniform
    {!Index_intf.INDEX} interface.  The hybrid packaging functor lives
    with the hybrid machinery in [Hybrid_index.Instances.Of_hybrid]. *)

(** Adapt a plain dynamic structure to {!Index_intf.INDEX}. *)
module Of_dynamic (D : Index_intf.DYNAMIC) : Index_intf.INDEX = struct
  (* Wrapped rather than [include]d: the uniform interface carries
     snapshot state — a generation and a pin count (DESIGN.md §16) — that
     the plain structure does not track. *)
  type t = { d : D.t; mutable gen : int; mutable pinned : int }

  let name = D.name
  let create () = { d = D.create (); gen = 0; pinned = 0 }
  let bump t = t.gen <- t.gen + 1

  let insert t key value =
    bump t;
    D.insert t.d key value

  let insert_unique t key value =
    if D.mem t.d key then false
    else begin
      bump t;
      D.insert t.d key value;
      true
    end

  let mem t key = D.mem t.d key
  let find t key = D.find t.d key
  let find_all t key = D.find_all t.d key

  let update t key value =
    let r = D.update t.d key value in
    if r then bump t;
    r

  let delete t key =
    let r = D.delete t.d key in
    if r then bump t;
    r

  let delete_value t key value =
    let r = D.delete_value t.d key value in
    if r then bump t;
    r

  let scan_from t key n = D.scan_from t.d key n
  let iter_sorted t f = D.iter_sorted t.d f
  let entry_count t = D.entry_count t.d

  let clear t =
    bump t;
    D.clear t.d

  let memory_bytes t = D.memory_bytes t.d
  let flush _ = ()
  let merge_pending _ = false
  let check_invariants t = D.check_structure t.d

  (* Every write is a trivial "merge boundary" for a single-stage
     structure: a snapshot materializes the current contents and the
     generation advances per mutation, so equal generations really do
     mean identical data. *)
  let snapshot t =
    let out = ref [] in
    D.iter_sorted t.d (fun k vs -> out := (k, Array.copy vs) :: !out);
    let entries = Array.of_list (List.rev !out) in
    t.pinned <- t.pinned + 1;
    Index_intf.materialized_snapshot ~generation:t.gen
      ~release:(fun () -> t.pinned <- t.pinned - 1)
      entries

  let generation t = t.gen
  let pinned_snapshots t = t.pinned
end
