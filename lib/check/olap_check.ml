(* Differential check for pinned-snapshot analytics (DESIGN.md §16).

   The property: a snapshot pinned at time T keeps answering exactly the
   index's T-state — entries, order, probe/early-stop iteration and
   aggregate folds — no matter what writes and forced merges race against
   the pin afterwards.  A merge that frees static arrays under a pin, a
   write that leaks into a captured view, or a tombstone copy shared with
   the live index all show up as a mismatch against the capture-time
   oracle (the live index's [iter_sorted] at pin time).

   Everything is seeded, so a failure reproduces from one integer.  The
   check drives primary-style operations only: Secondary-kind in-place
   static updates are a documented staleness caveat (DESIGN.md §16), not
   a pinning bug, and are excluded here. *)

open Hi_util
module Index_intf = Hi_index.Index_intf

type report = {
  rounds : int;
  entries_checked : int;  (* oracle entries compared across all rounds *)
  merges_raced : int;  (* forced merges run while a snapshot was pinned *)
  errors : string list;  (* [] = the differential held *)
}

(* The live index's current entries — the capture-time oracle. *)
let oracle_entries (type s) (module I : Index_intf.INDEX with type t = s) (t : s) =
  let acc = ref [] in
  I.iter_sorted t (fun k vs -> acc := (k, Array.copy vs) :: !acc);
  List.rev !acc

(* Drain a snapshot from [probe], stopping after [limit] entries. *)
let snap_entries ?(probe = "") ?limit (snap : Index_intf.snapshot) =
  let acc = ref [] and n = ref 0 in
  snap.snap_iter probe (fun k vs ->
      acc := (k, Array.copy vs) :: !acc;
      incr n;
      match limit with Some l -> !n < l | None -> true);
  List.rev !acc

let sorted vs =
  let c = Array.copy vs in
  Array.sort compare c;
  c

let compare_entries (add : string -> unit) ~ctx expect got =
  if List.length expect <> List.length got then
    add
      (Printf.sprintf "%s: %d entries expected, %d from the snapshot" ctx
         (List.length expect) (List.length got))
  else
    List.iter2
      (fun (ek, evs) (gk, gvs) ->
        if ek <> gk then
          add (Printf.sprintf "%s: key %S expected, snapshot gave %S" ctx ek gk)
        else if sorted evs <> sorted gvs then
          add
            (Printf.sprintf "%s: key %S values differ (%d vs %d entries)" ctx ek
               (Array.length evs) (Array.length gvs)))
      expect got

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* count/sum over entries whose key is in [lo, hi) — the oracle fold a
   Scan_agg-style aggregate must match. *)
let fold_range entries ~lo ~hi =
  List.fold_left
    (fun (count, sum) (k, vs) ->
      if String.compare k lo >= 0 && String.compare k hi < 0 then
        (count + Array.length vs, Array.fold_left ( + ) sum vs)
      else (count, sum))
    (0, 0) entries

let run (module I : Index_intf.INDEX) ~seed ~rounds ~ops_per_round =
  let rng = Xorshift.create seed in
  let t = I.create () in
  let universe = 400 in
  let key i = Printf.sprintf "key%05d" i in
  for i = 0 to (universe / 2) - 1 do
    ignore (I.insert_unique t (key (Xorshift.int rng universe)) i)
  done;
  I.flush t (* start each run with a populated static stage *);
  let errors = ref [] in
  let add_s m = errors := m :: !errors in
  let add fmt = Printf.ksprintf add_s fmt in
  let entries_checked = ref 0 and merges = ref 0 in
  for round = 1 to rounds do
    let snap = I.snapshot t in
    let oracle = oracle_entries (module I) t in
    if I.pinned_snapshots t < 1 then
      add "round %d: pinned_snapshots %d under a live pin" round (I.pinned_snapshots t);
    if snap.Index_intf.snap_generation <> I.generation t then
      add "round %d: snapshot generation %d but index at %d" round
        snap.Index_intf.snap_generation (I.generation t);
    (* race writes and forced merges against the pin *)
    for op = 1 to ops_per_round do
      let k = key (Xorshift.int rng universe) in
      match Xorshift.int rng 8 with
      | 0 | 1 | 2 -> ignore (I.insert_unique t k ((round * 10_000) + op))
      | 3 | 4 -> ignore (I.update t k ((round * 10_000) + op))
      | 5 | 6 -> ignore (I.delete t k)
      | _ ->
        I.flush t;
        incr merges
    done;
    I.flush t;
    incr merges;
    (* the pinned snapshot must still read exactly the capture-time state *)
    let total = List.fold_left (fun n (_, vs) -> n + Array.length vs) 0 oracle in
    if snap.Index_intf.snap_entry_count <> total then
      add "round %d: snap_entry_count %d, oracle holds %d" round
        snap.Index_intf.snap_entry_count total;
    compare_entries add_s ~ctx:(Printf.sprintf "round %d full iteration" round) oracle
      (snap_entries snap);
    (* probe + early-stop iteration matches the oracle suffix *)
    let probe = key (Xorshift.int rng universe) in
    let suffix = List.filter (fun (k, _) -> String.compare k probe >= 0) oracle in
    let limit = 1 + Xorshift.int rng 10 in
    compare_entries add_s
      ~ctx:(Printf.sprintf "round %d probe %S limit %d" round probe limit)
      (take limit suffix)
      (snap_entries ~probe ~limit snap);
    (* aggregate fold over a random range equals the oracle fold *)
    let a = Xorshift.int rng universe and b = Xorshift.int rng universe in
    let lo = key (min a b) and hi = key (max a b) in
    let scount = ref 0 and ssum = ref 0 in
    snap.Index_intf.snap_iter lo (fun k vs ->
        if String.compare k hi < 0 then begin
          scount := !scount + Array.length vs;
          Array.iter (fun v -> ssum := !ssum + v) vs;
          true
        end
        else false);
    let ocount, osum = fold_range oracle ~lo ~hi in
    if (!scount, !ssum) <> (ocount, osum) then
      add "round %d: aggregate over [%S, %S) gave (%d, %d), oracle (%d, %d)" round lo hi
        !scount !ssum ocount osum;
    entries_checked := !entries_checked + List.length oracle;
    snap.Index_intf.snap_release ();
    snap.Index_intf.snap_release () (* double release must be a no-op *)
  done;
  if I.pinned_snapshots t <> 0 then
    add "snapshot pins leaked: %d still counted after release" (I.pinned_snapshots t);
  (match I.check_invariants t with
  | [] -> ()
  | errs -> List.iter (add "post-run invariant: %s") errs);
  { rounds; entries_checked = !entries_checked; merges_raced = !merges; errors = List.rev !errors }
