(* Differential runner: executes one Gen.op sequence against an INDEX
   implementation and the Oracle simultaneously, diffing every observable
   result, running structural invariant checks, and comparing full dumps at
   bulk checkpoints.  On divergence the sequence is shrunk greedily to a
   minimal counterexample.

   Two comparison modes handle the one place where correct implementations
   may legitimately differ: [Exact] demands identical results everywhere;
   [Multiset] (for secondary-style hybrid indexes, whose per-key value
   lists can split and reorder across the dynamic/static stages) compares
   per-key value multisets and lets [find] return any live value. *)

type cmp = Exact | Multiset

type caps = {
  scans : bool; (* scan_from / iter_sorted are meaningful *)
  invariants_anytime : bool; (* check_invariants holds between flushes *)
  physical_count : bool; (* entry_count may include logically-dead entries *)
}

let plain_caps = { scans = true; invariants_anytime = true; physical_count = false }

type failure = { step : int; detail : string }

exception Diverged of failure

let pp_entries l =
  "[" ^ String.concat "; " (List.map (fun (k, v) -> Printf.sprintf "(%S,%d)" k v) l) ^ "]"

let pp_groups l =
  "["
  ^ String.concat "; "
      (List.map
         (fun (k, vs) ->
           Printf.sprintf "(%S,[%s])" k (String.concat "," (List.map string_of_int vs)))
         l)
  ^ "]"

let pp_opt = function None -> "None" | Some v -> Printf.sprintf "Some %d" v
let pp_ints l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

(* got must be a sub-multiset of want *)
let sub_multiset got want =
  let rec remove v = function
    | [] -> None
    | x :: rest -> if x = v then Some rest else Option.map (fun r -> x :: r) (remove v rest)
  in
  let rec go got want =
    match got with
    | [] -> true
    | v :: rest -> ( match remove v want with None -> false | Some want' -> go rest want')
  in
  go got want

let same_multiset a b = List.length a = List.length b && sub_multiset a b

(* Flat scan results under multiset semantics: keys must be the consecutive
   oracle groups from the probe; every fully-emitted group must match as a
   multiset; the final (possibly truncated) group must be a sub-multiset. *)
let check_scan_multiset step probe n oracle got =
  let fail step fmt = Printf.ksprintf (fun s -> raise (Diverged { step; detail = s })) fmt in
  let want_groups = Oracle.groups_from oracle probe in
  let total = List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 want_groups in
  let expect_len = min n total in
  if List.length got <> expect_len then
    fail step "scan %S %d: %d entries, oracle has %d" probe n (List.length got) expect_len;
  let rec group = function
    | [] -> []
    | (k, v) :: rest ->
      let same, rest' = List.partition (fun (k', _) -> k' = k) rest in
      (* scan output must keep equal keys adjacent; partition across the
         whole tail would hide an interleaving, so check adjacency first *)
      let adjacent =
        let rec leading = function
          | (k', _) :: tl when k' = k -> leading tl
          | tl -> tl
        in
        List.for_all (fun (k', _) -> k' <> k) (leading rest)
      in
      if not adjacent then fail step "scan %S %d: key %S not contiguous in output" probe n k;
      (k, v :: List.map snd same) :: group rest'
  in
  let rec walk got want =
    match (got, want) with
    | [], _ -> ()
    | (k, vs) :: grest, (wk, wvs) :: wrest ->
      if k <> wk then fail step "scan %S %d: got key %S where oracle has %S" probe n k wk;
      if grest = [] then begin
        if not (sub_multiset vs wvs) then
          fail step "scan %S %d: key %S values %s not within oracle %s" probe n k (pp_ints vs)
            (pp_ints wvs)
      end
      else if not (same_multiset vs wvs) then
        fail step "scan %S %d: key %S values %s <> oracle %s" probe n k (pp_ints vs) (pp_ints wvs)
      else walk grest wrest
    | (k, _) :: _, [] -> fail step "scan %S %d: unexpected key %S past oracle end" probe n k
  in
  walk (group got) want_groups

let run (module I : Hi_index.Index_intf.INDEX) ~cmp ~caps ~universe
    ?(checkpoint_every = 64) (ops : Gen.op array) : failure option =
  let t = I.create () in
  let o = Oracle.create () in
  let fail step fmt = Printf.ksprintf (fun s -> raise (Diverged { step; detail = s })) fmt in
  let key i = universe.(i) in
  let check_bool step what got want =
    if got <> want then fail step "%s: got %b, oracle %b" what got want
  in
  let invariants step =
    match I.check_invariants t with
    | [] -> ()
    | vs -> fail step "invariants violated: %s" (String.concat "; " vs)
  in
  let checkpoint step =
    if caps.scans then begin
      let got = ref [] in
      I.iter_sorted t (fun k vs -> got := (k, Array.to_list vs) :: !got);
      let got = List.rev !got in
      let want = Oracle.dump o in
      let norm =
        match cmp with
        | Exact -> fun l -> l
        | Multiset -> List.map (fun (k, vs) -> (k, List.sort compare vs))
      in
      if norm got <> norm want then
        fail step "checkpoint dump mismatch:\n    index:  %s\n    oracle: %s" (pp_groups got)
          (pp_groups want)
    end
    else begin
      (* no ordered iteration: fall back to per-key point probes *)
      List.iter
        (fun (k, vs) ->
          let got = I.find_all t k in
          if List.sort compare got <> List.sort compare vs then
            fail step "checkpoint find_all %S: %s <> oracle %s" k (pp_ints got) (pp_ints vs))
        (Oracle.dump o)
    end;
    if (not caps.physical_count) && I.entry_count t <> Oracle.entry_count o then
      fail step "entry_count %d <> oracle %d" (I.entry_count t) (Oracle.entry_count o);
    if caps.invariants_anytime then invariants step
  in
  let exec step op =
    match op with
    | Gen.Insert (i, v) ->
      I.insert t (key i) v;
      Oracle.insert o (key i) v
    | Gen.Insert_unique (i, v) ->
      check_bool step "insert_unique" (I.insert_unique t (key i) v) (Oracle.insert_unique o (key i) v)
    | Gen.Update (i, v) ->
      check_bool step "update" (I.update t (key i) v) (Oracle.update o (key i) v)
    | Gen.Delete i -> check_bool step "delete" (I.delete t (key i)) (Oracle.delete o (key i))
    | Gen.Delete_value (i, v) ->
      check_bool step "delete_value" (I.delete_value t (key i) v) (Oracle.delete_value o (key i) v)
    | Gen.Mem i -> check_bool step "mem" (I.mem t (key i)) (Oracle.mem o (key i))
    | Gen.Find i -> (
      let got = I.find t (key i) in
      match cmp with
      | Exact ->
        let want = Oracle.find o (key i) in
        if got <> want then fail step "find %S: %s, oracle %s" (key i) (pp_opt got) (pp_opt want)
      | Multiset -> (
        let live = Oracle.find_all o (key i) in
        match got with
        | None -> if live <> [] then fail step "find %S: None, oracle has %s" (key i) (pp_ints live)
        | Some v ->
          if not (List.mem v live) then
            fail step "find %S: Some %d not among oracle %s" (key i) v (pp_ints live)))
    | Gen.Find_all i ->
      let got = I.find_all t (key i) in
      let want = Oracle.find_all o (key i) in
      let eq = match cmp with Exact -> got = want | Multiset -> same_multiset got want in
      if not eq then fail step "find_all %S: %s <> oracle %s" (key i) (pp_ints got) (pp_ints want)
    | Gen.Scan (i, n) ->
      if caps.scans then begin
        let got = I.scan_from t (key i) n in
        match cmp with
        | Exact ->
          let want = Oracle.scan_from o (key i) n in
          if got <> want then
            fail step "scan_from %S %d:\n    index:  %s\n    oracle: %s" (key i) n
              (pp_entries got) (pp_entries want)
        | Multiset -> check_scan_multiset step (key i) n o got
      end
    | Gen.Scan_all ->
      if caps.scans then begin
        let n = Oracle.entry_count o + 1 in
        let got = I.scan_from t "" n in
        match cmp with
        | Exact ->
          let want = Oracle.scan_from o "" n in
          if got <> want then
            fail step "full scan:\n    index:  %s\n    oracle: %s" (pp_entries got)
              (pp_entries want)
        | Multiset -> check_scan_multiset step "" n o got
      end
    | Gen.Flush ->
      I.flush t;
      (* hybrid dual-stage invariants are only guaranteed right after a
         merge; flush points are where they must hold for everyone *)
      invariants step
  in
  try
    Array.iteri
      (fun step op ->
        exec step op;
        if (step + 1) mod checkpoint_every = 0 then checkpoint step)
      ops;
    let final = Array.length ops - 1 in
    I.flush t;
    invariants final;
    checkpoint final;
    None
  with Diverged f -> Some f

(* Greedy delta-debugging: repeatedly delete the largest window whose
   removal keeps the sequence failing (any failure qualifies), restarting
   after every success, until no single-op deletion helps.  Shrink runs
   diff after every op (checkpoint_every = 1) to fail as early as
   possible. *)
let shrink (module I : Hi_index.Index_intf.INDEX) ~cmp ~caps ~universe ops failure0 =
  let try_run ops = run (module I) ~cmp ~caps ~universe ~checkpoint_every:1 ops in
  let best = ref (ops, failure0) in
  let improved = ref true in
  while !improved do
    improved := false;
    let ops, _ = !best in
    let n = Array.length ops in
    let size = ref (max 1 (n / 2)) in
    while !size >= 1 && not !improved do
      let i = ref 0 in
      while (!i + !size <= n) && not !improved do
        let cand =
          Array.append (Array.sub ops 0 !i) (Array.sub ops (!i + !size) (n - !i - !size))
        in
        (match try_run cand with
        | Some f ->
          best := (cand, f);
          improved := true
        | None -> ());
        i := !i + max 1 !size
      done;
      size := !size / 2
    done
  done;
  !best

let report ~name ~seed ~universe (ops, f) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s diverged from the oracle (seed %d, %d-op counterexample):\n" name seed
       (Array.length ops));
  Array.iteri
    (fun i op -> Buffer.add_string b (Printf.sprintf "  %2d. %s\n" (i + 1) (Gen.pp_op ~universe op)))
    ops;
  Buffer.add_string b (Printf.sprintf "  divergence at op %d: %s\n" (f.step + 1) f.detail);
  Buffer.add_string b
    (Printf.sprintf "  reproduce: HI_CHECK_SEED=%d dune exec test/test_props.exe" seed);
  Buffer.contents b

(* One harness case: run, and on divergence shrink and return the printed
   counterexample (None = passed). *)
let run_case (module I : Hi_index.Index_intf.INDEX) ~name ~seed ~cmp ~caps ~universe
    ?checkpoint_every ops =
  match run (module I) ~cmp ~caps ~universe ?checkpoint_every ops with
  | None -> None
  | Some f ->
    let minimal = shrink (module I) ~cmp ~caps ~universe ops f in
    Some (report ~name ~seed ~universe minimal)
