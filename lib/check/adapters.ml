(* Adapters presenting every remaining structure through Index_intf.INDEX so
   the Runner can drive it.

   Of_static is deliberately brutal: every mutation goes through S.merge
   with a tiny batch, so a property run over a static structure exercises
   its merge path (Replace and Concat resolution, tombstone filtering,
   no-loss/no-duplication) once per operation instead of once per hybrid
   merge epoch. *)

open Hi_index

let drop_first v vs =
  let removed = ref false in
  List.filter
    (fun x ->
      if (not !removed) && x = v then begin
        removed := true;
        false
      end
      else true)
    vs

(* Static sortedness / accounting self-check shared by the static adapter
   (the "compact-variant sortedness" invariant). *)
let static_check (type s) (module S : Index_intf.STATIC with type t = s) (s : s) =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let prev = ref None in
  let keys = ref 0 and entries = ref 0 in
  S.iter_sorted s (fun k vs ->
      incr keys;
      entries := !entries + Array.length vs;
      if Array.length vs = 0 then add "key %S has empty value group" k;
      (match !prev with
      | Some p when String.compare p k >= 0 -> add "keys not strictly sorted: %S then %S" p k
      | _ -> ());
      prev := Some k);
  if !keys <> S.key_count s then add "key_count %d <> iterated keys %d" (S.key_count s) !keys;
  if !entries <> S.entry_count s then
    add "entry_count %d <> iterated entries %d" (S.entry_count s) !entries;
  List.rev !errs

module Of_static
    (S : Index_intf.STATIC)
    (M : sig
      val mode : Index_intf.merge_mode
    end) : Index_intf.INDEX = struct
  type t = { mutable s : S.t; mutable gen : int; mutable pinned : int }

  let mode_tag = match M.mode with Index_intf.Replace -> "replace" | Index_intf.Concat -> "concat"
  let name = "static-" ^ S.name ^ "-" ^ mode_tag
  let create () = { s = S.empty; gen = 0; pinned = 0 }
  let no_deletes _ = false

  let bump t = t.gen <- t.gen + 1

  let insert t k v =
    bump t;
    t.s <- S.merge t.s [| (k, [| v |]) |] ~mode:M.mode ~deleted:no_deletes

  let insert_unique t k v =
    if S.mem t.s k then false
    else begin
      bump t;
      t.s <- S.merge t.s [| (k, [| v |]) |] ~mode:Index_intf.Replace ~deleted:no_deletes;
      true
    end

  let mem t k = S.mem t.s k
  let find t k = S.find t.s k
  let find_all t k = S.find_all t.s k

  let update t k v =
    let r = S.update t.s k v in
    if r then bump t;
    r

  let drop_key t k =
    bump t;
    t.s <- S.merge t.s [||] ~mode:M.mode ~deleted:(String.equal k)

  let delete t k =
    if S.mem t.s k then begin
      drop_key t k;
      true
    end
    else false

  let delete_value t k v =
    let vs = S.find_all t.s k in
    if List.mem v vs then begin
      (match drop_first v vs with
      | [] -> drop_key t k
      | vs' ->
        t.s <- S.merge t.s [| (k, Array.of_list vs') |] ~mode:Index_intf.Replace ~deleted:no_deletes);
      true
    end
    else false

  let scan_from t k n = S.scan_from t.s k n
  let iter_sorted t f = S.iter_sorted t.s f
  let entry_count t = S.entry_count t.s

  let clear t =
    bump t;
    t.s <- S.empty

  let memory_bytes t = S.memory_bytes t.s
  let flush _ = ()
  let merge_pending _ = false
  let check_invariants t = static_check (module S) t.s

  let snapshot t =
    let out = ref [] in
    S.iter_sorted t.s (fun k vs -> out := (k, Array.copy vs) :: !out);
    t.pinned <- t.pinned + 1;
    Index_intf.materialized_snapshot ~generation:t.gen
      ~release:(fun () -> t.pinned <- t.pinned - 1)
      (Array.of_list (List.rev !out))

  let generation t = t.gen
  let pinned_snapshots t = t.pinned
end

(* The equality-only hash index (Appendix A): primary-style semantics, no
   ordered operations. *)
module Of_hash : Index_intf.INDEX = struct
  type t = { h : Hash_index.t; mutable gen : int; mutable pinned : int }

  let name = "hash"
  let create () = { h = Hash_index.create (); gen = 0; pinned = 0 }
  let bump t = t.gen <- t.gen + 1

  let insert t k v =
    bump t;
    Hash_index.insert t.h k v (* replaces on duplicate key *)

  let insert_unique t k v =
    if Hash_index.mem t.h k then false
    else begin
      bump t;
      Hash_index.insert t.h k v;
      true
    end

  let mem t k = Hash_index.mem t.h k
  let find t k = Hash_index.find t.h k
  let find_all t k = match Hash_index.find t.h k with Some v -> [ v ] | None -> []

  let update t k v =
    if Hash_index.mem t.h k then begin
      bump t;
      Hash_index.insert t.h k v;
      true
    end
    else false

  let delete t k =
    let r = Hash_index.delete t.h k in
    if r then bump t;
    r

  let delete_value t k v =
    if Hash_index.find t.h k = Some v then delete t k else false

  let scan_from _ _ _ = []
  let iter_sorted _ _ = ()
  let entry_count t = Hash_index.entry_count t.h

  let clear t =
    bump t;
    Hash_index.clear t.h

  let memory_bytes t = Hash_index.memory_bytes t.h
  let flush _ = ()
  let merge_pending _ = false

  let check_invariants t =
    (* the table grows at 70% occupancy, so the live load factor must
       never exceed it *)
    if Hash_index.entry_count t.h > 0 && Hash_index.load_factor t.h > 0.7 then
      [ Printf.sprintf "load factor %.3f above grow threshold" (Hash_index.load_factor t.h) ]
    else []

  (* No ordered iteration, so a snapshot is empty: the structure cannot
     serve ordered analytical scans at all (Appendix A trade-off). *)
  let snapshot t =
    t.pinned <- t.pinned + 1;
    Index_intf.materialized_snapshot ~generation:t.gen
      ~release:(fun () -> t.pinned <- t.pinned - 1)
      [||]

  let generation t = t.gen
  let pinned_snapshots t = t.pinned
end

(* The incremental-merge hybrid exposes a subset of INDEX (no delete_value,
   no ordered grouped iteration); the missing pieces are synthesized or
   stubbed, and the Runner only drives it with Unique-profile sequences. *)
module type INCREMENTAL = sig
  type t

  val name : string
  val create : ?config:Hybrid_index.Incremental.config -> unit -> t
  val insert : t -> string -> int -> unit
  val insert_unique : t -> string -> int -> bool
  val mem : t -> string -> bool
  val find : t -> string -> int option
  val find_all : t -> string -> int list
  val update : t -> string -> int -> bool
  val delete : t -> string -> bool
  val scan_from : t -> string -> int -> (string * int) list
  val entry_count : t -> int
  val memory_bytes : t -> int
  val force_merge : t -> unit
  val snapshot : t -> Index_intf.snapshot
  val generation : t -> int
  val pinned_snapshots : t -> int
end

module Of_incremental
    (H : INCREMENTAL)
    (C : sig
      val config : Hybrid_index.Incremental.config
    end) : Index_intf.INDEX = struct
  type t = H.t

  let name = H.name
  let create () = H.create ~config:C.config ()
  let insert = H.insert
  let insert_unique = H.insert_unique
  let mem = H.mem
  let find = H.find
  let find_all = H.find_all
  let update = H.update
  let delete = H.delete
  let delete_value _ _ _ = false (* not exposed; Unique sequences never emit it *)
  let scan_from = H.scan_from

  let iter_sorted t f =
    (* grouped ordered iteration synthesized from the flat scan *)
    let rec go = function
      | [] -> ()
      | (k, v) :: rest ->
        let same, rest' = List.partition (fun (k', _) -> k' = k) rest in
        f k (Array.of_list (v :: List.map snd same));
        go rest'
    in
    go (H.scan_from t "" max_int)

  let entry_count = H.entry_count
  let clear _ = invalid_arg "Of_incremental.clear: not supported"
  let memory_bytes = H.memory_bytes
  let flush = H.force_merge
  let merge_pending _ = false
  let check_invariants _ = []
  let snapshot = H.snapshot
  let generation = H.generation
  let pinned_snapshots = H.pinned_snapshots
end
