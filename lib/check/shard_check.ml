(* Differential model check of the sharded runtime (DESIGN.md §11).

   Drives a Router in Sequential mode — every partition inline on one
   domain, with a seeded RNG choosing the order in which multi-partition
   participants prepare — through random account operations striped over
   partitions by [id mod n], against a plain Hashtbl oracle.

   The properties checked:
   - served values always equal the oracle's (per-op and in a final sweep);
   - multi-partition transactions are all-or-nothing: after an aborted
     transfer or spray, every participant partition is byte-identical to
     its pre-transaction state (verified by re-reading the touched ids);
   - no rows exist outside the oracle (row-count agreement per partition).

   Ops are plain data so a failing sequence can be shrunk by removal and
   pinned as a regression. *)

open Hi_hstore
open Hi_util
open Hi_shard

type op =
  | Insert of int * int  (* id, balance *)
  | Update of int * int  (* id, new balance *)
  | Delete of int
  | Read of int
  | Transfer of int * int * int  (* from id, to id, amount *)
  | Spray of int list * int  (* multi-partition insert batch, base balance *)

let pp_op = function
  | Insert (id, b) -> Printf.sprintf "Insert(%d,%d)" id b
  | Update (id, b) -> Printf.sprintf "Update(%d,%d)" id b
  | Delete id -> Printf.sprintf "Delete %d" id
  | Read id -> Printf.sprintf "Read %d" id
  | Transfer (a, b, amt) -> Printf.sprintf "Transfer(%d->%d,%d)" a b amt
  | Spray (ids, b) ->
    Printf.sprintf "Spray([%s],%d)" (String.concat ";" (List.map string_of_int ids)) b

let pp_ops ops = String.concat " " (List.map pp_op ops)

type outcome = {
  committed : int;
  aborted : int;
  multi : int;
  violations : string list;
}

let accounts_schema =
  Schema.make ~name:"accounts"
    ~columns:[ ("id", Value.TInt); ("balance", Value.TInt) ]
    ~pk:[ "id" ] ()

(* --- generator: ops are data, independent of execution --- *)

let gen_ops ~seed ~n ~universe ~partitions =
  let rng = Xorshift.create seed in
  let fresh = ref 0 in
  let next_fresh () =
    incr fresh;
    universe + !fresh
  in
  let known () = Xorshift.int rng universe in
  List.init n (fun _ ->
      let r = Xorshift.float01 rng in
      if r < 0.30 then Insert (known (), Xorshift.int rng 500)
      else if r < 0.42 then Update (known (), Xorshift.int rng 500)
      else if r < 0.50 then Delete (known ())
      else if r < 0.62 then Read (known ())
      else if r < 0.90 then Transfer (known (), known (), 1 + Xorshift.int rng 200)
      else begin
        (* ids spanning several partitions, mixing fresh and (possibly
           colliding) known ids so some sprays must abort partway *)
        let k = 2 + Xorshift.int rng (max 2 partitions) in
        let ids =
          List.init k (fun _ ->
              if Xorshift.float01 rng < 0.7 then next_fresh () else known ())
        in
        Spray (List.sort_uniq compare ids, Xorshift.int rng 500)
      end)

(* Overlapping multi-partition schedules: bursts of cross-partition
   transfers and sprays over a small hot id set spanning every
   partition, with spray id sets deliberately reused so later sprays
   collide with earlier ones mid-transaction.  This is the op-stream
   shape the concurrent harness fires from many domains at once
   (DESIGN.md §14); replayed here under the Sequential scheduler it
   pins the same coordinator logic — shared keys, duplicate-collision
   aborts on a non-first participant, abort-then-retry — against the
   exact oracle. *)
let gen_overlapping_ops ~seed ~n ~universe ~partitions =
  let rng = Xorshift.create (seed lxor 0x0EE7_0EE7) in
  let hot_n = max 2 (2 * partitions) in
  let fresh = ref 0 in
  let next_fresh () =
    incr fresh;
    universe + !fresh
  in
  (* pool of recently sprayed id sets, reused to force collisions *)
  let recent : int list ref = ref [] in
  let hot () = Xorshift.int rng hot_n in
  let pick_id () =
    match !recent with
    | ids when ids <> [] && Xorshift.float01 rng < 0.4 ->
      List.nth ids (Xorshift.int rng (List.length ids))
    | _ -> hot ()
  in
  List.init n (fun _ ->
      let r = Xorshift.float01 rng in
      if r < 0.20 then Insert (hot (), Xorshift.int rng 500)
      else if r < 0.30 then Delete (pick_id ())
      else if r < 0.40 then Read (pick_id ())
      else if r < 0.75 then
        (* hot-on-hot transfers: consecutive coordinators share key sets *)
        Transfer (pick_id (), pick_id (), 1 + Xorshift.int rng 120)
      else begin
        let k = 2 + Xorshift.int rng (max 2 partitions) in
        let ids =
          List.init k (fun _ ->
              let r = Xorshift.float01 rng in
              if r < 0.5 then next_fresh ()
              else if r < 0.8 then pick_id ()
              else hot ())
        in
        let ids = List.sort_uniq compare ids in
        recent := ids @ (if List.length !recent > 32 then [] else !recent);
        Spray (ids, Xorshift.int rng 500)
      end)

(* --- executor --- *)

let run_ops ~partitions ~seed ops =
  let router =
    Router.create
      ~mode:(Router.Sequential (Xorshift.create (seed lxor 0x5DEECE6)))
      ~partitions
      ~init:(fun _ engine -> ignore (Engine.create_table engine accounts_schema))
      ()
  in
  let table p =
    let engine = List.nth (Router.engines router) p in
    Engine.table engine "accounts"
  in
  let tables = Array.init partitions table in
  let part id = id mod partitions in
  let oracle : (int, int) Hashtbl.t = Hashtbl.create 512 in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let committed = ref 0 and aborted = ref 0 and multi = ref 0 in
  (* partition-local bodies, built per op *)
  let insert_body id bal engine =
    let tbl = tables.(part id) in
    if Table.find_by_pk tbl [ Value.Int id ] <> None then
      raise (Engine.Abort "duplicate id");
    ignore (Engine.insert engine tbl [| Value.Int id; Value.Int bal |])
  in
  let debit_body id amt engine =
    let tbl = tables.(part id) in
    match Table.find_by_pk tbl [ Value.Int id ] with
    | None -> raise (Engine.Abort "debit: no such account")
    | Some rowid ->
      let bal = match (Table.read tbl rowid).(1) with Value.Int b -> b | _ -> 0 in
      if bal < amt then raise (Engine.Abort "debit: insufficient");
      Engine.update engine tbl rowid [ (1, Value.Int (bal - amt)) ]
  in
  let credit_body id amt engine =
    let tbl = tables.(part id) in
    match Table.find_by_pk tbl [ Value.Int id ] with
    | None -> raise (Engine.Abort "credit: no such account")
    | Some rowid ->
      let bal = match (Table.read tbl rowid).(1) with Value.Int b -> b | _ -> 0 in
      Engine.update engine tbl rowid [ (1, Value.Int (bal + amt)) ]
  in
  let engine_balance id =
    let tbl = tables.(part id) in
    match Table.find_by_pk tbl [ Value.Int id ] with
    | None -> None
    | Some rowid -> (
      match (Table.read tbl rowid).(1) with Value.Int b -> Some b | _ -> None)
  in
  (* after an op that must not have taken effect, each touched id must
     still match the oracle *)
  let check_untouched what ids =
    List.iter
      (fun id ->
        let got = engine_balance id and want = Hashtbl.find_opt oracle id in
        if got <> want then
          violate "%s: id %d diverged after abort (engine %s, oracle %s)" what id
            (match got with None -> "absent" | Some b -> string_of_int b)
            (match want with None -> "absent" | Some b -> string_of_int b))
      (List.sort_uniq compare ids)
  in
  let record name expect_commit ids result =
    match (result, expect_commit) with
    | Ok (), true -> incr committed
    | Error _, false ->
      incr aborted;
      check_untouched name ids
    | Ok (), false -> violate "%s committed but the oracle expected an abort" name
    | Error e, true ->
      violate "%s aborted (%s) but the oracle expected a commit" name
        (Engine.txn_error_to_string e)
  in
  let exec op =
    match op with
    | Insert (id, bal) ->
      let expect = not (Hashtbl.mem oracle id) in
      let r = Router.single router ~partition:(part id) (insert_body id bal) in
      record "insert" expect [ id ] r;
      if expect && r = Ok () then Hashtbl.replace oracle id bal
    | Update (id, bal) ->
      let expect = Hashtbl.mem oracle id in
      let r =
        Router.single router ~partition:(part id) (fun engine ->
            let tbl = tables.(part id) in
            match Table.find_by_pk tbl [ Value.Int id ] with
            | None -> raise (Engine.Abort "update: no such account")
            | Some rowid -> Engine.update engine tbl rowid [ (1, Value.Int bal) ])
      in
      record "update" expect [ id ] r;
      if expect && r = Ok () then Hashtbl.replace oracle id bal
    | Delete id ->
      let expect = Hashtbl.mem oracle id in
      let r =
        Router.single router ~partition:(part id) (fun engine ->
            let tbl = tables.(part id) in
            match Table.find_by_pk tbl [ Value.Int id ] with
            | None -> raise (Engine.Abort "delete: no such account")
            | Some rowid -> Engine.delete engine tbl rowid)
      in
      record "delete" expect [ id ] r;
      if expect && r = Ok () then Hashtbl.remove oracle id
    | Read id -> (
      let got = engine_balance id and want = Hashtbl.find_opt oracle id in
      match (got, want) with
      | Some g, Some w when g <> w -> violate "read %d: engine %d, oracle %d" id g w
      | Some g, None -> violate "read %d: engine serves deleted row (%d)" id g
      | None, Some w -> violate "read %d: engine lost row (oracle %d)" id w
      | _ -> ())
    | Transfer (a, b, amt) ->
      let expect =
        a <> b
        && (match Hashtbl.find_opt oracle a with Some bal -> bal >= amt | None -> false)
        && Hashtbl.mem oracle b
      in
      let r =
        if a = b then Error (Engine.Txn_aborted "self transfer")
        else if part a = part b then
          Router.single router ~partition:(part a) (fun engine ->
              debit_body a amt engine;
              credit_body b amt engine)
        else begin
          incr multi;
          Router.multi router
            [
              { Router.part = part a; body = debit_body a amt };
              { Router.part = part b; body = credit_body b amt };
            ]
        end
      in
      record "transfer" expect [ a; b ] r;
      if expect && r = Ok () then begin
        Hashtbl.replace oracle a (Hashtbl.find oracle a - amt);
        Hashtbl.replace oracle b (Hashtbl.find oracle b + amt)
      end
    | Spray (ids, bal) ->
      let expect = List.for_all (fun id -> not (Hashtbl.mem oracle id)) ids in
      let by_part = Hashtbl.create 8 in
      List.iter
        (fun id ->
          let p = part id in
          Hashtbl.replace by_part p (id :: (Option.value ~default:[] (Hashtbl.find_opt by_part p))))
        ids;
      let participants =
        Hashtbl.fold
          (fun p ids acc ->
            { Router.part = p; body = (fun e -> List.iter (fun id -> insert_body id bal e) ids) }
            :: acc)
          by_part []
      in
      let r =
        match participants with
        | [ { Router.part = p; body } ] -> Router.single router ~partition:p body
        | ps ->
          incr multi;
          Router.multi router ps
      in
      record "spray" expect ids r;
      if expect && r = Ok () then List.iter (fun id -> Hashtbl.replace oracle id bal) ids
  in
  List.iter exec ops;
  (* final sweep: full agreement both ways *)
  Hashtbl.iter
    (fun id want ->
      match engine_balance id with
      | Some got when got = want -> ()
      | Some got -> violate "final: id %d engine %d, oracle %d" id got want
      | None -> violate "final: id %d missing (oracle %d)" id want)
    oracle;
  let engine_rows =
    Array.fold_left (fun acc tbl -> acc + Table.live_rows tbl) 0 tables
  in
  if engine_rows <> Hashtbl.length oracle then
    violate "final: %d rows in engines, %d in oracle" engine_rows (Hashtbl.length oracle);
  Router.stop router;
  {
    committed = !committed;
    aborted = !aborted;
    multi = !multi;
    violations = List.rev !violations;
  }

(* --- shrinking: greedy removal to a 1-minimal failing sequence --- *)

let shrink ~partitions ~seed ops =
  let fails ops = (run_ops ~partitions ~seed ops).violations <> [] in
  let rec pass ops =
    let n = List.length ops in
    let rec try_remove i =
      if i >= n then ops
      else
        let candidate = List.filteri (fun j _ -> j <> i) ops in
        if fails candidate then pass candidate else try_remove (i + 1)
    in
    try_remove 0
  in
  if fails ops then pass ops else ops

let check_generated ~partitions ~seed ops =
  let o = run_ops ~partitions ~seed ops in
  if o.violations <> [] then begin
    let small = shrink ~partitions ~seed ops in
    let o' = run_ops ~partitions ~seed small in
    {
      o' with
      violations =
        Printf.sprintf "shrunk to %d ops: %s" (List.length small) (pp_ops small)
        :: o'.violations;
    }
  end
  else o

let run ?(n = 1200) ?(universe = 400) ?(partitions = 3) ~seed () =
  check_generated ~partitions ~seed (gen_ops ~seed ~n ~universe ~partitions)

(* Same differential check over the overlapping-schedule generator. *)
let run_overlap ?(n = 1200) ?(universe = 400) ?(partitions = 3) ~seed () =
  check_generated ~partitions ~seed (gen_overlapping_ops ~seed ~n ~universe ~partitions)

(* Pinned regression: the minimal shapes that catch a coordinator that
   commits participants independently (partial multi-partition commit).
   With [id mod 2] striping on two partitions: even ids on 0, odd on 1. *)
let regression_ops =
  [
    Insert (2, 100);
    Insert (3, 100);
    (* both sides missing: must abort and change nothing *)
    Transfer (4, 5, 10);
    (* second participant hits a duplicate: first participant's inserts
       must roll back on its own partition *)
    Spray ([ 4; 5; 2 ], 50);
    Read 4;
    Read 5;
    Read 2;
    (* insufficient funds: debit side aborts before the credit side runs *)
    Transfer (2, 3, 150);
    (* and a clean cross-partition commit *)
    Transfer (2, 3, 60);
    Read 2;
    Read 3;
  ]

let regression ~seed () = run_ops ~partitions:2 ~seed regression_ops

(* Pinned overlapping-schedule regression, distilled from the shapes the
   concurrent harness (Concurrent_check) fires from many domains: two
   sprays sharing an id (the second must abort on the collision and roll
   back its other participants), a transfer cycle over all three
   partitions that conserves value, and a retry of the collided spray
   after the blocker is deleted.  With [id mod 3] striping on three
   partitions: 0,3,6.. on p0; 1,4,7.. on p1; 2,5,8.. on p2. *)
let overlap_regression_ops =
  [
    (* first spray spans all three partitions and commits *)
    Spray ([ 100; 101; 102 ], 40);
    (* second spray shares 101 (p2's sibling set differs): must abort
       everywhere, including participants that prepared cleanly *)
    Spray ([ 101; 103; 105 ], 60);
    Read 103;
    Read 105;
    (* transfer cycle over the sprayed rows: p1->p2->p0->p1 *)
    Transfer (100, 101, 15);
    Transfer (101, 102, 15);
    Transfer (102, 100, 15);
    Read 100;
    Read 101;
    Read 102;
    (* unblock and retry the collided spray: now it must commit whole *)
    Delete 101;
    Spray ([ 101; 103; 105 ], 60);
    Read 101;
    Read 103;
    Read 105;
  ]

let overlap_regression ~seed () = run_ops ~partitions:3 ~seed overlap_regression_ops
