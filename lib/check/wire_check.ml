(* Generators and fuzzing helpers for the wire protocol (DESIGN.md §12).

   Requests and responses are generated from a Xorshift seed, so every
   property failure reproduces from one integer.  Generated messages stay
   inside the protocol's validity envelope (key/value/count limits,
   non-NaN floats — NaN breaks the structural-equality oracle), because
   the roundtrip property is about the codec, not about validation;
   out-of-envelope bytes are covered by the corruption fuzzer, which
   mutates well-formed frames and asserts the decoder answers with an
   error rather than a wrong message or an exception. *)

open Hi_util
open Hi_server

(* -- generators ---------------------------------------------------------- *)

let gen_bytes rng maxlen =
  let n = Xorshift.int rng (maxlen + 1) in
  String.init n (fun _ -> Char.chr (Xorshift.int rng 256))

let gen_key rng =
  match Xorshift.int rng 4 with
  | 0 -> Key_codec.encode_u64 (Xorshift.next_u64 rng)
  | 1 -> Key_codec.email_of_id (Xorshift.int rng 100_000)
  | 2 -> "k" ^ gen_bytes rng 16 (* arbitrary bytes, non-empty *)
  | _ -> String.make (1 + Xorshift.int rng Db.max_key_len) 'x'

let gen_float rng =
  match Xorshift.int rng 8 with
  | 0 -> 0.0
  | 1 -> -0.0
  | 2 -> infinity
  | 3 -> neg_infinity
  | 4 -> epsilon_float
  | 5 -> max_float
  | _ -> (Xorshift.float01 rng -. 0.5) *. 1e12

let gen_value rng : Db.value =
  match Xorshift.int rng 8 with
  | 0 -> Null
  | 1 | 2 ->
    let magnitude = Xorshift.next_int rng asr Xorshift.int rng 62 in
    Int (if Xorshift.bool rng then -magnitude else magnitude)
  | 3 | 4 -> Float (gen_float rng)
  | _ -> Str (gen_bytes rng Db.max_value_len)

let gen_agg_fn rng : Db.agg_fn =
  match Xorshift.int rng 5 with
  | 0 -> Count
  | 1 -> Sum
  | 2 -> Min
  | 3 -> Max
  | _ -> Avg

let gen_request rng : Db.request =
  match Xorshift.int rng 6 with
  | 0 -> Get (gen_key rng)
  | 1 -> Put (gen_key rng, gen_value rng)
  | 2 -> Delete (gen_key rng)
  | 3 -> Scan_from (gen_bytes rng Db.max_key_len, Xorshift.int rng (Db.max_scan + 1))
  | 4 ->
    Scan_agg
      {
        fn = gen_agg_fn rng;
        lo = gen_bytes rng Db.max_key_len;
        hi = (if Xorshift.bool rng then Some (gen_bytes rng Db.max_key_len) else None);
        group_prefix = Xorshift.int rng 256 (* u8 on the wire *);
      }
  | _ ->
    let n = 1 + Xorshift.int rng 8 in
    Txn
      (List.init n (fun _ ->
           let k = gen_key rng in
           if Xorshift.bool rng then (k, Some (gen_value rng)) else (k, None)))

let gen_error rng : Db.error =
  match Xorshift.int rng 7 with
  | 0 -> Bad_request (gen_bytes rng 40)
  | 1 -> Aborted (gen_bytes rng 40)
  | 2 -> Restart_limit (Xorshift.int rng 100)
  | 3 ->
    Block_unavailable
      { table = gen_bytes rng 20; block = Xorshift.int rng 10_000; attempts = Xorshift.int rng 10 }
  | 4 ->
    Block_lost
      { table = gen_bytes rng 20; block = Xorshift.int rng 10_000; cause = gen_bytes rng 10 }
  | 5 -> Disconnected (gen_bytes rng 40)
  | _ -> Read_only

let gen_response rng : Db.response =
  match Xorshift.int rng 6 with
  | 0 -> Value (if Xorshift.bool rng then Some (gen_value rng) else None)
  | 1 -> Done (Xorshift.bool rng)
  | 2 | 3 ->
    let n = Xorshift.int rng 20 in
    Entries (List.init n (fun _ -> (gen_key rng, gen_value rng)))
  | 4 ->
    let n = Xorshift.int rng 8 in
    Aggregate
      {
        groups =
          List.init n (fun _ : Db.agg_group ->
              {
                g_key = gen_bytes rng 8;
                g_count = Xorshift.int rng 1_000_000;
                g_value = gen_float rng;
              });
        rows_scanned = Xorshift.int rng 1_000_000;
        max_age_s = Xorshift.float01 rng *. 10.0;
        generation = Xorshift.int rng 1_000_000;
      }
  | _ -> Failed (gen_error rng)

(* LSNs on the wire may legitimately be [-1] (nothing applied yet). *)
let gen_lsn rng = Xorshift.int rng 1_000_000 - 1

let gen_repl_msg rng =
  match Xorshift.int rng 5 with
  | 0 ->
    let n = Xorshift.int rng 9 in
    Wire.Subscribe
      {
        stream_id = Xorshift.int rng 0x40000000;
        applied = Array.init n (fun _ -> gen_lsn rng);
      }
  | 1 ->
    Wire.Repl_hello
      {
        stream_id = Xorshift.int rng 0x40000000;
        partitions = 1 + Xorshift.int rng 64;
        resync = Xorshift.bool rng;
      }
  | 2 ->
    let kind =
      if Xorshift.bool rng then Wire.Log
      else Wire.Snap { first = Xorshift.bool rng; last = Xorshift.bool rng }
    in
    let n = Xorshift.int rng 6 in
    Wire.Repl_batch
      {
        stream = Xorshift.int rng 16;
        lsn = Xorshift.int rng 1_000_000;
        kind;
        records = List.init n (fun _ -> gen_bytes rng 64);
      }
  | 3 -> Wire.Repl_ack { stream = Xorshift.int rng 16; lsn = gen_lsn rng }
  | _ -> Wire.Repl_heartbeat

let gen_msg rng =
  match Xorshift.int rng 4 with
  | 0 -> Wire.Request (gen_request rng)
  | 1 | 2 -> Wire.Response (gen_response rng)
  | _ -> gen_repl_msg rng

let gen_id rng = Xorshift.int rng 0x10000000

(* -- properties ---------------------------------------------------------- *)

let encode ~id msg = Wire.encode_msg ~id msg

(* encode |> decode is the identity on (id, msg); errors become [Error]. *)
let roundtrip ~id msg =
  let frame = encode ~id msg in
  match Wire.decode_frame frame ~pos:0 with
  | Ok (id', msg', consumed) ->
    if id' <> id then Error (Printf.sprintf "id %d decoded as %d" id id')
    else if consumed <> String.length frame then
      Error
        (Printf.sprintf "consumed %d of a %d-byte frame" consumed (String.length frame))
    else if msg' <> msg then Error "decoded message differs"
    else Ok ()
  | Error e -> Error (Wire.error_to_string e)

(* Every proper prefix of a frame must decode to [Need_more], and the
   reported byte count must be consistent: prefix + need >= frame once the
   length field is visible. *)
let prefix_safe ~id msg =
  let frame = encode ~id msg in
  let total = String.length frame in
  let rec check cut =
    if cut >= total then Ok ()
    else
      match Wire.decode_frame (String.sub frame 0 cut) ~pos:0 with
      | Error (Wire.Need_more n) ->
        if cut >= 4 && cut + n <> total then
          Error (Printf.sprintf "prefix %d/%d reported need %d" cut total n)
        else check (cut + 1)
      | Ok _ -> Error (Printf.sprintf "prefix %d/%d decoded" cut total)
      | Error e -> Error (Printf.sprintf "prefix %d/%d: %s" cut total (Wire.error_to_string e))
  in
  check 0

(* Flip one byte anywhere in the frame: the decoder must answer with an
   error or a *complete different frame* — never raise, never read past
   the end.  (A flip in the length field can legitimately yield Need_more;
   a flip that hits both a value byte and its CRC cannot happen with a
   single-byte flip, so CRC catches every payload mutation.) *)
let corrupt_safe rng ~id msg =
  let frame = encode ~id msg in
  let pos = Xorshift.int rng (String.length frame) in
  let delta = 1 + Xorshift.int rng 255 in
  let mutated =
    String.mapi
      (fun i c -> if i = pos then Char.chr ((Char.code c + delta) land 0xff) else c)
      frame
  in
  match Wire.decode_frame mutated ~pos:0 with
  | Error _ -> Ok ()
  | Ok (_, _, consumed) ->
    (* only a length-field flip that still frames a CRC-valid payload could
       land here, and a single flipped byte cannot keep the CRC valid *)
    Error (Printf.sprintf "corrupt frame (byte %d +%d) decoded, consumed %d" pos delta consumed)

(* Overwrite the declared length field with hostile values — negative,
   overflowing 32 bits, just past the cap: the decoder must answer
   [Frame_too_large] without raising and without wrapping a negative
   length into a bogus byte count. *)
let hostile_length_safe ~id msg =
  let frame = encode ~id msg in
  let with_len v =
    let b = Bytes.of_string frame in
    Bytes.set_int32_be b 0 v;
    Bytes.to_string b
  in
  List.fold_left
    (fun acc v ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        match Wire.decode_frame (with_len v) ~pos:0 with
        | Error (Wire.Frame_too_large _) -> Ok ()
        | Error e -> Error (Printf.sprintf "length %ld: %s" v (Wire.error_to_string e))
        | Ok _ -> Error (Printf.sprintf "length %ld decoded" v)
        | exception e -> Error (Printf.sprintf "length %ld raised %s" v (Printexc.to_string e))))
    (Ok ())
    [
      Int32.minus_one;
      Int32.min_int;
      Int32.of_int (-12345);
      Int32.of_int (Wire.max_payload + 1);
      Int32.max_int;
    ]

(* -- workload generation for the differential test ----------------------- *)

(* A request stream over a small key universe, so gets/deletes/scans hit
   keys that puts actually wrote; every request is valid. *)
let gen_session rng ~n =
  let universe = Array.init 48 (fun i -> Key_codec.email_of_id (i * 7)) in
  let key () = universe.(Xorshift.int rng (Array.length universe)) in
  List.init n (fun _ : Db.request ->
      match Xorshift.int rng 10 with
      | 0 | 1 | 2 -> Put (key (), gen_value rng)
      | 3 | 4 -> Get (key ())
      | 5 -> Delete (key ())
      | 6 -> Scan_from ("", 1 + Xorshift.int rng 30)
      | 7 -> Scan_from (key (), 1 + Xorshift.int rng 10)
      | _ ->
        let k = 1 + Xorshift.int rng 6 in
        Txn
          (List.init k (fun _ ->
               if Xorshift.int rng 4 = 0 then (key (), None) else (key (), Some (gen_value rng)))))
