(* Fault-interleaved differential mode: drive the H-Store engine through
   random transactions (insert batches, updates, deletes, reads, user
   aborts) under a seeded Hi_util.Fault schedule, against a trivially
   simple id -> balance oracle.

   Divergence policy mirrors the engine's graceful-degradation contract
   (DESIGN.md §8): a served value must ALWAYS equal the oracle's; a miss on
   an oracle-known id is tolerated only under a lossy fault schedule
   (corrupt_block_p > 0), in which case the oracle is lazily reconciled and
   the drop counted.  Transient-only schedules must lose nothing.  The run
   finishes with Engine.recover, a verify_integrity sweep, and a full
   oracle agreement pass. *)

open Hi_hstore
open Hi_util

type outcome = {
  committed : int;
  user_aborts : int;
  unavailable_errors : int; (* retry budget exhausted; block intact *)
  lost_errors : int; (* typed permanent-loss failures *)
  reconciled_drops : int; (* oracle rows conceded to lost blocks *)
  transient_faults : int;
  recovery : Engine.recovery_report;
  survivors : int; (* oracle rows still served after recovery *)
  violations : string list;
}

let accounts_schema =
  Schema.make ~name:"accounts"
    ~columns:[ ("id", Value.TInt); ("owner", Value.TStr 16); ("balance", Value.TInt) ]
    ~pk:[ "id" ]
    ~secondary:[ ("accounts_owner_idx", [ "owner"; "id" ], false) ]
    ()

let engine_config ~index_kind ~fault ~seed ~threshold =
  {
    Engine.index_kind;
    merge_ratio = 2;
    eviction_threshold_bytes = Some threshold;
    evictable_tables = [ "accounts" ];
    eviction_block_rows = 32;
    anticache =
      {
        Anticache.fetch_penalty_s = 0.0;
        backoff_base_s = 0.0;
        max_retries = 4;
        fault = (if fault = Fault.no_faults then None else Some fault);
        fault_seed = seed;
      };
    inline_merge = true;
    hash_sidecar = true;
  }

let run ?(n = 800) ?(threshold = 30_000) ?(index_kind = Engine.Hybrid_config)
    ~seed ~fault () =
  let rng = Xorshift.create seed in
  let lossy = fault.Fault.corrupt_block_p > 0.0 in
  let engine =
    Engine.create ~config:(engine_config ~index_kind ~fault ~seed ~threshold) ~sleep:(fun _ -> ()) ()
  in
  let tbl = Engine.create_table engine accounts_schema in
  let oracle : (int, int) Hashtbl.t = Hashtbl.create 512 in
  let ids = ref [||] and n_ids = ref 0 in
  let remember id =
    if !n_ids = Array.length !ids then begin
      let bigger = Array.make (max 64 (2 * !n_ids)) 0 in
      Array.blit !ids 0 bigger 0 !n_ids;
      ids := bigger
    end;
    !ids.(!n_ids) <- id;
    incr n_ids
  in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let committed = ref 0
  and user_aborts = ref 0
  and unavailable = ref 0
  and lost = ref 0
  and drops = ref 0 in
  let next_id = ref 0 in
  let pick_id () = if !n_ids = 0 then 0 else !ids.(Xorshift.int rng !n_ids) in
  (* a miss on an id the oracle still holds: data loss, tolerable only
     under a lossy schedule *)
  let reconcile_miss what id =
    if Hashtbl.mem oracle id then begin
      if lossy then begin
        Hashtbl.remove oracle id;
        incr drops
      end
      else violate "%s: id %d lost without a lossy fault schedule" what id
    end
  in
  (* run a transaction, absorbing bounded transient-unavailability retries *)
  let rec attempt budget txn =
    match Engine.run engine txn with
    | Error (Engine.Txn_block_unavailable _) when budget > 0 -> attempt (budget - 1) txn
    | r -> r
  in
  let exec step =
    ignore step;
    let r = Xorshift.float01 rng in
    if r < 0.35 || !n_ids = 0 then begin
      (* insert a small batch in one transaction *)
      let batch = 1 + Xorshift.int rng 4 in
      let fresh = List.init batch (fun j -> (!next_id + j, Xorshift.int rng 1_000)) in
      next_id := !next_id + batch;
      match
        attempt 8 (fun e ->
            List.iter
              (fun (id, bal) ->
                ignore
                  (Engine.insert e tbl
                     [| Value.Int id; Value.Str (Printf.sprintf "owner%d" (id mod 7)); Value.Int bal |]))
              fresh)
      with
      | Ok () ->
        incr committed;
        List.iter
          (fun (id, bal) ->
            Hashtbl.replace oracle id bal;
            remember id)
          fresh
      | Error (Engine.Txn_block_unavailable _) -> incr unavailable
      | Error (Engine.Txn_block_lost _) -> incr lost
      | Error e -> violate "insert batch failed: %s" (Engine.txn_error_to_string e)
    end
    else if r < 0.50 then begin
      (* update a balance *)
      let id = pick_id () and bal = Xorshift.int rng 1_000 in
      match
        attempt 8 (fun e ->
            match Table.find_by_pk tbl [ Value.Int id ] with
            | Some rowid ->
              Engine.update e tbl rowid [ (2, Value.Int bal) ];
              true
            | None -> false)
      with
      | Ok true ->
        incr committed;
        if Hashtbl.mem oracle id then Hashtbl.replace oracle id bal
        else violate "update: engine holds id %d the oracle deleted" id
      | Ok false -> reconcile_miss "update" id
      | Error (Engine.Txn_block_unavailable _) -> incr unavailable
      | Error (Engine.Txn_block_lost _) -> incr lost
      | Error e -> violate "update failed: %s" (Engine.txn_error_to_string e)
    end
    else if r < 0.58 then begin
      (* delete *)
      let id = pick_id () in
      match
        attempt 8 (fun e ->
            match Table.find_by_pk tbl [ Value.Int id ] with
            | Some rowid ->
              Engine.delete e tbl rowid;
              true
            | None -> false)
      with
      | Ok true ->
        incr committed;
        if not (Hashtbl.mem oracle id) then
          violate "delete: engine held id %d the oracle deleted" id;
        Hashtbl.remove oracle id
      | Ok false -> reconcile_miss "delete" id
      | Error (Engine.Txn_block_unavailable _) -> incr unavailable
      | Error (Engine.Txn_block_lost _) -> incr lost
      | Error e -> violate "delete failed: %s" (Engine.txn_error_to_string e)
    end
    else if r < 0.63 then begin
      (* update then user-abort: the undo log must erase every trace *)
      let id = pick_id () in
      match
        Engine.run engine (fun e ->
            (match Table.find_by_pk tbl [ Value.Int id ] with
            | Some rowid -> Engine.update e tbl rowid [ (2, Value.Int (-1)) ]
            | None -> ());
            raise (Engine.Abort "property"))
      with
      | Error (Engine.Txn_aborted _) -> incr user_aborts
      | Ok () -> violate "aborted transaction committed"
      | Error (Engine.Txn_block_unavailable _) -> incr unavailable
      | Error (Engine.Txn_block_lost _) -> incr lost
      | Error e -> violate "abort transaction failed oddly: %s" (Engine.txn_error_to_string e)
    end
    else begin
      (* read and compare *)
      let id = pick_id () in
      match
        attempt 8 (fun e ->
            match Table.find_by_pk tbl [ Value.Int id ] with
            | Some rowid -> Some (Value.as_int (Engine.read e tbl rowid).(2))
            | None -> None)
      with
      | Ok (Some v) -> (
        match Hashtbl.find_opt oracle id with
        | Some want when want = v -> ()
        | Some want -> violate "read id %d: engine %d, oracle %d" id v want
        | None -> violate "read id %d: engine serves a row the oracle deleted" id)
      | Ok None -> reconcile_miss "read" id
      | Error (Engine.Txn_block_unavailable _) -> incr unavailable
      | Error (Engine.Txn_block_lost _) -> incr lost
      | Error e -> violate "read failed: %s" (Engine.txn_error_to_string e)
    end
  in
  for step = 1 to n do
    exec step;
    (* periodic mid-run integrity check (forces pending hybrid merges) *)
    if step mod 197 = 0 then
      match Engine.verify_integrity engine with
      | [] -> ()
      | vs -> violate "mid-run integrity (step %d): %s" step (String.concat "; " vs)
  done;
  (* crash-recovery epilogue: rebuild from the tuple store + verified
     blocks, then demand full oracle agreement on what survived *)
  let recovery = Engine.recover engine in
  (match Engine.verify_integrity engine with
  | [] -> ()
  | vs -> violate "post-recovery integrity: %s" (String.concat "; " vs));
  if (not lossy) && recovery.Engine.dropped_rows > 0 then
    violate "recovery dropped %d rows without a lossy fault schedule" recovery.Engine.dropped_rows;
  let survivors = ref 0 in
  Hashtbl.iter
    (fun id want ->
      match
        attempt 8 (fun e ->
            match Table.find_by_pk tbl [ Value.Int id ] with
            | Some rowid -> Some (Value.as_int (Engine.read e tbl rowid).(2))
            | None -> None)
      with
      | Ok (Some v) ->
        incr survivors;
        if v <> want then violate "post-recovery read id %d: engine %d, oracle %d" id v want
      | Ok None ->
        if lossy then incr drops
        else violate "post-recovery: id %d lost without a lossy fault schedule" id
      | Error (Engine.Txn_block_lost _) when lossy ->
        (* corruption faults keep firing after recovery; a freshly-lost
           block is a loss to record, not a divergence *)
        incr drops
      | Error (Engine.Txn_block_unavailable _) -> incr unavailable
      | Error e -> violate "post-recovery read id %d: %s" id (Engine.txn_error_to_string e))
    oracle;
  let transient_faults = (Engine.fault_stats engine).Anticache.transient_faults in
  {
    committed = !committed;
    user_aborts = !user_aborts;
    unavailable_errors = !unavailable;
    lost_errors = !lost;
    reconciled_drops = !drops;
    transient_faults;
    recovery;
    survivors = !survivors;
    violations = List.rev !violations;
  }
