(* Generators and properties for the write-ahead log (DESIGN.md §13).

   Everything reproduces from one Xorshift seed.  Three layers:

   - codec: random {!Hi_hstore.Redo} records roundtrip through
     encode/decode, and strict decode rejects trailing bytes.
   - file: logs written through {!Hi_wal.Wal} survive re-reading; a
     byte-level truncation (the torn-tail crash model) yields exactly the
     whole records before the cut; a single flipped byte drops exactly
     the frame it lands in and everything after — never a wrong record,
     never an exception.
   - crash-point differential: a random transaction history (puts,
     deletes, multi-op transactions, user aborts) runs on an engine with
     a WAL attached while a sorted-map oracle tracks every committed
     state; then EVERY record-boundary prefix of the log replays into a
     fresh engine and must land exactly on the oracle's state at that
     commit point.  This is the recovery invariant: a crash between any
     two group commits loses nothing but the unacknowledged tail. *)

open Hi_util
open Hi_hstore
module Wal = Hi_wal.Wal

(* NaN-safe structural equality (bit-exact float roundtrip is the codec's
   job; [compare] treats NaN as equal to itself where [=] does not). *)
let eq a b = compare a b = 0

(* -- codec generators ----------------------------------------------------- *)

let gen_bytes rng maxlen =
  let n = Xorshift.int rng (maxlen + 1) in
  String.init n (fun _ -> Char.chr (Xorshift.int rng 256))

let gen_value rng : Value.t =
  match Xorshift.int rng 8 with
  | 0 -> Null
  | 1 | 2 -> Int (Xorshift.next_int rng asr Xorshift.int rng 62)
  | 3 -> Float ((Xorshift.float01 rng -. 0.5) *. 1e12)
  | 4 -> Float (Int64.float_of_bits (Xorshift.next_u64 rng)) (* any bits, NaNs included *)
  | _ -> Str (gen_bytes rng 48)

let gen_op rng : Redo.op =
  let table = "t" ^ gen_bytes rng 12 in
  if Xorshift.bool rng then
    Put { table; row = Array.init (Xorshift.int rng 8) (fun _ -> gen_value rng) }
  else Del { table; pk = List.init (Xorshift.int rng 4) (fun _ -> gen_value rng) }

let gen_record rng : Redo.record =
  let ops () = List.init (Xorshift.int rng 6) (fun _ -> gen_op rng) in
  match Xorshift.int rng 5 with
  | 0 | 1 -> Commit (ops ())
  | 2 -> Prepare { txn = Xorshift.int rng 1_000_000; ops = ops () }
  | 3 -> Decide { txn = Xorshift.int rng 1_000_000 }
  | _ -> Mark { low = Xorshift.int rng 1_000_000 }

(* encode |> decode is the identity; appending a byte must be rejected
   (strict framing is what keeps mis-framed torn tails from decoding). *)
let record_roundtrip rng =
  let r = gen_record rng in
  let enc = Redo.encode r in
  match Redo.decode enc with
  | Error m -> Error ("decode failed: " ^ m)
  | Ok r' when not (eq r r') -> Error "decoded record differs"
  | Ok _ -> (
    match Redo.decode (enc ^ "\x00") with
    | Ok _ -> Error "trailing byte accepted"
    | Error _ -> if enc = "" then Error "empty encoding" else Ok ())

(* -- file-level properties ------------------------------------------------ *)

let gen_payloads rng =
  let n = 1 + Xorshift.int rng 20 in
  List.init n (fun _ -> gen_bytes rng 200)

let write_log path payloads =
  (try Sys.remove path with Sys_error _ -> ());
  let w = Wal.create path in
  List.iter (Wal.append w) payloads;
  ignore (Wal.sync w);
  Wal.close w

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Frame boundaries (cumulative byte offsets) of a payload list. *)
let boundaries payloads =
  List.rev
    (List.fold_left (fun acc p -> (List.hd acc + String.length p + 8) :: acc) [ 0 ] payloads)

let rec prefix k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: prefix (k - 1) rest

(* Append-then-read is the identity, and reopening for append preserves
   earlier records across batches. *)
let file_roundtrip ~dir rng =
  let path = Filename.concat dir (Printf.sprintf "rt%d.log" (Xorshift.int rng 1_000_000)) in
  let a = gen_payloads rng and b = gen_payloads rng in
  write_log path a;
  let w = Wal.create path in
  (* second batch through a reopened writer *)
  List.iter (Wal.append w) b;
  ignore (Wal.sync w);
  Wal.close w;
  let records, tail = Wal.read path in
  if tail <> Wal.Clean then Error ("unexpected tail: " ^ Wal.tail_to_string tail)
  else if not (eq records (a @ b)) then
    Error (Printf.sprintf "read %d records, wrote %d" (List.length records) (List.length (a @ b)))
  else Ok ()

(* Cut the file at an arbitrary byte (the torn-write crash model): the
   reader must surface exactly the whole records before the cut, and
   report the tail torn unless the cut fell on a frame boundary. *)
let truncated_tail ~dir rng =
  let path = Filename.concat dir (Printf.sprintf "tt%d.log" (Xorshift.int rng 1_000_000)) in
  let payloads = gen_payloads rng in
  write_log path payloads;
  let bytes = read_file path in
  let size = String.length bytes in
  let cut = Xorshift.int rng (size + 1) in
  write_file path (String.sub bytes 0 cut);
  let bounds = boundaries payloads in
  let keep = List.length (List.filter (fun b -> b <= cut && b > 0) bounds) in
  let records, tail = Wal.read path in
  let want = prefix keep payloads in
  if not (eq records want) then
    Error (Printf.sprintf "cut %d/%d: read %d records, want %d" cut size (List.length records) keep)
  else
    let on_boundary = List.mem cut bounds in
    match tail with
    | Wal.Clean when on_boundary -> Ok ()
    | Wal.Torn { dropped_bytes } when (not on_boundary) && dropped_bytes > 0 -> Ok ()
    | t -> Error (Printf.sprintf "cut %d/%d: tail %s" cut size (Wal.tail_to_string t))

(* Flip one byte anywhere: the CRC (or the bounded length check) must
   drop exactly the frame the flip lands in and everything after it —
   corruption truncates to a valid prefix, it never fabricates data. *)
let corrupt_byte ~dir rng =
  let path = Filename.concat dir (Printf.sprintf "cb%d.log" (Xorshift.int rng 1_000_000)) in
  let payloads = gen_payloads rng in
  write_log path payloads;
  let bytes = read_file path in
  let pos = Xorshift.int rng (String.length bytes) in
  let delta = 1 + Xorshift.int rng 255 in
  write_file path
    (String.mapi
       (fun i c -> if i = pos then Char.chr ((Char.code c + delta) land 0xff) else c)
       bytes);
  (* index of the frame containing the flipped byte *)
  let keep = List.length (List.filter (fun b -> b <= pos && b > 0) (boundaries payloads)) in
  let records, tail = Wal.read path in
  if not (eq records (prefix keep payloads)) then
    Error
      (Printf.sprintf "flip at %d (+%d): read %d records, want %d" pos delta
         (List.length records) keep)
  else
    match tail with
    | Wal.Torn _ -> Ok ()
    | Wal.Clean -> Error (Printf.sprintf "flip at %d (+%d): tail reads clean" pos delta)

(* -- crash-point differential --------------------------------------------- *)

module M = Map.Make (String)

let kv_schema =
  Schema.make ~name:"kv" ~columns:[ ("k", Value.TStr 16); ("v", Value.TInt) ] ~pk:[ "k" ] ()

let fresh_engine () =
  let engine = Engine.create () in
  ignore (Engine.create_table engine kv_schema);
  engine

let apply_put engine tbl k v =
  match Table.find_by_pk tbl [ Value.Str k ] with
  | Some rowid -> Engine.update engine tbl rowid [ (1, Value.Int v) ]
  | None -> ignore (Engine.insert engine tbl [| Value.Str k; Value.Int v |])

let apply_del engine tbl k =
  match Table.find_by_pk tbl [ Value.Str k ] with
  | Some rowid -> Engine.delete engine tbl rowid
  | None -> ()

let dump tbl =
  let acc = ref [] in
  Table.iter_live tbl (fun _ row -> acc := (Value.as_str row.(0), Value.as_int row.(1)) :: !acc);
  List.sort compare !acc

(* Run a random committed/aborted transaction history against an engine
   with a WAL, tracking the oracle state at every commit; then replay
   every record-boundary prefix of the log into a fresh engine and
   compare.  One record per transaction, so prefix [k] of the log must
   equal the oracle after the [k]-th commit — the crash-recovery
   invariant for a crash between any two group commits. *)
let crash_points ~dir rng =
  let path = Filename.concat dir (Printf.sprintf "cp%d.log" (Xorshift.int rng 1_000_000)) in
  (try Sys.remove path with Sys_error _ -> ());
  let engine = fresh_engine () in
  let tbl = Engine.table engine "kv" in
  let wal = Wal.create path in
  Engine.attach_wal engine wal;
  let key () = Printf.sprintf "k%02d" (Xorshift.int rng 12) in
  let oracle = ref M.empty in
  let snapshots = ref [ !oracle ] in
  (* newest first; index from the end = #commits *)
  let n_txns = 30 + Xorshift.int rng 40 in
  for _ = 1 to n_txns do
    let ops =
      List.init
        (1 + Xorshift.int rng 3)
        (fun _ ->
          let k = key () in
          if Xorshift.int rng 4 = 0 then (k, None) else (k, Some (Xorshift.int rng 1000)))
    in
    let abort = Xorshift.int rng 6 = 0 in
    let r =
      Engine.run engine (fun e ->
          List.iter
            (fun (k, vo) ->
              match vo with Some v -> apply_put e tbl k v | None -> apply_del e tbl k)
            ops;
          if abort then raise (Engine.Abort "crash-point generator"))
    in
    let synced = Engine.sync_wal engine in
    (match r with
    | Ok () ->
      oracle :=
        List.fold_left
          (fun m (k, vo) -> match vo with Some v -> M.add k v m | None -> M.remove k m)
          !oracle ops
    | Error _ -> ());
    if synced = 1 then snapshots := !oracle :: !snapshots
    else if synced <> 0 then failwith "crash_points: more than one record per transaction"
  done;
  Wal.close wal;
  let records, tail = Wal.read path in
  let snaps = Array.of_list (List.rev !snapshots) in
  if tail <> Wal.Clean then Error ("log tail not clean: " ^ Wal.tail_to_string tail)
  else if List.length records <> Array.length snaps - 1 then
    Error
      (Printf.sprintf "%d records but %d commit points" (List.length records)
         (Array.length snaps - 1))
  else begin
    let failure = ref None in
    for k = 0 to List.length records do
      if !failure = None then begin
        let replica = fresh_engine () in
        let report = Engine.replay replica ~decided:(fun _ -> false) (prefix k records) in
        let got = dump (Engine.table replica "kv") in
        let want = M.bindings snaps.(k) in
        if report.Engine.malformed > 0 then
          failure := Some (Printf.sprintf "prefix %d: %d malformed" k report.Engine.malformed)
        else if not (eq got want) then
          failure :=
            Some
              (Printf.sprintf "prefix %d: replica has %d rows, oracle %d" k (List.length got)
                 (List.length want))
      end
    done;
    match !failure with Some m -> Error m | None -> Ok ()
  end
