(* Trivially-correct reference model for the differential harness: a sorted
   Map from key to value list (insertion order).  Deliberately independent
   of every index implementation under test, including Index_ref — the
   oracle must share no code with the structures it judges. *)

module M = Map.Make (String)

type t = { mutable map : int list M.t }

let create () = { map = M.empty }
let clear t = t.map <- M.empty
let mem t k = M.mem k t.map

let insert t k v =
  t.map <- M.update k (function None -> Some [ v ] | Some vs -> Some (vs @ [ v ])) t.map

let insert_unique t k v =
  if M.mem k t.map then false
  else begin
    t.map <- M.add k [ v ] t.map;
    true
  end

let find t k = match M.find_opt k t.map with Some (v :: _) -> Some v | _ -> None
let find_all t k = match M.find_opt k t.map with Some vs -> vs | None -> []

let update t k v =
  match M.find_opt k t.map with
  | Some (_ :: rest) ->
    t.map <- M.add k (v :: rest) t.map;
    true
  | _ -> false

let delete t k =
  if M.mem k t.map then begin
    t.map <- M.remove k t.map;
    true
  end
  else false

let delete_value t k v =
  match M.find_opt k t.map with
  | None -> false
  | Some vs ->
    if List.mem v vs then begin
      let rec drop_first = function
        | [] -> []
        | x :: rest -> if x = v then rest else x :: drop_first rest
      in
      (match drop_first vs with
      | [] -> t.map <- M.remove k t.map
      | vs' -> t.map <- M.add k vs' t.map);
      true
    end
    else false

(* All (key, values) groups with key >= probe, ascending. *)
let groups_from t probe =
  M.fold
    (fun k vs acc -> if String.compare k probe >= 0 then (k, vs) :: acc else acc)
    t.map []
  |> List.rev

(* Flat (key, value) scan semantics of DYNAMIC.scan_from. *)
let scan_from t probe n =
  let out = ref [] and taken = ref 0 in
  List.iter
    (fun (k, vs) ->
      List.iter
        (fun v ->
          if !taken < n then begin
            out := (k, v) :: !out;
            incr taken
          end)
        vs)
    (groups_from t probe);
  List.rev !out

let dump t = M.bindings t.map
let entry_count t = M.fold (fun _ vs acc -> acc + List.length vs) t.map 0
let key_count t = M.cardinal t.map
