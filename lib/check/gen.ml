(* Weighted random command generation for the differential harness.

   Operations reference keys by index into a fixed, sorted key universe, so
   a sequence is reproducible from (seed, key_type) alone and the shrinker
   can delete operations without invalidating later ones.

   The universe mixes Key_codec-generated keys with adversarial shapes:
   the empty key, shared-prefix extension chains (which stress ART path
   compression and Masstree slice boundaries), prefix truncations, and a
   doubled-length key.  Sequences interleave adversarial patterns: sorted
   ascending runs, duplicate-overwrite bursts, delete-then-reinsert pairs,
   delete-heavy bursts capped by an explicit flush (tombstone-only merges),
   and empty/full-range scans. *)

open Hi_util

type op =
  | Insert of int * int (* key index, value *)
  | Insert_unique of int * int
  | Update of int * int
  | Delete of int
  | Delete_value of int * int
  | Find of int
  | Find_all of int
  | Mem of int
  | Scan of int * int (* key index, max entries *)
  | Scan_all
  | Flush

(* Unique = primary-index semantics (insert_unique/update/delete);
   Dup = secondary-index semantics (blind insert/delete_value; no update,
   whose "replace the first value" is representation-dependent when value
   lists split across stages). *)
type profile = Unique | Dup

let universe ?(size = 56) kt ~seed =
  let base = Array.to_list (Key_codec.generate_keys ~seed kt size) in
  let adversarial =
    base
    |> List.filteri (fun i _ -> i < 6)
    |> List.concat_map (fun k ->
           let truncated =
             if String.length k > 1 then [ String.sub k 0 (String.length k - 1) ] else []
           in
           (k ^ "\000") :: (k ^ "a") :: (k ^ "ab") :: truncated)
  in
  let long = match base with k :: _ -> [ k ^ k ^ k ] | [] -> [] in
  let all = ("" :: base) @ adversarial @ long in
  let all = List.sort_uniq String.compare all in
  Array.of_list all

let sequence rng ~profile ~nkeys ~scans ~flushes ~n =
  let ops = ref [] and count = ref 0 in
  let push op =
    ops := op :: !ops;
    incr count
  in
  let ki () = Xorshift.int rng nkeys in
  let v () = Xorshift.int rng 8 in
  let ins k = match profile with Dup -> Insert (k, v ()) | Unique -> Insert_unique (k, v ()) in
  while !count < n do
    let r = Xorshift.float01 rng in
    if r < 0.06 then begin
      (* sorted ascending run (the universe is sorted, so consecutive
         indexes are consecutive keys) *)
      let start = ki () and len = 2 + Xorshift.int rng 10 in
      for j = 0 to len - 1 do
        push (ins ((start + j) mod nkeys))
      done
    end
    else if r < 0.12 then begin
      (* duplicate-overwrite burst on one key *)
      let k = ki () in
      push (ins k);
      for _ = 1 to 1 + Xorshift.int rng 3 do
        match profile with
        | Dup -> push (Insert (k, v ()))
        | Unique -> push (Update (k, v ()))
      done
    end
    else if r < 0.18 then begin
      let k = ki () in
      push (Delete k);
      push (ins k)
    end
    else if flushes && r < 0.22 then begin
      (* delete-heavy burst capped by an explicit flush: drives merges whose
         input is mostly (or only) tombstones, the Merge_cold empty-dynamic
         path that once resurrected deleted static keys *)
      for _ = 1 to 2 + Xorshift.int rng 8 do
        push (Delete (ki ()))
      done;
      push Flush
    end
    else if scans && r < 0.27 then begin
      match Xorshift.int rng 4 with
      | 0 -> push Scan_all
      | 1 -> push (Scan (nkeys - 1, 1 + Xorshift.int rng 4)) (* at/past the top: near-empty *)
      | 2 -> push (Scan (ki (), 0))
      | _ -> push (Scan (ki (), 1 + Xorshift.int rng 40))
    end
    else begin
      let r2 = Xorshift.float01 rng in
      match profile with
      | Dup ->
        if r2 < 0.30 then push (Insert (ki (), v ()))
        else if r2 < 0.40 then push (Delete (ki ()))
        else if r2 < 0.50 then push (Delete_value (ki (), v ()))
        else if r2 < 0.64 then push (Find (ki ()))
        else if r2 < 0.76 then push (Find_all (ki ()))
        else if r2 < 0.84 then push (Mem (ki ()))
        else if scans && r2 < 0.92 then push (Scan (ki (), 1 + Xorshift.int rng 20))
        else if flushes && r2 < 0.96 then push Flush
        else push (Find (ki ()))
      | Unique ->
        if r2 < 0.28 then push (Insert_unique (ki (), v ()))
        else if r2 < 0.42 then push (Update (ki (), v ()))
        else if r2 < 0.54 then push (Delete (ki ()))
        else if r2 < 0.68 then push (Find (ki ()))
        else if r2 < 0.76 then push (Find_all (ki ()))
        else if r2 < 0.84 then push (Mem (ki ()))
        else if scans && r2 < 0.92 then push (Scan (ki (), 1 + Xorshift.int rng 20))
        else if flushes && r2 < 0.96 then push Flush
        else push (Find (ki ()))
    end
  done;
  Array.of_list (List.rev !ops)

let pp_op ~universe op =
  let k i = Printf.sprintf "%S" universe.(i) in
  match op with
  | Insert (i, v) -> Printf.sprintf "insert %s %d" (k i) v
  | Insert_unique (i, v) -> Printf.sprintf "insert_unique %s %d" (k i) v
  | Update (i, v) -> Printf.sprintf "update %s %d" (k i) v
  | Delete i -> Printf.sprintf "delete %s" (k i)
  | Delete_value (i, v) -> Printf.sprintf "delete_value %s %d" (k i) v
  | Find i -> Printf.sprintf "find %s" (k i)
  | Find_all i -> Printf.sprintf "find_all %s" (k i)
  | Mem i -> Printf.sprintf "mem %s" (k i)
  | Scan (i, n) -> Printf.sprintf "scan_from %s %d" (k i) n
  | Scan_all -> "scan_all"
  | Flush -> "flush"
