(* Concurrent stress/differential check of the live Parallel router
   (DESIGN.md §14).

   Where [Shard_check] drives the Sequential deterministic scheduler,
   this harness attacks the path production traffic actually takes: many
   client domains firing overlapping cross-partition transfers and
   sprays at a router whose coordinators run concurrently under the
   ordered per-partition lock protocol.  Exact per-op differential
   checking is impossible under real concurrency (interleavings are not
   observable), so the harness checks global invariants instead:

   - value conservation: transfers only move balance between seeded
     accounts, so their total is constant no matter how transfers
     interleave or abort.  A partial cross-partition commit (debit
     without credit) breaks the sum.
   - all-or-nothing sprays: each spray inserts client-private fresh ids
     across several partitions.  Clean sprays must commit and leave every
     row; poisoned sprays (one id collides with a seeded account) must
     abort and leave none.  Per-op expectations stay deterministic even
     under concurrency because seeded accounts are never deleted.
   - no negative balances, no rows from aborted sprays, and (in the
     crash variant) no acknowledged spray lost after SIGKILL + recovery.
   - deadlock-freedom: a watchdog deadline over the whole schedule; if
     the clients do not finish in time, the schedule is reported as a
     suspected deadlock (with its seed) rather than hanging the suite.

   Schedules are seeded data (a pure function of the seed), so a failing
   seed reproduces the same op streams; [run] retries a violating
   schedule with fewer clients / fewer ops first and reports the
   smallest configuration that still fails, Runner-style. *)

open Hi_hstore
open Hi_util
open Hi_shard

type cop =
  | CTransfer of int * int * int  (* from id, to id, amount *)
  | CSpray of { ids : int list; poison : int option; bal : int }
      (* insert [ids] (client-private fresh) plus, when poisoned, one
         colliding seeded id — which forces a full multi-partition abort *)
  | CRead of int

type config = {
  partitions : int;
  clients : int;
  ops_per_client : int;
  accounts_per_partition : int;
  initial_balance : int;
  hot_accounts : int; (* transfers bias into this many ids: forced overlap *)
  timeout_s : float; (* watchdog deadline for the whole schedule *)
  fresh_salt : int; (* offsets spray-id ranges; the crash child bumps it per round *)
}

let default_config =
  {
    partitions = 3;
    clients = 4;
    ops_per_client = 120;
    accounts_per_partition = 40;
    initial_balance = 1_000;
    hot_accounts = 8;
    timeout_s = 60.0;
    fresh_salt = 0;
  }

type outcome = {
  committed : int;
  aborted : int;
  multi : int; (* cross-partition transactions dispatched *)
  violations : string list;
}

let accounts_schema =
  Schema.make ~name:"accounts"
    ~columns:[ ("id", Value.TInt); ("balance", Value.TInt) ]
    ~pk:[ "id" ] ()

let universe cfg = cfg.partitions * cfg.accounts_per_partition
let part cfg id = id mod cfg.partitions

(* Client-private fresh-id ranges keep spray id sets disjoint across
   clients, ops and crash-child rounds, so presence/absence of a sprayed
   row is attributable to exactly one spray. *)
let fresh_base cfg client =
  universe cfg + 1_000_000 + (((cfg.fresh_salt * 64) + client) * 1_000_000)

(* --- schedule generation: pure function of (cfg, seed) --- *)

let gen_client_ops cfg ~seed ~client =
  let rng = Xorshift.create (seed lxor (0x9E3779B9 * (client + 1))) in
  let u = universe cfg in
  let hot () = Xorshift.int rng (max 1 cfg.hot_accounts) in
  let any () = Xorshift.int rng u in
  let acct () = if Xorshift.float01 rng < 0.5 then hot () else any () in
  let fresh = ref 0 in
  let next_fresh () =
    incr fresh;
    fresh_base cfg client + !fresh
  in
  List.init cfg.ops_per_client (fun _ ->
      let r = Xorshift.float01 rng in
      if r < 0.55 then CTransfer (acct (), acct (), 1 + Xorshift.int rng 40)
      else if r < 0.70 then CRead (any ())
      else begin
        (* ids spanning several partitions; ~1/3 poisoned with a seeded id
           so the multi-partition abort path runs under contention *)
        let k = 2 + Xorshift.int rng (max 2 cfg.partitions) in
        let ids = List.init k (fun _ -> next_fresh ()) in
        let poison = if Xorshift.float01 rng < 0.33 then Some (acct ()) else None in
        CSpray { ids; poison; bal = 1 + Xorshift.int rng 100 }
      end)

(* --- per-partition transaction bodies --- *)

let balance_of tbl id =
  match Table.find_by_pk tbl [ Value.Int id ] with
  | None -> None
  | Some rowid -> (
    match (Table.read tbl rowid).(1) with Value.Int b -> Some b | _ -> None)

let debit_body id amt engine =
  let tbl = Engine.table engine "accounts" in
  match Table.find_by_pk tbl [ Value.Int id ] with
  | None -> raise (Engine.Abort "debit: no such account")
  | Some rowid ->
    let bal = match (Table.read tbl rowid).(1) with Value.Int b -> b | _ -> 0 in
    if bal < amt then raise (Engine.Abort "debit: insufficient");
    Engine.update engine tbl rowid [ (1, Value.Int (bal - amt)) ]

let credit_body id amt engine =
  let tbl = Engine.table engine "accounts" in
  match Table.find_by_pk tbl [ Value.Int id ] with
  | None -> raise (Engine.Abort "credit: no such account")
  | Some rowid ->
    let bal = match (Table.read tbl rowid).(1) with Value.Int b -> b | _ -> 0 in
    Engine.update engine tbl rowid [ (1, Value.Int (bal + amt)) ]

let insert_body id bal engine =
  let tbl = Engine.table engine "accounts" in
  if Table.find_by_pk tbl [ Value.Int id ] <> None then raise (Engine.Abort "duplicate id");
  ignore (Engine.insert engine tbl [| Value.Int id; Value.Int bal |])

(* Dispatch one client op through the router.  Returns [Ok] / [Error] as
   the router reported it; raises only on harness bugs. *)
let exec_op cfg router op =
  match op with
  | CRead id ->
    Router.single router ~partition:(part cfg id) (fun engine ->
        ignore (balance_of (Engine.table engine "accounts") id))
  | CTransfer (a, b, amt) ->
    if a = b then Error (Engine.Txn_aborted "self transfer")
    else if part cfg a = part cfg b then
      Router.single router ~partition:(part cfg a) (fun engine ->
          debit_body a amt engine;
          credit_body b amt engine)
    else
      Router.multi router
        [
          { Router.part = part cfg a; body = debit_body a amt };
          { Router.part = part cfg b; body = credit_body b amt };
        ]
  | CSpray { ids; poison; bal } ->
    let all = match poison with None -> ids | Some p -> p :: ids in
    let by_part = Hashtbl.create 8 in
    List.iter
      (fun id ->
        let p = part cfg id in
        Hashtbl.replace by_part p (id :: Option.value ~default:[] (Hashtbl.find_opt by_part p)))
      all;
    let participants =
      Hashtbl.fold
        (fun p ids acc ->
          { Router.part = p; body = (fun e -> List.iter (fun id -> insert_body id bal e) ids) }
          :: acc)
        by_part []
    in
    (match participants with
    | [ { Router.part = p; body } ] -> Router.single router ~partition:p body
    | ps -> Router.multi router ps)

let is_multi cfg = function
  | CTransfer (a, b, _) -> a <> b && part cfg a <> part cfg b
  | CSpray { ids; poison; _ } ->
    let all = match poison with None -> ids | Some p -> p :: ids in
    List.length (List.sort_uniq compare (List.map (part cfg) all)) > 1
  | CRead _ -> false

(* --- execution against a live router --- *)

type client_result = {
  c_committed : int;
  c_aborted : int;
  c_multi : int;
  c_sprays : (cop * bool) list; (* spray op, committed? *)
  c_errors : string list; (* per-op expectation failures *)
}

let run_client cfg router ops ~on_acked =
  let committed = ref 0 and aborted = ref 0 and multi = ref 0 in
  let sprays = ref [] in
  let errors = ref [] in
  List.iter
    (fun op ->
      if is_multi cfg op then incr multi;
      let r = exec_op cfg router op in
      (match r with Ok () -> incr committed | Error _ -> incr aborted);
      (match (op, r) with
      | CSpray { poison = Some _; _ }, Ok () ->
        errors := "poisoned spray committed (duplicate id accepted)" :: !errors
      | CSpray { poison = None; _ }, Error e ->
        errors :=
          Printf.sprintf "clean spray aborted: %s" (Engine.txn_error_to_string e) :: !errors
      | _ -> ());
      match (op, r) with
      | CSpray _, _ ->
        sprays := (op, r = Ok ()) :: !sprays;
        if r = Ok () then on_acked op
      | _ -> ())
    ops;
  {
    c_committed = !committed;
    c_aborted = !aborted;
    c_multi = !multi;
    c_sprays = List.rev !sprays;
    c_errors = List.rev !errors;
  }

(* Sum over seeded accounts and collect sprayed rows, inside each
   partition's own domain (the only place its table may be touched while
   the router is live). *)
let sweep_partition cfg router p =
  match
    Router.single router ~partition:p (fun engine ->
        let tbl = Engine.table engine "accounts" in
        let seeded_sum = ref 0 and negatives = ref 0 in
        let sprayed = ref [] in
        Table.iter_live tbl (fun _ row ->
            match (row.(0), row.(1)) with
            | Value.Int id, Value.Int bal ->
              if bal < 0 then incr negatives;
              if id < universe cfg then seeded_sum := !seeded_sum + bal
              else sprayed := (id, bal) :: !sprayed
            | _ -> ());
        (!seeded_sum, !negatives, !sprayed))
  with
  | Ok v -> v
  | Error e -> failwith ("sweep failed: " ^ Engine.txn_error_to_string e)

(* Check the global invariants over the swept state plus every client's
   spray record.  Shared by the live run and the crash-recovery check. *)
let check_invariants cfg ~seeded_sum ~negatives ~sprayed_rows ~sprays =
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let expected_total = universe cfg * cfg.initial_balance in
  if seeded_sum <> expected_total then
    violate "conservation broken: seeded accounts sum to %d, expected %d (partial commit?)"
      seeded_sum expected_total;
  if negatives > 0 then violate "%d accounts have negative balances" negatives;
  let sprayed : (int, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun (id, bal) -> Hashtbl.replace sprayed id bal) sprayed_rows;
  let accounted = ref 0 in
  List.iter
    (fun (op, committed) ->
      match op with
      | CSpray { ids; poison; bal } ->
        let present = List.filter (fun id -> Hashtbl.mem sprayed id) ids in
        let n_present = List.length present and n = List.length ids in
        if committed then begin
          if n_present <> n then
            violate "committed spray lost rows: %d of %d present" n_present n;
          List.iter
            (fun id ->
              match Hashtbl.find_opt sprayed id with
              | Some b when b <> bal -> violate "sprayed id %d has balance %d, wanted %d" id b bal
              | _ -> ())
            ids;
          (match poison with
          | Some _ -> () (* already flagged as a per-op violation by the client *)
          | None -> ());
          accounted := !accounted + n_present
        end
        else if n_present <> 0 then
          violate "aborted spray left %d partial rows (ids %s): partial commit" n_present
            (String.concat "," (List.map string_of_int present))
      | _ -> ())
    sprays;
  (* no unaccounted fresh rows: every sprayed row must belong to a spray
     the clients recorded as committed *)
  if Hashtbl.length sprayed <> !accounted then
    violate "%d sprayed rows exist but only %d belong to committed sprays"
      (Hashtbl.length sprayed) !accounted;
  List.rev !violations

(* init must insert each partition's stripe of seeded accounts; it also
   has to be deterministic for WAL recovery (replay upserts on top). *)
let seed_accounts cfg p engine =
  let tbl = Engine.create_table engine accounts_schema in
  for id = 0 to universe cfg - 1 do
    if part cfg id = p then ignore (Table.insert tbl [| Value.Int id; Value.Int cfg.initial_balance |])
  done

(* Run one seeded schedule against a live Parallel router.  Returns the
   outcome; the router is created and stopped inside. *)
let run_schedule ?durability cfg ~seed ~on_acked () =
  let router =
    Router.create ?durability ~partitions:cfg.partitions ~init:(seed_accounts cfg) ()
  in
  let ops = Array.init cfg.clients (fun c -> gen_client_ops cfg ~seed ~client:c) in
  let finished = Atomic.make 0 in
  let results = Array.make cfg.clients None in
  let domains =
    Array.init cfg.clients (fun c ->
        Domain.spawn (fun () ->
            let r = run_client cfg router ops.(c) ~on_acked in
            results.(c) <- Some r;
            Atomic.incr finished))
  in
  (* watchdog: a lock-protocol bug shows up as a hang, not a result.
     Poll the finish counter against the deadline instead of joining
     blindly so a deadlocked schedule fails with its seed. *)
  let deadline = Unix.gettimeofday () +. cfg.timeout_s in
  let rec wait () =
    if Atomic.get finished = cfg.clients then `Done
    else if Unix.gettimeofday () > deadline then `Hung
    else begin
      Unix.sleepf 0.002;
      wait ()
    end
  in
  match wait () with
  | `Hung ->
    (* do NOT stop the router or join: both would hang the suite.  The
       leaked domains are the diagnostic cost of a failing schedule. *)
    {
      committed = 0;
      aborted = 0;
      multi = 0;
      violations =
        [
          Printf.sprintf
            "watchdog: schedule did not finish in %.0f s (suspected coordinator deadlock)"
            cfg.timeout_s;
        ];
    }
  | `Done ->
    Array.iter Domain.join domains;
    let clients = Array.to_list (Array.map (fun r -> Option.get r) results) in
    let sweeps = List.init cfg.partitions (fun p -> sweep_partition cfg router p) in
    let seeded_sum = List.fold_left (fun a (s, _, _) -> a + s) 0 sweeps in
    let negatives = List.fold_left (fun a (_, n, _) -> a + n) 0 sweeps in
    let sprayed_rows = List.concat_map (fun (_, _, r) -> r) sweeps in
    let sprays = List.concat_map (fun c -> c.c_sprays) clients in
    let per_op = List.concat_map (fun c -> c.c_errors) clients in
    Router.stop router;
    {
      committed = List.fold_left (fun a c -> a + c.c_committed) 0 clients;
      aborted = List.fold_left (fun a c -> a + c.c_aborted) 0 clients;
      multi = List.fold_left (fun a c -> a + c.c_multi) 0 clients;
      violations =
        per_op @ check_invariants cfg ~seeded_sum ~negatives ~sprayed_rows ~sprays;
    }

(* --- shrinking: reduce the failing configuration, not the interleaving ---

   Concurrent failures are schedule-shaped, not op-shaped: the
   interleaving is the scheduler's, so removing single ops (Runner-style)
   mostly destroys the race.  Instead shrink the *configuration* —
   fewer clients, then fewer ops per client — re-running each candidate a
   few times because a race needs luck to fire.  Deterministic
   violations (watchdog deadlocks, conservation breaks from a logic bug)
   shrink reliably; flaky ones keep the original config. *)

let shrink_retries = 3

let fails cfg ~seed =
  let rec go n =
    if n = 0 then false
    else if (run_schedule cfg ~seed ~on_acked:(fun _ -> ()) ()).violations <> [] then true
    else go (n - 1)
  in
  go shrink_retries

let shrink cfg ~seed =
  let candidates c =
    (if c.clients > 2 then [ { c with clients = c.clients - 1 } ] else [])
    @ (if c.ops_per_client > 10 then [ { c with ops_per_client = c.ops_per_client / 2 } ] else [])
  in
  let rec go c =
    match List.find_opt (fun c' -> fails c' ~seed) (candidates c) with
    | Some c' -> go c'
    | None -> c
  in
  go cfg

let describe cfg =
  Printf.sprintf "partitions=%d clients=%d ops/client=%d" cfg.partitions cfg.clients
    cfg.ops_per_client

let run ?(cfg = default_config) ~seed () =
  let o = run_schedule cfg ~seed ~on_acked:(fun _ -> ()) () in
  if o.violations = [] then o
  else begin
    let small = shrink cfg ~seed in
    let o' =
      if small = cfg then o else run_schedule small ~seed ~on_acked:(fun _ -> ()) ()
    in
    let o' = if o'.violations = [] then o (* shrunk run got lucky; report the original *) else o' in
    {
      o' with
      violations =
        Printf.sprintf "seed %d, shrunk to %s (reproduce: HI_CONC_SEED=%d)" seed
          (describe small) seed
        :: o'.violations;
    }
  end

(* --- crash variant: SIGKILL mid-schedule, recover, audit ----------------

   The child is a re-exec of the current test binary (fork alone does not
   mix with OCaml domains and tick threads): it runs a durable router
   under the full concurrent schedule and appends one line per
   *acknowledged* spray to an O_APPEND audit file (a single write(2) per
   line: atomic, and visible to the parent through the shared page cache
   even after SIGKILL).  The parent kills it mid-run, recovers the WAL
   directory into a fresh router, and checks:
   - every acknowledged clean spray is fully present (acked means durable);
   - no spray — acked or not — is partially present (atomicity across
     partition logs, presumed abort for undecided prepares);
   - seeded-account conservation still holds (no partial transfer
     commit survived recovery);
   - poisoned sprays never surface.

   Unacknowledged sprays may land either way; that is the contract. *)

type crash_outcome = {
  acked_sprays : int;
  lost_sprays : int;
  recovery : Router.recovery;
  crash_violations : string list;
}

let write_line fd s = ignore (Unix.write_substring fd (s ^ "\n") 0 (String.length s + 1))

let spray_key = function
  | CSpray { ids; _ } -> String.concat "," (List.map string_of_int ids)
  | _ -> invalid_arg "spray_key"

let crash_child cfg ~seed ~wal_dir ~audit_path =
  (* fresh process: build the durable router and hammer it until killed *)
  let audit = Unix.openfile audit_path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  let on_acked op =
    match op with
    | CSpray { poison = None; bal; _ } ->
      write_line audit (Printf.sprintf "A %d %s" bal (spray_key op))
    | _ -> ()
  in
  (* loop schedules forever (bumping seed and spray-id salt) so the kill
     always lands mid-traffic no matter how fast the machine is *)
  let k = ref 0 in
  while true do
    let cfg = { cfg with timeout_s = 300.0; fresh_salt = !k } in
    ignore
      (run_schedule ~durability:(Router.durability wal_dir) cfg ~seed:(seed + (1000 * !k))
         ~on_acked ());
    incr k
  done

(* Child-process entry: every binary that calls {!crash_run} must call
   this first thing in [main]; it hijacks the process when the crash-run
   parent re-execs it with the magic flag. *)
let crash_child_flag = "--hi-conc-crash-child"

let maybe_crash_child () =
  match Array.to_list Sys.argv with
  | _ :: flag :: dir :: rest when flag = crash_child_flag -> (
    match List.filter_map int_of_string_opt rest with
    | [ seed; partitions; clients; ops_per_client; accounts_per_partition; hot_accounts ] ->
      let cfg =
        {
          default_config with
          partitions;
          clients;
          ops_per_client;
          accounts_per_partition;
          hot_accounts;
        }
      in
      crash_child cfg ~seed ~wal_dir:(Filename.concat dir "wal")
        ~audit_path:(Filename.concat dir "audit.log")
    | _ ->
      prerr_endline "bad crash-child argv";
      exit 2)
  | _ -> ()

let parse_audit path =
  let ic = open_in path in
  let acked = ref [] in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char ' ' line with
       | [ "A"; bal; ids ] ->
         let ids = List.filter_map int_of_string_opt (String.split_on_char ',' ids) in
         (match int_of_string_opt bal with
         | Some b when ids <> [] -> acked := (ids, b) :: !acked
         | _ -> ())
       | _ -> () (* torn final line: the ack was not fully recorded; skip *)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !acked

let count_lines path =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n

(* Re-exec this binary as the crash child, let it commit [min_acks]
   sprays durably, SIGKILL it mid-traffic, then recover and audit.  The
   calling binary must invoke {!maybe_crash_child} at the top of its
   [main]. *)
let crash_run ?(cfg = default_config) ?(min_acks = 30) ?(kill_timeout_s = 120.0) ~dir ~seed () =
  let audit_path = Filename.concat dir "audit.log" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let exe = Sys.executable_name in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      (Array.of_list
         ([ exe; crash_child_flag; dir ]
         @ List.map string_of_int
             [
               seed;
               cfg.partitions;
               cfg.clients;
               cfg.ops_per_client;
               cfg.accounts_per_partition;
               cfg.hot_accounts;
             ]))
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  (* wait for enough durable acks, then kill mid-traffic *)
  let deadline = Unix.gettimeofday () +. kill_timeout_s in
  let rec wait () =
    if count_lines audit_path >= min_acks then ()
    else begin
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _ -> failwith "concurrent_check: crash child exited before the kill");
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        failwith "concurrent_check: crash child produced too few acks before the deadline"
      end;
      Unix.sleepf 0.01;
      wait ()
    end
  in
  wait ();
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  let wal_dir = Filename.concat dir "wal" in
  let acked = parse_audit audit_path in
  (* recover into a fresh router over the crash image *)
  let router =
    Router.create ~durability:(Router.durability wal_dir) ~partitions:cfg.partitions
      ~init:(seed_accounts cfg) ()
  in
  let recovery =
    match Router.recovery router with
    | Some r -> r
    | None -> failwith "concurrent_check: recovery report missing"
  in
  let sweeps = List.init cfg.partitions (fun p -> sweep_partition cfg router p) in
  Router.stop router;
  let seeded_sum = List.fold_left (fun a (s, _, _) -> a + s) 0 sweeps in
  let negatives = List.fold_left (fun a (_, n, _) -> a + n) 0 sweeps in
  let sprayed : (int, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (_, _, rows) -> List.iter (fun (id, bal) -> Hashtbl.replace sprayed id bal) rows)
    sweeps;
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let expected_total = universe cfg * cfg.initial_balance in
  if seeded_sum <> expected_total then
    violate "conservation broken after recovery: %d, expected %d (partial 2PC commit)"
      seeded_sum expected_total;
  if negatives > 0 then violate "%d negative balances after recovery" negatives;
  let lost = ref 0 in
  List.iter
    (fun (ids, bal) ->
      let present = List.filter (fun id -> Hashtbl.mem sprayed id) ids in
      let n_present = List.length present and n = List.length ids in
      if n_present <> n then begin
        incr lost;
        violate "acked spray lost after recovery: %d of %d rows present" n_present n
      end
      else
        List.iter
          (fun id ->
            if Hashtbl.find_opt sprayed id <> Some bal then
              violate "acked sprayed id %d has wrong balance after recovery" id)
          ids)
    acked;
  (* atomicity for every fresh row: unacked sprays may have committed,
     but any surviving fresh id must come with its whole sibling set.
     Sibling sets are contiguous ranges from one client's fresh counter,
     but we only know the acked ones — so check the weaker, still
     load-bearing form: partial presence of an *acked* set is already
     fatal above, and aborted-poison ids (seeded collisions) cannot
     appear because seeded rows hold the pk slot. *)
  { acked_sprays = List.length acked; lost_sprays = !lost; recovery; crash_violations = List.rev !violations }
