(* Hash-sidecar differential mode (DESIGN.md §17): drive one table through
   an adversarial operation mix — insert batches, deliberate duplicate-key
   inserts, updates, deletes, user aborts — under hybrid-index merges,
   anti-caching eviction, optional fault schedules, and periodic crash
   recovery, asserting throughout that the O(1) hash fast path and the
   ordered primary index answer every point lookup identically.

   The two access paths share no code below Table.find_by_pk*, so
   agreement is evidence the sidecar is maintained in the same mutation
   step as the primary index: same undo-log path, same recovery rebuild,
   same eviction semantics.  Sweeps run mid-stream (forcing pending
   merges via verify), after every Engine.recover, and over the full id
   population at the end. *)

open Hi_hstore
open Hi_util

type outcome = {
  committed : int;
  duplicate_rejections : int; (* Duplicate_key raised, sidecar untouched *)
  user_aborts : int;
  unavailable_errors : int;
  lost_errors : int;
  recoveries : int;
  point_checks : int; (* individual fast-path/ordered comparisons *)
  violations : string list;
}

let accounts_schema =
  Schema.make ~name:"accounts"
    ~columns:[ ("id", Value.TInt); ("owner", Value.TStr 16); ("balance", Value.TInt) ]
    ~pk:[ "id" ]
    ~secondary:[ ("accounts_owner_idx", [ "owner"; "id" ], false) ]
    ()

let engine_config ~fault ~seed ~threshold =
  {
    Engine.index_kind = Engine.Hybrid_config;
    merge_ratio = 2;
    eviction_threshold_bytes = Some threshold;
    evictable_tables = [ "accounts" ];
    eviction_block_rows = 32;
    anticache =
      {
        Anticache.fetch_penalty_s = 0.0;
        backoff_base_s = 0.0;
        max_retries = 4;
        fault = (if fault = Fault.no_faults then None else Some fault);
        fault_seed = seed;
      };
    inline_merge = true;
    hash_sidecar = true;
  }

let run ?(n = 1_200) ?(threshold = 30_000) ~seed ~fault () =
  let rng = Xorshift.create seed in
  let engine =
    Engine.create ~config:(engine_config ~fault ~seed ~threshold) ~sleep:(fun _ -> ()) ()
  in
  let tbl = Engine.create_table engine accounts_schema in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let committed = ref 0
  and duplicates = ref 0
  and user_aborts = ref 0
  and unavailable = ref 0
  and lost = ref 0
  and recoveries = ref 0
  and point_checks = ref 0 in
  (* every id ever inserted — deletions and lost blocks leave it in place,
     because agreement on "absent" is as meaningful as agreement on a hit *)
  let ids = ref [] and n_ids = ref 0 in
  let remember id =
    ids := id :: !ids;
    incr n_ids
  in
  let next_id = ref 0 in
  let pick_id () =
    if !n_ids = 0 then 0 else List.nth !ids (Xorshift.int rng !n_ids)
  in
  (* the differential itself: both access paths, one verdict *)
  let check_point where id =
    incr point_checks;
    let fast = Table.find_by_pk tbl [ Value.Int id ] in
    let ordered = Table.find_by_pk_ordered tbl [ Value.Int id ] in
    if fast <> ordered then
      violate "%s: id %d — hash fast path %s, ordered index %s" where id
        (match fast with Some r -> string_of_int r | None -> "miss")
        (match ordered with Some r -> string_of_int r | None -> "miss")
  in
  let sweep where =
    List.iter (check_point where) !ids;
    match Engine.verify_integrity engine with
    | [] -> ()
    | vs -> violate "%s integrity: %s" where (String.concat "; " vs)
  in
  let rec attempt budget txn =
    match Engine.run engine txn with
    | Error (Engine.Txn_block_unavailable _) when budget > 0 -> attempt (budget - 1) txn
    | r -> r
  in
  let record_err = function
    | Engine.Txn_block_unavailable _ -> incr unavailable
    | Engine.Txn_block_lost _ -> incr lost
    | e -> violate "transaction failed: %s" (Engine.txn_error_to_string e)
  in
  let exec () =
    let r = Xorshift.float01 rng in
    if r < 0.30 || !n_ids = 0 then begin
      (* fresh insert batch *)
      let batch = 1 + Xorshift.int rng 4 in
      let fresh = List.init batch (fun j -> (!next_id + j, Xorshift.int rng 1_000)) in
      next_id := !next_id + batch;
      match
        attempt 8 (fun e ->
            List.iter
              (fun (id, bal) ->
                ignore
                  (Engine.insert e tbl
                     [| Value.Int id; Value.Str (Printf.sprintf "owner%d" (id mod 7)); Value.Int bal |]))
              fresh)
      with
      | Ok () ->
        incr committed;
        List.iter (fun (id, _) -> remember id) fresh
      | Error e -> record_err e
    end
    else if r < 0.42 then begin
      (* deliberate duplicate-key insert: must reject without half-applying
         the sidecar — the very next point check would expose a stray or
         clobbered hash entry *)
      let id = pick_id () in
      match
        attempt 8 (fun e ->
            try
              ignore
                (Engine.insert e tbl
                   [| Value.Int id; Value.Str "dup"; Value.Int (-1) |]);
              `Inserted
            with Table.Duplicate_key _ -> `Rejected)
      with
      | Ok `Rejected ->
        incr committed;
        incr duplicates;
        check_point "after duplicate rejection" id
      | Ok `Inserted ->
        (* legitimate when the id was deleted or lost earlier *)
        incr committed;
        check_point "after reinsert" id
      | Error e -> record_err e
    end
    else if r < 0.57 then begin
      (* update through the fast path *)
      let id = pick_id () and bal = Xorshift.int rng 1_000 in
      match
        attempt 8 (fun e ->
            match Table.find_by_pk tbl [ Value.Int id ] with
            | Some rowid -> Engine.update e tbl rowid [ (2, Value.Int bal) ]
            | None -> ())
      with
      | Ok () -> incr committed
      | Error e -> record_err e
    end
    else if r < 0.67 then begin
      (* delete, then check both paths agree the key is gone *)
      let id = pick_id () in
      match
        attempt 8 (fun e ->
            match Table.find_by_pk tbl [ Value.Int id ] with
            | Some rowid ->
              Engine.delete e tbl rowid;
              true
            | None -> false)
      with
      | Ok deleted ->
        incr committed;
        if deleted then check_point "after delete" id
      | Error e -> record_err e
    end
    else if r < 0.76 then begin
      (* insert then user-abort: the undo log removes the row through
         Table.delete, which must also unwind the sidecar entry *)
      let id = !next_id in
      next_id := !next_id + 1;
      (match
         Engine.run engine (fun e ->
             ignore
               (Engine.insert e tbl
                  [| Value.Int id; Value.Str "ghost"; Value.Int 0 |]);
             raise (Engine.Abort "hash_check"))
       with
      | Error (Engine.Txn_aborted _) -> incr user_aborts
      | Ok () -> violate "aborted insert of id %d committed" id
      | Error e -> record_err e);
      check_point "after rollback" id
    end
    else begin
      (* plain point-read differential on a random known id *)
      check_point "point read" (pick_id ())
    end
  in
  for step = 1 to n do
    exec ();
    (* mid-run sweep: verify forces pending hybrid merges first, so this
       also exercises agreement across dynamic-to-static migration *)
    if step mod 137 = 0 then sweep (Printf.sprintf "mid-run (step %d)" step);
    (* periodic crash recovery: the sidecar is rebuilt clear-free from the
       surviving rows and must come back in full agreement *)
    if step mod 401 = 0 then begin
      ignore (Engine.recover engine);
      incr recoveries;
      sweep (Printf.sprintf "post-recovery (step %d)" step)
    end
  done;
  ignore (Engine.recover engine);
  incr recoveries;
  sweep "final";
  {
    committed = !committed;
    duplicate_rejections = !duplicates;
    user_aborts = !user_aborts;
    unavailable_errors = !unavailable;
    lost_errors = !lost;
    recoveries = !recoveries;
    point_checks = !point_checks;
    violations = List.rev !violations;
  }
