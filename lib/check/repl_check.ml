(* Replication checks (DESIGN.md §15): differential convergence and the
   kill-the-primary failover audit.

   Differential: a primary (durable, replication tap installed, served
   over loopback TCP) takes a seeded mixed workload through the
   in-process API while a replica follows the stream — disconnected and
   reconnected mid-stream on a schedule to exercise resume-from-LSN and
   snapshot resync.  After the workload quiesces and the replica's
   applied positions reach the primary's published positions, a full
   scan on both sides must match entry-for-entry.  The oracle is the
   primary itself: replication must converge to bit-identical visible
   state, whatever mix of commits, 2PC transactions, deletes and
   reconnects got it there.

   Failover: the primary runs in a child process (re-exec of the current
   binary, same pattern as {!Concurrent_check.crash_run}) with semi-sync
   replication ([sync_replicas = 1]), so a client ack means the replica
   applied the write.  The parent drives an acked pipelined burst, then
   SIGKILLs the primary mid-traffic and audits the replica: every
   acknowledged write must be readable there, scans must serve, and
   writes must be rejected with [Read_only].  Any binary calling
   {!failover_run} must call {!maybe_crash_child} first thing in its
   main. *)

open Hi_server
module Router = Hi_shard.Router
module Xorshift = Hi_util.Xorshift

let fresh_dir name =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hi_repl_%s_%d_%d" name (Unix.getpid ()) (Random.bits ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* -- differential: primary vs replica convergence ------------------------ *)

let positions_match primary replica =
  match Router.repl_positions (Db.router primary) with
  | None -> false
  | Some pos -> pos = Replica.applied replica

let await_convergence ?(timeout_s = 20.0) primary replica =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    match Replica.fatal replica with
    | Some m -> Error ("replica fatal: " ^ m)
    | None ->
      if positions_match primary replica then Ok ()
      else if Unix.gettimeofday () > deadline then
        Error
          (Printf.sprintf "no convergence in %.0f s: primary %s, replica %s" timeout_s
             (match Router.repl_positions (Db.router primary) with
             | Some pos ->
               String.concat "," (List.map string_of_int (Array.to_list pos))
             | None -> "-")
             (String.concat ","
                (List.map string_of_int (Array.to_list (Replica.applied replica)))))
      else begin
        Thread.delay 0.005;
        wait ()
      end
  in
  wait ()

let compare_scans primary rdb =
  let scan db =
    match Db.scan_from db "" Db.max_scan with
    | Ok entries -> Ok entries
    | Error e -> Error (Db.error_to_string e)
  in
  match (scan primary, scan rdb) with
  | Error e, _ -> Error ("primary scan: " ^ e)
  | _, Error e -> Error ("replica scan: " ^ e)
  | Ok a, Ok b ->
    if List.length a <> List.length b then (
      let keys l = List.map fst l in
      let missing side xs ys =
        match List.filter (fun k -> not (List.mem k ys)) xs with
        | [] -> ""
        | ks -> Printf.sprintf "; %s missing %s" side (String.concat " " (List.map (Printf.sprintf "%S") ks))
      in
      Error
        (Printf.sprintf "primary holds %d entries, replica %d%s%s" (List.length a)
           (List.length b)
           (missing "replica" (keys a) (keys b))
           (missing "primary" (keys b) (keys a))))
    else (
      match
        List.find_opt (fun ((ka, va), (kb, vb)) -> ka <> kb || va <> vb) (List.combine a b)
      with
      | Some ((ka, _), (kb, _)) -> Error (Printf.sprintf "diverged at %S vs %S" ka kb)
      | None -> Ok ())

(* Run a seeded mixed workload against a replicated primary with a
   replica tailing over real TCP, dropping the replica's connection
   every [disconnect_every] requests (0 = never).  Returns an error
   description on divergence. *)
let run_differential ?(partitions = 3) ?(txns = 400) ?(disconnect_every = 0) ~seed () =
  let dir = fresh_dir "diff" in
  let primary =
    Db.create ~wal_dir:(Filename.concat dir "wal")
      ~replication:(Router.replication ()) ~partitions ()
  in
  let server = Server.start ~db:primary () in
  let rdb = Db.create ~read_only:true ~partitions () in
  let replica = Replica.start ~host:"127.0.0.1" ~port:(Server.port server) ~db:rdb () in
  let finish r =
    Replica.stop replica;
    Server.stop server;
    Db.close rdb;
    Db.close primary;
    rm_rf dir;
    r
  in
  let requests = Wire_check.gen_session (Xorshift.create seed) ~n:txns in
  List.iteri
    (fun i req ->
      ignore (Db.exec primary req);
      if disconnect_every > 0 && i mod disconnect_every = disconnect_every - 1 then
        Replica.disconnect replica)
    requests;
  (* flush the group-commit buffers so every commit is published *)
  Router.sync_all (Db.router primary);
  match await_convergence primary replica with
  | Error _ as e -> finish e
  | Ok () -> finish (compare_scans primary rdb)

(* -- failover: SIGKILL the primary, audit the replica -------------------- *)

let crash_child_flag = "--hi-repl-crash-child"

(* Generous semi-sync deadline: the audit asserts zero acknowledged
   writes are lost, so the test must not degrade to async merely because
   a loaded CI machine stalled the replica for a second. *)
let child_ack_timeout_s = 30.0

let crash_child ~dir ~partitions ~sync_replicas =
  let db =
    Db.create
      ~wal_dir:(Filename.concat dir "wal")
      ~replication:
        (Router.replication ~sync_replicas ~ack_timeout_s:child_ack_timeout_s ())
      ~partitions ()
  in
  let server = Server.start ~db () in
  (* atomic port handoff: write + rename, the parent polls for [port] *)
  let tmp = Filename.concat dir "port.tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "%d\n" (Server.port server);
  close_out oc;
  Sys.rename tmp (Filename.concat dir "port");
  while true do
    Unix.sleep 3600
  done

(* Child-process entry: every binary that calls {!failover_run} must
   call this first thing in [main]. *)
let maybe_crash_child () =
  match Array.to_list Sys.argv with
  | _ :: flag :: dir :: rest when flag = crash_child_flag -> (
    match List.filter_map int_of_string_opt rest with
    | [ partitions; sync_replicas ] -> crash_child ~dir ~partitions ~sync_replicas
    | _ ->
      prerr_endline "bad repl crash-child argv";
      exit 2)
  | _ -> ()

type failover_outcome = {
  acked : int;  (** writes acknowledged before the kill *)
  lost : int;  (** acknowledged writes the replica cannot serve *)
  replica_entries : int;  (** entries a post-kill replica scan returned *)
  write_rejected : bool;  (** a post-kill write failed with [Read_only] *)
}

let failover_key i = Printf.sprintf "rf%06d" i

let failover_run ?(partitions = 2) ?(min_acks = 200) ?(timeout_s = 60.0) ~dir () =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let exe = Sys.executable_name in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; crash_child_flag; dir; string_of_int partitions; "1" |]
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  let deadline = Unix.gettimeofday () +. timeout_s in
  let fail_dead fmt =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid);
    failwith fmt
  in
  let port_path = Filename.concat dir "port" in
  let rec await_port () =
    if Sys.file_exists port_path then (
      let ic = open_in port_path in
      let p = int_of_string (String.trim (input_line ic)) in
      close_in ic;
      p)
    else if Unix.gettimeofday () > deadline then fail_dead "repl_check: primary never served"
    else begin
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _ -> failwith "repl_check: primary exited before serving");
      Thread.delay 0.01;
      await_port ()
    end
  in
  let port = await_port () in
  let rdb = Db.create ~read_only:true ~partitions () in
  let replica = Replica.start ~host:"127.0.0.1" ~port ~db:rdb () in
  let rec await_attached () =
    if Replica.connected replica then ()
    else if Unix.gettimeofday () > deadline then
      fail_dead "repl_check: replica never attached"
    else Thread.delay 0.01;
    if not (Replica.connected replica) then await_attached ()
  in
  await_attached ();
  (* acked pipelined burst: with sync_replicas = 1 every ack means the
     replica already applied the write *)
  let c = Client.connect ~port () in
  let inflight = Queue.create () in
  let acked = ref [] in
  let n_acked = ref 0 in
  let next = ref 0 in
  (try
     while !n_acked < min_acks do
       while Queue.length inflight < 32 do
         let i = !next in
         incr next;
         Queue.push (i, Client.send c (Db.Put (failover_key i, Db.Int i))) inflight
       done;
       let i, ticket = Queue.pop inflight in
       match Client.await ticket with
       | Db.Done _ ->
         acked := i :: !acked;
         incr n_acked
       | Db.Failed e -> failwith ("put failed before the kill: " ^ Db.error_to_string e)
       | _ -> failwith "unexpected response shape"
     done
   with e ->
     (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
     ignore (Unix.waitpid [] pid);
     Replica.stop replica;
     Db.close rdb;
     raise e);
  (* the kill lands with a window of unacknowledged writes still in flight *)
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Client.close c;
  (* the replica is now the only copy: audit it *)
  let lost =
    List.filter (fun i -> Db.get rdb (failover_key i) <> Ok (Some (Db.Int i))) !acked
  in
  let replica_entries =
    match Db.scan_from rdb "" Db.max_scan with
    | Ok entries -> List.length entries
    | Error e -> failwith ("replica scan after failover: " ^ Db.error_to_string e)
  in
  let write_rejected = Db.put rdb "should-not-land" Db.Null = Error Db.Read_only in
  Replica.stop replica;
  Db.close rdb;
  {
    acked = !n_acked;
    lost = List.length lost;
    replica_entries;
    write_rejected;
  }
