(* Masstree (Mao et al., EuroSys '12) — a trie of B+trees over 8-byte
   keyslices (paper §4.1, Fig 2).  Each trie layer is a {!Layer_tree}
   (B+tree keyed by unsigned keyslice + slice length); a layer entry links
   to either the values of a key ending within the slice, a stored suffix
   when a single key extends past the slice (the "keybag"), or a lower
   trie layer when several keys share the slice.

   (slice, length) order equals byte-string order — slices are compared as
   unsigned big-endian integers and shorter terminals sort before
   extensions — so ordered layer iteration yields ordered keys. *)

open Hi_util

type cell = { mutable vals : int array }

type link =
  | Term of cell (* key ends within this slice *)
  | Suf of { skey : string; scell : cell } (* unique key continues past the slice *)
  | Sub of layer (* several keys share the slice: next trie layer *)

and layer = link Layer_tree.t

type t = { mutable root : layer; mutable entries : int }

let name = "masstree"
let dummy_link = Term { vals = [||] }
let new_layer () = Layer_tree.create dummy_link
let create () = { root = new_layer (); entries = 0 }

(* (slice, len) of key at byte offset [off]: len 0–8 = key ends after len
   bytes of the slice; 9 = key extends past the slice. *)
let slice_of key off =
  let r = String.length key - off in
  let len = min r 8 in
  let s = ref 0L in
  for i = 0 to 7 do
    let b = if i < len then Char.code (String.unsafe_get key (off + i)) else 0 in
    s := Int64.logor (Int64.shift_left !s 8) (Int64.of_int b)
  done;
  (!s, if r > 8 then 9 else r)

let slice_bytes s len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical s ((7 - i) * 8)) 0xffL)))
  done;
  Bytes.unsafe_to_string b

let append_value c v = c.vals <- Array.append c.vals [| v |]

(* Insert a pre-existing cell for a key known to be absent (used when a
   suffix entry is pushed down into a fresh sub-layer). *)
let rec graft layer key off cell =
  let s, len = slice_of key off in
  if len <= 8 then
    Layer_tree.upsert layer s len (function
      | None -> Term cell
      | Some _ -> invalid_arg "Masstree.graft: key already present")
  else begin
    let suffix = String.sub key (off + 8) (String.length key - off - 8) in
    Layer_tree.upsert layer s 9 (function
      | None -> Suf { skey = suffix; scell = cell }
      | Some (Suf old) ->
        let sub = new_layer () in
        graft sub old.skey 0 old.scell;
        graft sub suffix 0 cell;
        Sub sub
      | Some (Sub sub) ->
        graft sub suffix 0 cell;
        Sub sub
      | Some (Term _) -> assert false)
  end

let rec add layer key off value =
  let s, len = slice_of key off in
  if len <= 8 then
    Layer_tree.upsert layer s len (function
      | None -> Term { vals = [| value |] }
      | Some (Term c) ->
        append_value c value;
        Term c
      | Some _ -> assert false)
  else begin
    let suffix = String.sub key (off + 8) (String.length key - off - 8) in
    Layer_tree.upsert layer s 9 (function
      | None -> Suf { skey = suffix; scell = { vals = [| value |] } }
      | Some (Suf old) ->
        if old.skey = suffix then begin
          append_value old.scell value;
          Suf old
        end
        else begin
          (* slice no longer uniquely owned: push both keys down a layer *)
          let sub = new_layer () in
          graft sub old.skey 0 old.scell;
          add sub suffix 0 value;
          Sub sub
        end
      | Some (Sub sub) ->
        add sub suffix 0 value;
        Sub sub
      | Some (Term _) -> assert false)
  end

let insert t key value =
  add t.root key 0 value;
  t.entries <- t.entries + 1

let rec get_cell layer key off =
  let s, len = slice_of key off in
  if len <= 8 then
    match Layer_tree.find layer s len with Some (Term c) -> Some c | _ -> None
  else begin
    let suffix = String.sub key (off + 8) (String.length key - off - 8) in
    match Layer_tree.find layer s 9 with
    | Some (Suf sfx) ->
      Op_counter.compare_keys 1;
      if sfx.skey = suffix then Some sfx.scell else None
    | Some (Sub sub) -> get_cell sub suffix 0
    | _ -> None
  end

let mem t key = get_cell t.root key 0 <> None
let find t key = match get_cell t.root key 0 with Some c when Array.length c.vals > 0 -> Some c.vals.(0) | _ -> None
let find_all t key = match get_cell t.root key 0 with Some c -> Array.to_list c.vals | None -> []

let update t key value =
  match get_cell t.root key 0 with
  | Some c when Array.length c.vals > 0 ->
    c.vals.(0) <- value;
    true
  | _ -> false

(* --- deletes --- *)

let rec del layer key off =
  let s, len = slice_of key off in
  if len <= 8 then (
    match Layer_tree.find layer s len with
    | Some (Term _) -> Layer_tree.remove layer s len
    | _ -> false)
  else begin
    let suffix = String.sub key (off + 8) (String.length key - off - 8) in
    match Layer_tree.find layer s 9 with
    | Some (Suf sfx) -> if sfx.skey = suffix then Layer_tree.remove layer s 9 else false
    | Some (Sub sub) ->
      let removed = del sub suffix 0 in
      if removed && Layer_tree.size sub = 0 then ignore (Layer_tree.remove layer s 9);
      removed
    | _ -> false
  end

let delete t key =
  match get_cell t.root key 0 with
  | None -> false
  | Some c ->
    let n = Array.length c.vals in
    if del t.root key 0 then begin
      t.entries <- t.entries - n;
      true
    end
    else false

let delete_value t key value =
  match get_cell t.root key 0 with
  | None -> false
  | Some c ->
    if Array.exists (fun x -> x = value) c.vals then begin
      let removed = ref false in
      let vs =
        List.filter
          (fun x ->
            if (not !removed) && x = value then begin
              removed := true;
              false
            end
            else true)
          (Array.to_list c.vals)
      in
      (match vs with
      | [] -> ignore (del t.root key 0)
      | _ -> c.vals <- Array.of_list vs);
      t.entries <- t.entries - 1;
      true
    end
    else false

(* --- ordered traversal --- *)

let rec iter_layer layer path f =
  Layer_tree.iter layer (fun s len link ->
      match link with
      | Term c -> f (path ^ slice_bytes s len) c.vals
      | Suf sfx -> f (path ^ slice_bytes s 8 ^ sfx.skey) sfx.scell.vals
      | Sub sub -> iter_layer sub (path ^ slice_bytes s 8) f)

let iter_sorted t f = iter_layer t.root "" f

(* Visit keys >= probe in order. *)
let rec scan_layer layer probe off path f =
  if off >= String.length probe then iter_layer layer path f
  else begin
    let ps, plen = slice_of probe off in
    Layer_tree.iter_from layer ps 0 (fun s len link ->
        if s <> ps then (
          match link with
          | Term c -> f (path ^ slice_bytes s len) c.vals
          | Suf sfx -> f (path ^ slice_bytes s 8 ^ sfx.skey) sfx.scell.vals
          | Sub sub -> iter_layer sub (path ^ slice_bytes s 8) f)
        else
          match link with
          | Term c ->
            let full = path ^ slice_bytes s len in
            Op_counter.compare_keys 1;
            if String.compare full probe >= 0 then f full c.vals
          | Suf sfx ->
            let full = path ^ slice_bytes s 8 ^ sfx.skey in
            Op_counter.compare_keys 1;
            if String.compare full probe >= 0 then f full sfx.scell.vals
          | Sub sub ->
            if plen = 9 then scan_layer sub probe (off + 8) (path ^ slice_bytes s 8) f
            else iter_layer sub (path ^ slice_bytes s 8) f)
  end

let scan_from t probe n =
  let out = ref [] and taken = ref 0 in
  (try
     scan_layer t.root probe 0 "" (fun k vs ->
         Array.iter
           (fun v ->
             if !taken >= n then raise Layer_tree.Stop;
             out := (k, v) :: !out;
             incr taken)
           vs;
         if !taken >= n then raise Layer_tree.Stop)
   with Layer_tree.Stop -> ());
  List.rev !out

let entry_count t = t.entries

let clear t =
  t.root <- new_layer ();
  t.entries <- 0

(* --- memory model (paper §4.1/§4.2) --- *)

(* Masstree B+tree nodes: fanout 15 with per-node metadata (version,
   permutation, parent pointer, keybag pointer) — 512 bytes in the C
   implementation's layout. *)
let node_size = 512
let layer_overhead = 32

(* round suffix allocations up to malloc granularity: the "aggressive"
   keybag allocation the paper calls out (§4.2) *)
let roundup16 n = (n + 15) land lnot 15

let rec layer_memory layer =
  let inners, leaves = Layer_tree.node_count layer in
  let bytes = ref (((inners + leaves) * node_size) + layer_overhead) in
  (* keybags: a leaf holding any suffix allocates a bag of [fanout] slots *)
  Layer_tree.iter_leaves layer (fun _n links ->
      let has_suffix = ref false in
      Array.iter
        (fun link ->
          match link with
          | Suf sfx ->
            has_suffix := true;
            bytes := !bytes + roundup16 (String.length sfx.skey)
          | Term _ | Sub _ -> ())
        links;
      if !has_suffix then bytes := !bytes + (Layer_tree.fanout * Mem_model.pointer_size));
  (* multi-value cells and sub-layers *)
  Layer_tree.iter layer (fun _ _ link ->
      match link with
      | Term c -> if Array.length c.vals > 1 then bytes := !bytes + 16 + (Mem_model.value_size * Array.length c.vals)
      | Suf sfx -> if Array.length sfx.scell.vals > 1 then bytes := !bytes + 16 + (Mem_model.value_size * Array.length sfx.scell.vals)
      | Sub sub -> bytes := !bytes + layer_memory sub);
  !bytes

let memory_bytes t = layer_memory t.root

(* --- structural self-check (differential-testing harness support) ---

   Checks per-layer (slice, len) ordering, link/len consistency (Term only
   for len <= 8, Suf/Sub only for len = 9), non-empty cells and suffixes,
   eager collapse of empty sub-layers, and entry accounting. *)
let check_structure t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let n_entries = ref 0 in
  let rec walk layer path depth =
    if depth > 0 && Layer_tree.size layer = 0 then err "empty sub-layer under %S" path;
    let prev = ref None in
    Layer_tree.iter layer (fun s len link ->
        (match !prev with
        | Some (ps, plen) ->
          let c = Int64.unsigned_compare ps s in
          if c > 0 || (c = 0 && plen >= len) then
            err "layer entries unsorted under %S: (%Lx,%d) before (%Lx,%d)" path ps plen s len
        | None -> ());
        prev := Some (s, len);
        if len < 0 || len > 9 then err "slice length %d outside [0,9] under %S" len path;
        match link with
        | Term c ->
          if len > 8 then err "Term link with slice length 9 under %S" path;
          if Array.length c.vals = 0 then err "empty Term cell under %S" path;
          n_entries := !n_entries + Array.length c.vals
        | Suf sfx ->
          if len <> 9 then err "Suf link with slice length %d under %S" len path;
          if String.length sfx.skey = 0 then err "empty suffix under %S" path;
          if Array.length sfx.scell.vals = 0 then err "empty Suf cell under %S" path;
          n_entries := !n_entries + Array.length sfx.scell.vals
        | Sub sub ->
          if len <> 9 then err "Sub link with slice length %d under %S" len path;
          walk sub (path ^ slice_bytes s 8) (depth + 1))
  in
  walk t.root "" 0;
  if !n_entries <> t.entries then err "entry counter %d <> actual %d" t.entries !n_entries;
  List.rev !errs
