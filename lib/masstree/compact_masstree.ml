(* Compact Masstree — the static-stage structure of Fig 4: each trie node's
   B+tree collapses into sorted arrays (binary search replaces the B+tree
   walk, §4.3), and all key suffixes of a trie node are concatenated into a
   single byte array with an offset array marking their starts.

   The merge routine implements the recursive algorithm of Appendix B
   (Fig 10): merge_nodes / add_item / create_node, combining sorted-array
   merging with trie traversal; untouched sub-layers are reused as-is. *)

open Hi_util
open Hi_index

type clink =
  | CVals of int array (* key ends within this slice *)
  | CSuf of int array (* unique key extends; suffix lives in the node's bag *)
  | CSub of cnode (* shared slice: next trie layer *)

and cnode = {
  mslices : int64 array;
  mlens : int array; (* 0-8 terminal, 9 extended *)
  mlinks : clink array;
  msuffixes : string; (* concatenated suffixes of this trie node *)
  msuf_off : int array; (* nkeys + 1 start offsets; empty ranges for non-suffix entries *)
}

type t = { mroot : cnode option; mnkeys : int; mnentries : int }

let name = "compact-masstree"
let empty = { mroot = None; mnkeys = 0; mnentries = 0 }

let slice_of key off =
  let r = String.length key - off in
  let len = min r 8 in
  let s = ref 0L in
  for i = 0 to 7 do
    let b = if i < len then Char.code (String.unsafe_get key (off + i)) else 0 in
    s := Int64.logor (Int64.shift_left !s 8) (Int64.of_int b)
  done;
  (!s, if r > 8 then 9 else r)

let slice_bytes s len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical s ((7 - i) * 8)) 0xffL)))
  done;
  Bytes.unsafe_to_string b

let compare_sl s1 l1 s2 l2 =
  let c = Int64.unsigned_compare s1 s2 in
  if c <> 0 then c else compare l1 l2

(* --- construction ---

   [entries] hold the *remaining* key bytes relative to this trie node;
   recursion strips 8 bytes per layer. *)

type pre_entry = { pslice : int64; plen : int; plink : clink; psuffix : string }

let assemble pres =
  let n = List.length pres in
  let mslices = Array.make n 0L in
  let mlens = Array.make n 0 in
  let mlinks = Array.make n (CVals [||]) in
  let msuf_off = Array.make (n + 1) 0 in
  let buf = Buffer.create 64 in
  List.iteri
    (fun i p ->
      mslices.(i) <- p.pslice;
      mlens.(i) <- p.plen;
      mlinks.(i) <- p.plink;
      Buffer.add_string buf p.psuffix;
      msuf_off.(i + 1) <- msuf_off.(i) + String.length p.psuffix)
    pres;
  { mslices; mlens; mlinks; msuffixes = Buffer.contents buf; msuf_off }

let rec build_cnode (entries : (string * int array) array) lo hi =
  let pres = ref [] in
  let i = ref lo in
  while !i < hi do
    let key, _ = entries.(!i) in
    let s, len = slice_of key 0 in
    if len <= 8 then begin
      (* terminal: distinct keys, so exactly this entry *)
      pres := { pslice = s; plen = len; plink = CVals (snd entries.(!i)); psuffix = "" } :: !pres;
      incr i
    end
    else begin
      (* group every key sharing this slice *)
      let j = ref !i in
      while
        !j < hi
        &&
        let s', len' = slice_of (fst entries.(!j)) 0 in
        s' = s && len' = 9
      do
        incr j
      done;
      if !j - !i = 1 then begin
        let key, vs = entries.(!i) in
        let suffix = String.sub key 8 (String.length key - 8) in
        pres := { pslice = s; plen = 9; plink = CSuf vs; psuffix = suffix } :: !pres
      end
      else begin
        let sub_entries =
          Array.init (!j - !i) (fun k ->
              let key, vs = entries.(!i + k) in
              (String.sub key 8 (String.length key - 8), vs))
        in
        let sub = build_cnode sub_entries 0 (Array.length sub_entries) in
        pres := { pslice = s; plen = 9; plink = CSub sub; psuffix = "" } :: !pres
      end;
      i := !j
    end
  done;
  assemble (List.rev !pres)

let count_entries entries = Array.fold_left (fun acc (_, vs) -> acc + Array.length vs) 0 entries

let build (entries : Index_intf.entries) =
  let n = Array.length entries in
  if n = 0 then empty
  else { mroot = Some (build_cnode entries 0 n); mnkeys = n; mnentries = count_entries entries }

(* --- lookups --- *)

let nkeys node = Array.length node.mslices

let node_lower_bound node s len =
  let lo = ref 0 and hi = ref (nkeys node) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Op_counter.compare_keys 1;
    if compare_sl node.mslices.(mid) node.mlens.(mid) s len < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let suffix_of node i = String.sub node.msuffixes node.msuf_off.(i) (node.msuf_off.(i + 1) - node.msuf_off.(i))

let rec find_vals node key off =
  Op_counter.visit ();
  let s, len = slice_of key off in
  let probe_len = if len <= 8 then len else 9 in
  let i = node_lower_bound node s probe_len in
  if i >= nkeys node || node.mslices.(i) <> s || node.mlens.(i) <> probe_len then None
  else
    match node.mlinks.(i) with
    | CVals vs -> Some vs
    | CSuf vs ->
      let suffix = String.sub key (off + 8) (String.length key - off - 8) in
      Op_counter.compare_keys 1;
      if suffix_of node i = suffix then Some vs else None
    | CSub sub ->
      Op_counter.deref ();
      find_vals sub key (off + 8)

let vals_opt t key = match t.mroot with None -> None | Some node -> find_vals node key 0
let mem t key = vals_opt t key <> None
let find t key = match vals_opt t key with Some vs when Array.length vs > 0 -> Some vs.(0) | _ -> None
let find_all t key = match vals_opt t key with Some vs -> Array.to_list vs | None -> []

let update t key v =
  match vals_opt t key with
  | Some vs when Array.length vs > 0 ->
    vs.(0) <- v;
    true
  | _ -> false

(* --- ordered traversal --- *)

let rec iter_node node path f =
  for i = 0 to nkeys node - 1 do
    match node.mlinks.(i) with
    | CVals vs -> f (path ^ slice_bytes node.mslices.(i) node.mlens.(i)) vs
    | CSuf vs -> f (path ^ slice_bytes node.mslices.(i) 8 ^ suffix_of node i) vs
    | CSub sub -> iter_node sub (path ^ slice_bytes node.mslices.(i) 8) f
  done

let iter_sorted t f = match t.mroot with None -> () | Some node -> iter_node node "" f

exception Enough

let rec scan_node node probe off path f =
  if off >= String.length probe then iter_node node path f
  else begin
    let ps, plen = slice_of probe off in
    let start = node_lower_bound node ps 0 in
    for i = start to nkeys node - 1 do
      let s = node.mslices.(i) in
      if s <> ps then (
        match node.mlinks.(i) with
        | CVals vs -> f (path ^ slice_bytes s node.mlens.(i)) vs
        | CSuf vs -> f (path ^ slice_bytes s 8 ^ suffix_of node i) vs
        | CSub sub -> iter_node sub (path ^ slice_bytes s 8) f)
      else
        match node.mlinks.(i) with
        | CVals vs ->
          let full = path ^ slice_bytes s node.mlens.(i) in
          if String.compare full probe >= 0 then f full vs
        | CSuf vs ->
          let full = path ^ slice_bytes s 8 ^ suffix_of node i in
          if String.compare full probe >= 0 then f full vs
        | CSub sub ->
          if plen = 9 then scan_node sub probe (off + 8) (path ^ slice_bytes s 8) f
          else iter_node sub (path ^ slice_bytes s 8) f
    done
  end

let scan_from t probe n =
  let out = ref [] and taken = ref 0 in
  (try
     match t.mroot with
     | None -> ()
     | Some node ->
       scan_node node probe 0 "" (fun k vs ->
           Array.iter
             (fun v ->
               if !taken >= n then raise Enough;
               out := (k, v) :: !out;
               incr taken)
             vs)
   with Enough -> ());
  List.rev !out

let key_count t = t.mnkeys
let entry_count t = t.mnentries

let to_entries t =
  let out = ref [] in
  iter_sorted t (fun k vs -> out := (k, vs) :: !out);
  Array.of_list (List.rev !out)

(* --- recursive merge (Appendix B, Fig 10) --- *)

let resolve_values (mode : Index_intf.merge_mode) old_vs new_vs =
  match mode with Replace -> new_vs | Concat -> Array.append old_vs new_vs

(* merge_nodes: zip the node's sorted entries with the batch groups *)
let rec merge_cnode node (batch : (string * int array) array) lo hi mode =
  if lo >= hi then node
  else begin
    (* pre-group the batch by (slice, len) *)
    let groups = ref [] in
    let i = ref lo in
    while !i < hi do
      let s, len = slice_of (fst batch.(!i)) 0 in
      let len = if len <= 8 then len else 9 in
      let j = ref !i in
      while
        !j < hi
        &&
        let s', len' = slice_of (fst batch.(!j)) 0 in
        let len' = if len' <= 8 then len' else 9 in
        s' = s && len' = len
      do
        incr j
      done;
      groups := (s, len, !i, !j) :: !groups;
      i := !j
    done;
    let groups = List.rev !groups in
    let sub_batch glo ghi =
      Array.init (ghi - glo) (fun k ->
          let key, vs = batch.(glo + k) in
          (String.sub key 8 (String.length key - 8), vs))
    in
    (* build a link for a batch group with no existing entry (create_node) *)
    let link_of_group s len glo ghi =
      if len <= 8 then { pslice = s; plen = len; plink = CVals (snd batch.(glo)); psuffix = "" }
      else if ghi - glo = 1 then begin
        let key, vs = batch.(glo) in
        { pslice = s; plen = 9; plink = CSuf vs; psuffix = String.sub key 8 (String.length key - 8) }
      end
      else begin
        let sb = sub_batch glo ghi in
        { pslice = s; plen = 9; plink = CSub (build_cnode sb 0 (Array.length sb)); psuffix = "" }
      end
    in
    (* combine an existing entry with a batch group of the same (slice, len):
       the four cases of Fig 10 *)
    let combine idx s len glo ghi =
      match node.mlinks.(idx) with
      | CVals old_vs ->
        (* terminal keys are unique: the group is a single key *)
        { pslice = s; plen = len; plink = CVals (resolve_values mode old_vs (snd batch.(glo))); psuffix = "" }
      | CSub sub ->
        (* case 1/2: existing child layer absorbs the batch group *)
        let sb = sub_batch glo ghi in
        { pslice = s; plen = 9; plink = CSub (merge_cnode sub sb 0 (Array.length sb) mode); psuffix = "" }
      | CSuf old_vs ->
        let old_suffix = suffix_of node idx in
        if ghi - glo = 1 && String.sub (fst batch.(glo)) 8 (String.length (fst batch.(glo)) - 8) = old_suffix
        then
          (* same key: resolve values in place *)
          { pslice = s; plen = 9; plink = CSuf (resolve_values mode old_vs (snd batch.(glo))); psuffix = old_suffix }
        else begin
          (* case 3/4: the slice is no longer uniquely owned — push the old
             suffix down and build a child layer (create_node) *)
          let sb = sub_batch glo ghi in
          let cmp (a, _) (b, _) = String.compare a b in
          let resolve (k, ov) (_, nv) = Some (k, resolve_values mode ov nv) in
          let merged = Inplace_merge.merge_resolve ~cmp ~resolve [| (old_suffix, old_vs) |] sb in
          { pslice = s; plen = 9; plink = CSub (build_cnode merged 0 (Array.length merged)); psuffix = "" }
        end
    in
    let out = ref [] in
    let add p = out := p :: !out in
    let keep idx =
      add
        {
          pslice = node.mslices.(idx);
          plen = node.mlens.(idx);
          plink = node.mlinks.(idx);
          psuffix = suffix_of node idx;
        }
    in
    let n = nkeys node in
    let rec zip idx groups =
      match groups with
      | [] -> for k = idx to n - 1 do keep k done
      | (s, len, glo, ghi) :: rest ->
        if idx >= n then begin
          add (link_of_group s len glo ghi);
          zip idx rest
        end
        else begin
          let c = compare_sl node.mslices.(idx) node.mlens.(idx) s len in
          if c < 0 then begin
            keep idx;
            zip (idx + 1) groups
          end
          else if c > 0 then begin
            add (link_of_group s len glo ghi);
            zip idx rest
          end
          else begin
            add (combine idx s len glo ghi);
            zip (idx + 1) rest
          end
        end
    in
    zip 0 groups;
    assemble (List.rev !out)
  end

let merge t (batch : Index_intf.entries) ~(mode : Index_intf.merge_mode) ~deleted =
  (* [deleted] applies to pre-existing static entries only; the batch
     always survives (a deleted key may since have been reinserted) *)
  let old_entries = to_entries t in
  let has_deletions = Array.exists (fun (k, _) -> deleted k) old_entries in
  if has_deletions then begin
    let cmp (a, _) (b, _) = String.compare a b in
    let resolve (k, ov) (_, nv) = Some (k, resolve_values mode ov nv) in
    let keep =
      Array.of_seq (Seq.filter (fun (k, _) -> not (deleted k)) (Array.to_seq old_entries))
    in
    build (Inplace_merge.merge_resolve ~cmp ~resolve keep batch)
  end
  else
    match t.mroot with
    | None -> build batch
    | Some node ->
      let root = merge_cnode node batch 0 (Array.length batch) mode in
      let nk = ref 0 and ne = ref 0 in
      iter_node root "" (fun _ vs ->
          incr nk;
          ne := !ne + Array.length vs);
      { mroot = Some root; mnkeys = !nk; mnentries = !ne }

(* --- memory model (Fig 4) --- *)

let node_overhead = 16

let rec node_memory node =
  let n = nkeys node in
  let per_entry = 8 (* keyslice *) + 1 (* key length *) + Mem_model.value_size (* value ptr *) + 4 (* suffix offset *) in
  let bytes = ref (node_overhead + (n * per_entry) + String.length node.msuffixes) in
  Array.iter
    (fun link ->
      match link with
      | CVals vs | CSuf vs -> if Array.length vs > 1 then bytes := !bytes + 16 + (Mem_model.value_size * Array.length vs)
      | CSub sub -> bytes := !bytes + node_memory sub)
    node.mlinks;
  !bytes

let memory_bytes t = match t.mroot with None -> 0 | Some node -> node_memory node

(* Lazy entry cursor via an explicit work stack of (node, index, path). *)
let to_seq t =
  let rec walk stack () =
    match stack with
    | [] -> Seq.Nil
    | (node, i, path) :: rest ->
      if i >= nkeys node then walk rest ()
      else begin
        let tail = (node, i + 1, path) :: rest in
        match node.mlinks.(i) with
        | CVals vs -> Seq.Cons ((path ^ slice_bytes node.mslices.(i) node.mlens.(i), vs), walk tail)
        | CSuf vs ->
          Seq.Cons ((path ^ slice_bytes node.mslices.(i) 8 ^ suffix_of node i, vs), walk tail)
        | CSub sub -> walk ((sub, 0, path ^ slice_bytes node.mslices.(i) 8) :: tail) ()
      end
  in
  match t.mroot with None -> Seq.empty | Some node -> walk [ (node, 0, "") ]
