(** Masstree (Mao et al., EuroSys '12) — a trie of B+trees over 8-byte
    keyslices (paper §4.1, Fig 2).  Each trie layer is a {!Layer_tree}
    keyed by (unsigned keyslice, slice length); an entry links to terminal
    values, a stored key suffix (the keybag), or a lower trie layer.
    (slice, length) order equals byte-string order, so layer iteration
    yields keys in order.

    Implements {!Hi_index.Index_intf.DYNAMIC}; multi-value keys hold a
    value array per key. *)

type t

val name : string
val create : unit -> t
val insert : t -> string -> int -> unit
val mem : t -> string -> bool
val find : t -> string -> int option
val find_all : t -> string -> int list
val update : t -> string -> int -> bool
val delete : t -> string -> bool
val delete_value : t -> string -> int -> bool
val scan_from : t -> string -> int -> (string * int) list
val iter_sorted : t -> (string -> int array -> unit) -> unit
val entry_count : t -> int
val clear : t -> unit

val memory_bytes : t -> int
(** Modelled layout: 512-byte Masstree nodes (fanout 15 plus metadata),
    aggressively allocated keybags (a fanout-sized slot array per leaf
    holding any suffix, suffixes rounded to malloc granularity — the waste
    §4.2 calls out), value arrays, and per-layer overhead. *)

val slice_of : string -> int -> int64 * int
(** [(slice, len)] of the key at byte offset [off]: len 0–8 = key ends
    within the slice, 9 = key extends past it (exposed for tests). *)

val slice_bytes : int64 -> int -> string
(** First [len] bytes of a slice (exposed for tests). *)

val check_structure : t -> string list
(** Structural invariant self-check: per-layer slice ordering, link/len
    consistency, non-empty cells, no empty sub-layers, entry accounting.
    [] when consistent. *)
