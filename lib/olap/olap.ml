(* Analytical scan executor over pinned index snapshots (DESIGN.md §16).

   The hybrid index's compact static stage is exactly the layout the
   HTAP compaction literature exploits for analytics over cold data: a
   sorted, read-only, cache-friendly array.  This module turns it into a
   read path.  Per partition it materializes a columnar capture — exact
   keys plus a numeric projection of each row — from a pinned snapshot of
   the table's primary-key index, then serves aggregate queries (Count /
   Sum / Min / Max / Avg over a key range, optionally grouped by key
   prefix) from that capture on the caller's thread.

   Division of labour, so OLTP latency is insulated from OLAP work:

   - capture runs as an ordinary partition job (serial with commits, so
     it cuts a transaction-consistent view and may safely read rows the
     partition domain owns); the index snapshot pins the static stage
     for the duration, so a merge racing the capture cannot free the
     arrays under it;
   - everything else — range selection, grouping, cross-partition merge,
     finalization — runs outside the partition's serial job loop, on the
     querying thread, against the immutable capture.

   A capture is cached per partition and reused while the partition's
   snapshot generation is unchanged.  Hybrid indexes advance their
   generation once per merge, so analytical answers are stale by at most
   one merge period (the staleness the [max_age_s] field reports); plain
   single-stage indexes advance per write and always serve fresh data. *)

open Hi_util
open Hi_hstore
module Router = Hi_shard.Router
module Future = Hi_shard.Future
module Index_intf = Hi_index.Index_intf

type agg_fn = Count | Sum | Min | Max | Avg

let agg_fn_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"

type query = {
  fn : agg_fn;
  lo : string;  (* inclusive lower key bound *)
  hi : string option;  (* exclusive upper key bound; [None] = to the end *)
  group_prefix : int;  (* group key = first [group_prefix] bytes; 0 = one group *)
}

type group = {
  g_key : string;  (* "" when [group_prefix] is 0 *)
  g_count : int;  (* all rows of the group, numeric or not *)
  g_value : float;  (* the finalized aggregate over the numeric rows *)
}

type answer = {
  groups : group list;  (* ascending by [g_key] *)
  rows_scanned : int;
  max_age_s : float;  (* worst capture age across partitions at answer time *)
  generation : int;  (* combined version stamp: sum of partition generations *)
}

(* How to read one partition's table: which columns to project and how to
   interpret the projected cells.  [src_key] must be monotone in primary
   index order (the kv table stores exact keys whose NUL-padded index
   encoding is order-preserving). *)
type source = {
  src_table : Table.t;
  src_columns : int array;
  src_key : Value.t array -> string;
  src_numeric : Value.t array -> float option;  (* [None] = non-numeric row *)
}

(* One partition's immutable columnar capture. *)
type columnar = {
  keys : string array;  (* exact keys, ascending *)
  isnum : bool array;
  nums : float array;
  c_generation : int;
  captured_at : float;
}

type t = {
  router : Router.t;
  sources : source array;
  slots : columnar option ref array;
  locks : Mutex.t array;  (* per-partition: serialize refresh-and-read *)
}

let mscope = Metrics.scope "olap"
let m_captures = Metrics.counter mscope "snapshot_captures"
let m_capture_rows = Metrics.counter mscope "capture_rows"
let m_scans = Metrics.counter mscope "scans_served"
let m_scan_rows = Metrics.counter mscope "scan_rows"
let m_scan_bytes = Metrics.counter mscope "scan_bytes"
let m_age = Metrics.histogram mscope "snapshot_age_seconds"
let m_pins = Metrics.gauge mscope "snapshot_pins"

let create ~router ~sources =
  let n = Array.length sources in
  {
    router;
    sources;
    slots = Array.init n (fun _ -> ref None);
    locks = Array.init n (fun _ -> Mutex.create ());
  }

(* -- capture (runs on the owning partition's domain) --------------------- *)

(* Pin the primary-key snapshot, project every reachable row into the
   columnar layout, release the pin.  Evicted rows are skipped — an
   analytical capture must neither fetch anti-cache blocks nor perturb
   eviction order, so analytics cover the memory-resident data
   (DESIGN.md §16). *)
let capture src =
  let snap = Table.pk_snapshot src.src_table in
  Metrics.incr m_captures;
  Metrics.set_int m_pins (Table.pk_pinned_snapshots src.src_table);
  let acc = ref [] and n = ref 0 in
  snap.Index_intf.snap_iter "" (fun _padded_key rowids ->
      Array.iter
        (fun rowid ->
          match Table.project_columns src.src_table rowid src.src_columns with
          | cells ->
            acc := (src.src_key cells, src.src_numeric cells) :: !acc;
            incr n
          | exception Table.Evicted_access _ -> ())
        rowids;
      true);
  let keys = Array.make !n "" in
  let isnum = Array.make !n false in
  let nums = Array.make !n 0.0 in
  (* [acc] is in descending key order (consed while iterating ascending) *)
  List.iteri
    (fun j (k, num) ->
      let i = !n - 1 - j in
      keys.(i) <- k;
      match num with
      | Some x ->
        isnum.(i) <- true;
        nums.(i) <- x
      | None -> ())
    !acc;
  let generation = snap.Index_intf.snap_generation in
  let captured_at = snap.Index_intf.snap_captured_at in
  snap.Index_intf.snap_release ();
  Metrics.add m_capture_rows !n;
  { keys; isnum; nums; c_generation = generation; captured_at }

(* -- aggregation (runs on the querying thread) ---------------------------- *)

type partial = {
  mutable p_rows : int;
  mutable p_num : int;  (* numeric rows *)
  mutable p_sum : float;
  mutable p_min : float;
  mutable p_max : float;
}

let lower_bound keys probe =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare keys.(mid) probe < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Fold one partition's capture into the cross-partition group table.
   Returns (rows, bytes) scanned. *)
let aggregate_columnar c q groups =
  let n = Array.length c.keys in
  let rows = ref 0 and bytes = ref 0 in
  let i = ref (lower_bound c.keys q.lo) in
  let in_range k = match q.hi with Some h -> String.compare k h < 0 | None -> true in
  let continue_ = ref true in
  while !continue_ && !i < n do
    let k = c.keys.(!i) in
    if not (in_range k) then continue_ := false
    else begin
      let gkey =
        if q.group_prefix = 0 then ""
        else String.sub k 0 (min q.group_prefix (String.length k))
      in
      let p =
        match Hashtbl.find_opt groups gkey with
        | Some p -> p
        | None ->
          let p = { p_rows = 0; p_num = 0; p_sum = 0.0; p_min = 0.0; p_max = 0.0 } in
          Hashtbl.add groups gkey p;
          p
      in
      p.p_rows <- p.p_rows + 1;
      if c.isnum.(!i) then begin
        let x = c.nums.(!i) in
        if p.p_num = 0 then begin
          p.p_min <- x;
          p.p_max <- x
        end
        else begin
          if x < p.p_min then p.p_min <- x;
          if x > p.p_max then p.p_max <- x
        end;
        p.p_num <- p.p_num + 1;
        p.p_sum <- p.p_sum +. x
      end;
      incr rows;
      bytes := !bytes + String.length k + 9 (* 8-byte numeric cell + tag *);
      incr i
    end
  done;
  (!rows, !bytes)

let finalize fn p =
  match fn with
  | Count -> float_of_int p.p_rows
  | Sum -> p.p_sum
  | Min -> p.p_min (* 0.0 when the group has no numeric rows *)
  | Max -> p.p_max
  | Avg -> if p.p_num = 0 then 0.0 else p.p_sum /. float_of_int p.p_num

(* -- cache refresh and the query entry point ------------------------------ *)

(* Current capture for partition [p], re-capturing when the partition's
   snapshot generation moved.  The generation read is deliberately
   lock-free against the partition domain: a torn decision either serves
   one more query from the old capture or refreshes a query early — both
   benign.  The per-partition mutex only serializes querying threads. *)
let current t p =
  let src = t.sources.(p) in
  Mutex.lock t.locks.(p);
  Fun.protect ~finally:(fun () -> Mutex.unlock t.locks.(p)) @@ fun () ->
  let gen = Table.pk_generation src.src_table in
  match !(t.slots.(p)) with
  | Some c when c.c_generation = gen -> Ok c
  | _ -> (
    match
      Future.await (Router.single_async t.router ~partition:p (fun _engine -> capture src))
    with
    | Ok c ->
      t.slots.(p) := Some c;
      Ok c
    | Error e -> Error e)

let refresh t =
  Array.iteri
    (fun p _ ->
      Mutex.lock t.locks.(p);
      Fun.protect ~finally:(fun () -> Mutex.unlock t.locks.(p)) @@ fun () ->
      match
        Future.await
          (Router.single_async t.router ~partition:p (fun _engine -> capture t.sources.(p)))
      with
      | Ok c -> t.slots.(p) := Some c
      | Error _ -> ())
    t.sources

let query t q =
  let parts = Array.length t.sources in
  let rec captures p acc =
    if p = parts then Ok (List.rev acc)
    else
      match current t p with
      | Ok c -> captures (p + 1) (c :: acc)
      | Error e -> Error e
  in
  match captures 0 [] with
  | Error e -> Error e
  | Ok cs ->
    let groups = Hashtbl.create 16 in
    let rows = ref 0 and bytes = ref 0 in
    List.iter
      (fun c ->
        let r, b = aggregate_columnar c q groups in
        rows := !rows + r;
        bytes := !bytes + b)
      cs;
    let now = Unix.gettimeofday () in
    let max_age =
      List.fold_left
        (fun acc c ->
          let age = now -. c.captured_at in
          Metrics.observe m_age age;
          max acc age)
        0.0 cs
    in
    let generation = List.fold_left (fun acc c -> acc + c.c_generation) 0 cs in
    let out =
      Hashtbl.fold (fun k p acc -> (k, p) :: acc) groups []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.map (fun (k, p) -> { g_key = k; g_count = p.p_rows; g_value = finalize q.fn p })
    in
    Metrics.incr m_scans;
    Metrics.add m_scan_rows !rows;
    Metrics.add m_scan_bytes !bytes;
    Ok { groups = out; rows_scanned = !rows; max_age_s = max_age; generation }
