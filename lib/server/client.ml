(* Pipelining wire-protocol client (DESIGN.md §12).

   One writer lock serializes frame writes; a reader thread owns the
   socket's receive side and fills per-request futures by id.  State
   transitions are one-way (Open -> Failed/Closed) under [lock]; once
   failed, every outstanding future and every later [send] resolves to
   [Failed (Disconnected _)] — transport trouble is an answer, not an
   exception, so pipelined callers can keep their submit/await structure. *)

module Future = Hi_shard.Future

type state = Open | Failed of string | Closed

type t = {
  fd : Unix.file_descr;
  pending : (int, Db.response Future.t) Hashtbl.t;
  lock : Mutex.t;  (* guards pending, state, next_id *)
  wlock : Mutex.t;  (* serializes frame writes *)
  mutable state : state;
  mutable next_id : int;
  mutable reader : Thread.t option;
}

type ticket = Db.response Future.t

let fail_all t reason =
  Mutex.lock t.lock;
  (match t.state with
  | Open -> t.state <- Failed reason
  | Failed _ | Closed -> ());
  let stranded = Hashtbl.fold (fun _ fut acc -> fut :: acc) t.pending [] in
  Hashtbl.reset t.pending;
  Mutex.unlock t.lock;
  List.iter
    (fun fut -> Future.fill fut (Db.Failed (Db.Disconnected reason)))
    stranded

let reader_loop t =
  let rd = Wire.reader t.fd in
  let rec loop () =
    match Wire.try_msg rd with
    | `Msg (id, Wire.Response resp) ->
      Mutex.lock t.lock;
      let fut = Hashtbl.find_opt t.pending id in
      Hashtbl.remove t.pending id;
      Mutex.unlock t.lock;
      (match fut with Some fut -> Future.fill fut resp | None -> ());
      loop ()
    | `Msg (_, Wire.Request _) -> fail_all t "server sent a request frame"
    | `Msg
        ( _,
          ( Wire.Subscribe _ | Wire.Repl_hello _ | Wire.Repl_batch _ | Wire.Repl_ack _
          | Wire.Repl_heartbeat ) ) ->
      (* this client never subscribes; replication frames here mean the
         peer is confused and the stream cannot be trusted *)
      fail_all t "unexpected replication frame"
    | `Error e -> fail_all t (Wire.error_to_string e)
    | `Nothing -> (
      match Wire.refill rd with
      | 0 -> fail_all t "connection closed"
      | _ -> loop ()
      | exception Unix.Unix_error (e, _, _) -> fail_all t (Unix.error_message e))
  in
  loop ()

let connect ?(host = "127.0.0.1") ~port () =
  Wire.ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let t =
    {
      fd;
      pending = Hashtbl.create 64;
      lock = Mutex.create ();
      wlock = Mutex.create ();
      state = Open;
      next_id = 0;
      reader = None;
    }
  in
  t.reader <- Some (Thread.create (fun () -> reader_loop t) ());
  t

let send t req =
  Mutex.lock t.lock;
  match t.state with
  | (Failed _ | Closed) as st ->
    let reason = match st with Failed r -> r | _ -> "client closed" in
    Mutex.unlock t.lock;
    let fut = Future.create () in
    Future.fill fut (Db.Failed (Db.Disconnected reason));
    fut
  | Open ->
    let id = t.next_id in
    t.next_id <- (t.next_id + 1) land 0xffffffff;
    let fut = Future.create () in
    Hashtbl.replace t.pending id fut;
    Mutex.unlock t.lock;
    let frame = Wire.encode_request ~id req in
    Mutex.lock t.wlock;
    (match Wire.write_frame t.fd frame with
    | _ -> Mutex.unlock t.wlock
    | exception Unix.Unix_error (e, _, _) ->
      Mutex.unlock t.wlock;
      (* fills this request's future too: it is in [pending] *)
      fail_all t (Unix.error_message e));
    fut

let await = Future.await
let call t req = await (send t req)

let pending t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.pending in
  Mutex.unlock t.lock;
  n

let close t =
  Mutex.lock t.lock;
  let prev = t.state in
  if prev <> Closed then t.state <- Closed;
  Mutex.unlock t.lock;
  if prev <> Closed then begin
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.reader;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end
