(* The stable client-facing API: a typed KV request/response surface over
   the partitioned engine (DESIGN.md §12).

   Each partition holds one [kv] table; a client key lives on the
   partition [Router.route_key] picks, in a row [key, vtag, vint, vfloat,
   vstr] (the tag selects which payload column is live, since rows are
   fixed-arity).  Point ops are single-partition transactions on the
   owner; Txn groups its writes by owner and goes through the 2PC
   coordinator when more than one partition is touched; Scan_from fans
   out to every partition asynchronously and merges the sorted slices.

   The PK column is a fixed-width string, and index keys NUL-pad to that
   width — so two keys differing only in trailing '\000' bytes collide in
   the index.  Rows store the exact key: reads compare it before
   answering (a padding twin is a miss, not a wrong hit), and a Put whose
   padded key collides with a different exact key aborts rather than
   overwrite. *)

open Hi_hstore
module Router = Hi_shard.Router
module Olap = Hi_olap.Olap

type value = Value.t = Int of int | Float of float | Str of string | Null

let max_key_len = 128
let max_value_len = 256
let max_scan = 1024
let max_txn_ops = 1024

(* Analytical aggregate surface (DESIGN.md §16), re-exported from
   {!Hi_olap.Olap} so wire codec and clients need only this module. *)
type agg_fn = Olap.agg_fn = Count | Sum | Min | Max | Avg

type agg_query = Olap.query = {
  fn : agg_fn;
  lo : string;
  hi : string option;
  group_prefix : int;
}

type agg_group = Olap.group = { g_key : string; g_count : int; g_value : float }

type agg_answer = Olap.answer = {
  groups : agg_group list;
  rows_scanned : int;
  max_age_s : float;
  generation : int;
}

type request =
  | Get of string
  | Put of string * value
  | Delete of string
  | Scan_from of string * int
  | Scan_agg of agg_query
  | Txn of (string * value option) list

type error =
  | Bad_request of string
  | Aborted of string
  | Restart_limit of int
  | Block_unavailable of { table : string; block : int; attempts : int }
  | Block_lost of { table : string; block : int; cause : string }
  | Disconnected of string
  | Read_only

type response =
  | Value of value option
  | Done of bool
  | Entries of (string * value) list
  | Aggregate of agg_answer
  | Failed of error

let error_to_string = function
  | Bad_request m -> Printf.sprintf "bad request: %s" m
  | Aborted m -> Printf.sprintf "aborted: %s" m
  | Restart_limit n -> Printf.sprintf "restart limit (%d) exhausted" n
  | Block_unavailable { table; block; attempts } ->
    Printf.sprintf "block %d of %s unavailable after %d attempts" block table attempts
  | Block_lost { table; block; cause } ->
    Printf.sprintf "block %d of %s lost (%s)" block table cause
  | Disconnected m -> Printf.sprintf "disconnected: %s" m
  | Read_only -> "read-only replica"

let value_to_string = function
  | Value.Null -> "null"
  | Value.Int n -> string_of_int n
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.Str s -> Printf.sprintf "%S" s

let response_to_string = function
  | Value None -> "(not found)"
  | Value (Some v) -> value_to_string v
  | Done b -> if b then "done" else "done (no-op)"
  | Entries es ->
    String.concat "\n"
      (List.map (fun (k, v) -> Printf.sprintf "%S\t%s" k (value_to_string v)) es)
  | Aggregate a ->
    String.concat "\n"
      (List.map
         (fun g -> Printf.sprintf "%S\t%d\t%.17g" g.g_key g.g_count g.g_value)
         a.groups
      @ [
          Printf.sprintf "(%d rows scanned, snapshot age %.3fs, generation %d)" a.rows_scanned
            a.max_age_s a.generation;
        ])
  | Failed e -> "error: " ^ error_to_string e

let error_of_txn = function
  | Engine.Txn_aborted m -> Aborted m
  | Engine.Txn_restart_limit n -> Restart_limit n
  | Engine.Txn_block_unavailable { table; block; attempts } ->
    Block_unavailable { table; block; attempts }
  | Engine.Txn_block_lost { table; block; cause } ->
    Block_lost { table; block; cause = Anticache.error_kind_name cause }

(* -- storage mapping ----------------------------------------------------- *)

let kv_schema =
  Schema.make ~name:"kv"
    ~columns:
      [
        ("key", Value.TStr max_key_len);
        ("vtag", Value.TInt);
        ("vint", Value.TInt);
        ("vfloat", Value.TFloat);
        ("vstr", Value.TStr max_value_len);
      ]
    ~pk:[ "key" ] ()

let cols_of_value v =
  match v with
  | Value.Null -> [ (1, Value.Int 0) ]
  | Value.Int n -> [ (1, Value.Int 1); (2, Value.Int n) ]
  | Value.Float f -> [ (1, Value.Int 2); (3, Value.Float f) ]
  | Value.Str s -> [ (1, Value.Int 3); (4, Value.Str s) ]

let row_of_kv k v =
  let row = [| Value.Str k; Value.Int 0; Value.Int 0; Value.Float 0.0; Value.Str "" |] in
  List.iter (fun (i, c) -> row.(i) <- c) (cols_of_value v);
  row

let kv_of_row row =
  match Value.as_int row.(1) with
  | 0 -> Value.Null
  | 1 -> Value.Int (Value.as_int row.(2))
  | 2 -> Value.Float (Value.as_float row.(3))
  | _ -> Value.Str (Value.as_str row.(4))

(* One partition's kv table with its index handles resolved once at
   startup: the plan step hands transaction bodies pre-resolved typed
   handles instead of per-operation string lookups.  [pk] probes the
   hash sidecar (O(1)); [kv_pk] is the ordered index for scans. *)
type part = { tbl : Table.t; pk : Table.pk_handle; kv_pk : Table.idx_handle }

type t = { router : Router.t; parts : part array; olap : Olap.t; read_only : bool }

(* The OLAP projection of the kv row layout: exact key (column 0), tag
   (column 1) and both numeric payload columns.  [Int] and [Float] rows
   aggregate by value; [Null] and [Str] rows are counted but carry no
   numeric payload. *)
let kv_olap_source tbl =
  {
    Olap.src_table = tbl;
    src_columns = [| 0; 1; 2; 3 |];
    src_key = (fun cells -> Value.as_str cells.(0));
    src_numeric =
      (fun cells ->
        match Value.as_int cells.(1) with
        | 1 -> Some (float_of_int (Value.as_int cells.(2)))
        | 2 -> Some (Value.as_float cells.(3))
        | _ -> None);
  }

let create ?(mode = Router.Parallel) ?config ?sleep ?wal_dir ?checkpoint_bytes ?wal_fault
    ?replication ?(read_only = false) ~partitions () =
  if partitions <= 0 then invalid_arg "Db.create: partitions must be positive";
  let durability =
    Option.map (fun dir -> Router.durability ?checkpoint_bytes ?fault:wal_fault dir) wal_dir
  in
  let tables = Array.make partitions None in
  let router =
    Router.create ~mode ?config ?sleep ?durability ?replication ~partitions
      ~init:(fun i engine -> tables.(i) <- Some (Engine.create_table engine kv_schema))
      ()
  in
  let tables =
    Array.map (function Some t -> t | None -> assert false) tables
  in
  let olap = Olap.create ~router ~sources:(Array.map kv_olap_source tables) in
  let parts =
    Array.map (fun tbl -> { tbl; pk = Table.pk tbl; kv_pk = Table.index_exn tbl "kv_pk" }) tables
  in
  { router; parts; olap; read_only }

let router t = t.router
let num_partitions t = Array.length t.parts
let route t key = Router.route_key t.router key
let close t = Router.stop t.router
let recovery t = Router.recovery t.router
let checkpoint t = Router.checkpoint t.router

(* -- validation ---------------------------------------------------------- *)

let check_key k =
  let n = String.length k in
  if n = 0 then Some "empty key"
  else if n > max_key_len then
    Some (Printf.sprintf "key is %d bytes; max is %d" n max_key_len)
  else None

let check_value = function
  | Value.Str s when String.length s > max_value_len ->
    Some (Printf.sprintf "string value is %d bytes; max is %d" (String.length s) max_value_len)
  | _ -> None

let validate req =
  let ( let* ) o f = match o with Some _ as e -> e | None -> f () in
  match req with
  | Get k | Delete k -> check_key k
  | Put (k, v) ->
    let* () = check_key k in
    check_value v
  | Scan_from (k, n) ->
    if String.length k > max_key_len then
      Some (Printf.sprintf "probe is %d bytes; max is %d" (String.length k) max_key_len)
    else if n < 0 then Some "negative scan count"
    else None
  | Scan_agg q ->
    if String.length q.lo > max_key_len then
      Some (Printf.sprintf "lower bound is %d bytes; max is %d" (String.length q.lo) max_key_len)
    else (
      match q.hi with
      | Some h when String.length h > max_key_len ->
        Some (Printf.sprintf "upper bound is %d bytes; max is %d" (String.length h) max_key_len)
      | _ ->
        if q.group_prefix < 0 || q.group_prefix > max_key_len then
          Some (Printf.sprintf "group prefix %d out of range [0, %d]" q.group_prefix max_key_len)
        else None)
  | Txn ops ->
    if ops = [] then Some "empty transaction"
    else if List.length ops > max_txn_ops then
      Some (Printf.sprintf "transaction has more than %d operations" max_txn_ops)
    else
      List.fold_left
        (fun acc (k, vo) ->
          let* () = acc in
          let* () = check_key k in
          match vo with Some v -> check_value v | None -> None)
        None ops

(* -- transaction bodies (run on the owner partition's domain) ------------ *)

(* The PK probe answers in padded-key space; confirm the exact key before
   trusting a hit, so a padding twin reads as a miss. *)
let find_exact engine part k =
  match Table.pk_find part.pk [ Value.Str k ] with
  | None -> None
  | Some rowid ->
    let row = Engine.read engine part.tbl rowid in
    if String.equal (Value.as_str row.(0)) k then Some (rowid, row) else None

let apply_put engine part k v =
  match find_exact engine part k with
  | Some (rowid, _) ->
    Engine.update engine part.tbl rowid (cols_of_value v);
    false
  | None -> (
    try
      ignore (Engine.insert engine part.tbl (row_of_kv k v));
      true
    with Table.Duplicate_key _ ->
      (* same padded key, different exact key *)
      raise (Engine.Abort (Printf.sprintf "key %S collides with a NUL-padding twin" k)))

let apply_delete engine part k =
  match find_exact engine part k with
  | Some (rowid, _) ->
    Engine.delete engine part.tbl rowid;
    true
  | None -> false

let get_body part k engine =
  Value (Option.map (fun (_, row) -> kv_of_row row) (find_exact engine part k))

let put_body part k v engine = Done (apply_put engine part k v)
let delete_body part k engine = Done (apply_delete engine part k)

let scan_body part probe n engine =
  let rowids = Table.scan part.kv_pk ~prefix:[ Value.Str probe ] ~limit:n in
  List.map
    (fun rowid ->
      let row = Engine.read engine part.tbl rowid in
      (Value.as_str row.(0), kv_of_row row))
    rowids

(* -- planning and execution ---------------------------------------------- *)

type plan =
  | Single of int * (Engine.t -> response)
  | Inline
  | Invalid of response

let plan t req =
  match validate req with
  | Some msg -> Invalid (Failed (Bad_request msg))
  | None when t.read_only -> (
    match req with
    | Put _ | Delete _ | Txn _ -> Invalid (Failed Read_only)
    | Get k ->
      let p = route t k in
      Single (p, get_body t.parts.(p) k)
    | Scan_from _ | Scan_agg _ -> Inline)
  | None -> (
    match req with
    | Get k ->
      let p = route t k in
      Single (p, get_body t.parts.(p) k)
    | Put (k, v) ->
      let p = route t k in
      Single (p, put_body t.parts.(p) k v)
    | Delete k ->
      let p = route t k in
      Single (p, delete_body t.parts.(p) k)
    | Scan_from _ | Scan_agg _ | Txn _ -> Inline)

let scan_exec t probe n =
  let n = min n max_scan in
  if n = 0 then Entries []
  else
    let futs =
      Array.init (num_partitions t) (fun p ->
          Router.single_async t.router ~partition:p (scan_body t.parts.(p) probe n))
    in
    let slices = Array.map Hi_shard.Future.await futs in
    let err =
      Array.fold_left
        (fun acc r -> match (acc, r) with None, Error e -> Some e | _ -> acc)
        None slices
    in
    match err with
    | Some e -> Failed (error_of_txn e)
    | None ->
      (* k-way merge of the already-sorted per-partition slices, stopping
         at [n] — no concat-and-re-sort of everything fetched.  Keys are
         disjoint across partitions (each key has one owner), so there
         are no ties to resolve. *)
      let heads = Array.map (function Ok es -> es | Error _ -> []) slices in
      let rec merge_take acc remaining =
        if remaining = 0 then List.rev acc
        else begin
          let best = ref (-1) in
          Array.iteri
            (fun i l ->
              match l with
              | [] -> ()
              | (k, _) :: _ -> (
                match !best with
                | -1 -> best := i
                | b -> if String.compare k (fst (List.hd heads.(b))) < 0 then best := i))
            heads;
          match !best with
          | -1 -> List.rev acc
          | b -> (
            match heads.(b) with
            | e :: rest ->
              heads.(b) <- rest;
              merge_take (e :: acc) (remaining - 1)
            | [] -> assert false)
        end
      in
      Entries (merge_take [] n)

(* Aggregates run against each partition's cached columnar capture: only
   a stale partition posts a (snapshot-pinning) capture job through the
   router; selection, grouping and the cross-partition merge all happen
   on this thread, outside every partition's serial job loop. *)
let scan_agg_exec t q =
  match Olap.query t.olap q with
  | Ok a -> Aggregate a
  | Error e -> Failed (error_of_txn e)

let txn_exec t ops =
  let groups = Array.make (num_partitions t) [] in
  List.iter (fun ((k, _) as op) -> let p = route t k in groups.(p) <- op :: groups.(p)) ops;
  let participants =
    List.concat
      (List.init (num_partitions t) (fun p ->
           match groups.(p) with
           | [] -> []
           | rev_ops ->
             let ops = List.rev rev_ops in
             let part = t.parts.(p) in
             [
               {
                 Router.part = p;
                 body =
                   (fun engine ->
                     List.iter
                       (fun (k, vo) ->
                         match vo with
                         | Some v -> ignore (apply_put engine part k v)
                         | None -> ignore (apply_delete engine part k))
                       ops);
               };
             ]))
  in
  match Router.multi t.router participants with
  | Ok () -> Done true
  | Error e -> Failed (error_of_txn e)

let exec t req =
  match plan t req with
  | Invalid resp -> resp
  | Single (p, body) -> (
    match Router.single t.router ~partition:p body with
    | Ok resp -> resp
    | Error e -> Failed (error_of_txn e))
  | Inline -> (
    match req with
    | Scan_from (probe, n) -> scan_exec t probe n
    | Scan_agg q -> scan_agg_exec t q
    | Txn ops -> txn_exec t ops
    | Get _ | Put _ | Delete _ -> assert false)

(* -- typed wrappers ------------------------------------------------------ *)

let wrong_shape = Error (Aborted "unexpected response shape")

let get t k =
  match exec t (Get k) with
  | Value v -> Ok v
  | Failed e -> Error e
  | Done _ | Entries _ | Aggregate _ -> wrong_shape

let put t k v =
  match exec t (Put (k, v)) with
  | Done b -> Ok b
  | Failed e -> Error e
  | Value _ | Entries _ | Aggregate _ -> wrong_shape

let delete t k =
  match exec t (Delete k) with
  | Done b -> Ok b
  | Failed e -> Error e
  | Value _ | Entries _ | Aggregate _ -> wrong_shape

let scan_from t probe n =
  match exec t (Scan_from (probe, n)) with
  | Entries es -> Ok es
  | Failed e -> Error e
  | Value _ | Done _ | Aggregate _ -> wrong_shape

let scan_agg t q =
  match exec t (Scan_agg q) with
  | Aggregate a -> Ok a
  | Failed e -> Error e
  | Value _ | Done _ | Entries _ -> wrong_shape

let txn t ops =
  match exec t (Txn ops) with
  | Done _ -> Ok ()
  | Failed e -> Error e
  | Value _ | Entries _ | Aggregate _ -> wrong_shape
