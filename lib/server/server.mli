(** TCP transport of the {!Db} API: a pipelined wire-protocol server over
    the shard router (DESIGN.md §12).

    The accept loop runs on its own domain; each connection gets a reader
    thread and a writer thread.  The reader decodes {!Wire} frames and
    feeds single-partition requests through a per-connection
    {!Hi_shard.Shard_runner.Window} (batched onto the owner partitions'
    mailboxes, bounded in flight), so a client pipelining requests keeps
    every partition busy; responses complete out of order and carry the
    request id they answer.  Scans and multi-partition transactions drain
    the window first — per-connection program order is preserved — then
    run inline.  A counting semaphore caps in-flight requests per
    connection ([max_inflight]): the reader stops pulling bytes off the
    socket until responses drain, which is TCP backpressure onto the
    client.

    A malformed frame (bad CRC, bad version, unparseable payload) or a
    response opcode arriving at the server counts a protocol error and
    closes the connection — the stream can no longer be trusted.

    Metrics live under the ["server"] scope: [connections_total],
    [active_connections], [frames_in]/[frames_out],
    [bytes_in]/[bytes_out], [protocol_errors] and per-op latency
    histograms [latency_get/put/delete/scan/txn]. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?batch:int ->
  ?max_inflight:int ->
  ?repl_queue_bytes:int ->
  db:Db.t ->
  unit ->
  t
(** Bind, listen and start accepting.  [port] defaults to [0] (the
    kernel picks; read it back with {!port}), [host] to loopback,
    [batch] to {!Hi_shard.Shard_runner.default_batch}, [max_inflight] to
    [64] requests per connection.  [repl_queue_bytes] (default 64 MiB)
    is the per-follower high-water mark on queued replication frames: a
    follower that stops draining its socket is detached and
    disconnected once that many bytes are buffered for it, instead of
    growing the primary's memory without bound (it reconnects and
    resumes or resyncs). *)

val port : t -> int
val db : t -> Db.t

val protocol_errors : t -> int
(** Malformed or out-of-place frames seen so far (process-wide). *)

val stop : t -> unit
(** Stop accepting, shut every connection down and join all of their
    threads.  Idempotent.  The underlying {!Db} stays open. *)
