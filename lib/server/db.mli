(** The stable client-facing API of the system (DESIGN.md §12).

    A typed, versioned key/value request/response surface over the
    partitioned engine: point reads and writes route to their owner
    partition (the {!Hi_shard.Router} fast path), multi-key transactions
    go through the 2PC coordinator, and range scans fan out to every
    partition and merge.  The same [request]/[response] types are served
    by two transports — in-process ({!exec} on a {!t}) and TCP
    ({!Server}/{!Client} speaking the {!Wire} protocol) — which the
    differential test holds byte-identical.

    Keys are arbitrary byte strings (1–{!max_key_len} bytes; typically
    order-preserving encodings from {!Hi_util.Key_codec}).  Under the
    hood each partition stores rows in a [kv] table whose primary-key
    column is a fixed-width string: index keys are NUL-padded to that
    width, so two keys that differ only in trailing [\000] bytes collide
    (the second {!request.Put} aborts).  Scans order keys by the padded
    encoding, i.e. plain lexicographic order for same-family keys. *)

open Hi_hstore

type value = Value.t = Int of int | Float of float | Str of string | Null

val max_key_len : int  (** 128 bytes *)

val max_value_len : int  (** longest [Str] payload, 256 bytes *)

val max_scan : int  (** per-scan result cap, 1024 entries *)

val max_txn_ops : int  (** operations per transaction, 1024 *)

(** {1 Analytical aggregates (DESIGN.md §16)}

    Re-exported from {!Hi_olap.Olap} so wire codec and clients need only
    this module.  A {!request.Scan_agg} runs against per-partition
    snapshots of the primary-key index captured at merge boundaries, so
    its answer may lag the latest writes by up to one merge period — the
    reported [max_age_s] — while leaving OLTP traffic undisturbed. *)

type agg_fn = Hi_olap.Olap.agg_fn = Count | Sum | Min | Max | Avg

type agg_query = Hi_olap.Olap.query = {
  fn : agg_fn;
  lo : string;  (** inclusive lower key bound *)
  hi : string option;  (** exclusive upper key bound; [None] = to the end *)
  group_prefix : int;  (** group key = first [group_prefix] bytes; 0 = one group *)
}

type agg_group = Hi_olap.Olap.group = {
  g_key : string;
  g_count : int;  (** all rows of the group *)
  g_value : float;  (** finalized aggregate over the numeric rows *)
}

type agg_answer = Hi_olap.Olap.answer = {
  groups : agg_group list;  (** ascending by [g_key] *)
  rows_scanned : int;
  max_age_s : float;  (** worst snapshot age across partitions *)
  generation : int;  (** combined snapshot-generation stamp *)
}

(** Protocol-versioned request surface.  In {!request.Txn}, each element
    is a write: [(key, Some v)] puts, [(key, None)] deletes; the ops are
    applied in order, atomically across every partition they touch. *)
type request =
  | Get of string
  | Put of string * value
  | Delete of string
  | Scan_from of string * int  (** up to [n] entries with key >= probe *)
  | Scan_agg of agg_query  (** snapshot aggregate over a key range *)
  | Txn of (string * value option) list

(** Why a request failed.  The middle four mirror
    {!Hi_hstore.Engine.txn_error}; [Bad_request] is a validation reject
    and [Disconnected] a transport-level client-side failure. *)
type error =
  | Bad_request of string
  | Aborted of string
  | Restart_limit of int
  | Block_unavailable of { table : string; block : int; attempts : int }
  | Block_lost of { table : string; block : int; cause : string }
  | Disconnected of string
  | Read_only  (** write rejected by a read-only replica (DESIGN.md §15) *)

type response =
  | Value of value option  (** {!request.Get} *)
  | Done of bool
      (** {!request.Put}: the key was new; {!request.Delete}: the key
          existed; {!request.Txn}: always [true] *)
  | Entries of (string * value) list  (** {!request.Scan_from}, ascending *)
  | Aggregate of agg_answer  (** {!request.Scan_agg} *)
  | Failed of error

val error_to_string : error -> string
val response_to_string : response -> string

val error_of_txn : Engine.txn_error -> error

(** {1 The in-process transport} *)

type t

val create :
  ?mode:Hi_shard.Router.mode ->
  ?config:Engine.config ->
  ?sleep:(float -> unit) ->
  ?wal_dir:string ->
  ?checkpoint_bytes:int ->
  ?wal_fault:Hi_util.Fault.t ->
  ?replication:Hi_shard.Router.repl_config ->
  ?read_only:bool ->
  partitions:int ->
  unit ->
  t
(** Build a database: a router over [partitions] engines, each holding
    one [kv] table.  [Parallel] mode (the default) runs a domain per
    partition.

    With [wal_dir] set, every acknowledged write is durable (DESIGN.md
    §13): commits append to a per-partition write-ahead log and responses
    wait for the group-commit fsync; startup replays whatever logs and
    checkpoints the directory holds, so reopening the same [wal_dir]
    (with the same [partitions] count) recovers every acknowledged write.
    [checkpoint_bytes] caps per-partition log growth; [wal_fault] injects
    disk faults for tests.

    [replication] (requires [wal_dir]) installs the streaming-replication
    tap (DESIGN.md §15) so a {!Server} can feed followers; [read_only]
    makes this node a replica surface — {!request.Put}, {!request.Delete}
    and {!request.Txn} fail with {!error.Read_only} while reads and scans
    serve normally (the {!Replica} applies the stream underneath through
    the router, not through this API). *)

val router : t -> Hi_shard.Router.t
val num_partitions : t -> int

val recovery : t -> Hi_shard.Router.recovery option
(** What startup recovery replayed; [None] without [wal_dir]. *)

val checkpoint : t -> int
(** Snapshot and truncate the logs (see {!Hi_shard.Router.checkpoint}). *)

val route : t -> string -> int
(** Owner partition of a key. *)

val exec : t -> request -> response
(** Execute any request: validation, routing, 2PC and scan fan-out
    included.  Never raises. *)

val close : t -> unit
(** Drain and join every partition. *)

(** {1 Typed convenience wrappers over {!exec}} *)

val get : t -> string -> (value option, error) result
val put : t -> string -> value -> (bool, error) result
val delete : t -> string -> (bool, error) result
val scan_from : t -> string -> int -> ((string * value) list, error) result
val scan_agg : t -> agg_query -> (agg_answer, error) result
val txn : t -> (string * value option) list -> (unit, error) result

(** {1 Execution planning (used by the wire-protocol server)} *)

(** How a request executes, so the server can batch the single-partition
    fast path through a {!Hi_shard.Shard_runner.Window} while running
    fan-out work inline. *)
type plan =
  | Single of int * (Engine.t -> response)
      (** run the body inside one transaction on that partition *)
  | Inline  (** {!request.Scan_from}/{!request.Txn}: use {!exec} *)
  | Invalid of response  (** validation reject: respond without executing *)

val plan : t -> request -> plan
