(* Binary wire protocol: length-prefixed, CRC-32-checksummed frames with
   a protocol-version byte and request ids (DESIGN.md §12).

   frame   = u32 BE payload-length | payload | u32 BE CRC-32(payload)
   payload = version u8 | opcode u8 | request-id u32 BE | body

   The CRC is verified before the payload is parsed, and parsing is
   strict: unknown opcodes/tags, truncated bodies and trailing bytes are
   all [Bad_payload].  [decode_frame] trusts the declared length only
   after bounding it by [max_payload], so a corrupted length field can't
   make the reader buffer unboundedly or desynchronize past one frame. *)

open Hi_util

let version = 1
let max_payload = 1 lsl 20

(* Replication batch kinds (DESIGN.md §15): [Log] carries committed
   records whose first LSN is the batch's [lsn]; [Snap] carries state
   snapshot records representing the stream up to [lsn] ([first] marks
   the first chunk of a stream's snapshot, [last] the chunk after which
   the follower may ack [lsn] and expect [Log] batches from [lsn+1]). *)
type repl_kind = Log | Snap of { first : bool; last : bool }

type msg =
  | Request of Db.request
  | Response of Db.response
  | Subscribe of { stream_id : int; applied : int array }
      (* replica -> primary: resume streams from these positions;
         [applied = [||]] (or a foreign stream_id) asks for a snapshot *)
  | Repl_hello of { stream_id : int; partitions : int; resync : bool }
      (* primary -> replica: stream identity and whether a full
         snapshot follows (the replica must reset) *)
  | Repl_batch of { stream : int; lsn : int; kind : repl_kind; records : string list }
  | Repl_ack of { stream : int; lsn : int } (* replica -> primary: applied through lsn *)
  | Repl_heartbeat (* primary -> replica: liveness while the stream is idle *)

type error =
  | Need_more of int
  | Bad_version of int
  | Bad_crc
  | Bad_payload of string
  | Frame_too_large of int

let error_to_string = function
  | Need_more n -> Printf.sprintf "need %d more bytes" n
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_crc -> "frame checksum mismatch"
  | Bad_payload m -> Printf.sprintf "malformed payload: %s" m
  | Frame_too_large n -> Printf.sprintf "declared payload of %d bytes exceeds limit" n

(* -- opcodes and tags ---------------------------------------------------- *)

let op_get = 0x01
let op_put = 0x02
let op_delete = 0x03
let op_scan = 0x04
let op_txn = 0x05
let op_subscribe = 0x06
let op_repl_ack = 0x07
let op_scan_agg = 0x08
let op_value = 0x81
let op_done = 0x82
let op_entries = 0x83
let op_failed = 0x84
let op_repl_hello = 0x85
let op_repl_batch = 0x86
let op_repl_heartbeat = 0x87
let op_aggregate = 0x88

(* Most partitions a Subscribe may name; far above any deployment, low
   enough that a corrupt count cannot make the decoder allocate wildly. *)
let max_streams = 4096

(* -- encoding ------------------------------------------------------------ *)

let put_u32 b v = Buffer.add_int32_be b (Int32.of_int v)

let put_str16 b s =
  Buffer.add_uint16_be b (String.length s);
  Buffer.add_string b s

let put_str32 b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_value b v =
  match (v : Db.value) with
  | Null -> Buffer.add_uint8 b 0
  | Int n ->
    Buffer.add_uint8 b 1;
    Buffer.add_int64_be b (Int64.of_int n)
  | Float f ->
    Buffer.add_uint8 b 2;
    Buffer.add_int64_be b (Int64.bits_of_float f)
  | Str s ->
    Buffer.add_uint8 b 3;
    put_str32 b s

let put_request b (req : Db.request) =
  match req with
  | Get k ->
    Buffer.add_uint8 b op_get;
    fun () -> put_str16 b k
  | Put (k, v) ->
    Buffer.add_uint8 b op_put;
    fun () ->
      put_str16 b k;
      put_value b v
  | Delete k ->
    Buffer.add_uint8 b op_delete;
    fun () -> put_str16 b k
  | Scan_from (k, n) ->
    Buffer.add_uint8 b op_scan;
    fun () ->
      put_str16 b k;
      put_u32 b n
  | Scan_agg q ->
    Buffer.add_uint8 b op_scan_agg;
    fun () ->
      Buffer.add_uint8 b
        (match q.fn with Count -> 0 | Sum -> 1 | Min -> 2 | Max -> 3 | Avg -> 4);
      put_str16 b q.lo;
      (match q.hi with
      | None -> Buffer.add_uint8 b 0
      | Some h ->
        Buffer.add_uint8 b 1;
        put_str16 b h);
      Buffer.add_uint8 b q.group_prefix
  | Txn ops ->
    Buffer.add_uint8 b op_txn;
    fun () ->
      Buffer.add_uint16_be b (List.length ops);
      List.iter
        (fun (k, vo) ->
          match vo with
          | Some v ->
            Buffer.add_uint8 b 1;
            put_str16 b k;
            put_value b v
          | None ->
            Buffer.add_uint8 b 2;
            put_str16 b k)
        ops

let put_error b (e : Db.error) =
  match e with
  | Bad_request m ->
    Buffer.add_uint8 b 1;
    put_str32 b m
  | Aborted m ->
    Buffer.add_uint8 b 2;
    put_str32 b m
  | Restart_limit n ->
    Buffer.add_uint8 b 3;
    put_u32 b n
  | Block_unavailable { table; block; attempts } ->
    Buffer.add_uint8 b 4;
    put_str16 b table;
    put_u32 b block;
    put_u32 b attempts
  | Block_lost { table; block; cause } ->
    Buffer.add_uint8 b 5;
    put_str16 b table;
    put_u32 b block;
    put_str16 b cause
  | Disconnected m ->
    Buffer.add_uint8 b 6;
    put_str32 b m
  | Read_only -> Buffer.add_uint8 b 7

let put_response b (resp : Db.response) =
  match resp with
  | Value vo ->
    Buffer.add_uint8 b op_value;
    fun () -> (
      match vo with
      | None -> Buffer.add_uint8 b 0
      | Some v ->
        Buffer.add_uint8 b 1;
        put_value b v)
  | Done ok ->
    Buffer.add_uint8 b op_done;
    fun () -> Buffer.add_uint8 b (if ok then 1 else 0)
  | Entries es ->
    Buffer.add_uint8 b op_entries;
    fun () ->
      put_u32 b (List.length es);
      List.iter
        (fun (k, v) ->
          put_str16 b k;
          put_value b v)
        es
  | Aggregate a ->
    Buffer.add_uint8 b op_aggregate;
    fun () ->
      put_u32 b a.rows_scanned;
      Buffer.add_int64_be b (Int64.bits_of_float a.max_age_s);
      put_u32 b a.generation;
      put_u32 b (List.length a.groups);
      List.iter
        (fun (g : Db.agg_group) ->
          put_str16 b g.g_key;
          Buffer.add_int64_be b (Int64.of_int g.g_count);
          Buffer.add_int64_be b (Int64.bits_of_float g.g_value))
        a.groups
  | Failed e ->
    Buffer.add_uint8 b op_failed;
    fun () -> put_error b e

let frame ~id put_msg =
  let b = Buffer.create 64 in
  Buffer.add_uint8 b version;
  let put_body = put_msg b in
  put_u32 b (id land 0xffffffff);
  put_body ();
  let payload = Buffer.contents b in
  let out = Buffer.create (String.length payload + 8) in
  put_u32 out (String.length payload);
  Buffer.add_string out payload;
  Buffer.add_int32_be out (Crc32.string payload);
  Buffer.contents out

let encode_request ~id req = frame ~id (fun b -> put_request b req)
let encode_response ~id resp = frame ~id (fun b -> put_response b resp)

(* -- replication frames (DESIGN.md §15) ---------------------------------- *)

let put_i64 b v = Buffer.add_int64_be b (Int64.of_int v)

let put_kind b = function
  | Log -> Buffer.add_uint8 b 0
  | Snap { first; last } ->
    Buffer.add_uint8 b 1;
    Buffer.add_uint8 b ((if first then 1 else 0) lor if last then 2 else 0)

let encode_msg ~id (m : msg) =
  match m with
  | Request req -> encode_request ~id req
  | Response resp -> encode_response ~id resp
  | Subscribe { stream_id; applied } ->
    frame ~id (fun b ->
        Buffer.add_uint8 b op_subscribe;
        fun () ->
          put_i64 b stream_id;
          Buffer.add_uint16_be b (Array.length applied);
          Array.iter (put_i64 b) applied)
  | Repl_hello { stream_id; partitions; resync } ->
    frame ~id (fun b ->
        Buffer.add_uint8 b op_repl_hello;
        fun () ->
          put_i64 b stream_id;
          Buffer.add_uint16_be b partitions;
          Buffer.add_uint8 b (if resync then 1 else 0))
  | Repl_batch { stream; lsn; kind; records } ->
    frame ~id (fun b ->
        Buffer.add_uint8 b op_repl_batch;
        fun () ->
          Buffer.add_uint16_be b stream;
          put_i64 b lsn;
          put_kind b kind;
          put_u32 b (List.length records);
          List.iter (put_str32 b) records)
  | Repl_ack { stream; lsn } ->
    frame ~id (fun b ->
        Buffer.add_uint8 b op_repl_ack;
        fun () ->
          Buffer.add_uint16_be b stream;
          put_i64 b lsn)
  | Repl_heartbeat ->
    frame ~id (fun b ->
        Buffer.add_uint8 b op_repl_heartbeat;
        fun () -> ())

(* Encode a replication batch as one or more frames, each below
   {!max_payload} — the [Frame_too_large] guard stays meaningful on the
   replication path.  [Log] chunks advance the LSN record by record;
   [Snap] chunks keep the snapshot's position and spread the
   first/last markers over the split.
   @raise Invalid_argument if a single record cannot fit one frame. *)
let encode_repl_batches ~stream ~lsn ~kind records =
  let budget = max_payload - 64 in
  let frames = ref [] in
  let emit ~lsn ~kind chunk = frames := encode_msg ~id:0 (Repl_batch { stream; lsn; kind; records = chunk }) :: !frames in
  let kind_of ~first_chunk ~last_chunk =
    match kind with
    | Log -> Log
    | Snap { first; last } -> Snap { first = first && first_chunk; last = last && last_chunk }
  in
  let rec go ~first_chunk ~next_lsn pending chunk chunk_n chunk_bytes =
    match pending with
    | [] ->
      if chunk <> [] || first_chunk then
        emit
          ~lsn:(match kind with Log -> next_lsn - chunk_n | Snap _ -> lsn)
          ~kind:(kind_of ~first_chunk ~last_chunk:true)
          (List.rev chunk)
    | r :: rest ->
      let cost = String.length r + 4 in
      if cost > budget then invalid_arg "Wire.encode_repl_batches: record exceeds max_payload";
      if chunk_bytes + cost > budget && chunk <> [] then begin
        emit
          ~lsn:(match kind with Log -> next_lsn - chunk_n | Snap _ -> lsn)
          ~kind:(kind_of ~first_chunk ~last_chunk:false)
          (List.rev chunk);
        go ~first_chunk:false ~next_lsn pending [] 0 0
      end
      else
        go ~first_chunk
          ~next_lsn:(match kind with Log -> next_lsn + 1 | Snap _ -> next_lsn)
          rest (r :: chunk) (chunk_n + 1) (chunk_bytes + cost)
  in
  go ~first_chunk:true ~next_lsn:lsn records [] 0 0;
  List.rev !frames

(* -- decoding ------------------------------------------------------------ *)

exception Fail of string
exception Fail_version of int

type cur = { s : string; mutable pos : int; limit : int }

let need c n = if c.pos + n > c.limit then raise (Fail "truncated body")

let u8 c =
  need c 1;
  let v = String.get_uint8 c.s c.pos in
  c.pos <- c.pos + 1;
  v

let u16 c =
  need c 2;
  let v = String.get_uint16_be c.s c.pos in
  c.pos <- c.pos + 2;
  v

let u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.s c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let i64 c =
  need c 8;
  let v = String.get_int64_be c.s c.pos in
  c.pos <- c.pos + 8;
  v

let str16 c =
  let n = u16 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let str32 c =
  let n = u32 c in
  if n > max_payload then raise (Fail "oversized string length");
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_value c : Db.value =
  match u8 c with
  | 0 -> Null
  | 1 -> Int (Int64.to_int (i64 c))
  | 2 -> Float (Int64.float_of_bits (i64 c))
  | 3 -> Str (str32 c)
  | t -> raise (Fail (Printf.sprintf "unknown value tag %d" t))

let get_error c : Db.error =
  match u8 c with
  | 1 -> Bad_request (str32 c)
  | 2 -> Aborted (str32 c)
  | 3 -> Restart_limit (u32 c)
  | 4 ->
    let table = str16 c in
    let block = u32 c in
    let attempts = u32 c in
    Block_unavailable { table; block; attempts }
  | 5 ->
    let table = str16 c in
    let block = u32 c in
    let cause = str16 c in
    Block_lost { table; block; cause }
  | 6 -> Disconnected (str32 c)
  | 7 -> Read_only
  | t -> raise (Fail (Printf.sprintf "unknown error tag %d" t))

let get_msg c =
  let v = u8 c in
  if v <> version then raise (Fail_version v);
  let opcode = u8 c in
  let id = u32 c in
  let msg =
    if opcode = op_get then Request (Get (str16 c))
    else if opcode = op_put then
      let k = str16 c in
      Request (Put (k, get_value c))
    else if opcode = op_delete then Request (Delete (str16 c))
    else if opcode = op_scan then
      let k = str16 c in
      Request (Scan_from (k, u32 c))
    else if opcode = op_scan_agg then
      let fn : Db.agg_fn =
        match u8 c with
        | 0 -> Count
        | 1 -> Sum
        | 2 -> Min
        | 3 -> Max
        | 4 -> Avg
        | t -> raise (Fail (Printf.sprintf "unknown aggregate fn %d" t))
      in
      let lo = str16 c in
      let hi =
        match u8 c with
        | 0 -> None
        | 1 -> Some (str16 c)
        | t -> raise (Fail (Printf.sprintf "unknown option tag %d" t))
      in
      Request (Scan_agg { fn; lo; hi; group_prefix = u8 c })
    else if opcode = op_txn then
      let n = u16 c in
      Request
        (Txn
           (List.init n (fun _ ->
                match u8 c with
                | 1 ->
                  let k = str16 c in
                  (k, Some (get_value c))
                | 2 -> (str16 c, None)
                | t -> raise (Fail (Printf.sprintf "unknown txn op kind %d" t)))))
    else if opcode = op_value then
      Response
        (Value
           (match u8 c with
           | 0 -> None
           | 1 -> Some (get_value c)
           | t -> raise (Fail (Printf.sprintf "unknown option tag %d" t))))
    else if opcode = op_done then
      Response
        (Done
           (match u8 c with
           | 0 -> false
           | 1 -> true
           | t -> raise (Fail (Printf.sprintf "unknown bool %d" t))))
    else if opcode = op_entries then
      let n = u32 c in
      if n > max_payload then raise (Fail "oversized entry count");
      Response
        (Entries
           (List.init n (fun _ ->
                let k = str16 c in
                (k, get_value c))))
    else if opcode = op_aggregate then
      let rows_scanned = u32 c in
      let max_age_s = Int64.float_of_bits (i64 c) in
      let generation = u32 c in
      let n = u32 c in
      if n > max_payload then raise (Fail "oversized group count");
      let groups =
        List.init n (fun _ : Db.agg_group ->
            let g_key = str16 c in
            let g_count = Int64.to_int (i64 c) in
            let g_value = Int64.float_of_bits (i64 c) in
            { g_key; g_count; g_value })
      in
      Response (Aggregate { groups; rows_scanned; max_age_s; generation })
    else if opcode = op_failed then Response (Failed (get_error c))
    else if opcode = op_subscribe then begin
      let stream_id = Int64.to_int (i64 c) in
      let n = u16 c in
      if n > max_streams then raise (Fail "oversized stream count");
      let applied = Array.make n 0 in
      for i = 0 to n - 1 do
        applied.(i) <- Int64.to_int (i64 c)
      done;
      Subscribe { stream_id; applied }
    end
    else if opcode = op_repl_hello then
      let stream_id = Int64.to_int (i64 c) in
      let partitions = u16 c in
      Repl_hello
        {
          stream_id;
          partitions;
          resync =
            (match u8 c with
            | 0 -> false
            | 1 -> true
            | t -> raise (Fail (Printf.sprintf "unknown bool %d" t)));
        }
    else if opcode = op_repl_batch then
      let stream = u16 c in
      let lsn = Int64.to_int (i64 c) in
      let kind =
        match u8 c with
        | 0 -> Log
        | 1 ->
          let flags = u8 c in
          if flags land lnot 3 <> 0 then raise (Fail (Printf.sprintf "unknown snap flags %d" flags));
          Snap { first = flags land 1 <> 0; last = flags land 2 <> 0 }
        | t -> raise (Fail (Printf.sprintf "unknown batch kind %d" t))
      in
      let n = u32 c in
      if n > max_payload then raise (Fail "oversized record count");
      Repl_batch { stream; lsn; kind; records = List.init n (fun _ -> str32 c) }
    else if opcode = op_repl_ack then
      let stream = u16 c in
      Repl_ack { stream; lsn = Int64.to_int (i64 c) }
    else if opcode = op_repl_heartbeat then Repl_heartbeat
    else raise (Fail (Printf.sprintf "unknown opcode 0x%02x" opcode))
  in
  if c.pos <> c.limit then raise (Fail "trailing bytes in payload");
  (id, msg)

let decode_frame buf ~pos =
  let avail = String.length buf - pos in
  if avail < 4 then Error (Need_more (4 - avail))
  else
    (* the length field is signed on the wire: a negative declared length
       is rejected explicitly (not wrapped to a huge positive), so it can
       neither raise downstream nor turn into a bogus Need_more *)
    let len = Int32.to_int (String.get_int32_be buf pos) in
    if len < 0 || len > max_payload then Error (Frame_too_large len)
    else if avail < 4 + len + 4 then Error (Need_more ((4 + len + 4) - avail))
    else
      let stored = String.get_int32_be buf (pos + 4 + len) in
      if Crc32.update 0l buf (pos + 4) len <> stored then Error Bad_crc
      else
        let c = { s = buf; pos = pos + 4; limit = pos + 4 + len } in
        match get_msg c with
        | id, msg -> Ok (id, msg, (pos + 4 + len + 4) - pos)
        | exception Fail m -> Error (Bad_payload m)
        | exception Fail_version v -> Error (Bad_version v)

(* -- buffered socket IO -------------------------------------------------- *)

(* A peer may vanish between frames; without this, the first write into
   a half-closed socket kills the whole process instead of surfacing
   EPIPE to the caller's error path.  OCaml's [Unix.write] has no
   MSG_NOSIGNAL, so the disposition is per-process. *)
let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable off : int;  (* consumed prefix *)
  mutable len : int;  (* valid bytes *)
}

let reader fd = { fd; buf = Bytes.create 65536; off = 0; len = 0 }

let try_msg r =
  let s = Bytes.sub_string r.buf r.off (r.len - r.off) in
  match decode_frame s ~pos:0 with
  | Ok (id, msg, consumed) ->
    r.off <- r.off + consumed;
    if r.off = r.len then (
      r.off <- 0;
      r.len <- 0);
    `Msg (id, msg)
  | Error (Need_more _) -> `Nothing
  | Error e -> `Error e

let refill r =
  if r.off > 0 then (
    Bytes.blit r.buf r.off r.buf 0 (r.len - r.off);
    r.len <- r.len - r.off;
    r.off <- 0);
  if r.len = Bytes.length r.buf then begin
    let bigger = Bytes.create (2 * Bytes.length r.buf) in
    Bytes.blit r.buf 0 bigger 0 r.len;
    r.buf <- bigger
  end;
  let rec read_once () =
    match Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_once ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
  in
  let n = read_once () in
  r.len <- r.len + n;
  n

let write_frame fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write_substring fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  len
