(** The apply side of streaming replication (DESIGN.md §15).

    Feeds a read-only {!Db} from a primary's replication stream: a
    driver thread connects, subscribes with the replica's last applied
    LSN per stream, and applies arriving record batches on the owning
    partitions' domains — [Commit] records directly, [Prepare] records
    once the decision stream carries their [Decide] (presumed abort).
    The primary either resumes the tail from our positions or, when it
    cannot (fresh replica, restarted primary, retention ring outrun),
    sends a full state snapshot, which the replica applies over cleared
    tables.

    Acks are sent after application, so a primary running semi-sync
    ([sync_replicas > 0]) acknowledges its clients only once the write
    is applied here — after a primary failure, every acknowledged write
    is readable on the replica.

    Lost connections reconnect with exponential backoff and resume
    idempotently from the last applied LSN.  The replica keeps serving
    reads throughout; writes are rejected by the read-only {!Db}
    ({!Db.error.Read_only}). *)

type t

val start : host:string -> port:int -> db:Db.t -> unit -> t
(** Start replicating from the primary at [host:port] into [db] — which
    must be this replica's own {!Db} (created [~read_only:true], no
    [wal_dir]); the replica applies through its router, bypassing the
    read-only request surface.  Returns immediately; {!connected} turns
    true once the primary accepts the subscription. *)

val db : t -> Db.t

val connected : t -> bool
(** A hello has been received on the currently live connection. *)

val stream_id : t -> int
(** The primary boot last attached to; [0] before the first hello. *)

val applied : t -> int array
(** Last applied LSN per stream ([-1] = nothing); index [i] is
    partition [i], the last index the coordinator decision log. *)

val resyncing : t -> bool
(** A snapshot resync is still in flight: some stream has not yet
    applied its final snapshot chunk.  While set, a reconnect
    re-subscribes with nothing resumable (forcing a fresh snapshot)
    rather than resuming on top of a partially-applied one. *)

val fatal : t -> string option
(** Set when replication cannot proceed by retrying (partition-count
    mismatch, or an exception escaping the apply path); the driver has
    given up. *)

val decided_size : t -> int
(** 2PC decisions currently held (pruned at decision-stream Marks). *)

val stash_size : t -> int
(** Transactions with stashed undecided Prepare records (flushed by
    their Decide, or dropped as aborted at a Mark). *)

val disconnect : t -> unit
(** Drop the current connection (test hook): the driver reconnects with
    backoff and resumes from the last applied positions. *)

val stop : t -> unit
(** Stop the driver and join it.  The {!Db} stays open and readable. *)
