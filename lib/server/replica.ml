(* Streaming-replication apply side (DESIGN.md §15).

   A replica owns a read-only {!Db} and a driver thread that keeps one
   connection to the primary: connect, send [Subscribe] with the last
   applied LSN per stream, then apply whatever arrives.  The primary
   answers with [Repl_hello] — [resync = false] resumes the tail from
   our positions, [resync = true] means a full state snapshot follows
   (fresh replica, a restarted primary, or positions that fell out of
   the retention ring), so the replica clears every table first.

   Application runs on the owning partition's domain ([Partition.post] +
   a future), exactly like the primary's execution model: stream [i]
   feeds partition [i], stream [partitions] is the coordinator decision
   log.  [Commit] records apply directly; a [Prepare] applies only once
   its transaction's [Decide] has been seen on the decision stream —
   until then it is stashed, mirroring presumed abort.  Replay is
   idempotent (upsert semantics), which absorbs the overlap between a
   snapshot and records group-committed while it was being cut.

   Acks are cumulative per stream and sent only after the records are
   applied, so with [sync_replicas > 0] the primary's group commit
   waits for application, not mere receipt — the zero-loss-failover
   guarantee the netbench scenario exercises.

   Any protocol inconsistency (LSN gap, foreign stream, decode error)
   drops the connection; the reconnect resumes or resyncs as the
   primary decides.  Reconnects back off exponentially (50 ms doubling
   to 1 s, reset on a successful hello).  A partition-count mismatch is
   fatal: it cannot heal by retrying. *)

module Future = Hi_shard.Future
module Router = Hi_shard.Router
module Partition = Hi_shard.Partition
module Engine = Hi_hstore.Engine
module Redo = Hi_hstore.Redo
module Metrics = Hi_util.Metrics

let mscope = Metrics.scope "replica"
let m_applied = Metrics.counter mscope "records_applied"
let m_resyncs = Metrics.counter mscope "resyncs"
let m_reconnects = Metrics.counter mscope "reconnects"

let backoff_base_s = 0.05
let backoff_cap_s = 1.0

type t = {
  db : Db.t;
  host : string;
  port : int;
  lock : Mutex.t; (* guards fd, stream_id, applied, connected, fatal *)
  mutable fd : Unix.file_descr option;
  mutable stream_id : int; (* primary boot id; 0 = never attached *)
  mutable applied : int array; (* per stream, -1 = nothing applied *)
  mutable connected : bool; (* hello received on the live connection *)
  mutable fatal : string option;
  mutable stopping : bool;
  mutable driver : Thread.t option;
  decided : (int, unit) Hashtbl.t; (* 2PC decisions seen *)
  stash : (int, (int * string) list) Hashtbl.t;
      (* txn -> undecided Prepare records (stream, record), newest first *)
}

exception Drop of string

let dbg fmt =
  if Sys.getenv_opt "HI_REPL_DEBUG" <> None then Printf.eprintf fmt
  else Printf.ifprintf stderr fmt

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* -- applying records on partition domains ------------------------------- *)

let on_partition t p f =
  let fut = Future.create () in
  Partition.post
    (Router.partition (Db.router t.db) p)
    (fun engine -> Future.fill fut (try Ok (f engine) with e -> Error e));
  match Future.await fut with Ok v -> v | Error e -> raise e

let reset t =
  Metrics.incr m_resyncs;
  for p = 0 to Db.num_partitions t.db - 1 do
    on_partition t p Engine.clear_tables
  done;
  Hashtbl.reset t.decided;
  Hashtbl.reset t.stash

(* Partition stream: apply Commits and decided Prepares in arrival
   order; stash undecided Prepares until the decision stream names
   them.  The replica's decision is final by the time it applies, so
   replay's [decided] predicate is constant. *)
let apply_partition t p records =
  let to_apply =
    List.filter
      (fun r ->
        match Redo.decode r with
        | Ok (Redo.Commit _) -> true
        | Ok (Redo.Prepare { txn; _ }) ->
          Hashtbl.mem t.decided txn
          ||
          (Hashtbl.replace t.stash txn
             ((p, r) :: Option.value ~default:[] (Hashtbl.find_opt t.stash txn));
           false)
        | Ok (Redo.Decide _) | Error _ -> false)
      records
  in
  if to_apply <> [] then
    on_partition t p (fun engine ->
        ignore (Engine.replay engine ~decided:(fun _ -> true) to_apply));
  Metrics.add m_applied (List.length records)

(* Decision stream: record the decision and flush any stashed Prepares
   it unblocks, oldest first. *)
let apply_coord t records =
  List.iter
    (fun r ->
      match Redo.decode r with
      | Ok (Redo.Decide { txn }) -> (
        Hashtbl.replace t.decided txn ();
        match Hashtbl.find_opt t.stash txn with
        | Some entries ->
          Hashtbl.remove t.stash txn;
          List.iter
            (fun (p, record) ->
              on_partition t p (fun engine ->
                  ignore (Engine.replay engine ~decided:(fun _ -> true) [ record ])))
            (List.rev entries)
        | None -> ())
      | Ok _ | Error _ -> ())
    records;
  Metrics.add m_applied (List.length records)

(* -- one connection's lifetime ------------------------------------------- *)

let run_connection t fd =
  let rd = Wire.reader fd in
  let subscribe =
    locked t (fun () ->
        Wire.encode_msg ~id:0
          (Wire.Subscribe { stream_id = t.stream_id; applied = Array.copy t.applied }))
  in
  ignore (Wire.write_frame fd subscribe);
  let partitions = Db.num_partitions t.db in
  let streams = partitions + 1 in
  let ack stream lsn =
    ignore (Wire.write_frame fd (Wire.encode_msg ~id:0 (Wire.Repl_ack { stream; lsn })))
  in
  let apply stream records =
    if stream = partitions then apply_coord t records else apply_partition t stream records
  in
  let handle = function
    | Wire.Repl_hello { stream_id; partitions = pp; resync } ->
      if pp <> partitions then begin
        locked t (fun () ->
            t.fatal <-
              Some (Printf.sprintf "primary has %d partitions, this replica %d" pp partitions));
        raise (Drop "partition count mismatch")
      end;
      dbg "[replica] hello stream_id=%d resync=%b\n%!" stream_id resync;
      if resync then begin
        reset t;
        locked t (fun () ->
            t.stream_id <- stream_id;
            t.applied <- Array.make streams (-1))
      end;
      locked t (fun () -> t.connected <- true)
    | Wire.Repl_batch { stream; lsn; kind; records } -> (
      if stream < 0 || stream >= streams then raise (Drop "stream out of range");
      match kind with
      | Wire.Log ->
        dbg "[replica] log stream=%d lsn=%d n=%d applied=%d\n%!" stream lsn
          (List.length records) t.applied.(stream);
        if records <> [] then begin
          let expect = t.applied.(stream) + 1 in
          if lsn <> expect then
            raise
              (Drop (Printf.sprintf "stream %d: got lsn %d, expected %d" stream lsn expect));
          apply stream records;
          let last = lsn + List.length records - 1 in
          locked t (fun () -> t.applied.(stream) <- last);
          ack stream last
        end
      | Wire.Snap { first = _; last } ->
        dbg "[replica] snap stream=%d lsn=%d n=%d last=%b\n%!" stream lsn
          (List.length records) last;
        apply stream records;
        if last then begin
          locked t (fun () -> t.applied.(stream) <- lsn);
          ack stream lsn
        end)
    | Wire.Repl_heartbeat -> ()
    | Wire.Response (Db.Failed e) -> raise (Drop (Db.error_to_string e))
    | Wire.Response _ | Wire.Request _ | Wire.Subscribe _ | Wire.Repl_ack _ ->
      raise (Drop "unexpected frame")
  in
  let rec loop () =
    if not t.stopping then
      match Wire.try_msg rd with
      | `Msg (_, msg) ->
        handle msg;
        loop ()
      | `Error e -> raise (Drop (Wire.error_to_string e))
      | `Nothing -> (
        match Wire.refill rd with
        | 0 -> raise (Drop "connection closed")
        | _ -> loop ())
  in
  loop ()

(* -- driver --------------------------------------------------------------- *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) -> raise (Drop (Printf.sprintf "cannot resolve %s" host)))

let try_connect t =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (resolve t.host, t.port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | fd ->
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    locked t (fun () -> t.fd <- Some fd);
    Some fd
  | exception (Unix.Unix_error _ | Drop _) -> None

let driver t =
  let backoff = ref backoff_base_s in
  while (not t.stopping) && Option.is_none (locked t (fun () -> t.fatal)) do
    (match try_connect t with
    | None -> ()
    | Some fd ->
      Metrics.incr m_reconnects;
      (try run_connection t fd with Drop _ | Unix.Unix_error _ -> ());
      let was_connected =
        locked t (fun () ->
            let w = t.connected in
            t.connected <- false;
            t.fd <- None;
            w)
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if was_connected then backoff := backoff_base_s);
    if not t.stopping then begin
      Thread.delay !backoff;
      backoff := Float.min backoff_cap_s (!backoff *. 2.0)
    end
  done

(* -- lifecycle & observation --------------------------------------------- *)

let start ~host ~port ~db () =
  Wire.ignore_sigpipe ();
  let t =
    {
      db;
      host;
      port;
      lock = Mutex.create ();
      fd = None;
      stream_id = 0;
      applied = Array.make (Db.num_partitions db + 1) (-1);
      connected = false;
      fatal = None;
      stopping = false;
      driver = None;
      decided = Hashtbl.create 64;
      stash = Hashtbl.create 16;
    }
  in
  t.driver <- Some (Thread.create driver t);
  t

let db t = t.db
let connected t = locked t (fun () -> t.connected)
let stream_id t = locked t (fun () -> t.stream_id)
let applied t = locked t (fun () -> Array.copy t.applied)
let fatal t = locked t (fun () -> t.fatal)

let disconnect t =
  locked t (fun () ->
      match t.fd with
      | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      | None -> ())

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    disconnect t;
    Option.iter Thread.join t.driver
  end
