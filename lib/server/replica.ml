(* Streaming-replication apply side (DESIGN.md §15).

   A replica owns a read-only {!Db} and a driver thread that keeps one
   connection to the primary: connect, send [Subscribe] with the last
   applied LSN per stream, then apply whatever arrives.  The primary
   answers with [Repl_hello] — [resync = false] resumes the tail from
   our positions, [resync = true] means a full state snapshot follows
   (fresh replica, a restarted primary, or positions that fell out of
   the retention ring), so the replica clears every table first.

   A resync is not done until every stream's snapshot is: the replica
   adopts the primary's [stream_id] at the hello, but keeps a
   "resyncing" flag raised until each stream has applied its
   [Snap last=true].  A connection lost mid-snapshot reconnects with
   nothing resumable (stream_id 0), forcing a fresh snapshot — resuming
   on the adopted positions would go live with the undelivered snapshot
   rows silently missing.

   Application runs on the owning partition's domain ([Partition.post] +
   a future), exactly like the primary's execution model: stream [i]
   feeds partition [i], stream [partitions] is the coordinator decision
   log.  [Commit] records apply directly; a [Prepare] applies only once
   its transaction's [Decide] has been seen on the decision stream —
   until then it is stashed, mirroring presumed abort.  [Mark] records
   bound both bookkeeping tables: a mark certifies every 2PC txn below
   its low-water finished, so still-undecided stashed Prepares below it
   were aborted (dropped) and decisions below it can be pruned.  Replay
   is idempotent (upsert semantics), which absorbs the overlap between a
   snapshot and records group-committed while it was being cut.

   Acks are cumulative per stream and sent only after the records are
   applied, so with [sync_replicas > 0] the primary's group commit
   waits for application, not mere receipt — the zero-loss-failover
   guarantee the netbench scenario exercises.

   Any protocol inconsistency (LSN gap, foreign stream, decode error)
   drops the connection; the reconnect resumes or resyncs as the
   primary decides.  Reconnects back off exponentially (50 ms doubling
   to 1 s, reset on a successful hello).  A partition-count mismatch,
   or any exception escaping the apply path (the replica's own state is
   then suspect — retrying would replay into it), is fatal: the driver
   gives up and reports through [fatal]. *)

module Future = Hi_shard.Future
module Router = Hi_shard.Router
module Partition = Hi_shard.Partition
module Engine = Hi_hstore.Engine
module Redo = Hi_hstore.Redo
module Metrics = Hi_util.Metrics

let mscope = Metrics.scope "replica"
let m_applied = Metrics.counter mscope "records_applied"
let m_resyncs = Metrics.counter mscope "resyncs"
let m_reconnects = Metrics.counter mscope "reconnects"

let backoff_base_s = 0.05
let backoff_cap_s = 1.0

type t = {
  db : Db.t;
  host : string;
  port : int;
  lock : Mutex.t; (* guards fd, stream_id, applied, connected, fatal, resyncing *)
  mutable fd : Unix.file_descr option;
  mutable stream_id : int; (* primary boot id; 0 = never attached *)
  mutable applied : int array; (* per stream, -1 = nothing applied *)
  mutable connected : bool; (* hello received on the live connection *)
  mutable resyncing : bool;
      (* a snapshot resync is in flight: some stream has not yet applied
         its [Snap last=true].  Until every stream has, the adopted
         [stream_id]/[applied] must not be presented as resumable — a
         reconnect mid-snapshot would otherwise resume on top of a
         partially-applied snapshot and silently drop the undelivered
         rows — so the subscribe sent while this is set forces a fresh
         snapshot instead. *)
  mutable snap_pending : bool array; (* per stream: Snap last=true still owed *)
  mutable fatal : string option;
  mutable stopping : bool;
  mutable driver : Thread.t option;
  decided : (int, unit) Hashtbl.t; (* 2PC decisions seen, pruned at Marks *)
  stash : (int, (int * string) list) Hashtbl.t;
      (* txn -> undecided Prepare records (stream, record), newest first;
         aborted transactions' entries are dropped at Marks *)
}

exception Drop of string

let dbg fmt =
  if Sys.getenv_opt "HI_REPL_DEBUG" <> None then Printf.eprintf fmt
  else Printf.ifprintf stderr fmt

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* -- applying records on partition domains ------------------------------- *)

let on_partition t p f =
  let fut = Future.create () in
  Partition.post
    (Router.partition (Db.router t.db) p)
    (fun engine -> Future.fill fut (try Ok (f engine) with e -> Error e));
  match Future.await fut with Ok v -> v | Error e -> raise e

let reset t =
  Metrics.incr m_resyncs;
  for p = 0 to Db.num_partitions t.db - 1 do
    on_partition t p Engine.clear_tables
  done;
  Hashtbl.reset t.decided;
  Hashtbl.reset t.stash

(* Partition stream: apply Commits and decided Prepares in arrival
   order; stash undecided Prepares until the decision stream names
   them.  The replica's decision is final by the time it applies, so
   replay's [decided] predicate is constant. *)
let apply_partition t p records =
  let to_apply =
    List.filter
      (fun r ->
        match Redo.decode r with
        | Ok (Redo.Commit _) -> true
        | Ok (Redo.Prepare { txn; _ }) ->
          Hashtbl.mem t.decided txn
          ||
          (Hashtbl.replace t.stash txn
             ((p, r) :: Option.value ~default:[] (Hashtbl.find_opt t.stash txn));
           false)
        | Ok (Redo.Decide _ | Redo.Mark _) | Error _ -> false)
      records
  in
  if to_apply <> [] then
    on_partition t p (fun engine ->
        ignore (Engine.replay engine ~decided:(fun _ -> true) to_apply));
  Metrics.add m_applied (List.length records)

(* Decision stream: record each decision and flush any stashed Prepares
   it unblocks, oldest first.  A [Mark {low}] certifies every 2PC txn
   below [low] finished; because the stream delivers records in publish
   order (live and replayed gaps alike), any decision below [low] has
   already been seen, so a stashed Prepare still undecided at the mark
   was aborted — drop it — and decided entries below [low] can no longer
   be needed by a future Prepare — prune them.  Marks are what keep both
   tables bounded on a long-running replica. *)
let apply_coord t records =
  List.iter
    (fun r ->
      match Redo.decode r with
      | Ok (Redo.Decide { txn }) -> (
        Hashtbl.replace t.decided txn ();
        match Hashtbl.find_opt t.stash txn with
        | Some entries ->
          Hashtbl.remove t.stash txn;
          List.iter
            (fun (p, record) ->
              on_partition t p (fun engine ->
                  ignore (Engine.replay engine ~decided:(fun _ -> true) [ record ])))
            (List.rev entries)
        | None -> ())
      | Ok (Redo.Mark { low }) ->
        let prune tbl =
          let stale = Hashtbl.fold (fun txn _ acc -> if txn < low then txn :: acc else acc) tbl [] in
          List.iter (Hashtbl.remove tbl) stale
        in
        prune t.decided;
        prune t.stash
      | Ok _ | Error _ -> ())
    records;
  Metrics.add m_applied (List.length records)

(* -- one connection's lifetime ------------------------------------------- *)

let run_connection t fd =
  let rd = Wire.reader fd in
  let subscribe =
    locked t (fun () ->
        if t.resyncing then
          (* the previous connection died mid-snapshot: the adopted
             stream_id/positions describe a partially-applied snapshot,
             so present nothing resumable — force a fresh snapshot *)
          Wire.encode_msg ~id:0 (Wire.Subscribe { stream_id = 0; applied = [||] })
        else
          Wire.encode_msg ~id:0
            (Wire.Subscribe { stream_id = t.stream_id; applied = Array.copy t.applied }))
  in
  ignore (Wire.write_frame fd subscribe);
  let partitions = Db.num_partitions t.db in
  let streams = partitions + 1 in
  let ack stream lsn =
    ignore (Wire.write_frame fd (Wire.encode_msg ~id:0 (Wire.Repl_ack { stream; lsn })))
  in
  let apply stream records =
    if stream = partitions then apply_coord t records else apply_partition t stream records
  in
  let handle = function
    | Wire.Repl_hello { stream_id; partitions = pp; resync } ->
      if pp <> partitions then begin
        locked t (fun () ->
            t.fatal <-
              Some (Printf.sprintf "primary has %d partitions, this replica %d" pp partitions));
        raise (Drop "partition count mismatch")
      end;
      dbg "[replica] hello stream_id=%d resync=%b\n%!" stream_id resync;
      if resync then begin
        locked t (fun () ->
            t.resyncing <- true;
            t.snap_pending <- Array.make streams true;
            t.stream_id <- stream_id;
            t.applied <- Array.make streams (-1));
        reset t
      end
      else if locked t (fun () -> t.resyncing) then
        (* we subscribed with nothing resumable; a resume answer means
           the primary is not following the protocol *)
        raise (Drop "primary resumed a mid-resync subscription");
      locked t (fun () -> t.connected <- true)
    | Wire.Repl_batch { stream; lsn; kind; records } -> (
      if stream < 0 || stream >= streams then raise (Drop "stream out of range");
      match kind with
      | Wire.Log ->
        dbg "[replica] log stream=%d lsn=%d n=%d applied=%d\n%!" stream lsn
          (List.length records) t.applied.(stream);
        if records <> [] then begin
          let expect = t.applied.(stream) + 1 in
          if lsn <> expect then
            raise
              (Drop (Printf.sprintf "stream %d: got lsn %d, expected %d" stream lsn expect));
          apply stream records;
          let last = lsn + List.length records - 1 in
          locked t (fun () -> t.applied.(stream) <- last);
          ack stream last
        end
      | Wire.Snap { first = _; last } ->
        dbg "[replica] snap stream=%d lsn=%d n=%d last=%b\n%!" stream lsn
          (List.length records) last;
        apply stream records;
        if last then begin
          locked t (fun () ->
              t.applied.(stream) <- lsn;
              (* the resync holds until every stream's snapshot has
                 fully applied; only then are the adopted positions a
                 truthful resume point *)
              if t.resyncing then begin
                t.snap_pending.(stream) <- false;
                if Array.for_all not t.snap_pending then t.resyncing <- false
              end);
          ack stream lsn
        end)
    | Wire.Repl_heartbeat -> ()
    | Wire.Response (Db.Failed e) -> raise (Drop (Db.error_to_string e))
    | Wire.Response _ | Wire.Request _ | Wire.Subscribe _ | Wire.Repl_ack _ ->
      raise (Drop "unexpected frame")
  in
  let rec loop () =
    if not t.stopping then
      match Wire.try_msg rd with
      | `Msg (_, msg) ->
        handle msg;
        loop ()
      | `Error e -> raise (Drop (Wire.error_to_string e))
      | `Nothing -> (
        match Wire.refill rd with
        | 0 -> raise (Drop "connection closed")
        | _ -> loop ())
  in
  loop ()

(* -- driver --------------------------------------------------------------- *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) -> raise (Drop (Printf.sprintf "cannot resolve %s" host)))

let try_connect t =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (resolve t.host, t.port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | fd ->
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    locked t (fun () -> t.fd <- Some fd);
    Some fd
  | exception (Unix.Unix_error _ | Drop _) -> None

let driver t =
  let backoff = ref backoff_base_s in
  while (not t.stopping) && Option.is_none (locked t (fun () -> t.fatal)) do
    (match try_connect t with
    | None -> ()
    | Some fd ->
      Metrics.incr m_reconnects;
      (try run_connection t fd with
      | Drop _ | Unix.Unix_error _ -> () (* protocol/socket trouble: reconnect *)
      | e ->
        (* anything else escaped the apply path — a partition job
           failure, [Mailbox.Closed] from a stopped Db.  Retrying would
           re-apply the same records into the same broken state, so
           surface it through [fatal] instead of dying silently with
           [connected] stuck true and the driver thread gone. *)
        dbg "[replica] apply failed: %s\n%!" (Printexc.to_string e);
        locked t (fun () ->
            if t.fatal = None then t.fatal <- Some ("apply failed: " ^ Printexc.to_string e)));
      let was_connected =
        locked t (fun () ->
            let w = t.connected in
            t.connected <- false;
            t.fd <- None;
            w)
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if was_connected then backoff := backoff_base_s);
    if not t.stopping then begin
      Thread.delay !backoff;
      backoff := Float.min backoff_cap_s (!backoff *. 2.0)
    end
  done

(* -- lifecycle & observation --------------------------------------------- *)

let start ~host ~port ~db () =
  Wire.ignore_sigpipe ();
  let t =
    {
      db;
      host;
      port;
      lock = Mutex.create ();
      fd = None;
      stream_id = 0;
      applied = Array.make (Db.num_partitions db + 1) (-1);
      connected = false;
      resyncing = false;
      snap_pending = [||];
      fatal = None;
      stopping = false;
      driver = None;
      decided = Hashtbl.create 64;
      stash = Hashtbl.create 16;
    }
  in
  t.driver <- Some (Thread.create driver t);
  t

let db t = t.db
let connected t = locked t (fun () -> t.connected)
let stream_id t = locked t (fun () -> t.stream_id)
let applied t = locked t (fun () -> Array.copy t.applied)
let resyncing t = locked t (fun () -> t.resyncing)
let fatal t = locked t (fun () -> t.fatal)

(* Driver-thread tables read without the lock: sizes are instantaneous
   observations for tests and health reporting, not a synchronized
   snapshot. *)
let decided_size t = Hashtbl.length t.decided
let stash_size t = Hashtbl.length t.stash

let disconnect t =
  locked t (fun () ->
      match t.fd with
      | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      | None -> ())

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    disconnect t;
    Option.iter Thread.join t.driver
  end
