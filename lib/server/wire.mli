(** The binary wire protocol of the TCP transport (DESIGN.md §12).

    Every message travels in one frame:

    {v
      u32 BE payload length | payload | u32 BE CRC-32 (IEEE) of payload
    v}

    and every payload opens with a protocol-version byte ({!version}),
    an opcode byte and a u32 BE request id, followed by the opcode's
    body.  Request opcodes are [0x01]–[0x05] (Get, Put, Delete,
    Scan_from, Txn); response opcodes are the request range with the
    high bit set, [0x81]–[0x84] (Value, Done, Entries, Failed).  Ints
    ride as 8-byte big-endian two's complement, floats as their IEEE-754
    bits, strings as a u16 or u32 BE length followed by the bytes.

    Decoding is strict: a frame with an unknown version, a CRC mismatch,
    an unknown opcode/tag, a declared length past {!max_payload} or a
    body that does not parse exactly to the payload's end is an {!error},
    not a guess.  {!decode_frame} never raises and never reads past the
    declared frame, so a corrupted length cannot desynchronize the
    stream beyond the one frame it lies about. *)

val version : int
(** Protocol version byte, currently [1]. *)

val max_payload : int
(** Largest accepted payload (1 MiB); {!decode_frame} rejects bigger
    declared lengths without buffering them. *)

type msg = Request of Db.request | Response of Db.response

(** Why bytes failed to decode.  [Need_more n] is not a protocol error:
    at least [n] more bytes are required before the frame can be
    judged. *)
type error =
  | Need_more of int
  | Bad_version of int
  | Bad_crc
  | Bad_payload of string
  | Frame_too_large of int

val error_to_string : error -> string

val encode_request : id:int -> Db.request -> string
(** A complete frame carrying the request under id [id land 0xffffffff]. *)

val encode_response : id:int -> Db.response -> string

val decode_frame : string -> pos:int -> (int * msg * int, error) result
(** [decode_frame buf ~pos] parses one frame starting at [pos],
    returning [(id, msg, next_pos)]. *)

(** {1 Buffered socket IO}

    A thin reader over a file descriptor, split so callers can drain
    already-buffered frames before deciding to block: the server flushes
    its batching window exactly when {!try_msg} says nothing more is
    decodable. *)

type reader

val reader : Unix.file_descr -> reader

val try_msg : reader -> [ `Msg of int * msg | `Nothing | `Error of error ]
(** Decode one frame from buffered bytes only; [`Nothing] means an
    incomplete frame is (possibly) pending and {!refill} must run. *)

val refill : reader -> int
(** Blocking read appending to the buffer; returns the byte count, [0]
    at EOF. *)

val write_frame : Unix.file_descr -> string -> int
(** Write the whole frame (looping over short writes); returns its
    length. *)
