(** The binary wire protocol of the TCP transport (DESIGN.md §12).

    Every message travels in one frame:

    {v
      u32 BE payload length | payload | u32 BE CRC-32 (IEEE) of payload
    v}

    and every payload opens with a protocol-version byte ({!version}),
    an opcode byte and a u32 BE request id, followed by the opcode's
    body.  Request opcodes are [0x01]–[0x05] (Get, Put, Delete,
    Scan_from, Txn); response opcodes are the request range with the
    high bit set, [0x81]–[0x84] (Value, Done, Entries, Failed).  Ints
    ride as 8-byte big-endian two's complement, floats as their IEEE-754
    bits, strings as a u16 or u32 BE length followed by the bytes.

    Replication (DESIGN.md §15) adds follower-to-primary opcodes [0x06]
    (subscribe from applied LSNs) and [0x07] (cumulative ack) and
    primary-to-follower opcodes [0x85] (hello), [0x86] (record batch)
    and [0x87] (heartbeat).

    Decoding is strict: a frame with an unknown version, a CRC mismatch,
    an unknown opcode/tag, a declared length past {!max_payload} or a
    body that does not parse exactly to the payload's end is an {!error},
    not a guess.  {!decode_frame} never raises and never reads past the
    declared frame, so a corrupted length cannot desynchronize the
    stream beyond the one frame it lies about. *)

val version : int
(** Protocol version byte, currently [1]. *)

val max_payload : int
(** Largest accepted payload (1 MiB); {!decode_frame} rejects bigger
    declared lengths without buffering them. *)

val max_streams : int
(** Largest accepted replication stream count (partitions + coordinator)
    in a [Subscribe]; a decoded count past this is a {!error}. *)

(** How a {!msg.Repl_batch}'s records are meant to be applied. *)
type repl_kind =
  | Log  (** tail of the live log: records follow the previous LSN *)
  | Snap of { first : bool; last : bool }
      (** slice of a full-state snapshot; [first]/[last] mark the
          stream's snapshot boundaries, and the batch's [lsn] is the
          stream position the finished snapshot is equivalent to *)

type msg =
  | Request of Db.request
  | Response of Db.response
  | Subscribe of { stream_id : int; applied : int array }
      (** replica → primary: attach to the replication feed, resuming
          after [applied.(stream)] per stream when the primary's
          [stream_id] matches and every gap is still retained *)
  | Repl_hello of { stream_id : int; partitions : int; resync : bool }
      (** primary → replica: feed accepted; [resync] means the applied
          positions could not be honoured and a full snapshot follows *)
  | Repl_batch of { stream : int; lsn : int; kind : repl_kind; records : string list }
      (** committed redo records for one stream; [lsn] is the first
          record's LSN for [Log], the equivalent position for [Snap] *)
  | Repl_ack of { stream : int; lsn : int }
      (** replica → primary: everything up to [lsn] applied (cumulative) *)
  | Repl_heartbeat  (** primary → replica keep-alive *)

(** Why bytes failed to decode.  [Need_more n] is not a protocol error:
    at least [n] more bytes are required before the frame can be
    judged. *)
type error =
  | Need_more of int
  | Bad_version of int
  | Bad_crc
  | Bad_payload of string
  | Frame_too_large of int

val error_to_string : error -> string

val encode_request : id:int -> Db.request -> string
(** A complete frame carrying the request under id [id land 0xffffffff]. *)

val encode_response : id:int -> Db.response -> string

val encode_msg : id:int -> msg -> string
(** A complete frame for any message, replication opcodes included. *)

val encode_repl_batches :
  stream:int -> lsn:int -> kind:repl_kind -> string list -> string list
(** Encode records as one or more [Repl_batch] frames, each under
    {!max_payload}.  [Log] chunks advance the LSN by the records consumed
    so each frame is a self-contained tail segment; [Snap] chunks share
    the equivalent position and spread the [first]/[last] markers over
    the first and final chunk.  An empty record list still yields one
    frame (an empty snapshot stream must deliver its markers).
    @raise Invalid_argument if a single record exceeds the frame
    budget. *)

val decode_frame : string -> pos:int -> (int * msg * int, error) result
(** [decode_frame buf ~pos] parses one frame starting at [pos],
    returning [(id, msg, next_pos)]. *)

(** {1 Buffered socket IO}

    A thin reader over a file descriptor, split so callers can drain
    already-buffered frames before deciding to block: the server flushes
    its batching window exactly when {!try_msg} says nothing more is
    decodable. *)

val ignore_sigpipe : unit -> unit
(** Set the process-wide SIGPIPE disposition to ignore, so a write into
    a peer-closed socket raises [EPIPE] instead of killing the process.
    Called by {!Server.start}, {!Client.connect} and {!Replica.start};
    a no-op where the signal does not exist. *)

type reader

val reader : Unix.file_descr -> reader

val try_msg : reader -> [ `Msg of int * msg | `Nothing | `Error of error ]
(** Decode one frame from buffered bytes only; [`Nothing] means an
    incomplete frame is (possibly) pending and {!refill} must run. *)

val refill : reader -> int
(** Blocking read appending to the buffer; returns the byte count, [0]
    at EOF. *)

val write_frame : Unix.file_descr -> string -> int
(** Write the whole frame (looping over short writes); returns its
    length. *)
