(** Pipelining TCP client for the {!Wire} protocol (DESIGN.md §12).

    {!send} assigns a request id, writes the frame and returns a ticket
    immediately; a background reader thread matches response frames to
    tickets by id, so many requests ride the connection concurrently and
    complete in whatever order the server finishes them.  {!call} is the
    synchronous convenience ([send] then [await]).

    The client never raises on transport failure after connecting: when
    the connection drops or the server sends bytes that do not decode,
    every outstanding and future ticket resolves to
    [Failed (Disconnected _)]. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** @raise Unix.Unix_error when the TCP connect itself fails. *)

type ticket

val send : t -> Db.request -> ticket
val await : ticket -> Db.response

val call : t -> Db.request -> Db.response

val pending : t -> int
(** Requests sent whose responses have not yet arrived. *)

val close : t -> unit
(** Shut the connection down and join the reader thread; outstanding
    tickets resolve to [Failed (Disconnected _)].  Idempotent. *)
