(* Pipelined wire-protocol server over the shard router (DESIGN.md §12).

   Threading: the accept loop owns a domain; every connection gets a
   reader thread (decode + dispatch) and a writer thread (serialize +
   send), both on the accept domain — they only parse and shuffle bytes,
   all engine work runs on the partition domains.  The reader feeds
   single-partition requests through a per-connection Shard_runner.Window
   (one producer per window, as required), with completion callbacks on
   partition domains pushing responses into the writer's mailbox, which
   serializes writes without a lock.  Responses are matched to requests
   by id, never by order.

   Backpressure is a counting semaphore: the reader acquires per request,
   the writer releases per response.  At the cap the reader stops reading
   the socket, TCP fills, and the client blocks — bounded memory per
   connection by construction.

   Order: before running a scan or multi-partition transaction inline,
   the reader flushes its window.  Partition mailboxes are FIFO, so
   everything this connection already submitted lands before the fan-out
   bodies — per-connection program order without draining.

   Replication (DESIGN.md §15): a connection sending [Subscribe] becomes
   a follower of the router's {!Hi_wal.Repl_tap}.  The tap's push
   callback encodes batches into pre-framed bytes on the publishing
   partition's domain and enqueues them on this connection's writer
   mailbox, interleaving with ordinary responses; replication frames do
   not consume the request semaphore.  Their flow control is a
   per-connection byte high-water mark instead: queued replication
   bytes are tracked, and a follower that stops draining its socket
   (live batches keep arriving, nothing gets written) is detached and
   disconnected at [repl_queue_bytes] rather than buffering the stream
   in primary memory without bound — it reconnects and the tap resumes
   or resyncs it.  A follower
   the tap cannot resume gets a full snapshot: one job per partition —
   posted to the partition's own mailbox, so the enumeration and the
   stream activation are atomic against that partition's commits — plus
   the coordinator decision log under the coordinator lock. *)

open Hi_util
module Shard_runner = Hi_shard.Shard_runner
module Mailbox = Hi_shard.Mailbox
module Router = Hi_shard.Router
module Partition = Hi_shard.Partition
module Repl_tap = Hi_wal.Repl_tap
module Engine = Hi_hstore.Engine

type handles = {
  connections_total : Metrics.counter;
  active_connections : Metrics.gauge;
  frames_in : Metrics.counter;
  frames_out : Metrics.counter;
  bytes_in : Metrics.counter;
  bytes_out : Metrics.counter;
  protocol_errors : Metrics.counter;
  repl_overflows : Metrics.counter;
  lat_get : Metrics.histogram;
  lat_put : Metrics.histogram;
  lat_delete : Metrics.histogram;
  lat_scan : Metrics.histogram;
  lat_scan_agg : Metrics.histogram;
  lat_txn : Metrics.histogram;
}

let handles () =
  let s = Metrics.scope "server" in
  {
    connections_total = Metrics.counter s "connections_total";
    active_connections = Metrics.gauge s "active_connections";
    frames_in = Metrics.counter s "frames_in";
    frames_out = Metrics.counter s "frames_out";
    bytes_in = Metrics.counter s "bytes_in";
    bytes_out = Metrics.counter s "bytes_out";
    protocol_errors = Metrics.counter s "protocol_errors";
    repl_overflows = Metrics.counter s "repl_queue_overflows";
    lat_get = Metrics.histogram s "latency_get";
    lat_put = Metrics.histogram s "latency_put";
    lat_delete = Metrics.histogram s "latency_delete";
    lat_scan = Metrics.histogram s "latency_scan";
    lat_scan_agg = Metrics.histogram s "latency_scan_agg";
    lat_txn = Metrics.histogram s "latency_txn";
  }

type conn = { cfd : Unix.file_descr; mutable closed : bool }

type t = {
  db : Db.t;
  listen_fd : Unix.file_descr;
  port : int;
  batch : int;
  max_inflight : int;
  repl_queue_bytes : int;
  m : handles;
  lock : Mutex.t;
  mutable conns : (conn * Thread.t) list;
  mutable active : int;
  stopping : bool Atomic.t;
  mutable accept_domain : unit Domain.t option;
}

let finish_conn t conn =
  Mutex.lock t.lock;
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.cfd with Unix.Unix_error _ -> ());
    t.active <- t.active - 1;
    Metrics.set_int t.m.active_connections t.active
  end;
  Mutex.unlock t.lock

let hist_for m (req : Db.request) =
  match req with
  | Get _ -> m.lat_get
  | Put _ -> m.lat_put
  | Delete _ -> m.lat_delete
  | Scan_from _ -> m.lat_scan
  | Scan_agg _ -> m.lat_scan_agg
  | Txn _ -> m.lat_txn

(* What the writer thread sends: a response to a numbered request, or
   pre-framed bytes (replication batches, hello, heartbeats).  Only
   responses release the request semaphore. *)
type out = Resp of int * Db.response | Frames of string

let handle_conn t conn =
  let fd = conn.cfd in
  let rd = Wire.reader fd in
  let writer_q : out Mailbox.t = Mailbox.create () in
  let sem = Semaphore.Counting.make t.max_inflight in
  (* once a write fails the socket is dead; keep draining so every
     acquired semaphore token is still released *)
  let broken = ref false in
  (* replication bytes sitting in [writer_q]: incremented at enqueue,
     decremented when the writer pulls the frame for the socket.  The
     tap's push callback reads it to cut loose a follower that stopped
     draining (the high-water check below). *)
  let repl_queued = Atomic.make 0 in
  let writer () =
    (* coalesce: drain whatever responses are queued into one write, so a
       pipelined burst costs one syscall instead of one per response —
       this is where pipelining beats the synchronous client *)
    let buf = Buffer.create 4096 in
    let rec loop () =
      match Mailbox.pop writer_q with
      | None -> ()
      | Some first ->
        Buffer.clear buf;
        let count = ref 0 and resps = ref 0 in
        let add item =
          incr count;
          match item with
          | Resp (id, resp) ->
            Buffer.add_string buf (Wire.encode_response ~id resp);
            incr resps
          | Frames s ->
            ignore (Atomic.fetch_and_add repl_queued (-String.length s));
            Buffer.add_string buf s
        in
        add first;
        let rec drain () =
          if Buffer.length buf < 65536 then
            match Mailbox.try_pop writer_q with
            | Some item ->
              add item;
              drain ()
            | None -> ()
        in
        drain ();
        (if not !broken then
           try
             let n = Wire.write_frame fd (Buffer.contents buf) in
             Metrics.add t.m.frames_out !count;
             Metrics.add t.m.bytes_out n
           with Unix.Unix_error _ -> broken := true);
        for _ = 1 to !resps do
          Semaphore.Counting.release sem
        done;
        loop ()
    in
    loop ()
  in
  let writer_t = Thread.create writer () in
  let push_frames s =
    Atomic.fetch_and_add repl_queued (String.length s) |> ignore;
    match Mailbox.push writer_q (Frames s) with
    | () -> true
    | exception Mailbox.Closed ->
      ignore (Atomic.fetch_and_add repl_queued (-String.length s));
      false
  in
  (* replication follower state: at most one subscription per connection *)
  let subscription = ref None in
  let hb_thread = ref None in
  let heartbeat () =
    let frame = Wire.encode_msg ~id:0 Wire.Repl_heartbeat in
    let rec loop () =
      Thread.delay 0.5;
      if push_frames frame then loop ()
    in
    loop ()
  in
  let snapshot_streams tap fid =
    (* one job per partition: running on the partition's own domain makes
       enumeration + activation atomic against its commits; idempotent
       replay on the replica absorbs any records buffered but not yet
       synced (they are already reflected in the state we snapshot) *)
    let router = Db.router t.db in
    let snap = Wire.Snap { first = true; last = true } in
    for p = 0 to Db.num_partitions t.db - 1 do
      let part = Router.partition router p in
      let rec job engine =
        if Engine.in_prepared engine then
          (* a 2PC participant awaits its verdict: the tables hold
             uncommitted effects, so retry behind the coordinator's
             decide job instead of snapshotting them *)
          try Partition.post part job with Mailbox.Closed -> ()
        else
          match Repl_tap.activate tap fid ~stream:p with
          | None -> () (* the subscriber is already gone *)
          | Some upto ->
            let records = ref [] in
            Engine.iter_snapshot_records engine (fun r -> records := r :: !records);
            let frames =
              Wire.encode_repl_batches ~stream:p ~lsn:upto ~kind:snap (List.rev !records)
            in
            ignore (push_frames (String.concat "" frames))
      in
      try Partition.post part job with Mailbox.Closed -> ()
    done;
    (* the decision stream snapshots under the coordinator lock, so no
       Decide can publish between the log read and the activation *)
    Router.repl_coord_snapshot router (fun records ->
        let cs = Router.coord_stream router in
        match Repl_tap.activate tap fid ~stream:cs with
        | None -> ()
        | Some upto ->
          let frames = Wire.encode_repl_batches ~stream:cs ~lsn:upto ~kind:snap records in
          ignore (push_frames (String.concat "" frames)))
  in
  let subscribe id stream_id applied =
    match Router.repl_tap (Db.router t.db) with
    | None ->
      ignore
        (push_frames
           (Wire.encode_msg ~id
              (Wire.Response (Db.Failed (Db.Bad_request "replication not enabled")))));
      true
    | Some _ when Option.is_some !subscription ->
      Metrics.incr t.m.protocol_errors;
      false
    | Some tap ->
      let push (b : Repl_tap.batch) =
        if Atomic.get repl_queued > t.repl_queue_bytes then begin
          (* the follower stopped draining its socket: detach (return
             false) and disconnect it rather than buffer the stream
             without bound — on reconnect it resumes from its acked
             positions or resyncs from a snapshot *)
          Metrics.incr t.m.repl_overflows;
          (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
          false
        end
        else
          match
            Wire.encode_repl_batches ~stream:b.stream ~lsn:b.lsn ~kind:Wire.Log b.records
          with
          | frames -> push_frames (String.concat "" frames)
          | exception Invalid_argument _ -> false (* oversized record: detach, don't crash *)
      in
      let fid = Repl_tap.subscribe tap ~sync:true ~push in
      subscription := Some (tap, fid);
      let hello ~resync =
        ignore
          (push_frames
             (Wire.encode_msg ~id:0
                (Wire.Repl_hello
                   {
                     stream_id = Repl_tap.stream_id tap;
                     partitions = Db.num_partitions t.db;
                     resync;
                   })))
      in
      let applied =
        if stream_id = Repl_tap.stream_id tap && Array.length applied = Repl_tap.streams tap
        then Some applied
        else None
      in
      let resumed = Repl_tap.attach tap fid ~applied ~hello in
      if not resumed then snapshot_streams tap fid;
      if !hb_thread = None then hb_thread := Some (Thread.create heartbeat ());
      true
  in
  let window =
    Shard_runner.Window.create ~batch:t.batch ~router:(Db.router t.db) ()
  in
  let respond id resp =
    try Mailbox.push writer_q (Resp (id, resp)) with Mailbox.Closed -> ()
  in
  let handle id msg =
    match msg with
    | Wire.Response _ | Wire.Repl_hello _ | Wire.Repl_batch _ | Wire.Repl_heartbeat ->
      Metrics.incr t.m.protocol_errors;
      false
    | Wire.Subscribe { stream_id; applied } -> subscribe id stream_id applied
    | Wire.Repl_ack { stream; lsn } -> (
      match !subscription with
      | Some (tap, fid) when stream >= 0 && stream < Repl_tap.streams tap ->
        Repl_tap.ack tap fid ~stream ~lsn;
        true
      | Some _ | None ->
        Metrics.incr t.m.protocol_errors;
        false)
    | Wire.Request req ->
      Metrics.incr t.m.frames_in;
      Semaphore.Counting.acquire sem;
      (match Db.plan t.db req with
      | Db.Invalid resp -> respond id resp
      | Db.Single (partition, body) ->
        let cell = ref (Db.Failed (Db.Aborted "transaction body did not run")) in
        let hist = hist_for t.m req in
        Shard_runner.Window.submit window ~partition
          ~body:(fun engine -> cell := body engine)
          ~on_done:(fun r dt ->
            Metrics.observe hist dt;
            match r with
            | Ok () -> respond id !cell
            | Error e -> respond id (Db.Failed (Db.error_of_txn e)))
      | Db.Inline ->
        Shard_runner.Window.flush window;
        respond id (Metrics.time (hist_for t.m req) (fun () -> Db.exec t.db req)));
      true
  in
  let rec loop () =
    match Wire.try_msg rd with
    | `Msg (id, msg) -> if handle id msg then loop ()
    | `Error _ -> Metrics.incr t.m.protocol_errors
    | `Nothing ->
      (* nothing decodable is buffered: ship partial batches before the
         socket read can block *)
      Shard_runner.Window.flush window;
      let n = try Wire.refill rd with Unix.Unix_error _ -> 0 in
      Metrics.add t.m.bytes_in n;
      if n > 0 then loop ()
  in
  loop ();
  (* detach before draining: a follower with a closed socket must stop
     counting toward the semi-sync quorum as soon as possible *)
  (match !subscription with
  | Some (tap, fid) -> Repl_tap.unsubscribe tap fid
  | None -> ());
  Shard_runner.Window.drain window;
  Mailbox.close writer_q;
  Option.iter Thread.join !hb_thread;
  Thread.join writer_t;
  finish_conn t conn

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _addr ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      Metrics.incr t.m.connections_total;
      let conn = { cfd = fd; closed = false } in
      let th = Thread.create (fun () -> handle_conn t conn) () in
      Mutex.lock t.lock;
      t.conns <- (conn, th) :: t.conns;
      t.active <- t.active + 1;
      Metrics.set_int t.m.active_connections t.active;
      Mutex.unlock t.lock;
      loop ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> loop ()
    | exception Unix.Unix_error _ -> if not (Atomic.get t.stopping) then raise Exit
  in
  (try loop () with Exit -> ());
  (* joining this domain waits for every connection thread it spawned, so
     wake them all before returning — nobody else can: no new connections
     are added once the accept loop is done *)
  Mutex.lock t.lock;
  List.iter
    (fun (conn, _) ->
      if not conn.closed then
        try Unix.shutdown conn.cfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    t.conns;
  Mutex.unlock t.lock

let start ?(host = "127.0.0.1") ?(port = 0) ?(batch = Shard_runner.default_batch)
    ?(max_inflight = 64) ?(repl_queue_bytes = 64 * 1024 * 1024) ~db () =
  Wire.ignore_sigpipe ();
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 64;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let t =
    {
      db;
      listen_fd;
      port;
      batch;
      max_inflight;
      repl_queue_bytes;
      m = handles ();
      lock = Mutex.create ();
      conns = [];
      active = 0;
      stopping = Atomic.make false;
      accept_domain = None;
    }
  in
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let port t = t.port
let db t = t.db

let protocol_errors t = Metrics.counter_value t.m.protocol_errors

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* on Linux, shutdown on a listening socket wakes the blocked accept *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Option.iter Domain.join t.accept_domain;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    List.iter (fun (_, th) -> Thread.join th) t.conns;
    (* every connection's window has drained; force one final
       group-commit barrier so no acknowledged write is still buffered
       when the server reports itself stopped (DESIGN.md §13) *)
    Hi_shard.Router.sync_all (Db.router t.db)
  end
