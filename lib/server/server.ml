(* Pipelined wire-protocol server over the shard router (DESIGN.md §12).

   Threading: the accept loop owns a domain; every connection gets a
   reader thread (decode + dispatch) and a writer thread (serialize +
   send), both on the accept domain — they only parse and shuffle bytes,
   all engine work runs on the partition domains.  The reader feeds
   single-partition requests through a per-connection Shard_runner.Window
   (one producer per window, as required), with completion callbacks on
   partition domains pushing responses into the writer's mailbox, which
   serializes writes without a lock.  Responses are matched to requests
   by id, never by order.

   Backpressure is a counting semaphore: the reader acquires per request,
   the writer releases per response.  At the cap the reader stops reading
   the socket, TCP fills, and the client blocks — bounded memory per
   connection by construction.

   Order: before running a scan or multi-partition transaction inline,
   the reader flushes its window.  Partition mailboxes are FIFO, so
   everything this connection already submitted lands before the fan-out
   bodies — per-connection program order without draining. *)

open Hi_util
module Shard_runner = Hi_shard.Shard_runner
module Mailbox = Hi_shard.Mailbox

type handles = {
  connections_total : Metrics.counter;
  active_connections : Metrics.gauge;
  frames_in : Metrics.counter;
  frames_out : Metrics.counter;
  bytes_in : Metrics.counter;
  bytes_out : Metrics.counter;
  protocol_errors : Metrics.counter;
  lat_get : Metrics.histogram;
  lat_put : Metrics.histogram;
  lat_delete : Metrics.histogram;
  lat_scan : Metrics.histogram;
  lat_txn : Metrics.histogram;
}

let handles () =
  let s = Metrics.scope "server" in
  {
    connections_total = Metrics.counter s "connections_total";
    active_connections = Metrics.gauge s "active_connections";
    frames_in = Metrics.counter s "frames_in";
    frames_out = Metrics.counter s "frames_out";
    bytes_in = Metrics.counter s "bytes_in";
    bytes_out = Metrics.counter s "bytes_out";
    protocol_errors = Metrics.counter s "protocol_errors";
    lat_get = Metrics.histogram s "latency_get";
    lat_put = Metrics.histogram s "latency_put";
    lat_delete = Metrics.histogram s "latency_delete";
    lat_scan = Metrics.histogram s "latency_scan";
    lat_txn = Metrics.histogram s "latency_txn";
  }

type conn = { cfd : Unix.file_descr; mutable closed : bool }

type t = {
  db : Db.t;
  listen_fd : Unix.file_descr;
  port : int;
  batch : int;
  max_inflight : int;
  m : handles;
  lock : Mutex.t;
  mutable conns : (conn * Thread.t) list;
  mutable active : int;
  stopping : bool Atomic.t;
  mutable accept_domain : unit Domain.t option;
}

let finish_conn t conn =
  Mutex.lock t.lock;
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.cfd with Unix.Unix_error _ -> ());
    t.active <- t.active - 1;
    Metrics.set_int t.m.active_connections t.active
  end;
  Mutex.unlock t.lock

let hist_for m (req : Db.request) =
  match req with
  | Get _ -> m.lat_get
  | Put _ -> m.lat_put
  | Delete _ -> m.lat_delete
  | Scan_from _ -> m.lat_scan
  | Txn _ -> m.lat_txn

let handle_conn t conn =
  let fd = conn.cfd in
  let rd = Wire.reader fd in
  let writer_q : (int * Db.response) Mailbox.t = Mailbox.create () in
  let sem = Semaphore.Counting.make t.max_inflight in
  (* once a write fails the socket is dead; keep draining so every
     acquired semaphore token is still released *)
  let broken = ref false in
  let writer () =
    (* coalesce: drain whatever responses are queued into one write, so a
       pipelined burst costs one syscall instead of one per response —
       this is where pipelining beats the synchronous client *)
    let buf = Buffer.create 4096 in
    let rec loop () =
      match Mailbox.pop writer_q with
      | None -> ()
      | Some first ->
        Buffer.clear buf;
        let count = ref 0 in
        let add (id, resp) =
          Buffer.add_string buf (Wire.encode_response ~id resp);
          incr count
        in
        add first;
        let rec drain () =
          if Buffer.length buf < 65536 then
            match Mailbox.try_pop writer_q with
            | Some item ->
              add item;
              drain ()
            | None -> ()
        in
        drain ();
        (if not !broken then
           try
             let n = Wire.write_frame fd (Buffer.contents buf) in
             Metrics.add t.m.frames_out !count;
             Metrics.add t.m.bytes_out n
           with Unix.Unix_error _ -> broken := true);
        for _ = 1 to !count do
          Semaphore.Counting.release sem
        done;
        loop ()
    in
    loop ()
  in
  let writer_t = Thread.create writer () in
  let window =
    Shard_runner.Window.create ~batch:t.batch ~router:(Db.router t.db) ()
  in
  let respond id resp =
    try Mailbox.push writer_q (id, resp) with Mailbox.Closed -> ()
  in
  let handle id msg =
    match msg with
    | Wire.Response _ ->
      Metrics.incr t.m.protocol_errors;
      false
    | Wire.Request req ->
      Metrics.incr t.m.frames_in;
      Semaphore.Counting.acquire sem;
      (match Db.plan t.db req with
      | Db.Invalid resp -> respond id resp
      | Db.Single (partition, body) ->
        let cell = ref (Db.Failed (Db.Aborted "transaction body did not run")) in
        let hist = hist_for t.m req in
        Shard_runner.Window.submit window ~partition
          ~body:(fun engine -> cell := body engine)
          ~on_done:(fun r dt ->
            Metrics.observe hist dt;
            match r with
            | Ok () -> respond id !cell
            | Error e -> respond id (Db.Failed (Db.error_of_txn e)))
      | Db.Inline ->
        Shard_runner.Window.flush window;
        respond id (Metrics.time (hist_for t.m req) (fun () -> Db.exec t.db req)));
      true
  in
  let rec loop () =
    match Wire.try_msg rd with
    | `Msg (id, msg) -> if handle id msg then loop ()
    | `Error _ -> Metrics.incr t.m.protocol_errors
    | `Nothing ->
      (* nothing decodable is buffered: ship partial batches before the
         socket read can block *)
      Shard_runner.Window.flush window;
      let n = try Wire.refill rd with Unix.Unix_error _ -> 0 in
      Metrics.add t.m.bytes_in n;
      if n > 0 then loop ()
  in
  loop ();
  Shard_runner.Window.drain window;
  Mailbox.close writer_q;
  Thread.join writer_t;
  finish_conn t conn

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _addr ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      Metrics.incr t.m.connections_total;
      let conn = { cfd = fd; closed = false } in
      let th = Thread.create (fun () -> handle_conn t conn) () in
      Mutex.lock t.lock;
      t.conns <- (conn, th) :: t.conns;
      t.active <- t.active + 1;
      Metrics.set_int t.m.active_connections t.active;
      Mutex.unlock t.lock;
      loop ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> loop ()
    | exception Unix.Unix_error _ -> if not (Atomic.get t.stopping) then raise Exit
  in
  (try loop () with Exit -> ());
  (* joining this domain waits for every connection thread it spawned, so
     wake them all before returning — nobody else can: no new connections
     are added once the accept loop is done *)
  Mutex.lock t.lock;
  List.iter
    (fun (conn, _) ->
      if not conn.closed then
        try Unix.shutdown conn.cfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    t.conns;
  Mutex.unlock t.lock

let start ?(host = "127.0.0.1") ?(port = 0) ?(batch = Shard_runner.default_batch)
    ?(max_inflight = 64) ~db () =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 64;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let t =
    {
      db;
      listen_fd;
      port;
      batch;
      max_inflight;
      m = handles ();
      lock = Mutex.create ();
      conns = [];
      active = 0;
      stopping = Atomic.make false;
      accept_domain = None;
    }
  in
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let port t = t.port
let db t = t.db

let protocol_errors t = Metrics.counter_value t.m.protocol_errors

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* on Linux, shutdown on a listening socket wakes the blocked accept *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Option.iter Domain.join t.accept_domain;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    List.iter (fun (_, th) -> Thread.join th) t.conns;
    (* every connection's window has drained; force one final
       group-commit barrier so no acknowledged write is still buffered
       when the server reports itself stopped (DESIGN.md §13) *)
    Hi_shard.Router.sync_all (Db.router t.db)
  end
