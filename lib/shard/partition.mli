(** One H-Store partition (DESIGN.md §11): an {!Hi_hstore.Engine.t} owned
    by a dedicated domain that executes mailbox jobs serially.  Until
    {!start}, jobs run inline on the caller's domain — the deterministic
    single-domain mode of the check harness.

    The owning domain also runs deferred hybrid-index merges: every few
    jobs under load and whenever its mailbox runs dry, so merges stay off
    the transaction critical path. *)

open Hi_hstore

type t

type job = Engine.t -> unit

val create : ?config:Engine.config -> ?sleep:(float -> unit) -> id:int -> unit -> t
(** The engine is created here; load tables through {!engine} before
    {!start}. *)

val id : t -> int
val engine : t -> Engine.t
(** Direct engine access — only safe before {!start}, after {!stop}, or
    from jobs running on the partition's own domain. *)

val started : t -> bool
val queue_length : t -> int

val start : t -> unit
(** Spawn the partition's domain.  @raise Invalid_argument if started. *)

val post : t -> job -> unit
(** Enqueue a raw job (executed inline when not started).
    @raise Mailbox.Closed after {!stop}. *)

val run_async : t -> (Engine.t -> 'a) -> ('a, Engine.txn_error) result Future.t
(** Submit one transaction ({!Hi_hstore.Engine.run} on the partition). *)

val run : t -> (Engine.t -> 'a) -> ('a, Engine.txn_error) result
(** [run_async] + await. *)

val stop : t -> unit
(** Close the mailbox, drain the remaining jobs, join the domain.
    Re-raises the first exception a job leaked, if any. *)

val merge_check_period : int
(** Jobs between background-merge checks under sustained load. *)
