(** One H-Store partition (DESIGN.md §11): an {!Hi_hstore.Engine.t} owned
    by a dedicated domain that executes mailbox jobs serially.  Until
    {!start}, jobs run inline on the caller's domain — the deterministic
    single-domain mode of the check harness.

    The owning domain also runs deferred hybrid-index merges: every few
    jobs under load and whenever its mailbox runs dry, so merges stay off
    the transaction critical path. *)

open Hi_hstore

type t

type job = Engine.t -> unit

val create : ?config:Engine.config -> ?sleep:(float -> unit) -> id:int -> unit -> t
(** The engine is created here; load tables through {!engine} before
    {!start}. *)

val id : t -> int
val engine : t -> Engine.t
(** Direct engine access — only safe before {!start}, after {!stop}, or
    from jobs running on the partition's own domain. *)

val started : t -> bool
val queue_length : t -> int

val set_checkpoint_hook : t -> (Engine.t -> unit) -> unit
(** Install the WAL-growth-capping hook (DESIGN.md §13), called on the
    partition's own domain at idle points, after the group-commit
    barrier.  @raise Invalid_argument once started. *)

val start : t -> unit
(** Spawn the partition's domain.  @raise Invalid_argument if started. *)

val post : t -> job -> unit
(** Enqueue a raw job (executed inline when not started).
    @raise Mailbox.Closed after {!stop}. *)

val run_async : t -> (Engine.t -> 'a) -> ('a, Engine.txn_error) result Future.t
(** Submit one transaction ({!Hi_hstore.Engine.run} on the partition).
    With a WAL attached, the future fills only once the commit is durable
    (the partition's next group-commit barrier). *)

val run : t -> (Engine.t -> 'a) -> ('a, Engine.txn_error) result
(** [run_async] + await. *)

val stop : t -> unit
(** Close the mailbox, drain the remaining jobs, flush the WAL, join the
    domain.  Re-raises the first exception a job leaked, if any. *)

val merge_check_period : int
(** Jobs between background-merge checks under sustained load. *)

val max_deferred_acks : int
(** Deferred durability acks a partition holds before forcing a flush. *)
