(** A mutex/condition FIFO queue — the inbox of a partition domain
    (DESIGN.md §11).  Multi-producer, any-consumer; jobs are delivered in
    push order.  Closing refuses further pushes but lets consumers drain
    what is already enqueued. *)

type 'a t

exception Closed

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** @raise Closed after {!close}. *)

val pop : 'a t -> 'a option
(** Block until an item is available; [None] once the mailbox is closed
    {e and} drained (the consumer's shutdown signal). *)

val try_pop : 'a t -> 'a option
(** Non-blocking pop; [None] when currently empty. *)

val close : 'a t -> unit
(** Idempotent; wakes all blocked consumers. *)

val length : 'a t -> int
val is_closed : 'a t -> bool
