(** Sharded versions of the paper's three workloads (DESIGN.md §11).

    Generation is separated from execution: each partition has its own
    deterministic generator stream (a function of the base seed and the
    partition id only), and [next t p] returns a dispatch spec naming
    every participant partition up front. *)

open Hi_hstore
open Hi_workloads

type spec =
  | Single of int * (Engine.t -> unit)  (** fast path: one partition *)
  | Multi of Router.participant list  (** coordinated cross-partition txn *)

(** Voter partitioned by phone number (phone mod n); contestants
    replicated.  Every vote is single-partition. *)
module Voter_shard : sig
  type t

  val create :
    ?mode:Router.mode ->
    ?config:Engine.config ->
    ?sleep:(float -> unit) ->
    ?scale:Voter.scale ->
    ?seed:int ->
    partitions:int ->
    unit ->
    t

  val router : t -> Router.t
  val next : t -> int -> spec
  val check_consistency : t -> bool
  val stop : t -> unit
end

(** TPC-C partitioned by warehouse ((w-1) mod n); items replicated.
    Remote-supplied new-order lines (~1 % per line) and remote-customer
    payments (15 %) become multi-partition transactions. *)
module Tpcc_shard : sig
  type t

  val create :
    ?mode:Router.mode ->
    ?config:Engine.config ->
    ?sleep:(float -> unit) ->
    ?scale:Tpcc.scale ->
    ?seed:int ->
    partitions:int ->
    unit ->
    t
  (** @raise Invalid_argument with fewer warehouses than partitions. *)

  val router : t -> Router.t
  val partition_of_warehouse : partitions:int -> int -> int
  val next : t -> int -> spec
  val check_consistency : t -> bool
  val stop : t -> unit
end

(** Articles partitioned by article id ((a-1) mod n); users replicated.
    User-page reads fan out to every partition. *)
module Articles_shard : sig
  type t

  val create :
    ?mode:Router.mode ->
    ?config:Engine.config ->
    ?sleep:(float -> unit) ->
    ?scale:Articles.scale ->
    ?seed:int ->
    partitions:int ->
    unit ->
    t

  val router : t -> Router.t
  val next : t -> int -> spec
  val check_comment_counts : t -> bool
  val stop : t -> unit
end
