(** A write-once cell with blocking read, for returning results across
    domains (DESIGN.md §11).  Filling happens-before awaiting. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** @raise Invalid_argument on a second fill. *)

val await : 'a t -> 'a
(** Block until filled. *)

val poll : 'a t -> 'a option
