(* Drive a sharded workload through a Router and report per-partition and
   aggregate results (DESIGN.md §11).

   Single-partition transactions are submitted in batches (default 32 per
   mailbox job) so messaging overhead is amortized over many short
   transactions — Voter's transactions are a few microseconds, and posting
   them one-by-one would make the mailbox the bottleneck.  Multi-partition
   transactions run through the coordinator inline.

   Despite parallel execution, each partition's observable history is
   deterministic: the (single) generator thread is the only producer, so
   every mailbox receives the same job sequence on every run with the same
   seed — domain timing affects only the interleaving *between*
   partitions, which shared-nothing execution makes irrelevant.

   Counters are partition-local (each is touched only by its partition's
   domain) and read after the in-flight window drains, with the join/await
   providing the happens-before edge. *)

open Hi_util
open Hi_hstore

type per_partition = {
  pid : int;
  committed : int;
  aborted : int;
  queue_peak : int;
}

type stats = {
  total : int; (* transactions dispatched *)
  committed : int;
  aborted : int;
  multi : int; (* multi-partition transactions dispatched *)
  multi_aborted : int;
  elapsed_s : float;
  tps : float; (* committed transactions per second *)
  mean_latency_s : float;
  p99_latency_s : float;
  per_partition : per_partition list;
}

let default_batch = 32

let run ?(batch = default_batch) ?(max_inflight_batches = 8) ~router
    ~(next : int -> Shard_workload.spec) ~num_txns () =
  let n = Router.num_partitions router in
  let ok = Array.make n 0 in
  let ab = Array.make n 0 in
  let queue_peak = Array.make n 0 in
  let lat = Array.init n (fun _ -> Histogram.create ()) in
  let mok = ref 0 and mab = ref 0 and multi = ref 0 in
  let coord_lat = Histogram.create () in
  let inflight = Queue.create () in
  let flush p pending =
    match pending with
    | [] -> ()
    | bodies ->
      let bodies = List.rev bodies in
      let fut = Future.create () in
      let part = Router.partition router p in
      queue_peak.(p) <- max queue_peak.(p) (Partition.queue_length part);
      Partition.post part (fun engine ->
          List.iter
            (fun body ->
              let t0 = Unix.gettimeofday () in
              (match Engine.run engine body with
              | Ok () -> ok.(p) <- ok.(p) + 1
              | Error _ -> ab.(p) <- ab.(p) + 1);
              Histogram.record lat.(p) (Unix.gettimeofday () -. t0))
            bodies;
          Future.fill fut ());
      Queue.push fut inflight;
      (* bounded in-flight window: keeps the generator from racing
         unboundedly ahead of slow partitions *)
      while Queue.length inflight > max_inflight_batches * n do
        Future.await (Queue.pop inflight)
      done
  in
  let pending = Array.make n [] in
  let pending_n = Array.make n 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to num_txns - 1 do
    let p = i mod n in
    match next p with
    | Shard_workload.Single (q, body) ->
      pending.(q) <- body :: pending.(q);
      pending_n.(q) <- pending_n.(q) + 1;
      if pending_n.(q) >= batch then begin
        flush q pending.(q);
        pending.(q) <- [];
        pending_n.(q) <- 0
      end
    | Shard_workload.Multi participants ->
      incr multi;
      let c0 = Unix.gettimeofday () in
      (match Router.multi router participants with
      | Ok () -> incr mok
      | Error _ -> incr mab);
      Histogram.record coord_lat (Unix.gettimeofday () -. c0)
  done;
  for p = 0 to n - 1 do
    flush p pending.(p);
    pending.(p) <- []
  done;
  Queue.iter Future.await inflight;
  Queue.clear inflight;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let all = Histogram.create () in
  Array.iter (fun h -> Histogram.merge_into ~into:all h) lat;
  Histogram.merge_into ~into:all coord_lat;
  let committed = Array.fold_left ( + ) !mok ok in
  let aborted = Array.fold_left ( + ) !mab ab in
  {
    total = num_txns;
    committed;
    aborted;
    multi = !multi;
    multi_aborted = !mab;
    elapsed_s;
    tps = (if elapsed_s > 0.0 then float_of_int committed /. elapsed_s else 0.0);
    mean_latency_s = Histogram.mean all;
    p99_latency_s = Histogram.percentile all 99.0;
    per_partition =
      List.init n (fun p ->
          { pid = p; committed = ok.(p); aborted = ab.(p); queue_peak = queue_peak.(p) });
  }
