(* Drive transactions through a Router with per-partition batching and a
   bounded in-flight window (DESIGN.md §11).

   [Window] is the reusable core: single-partition transactions are
   submitted in batches (default 32 per mailbox job) so messaging overhead
   is amortized over many short transactions — Voter's transactions are a
   few microseconds, and posting them one-by-one would make the mailbox
   the bottleneck.  A bounded in-flight window keeps producers from racing
   unboundedly ahead of slow partitions.  [run] layers workload dispatch
   and reporting on top; the wire-protocol server (DESIGN.md §12) feeds
   each connection's pipelined requests through its own [Window] over the
   shared router.

   Despite parallel execution, each partition's observable history is
   deterministic per producer: a window has a single producer thread, so
   every mailbox receives the same job sequence on every run with the same
   seed — domain timing affects only the interleaving *between*
   partitions, which shared-nothing execution makes irrelevant.

   Counters in [run] are partition-local (each is touched only by its
   partition's domain via [on_done]) and read after the window drains,
   with the join/await providing the happens-before edge. *)

open Hi_util
open Hi_hstore

let default_batch = 32

module Window = struct
  type entry = {
    body : Engine.t -> unit;
    on_done : (unit, Engine.txn_error) result -> float -> unit;
  }

  type t = {
    router : Router.t;
    batch : int;
    max_inflight_batches : int;
    pending : entry list array; (* newest first *)
    pending_n : int array;
    inflight : unit Future.t Queue.t;
    queue_peak : int array;
  }

  let create ?(batch = default_batch) ?(max_inflight_batches = 8) ~router () =
    if batch <= 0 then invalid_arg "Window.create: batch must be positive";
    let n = Router.num_partitions router in
    {
      router;
      batch;
      max_inflight_batches;
      pending = Array.make n [];
      pending_n = Array.make n 0;
      inflight = Queue.create ();
      queue_peak = Array.make n 0;
    }

  let flush_partition t p =
    match t.pending.(p) with
    | [] -> ()
    | entries ->
      let entries = List.rev entries in
      t.pending.(p) <- [];
      t.pending_n.(p) <- 0;
      let fut = Future.create () in
      let part = Router.partition t.router p in
      t.queue_peak.(p) <- max t.queue_peak.(p) (Partition.queue_length part);
      Partition.post part (fun engine ->
          let results =
            List.map
              (fun { body; on_done } ->
                let t0 = Unix.gettimeofday () in
                let r = Engine.run engine body in
                (on_done, r, Unix.gettimeofday () -. t0))
              entries
          in
          (* the batch's completions are durability acknowledgments:
             with a WAL attached they wait for the partition's next
             group-commit barrier, so one fsync covers the whole batch *)
          Engine.on_durable engine (fun () ->
              List.iter (fun (on_done, r, dt) -> on_done r dt) results;
              Future.fill fut ()));
      Queue.push fut t.inflight;
      (* bounded in-flight window: keeps the producer from racing
         unboundedly ahead of slow partitions *)
      let cap = t.max_inflight_batches * Router.num_partitions t.router in
      while Queue.length t.inflight > cap do
        Future.await (Queue.pop t.inflight)
      done

  let submit t ~partition ~body ~on_done =
    t.pending.(partition) <- { body; on_done } :: t.pending.(partition);
    t.pending_n.(partition) <- t.pending_n.(partition) + 1;
    if t.pending_n.(partition) >= t.batch then flush_partition t partition

  let flush t =
    for p = 0 to Array.length t.pending - 1 do
      flush_partition t p
    done

  let drain t =
    flush t;
    Queue.iter Future.await t.inflight;
    Queue.clear t.inflight

  let queue_peak t ~partition = t.queue_peak.(partition)
end

type per_partition = {
  pid : int;
  committed : int;
  aborted : int;
  queue_peak : int;
}

type stats = {
  total : int; (* transactions dispatched *)
  committed : int;
  aborted : int;
  multi : int; (* multi-partition transactions dispatched *)
  multi_aborted : int;
  elapsed_s : float;
  tps : float; (* committed transactions per second *)
  mean_latency_s : float;
  p99_latency_s : float;
  per_partition : per_partition list;
}

let run ?(batch = default_batch) ?(max_inflight_batches = 8) ~router
    ~(next : int -> Shard_workload.spec) ~num_txns () =
  let n = Router.num_partitions router in
  let ok = Array.make n 0 in
  let ab = Array.make n 0 in
  let lat = Array.init n (fun _ -> Histogram.create ()) in
  let mok = ref 0 and mab = ref 0 and multi = ref 0 in
  let coord_lat = Histogram.create () in
  let window = Window.create ~batch ~max_inflight_batches ~router () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to num_txns - 1 do
    let p = i mod n in
    match next p with
    | Shard_workload.Single (q, body) ->
      Window.submit window ~partition:q ~body
        ~on_done:(fun r dt ->
          (match r with Ok () -> ok.(q) <- ok.(q) + 1 | Error _ -> ab.(q) <- ab.(q) + 1);
          Histogram.record lat.(q) dt)
    | Shard_workload.Multi participants ->
      incr multi;
      let c0 = Unix.gettimeofday () in
      (match Router.multi router participants with
      | Ok () -> incr mok
      | Error _ -> incr mab);
      Histogram.record coord_lat (Unix.gettimeofday () -. c0)
  done;
  Window.drain window;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let all = Histogram.create () in
  Array.iter (fun h -> Histogram.merge_into ~into:all h) lat;
  Histogram.merge_into ~into:all coord_lat;
  let committed = Array.fold_left ( + ) !mok ok in
  let aborted = Array.fold_left ( + ) !mab ab in
  {
    total = num_txns;
    committed;
    aborted;
    multi = !multi;
    multi_aborted = !mab;
    elapsed_s;
    tps = (if elapsed_s > 0.0 then float_of_int committed /. elapsed_s else 0.0);
    mean_latency_s = Histogram.mean all;
    p99_latency_s = Histogram.percentile all 99.0;
    per_partition =
      List.init n (fun p ->
          {
            pid = p;
            committed = ok.(p);
            aborted = ab.(p);
            queue_peak = Window.queue_peak window ~partition:p;
          });
  }
