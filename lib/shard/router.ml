(* The partitioned runtime's front door (DESIGN.md §11, §14): owns the
   partitions, maps partition keys to them, executes single-partition
   transactions on the owner's domain (the fast path), and coordinates
   multi-partition transactions with a prepare/commit protocol so they
   commit on every participant or on none.

   Concurrency model, after H-Store with ordered per-partition locking
   (DESIGN.md §14): each partition executes serially on its own domain; a
   multi-partition coordinator acquires one coordinator lock per
   participant partition, always in ascending partition-id order, before
   posting any work.  Disjoint cross-partition transactions run
   concurrently; overlapping ones serialize on their lowest shared
   partition; and the ascending acquisition order makes hold-and-wait
   cycles impossible, so the protocol is deadlock-free without any global
   coordinator lock.  Single-partition transactions never touch the
   coordinator locks — they keep flowing into every mailbox, ordered
   behind whatever prepared window the partition currently holds.

   Two modes:
   - [Parallel]: every partition on its own domain (production).
   - [Sequential rng]: no domains; everything executes inline on the
     caller's domain, and the rng picks the order in which participants
     of a multi-partition transaction prepare.  This is the deterministic
     scheduler the differential check harness drives: seeded interleavings
     of cross-partition sub-transactions with reproducible results.  The
     locks are still taken (uncontended) so both modes exercise the same
     acquisition path. *)

open Hi_hstore
module Wal = Hi_wal.Wal

type mode = Parallel | Sequential of Hi_util.Xorshift.t

(* Durability (DESIGN.md §13): one WAL per partition plus a router-owned
   coordinator decision log for cross-partition transactions. *)
type durability_config = {
  wal_dir : string;
  checkpoint_bytes : int; (* per-partition auto-checkpoint threshold *)
  fault : Hi_util.Fault.t option; (* injected disk faults, for tests *)
}

let durability ?(checkpoint_bytes = 64 * 1024 * 1024) ?fault wal_dir =
  { wal_dir; checkpoint_bytes; fault }

(* Replication (DESIGN.md §15): stream every partition WAL plus the
   coordinator decision log through a {!Hi_wal.Repl_tap}. *)
type repl_config = {
  sync_replicas : int; (* acks to await per group commit; 0 = async *)
  retain_bytes : int; (* per-stream ring for gap replay on reconnect *)
  ack_timeout_s : float; (* semi-sync degrade deadline *)
}

let replication ?(sync_replicas = 0) ?(retain_bytes = 4 * 1024 * 1024) ?(ack_timeout_s = 1.0) ()
    =
  { sync_replicas; retain_bytes; ack_timeout_s }

type recovery = {
  replayed_txns : int;
  skipped_undecided : int; (* prepares whose 2PC txn was never decided *)
  malformed : int;
  torn_tails : int; (* logs truncated at a bad CRC (coord log included) *)
  checkpoints_loaded : int;
  decided_txns : int; (* commit decisions found in the coordinator log *)
  duration_s : float;
}

type durable = {
  dconfig : durability_config;
  coord : Wal.t; (* decision log; its I/O serialized by coord_lock *)
  coord_lock : Mutex.t;
      (* narrow I/O lock: the Wal.t writer is not safe for concurrent
         appends.  It guards only the append+sync of a Decide record (and
         the truncate at global checkpoint), never the span of a
         transaction — coordinators overlap everywhere else. *)
  coord_pub : int ref;
      (* last LSN the replication tap assigned to the decision stream,
         written by the tap callback inside [Wal.sync d.coord] (i.e.
         under coord_lock).  Lets [log_decide] run the semi-sync wait
         after releasing the lock, so a lagging replica stalls only its
         own commit, not every concurrent coordinator. *)
}

type t = {
  partitions : Partition.t array;
  locks : Mutex.t array;
      (* coordinator locks, one per partition, acquired in ascending
         partition-id order only (DESIGN.md §14).  Held across a
         multi-partition transaction's whole prepare/decide/apply span for
         its participants; never taken by the single-partition path. *)
  mode : mode;
  next_txn : int Atomic.t; (* 2PC transaction ids; resumed past the logs at recovery *)
  inflight : (int, unit) Hashtbl.t;
      (* 2PC txns begun but not finished, maintained only under
         replication: their minimum is the completion low-water mark the
         decision stream carries as [Redo.Mark] records, which is what
         lets a replica prune its decided set and drop stashed Prepares
         of aborted (never-decided) transactions *)
  inflight_lock : Mutex.t;
  durable : durable option;
  repl : Hi_wal.Repl_tap.t option;
  recovery : recovery option;
  m_single : Hi_util.Metrics.counter;
  m_multi : Hi_util.Metrics.counter;
  m_multi_aborts : Hi_util.Metrics.counter;
  m_lock_waits : Hi_util.Metrics.counter;
}

let scope = Hi_util.Metrics.scope "shard.router"

(* --- durability file layout --- *)

let partition_log_path dir i = Filename.concat dir (Printf.sprintf "p%d.log" i)
let partition_ckpt_path dir i = Filename.concat dir (Printf.sprintf "p%d.ckpt" i)
let coord_log_path dir = Filename.concat dir "coord.log"

(* Cap a partition's log growth: snapshot and truncate once the durable
   log exceeds the threshold.  Runs on the partition's own domain at idle
   points, after its group-commit barrier (so nothing is buffered).
   Never touches the coordinator log — other partitions' logs may still
   hold Prepare records that need its decisions; only the global
   [checkpoint] below may truncate it.  Snapshots cover evicted rows
   (read non-destructively from their anti-cache blocks), so eviction no
   longer blocks checkpointing — the bug that let the WAL grow without
   bound under exactly the cold workloads anti-caching targets. *)
let auto_checkpoint dc ~ckpt_path engine =
  match Engine.wal engine with
  | None -> ()
  | Some w ->
    (* [in_prepared]: a 2PC participant awaits its verdict, so the tables
       hold applied-but-uncommitted effects — a snapshot now could
       resurrect an aborted transaction after a crash.  The window is
       short (the coordinator decides promptly); the next idle point
       retries. *)
    if
      (not (Engine.in_prepared engine))
      && Wal.bytes_on_disk w > dc.checkpoint_bytes
      && Wal.pending w = 0
    then begin
      Engine.write_checkpoint engine ~path:ckpt_path;
      Wal.truncate w
    end

(* Recovery (restart path): read the coordinator log into the decided
   set, then per partition replay checkpoint + log into the freshly
   [init]-ed tables, applying Prepare records only when decided (presumed
   abort).  [init] must be deterministic (schema + any static seed):
   replay is an upsert stream, so re-running it under the same init
   converges.  Returns the writers to attach plus a report. *)
let recover_durable dc parts =
  let t0 = Unix.gettimeofday () in
  (try Unix.mkdir dc.wal_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let coord_records, coord_tail, coord = Wal.open_log ?fault:dc.fault (coord_log_path dc.wal_dir) in
  let decided = Hashtbl.create 64 in
  let max_txn = ref (-1) in
  List.iter
    (fun payload ->
      match Redo.decode payload with
      | Ok (Redo.Decide { txn }) ->
        Hashtbl.replace decided txn ();
        if txn > !max_txn then max_txn := txn
      | Ok _ | Error _ -> () (* not a decision; ignore *))
    coord_records;
  let torn = ref (match coord_tail with Wal.Torn _ -> 1 | Wal.Clean -> 0) in
  let replayed = ref 0 and skipped = ref 0 and malformed = ref 0 and ckpts = ref 0 in
  let is_decided txn = Hashtbl.mem decided txn in
  Array.iteri
    (fun i p ->
      let engine = Partition.engine p in
      let ckpt_path = partition_ckpt_path dc.wal_dir i in
      let ckpt_records, _ = Wal.read ckpt_path in
      if ckpt_records <> [] then incr ckpts;
      let log_records, tail, wal = Wal.open_log ?fault:dc.fault (partition_log_path dc.wal_dir i) in
      (match tail with Wal.Torn _ -> incr torn | Wal.Clean -> ());
      List.iter
        (fun records ->
          let r = Engine.replay engine ~decided:is_decided records in
          replayed := !replayed + r.Engine.replayed;
          skipped := !skipped + r.Engine.skipped_undecided;
          malformed := !malformed + r.Engine.malformed;
          if r.Engine.max_txn > !max_txn then max_txn := r.Engine.max_txn)
        [ ckpt_records; log_records ];
      Engine.attach_wal engine wal;
      Partition.set_checkpoint_hook p (auto_checkpoint dc ~ckpt_path))
    parts;
  let duration_s = Unix.gettimeofday () -. t0 in
  Wal.observe_recovery duration_s;
  ( { dconfig = dc; coord; coord_lock = Mutex.create (); coord_pub = ref (-1) },
    {
      replayed_txns = !replayed;
      skipped_undecided = !skipped;
      malformed = !malformed;
      torn_tails = !torn;
      checkpoints_loaded = !ckpts;
      decided_txns = Hashtbl.length decided;
      duration_s;
    },
    !max_txn + 1 )

let create ?(mode = Parallel) ?(config = Engine.default_config) ?sleep ?durability ?replication
    ~partitions ~init () =
  if partitions <= 0 then invalid_arg "Router.create: need at least one partition";
  if replication <> None && durability = None then
    invalid_arg "Router.create: replication requires durability (the streams are the WALs)";
  (* parallel partitions defer hybrid merges to their domain's background
     scheduler; sequential mode keeps the caller's configuration *)
  let pconfig =
    match mode with Parallel -> { config with Engine.inline_merge = false } | Sequential _ -> config
  in
  let parts =
    Array.init partitions (fun id ->
        let p = Partition.create ~config:pconfig ?sleep ~id () in
        init id (Partition.engine p);
        p)
  in
  let durable, recovery, next_txn =
    match durability with
    | None -> (None, None, 0)
    | Some dc ->
      let d, r, next = recover_durable dc parts in
      (Some d, Some r, next)
  in
  (* Replication tap: stream i mirrors partition i's WAL, stream
     [partitions] the coordinator decision log.  Installed before any
     partition domain starts, so no durable batch can slip past it. *)
  let repl =
    match (durable, replication) with
    | Some d, Some rc ->
      let stream_id =
        (int_of_float (Unix.gettimeofday () *. 1e6) lxor (Unix.getpid () lsl 40)) land max_int
      in
      let stream_id = if stream_id = 0 then 1 else stream_id in
      let tap =
        Hi_wal.Repl_tap.create ~streams:(partitions + 1) ~stream_id
          ~retain_bytes:rc.retain_bytes ~sync_replicas:rc.sync_replicas
          ~ack_timeout_s:rc.ack_timeout_s
      in
      Array.iteri
        (fun i p ->
          match Engine.wal (Partition.engine p) with
          | Some w ->
            Wal.set_tap w (Some (fun records -> Hi_wal.Repl_tap.publish tap ~stream:i records))
          | None -> ())
        parts;
      (* the decision stream publishes without the semi-sync wait: the
         callback runs inside [Wal.sync d.coord] under coord_lock, and
         blocking there on a lagging replica would serialize every
         concurrent 2PC commit behind one follower.  [log_decide] waits
         on [coord_pub] after releasing the lock instead. *)
      Wal.set_tap d.coord
        (Some
           (fun records ->
             d.coord_pub := Hi_wal.Repl_tap.publish_nowait tap ~stream:partitions records));
      Some tap
    | _ -> None
  in
  (match mode with
  | Parallel -> Array.iter Partition.start parts
  | Sequential _ -> ());
  {
    partitions = parts;
    locks = Array.init partitions (fun _ -> Mutex.create ());
    mode;
    next_txn = Atomic.make next_txn;
    inflight = Hashtbl.create 16;
    inflight_lock = Mutex.create ();
    durable;
    repl;
    recovery;
    m_single = Hi_util.Metrics.counter scope "single_partition_txns";
    m_multi = Hi_util.Metrics.counter scope "multi_partition_txns";
    m_multi_aborts = Hi_util.Metrics.counter scope "multi_partition_aborts";
    m_lock_waits = Hi_util.Metrics.counter scope "partition_lock_waits";
  }

let recovery t = t.recovery
let durable_enabled t = t.durable <> None

(* --- replication plumbing (DESIGN.md §15) --- *)

let repl_tap t = t.repl
let coord_stream t = Array.length t.partitions

let repl_positions t = Option.map Hi_wal.Repl_tap.positions t.repl

(* Run [k] over the coordinator log's durable records while holding the
   coordinator lock, so no Decide can publish between the read and
   whatever [k] does with the tap (snapshot + {!Repl_tap.activate}).
   The file read sees exactly the synced prefix — [log_decide] syncs
   every append under this same lock. *)
let repl_coord_snapshot t k =
  match t.durable with
  | None -> invalid_arg "Router.repl_coord_snapshot: no durability"
  | Some d ->
    Mutex.lock d.coord_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock d.coord_lock)
      (fun () ->
        let records, _ = Wal.read (coord_log_path d.dconfig.wal_dir) in
        k records)

let num_partitions t = Array.length t.partitions
let partition t i = t.partitions.(i)
let mode t = t.mode

(* --- ordered per-partition lock acquisition (DESIGN.md §14) --- *)

(* Run [f] holding the coordinator locks of [parts], acquired in
   ascending partition-id order.  Every coordinator-side critical section
   (a multi-partition transaction, the global checkpoint) goes through
   here: because every holder acquires along the same total order, a
   waiter only ever waits on lower-ordered holders — no hold-and-wait
   cycle can form, so no deadlock.  [parts] must be duplicate-free. *)
let with_partition_locks t parts f =
  let order = List.sort_uniq compare parts in
  if List.length order <> List.length parts then
    invalid_arg "Router.with_partition_locks: duplicate partitions";
  List.iter
    (fun p ->
      if p < 0 || p >= num_partitions t then invalid_arg "Router.with_partition_locks: bad partition";
      if not (Mutex.try_lock t.locks.(p)) then begin
        Hi_util.Metrics.incr t.m_lock_waits;
        Mutex.lock t.locks.(p)
      end)
    order;
  Fun.protect ~finally:(fun () -> List.iter (fun p -> Mutex.unlock t.locks.(p)) order) f

(* --- key routing --- *)

(* Jump consistent hash (Lamping & Veach, 2014): maps a 64-bit key to one
   of [buckets] with the resize-stability property the router needs —
   growing from n to n+1 partitions moves only ~1/(n+1) of the keys, and
   none of them between pre-existing buckets. *)
let jump_hash key buckets =
  if buckets <= 0 then invalid_arg "jump_hash: no buckets";
  let k = ref key in
  let b = ref (-1) in
  let j = ref 0 in
  while !j < buckets do
    b := !j;
    k := Int64.add (Int64.mul !k 2862933555777941757L) 1L;
    let denom = Int64.to_float (Int64.shift_right_logical !k 33) +. 1.0 in
    j := int_of_float (float_of_int (!b + 1) *. (2147483648.0 /. denom))
  done;
  !b

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* splitmix64 finalizer: integer partition keys are often sequential ids,
   which jump_hash alone would not spread. *)
let mix64 x =
  let open Int64 in
  let z = ref (mul x 0x9E3779B97F4A7C15L) in
  z := mul (logxor !z (shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L;
  z := mul (logxor !z (shift_right_logical !z 27)) 0x94D049BB133111EBL;
  logxor !z (shift_right_logical !z 31)

let route_key t s = jump_hash (fnv1a64 s) (num_partitions t)
let route_int t i = jump_hash (mix64 (Int64.of_int i)) (num_partitions t)

(* --- single-partition fast path (never touches the coordinator locks) --- *)

let single t ~partition:i f =
  Hi_util.Metrics.incr t.m_single;
  Partition.run t.partitions.(i) f

let single_async t ~partition:i f =
  Hi_util.Metrics.incr t.m_single;
  Partition.run_async t.partitions.(i) f

(* --- multi-partition coordinator --- *)

type participant = { part : int; body : Engine.t -> unit }

type verdict = Commit | Abort_all

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Hi_util.Xorshift.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* -- 2PC transaction lifecycle & completion low-water marks -------------- *)

let fresh_txn t = Atomic.fetch_and_add t.next_txn 1

(* In-flight bookkeeping is only consumed by Mark records, so it is kept
   only when a replication tap exists. *)
let txn_begin t =
  let txn = fresh_txn t in
  if t.repl <> None then begin
    Mutex.lock t.inflight_lock;
    Hashtbl.replace t.inflight txn ();
    Mutex.unlock t.inflight_lock
  end;
  txn

(* Remove [txn] only once its outcome is settled: for a commit, after the
   Decide is synced (and therefore published) — a mark computed past an
   unpublished Decide could reach the replica first and make it drop the
   transaction's stashed Prepares as aborted. *)
let txn_end t txn =
  if t.repl <> None then begin
    Mutex.lock t.inflight_lock;
    Hashtbl.remove t.inflight txn;
    Mutex.unlock t.inflight_lock
  end

(* Every id below the returned low-water belongs to a finished txn. *)
let txn_low t =
  Mutex.lock t.inflight_lock;
  let low =
    Hashtbl.fold (fun txn () low -> min txn low) t.inflight (Atomic.get t.next_txn)
  in
  Mutex.unlock t.inflight_lock;
  low

(* The commit point of a cross-partition transaction (DESIGN.md §13):
   a durable Decide record in the coordinator log.  Participants already
   hold durable Prepare records when this runs, so recovery commits
   exactly the transactions whose decision survived — presumed abort for
   the rest.  Concurrent coordinators serialize on the log's I/O lock for
   just this append+fsync; the semi-sync replication wait runs after the
   lock is released, so a lagging sync replica delays only this commit's
   acknowledgment.  With replication, a completion Mark rides the same
   sync (its low computed while [txn] is still in flight, so it never
   outruns an unpublished decision).  Raises on sync failure: the
   decision did not happen. *)
let log_decide t txn =
  match t.durable with
  | None -> ()
  | Some d ->
    Mutex.lock d.coord_lock;
    let lsn =
      Fun.protect
        ~finally:(fun () -> Mutex.unlock d.coord_lock)
        (fun () ->
          Wal.append d.coord (Redo.encode (Redo.Decide { txn }));
          if t.repl <> None then
            Wal.append d.coord (Redo.encode (Redo.Mark { low = txn_low t }));
          ignore (Wal.sync d.coord);
          !(d.coord_pub))
    in
    (match t.repl with
    | Some tap -> Hi_wal.Repl_tap.wait tap ~stream:(Array.length t.partitions) ~lsn
    | None -> ())

(* Publish a standalone completion mark after an abort: presumed abort
   writes no Decide, so this is the only signal that lets a replica drop
   the aborted transaction's stashed Prepares.  Advisory — a failure here
   is swallowed (the next mark covers the cleanup), and no semi-sync wait
   applies (marks gate no acknowledgment). *)
let log_mark t =
  match (t.durable, t.repl) with
  | Some d, Some _ -> (
    let record = Redo.encode (Redo.Mark { low = txn_low t }) in
    Mutex.lock d.coord_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock d.coord_lock)
      (fun () ->
        match
          Wal.append d.coord record;
          Wal.sync d.coord
        with
        | _ -> ()
        | exception _ -> ()))
  | _ -> ()

(* Sequential mode: prepare the participants inline in a seeded order; on
   first failure abort what is prepared, otherwise log the decision and
   commit everything.  Deterministic given the rng state — the check
   harness's scheduler. *)
let multi_sequential t rng participants txn =
  let order = Array.of_list participants in
  shuffle rng order;
  let prepared = ref [] in
  let failure = ref None in
  (try
     Array.iter
       (fun { part; body } ->
         if !failure = None then begin
           let engine = Partition.engine t.partitions.(part) in
           match Engine.prepare ~log_id:txn engine body with
           | Ok () -> prepared := engine :: !prepared
           | Error e -> failure := Some e
         end)
       order
   with e ->
     (* a prepare's durability barrier failed: it already rolled itself
        back; abort the rest and surface the failure *)
     List.iter Engine.abort_prepared !prepared;
     raise e);
  match !failure with
  | None -> (
    match log_decide t txn with
    | () ->
      List.iter Engine.commit_prepared !prepared;
      Ok ()
    | exception e ->
      (* no durable decision — recovery would presume abort, so abort *)
      List.iter Engine.abort_prepared !prepared;
      raise e)
  | Some e ->
    List.iter Engine.abort_prepared !prepared;
    Error e

(* Parallel mode: each participant partition runs one job that prepares,
   reports, then blocks until the coordinator's verdict and applies it.
   Blocking the participant domain is exactly the H-Store protocol — the
   partition must not run other work while it holds prepared state.

   The caller already holds the coordinator locks of every participant
   (ascending order), so no other coordinator can post to these
   partitions until the verdict is applied.  Deadlock-freedom: a blocked
   participant domain waits only on its own coordinator; its coordinator
   waits only on its own participants' futures and (transitively, through
   the ordered locks) on coordinators holding lower partition ids — a
   relation with no cycles.

   If posting fails partway (a partition was stopped mid-flight), every
   already-posted participant gets an Abort_all verdict before the
   failure propagates: stop never strands a prepared partition. *)
let multi_parallel t participants txn =
  let posted = ref [] in
  let post_participant { part; body } =
    let prepared = Future.create () in
    let verdict = Future.create () in
    let finished = Future.create () in
    Partition.post t.partitions.(part) (fun engine ->
        (* [finished] must fill on every path or the coordinator
           blocks forever; likewise [prepared] *)
        Fun.protect
          ~finally:(fun () -> Future.fill finished ())
          (fun () ->
            let r =
              try Engine.prepare ~log_id:txn engine body
              with e ->
                (* the prepare's durability barrier failed and
                   rolled itself back; report a vote of no and
                   re-raise so the partition records the fault *)
                Future.fill prepared
                  (Error (Engine.Txn_aborted ("prepare not durable: " ^ Printexc.to_string e)));
                raise e
            in
            Future.fill prepared r;
            match r with
            | Ok () -> (
              match Future.await verdict with
              | Commit -> Engine.commit_prepared engine
              | Abort_all -> Engine.abort_prepared engine)
            | Error _ -> () (* already rolled back; no verdict owed *)));
    posted := (prepared, verdict, finished) :: !posted
  in
  let abort_posted () =
    (* unwind path (post raised Mailbox.Closed mid-flight): everyone
       already posted must be released with an abort before the failure
       surfaces, or their domains block forever on the verdict *)
    List.iter
      (fun (prepared, verdict, finished) ->
        (match Future.await prepared with
        | Ok () -> Future.fill verdict Abort_all
        | Error _ -> ());
        Future.await finished)
      !posted
  in
  (try List.iter post_participant participants
   with e ->
     abort_posted ();
     raise e);
  let entries = List.rev !posted in
  let results = List.map (fun (p, _, _) -> Future.await p) entries in
  let failure = List.find_map (function Error e -> Some e | Ok () -> None) results in
  (* every participant's Prepare is durable; the Decide below is the
     commit point.  If its sync fails there is no durable decision —
     recovery would presume abort — so the live run must abort too. *)
  let decide_failure = ref None in
  let v =
    match failure with
    | Some _ -> Abort_all
    | None -> (
      match log_decide t txn with
      | () -> Commit
      | exception e ->
        decide_failure := Some e;
        Abort_all)
  in
  List.iter2
    (fun (_, verdict, _) r -> match r with Ok () -> Future.fill verdict v | Error _ -> ())
    entries results;
  List.iter (fun (_, _, finished) -> Future.await finished) entries;
  match !decide_failure with
  | Some e -> raise e
  | None -> ( match failure with None -> Ok () | Some e -> Error e)

(* Execute a multi-partition transaction: all participants commit or none
   do.  Participants must name distinct partitions.  A single participant
   degenerates to the fast path (no coordinator locks taken). *)
let multi t participants =
  match participants with
  | [] -> invalid_arg "Router.multi: no participants"
  | [ { part; body } ] -> single t ~partition:part body
  | _ ->
    let parts = List.map (fun p -> p.part) participants in
    if List.length (List.sort_uniq compare parts) <> List.length parts then
      invalid_arg "Router.multi: duplicate participant partitions";
    Hi_util.Metrics.incr t.m_multi;
    let r =
      with_partition_locks t parts (fun () ->
          let txn = txn_begin t in
          Fun.protect
            ~finally:(fun () -> txn_end t txn)
            (fun () ->
              match t.mode with
              | Sequential rng -> multi_sequential t rng participants txn
              | Parallel -> multi_parallel t participants txn))
    in
    (match r with
    | Error _ ->
      Hi_util.Metrics.incr t.m_multi_aborts;
      (* presumed abort wrote no Decide; tell the replicas the txn is
         finished so they drop its stashed Prepares (outside the
         partition locks — the mark serializes only on the log I/O) *)
      log_mark t
    | Ok () -> ());
    r

(* Force a group-commit barrier on every partition and wait for it.
   Callers that must not report success while acknowledged work could
   still be buffered (server shutdown) use this as the final flush.  A
   sync failure is recorded as a partition failure and re-raised at
   [stop], like any job exception. *)
let sync_all t =
  match t.durable with
  | None -> ()
  | Some _ ->
    let futs =
      Array.map
        (fun p ->
          let fut = Future.create () in
          (try
             Partition.post p (fun engine ->
                 Fun.protect
                   ~finally:(fun () -> Future.fill fut ())
                   (fun () -> ignore (Engine.sync_wal engine)))
           with Mailbox.Closed -> Future.fill fut () (* already stopped, already flushed *));
          fut)
        t.partitions
    in
    Array.iter Future.await futs

(* Global checkpoint: snapshot and truncate every partition's log, then —
   only if every partition actually checkpointed — truncate the
   coordinator decision log.  Holding every coordinator lock (acquired in
   the same ascending order as any transaction) guarantees no transaction
   is between its durable Prepare and its Decide, and once all partition
   logs are truncated no surviving Prepare can need a past decision, so
   the coordinator log can be truncated too.  Returns how many
   partitions checkpointed. *)
let checkpoint t =
  match t.durable with
  | None -> 0
  | Some d ->
    with_partition_locks t
      (List.init (num_partitions t) Fun.id)
      (fun () ->
        let futures =
          Array.to_list
            (Array.mapi
               (fun i p ->
                 let fut = Future.create () in
                 Partition.post p (fun engine ->
                     let r =
                       try
                         ignore (Engine.sync_wal engine);
                         match Engine.wal engine with
                         | Some w ->
                           Engine.write_checkpoint engine
                             ~path:(partition_ckpt_path d.dconfig.wal_dir i);
                           Wal.truncate w;
                           Ok true
                         | None -> Ok false
                       with e -> Error e
                     in
                     Future.fill fut r);
                 fut)
               t.partitions)
        in
        let results = List.map Future.await futures in
        (match List.find_map (function Error e -> Some e | Ok _ -> None) results with
        | Some e -> raise e
        | None -> ());
        let done_n = List.length (List.filter (function Ok true -> true | _ -> false) results) in
        if done_n = Array.length t.partitions then begin
          Mutex.lock d.coord_lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock d.coord_lock)
            (fun () -> Wal.truncate d.coord)
        end;
        done_n)

let stop t =
  Array.iter Partition.stop t.partitions;
  (* partitions flushed at stop; release the file descriptors *)
  match t.durable with
  | None -> ()
  | Some d ->
    Array.iter
      (fun p -> match Engine.wal (Partition.engine p) with Some w -> Wal.close w | None -> ())
      t.partitions;
    Wal.close d.coord

let engines t = Array.to_list (Array.map Partition.engine t.partitions)

(* Total committed/aborted across partitions (each engine counts its own). *)
let total_committed t =
  Array.fold_left (fun acc p -> acc + (Engine.stats (Partition.engine p)).Engine.committed) 0 t.partitions
