(* The partitioned runtime's front door (DESIGN.md §11): owns the
   partitions, maps partition keys to them, executes single-partition
   transactions on the owner's domain (the fast path), and coordinates
   multi-partition transactions with a prepare/commit protocol so they
   commit on every participant or on none.

   Concurrency model, after H-Store: each partition executes serially on
   its own domain; a single global coordinator lock serializes
   multi-partition transactions, so overlapping participant sets can never
   deadlock and no per-partition locking is needed.  Single-partition
   transactions keep flowing on non-participant partitions while a
   multi-partition transaction is in flight.

   Two modes:
   - [Parallel]: every partition on its own domain (production).
   - [Sequential rng]: no domains; everything executes inline on the
     caller's domain, and the rng picks the order in which participants
     of a multi-partition transaction prepare.  This is the deterministic
     scheduler the differential check harness drives: seeded interleavings
     of cross-partition sub-transactions with reproducible results. *)

open Hi_hstore

type mode = Parallel | Sequential of Hi_util.Xorshift.t

type t = {
  partitions : Partition.t array;
  mode : mode;
  mp_lock : Mutex.t; (* serializes multi-partition coordinators *)
  m_single : Hi_util.Metrics.counter;
  m_multi : Hi_util.Metrics.counter;
  m_multi_aborts : Hi_util.Metrics.counter;
}

let scope = Hi_util.Metrics.scope "shard.router"

let create ?(mode = Parallel) ?(config = Engine.default_config) ?sleep ~partitions ~init () =
  if partitions <= 0 then invalid_arg "Router.create: need at least one partition";
  (* parallel partitions defer hybrid merges to their domain's background
     scheduler; sequential mode keeps the caller's configuration *)
  let pconfig =
    match mode with Parallel -> { config with Engine.inline_merge = false } | Sequential _ -> config
  in
  let parts =
    Array.init partitions (fun id ->
        let p = Partition.create ~config:pconfig ?sleep ~id () in
        init id (Partition.engine p);
        p)
  in
  (match mode with
  | Parallel -> Array.iter Partition.start parts
  | Sequential _ -> ());
  {
    partitions = parts;
    mode;
    mp_lock = Mutex.create ();
    m_single = Hi_util.Metrics.counter scope "single_partition_txns";
    m_multi = Hi_util.Metrics.counter scope "multi_partition_txns";
    m_multi_aborts = Hi_util.Metrics.counter scope "multi_partition_aborts";
  }

let num_partitions t = Array.length t.partitions
let partition t i = t.partitions.(i)
let mode t = t.mode

(* --- key routing --- *)

(* Jump consistent hash (Lamping & Veach, 2014): maps a 64-bit key to one
   of [buckets] with the resize-stability property the router needs —
   growing from n to n+1 partitions moves only ~1/(n+1) of the keys, and
   none of them between pre-existing buckets. *)
let jump_hash key buckets =
  if buckets <= 0 then invalid_arg "jump_hash: no buckets";
  let k = ref key in
  let b = ref (-1) in
  let j = ref 0 in
  while !j < buckets do
    b := !j;
    k := Int64.add (Int64.mul !k 2862933555777941757L) 1L;
    let denom = Int64.to_float (Int64.shift_right_logical !k 33) +. 1.0 in
    j := int_of_float (float_of_int (!b + 1) *. (2147483648.0 /. denom))
  done;
  !b

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* splitmix64 finalizer: integer partition keys are often sequential ids,
   which jump_hash alone would not spread. *)
let mix64 x =
  let open Int64 in
  let z = ref (mul x 0x9E3779B97F4A7C15L) in
  z := mul (logxor !z (shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L;
  z := mul (logxor !z (shift_right_logical !z 27)) 0x94D049BB133111EBL;
  logxor !z (shift_right_logical !z 31)

let route_key t s = jump_hash (fnv1a64 s) (num_partitions t)
let route_int t i = jump_hash (mix64 (Int64.of_int i)) (num_partitions t)

(* --- single-partition fast path --- *)

let single t ~partition:i f =
  Hi_util.Metrics.incr t.m_single;
  Partition.run t.partitions.(i) f

let single_async t ~partition:i f =
  Hi_util.Metrics.incr t.m_single;
  Partition.run_async t.partitions.(i) f

(* --- multi-partition coordinator --- *)

type participant = { part : int; body : Engine.t -> unit }

type verdict = Commit | Abort_all

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Hi_util.Xorshift.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Sequential mode: prepare the participants inline in a seeded order; on
   first failure abort what is prepared, otherwise commit everything.
   Deterministic given the rng state — the check harness's scheduler. *)
let multi_sequential t rng participants =
  let order = Array.of_list participants in
  shuffle rng order;
  let prepared = ref [] in
  let failure = ref None in
  Array.iter
    (fun { part; body } ->
      if !failure = None then begin
        let engine = Partition.engine t.partitions.(part) in
        match Engine.prepare engine body with
        | Ok () -> prepared := engine :: !prepared
        | Error e -> failure := Some e
      end)
    order;
  match !failure with
  | None ->
    List.iter Engine.commit_prepared !prepared;
    Ok ()
  | Some e ->
    List.iter Engine.abort_prepared !prepared;
    Error e

(* Parallel mode: each participant partition runs one job that prepares,
   reports, then blocks until the coordinator's verdict and applies it.
   Blocking the participant domain is exactly the H-Store protocol — the
   partition must not run other work while it holds prepared state — and
   is deadlock-free because the coordinator (which holds mp_lock) is the
   only thing those domains wait on, and it never waits on itself. *)
let multi_parallel t participants =
  Mutex.lock t.mp_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mp_lock)
    (fun () ->
      let entries =
        List.map
          (fun { part; body } ->
            let prepared = Future.create () in
            let verdict = Future.create () in
            let finished = Future.create () in
            Partition.post t.partitions.(part) (fun engine ->
                let r = Engine.prepare engine body in
                Future.fill prepared r;
                (match r with
                | Ok () -> (
                  match Future.await verdict with
                  | Commit -> Engine.commit_prepared engine
                  | Abort_all -> Engine.abort_prepared engine)
                | Error _ -> () (* already rolled back; no verdict owed *));
                Future.fill finished ());
            (prepared, verdict, finished))
          participants
      in
      let results = List.map (fun (p, _, _) -> Future.await p) entries in
      let failure = List.find_map (function Error e -> Some e | Ok () -> None) results in
      let v = match failure with None -> Commit | Some _ -> Abort_all in
      List.iter2
        (fun (_, verdict, _) r -> match r with Ok () -> Future.fill verdict v | Error _ -> ())
        entries results;
      List.iter (fun (_, _, finished) -> Future.await finished) entries;
      match failure with None -> Ok () | Some e -> Error e)

(* Execute a multi-partition transaction: all participants commit or none
   do.  Participants must name distinct partitions.  A single participant
   degenerates to the fast path. *)
let multi t participants =
  match participants with
  | [] -> invalid_arg "Router.multi: no participants"
  | [ { part; body } ] -> single t ~partition:part body
  | _ ->
    let parts = List.map (fun p -> p.part) participants in
    if List.length (List.sort_uniq compare parts) <> List.length parts then
      invalid_arg "Router.multi: duplicate participant partitions";
    Hi_util.Metrics.incr t.m_multi;
    let r =
      match t.mode with
      | Sequential rng -> multi_sequential t rng participants
      | Parallel -> multi_parallel t participants
    in
    (match r with Error _ -> Hi_util.Metrics.incr t.m_multi_aborts | Ok () -> ());
    r

let stop t = Array.iter Partition.stop t.partitions

let engines t = Array.to_list (Array.map Partition.engine t.partitions)

(* Total committed/aborted across partitions (each engine counts its own). *)
let total_committed t =
  Array.fold_left (fun acc p -> acc + (Engine.stats (Partition.engine p)).Engine.committed) 0 t.partitions
