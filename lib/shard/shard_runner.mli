(** Drives a sharded workload through a {!Router} (DESIGN.md §11).

    Single-partition transactions are batched onto their owner's mailbox
    (amortizing messaging overhead); multi-partition transactions run
    through the coordinator inline.  A bounded in-flight window keeps the
    generator from racing unboundedly ahead of slow partitions. *)

type per_partition = {
  pid : int;
  committed : int;
  aborted : int;
  queue_peak : int;  (** deepest mailbox backlog observed at post time *)
}

type stats = {
  total : int;
  committed : int;
  aborted : int;
  multi : int;
  multi_aborted : int;
  elapsed_s : float;
  tps : float;
  mean_latency_s : float;
  p99_latency_s : float;
  per_partition : per_partition list;
}

val default_batch : int

val run :
  ?batch:int ->
  ?max_inflight_batches:int ->
  router:Router.t ->
  next:(int -> Shard_workload.spec) ->
  num_txns:int ->
  unit ->
  stats
