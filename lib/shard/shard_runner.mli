(** Drives transactions through a {!Router} with per-partition batching
    and a bounded in-flight window (DESIGN.md §11).

    {!Window} is the reusable core: single-partition transactions are
    batched onto their owner's mailbox (amortizing messaging overhead) and
    a bounded in-flight window keeps the producer from racing unboundedly
    ahead of slow partitions.  {!run} layers workload dispatch on top;
    the wire-protocol server (DESIGN.md §12) feeds each connection's
    pipelined requests through its own per-connection window. *)

val default_batch : int

(** Per-partition batching with a bounded in-flight window.  Not
    thread-safe: one producer thread per window (completion callbacks run
    on partition domains). *)
module Window : sig
  type t

  val create :
    ?batch:int -> ?max_inflight_batches:int -> router:Router.t -> unit -> t

  val submit :
    t ->
    partition:int ->
    body:(Hi_hstore.Engine.t -> unit) ->
    on_done:((unit, Hi_hstore.Engine.txn_error) result -> float -> unit) ->
    unit
  (** Enqueue one transaction for [partition].  When the partition's
      pending batch reaches [batch], the batch is posted to its mailbox as
      one job that runs each body under {!Hi_hstore.Engine.run} and calls
      [on_done result elapsed_seconds] on the partition's domain.  Blocks
      when more than [max_inflight_batches * partitions] batches are in
      flight. *)

  val flush : t -> unit
  (** Post every pending partial batch. *)

  val drain : t -> unit
  (** {!flush}, then await every in-flight batch: on return all submitted
      transactions have executed and their [on_done] callbacks run. *)

  val queue_peak : t -> partition:int -> int
  (** Deepest mailbox backlog observed at post time. *)
end

type per_partition = {
  pid : int;
  committed : int;
  aborted : int;
  queue_peak : int;  (** deepest mailbox backlog observed at post time *)
}

type stats = {
  total : int;
  committed : int;
  aborted : int;
  multi : int;
  multi_aborted : int;
  elapsed_s : float;
  tps : float;
  mean_latency_s : float;
  p99_latency_s : float;
  per_partition : per_partition list;
}

val run :
  ?batch:int ->
  ?max_inflight_batches:int ->
  router:Router.t ->
  next:(int -> Shard_workload.spec) ->
  num_txns:int ->
  unit ->
  stats
(** Single-partition specs flow through a {!Window}; multi-partition specs
    run through the coordinator inline. *)
