(* Sharded versions of the three paper workloads (DESIGN.md §11).

   The common shape: generation is pulled out of the transaction bodies so
   the coordinator can (a) learn every participant partition before
   dispatching and (b) keep one deterministic generator stream per
   partition — partition p's stream depends only on the base seed and p,
   never on cross-partition timing, so a run at any parallelism is
   reproducible.

   Data placement follows each workload's natural partition key:
   - Voter: phone number, striped (phone mod n); contestants replicated.
     Every vote is single-partition.
   - TPC-C: warehouse id, striped ((w - 1) mod n); items replicated.
     New-order lines supplied by a remote warehouse and payments through a
     remote customer become multi-partition transactions (~10 % / 15 %,
     per spec).
   - Articles: article id, striped ((a - 1) mod n); users replicated.
     User-page reads fan out to every partition.

   Each [next] returns a dispatch spec: [Single (partition, body)] or
   [Multi participants] — consumed by {!Shard_runner}. *)

open Hi_util
open Hi_hstore
open Hi_workloads

type spec =
  | Single of int * (Engine.t -> unit)
  | Multi of Router.participant list

(* Per-partition generator seeds: distinct, deterministic in (seed, p). *)
let gen_seed base p = base + (0x2545F49 * (p + 1))

(* --- Voter --- *)

module Voter_shard = struct
  type t = { router : Router.t; scale : Voter.scale; gens : Xorshift.t array }

  let create ?(mode = Router.Parallel) ?(config = Engine.default_config) ?sleep
      ?(scale = Voter.default_scale) ?(seed = 42) ~partitions () =
    let router =
      Router.create ~mode ~config ?sleep ~partitions
        ~init:(fun _ engine -> ignore (Voter.setup ~scale engine))
        ()
    in
    { router; scale; gens = Array.init partitions (fun p -> Xorshift.create (gen_seed seed p)) }

  let router t = t.router

  (* partition p owns phones p, p+n, p+2n, ... *)
  let owned_phones t p =
    let n = Router.num_partitions t.router in
    (t.scale.Voter.phone_numbers - p + n - 1) / n

  let next t p =
    let n = Router.num_partitions t.router in
    let g = t.gens.(p) in
    let phone = p + (n * Xorshift.int g (owned_phones t p)) in
    let contestant = 1 + Xorshift.int g t.scale.Voter.contestants in
    Single (p, Voter.vote_as ~vote_limit:t.scale.Voter.vote_limit ~phone ~contestant)

  let check_consistency t = List.for_all Voter.check_consistency (Router.engines t.router)
  let stop t = Router.stop t.router
end

(* --- TPC-C --- *)

module Tpcc_shard = struct
  type t = {
    router : Router.t;
    scale : Tpcc.scale;
    rngs : Xorshift.t array; (* per-partition mix/placement draws *)
    gens : Tpcc.state array; (* per-partition NURand/name generator states *)
    execs : Tpcc.state array; (* per-partition executor states (history ids) *)
  }

  let partition_of_warehouse ~partitions w = (w - 1) mod partitions

  let owned_warehouses ~partitions ~warehouses p =
    List.filter (fun w -> partition_of_warehouse ~partitions w = p) (List.init warehouses (fun i -> i + 1))

  let create ?(mode = Router.Parallel) ?(config = Engine.default_config) ?sleep
      ?(scale = Tpcc.default_scale) ?(seed = 42) ~partitions () =
    if scale.Tpcc.warehouses < partitions then
      invalid_arg "Tpcc_shard.create: need at least one warehouse per partition";
    let execs = Array.make partitions None in
    let router =
      Router.create ~mode ~config ?sleep ~partitions
        ~init:(fun p engine ->
          let warehouses = owned_warehouses ~partitions ~warehouses:scale.Tpcc.warehouses p in
          execs.(p) <- Some (Tpcc.setup_partition ~scale ~seed:(7 + p) ~warehouses engine))
        ()
    in
    {
      router;
      scale;
      rngs = Array.init partitions (fun p -> Xorshift.create (gen_seed seed p));
      gens = Array.init partitions (fun p -> Tpcc.make_state ~seed:(gen_seed (seed + 1) p) scale);
      execs = Array.map Option.get execs;
    }

  let router t = t.router

  let home_warehouse t p =
    let n = Router.num_partitions t.router in
    let owned = (t.scale.Tpcc.warehouses - p + n - 1) / n in
    p + 1 + (n * Xorshift.int t.rngs.(p) owned)

  (* uniform warehouse other than [w]; [w] itself when there is only one *)
  let other_warehouse t p w =
    if t.scale.Tpcc.warehouses <= 1 then w
    else begin
      let x = 1 + Xorshift.int t.rngs.(p) (t.scale.Tpcc.warehouses - 1) in
      if x >= w then x + 1 else x
    end

  let new_order t p =
    let n = Router.num_partitions t.router in
    let rng = t.rngs.(p) in
    let gst = t.gens.(p) in
    let w = home_warehouse t p in
    let d = Tpcc.pick_district gst in
    let c = Tpcc.pick_customer gst in
    (* ~1 % of lines are supplied by a remote warehouse (TPC-C §2.4.1.5) *)
    let supply () = if Xorshift.int rng 100 = 0 then other_warehouse t p w else w in
    let lines = Tpcc.gen_order_lines gst ~supply in
    let part_of w' = partition_of_warehouse ~partitions:n w' in
    let remote_parts =
      List.sort_uniq compare
        (List.filter_map
           (fun l ->
             let q = part_of l.Tpcc.li_supply_w in
             if q = p then None else Some q)
           lines)
    in
    if remote_parts = [] then Single (p, Tpcc.new_order_with ~w ~d ~c ~lines ~local:(fun _ -> true))
    else
      Multi
        ({ Router.part = p; body = (fun e -> Tpcc.new_order_with e ~w ~d ~c ~lines ~local:(fun w' -> part_of w' = p)) }
        :: List.map
             (fun q ->
               let qlines = List.filter (fun l -> part_of l.Tpcc.li_supply_w = q) lines in
               { Router.part = q; body = (fun e -> Tpcc.remote_stock_updates e ~lines:qlines) })
             remote_parts)

  let payment t p =
    let n = Router.num_partitions t.router in
    let rng = t.rngs.(p) in
    let gst = t.gens.(p) in
    let w = home_warehouse t p in
    let d = Tpcc.pick_district gst in
    let amount = 1.0 +. (Xorshift.float01 rng *. 4_999.0) in
    (* 15 % of payments are through a customer of a remote warehouse
       (TPC-C §2.5.1.2) *)
    let c_w = if Xorshift.int rng 100 < 15 then other_warehouse t p w else w in
    let c_d = Tpcc.pick_district gst in
    let sel = Tpcc.pick_customer_sel gst in
    let q = partition_of_warehouse ~partitions:n c_w in
    if q = p then
      Single
        ( p,
          fun e ->
            Tpcc.payment_home e ~w ~d ~amount;
            Tpcc.payment_customer t.execs.(p) e ~c_w ~c_d ~sel ~amount ~h_w:w ~h_d:d )
    else
      Multi
        [
          { Router.part = p; body = (fun e -> Tpcc.payment_home e ~w ~d ~amount) };
          {
            Router.part = q;
            body = (fun e -> Tpcc.payment_customer t.execs.(q) e ~c_w ~c_d ~sel ~amount ~h_w:w ~h_d:d);
          };
        ]

  (* standard 45/43/4/4/4 mix, drawn per partition *)
  let next t p =
    let rng = t.rngs.(p) in
    let gst = t.gens.(p) in
    let r = Xorshift.int rng 100 in
    if r < 45 then new_order t p
    else if r < 88 then payment t p
    else if r < 92 then begin
      let w = home_warehouse t p in
      let d = Tpcc.pick_district gst in
      let sel = Tpcc.pick_customer_sel gst in
      Single (p, fun e -> Tpcc.order_status_with e ~w ~d ~sel)
    end
    else if r < 96 then begin
      let w = home_warehouse t p in
      let carrier = 1 + Xorshift.int rng 10 in
      Single (p, fun e -> Tpcc.delivery_with e ~w ~carrier)
    end
    else begin
      let w = home_warehouse t p in
      let d = Tpcc.pick_district gst in
      let threshold = 10 + Xorshift.int rng 11 in
      Single (p, fun e -> Tpcc.stock_level_with e ~w ~d ~threshold)
    end

  let check_consistency t = List.for_all Tpcc.check_ytd_consistency (Router.engines t.router)
  let stop t = Router.stop t.router
end

(* --- Articles --- *)

module Articles_shard = struct
  type t = {
    router : Router.t;
    scale : Articles.scale;
    gens : Xorshift.t array;
    (* partition p owns article ids p+1+n*k; [articles.(p)] is the count of
       owned articles (so the next owned id is p+1+n*articles.(p)), and
       likewise for comment ids *)
    articles : int array;
    comments : int array;
  }

  let owned_initial ~partitions ~total p = (total - p + partitions - 1) / partitions

  let create ?(mode = Router.Parallel) ?(config = Engine.default_config) ?sleep
      ?(scale = Articles.default_scale) ?(seed = 42) ~partitions () =
    let router =
      Router.create ~mode ~config ?sleep ~partitions
        ~init:(fun p engine ->
          ignore (Articles.setup_partition ~scale ~partition:(p, partitions) engine))
        ()
    in
    let initial field = Array.init partitions (fun p -> owned_initial ~partitions ~total:field p) in
    {
      router;
      scale;
      gens = Array.init partitions (fun p -> Xorshift.create (gen_seed seed p));
      articles = initial scale.Articles.initial_articles;
      comments = initial (scale.Articles.initial_articles * scale.Articles.comments_per_article);
    }

  let router t = t.router

  let rand_text rng n =
    String.init ((n / 2) + Xorshift.int rng (n / 2)) (fun _ -> Char.chr (97 + Xorshift.int rng 26))

  (* a uniformly-drawn article owned by partition p *)
  let owned_article t p =
    let n = Router.num_partitions t.router in
    p + 1 + (n * Xorshift.int t.gens.(p) (max 1 t.articles.(p)))

  let next t p =
    let n = Router.num_partitions t.router in
    let g = t.gens.(p) in
    let r = Xorshift.int g 100 in
    if r < 50 then begin
      let a = owned_article t p in
      Single (p, fun e -> Articles.get_article_by_id e a)
    end
    else if r < 60 then begin
      (* user pages span partitions: fan the read out to all of them *)
      let u = 1 + Xorshift.int g t.scale.Articles.users in
      if n = 1 then Single (p, fun e -> Articles.get_articles_of_user e u)
      else
        Multi
          (List.init n (fun q ->
               { Router.part = q; body = (fun e -> Articles.get_articles_of_user e u) }))
    end
    else if r < 88 then begin
      let a = owned_article t p in
      let u = 1 + Xorshift.int g t.scale.Articles.users in
      let text = rand_text g 120 in
      let c_id = p + 1 + (n * t.comments.(p)) in
      t.comments.(p) <- t.comments.(p) + 1;
      Single (p, fun e -> Articles.post_comment_as e ~c_id ~a ~u ~text)
    end
    else if r < 90 then begin
      let u = 1 + Xorshift.int g t.scale.Articles.users in
      let title = rand_text g 60 in
      let text = rand_text g 200 in
      let a_id = p + 1 + (n * t.articles.(p)) in
      t.articles.(p) <- t.articles.(p) + 1;
      Single (p, fun e -> Articles.post_article_row e ~a_id ~u ~title ~text)
    end
    else begin
      let a = owned_article t p in
      Single (p, fun e -> Articles.update_rating_by_id e a)
    end

  (* a_num_comments equals the actual comment rows, per partition over the
     initially-loaded articles *)
  let check_comment_counts t =
    let open Hi_hstore.Value in
    let n = Router.num_partitions t.router in
    let declared_col = Hi_hstore.Schema.column Articles.articles_schema "a_num_comments" in
    let ok = ref true in
    for p = 0 to n - 1 do
      let engine = Partition.engine (Router.partition t.router p) in
      let articles = Engine.table engine "articles" in
      let comments_idx = Engine.index_of engine ~table:"comments" "comments_article_idx" in
      let owned = owned_initial ~partitions:n ~total:t.scale.Articles.initial_articles p in
      for k = 0 to owned - 1 do
        let a = p + 1 + (n * k) in
        match Table.find_by_pk articles [ Int a ] with
        | None -> ok := false
        | Some rowid ->
          let declared = as_int (Table.read articles rowid).(declared_col) in
          let actual =
            List.length (Table.scan_prefix_eq comments_idx ~prefix:[ Int a ] ~limit:10_000)
          in
          if declared <> actual then ok := false
      done
    done;
    !ok

  let stop t = Router.stop t.router
end
