(* A write-once cell with blocking read: how the router and runner get
   results back from partition domains.  [fill]/[await] synchronize
   through a mutex, so the value's construction happens-before its
   observation on the awaiting domain. *)

type 'a t = { lock : Mutex.t; filled : Condition.t; mutable value : 'a option }

let create () = { lock = Mutex.create (); filled = Condition.create (); value = None }

let fill t v =
  Mutex.lock t.lock;
  (match t.value with
  | Some _ ->
    Mutex.unlock t.lock;
    invalid_arg "Future.fill: already filled"
  | None ->
    t.value <- Some v;
    Condition.broadcast t.filled;
    Mutex.unlock t.lock)

let await t =
  Mutex.lock t.lock;
  while t.value = None do
    Condition.wait t.filled t.lock
  done;
  let v = Option.get t.value in
  Mutex.unlock t.lock;
  v

let poll t =
  Mutex.lock t.lock;
  let v = t.value in
  Mutex.unlock t.lock;
  v
