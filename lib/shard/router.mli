(** Partition router and cross-partition coordinator (DESIGN.md §11, §14).

    Owns [n] partitions, maps partition keys to them (jump consistent
    hashing, stable across resizes), executes single-partition
    transactions on the owner's domain and coordinates multi-partition
    transactions so they commit everywhere or nowhere.  Coordinators
    acquire per-partition locks in ascending partition-id order, so
    disjoint multi-partition transactions run concurrently while
    overlapping ones serialize on their lowest shared partition — and the
    single total acquisition order rules out distributed deadlock by
    construction (DESIGN.md §14).  There is no global coordinator lock. *)

open Hi_hstore

(** [Parallel] spawns a domain per partition.  [Sequential rng] runs
    everything inline on the caller's domain, with [rng] choosing the
    order in which multi-partition participants prepare — the
    deterministic scheduler of the differential check harness. *)
type mode = Parallel | Sequential of Hi_util.Xorshift.t

(** {1 Durability (DESIGN.md §13)} *)

type durability_config = {
  wal_dir : string;  (** holds [p<i>.log], [p<i>.ckpt] and [coord.log] *)
  checkpoint_bytes : int;  (** per-partition auto-checkpoint threshold *)
  fault : Hi_util.Fault.t option;  (** injected disk faults, for tests *)
}

val durability : ?checkpoint_bytes:int -> ?fault:Hi_util.Fault.t -> string -> durability_config
(** [durability wal_dir] with a 64 MiB default checkpoint threshold. *)

(** {1 Replication (DESIGN.md §15)} *)

type repl_config = {
  sync_replicas : int;  (** follower acks to await per group commit; 0 = async *)
  retain_bytes : int;  (** per-stream ring retained for gap replay on reconnect *)
  ack_timeout_s : float;  (** semi-sync degrade deadline *)
}

val replication :
  ?sync_replicas:int -> ?retain_bytes:int -> ?ack_timeout_s:float -> unit -> repl_config
(** Defaults: asynchronous ([sync_replicas = 0]), 4 MiB rings, 1 s
    semi-sync deadline. *)

(** What startup recovery found and replayed. *)
type recovery = {
  replayed_txns : int;
  skipped_undecided : int;  (** prepares whose 2PC txn was never decided *)
  malformed : int;
  torn_tails : int;  (** logs truncated at a bad CRC (coord log included) *)
  checkpoints_loaded : int;
  decided_txns : int;  (** commit decisions found in the coordinator log *)
  duration_s : float;
}

type t

val create :
  ?mode:mode ->
  ?config:Engine.config ->
  ?sleep:(float -> unit) ->
  ?durability:durability_config ->
  ?replication:repl_config ->
  partitions:int ->
  init:(int -> Engine.t -> unit) ->
  unit ->
  t
(** [init i engine] loads partition [i]'s slice before any domain starts.
    In [Parallel] mode partition engines are reconfigured with
    [inline_merge = false]: merges run on the partition domain's
    background scheduler instead of inside transactions.

    With [durability] set, startup replays each partition's checkpoint
    and log into the [init]-ed tables first (applying [Prepare] records
    only when the coordinator log holds their decision — presumed abort),
    truncates torn tails, attaches a WAL to every engine and installs the
    auto-checkpoint hook.  [init] must then be deterministic (schema plus
    any static seed): replay is an upsert stream over whatever [init]
    built.

    With [replication] set (requires [durability]), a
    {!Hi_wal.Repl_tap} is installed on every partition WAL and on the
    coordinator decision log before any partition starts: stream [i]
    mirrors partition [i], stream [partitions] the decision log. *)

val repl_tap : t -> Hi_wal.Repl_tap.t option

val coord_stream : t -> int
(** The decision log's stream index ([= num_partitions]). *)

val repl_positions : t -> int array option
(** Last published LSN per stream; [None] without [replication]. *)

val repl_coord_snapshot : t -> (string list -> 'a) -> 'a
(** Run the callback over the coordinator log's durable records while
    holding the coordinator lock, so no decision can publish until it
    returns — the atomic snapshot+activate step for the decision stream
    (DESIGN.md §15).  @raise Invalid_argument without [durability]. *)

val recovery : t -> recovery option
(** What startup recovery replayed; [None] without [durability]. *)

val durable_enabled : t -> bool

val checkpoint : t -> int
(** Snapshot and truncate every partition's log (snapshots cover evicted
    rows, read non-destructively from their anti-cache blocks), then
    truncate the coordinator decision log if — and only if — every
    partition checkpointed.  Serialized against
    multi-partition transactions by acquiring {e every} partition's
    coordinator lock in ascending order.  Returns the number of
    partitions checkpointed; [0] without [durability]. *)

val with_partition_locks : t -> int list -> (unit -> 'a) -> 'a
(** [with_partition_locks t parts f] runs [f] holding the coordinator
    locks of [parts], acquired in ascending partition-id order and
    released afterwards — the ordered-acquisition primitive behind
    {!multi} and {!checkpoint} (DESIGN.md §14).  Exposed for tests and
    for callers that must quiesce coordinators over a partition subset.
    @raise Invalid_argument on duplicate or out-of-range partitions. *)

val sync_all : t -> unit
(** Force a group-commit barrier on every partition and wait for it —
    the final flush before reporting a shutdown complete.  No-op without
    [durability]. *)

val num_partitions : t -> int
val partition : t -> int -> Partition.t
val mode : t -> mode
val engines : t -> Engine.t list

(** {1 Key routing} *)

val jump_hash : int64 -> int -> int
(** Jump consistent hash (Lamping & Veach): growing [n] → [n+1] buckets
    moves only ~1/(n+1) of keys, none between pre-existing buckets. *)

val route_key : t -> string -> int
val route_int : t -> int -> int

(** {1 Execution} *)

val single : t -> partition:int -> (Engine.t -> 'a) -> ('a, Engine.txn_error) result
(** Fast path: one transaction on one partition. *)

val single_async : t -> partition:int -> (Engine.t -> 'a) -> ('a, Engine.txn_error) result Future.t

type participant = { part : int; body : Engine.t -> unit }

val multi : t -> participant list -> (unit, Engine.txn_error) result
(** Multi-partition transaction: every participant prepares; they all
    commit only if every prepare succeeded, otherwise every prepared one
    rolls back and the first error is returned.  Participants must name
    distinct partitions; a single participant degenerates to {!single}.
    The coordinator holds its participants' per-partition locks (ascending
    acquisition) for the transaction's whole span, so transactions with
    disjoint participant sets run concurrently and overlapping ones are
    deadlock-free (DESIGN.md §14).  Safe to call from many domains at
    once.

    With durability on, each participant's [Prepare] record is durable
    before it votes yes, and the coordinator makes a [Decide] record
    durable in its decision log {e before} any participant commits — the
    commit point.  If the decision cannot be made durable, everyone
    aborts and the I/O failure is re-raised. *)

val total_committed : t -> int

val stop : t -> unit
(** Drain, flush and join every partition; close the log files. *)
