(** Partition router and cross-partition coordinator (DESIGN.md §11).

    Owns [n] partitions, maps partition keys to them (jump consistent
    hashing, stable across resizes), executes single-partition
    transactions on the owner's domain and coordinates multi-partition
    transactions so they commit everywhere or nowhere.  A single global
    coordinator lock serializes multi-partition transactions (H-Store
    style), which rules out distributed deadlock by construction. *)

open Hi_hstore

(** [Parallel] spawns a domain per partition.  [Sequential rng] runs
    everything inline on the caller's domain, with [rng] choosing the
    order in which multi-partition participants prepare — the
    deterministic scheduler of the differential check harness. *)
type mode = Parallel | Sequential of Hi_util.Xorshift.t

type t

val create :
  ?mode:mode ->
  ?config:Engine.config ->
  ?sleep:(float -> unit) ->
  partitions:int ->
  init:(int -> Engine.t -> unit) ->
  unit ->
  t
(** [init i engine] loads partition [i]'s slice before any domain starts.
    In [Parallel] mode partition engines are reconfigured with
    [inline_merge = false]: merges run on the partition domain's
    background scheduler instead of inside transactions. *)

val num_partitions : t -> int
val partition : t -> int -> Partition.t
val mode : t -> mode
val engines : t -> Engine.t list

(** {1 Key routing} *)

val jump_hash : int64 -> int -> int
(** Jump consistent hash (Lamping & Veach): growing [n] → [n+1] buckets
    moves only ~1/(n+1) of keys, none between pre-existing buckets. *)

val route_key : t -> string -> int
val route_int : t -> int -> int

(** {1 Execution} *)

val single : t -> partition:int -> (Engine.t -> 'a) -> ('a, Engine.txn_error) result
(** Fast path: one transaction on one partition. *)

val single_async : t -> partition:int -> (Engine.t -> 'a) -> ('a, Engine.txn_error) result Future.t

type participant = { part : int; body : Engine.t -> unit }

val multi : t -> participant list -> (unit, Engine.txn_error) result
(** Multi-partition transaction: every participant prepares; they all
    commit only if every prepare succeeded, otherwise every prepared one
    rolls back and the first error is returned.  Participants must name
    distinct partitions; a single participant degenerates to {!single}. *)

val total_committed : t -> int

val stop : t -> unit
(** Drain and join every partition. *)
