(* One H-Store partition (DESIGN.md §11): an Engine plus its hybrid
   indexes, owned by a dedicated domain that drains a mailbox of jobs and
   executes them serially — the shared-nothing concurrency model of the
   paper's target system.  Nothing else ever touches the engine, so the
   engine itself needs no locks.

   The same type also runs unstarted, with jobs executed inline on the
   caller's domain: that is the deterministic single-domain mode the
   differential check harness schedules by hand.

   Background merges: partition engines are configured with
   [inline_merge = false] by the router, so hybrid-index merges never run
   inside a transaction.  The domain loop runs them instead — every
   [merge_check_period] jobs under sustained load, and whenever the
   mailbox runs empty (the idle path), keeping the merge off the
   transaction critical path. *)

open Hi_hstore

type job = Engine.t -> unit

type t = {
  pid : int;
  engine : Engine.t;
  jobs : job Mailbox.t;
  mutable domain : unit Domain.t option;
  mutable failure : exn option; (* first job exception, re-raised at [stop] *)
  mutable checkpoint_hook : (Engine.t -> unit) option;
      (* installed by the router when durability is on; called at idle
         points to cap WAL growth (DESIGN.md §13) *)
  m_jobs : Hi_util.Metrics.counter;
  m_bg_merges : Hi_util.Metrics.counter;
}

let create ?(config = Engine.default_config) ?sleep ~id () =
  let scope = Hi_util.Metrics.scope ~labels:[ ("partition", string_of_int id) ] "shard.partition" in
  {
    pid = id;
    engine = Engine.create ~config ?sleep ();
    jobs = Mailbox.create ();
    domain = None;
    failure = None;
    checkpoint_hook = None;
    m_jobs = Hi_util.Metrics.counter scope "jobs";
    m_bg_merges = Hi_util.Metrics.counter scope "background_merges";
  }

let id t = t.pid
let engine t = t.engine
let started t = t.domain <> None
let queue_length t = Mailbox.length t.jobs

let set_checkpoint_hook t hook =
  if started t then invalid_arg "Partition.set_checkpoint_hook: already started";
  t.checkpoint_hook <- Some hook

(* Deferred durability acknowledgments a partition may hold before it is
   forced to flush: bounds client latency under sustained load while
   letting one fsync cover many transactions (group commit). *)
let max_deferred_acks = 128

(* How many jobs may run between background-merge checks under sustained
   load.  Small enough that a hot dynamic stage cannot grow far past its
   trigger, large enough that the check is off the per-transaction path. *)
let merge_check_period = 64

let drain_merges t =
  let n = Engine.run_pending_merges t.engine in
  if n > 0 then Hi_util.Metrics.add t.m_bg_merges n

(* Group commit barrier, failure-capturing: the engine releases its
   deferred acks either way (clients must not hang), and the first sync
   failure is re-raised at [stop] like any other job failure. *)
let sync_wal t =
  try ignore (Engine.sync_wal t.engine)
  with e -> if t.failure = None then t.failure <- Some e

let run_checkpoint_hook t =
  match t.checkpoint_hook with
  | None -> ()
  | Some hook -> ( try hook t.engine with e -> if t.failure = None then t.failure <- Some e)

let loop t =
  let since_check = ref 0 in
  let run_job job =
    (try job t.engine
     with e -> if t.failure = None then t.failure <- Some e);
    Hi_util.Metrics.incr t.m_jobs;
    (* under sustained load, flush the group-commit batch before the
       deferred-ack backlog makes client latency unbounded *)
    if Engine.pending_acks t.engine >= max_deferred_acks then sync_wal t;
    incr since_check;
    if !since_check >= merge_check_period then begin
      since_check := 0;
      drain_merges t
    end
  in
  let rec go () =
    match Mailbox.try_pop t.jobs with
    | Some job ->
      run_job job;
      go ()
    | None -> (
      (* the queue ran dry: merge and sync off the critical path — every
         ack deferred by [Engine.on_durable] is released here, before the
         domain can block with clients still waiting — then cap the WAL *)
      drain_merges t;
      sync_wal t;
      run_checkpoint_hook t;
      match Mailbox.pop t.jobs with
      | Some job ->
        run_job job;
        go ()
      | None ->
        (* closed and drained: leave nothing buffered behind *)
        drain_merges t;
        sync_wal t)
  in
  go ()

let start t =
  if started t then invalid_arg "Partition.start: already started";
  t.domain <- Some (Domain.spawn (fun () -> loop t))

(* Enqueue a raw job.  Unstarted partitions execute inline: the caller's
   domain is the partition's domain (sequential mode). *)
let post t job =
  match t.domain with
  | Some _ -> Mailbox.push t.jobs job
  | None ->
    job t.engine;
    Hi_util.Metrics.incr t.m_jobs;
    (* inline mode has no idle point, so the barrier runs per job; group
       commit still covers whatever the job batched *)
    ignore (Engine.sync_wal t.engine)

let run_async t f =
  let fut = Future.create () in
  post t (fun engine ->
      let r = Engine.run engine f in
      (* the caller's answer is the durability acknowledgment: defer it
         to the partition's next group-commit barrier *)
      Engine.on_durable engine (fun () -> Future.fill fut r));
  fut

let run t f = Future.await (run_async t f)

let stop t =
  Mailbox.close t.jobs;
  (match t.domain with
  | Some d ->
    Domain.join d;
    t.domain <- None
  | None -> ());
  (* defensive: the loop's exit path synced, but unstarted partitions and
     post-join stragglers still need their barrier *)
  sync_wal t;
  match t.failure with
  | Some e ->
    t.failure <- None;
    raise e
  | None -> ()
