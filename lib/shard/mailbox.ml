(* A mutex/condition FIFO queue: the inbox of a partition domain
   (DESIGN.md §11).  Producers (the router, the workload runner) push
   jobs; the single consumer (the partition's domain) pops them in order.

   Closing is graceful: [close] refuses further pushes but lets the
   consumer drain everything already enqueued; [pop] returns [None] only
   once the mailbox is both closed and empty, which is the consumer's
   shutdown signal. *)

exception Closed

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  mutable closed : bool;
}

let create () =
  { lock = Mutex.create (); nonempty = Condition.create (); items = Queue.create (); closed = false }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x =
  with_lock t (fun () ->
      if t.closed then raise Closed;
      Queue.push x t.items;
      Condition.signal t.nonempty)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let try_pop t =
  with_lock t (fun () -> if Queue.is_empty t.items then None else Some (Queue.pop t.items))

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> Queue.length t.items)
let is_closed t = with_lock t (fun () -> t.closed)
