(* Anti-caching (paper §7.1, DeBrabant et al. VLDB '13): when the database
   exceeds a memory threshold, the engine packs the coldest tuples into
   blocks and writes them to a simulated disk, leaving in-memory tombstones
   behind.  A transaction touching an evicted tuple aborts, the engine
   fetches the block and reinstates its tuples, and the transaction
   restarts.  Index keys for evicted tuples stay in memory, exactly as in
   H-Store.

   The "disk" is a byte-oriented block store: blocks are serialized to a
   binary payload guarded by a CRC-32 checksum, and every fetch pays a
   latency penalty standing in for the paper's 7200 RPM SATA drive
   (DESIGN.md §3).  Unlike the paper's perfectly reliable device, this
   store has a fault model (DESIGN.md §8): fetches can fail transiently
   (retried with exponential backoff), payloads can be corrupted at rest
   (detected by the checksum and surfaced as a typed [Corrupt] error), and
   fetches can suffer latency spikes.  Faults are injected deterministically
   through {!Hi_util.Fault}. *)

type block = {
  block_table : string;
  block_rows : (int * Value.t array) array; (* (rowid, values) *)
  block_bytes : int;
}

(* --- typed fetch errors --- *)

type error_kind =
  | Transient (* attempt failed but the block is intact; retryable *)
  | Corrupt (* checksum mismatch: the block is permanently lost *)
  | Missing (* no such block in the store *)

let error_kind_name = function Transient -> "transient" | Corrupt -> "corrupt" | Missing -> "missing"

exception Fetch_failed of { block : int; error : error_kind; attempts : int }

let () =
  Printexc.register_printer (function
    | Fetch_failed { block; error; attempts } ->
      Some
        (Printf.sprintf "Anticache.Fetch_failed(block %d, %s, %d attempts)" block
           (error_kind_name error) attempts)
    | _ -> None)

(* --- binary block codec ---

   Payload layout (all integers big-endian):
     u16 table-name length | table-name bytes
     i64 modelled block bytes
     u32 row count
     per row: i64 rowid | u16 column count
       per column: u8 tag | Int -> i64 | Float -> i64 bits
                          | Str -> u32 length, bytes | Null -> nothing *)

let add_u16 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let add_u32 buf n =
  add_u16 buf ((n lsr 16) land 0xFFFF);
  add_u16 buf (n land 0xFFFF)

let add_i64 buf n = Buffer.add_int64_be buf (Int64.of_int n)

let encode_block ~table ~rows ~bytes =
  let buf = Buffer.create 1024 in
  add_u16 buf (String.length table);
  Buffer.add_string buf table;
  add_i64 buf bytes;
  add_u32 buf (Array.length rows);
  Array.iter
    (fun (rowid, vals) ->
      add_i64 buf rowid;
      add_u16 buf (Array.length vals);
      Array.iter
        (fun v ->
          match (v : Value.t) with
          | Int x ->
            Buffer.add_char buf '\000';
            add_i64 buf x
          | Float f ->
            Buffer.add_char buf '\001';
            Buffer.add_int64_be buf (Int64.bits_of_float f)
          | Str s ->
            Buffer.add_char buf '\002';
            add_u32 buf (String.length s);
            Buffer.add_string buf s
          | Null -> Buffer.add_char buf '\003')
        vals)
    rows;
  Buffer.to_bytes buf

exception Decode_error

let decode_block payload =
  let s = Bytes.unsafe_to_string payload in
  let pos = ref 0 in
  let need n = if !pos + n > String.length s then raise Decode_error in
  let u8 () =
    need 1;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u16 () =
    let hi = u8 () in
    (hi lsl 8) lor u8 ()
  in
  let u32 () =
    let hi = u16 () in
    (hi lsl 16) lor u16 ()
  in
  let i64 () =
    need 8;
    let v = String.get_int64_be s !pos in
    pos := !pos + 8;
    v
  in
  let str n =
    need n;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  let table = str (u16 ()) in
  let bytes = Int64.to_int (i64 ()) in
  let nrows = u32 () in
  if nrows > String.length s then raise Decode_error;
  let rows =
    Array.init nrows (fun _ ->
        let rowid = Int64.to_int (i64 ()) in
        let ncols = u16 () in
        let vals =
          Array.init ncols (fun _ ->
              match u8 () with
              | 0 -> Value.Int (Int64.to_int (i64 ()))
              | 1 -> Value.Float (Int64.float_of_bits (i64 ()))
              | 2 -> Value.Str (str (u32 ()))
              | 3 -> Value.Null
              | _ -> raise Decode_error)
        in
        (rowid, vals))
  in
  if !pos <> String.length s then raise Decode_error;
  { block_table = table; block_rows = rows; block_bytes = bytes }

(* --- block store --- *)

(* Process-wide registry mirrors of the per-store counters (DESIGN.md
   §10); every store instance aggregates into the same scope. *)
module Metrics = Hi_util.Metrics

let mscope = Metrics.scope "anticache"
let m_evictions = Metrics.counter mscope "evictions"
let m_fetches = Metrics.counter mscope "block_fetches"
let m_transient = Metrics.counter mscope "transient_faults"
let m_retries = Metrics.counter mscope "retries"
let m_checksum_failures = Metrics.counter mscope "checksum_failures"
let m_lost_blocks = Metrics.counter mscope "lost_blocks"
let m_latency_spikes = Metrics.counter mscope "latency_spikes"
let m_disk_bytes = Metrics.gauge mscope "disk_bytes"

type stored = { payload : Bytes.t; crc : int32; stored_table : string; stored_bytes : int }

type config = {
  fetch_penalty_s : float; (* simulated device latency per fetch attempt *)
  max_retries : int; (* extra attempts after a transient failure *)
  backoff_base_s : float; (* first retry delay; doubles per retry *)
  fault : Hi_util.Fault.config option; (* fault schedule; [None] = reliable device *)
  fault_seed : int;
}

let default_config =
  { fetch_penalty_s = 0.0005; max_retries = 4; backoff_base_s = 0.0002; fault = None; fault_seed = 42 }

type stats = {
  evictions : int;
  fetches : int;
  transient_faults : int; (* transient failures observed on fetch attempts *)
  retries : int; (* retry attempts performed after transient failures *)
  corrupt_blocks : int; (* checksum mismatches detected *)
  lost_blocks : int; (* blocks permanently unrecoverable (corrupt or missing) *)
  latency_spikes : int; (* injected latency spikes paid *)
}

type t = {
  store : (int, stored) Hashtbl.t;
  mutable next_block : int;
  mutable disk_bytes : int; (* modelled tuple bytes, as accounted by Fig 9 *)
  mutable physical_bytes : int; (* serialized payload bytes actually stored *)
  mutable evictions : int;
  mutable fetches : int;
  mutable transient_faults : int;
  mutable retries : int;
  mutable corrupt_blocks : int;
  mutable lost_blocks : int;
  mutable latency_spikes : int;
  config : config;
  fault : Hi_util.Fault.t option;
  sleep : float -> unit;
}

let create ?(config = default_config) ?(sleep = Unix.sleepf) () =
  {
    store = Hashtbl.create 256;
    next_block = 0;
    disk_bytes = 0;
    physical_bytes = 0;
    evictions = 0;
    fetches = 0;
    transient_faults = 0;
    retries = 0;
    corrupt_blocks = 0;
    lost_blocks = 0;
    latency_spikes = 0;
    config;
    fault = Option.map (fun fc -> Hi_util.Fault.create ~config:fc config.fault_seed) config.fault;
    sleep;
  }

let write_block t ~table ~rows ~bytes =
  let id = t.next_block in
  t.next_block <- id + 1;
  let payload = encode_block ~table ~rows ~bytes in
  let crc = Hi_util.Crc32.bytes payload in
  (* At-rest corruption is injected after the checksum is computed, so the
     flip is caught on the next fetch — exactly like real bit rot. *)
  (match t.fault with
  | Some f when Hi_util.Fault.corrupt_write f ->
    let off = Hi_util.Fault.corruption_offset f (Bytes.length payload) in
    Bytes.set payload off (Char.chr (Char.code (Bytes.get payload off) lxor 0xFF))
  | _ -> ());
  Hashtbl.replace t.store id { payload; crc; stored_table = table; stored_bytes = bytes };
  t.disk_bytes <- t.disk_bytes + bytes;
  t.physical_bytes <- t.physical_bytes + Bytes.length payload;
  t.evictions <- t.evictions + 1;
  Metrics.incr m_evictions;
  Metrics.set_int m_disk_bytes t.disk_bytes;
  id

let remove_stored t id (s : stored) =
  Hashtbl.remove t.store id;
  t.disk_bytes <- t.disk_bytes - s.stored_bytes;
  t.physical_bytes <- t.physical_bytes - Bytes.length s.payload;
  Metrics.set_int m_disk_bytes t.disk_bytes

(* Simulated device latency: a blocking fetch, like the paper's blocking
   eviction/uneviction path.  [sleep] is injectable so tests run without
   wall-clock stalls. *)
let pay_latency t =
  let spike =
    match t.fault with
    | Some f ->
      let s = Hi_util.Fault.latency_spike f in
      if s > 0.0 then begin
        t.latency_spikes <- t.latency_spikes + 1;
        Metrics.incr m_latency_spikes
      end;
      s
    | None -> 0.0
  in
  let total = t.config.fetch_penalty_s +. spike in
  if total > 0.0 then t.sleep total

let verified_decode (s : stored) =
  if Hi_util.Crc32.bytes s.payload <> s.crc then None
  else match decode_block s.payload with b -> Some b | exception Decode_error -> None

(* Destructive fetch with bounded retry: transient failures back off
   exponentially and retry up to [max_retries] times; a checksum mismatch
   is permanent — the block is dropped from the store, counted in
   [lost_blocks], and surfaced as [Corrupt]. *)
let fetch_block t id =
  match Hashtbl.find_opt t.store id with
  | None -> raise (Fetch_failed { block = id; error = Missing; attempts = 0 })
  | Some s ->
    let rec attempt n =
      pay_latency t;
      let transient = match t.fault with Some f -> Hi_util.Fault.transient_fetch f | None -> false in
      if transient then begin
        t.transient_faults <- t.transient_faults + 1;
        Metrics.incr m_transient;
        if n >= t.config.max_retries then
          raise (Fetch_failed { block = id; error = Transient; attempts = n + 1 })
        else begin
          t.retries <- t.retries + 1;
          Metrics.incr m_retries;
          let backoff = t.config.backoff_base_s *. (2.0 ** float_of_int n) in
          if backoff > 0.0 then t.sleep backoff;
          attempt (n + 1)
        end
      end
      else
        match verified_decode s with
        | Some b ->
          t.fetches <- t.fetches + 1;
          Metrics.incr m_fetches;
          remove_stored t id s;
          b
        | None ->
          t.corrupt_blocks <- t.corrupt_blocks + 1;
          t.lost_blocks <- t.lost_blocks + 1;
          Metrics.incr m_checksum_failures;
          Metrics.incr m_lost_blocks;
          remove_stored t id s;
          raise (Fetch_failed { block = id; error = Corrupt; attempts = n + 1 })
    in
    attempt 0

(* Non-destructive verified read, used by the offline recovery scan: pays
   no latency and sees no transient faults, but a checksum mismatch still
   drops the block and counts it lost. *)
let read_block t id =
  match Hashtbl.find_opt t.store id with
  | None -> Error Missing
  | Some s -> (
    match verified_decode s with
    | Some b -> Ok b
    | None ->
      t.corrupt_blocks <- t.corrupt_blocks + 1;
      t.lost_blocks <- t.lost_blocks + 1;
      Metrics.incr m_checksum_failures;
      Metrics.incr m_lost_blocks;
      remove_stored t id s;
      Error Corrupt)

let drop_block t id =
  match Hashtbl.find_opt t.store id with
  | None -> ()
  | Some s ->
    remove_stored t id s;
    t.lost_blocks <- t.lost_blocks + 1;
    Metrics.incr m_lost_blocks

let mem_block t id = Hashtbl.mem t.store id
let block_ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.store [])

(* Test hook: flip one payload byte of a stored block in place, simulating
   targeted at-rest corruption without a fault schedule. *)
let corrupt_block_for_test t id =
  match Hashtbl.find_opt t.store id with
  | None -> invalid_arg (Printf.sprintf "Anticache.corrupt_block_for_test: unknown block %d" id)
  | Some s ->
    let off = Bytes.length s.payload / 2 in
    Bytes.set s.payload off (Char.chr (Char.code (Bytes.get s.payload off) lxor 0xFF))

let disk_bytes t = t.disk_bytes
let physical_bytes t = t.physical_bytes
let eviction_count t = t.evictions
let fetch_count t = t.fetches
let lost_blocks t = t.lost_blocks

let stats t =
  {
    evictions = t.evictions;
    fetches = t.fetches;
    transient_faults = t.transient_faults;
    retries = t.retries;
    corrupt_blocks = t.corrupt_blocks;
    lost_blocks = t.lost_blocks;
    latency_spikes = t.latency_spikes;
  }

let fault_counters t = Option.map Hi_util.Fault.counters t.fault
