(** Single-partition H-Store-style execution engine (paper §7.1).

    A main-memory row store executing pre-defined stored procedures
    serially, with pluggable index implementations and optional
    anti-caching.  Transactions are OCaml functions over the engine; every
    mutation logs an undo closure, so aborts (and accesses to evicted
    tuples, which abort, fetch and restart) roll the partition back
    exactly.  No exception can leave a half-mutated partition: unexpected
    exceptions roll back before re-raising.

    The anti-cache block store underneath has a fault model (DESIGN.md
    §8): transient fetch failures are retried with backoff inside the
    store; unrecoverable blocks degrade gracefully — the touching
    transaction fails with a typed {!txn_error}, the dead block's rows are
    dropped, and the engine keeps serving the remaining data.  {!recover}
    and {!verify_integrity} provide the restart/repair path. *)

exception Abort of string
(** Raise inside a transaction to abort it; {!run} returns the reason. *)

(** Index implementation built for every table (Fig 8/9 compare these). *)
type index_kind = Btree_config | Hybrid_config | Hybrid_compressed_config

val index_kind_name : index_kind -> string

type config = {
  index_kind : index_kind;
  merge_ratio : int;  (** hybrid-index merge ratio (paper App C) *)
  eviction_threshold_bytes : int option;  (** anti-caching when set *)
  evictable_tables : string list;
  eviction_block_rows : int;
  anticache : Anticache.config;  (** block-store latency/retry/fault policy *)
  inline_merge : bool;
      (** when [false], hybrid indexes never merge inside a transaction;
          the owner polls {!merge_pending} and calls
          {!run_pending_merges} between transactions (DESIGN.md §11) *)
  hash_sidecar : bool;
      (** maintain a primary-key hash sidecar per table so point reads
          are O(1) probes (DESIGN.md §17); [false] is the
          [--no-hash-sidecar] pure-hybrid configuration *)
}

val default_config : config

type stats = {
  mutable committed : int;
  mutable user_aborts : int;
  mutable evicted_restarts : int;
  mutable lost_block_aborts : int;  (** transactions failed on unrecoverable blocks *)
}

type t

val create : ?config:config -> ?sleep:(float -> unit) -> unit -> t
(** [sleep] is forwarded to the anti-cache block store (see
    {!Anticache.create}); inject [fun _ -> ()] in tests. *)

val create_table : t -> Schema.t -> Table.t
(** @raise Invalid_argument on duplicate table names. *)

val table : t -> string -> Table.t
(** @raise Invalid_argument on unknown names. *)

val index_of : t -> table:string -> string -> Table.idx_handle
(** Resolve (table, index) names to a typed handle, cached per engine:
    plan steps resolve once, transactions then use O(1) typed access.
    Handles stay valid across {!recover} and {!clear_tables}.
    @raise Invalid_argument on unknown tables.
    @raise Table.Unknown_index on unknown index names. *)

val pk_of : t -> string -> Table.pk_handle
(** The primary-key access handle of the named table.
    @raise Invalid_argument on unknown tables. *)

val tables_in_order : t -> Table.t list

(** {1 Transactional operations}

    Use these inside a {!run} body; each logs an undo closure. *)

val insert : t -> Table.t -> Value.t array -> int
val update : t -> Table.t -> int -> (int * Value.t) list -> unit
val delete : t -> Table.t -> int -> unit
val read : t -> Table.t -> int -> Value.t array

val project : t -> Table.t -> int -> int array -> Value.t array
(** Typed column extraction for analytics: the named columns of one row,
    without undo logging or an access-clock bump — the OLAP capture job's
    read primitive (DESIGN.md §16).
    @raise Table.Evicted_access when the tuple is anti-cached. *)

(** Why a transaction failed. *)
type txn_error =
  | Txn_aborted of string  (** user abort via {!Abort} *)
  | Txn_restart_limit of int  (** eviction restarts exhausted *)
  | Txn_block_unavailable of { table : string; block : int; attempts : int }
      (** transient fetch failures exhausted the retry budget; the block is
          intact, so retrying the transaction later may succeed *)
  | Txn_block_lost of { table : string; block : int; cause : Anticache.error_kind }
      (** the block was permanently unrecoverable (corrupt or missing); its
          rows were dropped and the engine keeps serving the rest *)

val txn_error_to_string : txn_error -> string

val run : t -> (t -> 'a) -> ('a, txn_error) result
(** Execute a transaction: commits on normal return; rolls back and
    reports on {!Abort}; on {!Table.Evicted_access} rolls back, fetches
    the block and restarts.  Unrecoverable block fetches fail the
    transaction with a typed error after purging the dead block's rows.
    Any other exception rolls back and re-raises.  After a commit the
    anti-caching eviction manager may run.
    @raise Invalid_argument while a prepared transaction is pending. *)

(** {1 Two-phase execution (cross-partition transactions, DESIGN.md §11)} *)

val prepare : ?log_id:int -> t -> (t -> 'a) -> ('a, txn_error) result
(** Execute a sub-transaction body with {!run}'s abort/restart protocol
    but, on success, leave its undo log pending: the engine refuses
    further {!run}/{!prepare} calls until the coordinator decides.
    [Error _] means the sub-transaction already rolled back and no verdict
    is owed.

    With a WAL attached and [log_id] given (the 2PC transaction id), a
    successful prepare writes a durable [Prepare] record {e before}
    returning — the yes vote — so the coordinator's decision log is the
    commit point (DESIGN.md §13).  If the sync fails, the prepare is
    rolled back and the failure re-raised.  Without [log_id] the redo is
    stashed and {!commit_prepared} logs it as an ordinary commit.
    @raise Invalid_argument while another prepared transaction is pending. *)

val commit_prepared : t -> unit
(** Make the pending prepared transaction durable: drop its undo log,
    count the commit, and let the eviction manager run.
    @raise Invalid_argument if nothing is prepared. *)

val abort_prepared : t -> unit
(** Roll the pending prepared transaction back (coordinator-initiated
    abort; not counted as a user abort).
    @raise Invalid_argument if nothing is prepared. *)

(** {1 Durability: write-ahead logging (DESIGN.md §13)}

    With a WAL attached, every committed transaction appends one logical
    redo record (full post-image per [Put], primary-key values per
    [Del]); the owner calls {!sync_wal} at its batching boundaries so one
    fsync covers a whole group of transactions (group commit).
    Acknowledgments registered with {!on_durable} are deferred until that
    barrier.  Without a WAL all of this is free: acks fire immediately
    and nothing is logged. *)

val attach_wal : t -> Hi_wal.Wal.t -> unit
val wal : t -> Hi_wal.Wal.t option

val on_durable : t -> (unit -> unit) -> unit
(** Run the callback once everything committed so far is durable:
    immediately when no WAL is attached or nothing awaits a sync, else at
    the end of the next {!sync_wal} (even a failed one — see below). *)

val sync_wal : t -> int
(** Group commit barrier: flush buffered records with one write + fsync
    and release every {!on_durable} callback.  Returns how many records
    became durable.  On {!Hi_wal.Wal.Io_error} the callbacks still run —
    clients get their (now unreliable) answers rather than hanging — and
    the exception propagates so the owner records the failure. *)

val pending_acks : t -> int
(** Callbacks waiting on the next {!sync_wal}. *)

type replay_report = {
  replayed : int;  (** transactions applied *)
  skipped_undecided : int;  (** [Prepare] records with no commit decision *)
  malformed : int;  (** CRC-valid frames that failed to decode *)
  max_txn : int;  (** largest 2PC transaction id seen; [-1] when none *)
}

val replay : t -> decided:(int -> bool) -> string list -> replay_report
(** Replay CRC-verified records (checkpoint records first, then the log)
    into the tables.  [Commit] applies unconditionally; [Prepare] only
    when [decided txn] — presumed abort.  Idempotent: replaying records
    already reflected in the tables converges to the same state. *)

val write_checkpoint : t -> path:string -> unit
(** Atomically snapshot every row — live and evicted — as replayable
    records (tmp + fsync + rename).  Truncate the log only after this
    returns.  Evicted rows are read non-destructively from their
    anti-cache blocks, so checkpointing is safe (and the WAL stays
    bounded) under eviction; recovery restores them as live rows. *)

val iter_snapshot_records : t -> (string -> unit) -> unit
(** Emit every row (live and evicted) as one encoded replayable
    [Redo.Commit] record.  The enumeration {!write_checkpoint} writes,
    exposed for replication catch-up snapshots (DESIGN.md §15). *)

val has_evicted_rows : t -> bool

val in_prepared : t -> bool
(** A prepared sub-transaction awaits its 2PC verdict.  Its effects are
    applied but uncommitted, so state snapshots ({!write_checkpoint},
    {!iter_snapshot_records}) taken now would capture them — snapshot
    callers running between transactions must skip (or retry after) the
    prepared window. *)

val clear_tables : t -> unit
(** Drop every table's rows (replica resync reset, DESIGN.md §15).  Run
    on the owning partition's domain like any other mutation. *)

(** {1 Deferred merge scheduling (DESIGN.md §11)} *)

val merge_pending : t -> bool
(** True when some index's merge trigger has fired.  Meaningful with
    [inline_merge = false], where nothing else will run the merge. *)

val run_pending_merges : t -> int
(** Run exactly the merges whose trigger has fired; returns how many ran.
    Call between transactions (the partition domain's idle work). *)

(** {1 Accounting} *)

type memory_breakdown = {
  tuple_bytes : int;
  pk_index_bytes : int;
  secondary_index_bytes : int;
  hash_index_bytes : int;  (** pk hash sidecars; 0 with [--no-hash-sidecar] *)
  anticache_disk_bytes : int;
}

val total_in_memory : memory_breakdown -> int
val memory_breakdown : t -> memory_breakdown

val flush_indexes : t -> unit
(** Force all pending hybrid-index merges (measurement aid). *)

(** {1 Recovery & integrity (DESIGN.md §8)} *)

type recovery_report = {
  tables_recovered : int;
  recovered_live : int;  (** live rows whose index entries were rebuilt *)
  recovered_evicted : int;  (** tombstones re-pointed from verified blocks *)
  dropped_rows : int;  (** rows lost to unreadable blocks *)
  dropped_blocks : int;  (** blocks found corrupt or missing *)
}

val recover : t -> recovery_report
(** Restart/repair entry point: discard any in-flight transaction and
    rebuild every table's indexes, free lists and tombstone state from the
    tuple store plus the verified (checksummed) on-disk blocks.  Rows in
    unreadable blocks are dropped and counted. *)

val verify_integrity : t -> string list
(** Integrity check over every table and index: counter consistency, live
    rows reachable through their primary key, no dangling index entries,
    tombstones only over blocks the store still holds, and the hybrid
    dual-stage invariants.  Flushes pending merges first.  Returns
    human-readable violations; [] means consistent. *)

val stats : t -> stats
val anticache : t -> Anticache.t

val fault_stats : t -> Anticache.stats
(** Retry/fault counters of the underlying block store. *)

val make_index : config -> unique:bool -> Table.packed_index
(** The index factory the engine hands to tables (exposed for tests). *)
