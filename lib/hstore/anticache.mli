(** Anti-caching block store (paper §7.1; DeBrabant et al., VLDB '13).

    Cold tuples are packed into blocks, serialized to a checksummed binary
    payload, and written to a simulated disk; a per-fetch latency penalty
    stands in for the paper's SATA drive (DESIGN.md §3).  Index keys of
    evicted tuples stay in memory — only the tuple bytes move.

    Unlike the paper's perfectly reliable device, the store has a fault
    model (DESIGN.md §8): transient fetch failures are retried with
    exponential backoff; at-rest corruption is detected by a per-block
    CRC-32 and surfaced as a typed {!Corrupt} error; latency spikes extend
    individual fetches.  Faults are injected deterministically via
    {!Hi_util.Fault}. *)

type block = {
  block_table : string;
  block_rows : (int * Value.t array) array;  (** (rowid, values) pairs *)
  block_bytes : int;  (** modelled tuple bytes (accounting) *)
}

(** Why a fetch failed. *)
type error_kind =
  | Transient  (** attempt failed but the block is intact; retryable *)
  | Corrupt  (** checksum mismatch: the block is permanently lost *)
  | Missing  (** no such block in the store *)

val error_kind_name : error_kind -> string

exception Fetch_failed of { block : int; error : error_kind; attempts : int }
(** Raised by {!fetch_block} when a block cannot be delivered: [Transient]
    after retries are exhausted, [Corrupt]/[Missing] immediately. *)

type config = {
  fetch_penalty_s : float;  (** simulated device latency per fetch attempt *)
  max_retries : int;  (** extra attempts after a transient failure *)
  backoff_base_s : float;  (** first retry delay; doubles per retry *)
  fault : Hi_util.Fault.config option;  (** fault schedule; [None] = reliable device *)
  fault_seed : int;
}

val default_config : config
(** 0.5 ms fetch penalty, 4 retries, 0.2 ms base backoff, no faults. *)

(** Cumulative counters, including the fault/retry accounting exported
    through [Engine.stats]. *)
type stats = {
  evictions : int;
  fetches : int;
  transient_faults : int;  (** transient failures observed on fetch attempts *)
  retries : int;  (** retry attempts performed after transient failures *)
  corrupt_blocks : int;  (** checksum mismatches detected *)
  lost_blocks : int;  (** blocks permanently unrecoverable *)
  latency_spikes : int;  (** injected latency spikes paid *)
}

type t

val create : ?config:config -> ?sleep:(float -> unit) -> unit -> t
(** [sleep] (default [Unix.sleepf]) pays latency penalties and backoff
    delays; inject [fun _ -> ()] in tests to run without wall-clock
    stalls. *)

val write_block : t -> table:string -> rows:(int * Value.t array) array -> bytes:int -> int
(** Serialize and checksum a block of evicted rows; returns its id. *)

val fetch_block : t -> int -> block
(** Blocking destructive fetch: pays the latency penalty per attempt,
    retries transient faults with exponential backoff, verifies the
    checksum, and removes the block from the store on success.  A corrupt
    block is dropped and counted in [lost_blocks].
    @raise Fetch_failed when the block cannot be delivered. *)

val read_block : t -> int -> (block, error_kind) result
(** Non-destructive verified read for the offline recovery scan: no
    latency, no transient faults.  A checksum mismatch drops the block and
    counts it lost. *)

val drop_block : t -> int -> unit
(** Give up on a block: remove it and count it in [lost_blocks]. *)

val mem_block : t -> int -> bool
val block_ids : t -> int list

val corrupt_block_for_test : t -> int -> unit
(** Flip one payload byte of a stored block (targeted at-rest corruption
    for tests).  @raise Invalid_argument on unknown ids. *)

val disk_bytes : t -> int
(** Modelled tuple bytes on disk (Fig 9 accounting). *)

val physical_bytes : t -> int
(** Serialized payload bytes actually stored. *)

val eviction_count : t -> int
val fetch_count : t -> int
val lost_blocks : t -> int
val stats : t -> stats

val fault_counters : t -> Hi_util.Fault.counters option
(** Injection counts of the attached fault schedule, when one is set. *)
