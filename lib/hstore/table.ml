(* In-memory table: row storage plus a primary index and any number of
   secondary indexes behind the uniform {!Hi_index.Index_intf.INDEX}
   interface, so the whole DBMS switches between B+tree, Hybrid and
   Hybrid-Compressed indexes by configuration (paper §7).

   Rows are referenced by dense integer rowids — these are the "tuple
   pointers" stored as index values.  A row slot is live, free, or an
   anti-caching tombstone holding the id of the on-disk block.

   Point reads take a Griffin-style fast path (DESIGN.md §17): a hash
   sidecar on the primary key is maintained in the same mutation step as
   the primary INDEX, so {!find_by_pk} is an O(1) probe and the ordered
   hybrid stages serve scans and snapshots only. *)

open Hi_util

exception Evicted_access of { table : string; block : int }
exception Duplicate_key of string
exception Unknown_index of { table : string; index : string }

type row = { mutable vals : Value.t array; mutable last_access : int }

type slot = Live of row | Evicted_slot of int | Free

type packed_index = Packed : (module Hi_index.Index_intf.INDEX with type t = 'i) * 'i -> packed_index

type index = { def : Schema.index_def; packed : packed_index }

type t = {
  schema : Schema.t;
  slots : slot Vec.t;
  free : int Vec.t;
  mutable pk : index; (* mutable so {!recover} can rebuild from scratch *)
  mutable secondary : index list;
  make_index : unique:bool -> packed_index; (* kept for index reconstruction *)
  hash : Hi_index.Hash_index.t option; (* pk sidecar; [None] = --no-hash-sidecar *)
  clock : int ref; (* engine-wide access clock for LRU eviction *)
  mutable live_rows : int;
  mutable evicted_rows : int;
}

let build_index make_index (def : Schema.index_def) =
  { def; packed = make_index ~unique:def.idx_unique }

let create ?(clock = ref 0) ?(hash_sidecar = true) ~make_index (schema : Schema.t) =
  {
    schema;
    slots = Vec.create Free;
    free = Vec.create 0;
    pk = build_index make_index schema.primary_key;
    secondary = List.map (build_index make_index) schema.secondary;
    make_index;
    hash = (if hash_sidecar then Some (Hi_index.Hash_index.create ()) else None);
    clock;
    live_rows = 0;
    evicted_rows = 0;
  }

let name t = t.schema.Schema.table_name
let row_count t = t.live_rows + t.evicted_rows

(* --- index helpers --- *)

let idx_insert_unique { packed = Packed ((module I), i); _ } key rowid = I.insert_unique i key rowid
let idx_insert { packed = Packed ((module I), i); _ } key rowid = I.insert i key rowid
let idx_find { packed = Packed ((module I), i); _ } key = I.find i key
let idx_find_all { packed = Packed ((module I), i); _ } key = I.find_all i key
let idx_delete_value { packed = Packed ((module I), i); _ } key rowid = ignore (I.delete_value i key rowid)
let idx_scan { packed = Packed ((module I), i); _ } key n = I.scan_from i key n
let idx_memory { packed = Packed ((module I), i); _ } = I.memory_bytes i
let idx_flush { packed = Packed ((module I), i); _ } = I.flush i
let idx_merge_pending { packed = Packed ((module I), i); _ } = I.merge_pending i

(* --- typed index handles --- *)

(* A handle names an index by position, not by the [index] record itself:
   {!recover} and {!clear} rebuild the records from the schema in schema
   order, so positions stay valid across rebuilds while a captured record
   would go stale.  Position -1 is the primary key. *)

type pk_handle = t

type idx_handle = { ih_tbl : t; ih_pos : int }

let pk t = t

let index t iname =
  if t.pk.def.Schema.idx_name = iname then Some { ih_tbl = t; ih_pos = -1 }
  else
    let rec look pos = function
      | [] -> None
      | ix :: rest ->
        if ix.def.Schema.idx_name = iname then Some { ih_tbl = t; ih_pos = pos }
        else look (pos + 1) rest
    in
    look 0 t.secondary

let index_exn t iname =
  match index t iname with
  | Some h -> h
  | None -> raise (Unknown_index { table = name t; index = iname })

let handle_index { ih_tbl; ih_pos } = if ih_pos < 0 then ih_tbl.pk else List.nth ih_tbl.secondary ih_pos

let index_name h = (handle_index h).def.Schema.idx_name
let handle_table h = h.ih_tbl

(* --- row access --- *)

let touch t row =
  incr t.clock;
  row.last_access <- !(t.clock)

let get_row t rowid =
  match Vec.get t.slots rowid with
  | Live row ->
    touch t row;
    row
  | Evicted_slot block -> raise (Evicted_access { table = name t; block })
  | Free -> invalid_arg (Printf.sprintf "Table.%s: dangling rowid %d" (name t) rowid)

let read t rowid = (get_row t rowid).vals

(* Typed column extraction for analytics: no access-clock bump, so an
   OLAP capture does not make cold tuples look hot (DESIGN.md §16). *)
let project_columns t rowid (cols : int array) =
  match Vec.get t.slots rowid with
  | Live row -> Array.map (fun c -> row.vals.(c)) cols
  | Evicted_slot block -> raise (Evicted_access { table = name t; block })
  | Free -> invalid_arg (Printf.sprintf "Table.%s: dangling rowid %d" (name t) rowid)

let pk_snapshot t =
  let (Packed ((module I), i)) = t.pk.packed in
  I.snapshot i

let pk_generation t =
  let (Packed ((module I), i)) = t.pk.packed in
  I.generation i

let pk_pinned_snapshots t =
  let (Packed ((module I), i)) = t.pk.packed in
  I.pinned_snapshots i

(* --- writes (each returns an undo closure for transaction rollback) --- *)

let alloc_slot t =
  if Vec.length t.free > 0 then Vec.pop t.free
  else begin
    Vec.push t.slots Free;
    Vec.length t.slots - 1
  end

let insert_row_at t rowid (vals : Value.t array) =
  Vec.set t.slots rowid (Live { vals; last_access = !(t.clock) });
  t.live_rows <- t.live_rows + 1;
  List.iter (fun ix -> idx_insert ix (Schema.key_of_row t.schema ix.def vals) rowid) t.secondary

let insert t (vals : Value.t array) =
  if Array.length vals <> Array.length t.schema.Schema.columns then
    invalid_arg (Printf.sprintf "Table.%s: wrong arity" (name t));
  Array.iteri
    (fun i v ->
      if not (Value.matches_ty v t.schema.Schema.columns.(i).col_ty) then
        invalid_arg
          (Printf.sprintf "Table.%s: column %s type mismatch" (name t)
             t.schema.Schema.columns.(i).col_name))
    vals;
  let pk_key = Schema.key_of_row t.schema t.pk.def vals in
  let rowid = alloc_slot t in
  (* Sidecar maintenance is atomic with the primary insert: the hash is
     touched only after [insert_unique] succeeds, so a Duplicate_key
     leaves no half-applied sidecar entry behind (the pre-existing key
     keeps its original rowid). *)
  if not (idx_insert_unique t.pk pk_key rowid) then begin
    Vec.push t.free rowid;
    raise (Duplicate_key (name t))
  end;
  Option.iter (fun h -> Hi_index.Hash_index.insert h pk_key rowid) t.hash;
  insert_row_at t rowid vals;
  rowid

let remove_row_entries t rowid vals =
  let pk_key = Schema.key_of_row t.schema t.pk.def vals in
  let (Packed ((module I), i)) = t.pk.packed in
  ignore (I.delete i pk_key);
  Option.iter (fun h -> ignore (Hi_index.Hash_index.delete h pk_key)) t.hash;
  List.iter (fun ix -> idx_delete_value ix (Schema.key_of_row t.schema ix.def vals) rowid) t.secondary

let delete t rowid =
  let row = get_row t rowid in
  remove_row_entries t rowid row.vals;
  Vec.set t.slots rowid Free;
  Vec.push t.free rowid;
  t.live_rows <- t.live_rows - 1;
  row.vals

(* Update non-key columns in place.  Key-column updates would require an
   index delete + insert; the OLTP benchmarks of §7 never do this, so it is
   rejected to keep undo simple. *)
let update t rowid (updates : (int * Value.t) list) =
  let row = get_row t rowid in
  let key_cols =
    t.pk.def.Schema.idx_cols @ List.concat_map (fun ix -> ix.def.Schema.idx_cols) t.secondary
  in
  List.iter
    (fun (c, _) ->
      if List.mem c key_cols then
        invalid_arg (Printf.sprintf "Table.%s: update of indexed column %d" (name t) c))
    updates;
  let old = Array.copy row.vals in
  List.iter (fun (c, v) -> row.vals.(c) <- v) updates;
  old

let restore t rowid (old : Value.t array) =
  match Vec.get t.slots rowid with
  | Live row -> row.vals <- old
  | Evicted_slot _ | Free -> invalid_arg (Printf.sprintf "Table.%s: restore of dead row" (name t))

(* --- lookups --- *)

(* The hash sidecar is authoritative when present: it holds exactly the
   primary index's key set (live and evicted rows both keep their keys in
   memory, paper §7.1), so a probe miss is a real miss and never falls
   through to the ordered index.  Evicted_access semantics are unchanged
   — the probe returns a rowid, and reading its slot raises as usual. *)
let find_by_pk t key_values =
  let key = Schema.key_of_values t.schema t.pk.def key_values in
  match t.hash with
  | Some h -> Hi_index.Hash_index.find h key
  | None -> idx_find t.pk key

(* Same lookup through the ordered primary index, bypassing the sidecar —
   the oracle side of the hash_check differential. *)
let find_by_pk_ordered t key_values =
  idx_find t.pk (Schema.key_of_values t.schema t.pk.def key_values)

let pk_find t key_values = find_by_pk t key_values

let find_all h key_values =
  let ix = handle_index h in
  idx_find_all ix (Schema.key_of_values h.ih_tbl.schema ix.def key_values)

(* Range scan over an index from a prefix of its columns: returns up to
   [limit] rowids whose keys start at or after the prefix. *)
let scan h ~prefix ~limit =
  let ix = handle_index h in
  let key = Schema.prefix_key_of_values h.ih_tbl.schema ix.def prefix in
  List.map snd (idx_scan ix key limit)

(* Rowids whose index key exactly matches the prefix columns. *)
let scan_prefix_eq h ~prefix ~limit =
  let ix = handle_index h in
  let key = Schema.prefix_key_of_values h.ih_tbl.schema ix.def prefix in
  List.filter_map
    (fun (k, rowid) -> if String.length k >= String.length key && String.sub k 0 (String.length key) = key then Some rowid else None)
    (idx_scan ix key limit)

(* --- anti-caching hooks --- *)

(* Visit every live row without bumping the access clock: checkpoint
   enumeration must not make everything look recently used. *)
let iter_live t f =
  for rowid = 0 to Vec.length t.slots - 1 do
    match Vec.get t.slots rowid with
    | Live row -> f rowid row.vals
    | Evicted_slot _ | Free -> ()
  done

(* Visit every evicted row by reading its block from the anti-cache
   store.  [read_block] is the non-destructive verified read, so this
   neither un-evicts tuples nor bumps access clocks; blocks that fail
   verification are skipped (their rows degrade to lost-block misses,
   same as {!recover}).  Each readable block is fetched once, whatever
   its tombstone count. *)
let iter_evicted t (ac : Anticache.t) f =
  let blocks = Hashtbl.create 8 in
  for rowid = 0 to Vec.length t.slots - 1 do
    match Vec.get t.slots rowid with
    | Evicted_slot block ->
      let slots = try Hashtbl.find blocks block with Not_found -> [] in
      Hashtbl.replace blocks block (rowid :: slots)
    | Live _ | Free -> ()
  done;
  Hashtbl.iter
    (fun block slots ->
      match Anticache.read_block ac block with
      | Ok b when b.Anticache.block_table = name t ->
        let by_rowid = Hashtbl.create (Array.length b.Anticache.block_rows) in
        Array.iter (fun (rowid, vals) -> Hashtbl.replace by_rowid rowid vals) b.Anticache.block_rows;
        List.iter
          (fun rowid ->
            match Hashtbl.find_opt by_rowid rowid with
            | Some vals -> f rowid vals
            | None -> ())
          slots
      | Ok _ | Error _ -> ())
    blocks

(* Pick the [target] coldest live rows (smallest last_access). *)
let coldest_rows t target =
  let acc = ref [] in
  for rowid = 0 to Vec.length t.slots - 1 do
    match Vec.get t.slots rowid with
    | Live row -> acc := (row.last_access, rowid) :: !acc
    | Evicted_slot _ | Free -> ()
  done;
  let sorted = List.sort compare !acc in
  let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else snd x :: take (n - 1) rest in
  take target sorted

let evict_rows t (ac : Anticache.t) rowids =
  let rows =
    List.filter_map
      (fun rowid ->
        match Vec.get t.slots rowid with Live row -> Some (rowid, row.vals) | _ -> None)
      rowids
  in
  if rows = [] then None
  else begin
    let bytes = List.length rows * Schema.tuple_bytes t.schema in
    let block = Anticache.write_block ac ~table:(name t) ~rows:(Array.of_list rows) ~bytes in
    List.iter
      (fun (rowid, _) ->
        Vec.set t.slots rowid (Evicted_slot block);
        t.live_rows <- t.live_rows - 1;
        t.evicted_rows <- t.evicted_rows + 1)
      rows;
    Some block
  end

let unevict_block t (ac : Anticache.t) block =
  (* The fetch happens before any table mutation, so a raised
     {!Anticache.Fetch_failed} leaves the table untouched. *)
  let b = Anticache.fetch_block ac block in
  Array.iter
    (fun (rowid, vals) ->
      match Vec.get t.slots rowid with
      | Evicted_slot _ ->
        Vec.set t.slots rowid (Live { vals; last_access = !(t.clock) });
        t.live_rows <- t.live_rows + 1;
        t.evicted_rows <- t.evicted_rows - 1
      | Live _ | Free -> ())
    b.Anticache.block_rows

(* --- fault tolerance: lost blocks, recovery, integrity (DESIGN.md §8) --- *)

(* Remove every index entry pointing at a rowid in [dead]. *)
let purge_rowids_from_indexes t dead =
  let purge ?(on_dead = fun _ -> ()) ix =
    let (Packed ((module I), i)) = ix.packed in
    let hits = ref [] in
    I.iter_sorted i (fun k vs ->
        Array.iter (fun v -> if Hashtbl.mem dead v then hits := (k, v) :: !hits) vs);
    List.iter
      (fun (k, v) ->
        ignore (I.delete_value i k v);
        on_dead k)
      !hits
  in
  (* dead primary keys leave the sidecar in the same step *)
  purge t.pk ~on_dead:(fun k -> Option.iter (fun h -> ignore (Hi_index.Hash_index.delete h k)) t.hash);
  List.iter purge t.secondary

(* Graceful degradation when a block is unrecoverable: free its tombstone
   slots and drop their index keys, so later transactions see clean misses
   instead of re-raising on the same dead block.  Returns the number of
   rows lost. *)
let drop_evicted_block t block =
  let dead = Hashtbl.create 16 in
  for rowid = 0 to Vec.length t.slots - 1 do
    match Vec.get t.slots rowid with
    | Evicted_slot b when b = block ->
      Hashtbl.replace dead rowid ();
      Vec.set t.slots rowid Free;
      Vec.push t.free rowid;
      t.evicted_rows <- t.evicted_rows - 1
    | Live _ | Evicted_slot _ | Free -> ()
  done;
  if Hashtbl.length dead > 0 then purge_rowids_from_indexes t dead;
  Hashtbl.length dead

type recovery = {
  recovered_live : int; (* live rows whose index entries were rebuilt *)
  recovered_evicted : int; (* tombstones re-pointed from verified blocks *)
  dropped_rows : int; (* rows lost to unreadable blocks *)
  dropped_blocks : int; (* blocks found corrupt or missing *)
}

(* Crash-recovery entry point: rebuild every index from scratch out of the
   live rows plus the rows of every verified (checksummed) on-disk block of
   this table, exactly as an H-Store restart reconstructs its indexes from
   the tuple store.  Tombstones whose block is corrupt or missing are
   dropped and counted.  The free list is rebuilt as well. *)
let recover t (ac : Anticache.t) =
  (* verified rows of this table's readable blocks: block -> rowid -> vals *)
  let block_rows : (int, (int, Value.t array) Hashtbl.t) Hashtbl.t = Hashtbl.create 32 in
  let bad_blocks = Hashtbl.create 8 in
  List.iter
    (fun id ->
      match Anticache.read_block ac id with
      | Ok b when b.Anticache.block_table = name t ->
        let m = Hashtbl.create (Array.length b.Anticache.block_rows) in
        Array.iter (fun (rowid, vals) -> Hashtbl.replace m rowid vals) b.Anticache.block_rows;
        Hashtbl.replace block_rows id m
      | Ok _ -> () (* another table's block *)
      | Error _ -> Hashtbl.replace bad_blocks id ())
    (Anticache.block_ids ac);
  (* fresh indexes *)
  t.pk <- build_index t.make_index t.schema.Schema.primary_key;
  t.secondary <- List.map (build_index t.make_index) t.schema.Schema.secondary;
  (* clear-free sidecar rebuild: count the surviving slots first so the
     hash reallocates exactly once, then the sweep below repopulates it
     alongside the primary index *)
  Option.iter
    (fun h ->
      let expect = ref 0 in
      for rowid = 0 to Vec.length t.slots - 1 do
        match Vec.get t.slots rowid with
        | Live _ | Evicted_slot _ -> incr expect
        | Free -> ()
      done;
      Hi_index.Hash_index.rebuild h ~expect:!expect (fun _insert -> ()))
    t.hash;
  Vec.clear t.free;
  t.live_rows <- 0;
  t.evicted_rows <- 0;
  let recovered_live = ref 0 and recovered_evicted = ref 0 and dropped = ref 0 in
  let index_row rowid vals =
    let pk_key = Schema.key_of_row t.schema t.pk.def vals in
    if idx_insert_unique t.pk pk_key rowid then
      Option.iter (fun h -> Hi_index.Hash_index.insert h pk_key rowid) t.hash;
    List.iter (fun ix -> idx_insert ix (Schema.key_of_row t.schema ix.def vals) rowid) t.secondary
  in
  for rowid = 0 to Vec.length t.slots - 1 do
    match Vec.get t.slots rowid with
    | Live row ->
      index_row rowid row.vals;
      t.live_rows <- t.live_rows + 1;
      incr recovered_live
    | Evicted_slot block -> (
      match
        Option.bind (Hashtbl.find_opt block_rows block) (fun m -> Hashtbl.find_opt m rowid)
      with
      | Some vals ->
        (* index keys of evicted tuples stay in memory (paper §7.1) *)
        index_row rowid vals;
        t.evicted_rows <- t.evicted_rows + 1;
        incr recovered_evicted
      | None ->
        Hashtbl.replace bad_blocks block ();
        Vec.set t.slots rowid Free;
        Vec.push t.free rowid;
        incr dropped)
    | Free -> Vec.push t.free rowid
  done;
  {
    recovered_live = !recovered_live;
    recovered_evicted = !recovered_evicted;
    dropped_rows = !dropped;
    dropped_blocks = Hashtbl.length bad_blocks;
  }

(* Drop every row and rebuild empty indexes — the replica's resync reset
   (DESIGN.md §15): a full state snapshot replaces whatever the stale
   copy held, so stale rows must not survive it.  Tombstones are dropped
   too (their blocks become unreferenced); a replica never evicts, so in
   practice this clears live rows only. *)
let clear t =
  t.pk <- build_index t.make_index t.schema.Schema.primary_key;
  t.secondary <- List.map (build_index t.make_index) t.schema.Schema.secondary;
  Option.iter Hi_index.Hash_index.clear t.hash;
  Vec.clear t.slots;
  Vec.clear t.free;
  t.live_rows <- 0;
  t.evicted_rows <- 0

(* Integrity check over the table and its indexes (DESIGN.md §8): returns
   human-readable violations, [] when consistent.  Walks slots directly so
   the scan neither bumps access clocks nor trips {!Evicted_access}. *)
let verify t (ac : Anticache.t) =
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := (name t ^ ": " ^ s) :: !violations) fmt in
  let live = ref 0 and evicted = ref 0 in
  for rowid = 0 to Vec.length t.slots - 1 do
    match Vec.get t.slots rowid with
    | Live row ->
      incr live;
      (* every live row must be reachable through its primary key *)
      let key = Schema.key_of_row t.schema t.pk.def row.vals in
      if idx_find t.pk key <> Some rowid then bad "live row %d unreachable via primary key" rowid
    | Evicted_slot block ->
      incr evicted;
      (* tombstones must reference blocks the store still holds *)
      if not (Anticache.mem_block ac block) then
        bad "tombstone for row %d references dead block %d" rowid block
    | Free -> ()
  done;
  if !live <> t.live_rows then bad "live_rows counter %d, actual %d" t.live_rows !live;
  if !evicted <> t.evicted_rows then bad "evicted_rows counter %d, actual %d" t.evicted_rows !evicted;
  (* every index entry must point at an existing (live or evicted) slot,
     and unique indexes must hold one value per key *)
  let check_index what ix =
    let (Packed ((module I), i)) = ix.packed in
    I.iter_sorted i (fun _k vs ->
        if ix.def.Schema.idx_unique && Array.length vs > 1 then
          bad "%s %s holds %d values for one key" what ix.def.Schema.idx_name (Array.length vs);
        Array.iter
          (fun v ->
            let dangling =
              v < 0 || v >= Vec.length t.slots
              || match Vec.get t.slots v with Free -> true | Live _ | Evicted_slot _ -> false
            in
            if dangling then bad "%s %s entry points at dead rowid %d" what ix.def.Schema.idx_name v)
          vs);
    List.iter (fun v -> bad "index %s: %s" ix.def.Schema.idx_name v) (I.check_invariants i)
  in
  check_index "primary index" t.pk;
  List.iter (check_index "secondary index") t.secondary;
  (* sidecar agreement: the hash must hold exactly the primary index's
     key set with identical rowids — both directions, since the entry
     counts match only when neither side has extras *)
  Option.iter
    (fun h ->
      let (Packed ((module I), i)) = t.pk.packed in
      let pk_keys = ref 0 in
      I.iter_sorted i (fun k vs ->
          incr pk_keys;
          if Array.length vs > 0 then
            match Hi_index.Hash_index.find h k with
            | Some v when v = vs.(0) -> ()
            | Some v -> bad "hash sidecar maps a key to rowid %d, primary index says %d" v vs.(0)
            | None -> bad "hash sidecar is missing a primary-index key");
      let hc = Hi_index.Hash_index.entry_count h in
      if hc <> !pk_keys then bad "hash sidecar holds %d entries, primary index %d keys" hc !pk_keys)
    t.hash;
  List.rev !violations

(* --- accounting --- *)

let tombstone_bytes = 16 (* in-memory marker for an evicted tuple *)

let tuple_memory_bytes t =
  (t.live_rows * Schema.tuple_bytes t.schema) + (t.evicted_rows * tombstone_bytes)

let pk_index_memory_bytes t = idx_memory t.pk
let secondary_index_memory_bytes t = List.fold_left (fun acc ix -> acc + idx_memory ix) 0 t.secondary

let hash_sidecar_memory_bytes t =
  match t.hash with Some h -> Hi_index.Hash_index.memory_bytes h | None -> 0

let hash_sidecar_enabled t = Option.is_some t.hash
let flush_indexes t =
  idx_flush t.pk;
  List.iter idx_flush t.secondary

let merge_pending t = idx_merge_pending t.pk || List.exists idx_merge_pending t.secondary

(* Flush only the indexes whose merge trigger has fired; returns how many
   merges ran.  This is the unit of work the partition domain's background
   scheduler performs between transactions (DESIGN.md §11). *)
let run_pending_merges t =
  let ran = ref 0 in
  let step ix =
    if idx_merge_pending ix then begin
      idx_flush ix;
      incr ran
    end
  in
  step t.pk;
  List.iter step t.secondary;
  !ran
let live_rows t = t.live_rows
let evicted_rows t = t.evicted_rows

let schema t = t.schema
