(* Single-partition H-Store-style execution engine (paper §7.1): a
   main-memory row store executing pre-defined stored procedures serially,
   one at a time, with pluggable index implementations and optional
   anti-caching.

   Transactions are OCaml functions over the engine.  Every mutation logs
   an undo closure; on abort (or on touching an evicted tuple) the undo log
   rolls the partition back, evicted blocks are fetched, and the
   transaction restarts — mirroring H-Store's abort-and-restart protocol
   for anti-caching. *)

open Hybrid_index

(* Registry mirrors of [stats]; [txn_seconds] covers the whole
   attempt/restart loop, so an eviction-restarted transaction shows up as
   one (slow) sample. *)
module Metrics = Hi_util.Metrics

let mscope = Metrics.scope "engine"
let m_committed = Metrics.counter mscope "committed"
let m_user_aborts = Metrics.counter mscope "user_aborts"
let m_evicted_restarts = Metrics.counter mscope "evicted_restarts"
let m_lost_block_aborts = Metrics.counter mscope "lost_block_aborts"
let m_txn_seconds = Metrics.histogram mscope "txn_seconds"

exception Abort of string

(* Which index implementation the engine builds for every table (Fig 8/9
   compare these three configurations). *)
type index_kind = Btree_config | Hybrid_config | Hybrid_compressed_config

let index_kind_name = function
  | Btree_config -> "B+tree"
  | Hybrid_config -> "Hybrid"
  | Hybrid_compressed_config -> "Hybrid-Compressed"

type config = {
  index_kind : index_kind;
  merge_ratio : int;
  eviction_threshold_bytes : int option; (* anti-caching when set *)
  evictable_tables : string list;
  eviction_block_rows : int;
  anticache : Anticache.config; (* block-store latency/retry/fault policy *)
  inline_merge : bool;
      (* when false, hybrid indexes never merge inside a transaction; the
         owner (a partition domain) polls [merge_pending] and calls
         [run_pending_merges] between transactions (DESIGN.md §11) *)
  hash_sidecar : bool;
      (* maintain a primary-key hash sidecar per table so point reads are
         O(1) probes (DESIGN.md §17); false = pure-hybrid configuration *)
}

let default_config =
  {
    index_kind = Btree_config;
    merge_ratio = 10;
    eviction_threshold_bytes = None;
    evictable_tables = [];
    eviction_block_rows = 256;
    anticache = Anticache.default_config;
    inline_merge = true;
    hash_sidecar = true;
  }

type stats = {
  mutable committed : int;
  mutable user_aborts : int;
  mutable evicted_restarts : int;
  mutable lost_block_aborts : int; (* transactions failed on unrecoverable blocks *)
}

module Wal = Hi_wal.Wal

type t = {
  config : config;
  tables : (string, Table.t) Hashtbl.t;
  table_order : string Hi_util.Vec.t; (* creation order, for stable reports *)
  handles : (string * string, Table.idx_handle) Hashtbl.t;
      (* (table, index) -> resolved handle; plan steps resolve names once
         and transactions then use O(1) typed access *)
  clock : int ref;
  anticache : Anticache.t;
  mutable txns_since_eviction_check : int;
  mutable undo : (unit -> unit) list;
  mutable in_prepared : bool; (* a prepared sub-transaction awaits its verdict *)
  mutable redo : Redo.op list; (* current transaction's writes, newest first *)
  mutable prepared_ops : Redo.op list option;
      (* redo of a transaction prepared without a 2PC log id: not yet
         logged, written as a Commit record by [commit_prepared] *)
  mutable wal : Wal.t option;
  mutable acks : (unit -> unit) list; (* deferred until the next [sync_wal] *)
  stats : stats;
}

let create ?(config = default_config) ?sleep () =
  {
    config;
    tables = Hashtbl.create 16;
    table_order = Hi_util.Vec.create "";
    handles = Hashtbl.create 16;
    clock = ref 0;
    anticache = Anticache.create ~config:config.anticache ?sleep ();
    txns_since_eviction_check = 0;
    undo = [];
    in_prepared = false;
    redo = [];
    prepared_ops = None;
    wal = None;
    acks = [];
    stats = { committed = 0; user_aborts = 0; evicted_restarts = 0; lost_block_aborts = 0 };
  }

(* Build one index instance per the engine configuration.  Unique indexes
   get primary-index semantics; non-unique ones get secondary semantics
   (in-place static updates, concatenating merges — paper §3). *)
let make_index config ~unique : Table.packed_index =
  let hybrid_config kind =
    {
      Hybrid.default_config with
      kind;
      trigger = Hybrid.Ratio config.merge_ratio;
      defer_merge = not config.inline_merge;
    }
  in
  let kind = if unique then Hybrid.Primary else Hybrid.Secondary in
  match config.index_kind with
  | Btree_config ->
    let module I = Instances.Btree_index in
    Table.Packed ((module I), I.create ())
  | Hybrid_config ->
    let (module I) = Instances.hybrid_index ~config:(hybrid_config kind) "btree" in
    Table.Packed ((module I), I.create ())
  | Hybrid_compressed_config ->
    let (module I) = Instances.hybrid_index ~config:(hybrid_config kind) "compressed-btree" in
    Table.Packed ((module I), I.create ())

let create_table t (schema : Schema.t) =
  if Hashtbl.mem t.tables schema.Schema.table_name then
    invalid_arg ("Engine.create_table: duplicate " ^ schema.Schema.table_name);
  let table =
    Table.create ~clock:t.clock ~hash_sidecar:t.config.hash_sidecar
      ~make_index:(make_index t.config) schema
  in
  Hashtbl.replace t.tables schema.Schema.table_name table;
  Hi_util.Vec.push t.table_order schema.Schema.table_name;
  table

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> invalid_arg ("Engine.table: unknown table " ^ name)

(* Typed index-handle resolution with a per-engine cache: handles name
   indexes by schema position, so they stay valid across [recover] and
   [clear_tables] rebuilds (table instances are never replaced). *)
let index_of t ~table:tname iname =
  match Hashtbl.find_opt t.handles (tname, iname) with
  | Some h -> h
  | None ->
    let h = Table.index_exn (table t tname) iname in
    Hashtbl.replace t.handles (tname, iname) h;
    h

let pk_of t tname = Table.pk (table t tname)

let tables_in_order t =
  List.map (fun n -> table t n) (Array.to_list (Hi_util.Vec.to_array t.table_order))

(* --- transactional table operations (undo- and redo-logged) ---

   Redo is captured as values, not rowids (see redo.ml): a [Put] is the
   full post-image, a [Del] the primary-key values, so replay does not
   depend on rowid allocation, which aborted transactions perturb. *)

let push_undo t f = t.undo <- f :: t.undo

let pk_values tbl row =
  List.map (fun c -> row.(c)) (Table.schema tbl).Schema.primary_key.Schema.idx_cols

let insert t tbl vals =
  let rowid = Table.insert tbl vals in
  push_undo t (fun () -> ignore (Table.delete tbl rowid));
  t.redo <- Redo.Put { table = Table.name tbl; row = Array.copy vals } :: t.redo;
  rowid

let update t tbl rowid updates =
  let old = Table.update tbl rowid updates in
  push_undo t (fun () -> Table.restore tbl rowid old);
  let post = Array.copy old in
  List.iter (fun (c, v) -> post.(c) <- v) updates;
  t.redo <- Redo.Put { table = Table.name tbl; row = post } :: t.redo

let delete t tbl rowid =
  let old = Table.delete tbl rowid in
  push_undo t (fun () -> ignore (Table.insert tbl old));
  t.redo <- Redo.Del { table = Table.name tbl; pk = pk_values tbl old } :: t.redo

let read _t tbl rowid = Table.read tbl rowid

(* Analytical (non-transactional) column extraction: no undo logging, no
   access-clock bump — used by the OLAP capture job (DESIGN.md Â§16). *)
let project _t tbl rowid cols = Table.project_columns tbl rowid cols

let rollback t =
  List.iter (fun f -> f ()) t.undo;
  t.undo <- [];
  t.redo <- []

(* --- write-ahead logging (DESIGN.md §13) ---

   The engine only buffers: [run]/[commit_prepared] append one Commit
   record per committed transaction and acknowledgments queue in [acks];
   the owner (a partition domain) calls [sync_wal] at its batching
   boundaries so one fsync covers the whole group.  Without a WAL
   attached everything is a no-op and acks fire immediately. *)

let attach_wal t w = t.wal <- Some w
let wal t = t.wal

(* Run [k] once everything committed so far is durable: immediately when
   there is no WAL or nothing is waiting on a sync, else at the end of
   the next [sync_wal]. *)
let on_durable t k =
  match t.wal with
  | None -> k ()
  | Some w -> if Wal.pending w = 0 && t.acks = [] then k () else t.acks <- k :: t.acks

let pending_acks t = List.length t.acks

(* Group commit barrier.  The deferred acks run even when the sync fails
   (clients get an answer either way); the exception still propagates so
   the owner records the partition failure. *)
let sync_wal t =
  match t.wal with
  | None -> 0
  | Some w ->
    let acks = List.rev t.acks in
    t.acks <- [];
    Fun.protect ~finally:(fun () -> List.iter (fun k -> k ()) acks) (fun () -> Wal.sync w)

(* Append the current transaction's redo as one Commit record — one
   record per transaction, so a torn tail can never replay half of one. *)
let log_commit t =
  (match t.wal with
  | Some w when t.redo <> [] -> Wal.append w (Redo.encode (Redo.Commit (List.rev t.redo)))
  | _ -> ());
  t.redo <- []

(* --- memory accounting (Table 1, Fig 8/9 breakdowns) --- *)

type memory_breakdown = {
  tuple_bytes : int;
  pk_index_bytes : int;
  secondary_index_bytes : int;
  hash_index_bytes : int; (* pk hash sidecars; 0 with --no-hash-sidecar *)
  anticache_disk_bytes : int;
}

let total_in_memory m =
  m.tuple_bytes + m.pk_index_bytes + m.secondary_index_bytes + m.hash_index_bytes

let memory_breakdown t =
  let tuple = ref 0 and pk = ref 0 and sec = ref 0 and hash = ref 0 in
  Hashtbl.iter
    (fun _ tbl ->
      tuple := !tuple + Table.tuple_memory_bytes tbl;
      pk := !pk + Table.pk_index_memory_bytes tbl;
      sec := !sec + Table.secondary_index_memory_bytes tbl;
      hash := !hash + Table.hash_sidecar_memory_bytes tbl)
    t.tables;
  {
    tuple_bytes = !tuple;
    pk_index_bytes = !pk;
    secondary_index_bytes = !sec;
    hash_index_bytes = !hash;
    anticache_disk_bytes = Anticache.disk_bytes t.anticache;
  }

(* --- anti-caching eviction manager (paper §7.1/§7.4) --- *)

(* The memory breakdown walks every index, so the eviction manager checks
   the threshold periodically rather than after every transaction, like
   H-Store's background eviction manager (§7.1). *)
let eviction_check_interval = 128

let maybe_evict t =
  match t.config.eviction_threshold_bytes with
  | None -> ()
  | Some threshold when t.txns_since_eviction_check < eviction_check_interval ->
    ignore threshold;
    t.txns_since_eviction_check <- t.txns_since_eviction_check + 1
  | Some threshold ->
    t.txns_since_eviction_check <- 0;
    let m = memory_breakdown t in
    let used = total_in_memory m in
    if used > threshold then begin
      let excess = used - threshold in
      (* gather the globally coldest rows from the evictable tables *)
      let candidates = ref [] in
      List.iter
        (fun tname ->
          match Hashtbl.find_opt t.tables tname with
          | None -> ()
          | Some tbl ->
            let per_row = Schema.tuple_bytes (Table.schema tbl) in
            let want = (excess / per_row) + t.config.eviction_block_rows in
            List.iter
              (fun rowid -> candidates := (tbl, rowid) :: !candidates)
              (Table.coldest_rows tbl want))
        t.config.evictable_tables;
      (* evict per table in fixed-size blocks until the excess is covered *)
      let freed = ref 0 in
      let by_table = Hashtbl.create 8 in
      List.iter
        (fun (tbl, rowid) ->
          let l = try Hashtbl.find by_table (Table.name tbl) with Not_found -> [] in
          Hashtbl.replace by_table (Table.name tbl) ((tbl, rowid) :: l))
        !candidates;
      Hashtbl.iter
        (fun _ rows ->
          let rec blocks = function
            | [] -> ()
            | rows when !freed >= excess -> ignore rows
            | rows ->
              let rec split n = function
                | [] -> ([], [])
                | x :: rest when n > 0 ->
                  let a, b = split (n - 1) rest in
                  (x :: a, b)
                | rest -> ([], rest)
              in
              let chunk, rest = split t.config.eviction_block_rows rows in
              (match chunk with
              | [] -> ()
              | (tbl, _) :: _ ->
                let rowids = List.map snd chunk in
                let per_row = Schema.tuple_bytes (Table.schema tbl) in
                (match Table.evict_rows tbl t.anticache rowids with
                | Some _ -> freed := !freed + (List.length rowids * per_row)
                | None -> ());
                blocks rest)
          in
          blocks rows)
        by_table
    end

(* --- transaction execution --- *)

let max_restarts = 32

type txn_error =
  | Txn_aborted of string (* user abort via {!Abort} *)
  | Txn_restart_limit of int (* eviction restarts exhausted *)
  | Txn_block_unavailable of { table : string; block : int; attempts : int }
      (* transient fetch failures exhausted the retry budget; retryable *)
  | Txn_block_lost of { table : string; block : int; cause : Anticache.error_kind }
      (* block permanently unrecoverable; its rows were dropped *)

let txn_error_to_string = function
  | Txn_aborted reason -> "aborted: " ^ reason
  | Txn_restart_limit n -> Printf.sprintf "too many eviction restarts (%d)" n
  | Txn_block_unavailable { table; block; attempts } ->
    Printf.sprintf "block %d of %s unavailable after %d attempts" block table attempts
  | Txn_block_lost { table; block; cause } ->
    Printf.sprintf "block %d of %s lost (%s)" block table (Anticache.error_kind_name cause)

(* Shared attempt/restart loop of [run] and [prepare].  [on_success] decides
   what a normal return means: [run] commits on the spot; [prepare] keeps
   the undo log pending until the coordinator's verdict. *)
let attempt_loop t f ~on_success =
  let rec attempt tries =
    t.undo <- [];
    t.redo <- [];
    match f t with
    | result -> Ok (on_success result)
    | exception Table.Evicted_access { table = tname; block } -> (
      rollback t;
      match Table.unevict_block (table t tname) t.anticache block with
      | () ->
        t.stats.evicted_restarts <- t.stats.evicted_restarts + 1;
        Metrics.incr m_evicted_restarts;
        if tries <= 0 then Error (Txn_restart_limit max_restarts) else attempt (tries - 1)
      | exception Anticache.Fetch_failed { block; error = Transient; attempts } ->
        (* the block is intact on disk; the transaction fails but a later
           retry may succeed once the device recovers *)
        Error (Txn_block_unavailable { table = tname; block; attempts })
      | exception Anticache.Fetch_failed { block; error = (Corrupt | Missing) as cause; _ } ->
        (* graceful degradation: purge the dead block's tombstones and
           index keys so the rest of the data keeps serving, and fail just
           this transaction with a typed error *)
        ignore (Table.drop_evicted_block (table t tname) block);
        t.stats.lost_block_aborts <- t.stats.lost_block_aborts + 1;
        Metrics.incr m_lost_block_aborts;
        Error (Txn_block_lost { table = tname; block; cause }))
    | exception Abort reason ->
      rollback t;
      t.stats.user_aborts <- t.stats.user_aborts + 1;
      Metrics.incr m_user_aborts;
      Error (Txn_aborted reason)
    | exception e ->
      (* catch-all: no exception may leave a half-mutated partition with a
         stale undo log behind *)
      rollback t;
      raise e
  in
  Metrics.time m_txn_seconds (fun () -> attempt max_restarts)

let run t f =
  if t.in_prepared then invalid_arg "Engine.run: a prepared transaction is pending";
  attempt_loop t f ~on_success:(fun result ->
      t.undo <- [];
      log_commit t;
      t.stats.committed <- t.stats.committed + 1;
      Metrics.incr m_committed;
      maybe_evict t;
      result)

(* --- two-phase execution for cross-partition transactions (DESIGN.md §11)

   [prepare] executes the sub-transaction body with the same
   abort/restart protocol as [run] but, on normal return, leaves the undo
   log in place and defers the commit bookkeeping: the partition stays
   locked in the prepared state (no [run]/[prepare] may interleave) until
   the coordinator calls [commit_prepared] or [abort_prepared] once every
   participant has reported.  Because each partition executes serially on
   its own domain, the prepared window never blocks other partitions —
   only later work on this one. *)

let prepare ?log_id t f =
  if t.in_prepared then invalid_arg "Engine.prepare: a prepared transaction is pending";
  let result = attempt_loop t f ~on_success:(fun result -> result) in
  (match result with
  | Ok _ -> (
    t.in_prepared <- true;
    let ops = List.rev t.redo in
    t.redo <- [];
    t.prepared_ops <- None;
    match (t.wal, log_id) with
    | Some w, Some txn when ops <> [] -> (
      (* 2PC prepare phase: this participant's redo must be durable
         before it may vote yes — the coordinator's Decide record, not
         ours, is the commit point, so recovery needs the Prepare on disk
         whenever a Decide exists (presumed abort). *)
      Wal.append w (Redo.encode (Redo.Prepare { txn; ops }));
      try ignore (sync_wal t)
      with e ->
        (* durability not achieved: withdraw the prepare so the verdict
           owed to the coordinator becomes a plain failure *)
        t.in_prepared <- false;
        rollback t;
        raise e)
    | Some _, None -> t.prepared_ops <- Some ops (* logged at commit as a Commit record *)
    | _ -> ())
  | Error _ -> t.redo <- []);
  result

let commit_prepared t =
  if not t.in_prepared then invalid_arg "Engine.commit_prepared: nothing prepared";
  t.in_prepared <- false;
  t.undo <- [];
  (match (t.wal, t.prepared_ops) with
  | Some w, Some ops when ops <> [] -> Wal.append w (Redo.encode (Redo.Commit ops))
  | _ -> ());
  t.prepared_ops <- None;
  t.stats.committed <- t.stats.committed + 1;
  Metrics.incr m_committed;
  maybe_evict t

let abort_prepared t =
  if not t.in_prepared then invalid_arg "Engine.abort_prepared: nothing prepared";
  t.in_prepared <- false;
  t.prepared_ops <- None;
  rollback t

(* --- deferred merge scheduling (DESIGN.md §11) --- *)

let merge_pending t =
  Hashtbl.fold (fun _ tbl acc -> acc || Table.merge_pending tbl) t.tables false

let run_pending_merges t =
  Hashtbl.fold (fun _ tbl acc -> acc + Table.run_pending_merges tbl) t.tables 0

(* Force all pending index merges (end-of-benchmark measurement aid). *)
let flush_indexes t = Hashtbl.iter (fun _ tbl -> Table.flush_indexes tbl) t.tables

(* --- recovery & integrity (DESIGN.md §8) --- *)

type recovery_report = {
  tables_recovered : int;
  recovered_live : int;
  recovered_evicted : int;
  dropped_rows : int;
  dropped_blocks : int;
}

(* Restart/repair entry point: discard any in-flight transaction, then
   rebuild every table's indexes from the tuple store plus the verified
   on-disk blocks (Table.recover), dropping tombstones over unreadable
   blocks. *)
let recover t =
  t.undo <- [];
  t.redo <- [];
  t.in_prepared <- false;
  t.prepared_ops <- None;
  List.fold_left
    (fun acc tbl ->
      let r = Table.recover tbl t.anticache in
      {
        tables_recovered = acc.tables_recovered + 1;
        recovered_live = acc.recovered_live + r.Table.recovered_live;
        recovered_evicted = acc.recovered_evicted + r.Table.recovered_evicted;
        dropped_rows = acc.dropped_rows + r.Table.dropped_rows;
        dropped_blocks = acc.dropped_blocks + r.Table.dropped_blocks;
      })
    {
      tables_recovered = 0;
      recovered_live = 0;
      recovered_evicted = 0;
      dropped_rows = 0;
      dropped_blocks = 0;
    }
    (tables_in_order t)

(* Check every table's invariants: counters vs. slots, live rows reachable
   through their primary key, no dangling index entries, tombstones over
   existing blocks, and the hybrid dual-stage invariants.  Pending merges
   are flushed first so the dual-stage checks are meaningful. *)
let verify_integrity t =
  flush_indexes t;
  List.concat_map (fun tbl -> Table.verify tbl t.anticache) (tables_in_order t)

(* --- WAL replay & checkpointing (DESIGN.md §13) --- *)

(* Apply one redo op by primary key.  Put replaces the whole row
   (delete + insert keeps every index consistent even when the post-image
   changes indexed columns); Del of a missing key is a no-op.  Both are
   idempotent, so replaying a log over state that already contains a
   prefix of it — the checkpoint-then-truncate crash window — converges. *)
let apply_op t = function
  | Redo.Put { table = tname; row } -> (
    let tbl = table t tname in
    (match Table.find_by_pk tbl (pk_values tbl row) with
    | Some rowid -> ignore (Table.delete tbl rowid)
    | None -> ());
    ignore (Table.insert tbl row))
  | Redo.Del { table = tname; pk } -> (
    let tbl = table t tname in
    match Table.find_by_pk tbl pk with
    | Some rowid -> ignore (Table.delete tbl rowid)
    | None -> ())

type replay_report = {
  replayed : int; (* transactions applied *)
  skipped_undecided : int; (* Prepare records with no commit decision *)
  malformed : int; (* CRC-valid frames that failed to decode *)
  max_txn : int; (* largest 2PC id seen; -1 when none *)
}

(* Replay CRC-verified records (checkpoint first, then the log) into the
   tables.  [decided] is the coordinator's decision set: a Prepare is
   applied only when its transaction has a durable Decide — presumed
   abort otherwise.  Decide records never appear in partition logs, but
   skipping them keeps replay total over any record stream. *)
let replay t ~decided records =
  let report = { replayed = 0; skipped_undecided = 0; malformed = 0; max_txn = -1 } in
  List.fold_left
    (fun acc payload ->
      match Redo.decode payload with
      | Ok (Redo.Commit ops) ->
        List.iter (apply_op t) ops;
        { acc with replayed = acc.replayed + 1 }
      | Ok (Redo.Prepare { txn; ops }) ->
        let acc = { acc with max_txn = max acc.max_txn txn } in
        if decided txn then begin
          List.iter (apply_op t) ops;
          { acc with replayed = acc.replayed + 1 }
        end
        else { acc with skipped_undecided = acc.skipped_undecided + 1 }
      | Ok (Redo.Decide { txn }) -> { acc with max_txn = max acc.max_txn txn }
      | Ok (Redo.Mark _) -> acc
      | Error _ -> { acc with malformed = acc.malformed + 1 })
    report records

let has_evicted_rows t =
  List.exists (fun tbl -> Table.evicted_rows tbl > 0) (tables_in_order t)

(* Replica resync reset (DESIGN.md §15): drop every row so a full state
   snapshot can replace the stale copy.  Must run on the owning domain
   (a posted partition job), like any other mutation. *)
let clear_tables t = List.iter Table.clear (tables_in_order t)

(* Emit every row — live AND evicted — as a replayable Commit record,
   one row per record.  Evicted rows are read non-destructively from
   their anti-cache blocks ([Table.iter_evicted]), so checkpointing does
   not disturb the hot/cold split; rows in unreadable blocks are already
   lost and are simply absent from the snapshot.  Shared by checkpoints
   and replication catch-up snapshots (DESIGN.md §15). *)
let iter_snapshot_records t emit =
  List.iter
    (fun tbl ->
      let tname = Table.name tbl in
      let emit_row _rowid row = emit (Redo.encode (Redo.Commit [ Redo.Put { table = tname; row } ])) in
      Table.iter_live tbl emit_row;
      Table.iter_evicted tbl t.anticache emit_row)
    (tables_in_order t)

(* Write a snapshot of every row (live and evicted) as replayable Commit
   records, atomically (tmp + fsync + rename).  The caller truncates the
   log only after this returns; a crash in between merely replays the
   log over the snapshot, which [apply_op] makes idempotent.  Recovery
   restores checkpointed evicted rows as live rows — the eviction daemon
   re-cools them — so the WAL stays bounded under anti-caching instead
   of growing until the last tombstone thaws. *)
let write_checkpoint t ~path =
  Wal.write_file_atomic ~path (fun emit -> iter_snapshot_records t emit)

let in_prepared t = t.in_prepared

let stats t = t.stats
let anticache t = t.anticache
let fault_stats t = Anticache.stats t.anticache
