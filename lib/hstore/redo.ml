(* Logical redo records for the write-ahead log (DESIGN.md §13).

   The engine logs values, not rowids: a [Put] carries the full
   post-image row and a [Del] the primary-key values, so replay is
   insensitive to rowid allocation (aborted transactions perturb the free
   list, so physical rowids are not reproducible from the committed
   history alone) and re-applying a record over already-recovered state
   is idempotent — replaying the whole log in order over any of its own
   prefixes lands on the same final state, which is what makes the
   checkpoint-then-truncate window crash-safe.

   Record kinds:
   - [Commit ops]: a single-partition transaction's writes; replay
     applies it unconditionally.  One record per transaction, so a torn
     tail can never surface half a transaction.
   - [Prepare {txn; ops}]: one participant's share of a cross-partition
     transaction, logged durably during the 2PC prepare phase.  Replay
     applies it only if the coordinator's decision log holds
     [Decide {txn}] — presumed abort otherwise.
   - [Decide {txn}]: the coordinator's commit decision, written to the
     router-owned decision log; the commit point of a cross-partition
     transaction.
   - [Mark {low}]: a completion low-water mark on the decision log —
     every 2PC transaction with id < [low] has finished (committed or
     aborted).  Presumed abort means aborted transactions never write a
     Decide, so without marks a replica could never tell an aborted
     Prepare from one whose decision is still in flight; a mark lets it
     drop stashed Prepares below [low] as aborted and prune its decided
     set.  Recovery ignores marks (the decided set alone drives replay).

   The byte format follows the Wire encoding discipline (strict decode,
   typed tags, bounded counts); framing and checksums are the Wal
   layer's job. *)

exception Decode_error of string

type op =
  | Put of { table : string; row : Value.t array }
  | Del of { table : string; pk : Value.t list }

type record =
  | Commit of op list
  | Prepare of { txn : int; ops : op list }
  | Decide of { txn : int }
  | Mark of { low : int }

(* -- encoding ------------------------------------------------------------ *)

let put_str16 b s =
  if String.length s > 0xffff then invalid_arg "Redo: oversized string";
  Buffer.add_uint16_be b (String.length s);
  Buffer.add_string b s

let put_str32 b s =
  Buffer.add_int32_be b (Int32.of_int (String.length s));
  Buffer.add_string b s

let put_value b (v : Value.t) =
  match v with
  | Null -> Buffer.add_uint8 b 0
  | Int n ->
    Buffer.add_uint8 b 1;
    Buffer.add_int64_be b (Int64.of_int n)
  | Float f ->
    Buffer.add_uint8 b 2;
    Buffer.add_int64_be b (Int64.bits_of_float f)
  | Str s ->
    Buffer.add_uint8 b 3;
    put_str32 b s

let put_op b = function
  | Put { table; row } ->
    Buffer.add_uint8 b 1;
    put_str16 b table;
    Buffer.add_uint16_be b (Array.length row);
    Array.iter (put_value b) row
  | Del { table; pk } ->
    Buffer.add_uint8 b 2;
    put_str16 b table;
    Buffer.add_uint16_be b (List.length pk);
    List.iter (put_value b) pk

let put_ops b ops =
  Buffer.add_int32_be b (Int32.of_int (List.length ops));
  List.iter (put_op b) ops

let encode record =
  let b = Buffer.create 128 in
  (match record with
  | Commit ops ->
    Buffer.add_uint8 b 1;
    put_ops b ops
  | Prepare { txn; ops } ->
    Buffer.add_uint8 b 2;
    Buffer.add_int64_be b (Int64.of_int txn);
    put_ops b ops
  | Decide { txn } ->
    Buffer.add_uint8 b 3;
    Buffer.add_int64_be b (Int64.of_int txn)
  | Mark { low } ->
    Buffer.add_uint8 b 4;
    Buffer.add_int64_be b (Int64.of_int low));
  Buffer.contents b

(* -- decoding (strict: truncation, bad tags and trailing bytes all fail) - *)

type cur = { s : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.s then raise (Decode_error "truncated record")

let u8 c =
  need c 1;
  let v = String.get_uint8 c.s c.pos in
  c.pos <- c.pos + 1;
  v

let u16 c =
  need c 2;
  let v = String.get_uint16_be c.s c.pos in
  c.pos <- c.pos + 2;
  v

let u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.s c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let i64 c =
  need c 8;
  let v = String.get_int64_be c.s c.pos in
  c.pos <- c.pos + 8;
  v

let str16 c =
  let n = u16 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let str32 c =
  let n = u32 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_value c : Value.t =
  match u8 c with
  | 0 -> Null
  | 1 -> Int (Int64.to_int (i64 c))
  | 2 -> Float (Int64.float_of_bits (i64 c))
  | 3 -> Str (str32 c)
  | t -> raise (Decode_error (Printf.sprintf "unknown value tag %d" t))

let get_op c =
  match u8 c with
  | 1 ->
    let table = str16 c in
    let n = u16 c in
    Put { table; row = Array.init n (fun _ -> get_value c) }
  | 2 ->
    let table = str16 c in
    let n = u16 c in
    Del { table; pk = List.init n (fun _ -> get_value c) }
  | t -> raise (Decode_error (Printf.sprintf "unknown op tag %d" t))

let get_ops c =
  let n = u32 c in
  if n > 1 lsl 20 then raise (Decode_error "oversized op count");
  List.init n (fun _ -> get_op c)

let decode s =
  let c = { s; pos = 0 } in
  match
    let r =
      match u8 c with
      | 1 -> Commit (get_ops c)
      | 2 ->
        let txn = Int64.to_int (i64 c) in
        Prepare { txn; ops = get_ops c }
      | 3 -> Decide { txn = Int64.to_int (i64 c) }
      | 4 -> Mark { low = Int64.to_int (i64 c) }
      | t -> raise (Decode_error (Printf.sprintf "unknown record kind %d" t))
    in
    if c.pos <> String.length s then raise (Decode_error "trailing bytes");
    r
  with
  | r -> Ok r
  | exception Decode_error m -> Error m
