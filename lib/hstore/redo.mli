(** Logical redo records for the write-ahead log (DESIGN.md §13).

    Value logging, not rowid logging: [Put] carries the full post-image
    row, [Del] the primary-key values, so replay is independent of rowid
    allocation and idempotent under re-application (the
    checkpoint-then-truncate crash window relies on this).  Encoding
    follows the Wire discipline: typed tags, strict decode, trailing
    bytes rejected.  Framing and checksums live in {!Hi_wal.Wal}. *)

exception Decode_error of string

type op =
  | Put of { table : string; row : Value.t array }
      (** upsert: the committed post-image of one row *)
  | Del of { table : string; pk : Value.t list }
      (** delete by primary-key values *)

type record =
  | Commit of op list
      (** one single-partition transaction; applied unconditionally *)
  | Prepare of { txn : int; ops : op list }
      (** one participant's share of cross-partition transaction [txn];
          applied only when the decision log holds [Decide {txn}]
          (presumed abort) *)
  | Decide of { txn : int }
      (** coordinator commit decision — the commit point of a
          cross-partition transaction; lives in the router's decision
          log *)
  | Mark of { low : int }
      (** completion low-water mark on the decision log: every 2PC
          transaction with id < [low] has finished (committed or
          aborted).  Lets a replica drop stashed Prepares below [low]
          as presumed-aborted and prune its decided set (DESIGN.md
          §15); ignored by recovery *)

val encode : record -> string

val decode : string -> (record, string) result
(** Strict inverse of {!encode}; never raises. *)
