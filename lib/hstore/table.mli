(** In-memory table: row storage plus a primary index and secondary
    indexes behind the uniform {!Hi_index.Index_intf.INDEX} interface,
    so the DBMS switches index implementations by configuration (§7).

    Rows are referenced by dense integer rowids — the "tuple pointers"
    stored as index values.  A row slot is live, free, or an anti-caching
    tombstone naming the on-disk block. *)

exception Evicted_access of { table : string; block : int }
(** Raised when an operation touches an evicted tuple; the engine fetches
    the block and restarts the transaction. *)

exception Duplicate_key of string
(** Raised by {!insert} on a primary-key violation. *)

exception Unknown_index of { table : string; index : string }
(** Raised by {!index_exn} when the name resolves to no index — the typed
    plan-time error replacing per-operation name-lookup failures. *)

type packed_index =
  | Packed : (module Hi_index.Index_intf.INDEX with type t = 'i) * 'i -> packed_index
      (** An index implementation paired with an instance of it. *)

type t

val create :
  ?clock:int ref -> ?hash_sidecar:bool -> make_index:(unique:bool -> packed_index) -> Schema.t -> t
(** [create ~make_index schema] builds the table and its indexes.  [clock]
    is the engine-wide access clock used for LRU eviction.  [hash_sidecar]
    (default [true]) maintains a {!Hi_index.Hash_index} on the primary key
    so {!find_by_pk} is an O(1) probe (DESIGN.md §17); [false] is the
    [--no-hash-sidecar] pure-hybrid configuration. *)

val name : t -> string
val schema : t -> Schema.t
val row_count : t -> int
val live_rows : t -> int
val evicted_rows : t -> int

(** {1 Row operations} *)

val insert : t -> Value.t array -> int
(** Insert a row, returning its rowid.
    @raise Duplicate_key on a primary-key violation.
    @raise Invalid_argument on arity or type mismatches. *)

val read : t -> int -> Value.t array
(** Read a row's values (bumps its access time).
    @raise Evicted_access when the tuple is anti-cached. *)

val update : t -> int -> (int * Value.t) list -> Value.t array
(** Update non-key columns in place; returns the pre-image for undo.
    @raise Invalid_argument when an indexed column is updated. *)

val restore : t -> int -> Value.t array -> unit
(** Put back a pre-image (transaction rollback). *)

val delete : t -> int -> Value.t array
(** Remove a row and its index entries; returns the removed values. *)

(** {1 Index access}

    Index access is handle-based: a plan step resolves names to typed
    handles once ({!pk}, {!index}), then per-operation calls are direct
    — no per-op string lookup.  Handles survive {!recover} and {!clear}
    (they name indexes by schema position, and rebuilds follow schema
    order). *)

type pk_handle
(** The primary-key access path of one table: an O(1) hash-sidecar probe
    when the sidecar is enabled, the ordered primary index otherwise. *)

type idx_handle
(** A resolved (table, index) pair for ordered lookups and scans. *)

val pk : t -> pk_handle

val index : t -> string -> idx_handle option
(** Resolve an index by name (primary or secondary); [None] when the
    table has no such index. *)

val index_exn : t -> string -> idx_handle
(** @raise Unknown_index when the name resolves to no index. *)

val index_name : idx_handle -> string
val handle_table : idx_handle -> t

val pk_find : pk_handle -> Value.t list -> int option
(** Point lookup through the handle — same semantics as {!find_by_pk}. *)

val find_by_pk : t -> Value.t list -> int option
(** Point lookup by primary key: an O(1) probe of the hash sidecar when
    enabled (counted under the ["hash"] metrics scope), else the ordered
    primary index. *)

val find_by_pk_ordered : t -> Value.t list -> int option
(** The same lookup forced through the ordered primary index, bypassing
    the sidecar — the oracle side of the [hash_check] differential. *)

val find_all : idx_handle -> Value.t list -> int list
(** All rowids whose index key equals the given column values. *)

val scan : idx_handle -> prefix:Value.t list -> limit:int -> int list
(** Rowids of up to [limit] entries at or after the prefix. *)

val scan_prefix_eq : idx_handle -> prefix:Value.t list -> limit:int -> int list
(** Rowids whose index key starts with exactly the prefix columns. *)

val project_columns : t -> int -> int array -> Value.t array
(** Typed column extraction for analytics: the named columns of one row,
    in the given order, without bumping its access clock — an OLAP
    capture must not make cold tuples look hot (DESIGN.md §16).
    @raise Evicted_access when the tuple is anti-cached. *)

val pk_snapshot : t -> Hi_index.Index_intf.snapshot
(** Pin a point-in-time view of the primary-key index (key → rowid) for
    analytical scans.  The caller must release it. *)

val pk_generation : t -> int
(** The primary-key index's snapshot generation — lets an OLAP cache
    decide whether a prior capture is still current. *)

val pk_pinned_snapshots : t -> int
(** Unreleased primary-key index snapshots. *)

val iter_live : t -> (int -> Value.t array -> unit) -> unit
(** Visit every live row (rowid and values) without bumping the access
    clock — checkpoint enumeration (DESIGN.md §13) must not disturb
    eviction order.  Evicted tombstones and free slots are skipped. *)

val iter_evicted : t -> Anticache.t -> (int -> Value.t array -> unit) -> unit
(** Visit every evicted row by non-destructively reading its anti-cache
    block ({!Anticache.read_block}): tuples stay evicted, access clocks
    are untouched, and rows of blocks that fail verification are skipped
    (they are already lost — same degradation as {!recover}).  Used by
    checkpoints so snapshots cover cold data (DESIGN.md §15). *)

(** {1 Anti-caching hooks (paper §7.1)} *)

val coldest_rows : t -> int -> int list
(** The [n] least-recently-accessed live rowids. *)

val evict_rows : t -> Anticache.t -> int list -> int option
(** Pack rows into a block on the simulated disk, leaving tombstones;
    returns the block id (or [None] when nothing was evictable). *)

val unevict_block : t -> Anticache.t -> int -> unit
(** Fetch a block back and reinstate its tuples.  The fetch happens before
    any table mutation, so a raised {!Anticache.Fetch_failed} leaves the
    table untouched. *)

(** {1 Fault tolerance (DESIGN.md §8)} *)

val drop_evicted_block : t -> int -> int
(** Give up on an unrecoverable block: free its tombstone slots and remove
    their index keys, so later transactions see clean misses.  Returns the
    number of rows lost. *)

type recovery = {
  recovered_live : int;  (** live rows whose index entries were rebuilt *)
  recovered_evicted : int;  (** tombstones re-pointed from verified blocks *)
  dropped_rows : int;  (** rows lost to unreadable blocks *)
  dropped_blocks : int;  (** blocks found corrupt or missing *)
}

val clear : t -> unit
(** Drop every row (live and tombstoned) and rebuild empty indexes — the
    replica's reset before applying a full state snapshot
    (DESIGN.md §15). *)

val recover : t -> Anticache.t -> recovery
(** Crash-recovery: rebuild all indexes, counters and the free list from
    the live rows plus this table's verified (checksummed) on-disk blocks;
    tombstones over unreadable blocks are dropped and counted. *)

val verify : t -> Anticache.t -> string list
(** Integrity check: counter consistency, live rows reachable through the
    primary key, no dangling index entries, tombstones only over blocks
    the store still holds, each index's
    {!Hi_index.Index_intf.INDEX.check_invariants}, and hash-sidecar
    agreement (the sidecar holds exactly the primary index's key set with
    identical rowids).  Returns human-readable violations; [] means
    consistent. *)

(** {1 Accounting} *)

val tuple_memory_bytes : t -> int
(** Live tuples at their modelled width plus 16-byte tombstones per
    evicted tuple. *)

val pk_index_memory_bytes : t -> int
val secondary_index_memory_bytes : t -> int

val hash_sidecar_memory_bytes : t -> int
(** Modelled footprint of the primary-key hash sidecar; 0 when disabled.
    Counted separately so the paper's hybrid-index storage story stays
    honest (DESIGN.md §17). *)

val hash_sidecar_enabled : t -> bool

val flush_indexes : t -> unit
(** Force pending hybrid-index merges. *)

val merge_pending : t -> bool
(** True when at least one index's merge trigger has fired. *)

val run_pending_merges : t -> int
(** Flush only the indexes whose merge trigger has fired; returns the
    number of merges run.  Background-merge work unit for partitions
    running with deferred merges (DESIGN.md §11). *)
