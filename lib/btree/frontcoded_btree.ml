(* Front-coded static store — a step toward the succinct static stages the
   paper proposes as future work (§3, §9: "the dual-stage architecture
   opens up the possibility of using compact/compressed static data
   structures ... including succinct data structures").

   Keys are sorted, so consecutive keys share prefixes.  Within blocks of
   [block_size] keys the first key is stored whole and every other key as
   (shared-prefix length, suffix) — prefix omission / front coding.  Unlike
   the Compression rule (§4.4) this needs no general-purpose codec and no
   node cache: a lookup binary-searches block heads, then reconstructs at
   most one block.  It lands between Compact (faster, larger) and
   Compressed (slower, smaller) on the space/performance curve, which the
   ablation benchmark measures.

   Implements the STATIC interface plus [to_seq]. *)

open Hi_util
open Hi_index

let block_size = 16

type t = {
  nkeys : int;
  heads : string array; (* first key of each block, stored whole *)
  (* per-key encoding, flattened: prefix length and suffix slice *)
  lcp : int array; (* shared-prefix length with the previous key; 0 at block heads *)
  suffix_bytes : string; (* concatenated suffixes (whole key for block heads) *)
  suffix_off : int array; (* nkeys + 1 *)
  values : int array;
  val_offsets : int array; (* nkeys + 1 *)
  max_key_len : int;
}

let name = "frontcoded-btree"

let empty =
  {
    nkeys = 0;
    heads = [||];
    lcp = [||];
    suffix_bytes = "";
    suffix_off = [| 0 |];
    values = [||];
    val_offsets = [| 0 |];
    max_key_len = 0;
  }

let lcp_of a b =
  let m = min (String.length a) (String.length b) in
  let rec go i = if i < m && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let build (entries : Index_intf.entries) =
  let nkeys = Array.length entries in
  if nkeys = 0 then empty
  else begin
    let heads = Array.init ((nkeys + block_size - 1) / block_size) (fun b -> fst entries.(b * block_size)) in
    let lcp = Array.make nkeys 0 in
    let suffix_off = Array.make (nkeys + 1) 0 in
    let val_offsets = Array.make (nkeys + 1) 0 in
    let buf = Buffer.create (nkeys * 4) in
    for i = 0 to nkeys - 1 do
      let k, vs = entries.(i) in
      let p = if i mod block_size = 0 then 0 else lcp_of (fst entries.(i - 1)) k in
      lcp.(i) <- p;
      Buffer.add_substring buf k p (String.length k - p);
      suffix_off.(i + 1) <- suffix_off.(i) + String.length k - p;
      val_offsets.(i + 1) <- val_offsets.(i) + Array.length vs
    done;
    let values = Array.make val_offsets.(nkeys) 0 in
    Array.iteri (fun i (_, vs) -> Array.blit vs 0 values val_offsets.(i) (Array.length vs)) entries;
    let max_key_len = Array.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 entries in
    { nkeys; heads; lcp; suffix_bytes = Buffer.contents buf; suffix_off; values; val_offsets; max_key_len }
  end

(* Reconstruct the key at absolute position [i] by walking its block. *)
let key_at t i =
  let block_start = i - (i mod block_size) in
  let buf = Buffer.create 32 in
  Buffer.add_substring buf t.suffix_bytes t.suffix_off.(block_start)
    (t.suffix_off.(block_start + 1) - t.suffix_off.(block_start));
  for j = block_start + 1 to i do
    let keep = t.lcp.(j) in
    let cur = Buffer.contents buf in
    Buffer.clear buf;
    Buffer.add_substring buf cur 0 keep;
    Buffer.add_substring buf t.suffix_bytes t.suffix_off.(j) (t.suffix_off.(j + 1) - t.suffix_off.(j))
  done;
  Buffer.contents buf

(* Scan one block for the lower bound of [probe], reconstructing keys
   incrementally; returns the absolute position (possibly one past the
   block). *)
let block_lower_bound t block probe =
  let block_start = block * block_size in
  let block_end = min t.nkeys (block_start + block_size) in
  let current = Bytes.create (max 16 t.max_key_len) in
  let current_len = ref 0 in
  let set_current i =
    let keep = if i = block_start then 0 else t.lcp.(i) in
    let slen = t.suffix_off.(i + 1) - t.suffix_off.(i) in
    Bytes.blit_string t.suffix_bytes t.suffix_off.(i) current keep slen;
    current_len := keep + slen
  in
  let rec go i =
    if i >= block_end then i
    else begin
      Op_counter.compare_keys 1;
      set_current i;
      let k = Bytes.sub_string current 0 !current_len in
      if String.compare k probe >= 0 then i else go (i + 1)
    end
  in
  Op_counter.visit ();
  go block_start

(* Index of the block that may contain [probe]. *)
let route t probe =
  let lo = ref 0 and hi = ref (Array.length t.heads) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Op_counter.compare_keys 1;
    if String.compare t.heads.(mid) probe <= 0 then lo := mid + 1 else hi := mid
  done;
  max 0 (!lo - 1)

let lower_bound t probe =
  if t.nkeys = 0 then 0
  else begin
    let b = route t probe in
    let pos = block_lower_bound t b probe in
    (* the bound may be the first key of the next block *)
    if pos = min t.nkeys ((b + 1) * block_size) && pos < t.nkeys then pos else pos
  end

let find_index t probe =
  if t.nkeys = 0 then None
  else begin
    let i = lower_bound t probe in
    if i < t.nkeys && key_at t i = probe then Some i else None
  end

let mem t probe = find_index t probe <> None

let values_of t i = Array.sub t.values t.val_offsets.(i) (t.val_offsets.(i + 1) - t.val_offsets.(i))

let find t probe =
  match find_index t probe with None -> None | Some i -> Some t.values.(t.val_offsets.(i))

let find_all t probe =
  match find_index t probe with None -> [] | Some i -> Array.to_list (values_of t i)

let update t probe v =
  match find_index t probe with
  | None -> false
  | Some i ->
    t.values.(t.val_offsets.(i)) <- v;
    true

let scan_from t probe n =
  let out = ref [] and taken = ref 0 in
  let i = ref (lower_bound t probe) in
  while !taken < n && !i < t.nkeys do
    let key = key_at t !i in
    let vlo = t.val_offsets.(!i) and vhi = t.val_offsets.(!i + 1) in
    let j = ref vlo in
    while !taken < n && !j < vhi do
      out := (key, t.values.(!j)) :: !out;
      incr taken;
      incr j
    done;
    incr i
  done;
  List.rev !out

let iter_sorted t f =
  (* sequential reconstruction is O(total bytes): keep the running key *)
  let current = ref "" in
  for i = 0 to t.nkeys - 1 do
    let keep = if i mod block_size = 0 then 0 else t.lcp.(i) in
    let suffix = String.sub t.suffix_bytes t.suffix_off.(i) (t.suffix_off.(i + 1) - t.suffix_off.(i)) in
    current := String.sub !current 0 keep ^ suffix;
    f !current (values_of t i)
  done

let to_seq t =
  let rec from i current () =
    if i >= t.nkeys then Seq.Nil
    else begin
      let keep = if i mod block_size = 0 then 0 else t.lcp.(i) in
      let suffix = String.sub t.suffix_bytes t.suffix_off.(i) (t.suffix_off.(i + 1) - t.suffix_off.(i)) in
      let key = String.sub current 0 keep ^ suffix in
      Seq.Cons ((key, values_of t i), from (i + 1) key)
    end
  in
  from 0 ""

let key_count t = t.nkeys
let entry_count t = Array.length t.values

let to_entries t =
  let out = Array.make t.nkeys ("", [||]) in
  let pos = ref 0 in
  iter_sorted t (fun k vs ->
      out.(!pos) <- (k, vs);
      incr pos);
  out

let merge t (batch : Index_intf.entries) ~(mode : Index_intf.merge_mode) ~deleted =
  let resolve (k, old_vs) (_, new_vs) =
    match mode with
    | Index_intf.Replace -> Some (k, new_vs)
    | Index_intf.Concat -> Some (k, Array.append old_vs new_vs)
  in
  let cmp (a, _) (b, _) = String.compare a b in
  (* [deleted] applies to pre-existing static entries only; the batch
     always survives (a deleted key may since have been reinserted) *)
  let keep =
    Array.of_seq (Seq.filter (fun (k, _) -> not (deleted k)) (Array.to_seq (to_entries t)))
  in
  build (Inplace_merge.merge_resolve ~cmp ~resolve keep batch)

(* Modelled layout: block heads (key slots), per-key 1-byte lcp + suffix
   bytes + 2-byte offset, values inline or offset-indexed. *)
let memory_bytes t =
  let heads =
    Array.fold_left (fun acc k -> acc + Mem_model.key_slot_bytes (String.length k)) 0 t.heads
  in
  let entries = Array.length t.values in
  let value_store =
    (Mem_model.value_size * entries) + if entries = t.nkeys then 0 else 4 * (t.nkeys + 1)
  in
  heads + String.length t.suffix_bytes + (3 * t.nkeys) + value_store
