(** Dynamic B+tree — the STX-style baseline of the paper (§4.1).

    512-byte nodes (32 slots), leaf chaining for range scans, proactive
    top-down splits.  Duplicate keys are permitted so the same tree serves
    as a secondary index, each duplicate occupying its own leaf slot.
    Deletion removes slots without rebalancing (underfull nodes persist
    until a hybrid-index merge rebuilds the static stage).

    Implements {!Hi_index.Index_intf.DYNAMIC}. *)

type t

val name : string
val create : unit -> t

val insert : t -> string -> int -> unit
(** Add one (key, value) entry; duplicate keys allowed.  Equal keys keep
    insertion order. *)

val mem : t -> string -> bool

val find : t -> string -> int option
(** First (oldest) value for the key. *)

val find_all : t -> string -> int list
(** All values for the key, insertion order. *)

val update : t -> string -> int -> bool
(** Replace the first value in place; [false] when absent. *)

val delete : t -> string -> bool
(** Remove the key and all its values. *)

val delete_value : t -> string -> int -> bool
(** Remove one (key, value) entry. *)

val scan_from : t -> string -> int -> (string * int) list
(** Up to [n] entries with key >= probe, ascending. *)

val iter_sorted : t -> (string -> int array -> unit) -> unit
(** Ascending keys, values grouped per key. *)

val entry_count : t -> int
val clear : t -> unit

val memory_bytes : t -> int
(** Modelled C-layout footprint: 512 bytes per node plus out-of-line bytes
    of keys longer than a machine word (see {!Hi_util.Mem_model}). *)

val leaf_occupancy : t -> float
(** Average leaf fill factor — ~0.69 for random insertion order, ~0.5 for
    sequential (paper §4.2/§6.4). *)

val node_counts : t -> int * int
(** (inner nodes, leaf nodes). *)

val leaf_capacity : int
(** Slots per leaf (32 with 512-byte nodes). *)

val check_structure : t -> string list
(** Structural invariant self-check: node key ordering, separator bounds,
    fill upper bounds, leaf-chain/tree-order agreement, counter
    accounting.  [] when consistent. *)
