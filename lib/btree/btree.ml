(* Dynamic B+tree — the STX-style baseline of the paper (§4.1): 512-byte
   nodes (32 slots of 8-byte key + 8-byte pointer/value), leaf chaining for
   range scans, proactive top-down splits.  Duplicate keys are permitted so
   the tree serves as a secondary index exactly as the paper's baseline
   does (each duplicate occupies its own leaf slot).

   Deletion is by slot removal without rebalancing (common practice for
   in-memory OLTP trees; the workloads of §6–7 are insert/read/update
   dominated), so underfull nodes persist until a hybrid-index merge
   rebuilds the static stage. *)

open Hi_util

let leaf_capacity = 32
let max_inner_keys = 31 (* children capacity = 32 *)

type node = Leaf of leaf | Inner of inner

and leaf = {
  lkeys : string array;
  lvals : int array;
  mutable ln : int;
  mutable next : leaf option;
}

and inner = {
  ikeys : string array;
  children : node array;
  mutable ik : int; (* number of keys; ik + 1 children *)
}

type t = {
  mutable root : node;
  mutable entries : int;
  mutable leaves : int;
  mutable inners : int;
}

let name = "btree"

let new_leaf () = { lkeys = Array.make leaf_capacity ""; lvals = Array.make leaf_capacity 0; ln = 0; next = None }

let dummy_node = Leaf (new_leaf ())

let new_inner () =
  { ikeys = Array.make max_inner_keys ""; children = Array.make (max_inner_keys + 1) dummy_node; ik = 0 }

let create () = { root = Leaf (new_leaf ()); entries = 0; leaves = 1; inners = 0 }

(* --- searches within a node --- *)

(* leftmost position in leaf with key >= probe *)
let leaf_lower_bound l probe =
  let lo = ref 0 and hi = ref l.ln in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Op_counter.compare_keys 1;
    if String.compare l.lkeys.(mid) probe < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* leftmost position in leaf with key > probe *)
let leaf_upper_bound l probe =
  let lo = ref 0 and hi = ref l.ln in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Op_counter.compare_keys 1;
    if String.compare l.lkeys.(mid) probe <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* child to descend into to find the leftmost occurrence of probe:
   smallest i with probe <= ikeys.(i), else last child *)
let child_for_find n probe =
  let lo = ref 0 and hi = ref n.ik in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Op_counter.compare_keys 1;
    if String.compare n.ikeys.(mid) probe < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* child to descend into to insert after any equal keys:
   smallest i with probe < ikeys.(i), else last child *)
let child_for_insert n probe =
  let lo = ref 0 and hi = ref n.ik in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Op_counter.compare_keys 1;
    if String.compare n.ikeys.(mid) probe <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- splits (proactive, top-down) --- *)

let leaf_full l = l.ln = leaf_capacity
let inner_full n = n.ik = max_inner_keys

(* Split full child [i] of inner [parent]; parent must not be full. *)
let split_child t parent i =
  let insert_sep sep right =
    Array.blit parent.ikeys i parent.ikeys (i + 1) (parent.ik - i);
    Array.blit parent.children (i + 1) parent.children (i + 2) (parent.ik - i);
    parent.ikeys.(i) <- sep;
    parent.children.(i + 1) <- right;
    parent.ik <- parent.ik + 1
  in
  match parent.children.(i) with
  | Leaf l ->
    let mid = l.ln / 2 in
    let right = new_leaf () in
    Array.blit l.lkeys mid right.lkeys 0 (l.ln - mid);
    Array.blit l.lvals mid right.lvals 0 (l.ln - mid);
    right.ln <- l.ln - mid;
    Array.fill l.lkeys mid (l.ln - mid) "";
    l.ln <- mid;
    right.next <- l.next;
    l.next <- Some right;
    t.leaves <- t.leaves + 1;
    insert_sep right.lkeys.(0) (Leaf right)
  | Inner n ->
    let midk = n.ik / 2 in
    let sep = n.ikeys.(midk) in
    let right = new_inner () in
    let nright = n.ik - midk - 1 in
    Array.blit n.ikeys (midk + 1) right.ikeys 0 nright;
    Array.blit n.children (midk + 1) right.children 0 (nright + 1);
    right.ik <- nright;
    Array.fill n.ikeys midk (n.ik - midk) "";
    Array.fill n.children (midk + 1) (n.ik - midk) dummy_node;
    n.ik <- midk;
    t.inners <- t.inners + 1;
    insert_sep sep (Inner right)

let rec insert_nonfull t node key value =
  match node with
  | Leaf l ->
    let pos = leaf_upper_bound l key in
    Array.blit l.lkeys pos l.lkeys (pos + 1) (l.ln - pos);
    Array.blit l.lvals pos l.lvals (pos + 1) (l.ln - pos);
    l.lkeys.(pos) <- key;
    l.lvals.(pos) <- value;
    l.ln <- l.ln + 1
  | Inner n ->
    Op_counter.visit ();
    let i = child_for_insert n key in
    let full = match n.children.(i) with Leaf l -> leaf_full l | Inner c -> inner_full c in
    let i =
      if full then begin
        split_child t n i;
        Op_counter.compare_keys 1;
        if String.compare key n.ikeys.(i) < 0 then i else i + 1
      end
      else i
    in
    Op_counter.deref ();
    insert_nonfull t n.children.(i) key value

let insert t key value =
  let root_full = match t.root with Leaf l -> leaf_full l | Inner n -> inner_full n in
  if root_full then begin
    let new_root = new_inner () in
    new_root.children.(0) <- t.root;
    t.inners <- t.inners + 1;
    t.root <- Inner new_root;
    split_child t new_root 0
  end;
  insert_nonfull t t.root key value;
  t.entries <- t.entries + 1

(* --- point lookups --- *)

(* Descend to the leaf that contains the lower bound of [probe]; returns
   (leaf, pos); pos may equal leaf.ln, meaning the bound is in a later
   leaf (skip via the chain). *)
let rec locate node probe =
  Op_counter.visit ();
  match node with
  | Leaf l -> (l, leaf_lower_bound l probe)
  | Inner n ->
    Op_counter.deref ();
    locate n.children.(child_for_find n probe) probe

(* Normalize a (leaf, pos) cursor to the next live entry, skipping
   exhausted/empty leaves. *)
let rec advance l pos =
  if pos < l.ln then Some (l, pos)
  else match l.next with None -> None | Some nxt -> advance nxt 0

let find t probe =
  let l, pos = locate t.root probe in
  match advance l pos with
  | Some (l, pos) when l.lkeys.(pos) = probe -> Some l.lvals.(pos)
  | _ -> None

let mem t probe = find t probe <> None

let find_all t probe =
  let rec collect cursor acc =
    match cursor with
    | Some (l, pos) when l.lkeys.(pos) = probe ->
      collect (advance l (pos + 1)) (l.lvals.(pos) :: acc)
    | _ -> List.rev acc
  in
  let l, pos = locate t.root probe in
  collect (advance l pos) []

let update t probe value =
  let l, pos = locate t.root probe in
  match advance l pos with
  | Some (l, pos) when l.lkeys.(pos) = probe ->
    l.lvals.(pos) <- value;
    true
  | _ -> false

(* --- deletion (slot removal, no rebalancing) --- *)

let remove_at l pos =
  Array.blit l.lkeys (pos + 1) l.lkeys pos (l.ln - pos - 1);
  Array.blit l.lvals (pos + 1) l.lvals pos (l.ln - pos - 1);
  l.ln <- l.ln - 1;
  l.lkeys.(l.ln) <- ""

let delete t probe =
  let rec drop cursor removed =
    match cursor with
    | Some (l, pos) when pos < l.ln && l.lkeys.(pos) = probe ->
      remove_at l pos;
      t.entries <- t.entries - 1;
      (* same position now holds the next entry *)
      drop (advance l pos) true
    | _ -> removed
  in
  let l, pos = locate t.root probe in
  drop (advance l pos) false

let delete_value t probe value =
  let rec hunt cursor =
    match cursor with
    | Some (l, pos) when l.lkeys.(pos) = probe ->
      if l.lvals.(pos) = value then begin
        remove_at l pos;
        t.entries <- t.entries - 1;
        true
      end
      else hunt (advance l (pos + 1))
    | _ -> false
  in
  let l, pos = locate t.root probe in
  hunt (advance l pos)

(* --- scans and iteration --- *)

let scan_from t probe n =
  let rec take cursor acc remaining =
    if remaining = 0 then List.rev acc
    else
      match cursor with
      | None -> List.rev acc
      | Some (l, pos) -> take (advance l (pos + 1)) ((l.lkeys.(pos), l.lvals.(pos)) :: acc) (remaining - 1)
  in
  let l, pos = locate t.root probe in
  take (advance l pos) [] n

let leftmost_leaf t =
  let rec go = function Leaf l -> l | Inner n -> go n.children.(0) in
  go t.root

let iter_sorted t f =
  (* group runs of equal keys, which may span leaves *)
  let emit key vs = f key (Array.of_list (List.rev vs)) in
  let rec walk cursor current =
    match cursor with
    | None -> (match current with None -> () | Some (k, vs) -> emit k vs)
    | Some (l, pos) ->
      let k = l.lkeys.(pos) and v = l.lvals.(pos) in
      let current =
        match current with
        | Some (k0, vs) when k0 = k -> Some (k0, v :: vs)
        | Some (k0, vs) ->
          emit k0 vs;
          Some (k, [ v ])
        | None -> Some (k, [ v ])
      in
      walk (advance l (pos + 1)) current
  in
  walk (advance (leftmost_leaf t) 0) None

let entry_count t = t.entries

let clear t =
  t.root <- Leaf (new_leaf ());
  t.entries <- 0;
  t.leaves <- 1;
  t.inners <- 0

(* --- memory model (paper §4.1/§6.2) --- *)

(* Nodes occupy a fixed 512 bytes regardless of occupancy; keys longer than
   a machine word live out of line behind the slot's pointer. *)
let memory_bytes t =
  let out_of_line = ref 0 in
  let rec walk = function
    | Leaf l ->
      for i = 0 to l.ln - 1 do
        let len = String.length l.lkeys.(i) in
        if len > 8 then out_of_line := !out_of_line + len
      done
    | Inner n ->
      for i = 0 to n.ik - 1 do
        let len = String.length n.ikeys.(i) in
        if len > 8 then out_of_line := !out_of_line + len
      done;
      for i = 0 to n.ik do
        walk n.children.(i)
      done
  in
  walk t.root;
  ((t.leaves + t.inners) * Mem_model.btree_node_size) + !out_of_line

(* Average leaf occupancy (expected ~0.69 for random keys, ~0.5 for
   monotonically increasing keys — paper §6.4). *)
let leaf_occupancy t =
  let slots = ref 0 and used = ref 0 in
  let rec go l =
    slots := !slots + leaf_capacity;
    used := !used + l.ln;
    match l.next with None -> () | Some nxt -> go nxt
  in
  go (leftmost_leaf t);
  float_of_int !used /. float_of_int !slots

let node_counts t = (t.inners, t.leaves)

(* --- structural self-check (differential-testing harness support) ---

   Checks the invariants that survive this tree's lazy deletion policy:
   per-node key ordering, separator bounds (inclusive on both sides, since
   duplicate keys may straddle a separator), fill upper bounds, counter
   accounting, and agreement between the leaf chain and the in-order leaf
   sequence.  Minimum-fill is deliberately not checked: deletes never
   rebalance. *)
let check_structure t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let leaves_seen = ref [] in
  let n_leaves = ref 0 and n_inners = ref 0 and n_entries = ref 0 in
  let rec walk node lo hi =
    match node with
    | Leaf l ->
      incr n_leaves;
      leaves_seen := l :: !leaves_seen;
      n_entries := !n_entries + l.ln;
      if l.ln < 0 || l.ln > leaf_capacity then
        err "leaf fill %d outside [0,%d]" l.ln leaf_capacity;
      for i = 0 to l.ln - 2 do
        if String.compare l.lkeys.(i) l.lkeys.(i + 1) > 0 then
          err "leaf keys unsorted: %S > %S" l.lkeys.(i) l.lkeys.(i + 1)
      done;
      if l.ln > 0 then begin
        (match lo with
        | Some b when String.compare l.lkeys.(0) b < 0 ->
          err "leaf key %S below separator %S" l.lkeys.(0) b
        | _ -> ());
        match hi with
        | Some b when String.compare l.lkeys.(l.ln - 1) b > 0 ->
          err "leaf key %S above separator %S" l.lkeys.(l.ln - 1) b
        | _ -> ()
      end
    | Inner n ->
      incr n_inners;
      if n.ik < 1 || n.ik > max_inner_keys then
        err "inner key count %d outside [1,%d]" n.ik max_inner_keys;
      for i = 0 to n.ik - 2 do
        if String.compare n.ikeys.(i) n.ikeys.(i + 1) > 0 then
          err "inner separators unsorted: %S > %S" n.ikeys.(i) n.ikeys.(i + 1)
      done;
      for i = 0 to n.ik do
        let lo' = if i = 0 then lo else Some n.ikeys.(i - 1) in
        let hi' = if i = n.ik then hi else Some n.ikeys.(i) in
        walk n.children.(i) lo' hi'
      done
  in
  walk t.root None None;
  if !n_leaves <> t.leaves then err "leaf counter %d <> actual %d" t.leaves !n_leaves;
  if !n_inners <> t.inners then err "inner counter %d <> actual %d" t.inners !n_inners;
  if !n_entries <> t.entries then err "entry counter %d <> actual %d" t.entries !n_entries;
  let inorder = List.rev !leaves_seen in
  let rec chain l acc =
    match l.next with None -> List.rev (l :: acc) | Some nxt -> chain nxt (l :: acc)
  in
  let chained = chain (leftmost_leaf t) [] in
  if List.length chained <> List.length inorder then
    err "leaf chain length %d <> in-order leaf count %d" (List.length chained)
      (List.length inorder)
  else if not (List.for_all2 ( == ) chained inorder) then
    err "leaf chain disagrees with in-order leaf sequence";
  let last = ref None in
  List.iter
    (fun l ->
      if l.ln > 0 then begin
        (match !last with
        | Some k when String.compare k l.lkeys.(0) > 0 ->
          err "leaf chain key order broken across leaves: %S > %S" k l.lkeys.(0)
        | _ -> ());
        last := Some l.lkeys.(l.ln - 1)
      end)
    chained;
  List.rev !errs
