(* Compressed B+tree — the Compression rule (paper §4.4) applied on top of
   the compact layout: leaf pages are serialized and compressed with the
   LZ-style codec; only the page routing keys stay uncompressed, so every
   point query decompresses at most one page.  A CLOCK node cache of
   recently decompressed pages amortizes the decompression cost. *)

open Hi_util
open Hi_index

(* 32 entries per page matches the 512-byte node of the uncompressed
   B+tree, so a point query decompresses one node's worth of data. *)
let default_page_entries = 32
let default_cache_pages = 0 (* 0 = adaptive: ~1/16 of the pages, in [8, 256] *)

(* Node-cache capacity used by subsequently built trees.  0 selects the
   adaptive default; 1 effectively disables caching (Appendix D). *)
let cache_pages = ref default_cache_pages
let set_cache_pages n = cache_pages := max 0 n

let cache_capacity_for npages =
  if !cache_pages > 0 then !cache_pages else max 8 (min 256 (npages / 16))

type decoded = { dkeys : string array; dvals : int array array }

type t = {
  pages : string array; (* compressed page payloads *)
  firsts : string array; (* first key of each page, uncompressed routing *)
  cache : decoded Clock_cache.t;
  nkeys : int;
  nentries : int;
  mutable decompressions : int;
  mutable dirty : (int, string) Hashtbl.t; (* page -> recompressed payload *)
}

let name = "compressed-btree"

(* --- page codec --- *)

let put_varint buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (!v land 0x7f lor 0x80));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let get_varint s pos =
  let v = ref 0 and shift = ref 0 and p = ref pos in
  let continue = ref true in
  while !continue do
    let b = Char.code (String.unsafe_get s !p) in
    incr p;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
  done;
  (!v, !p)

let encode_page dkeys dvals lo hi =
  let buf = Buffer.create 4096 in
  put_varint buf (hi - lo);
  for i = lo to hi - 1 do
    put_varint buf (String.length dkeys.(i));
    Buffer.add_string buf dkeys.(i);
    put_varint buf (Array.length dvals.(i));
    Array.iter
      (fun v ->
        (* values are stored as fixed 8-byte little-endian ints so negative
           test values round-trip *)
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 (Int64.of_int v);
        Buffer.add_bytes buf b)
      dvals.(i)
  done;
  Compress.compress (Buffer.contents buf)

let decode_page payload =
  let raw = Compress.decompress payload in
  let n, pos = get_varint raw 0 in
  let dkeys = Array.make n "" in
  let dvals = Array.make n [||] in
  let pos = ref pos in
  for i = 0 to n - 1 do
    let klen, p = get_varint raw !pos in
    dkeys.(i) <- String.sub raw p klen;
    let nv, p = get_varint raw (p + klen) in
    pos := p;
    dvals.(i) <-
      Array.init nv (fun j -> Int64.to_int (String.get_int64_le raw (p + (8 * j))));
    pos := !pos + (8 * nv)
  done;
  { dkeys; dvals }

(* --- construction --- *)

let empty =
  {
    pages = [||];
    firsts = [||];
    cache = Clock_cache.create (cache_capacity_for 1);
    nkeys = 0;
    nentries = 0;
    decompressions = 0;
    dirty = Hashtbl.create 4;
  }

let build (entries : Index_intf.entries) =
  let n = Array.length entries in
  if n = 0 then empty
  else begin
    let dkeys = Array.map fst entries in
    let dvals = Array.map snd entries in
    let npages = (n + default_page_entries - 1) / default_page_entries in
    let pages =
      Array.init npages (fun p ->
          let lo = p * default_page_entries in
          let hi = min n (lo + default_page_entries) in
          encode_page dkeys dvals lo hi)
    in
    let firsts = Array.init npages (fun p -> dkeys.(p * default_page_entries)) in
    let nentries = Array.fold_left (fun acc vs -> acc + Array.length vs) 0 dvals in
    {
      pages;
      firsts;
      cache = Clock_cache.create (cache_capacity_for npages);
      nkeys = n;
      nentries;
      decompressions = 0;
      dirty = Hashtbl.create 16;
    }
  end

let page_payload t p = match Hashtbl.find_opt t.dirty p with Some s -> s | None -> t.pages.(p)

let fetch_page t p =
  Op_counter.visit ();
  match Clock_cache.find t.cache p with
  | Some d -> d
  | None ->
    let d = decode_page (page_payload t p) in
    t.decompressions <- t.decompressions + 1;
    Clock_cache.put t.cache p d;
    d

(* page that may contain [probe]: last page whose first key <= probe *)
let route t probe =
  let lo = ref 0 and hi = ref (Array.length t.firsts) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Op_counter.compare_keys 1;
    if String.compare t.firsts.(mid) probe <= 0 then lo := mid + 1 else hi := mid
  done;
  max 0 (!lo - 1)

let in_page_lower_bound d probe =
  let lo = ref 0 and hi = ref (Array.length d.dkeys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Op_counter.compare_keys 1;
    if String.compare d.dkeys.(mid) probe < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let find_pos t probe =
  if t.nkeys = 0 then None
  else begin
    let p = route t probe in
    let d = fetch_page t p in
    let i = in_page_lower_bound d probe in
    if i < Array.length d.dkeys && d.dkeys.(i) = probe then Some (p, d, i) else None
  end

let mem t probe = find_pos t probe <> None
let find t probe = match find_pos t probe with None -> None | Some (_, d, i) -> Some d.dvals.(i).(0)
let find_all t probe = match find_pos t probe with None -> [] | Some (_, d, i) -> Array.to_list d.dvals.(i)

let update t probe v =
  match find_pos t probe with
  | None -> false
  | Some (p, d, i) ->
    d.dvals.(i).(0) <- v;
    (* decompress-modify-recompress: the page payload must reflect the new
       value for future cache misses *)
    Hashtbl.replace t.dirty p (encode_page d.dkeys d.dvals 0 (Array.length d.dkeys));
    true

let key_count t = t.nkeys
let entry_count t = t.nentries

let scan_from t probe n =
  if t.nkeys = 0 then []
  else begin
    let out = ref [] and taken = ref 0 in
    let p = ref (route t probe) in
    let d = ref (fetch_page t !p) in
    let i = ref (in_page_lower_bound !d probe) in
    let continue = ref true in
    while !continue && !taken < n do
      if !i >= Array.length !d.dkeys then
        if !p + 1 < Array.length t.pages then begin
          incr p;
          d := fetch_page t !p;
          i := 0
        end
        else continue := false
      else begin
        let key = !d.dkeys.(!i) in
        let vs = !d.dvals.(!i) in
        let j = ref 0 in
        while !taken < n && !j < Array.length vs do
          out := (key, vs.(!j)) :: !out;
          incr taken;
          incr j
        done;
        incr i
      end
    done;
    List.rev !out
  end

let iter_sorted t f =
  for p = 0 to Array.length t.pages - 1 do
    let d = fetch_page t p in
    for i = 0 to Array.length d.dkeys - 1 do
      f d.dkeys.(i) d.dvals.(i)
    done
  done

let to_entries t =
  let out = Array.make t.nkeys ("", [||]) in
  let pos = ref 0 in
  iter_sorted t (fun k vs ->
      out.(!pos) <- (k, vs);
      incr pos);
  out

let merge t batch ~(mode : Index_intf.merge_mode) ~deleted =
  let resolve (k, old_vs) (_, new_vs) =
    match mode with
    | Index_intf.Replace -> Some (k, new_vs)
    | Index_intf.Concat -> Some (k, Array.append old_vs new_vs)
  in
  let cmp (a, _) (b, _) = String.compare a b in
  (* [deleted] applies to pre-existing static entries only; the batch
     always survives (a deleted key may since have been reinserted) *)
  let keep =
    Array.of_seq (Seq.filter (fun (k, _) -> not (deleted k)) (Array.to_seq (to_entries t)))
  in
  build (Inplace_merge.merge_resolve ~cmp ~resolve keep batch)

let memory_bytes t =
  let payloads = ref 0 in
  Array.iteri (fun p _ -> payloads := !payloads + String.length (page_payload t p)) t.pages;
  let routing =
    Array.fold_left (fun acc k -> acc + Mem_model.key_slot_bytes (String.length k) + Mem_model.pointer_size) 0 t.firsts
  in
  (* the node cache holds decompressed pages and is part of the structure *)
  let cache_bytes = Clock_cache.capacity t.cache * default_page_entries * 2 * Mem_model.value_size in
  !payloads + routing + cache_bytes

let decompressions t = t.decompressions
let cache_hit_rate t = Clock_cache.hit_rate t.cache

(* Lazy entry cursor: decodes one page at a time through the node cache. *)
let to_seq t =
  let rec page_from p () =
    if p >= Array.length t.pages then Seq.Nil
    else begin
      let d = fetch_page t p in
      let rec entry i () =
        if i >= Array.length d.dkeys then page_from (p + 1) ()
        else Seq.Cons ((d.dkeys.(i), d.dvals.(i)), entry (i + 1))
      in
      entry 0 ()
    end
  in
  page_from 0
