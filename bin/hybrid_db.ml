(* hybrid_db: the command-line shell of the system — run OLTP benchmarks,
   serve the wire protocol, or talk to a running server, all over the same
   Db facade (DESIGN.md §12).

     dune exec bin/hybrid_db.exe -- bench --benchmark tpcc --index hybrid
     dune exec bin/hybrid_db.exe -- serve --partitions 4 --port 7501
     dune exec bin/hybrid_db.exe -- client --port 7501 put u64:42 hello
     dune exec bin/hybrid_db.exe -- client --port 7501 scan u64:0 10

   Invoking without a subcommand runs `bench` (the historical CLI), so
   existing `--benchmark ...` invocations keep working. *)

open Cmdliner
open Hi_hstore
open Hi_workloads
open Hi_server

let parse_index_kind = function
  | "btree" -> Engine.Btree_config
  | "hybrid" -> Engine.Hybrid_config
  | "hybrid-compressed" -> Engine.Hybrid_compressed_config
  | other -> failwith ("unknown index kind: " ^ other)

(* --- bench: the original benchmark runner --- *)

(* --partitions > 1: the domain-per-partition runtime (DESIGN.md §11). *)
let run_sharded benchmark config txns partitions =
  let module SW = Hi_shard.Shard_workload in
  let next, router, consistent, stop =
    match benchmark with
    | "voter" ->
      let w = SW.Voter_shard.create ~config ~partitions () in
      ( SW.Voter_shard.next w,
        SW.Voter_shard.router w,
        (fun () -> SW.Voter_shard.check_consistency w),
        fun () -> SW.Voter_shard.stop w )
    | "tpcc" ->
      let w = SW.Tpcc_shard.create ~config ~partitions () in
      ( SW.Tpcc_shard.next w,
        SW.Tpcc_shard.router w,
        (fun () -> SW.Tpcc_shard.check_consistency w),
        fun () -> SW.Tpcc_shard.stop w )
    | "articles" ->
      let w = SW.Articles_shard.create ~config ~partitions () in
      ( SW.Articles_shard.next w,
        SW.Articles_shard.router w,
        (fun () -> SW.Articles_shard.check_comment_counts w),
        fun () -> SW.Articles_shard.stop w )
    | other -> failwith ("unknown benchmark: " ^ other)
  in
  Printf.printf "running %d transactions over %d partitions ...\n%!" txns partitions;
  let stats = Hi_shard.Shard_runner.run ~router ~next ~num_txns:txns () in
  Printf.printf
    "\nthroughput: %.1f txn/s (%d committed, %d aborted, %d multi-partition, %d mp aborts)\n"
    stats.Hi_shard.Shard_runner.tps stats.committed stats.aborted stats.multi stats.multi_aborted;
  Printf.printf "latency: mean %.3f ms, p99 %.3f ms\n" (1000.0 *. stats.mean_latency_s)
    (1000.0 *. stats.p99_latency_s);
  Printf.printf "%-10s %12s %12s %12s\n" "partition" "committed" "aborted" "queue peak";
  List.iter
    (fun (p : Hi_shard.Shard_runner.per_partition) ->
      Printf.printf "%-10d %12d %12d %12d\n" p.pid p.committed p.aborted p.queue_peak)
    stats.per_partition;
  let ok = consistent () in
  Printf.printf "consistency check: %s\n" (if ok then "ok" else "FAILED");
  stop ();
  if not ok then exit 1

let run benchmark index_kind txns anticache_mb merge_ratio sample_every metrics_json partitions
    no_hash_sidecar =
  let index_kind = parse_index_kind index_kind in
  let evictable =
    match benchmark with
    | "tpcc" -> [ "history"; "order_line"; "orders" ]
    | "voter" -> [ "votes" ]
    | "articles" -> [ "comments"; "articles" ]
    | other -> failwith ("unknown benchmark: " ^ other)
  in
  let config =
    {
      Engine.default_config with
      index_kind;
      merge_ratio;
      eviction_threshold_bytes = Option.map (fun mbs -> mbs * 1024 * 1024) anticache_mb;
      evictable_tables = (if anticache_mb = None then [] else evictable);
      hash_sidecar = not no_hash_sidecar;
    }
  in
  let dump_metrics () =
    match metrics_json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Hi_util.Metrics.dump ());
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote metrics snapshot to %s\n" path
  in
  if partitions > 1 then begin
    run_sharded benchmark config txns partitions;
    dump_metrics ()
  end
  else begin
  let engine = Engine.create ~config () in
  Printf.printf "loading %s ...\n%!" benchmark;
  let transaction =
    match benchmark with
    | "tpcc" ->
      let st = Tpcc.setup engine in
      fun e -> ignore (Tpcc.transaction st e)
    | "voter" ->
      let st = Voter.setup engine in
      fun e -> ignore (Voter.transaction st e)
    | "articles" ->
      let st = Articles.setup engine in
      fun e -> ignore (Articles.transaction st e)
    | _ -> assert false
  in
  let m0 = Engine.memory_breakdown engine in
  Printf.printf "loaded: %.1f MB in memory\n%!"
    (float_of_int (Engine.total_in_memory m0) /. 1048576.0);
  Printf.printf "running %d transactions with %s indexes ...\n%!" txns
    (Engine.index_kind_name index_kind);
  let r = Runner.run engine ~transaction:(fun e -> transaction e) ~num_txns:txns ~sample_every () in
  let mb b = float_of_int b /. 1048576.0 in
  Printf.printf "\nthroughput: %.1f txn/s (%d committed, %d aborted, %d eviction restarts)\n"
    r.Runner.tps r.Runner.committed r.Runner.user_aborts r.Runner.evicted_restarts;
  let ms p = 1000.0 *. Hi_util.Histogram.percentile r.Runner.latency p in
  Printf.printf "latency: p50 %.3f ms, p99 %.3f ms, max %.3f ms\n" (ms 50.0) (ms 99.0) (ms 100.0);
  let m = r.Runner.memory in
  Printf.printf "memory: %.1f MB tuples, %.1f MB primary idx, %.1f MB secondary idx"
    (mb m.Engine.tuple_bytes) (mb m.Engine.pk_index_bytes) (mb m.Engine.secondary_index_bytes);
  if m.Engine.hash_index_bytes > 0 then
    Printf.printf ", %.1f MB hash sidecars" (mb m.Engine.hash_index_bytes);
  if m.Engine.anticache_disk_bytes > 0 then
    Printf.printf ", %.1f MB anti-cached on disk" (mb m.Engine.anticache_disk_bytes);
  print_newline ();
  if sample_every > 0 then begin
    Printf.printf "\n%-10s %12s %12s %12s\n" "txns" "window tps" "in-mem MB" "disk MB";
    List.iter
      (fun (s : Runner.sample) ->
        Printf.printf "%-10d %12.0f %12.1f %12.1f\n" s.Runner.at_txn s.Runner.window_tps
          (mb (Engine.total_in_memory s.Runner.memory))
          (mb s.Runner.memory.Engine.anticache_disk_bytes))
      r.Runner.samples
  end;
  dump_metrics ()
  end

let benchmark =
  Arg.(value & opt string "tpcc" & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Benchmark: tpcc, voter or articles.")

let index_kind =
  Arg.(
    value
    & opt string "hybrid"
    & info [ "i"; "index" ] ~docv:"KIND" ~doc:"Index configuration: btree, hybrid or hybrid-compressed.")

let txns = Arg.(value & opt int 20_000 & info [ "t"; "txns" ] ~docv:"N" ~doc:"Transactions to run.")

let anticache_mb =
  Arg.(
    value
    & opt (some int) None
    & info [ "anticache-mb" ] ~docv:"MB" ~doc:"Enable anti-caching with this eviction threshold.")

let merge_ratio =
  Arg.(value & opt int 10 & info [ "merge-ratio" ] ~docv:"R" ~doc:"Hybrid-index merge ratio (paper App C).")

let sample_every =
  Arg.(value & opt int 0 & info [ "sample-every" ] ~docv:"N" ~doc:"Print a throughput/memory sample every N transactions.")

let metrics_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"PATH"
        ~doc:"Write a JSON snapshot of the process-wide metrics registry to $(docv) after the run.")

let partitions =
  Arg.(
    value
    & opt int 1
    & info [ "p"; "partitions" ] ~docv:"N"
        ~doc:
          "Run the benchmark over $(docv) domain-backed partitions (the sharded runtime, \
           DESIGN.md §11); 1 keeps the single-partition engine.")

let no_hash_sidecar =
  Arg.(
    value & flag
    & info [ "no-hash-sidecar" ]
        ~doc:
          "Disable the per-table hash sidecar on primary keys (DESIGN.md §17); point reads fall \
           back to the ordered primary index.")

let bench_term =
  Term.(
    const run $ benchmark $ index_kind $ txns $ anticache_mb $ merge_ratio $ sample_every
    $ metrics_json $ partitions $ no_hash_sidecar)

let bench_cmd =
  let doc = "run an OLTP benchmark on the hybrid-index main-memory engine" in
  Cmd.v (Cmd.info "bench" ~doc) bench_term

(* --- serve: the wire-protocol server --- *)

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind/connect.")

let port_arg default doc = Arg.(value & opt int default & info [ "port" ] ~docv:"PORT" ~doc)

let parse_replica_of s =
  match String.rindex_opt s ':' with
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && host <> "" -> (host, p)
    | _ -> invalid_arg (Printf.sprintf "bad --replica-of %S (want HOST:PORT)" s))
  | None -> invalid_arg (Printf.sprintf "bad --replica-of %S (want HOST:PORT)" s)

let serve host port server_partitions index_kind merge_ratio wal_dir checkpoint_mb replica_of
    sync_replicas metrics_json no_hash_sidecar =
  let config =
    {
      Engine.default_config with
      index_kind = parse_index_kind index_kind;
      merge_ratio;
      hash_sidecar = not no_hash_sidecar;
    }
  in
  let checkpoint_bytes = Option.map (fun mb -> mb * 1024 * 1024) checkpoint_mb in
  let primary = Option.map parse_replica_of replica_of in
  if primary <> None && wal_dir <> None then
    invalid_arg "--replica-of and --wal-dir are exclusive: a replica's state is the stream";
  let replication =
    if primary <> None then None
    else if sync_replicas > 0 || wal_dir <> None then
      Some (Hi_shard.Router.replication ~sync_replicas ())
    else None
  in
  if sync_replicas > 0 && wal_dir = None then
    invalid_arg "--sync-replicas needs --wal-dir (the streams are the WALs)";
  let db =
    Db.create ~config ?wal_dir ?checkpoint_bytes ?replication
      ~read_only:(primary <> None) ~partitions:server_partitions ()
  in
  (match Db.recovery db with
  | None -> ()
  | Some r ->
    Printf.printf
      "hybrid_db: recovered %d txns in %.3f s (%d checkpoints, %d undecided prepares skipped, \
       %d torn tails truncated)\n\
       %!"
      r.Hi_shard.Router.replayed_txns r.duration_s r.checkpoints_loaded r.skipped_undecided
      r.torn_tails);
  let replica =
    Option.map
      (fun (phost, pport) -> Replica.start ~host:phost ~port:pport ~db ())
      primary
  in
  let server = Server.start ~host ~port ~db () in
  Printf.printf "hybrid_db: serving wire protocol v%d on %s:%d (%d partitions, %s indexes%s%s)\n%!"
    Wire.version host (Server.port server) server_partitions
    (Engine.index_kind_name config.Engine.index_kind)
    (match wal_dir with None -> "" | Some d -> Printf.sprintf ", wal %s" d)
    (match primary with
    | None -> if sync_replicas > 0 then Printf.sprintf ", semi-sync %d" sync_replicas else ""
    | Some (h, p) -> Printf.sprintf ", read-only replica of %s:%d" h p);
  let dump_metrics () =
    match metrics_json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Hi_util.Metrics.dump ());
      output_char oc '\n';
      close_out oc
  in
  let shutdown _ =
    prerr_endline "shutting down ...";
    Option.iter Replica.stop replica;
    Server.stop server;
    Db.close db;
    dump_metrics ();
    exit 0
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
  while true do
    Unix.sleep 3600
  done

let serve_partitions =
  Arg.(
    value & opt int 2
    & info [ "p"; "partitions" ] ~docv:"N" ~doc:"Domain-backed partitions to serve.")

let wal_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal-dir" ] ~docv:"DIR"
        ~doc:
          "Enable durability (DESIGN.md §13): per-partition write-ahead logs and checkpoints in \
           $(docv).  Acknowledged writes survive crashes; restarting with the same $(docv) and \
           partition count replays them.")

let checkpoint_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-mb" ] ~docv:"MB"
        ~doc:"Auto-checkpoint a partition once its log exceeds $(docv) MiB (default 64).")

let replica_of_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replica-of" ] ~docv:"HOST:PORT"
        ~doc:
          "Serve as a read-only replica of the primary at $(docv) (DESIGN.md §15): stream its \
           WAL, apply it locally, answer Get/Scan, and reject writes.  Exclusive with \
           $(b,--wal-dir).")

let sync_replicas_arg =
  Arg.(
    value & opt int 0
    & info [ "sync-replicas" ] ~docv:"N"
        ~doc:
          "Semi-synchronous replication: each group commit waits until $(docv) connected \
           replicas have applied it (degrading to async after a deadline).  Needs \
           $(b,--wal-dir).")

let serve_cmd =
  let doc = "serve the key/value wire protocol over TCP" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ host_arg
      $ port_arg 7501 "Port to listen on (0 picks a free port)."
      $ serve_partitions $ index_kind $ merge_ratio $ wal_dir_arg $ checkpoint_mb_arg
      $ replica_of_arg $ sync_replicas_arg $ metrics_json $ no_hash_sidecar)

(* --- client: one-shot operations against a running server --- *)

(* Keys on the command line: `u64:42` and `email:7` build the repo's
   order-preserving encodings; anything else is the literal bytes. *)
let parse_key s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "u64" ->
    Hi_util.Key_codec.encode_u64 (Int64.of_string (String.sub s (i + 1) (String.length s - i - 1)))
  | Some i when String.sub s 0 i = "email" ->
    Hi_util.Key_codec.email_of_id (int_of_string (String.sub s (i + 1) (String.length s - i - 1)))
  | _ -> s

let parse_value s =
  if s = "null" then Db.Null
  else
    match int_of_string_opt s with
    | Some n -> Db.Int n
    | None -> (
      match float_of_string_opt s with Some f -> Db.Float f | None -> Db.Str s)

let parse_agg_fn = function
  | "count" -> Db.Count
  | "sum" -> Db.Sum
  | "min" -> Db.Min
  | "max" -> Db.Max
  | "avg" -> Db.Avg
  | other -> failwith ("unknown aggregate (want count|sum|min|max|avg): " ^ other)

let client host port args =
  let agg fn lo hi prefix =
    Db.Scan_agg
      {
        fn = parse_agg_fn fn;
        lo = parse_key lo;
        hi = Option.map parse_key hi;
        group_prefix = prefix;
      }
  in
  let req =
    match args with
    | [ "get"; k ] -> Db.Get (parse_key k)
    | [ "put"; k; v ] -> Db.Put (parse_key k, parse_value v)
    | [ "del"; k ] | [ "delete"; k ] -> Db.Delete (parse_key k)
    | [ "scan"; probe; n ] -> Db.Scan_from (parse_key probe, int_of_string n)
    | [ "agg"; fn; lo ] -> agg fn lo None 0
    | [ "agg"; fn; lo; hi ] -> agg fn lo (Some hi) 0
    | [ "agg"; fn; lo; hi; prefix ] -> agg fn lo (Some hi) (int_of_string prefix)
    | _ ->
      failwith
        "expected one of: get KEY | put KEY VALUE | del KEY | scan PROBE COUNT | agg FN LO [HI \
         [PREFIX]]"
  in
  let c = Client.connect ~host ~port () in
  let resp = Client.call c req in
  Client.close c;
  print_endline (Db.response_to_string resp);
  match resp with Db.Failed _ -> exit 1 | _ -> ()

let client_args =
  Arg.(value & pos_all string [] & info [] ~docv:"OP" ~doc:"Operation and its arguments.")

let client_cmd =
  let doc = "run one operation against a hybrid_db server" in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const client $ host_arg $ port_arg 7501 "Server port to connect to." $ client_args)

let cmd =
  let doc = "hybrid-index main-memory OLTP database" in
  Cmd.group ~default:bench_term
    (Cmd.info "hybrid_db" ~doc)
    [ bench_cmd; serve_cmd; client_cmd ]

let () = exit (Cmd.eval cmd)
