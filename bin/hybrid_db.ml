(* hybrid_db: run one OLTP benchmark on the H-Store-style engine from the
   command line.

     dune exec bin/hybrid_db.exe -- --benchmark tpcc --index hybrid --txns 20000
     dune exec bin/hybrid_db.exe -- --benchmark voter --anticache-mb 2 *)

open Cmdliner
open Hi_hstore
open Hi_workloads

let run benchmark index_kind txns anticache_mb merge_ratio sample_every metrics_json =
  let index_kind =
    match index_kind with
    | "btree" -> Engine.Btree_config
    | "hybrid" -> Engine.Hybrid_config
    | "hybrid-compressed" -> Engine.Hybrid_compressed_config
    | other -> failwith ("unknown index kind: " ^ other)
  in
  let evictable =
    match benchmark with
    | "tpcc" -> [ "history"; "order_line"; "orders" ]
    | "voter" -> [ "votes" ]
    | "articles" -> [ "comments"; "articles" ]
    | other -> failwith ("unknown benchmark: " ^ other)
  in
  let config =
    {
      Engine.default_config with
      index_kind;
      merge_ratio;
      eviction_threshold_bytes = Option.map (fun mbs -> mbs * 1024 * 1024) anticache_mb;
      evictable_tables = (if anticache_mb = None then [] else evictable);
    }
  in
  let engine = Engine.create ~config () in
  Printf.printf "loading %s ...\n%!" benchmark;
  let transaction =
    match benchmark with
    | "tpcc" ->
      let st = Tpcc.setup engine in
      fun e -> ignore (Tpcc.transaction st e)
    | "voter" ->
      let st = Voter.setup engine in
      fun e -> ignore (Voter.transaction st e)
    | "articles" ->
      let st = Articles.setup engine in
      fun e -> ignore (Articles.transaction st e)
    | _ -> assert false
  in
  let m0 = Engine.memory_breakdown engine in
  Printf.printf "loaded: %.1f MB in memory\n%!"
    (float_of_int (Engine.total_in_memory m0) /. 1048576.0);
  Printf.printf "running %d transactions with %s indexes ...\n%!" txns
    (Engine.index_kind_name index_kind);
  let r = Runner.run engine ~transaction:(fun e -> transaction e) ~num_txns:txns ~sample_every () in
  let mb b = float_of_int b /. 1048576.0 in
  Printf.printf "\nthroughput: %.1f txn/s (%d committed, %d aborted, %d eviction restarts)\n"
    r.Runner.tps r.Runner.committed r.Runner.user_aborts r.Runner.evicted_restarts;
  let ms p = 1000.0 *. Hi_util.Histogram.percentile r.Runner.latency p in
  Printf.printf "latency: p50 %.3f ms, p99 %.3f ms, max %.3f ms\n" (ms 50.0) (ms 99.0) (ms 100.0);
  let m = r.Runner.memory in
  Printf.printf "memory: %.1f MB tuples, %.1f MB primary idx, %.1f MB secondary idx"
    (mb m.Engine.tuple_bytes) (mb m.Engine.pk_index_bytes) (mb m.Engine.secondary_index_bytes);
  if m.Engine.anticache_disk_bytes > 0 then
    Printf.printf ", %.1f MB anti-cached on disk" (mb m.Engine.anticache_disk_bytes);
  print_newline ();
  if sample_every > 0 then begin
    Printf.printf "\n%-10s %12s %12s %12s\n" "txns" "window tps" "in-mem MB" "disk MB";
    List.iter
      (fun (s : Runner.sample) ->
        Printf.printf "%-10d %12.0f %12.1f %12.1f\n" s.Runner.at_txn s.Runner.window_tps
          (mb (Engine.total_in_memory s.Runner.memory))
          (mb s.Runner.memory.Engine.anticache_disk_bytes))
      r.Runner.samples
  end;
  match metrics_json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Hi_util.Metrics.dump ());
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nwrote metrics snapshot to %s\n" path

let benchmark =
  Arg.(value & opt string "tpcc" & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Benchmark: tpcc, voter or articles.")

let index_kind =
  Arg.(
    value
    & opt string "hybrid"
    & info [ "i"; "index" ] ~docv:"KIND" ~doc:"Index configuration: btree, hybrid or hybrid-compressed.")

let txns = Arg.(value & opt int 20_000 & info [ "t"; "txns" ] ~docv:"N" ~doc:"Transactions to run.")

let anticache_mb =
  Arg.(
    value
    & opt (some int) None
    & info [ "anticache-mb" ] ~docv:"MB" ~doc:"Enable anti-caching with this eviction threshold.")

let merge_ratio =
  Arg.(value & opt int 10 & info [ "merge-ratio" ] ~docv:"R" ~doc:"Hybrid-index merge ratio (paper App C).")

let sample_every =
  Arg.(value & opt int 0 & info [ "sample-every" ] ~docv:"N" ~doc:"Print a throughput/memory sample every N transactions.")

let metrics_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"PATH"
        ~doc:"Write a JSON snapshot of the process-wide metrics registry to $(docv) after the run.")

let cmd =
  let doc = "run an OLTP benchmark on the hybrid-index main-memory engine" in
  Cmd.v
    (Cmd.info "hybrid_db" ~doc)
    Term.(
      const run $ benchmark $ index_kind $ txns $ anticache_mb $ merge_ratio $ sample_every
      $ metrics_json)

let () = exit (Cmd.eval cmd)
