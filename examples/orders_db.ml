(* A miniature order-processing database on the H-Store-style engine with
   hybrid indexes: schemas, stored procedures, transactional execution and
   the memory-breakdown API.

   Run with:  dune exec examples/orders_db.exe *)

open Hi_hstore
open Value

let customers_schema =
  Schema.make ~name:"customers"
    ~columns:[ ("c_id", TInt); ("c_name", TStr 24); ("c_balance", TInt) ]
    ~pk:[ "c_id" ] ()

let orders_schema =
  Schema.make ~name:"orders"
    ~columns:[ ("o_id", TInt); ("o_c_id", TInt); ("o_amount", TInt); ("o_status", TStr 8) ]
    ~pk:[ "o_id" ]
    ~secondary:[ ("orders_by_customer", [ "o_c_id"; "o_id" ], false) ]
    ()

let () =
  (* every table in this engine uses hybrid B+tree indexes *)
  let engine =
    Engine.create ~config:{ Engine.default_config with index_kind = Engine.Hybrid_config } ()
  in
  let customers = Engine.create_table engine customers_schema in
  let orders = Engine.create_table engine orders_schema in

  for c = 1 to 10_000 do
    ignore (Table.insert customers [| Int c; Str (Printf.sprintf "customer-%d" c); Int 1_000 |])
  done;

  (* A stored procedure: place an order and debit the customer, atomically.
     Raising Engine.Abort rolls back every change. *)
  let place_order ~order_id ~customer_id ~amount engine =
    match Table.find_by_pk customers [ Int customer_id ] with
    | None -> raise (Engine.Abort "no such customer")
    | Some c_rowid ->
      let row = Engine.read engine customers c_rowid in
      let balance = as_int row.(2) in
      if balance < amount then raise (Engine.Abort "insufficient balance");
      Engine.update engine customers c_rowid [ (2, Int (balance - amount)) ];
      ignore (Engine.insert engine orders [| Int order_id; Int customer_id; Int amount; Str "open" |]);
      order_id
  in

  let placed = ref 0 and rejected = ref 0 in
  let rng = Hi_util.Xorshift.create 1 in
  for o = 1 to 50_000 do
    let customer_id = 1 + Hi_util.Xorshift.int rng 10_000 in
    let amount = 1 + Hi_util.Xorshift.int rng 400 in
    match Engine.run engine (place_order ~order_id:o ~customer_id ~amount) with
    | Ok _ -> incr placed
    | Error _ -> incr rejected
  done;
  Printf.printf "placed %d orders, rejected %d (insufficient balance)\n" !placed !rejected;

  (* look up one customer's orders through a typed index handle *)
  let by_customer = Table.index_exn orders "orders_by_customer" in
  let some_orders = Table.scan_prefix_eq by_customer ~prefix:[ Int 42 ] ~limit:10 in
  Printf.printf "customer 42 has %d orders\n" (List.length some_orders);

  (* conservation: money only moved from balances into orders *)
  let total_balance = ref 0 in
  List.iter
    (fun rowid -> total_balance := !total_balance + as_int (Table.read customers rowid).(2))
    (Table.scan (Table.index_exn customers "customers_pk") ~prefix:[] ~limit:max_int);
  let total_orders = ref 0 in
  List.iter
    (fun rowid -> total_orders := !total_orders + as_int (Table.read orders rowid).(2))
    (Table.scan (Table.index_exn orders "orders_pk") ~prefix:[] ~limit:max_int);
  Printf.printf "conservation check: balances %d + orders %d = %d (expected %d)\n" !total_balance
    !total_orders (!total_balance + !total_orders) (10_000 * 1_000);

  let m = Engine.memory_breakdown engine in
  Printf.printf
    "memory: %.2f MB tuples, %.2f MB primary indexes, %.2f MB secondary indexes, %.2f MB hash sidecars\n"
    (float_of_int m.Engine.tuple_bytes /. 1048576.0)
    (float_of_int m.Engine.pk_index_bytes /. 1048576.0)
    (float_of_int m.Engine.secondary_index_bytes /. 1048576.0)
    (float_of_int m.Engine.hash_index_bytes /. 1048576.0)
