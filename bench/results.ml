(* Structured benchmark output: experiments record one row per measured
   configuration and the harness writes them all to BENCH_results.json
   (alongside the human-readable tables on stdout).

   Row schema (DESIGN.md §10):
     { "experiment": "<name>",
       "config":     { ...what was run... },
       "metrics":    { ...what was measured... } }

   [config] identifies the cell (structure, key type, workload, txn
   counts); [metrics] holds the numbers (Mops, bytes, merge counts,
   measured Bloom FPR, abort breakdowns). *)

module Json = Hi_util.Json

let rows : Json.t list ref = ref []

(* Set by the harness before each experiment runs, so the experiment
   functions themselves never need to know their registry name. *)
let current_experiment = ref "adhoc"

let set_experiment name = current_experiment := name

let record ~config ~metrics =
  rows :=
    Json.Obj
      [
        ("experiment", Json.Str !current_experiment);
        ("config", Json.Obj config);
        ("metrics", Json.Obj metrics);
      ]
    :: !rows

let count () = List.length !rows

let write path =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (Json.List (List.rev !rows)));
  output_char oc '\n';
  close_out oc

(* Shorthands so call sites stay one line per metric. *)
let str s = Json.Str s
let int n = Json.Int n
let num f = Json.number f
