(* Replication experiment (DESIGN.md §15).

   Scenario "replica_failover": a real `hybrid_db serve --wal-dir
   --sync-replicas 1` subprocess streams its WAL to an in-process
   replica while a client drives a pipelined put burst over TCP.  With
   semi-sync replication every acknowledgment means the write is both
   fsynced on the primary and applied on the replica — so when the
   primary is SIGKILLed mid-burst with a window of writes in flight,
   the replica must be able to serve every acknowledged write
   immediately, with no recovery step at all.  The row reports the
   acknowledged throughput (the price of waiting for the replica), the
   failover audit (lost must be 0), and that the replica keeps serving
   reads while rejecting writes. *)

open Hi_server
open Common

let key i = Printf.sprintf "rep%07d" i

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hi_bench_%s_%d_%d" name (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let spawn_primary ~exe ~wal_dir ~partitions =
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process exe
      [|
        exe; "serve"; "--port"; "0"; "--partitions"; string_of_int partitions; "--wal-dir";
        wal_dir; "--sync-replicas"; "1";
      |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let rec await_banner () =
    match input_line ic with
    | line -> (
      match Durability.parse_port line with
      | Some p when String.length line > 0 -> p
      | _ -> await_banner ())
    | exception End_of_file ->
      ignore (Unix.waitpid [] pid);
      failwith "replication: primary exited before printing its banner"
  in
  let port = await_banner () in
  (pid, port, ic)

let replica_failover () =
  let partitions = max 2 !Common.partitions in
  let target = max 500 (scaled 10_000) in
  let inflight_window = 64 in
  section
    (Printf.sprintf
       "Replication: SIGKILL the semi-sync primary after %d acknowledged writes, read \
        from the replica"
       target);
  let exe = Durability.server_exe () in
  if not (Sys.file_exists exe) then
    failwith
      (Printf.sprintf "replication: server binary %s not built (set HYBRID_DB_EXE)" exe);
  let wal_dir = fresh_dir "repl" in
  let pid, port, ic = spawn_primary ~exe ~wal_dir ~partitions in
  Printf.printf "primary pid %d on port %d, wal %s\n%!" pid port wal_dir;
  let rdb = Db.create ~read_only:true ~partitions () in
  let replica = Replica.start ~host:"127.0.0.1" ~port ~db:rdb () in
  let attach_deadline = Unix.gettimeofday () +. 30.0 in
  while (not (Replica.connected replica)) && Unix.gettimeofday () < attach_deadline do
    Thread.delay 0.01
  done;
  if not (Replica.connected replica) then failwith "replication: replica never attached";
  let c = Client.connect ~port () in
  let inflight = Queue.create () in
  let acked = ref [] in
  let n_acked = ref 0 in
  let next = ref 0 in
  let t0 = Unix.gettimeofday () in
  (try
     while !n_acked < target do
       while Queue.length inflight < inflight_window do
         let i = !next in
         incr next;
         Queue.push (i, Client.send c (Db.Put (key i, Db.Int i))) inflight
       done;
       let i, ticket = Queue.pop inflight in
       match Client.await ticket with
       | Db.Done _ ->
         acked := i :: !acked;
         incr n_acked
       | Db.Failed e -> failwith ("put failed before the kill: " ^ Db.error_to_string e)
       | _ -> failwith "unexpected response shape"
     done
   with e ->
     (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
     raise e);
  let burst_s = Unix.gettimeofday () -. t0 in
  let in_flight_at_kill = Queue.length inflight in
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Client.close c;
  close_in_noerr ic;
  Printf.printf "killed with %d acks in %.2f s (%d writes in flight)\n%!" !n_acked burst_s
    in_flight_at_kill;
  (* no recovery: the replica serves immediately *)
  let t1 = Unix.gettimeofday () in
  let lost =
    List.filter (fun i -> Db.get rdb (key i) <> Ok (Some (Db.Int i))) !acked
  in
  let audit_s = Unix.gettimeofday () -. t1 in
  let scan_ok =
    match Db.scan_from rdb "" Db.max_scan with Ok (_ :: _) -> true | _ -> false
  in
  let write_rejected = Db.put rdb "must-not-land" Db.Null = Error Db.Read_only in
  Replica.stop replica;
  Db.close rdb;
  Printf.printf
    "replica served %d/%d acknowledged writes, %d LOST (audited in %.3f s); scans %s, \
     writes %s\n\
     %!"
    (!n_acked - List.length lost)
    !n_acked (List.length lost) audit_s
    (if scan_ok then "served" else "FAILED")
    (if write_rejected then "rejected" else "NOT REJECTED");
  Results.(
    record
      ~config:
        [
          ("scenario", str "replica_failover");
          ("partitions", int partitions);
          ("acked_target", int target);
          ("inflight_window", int inflight_window);
          ("sync_replicas", int 1);
        ]
      ~metrics:
        [
          ("acked", int !n_acked);
          ("lost", int (List.length lost));
          ("in_flight_at_kill", int in_flight_at_kill);
          ("acked_tps", num (if burst_s > 0.0 then float_of_int !n_acked /. burst_s else 0.0));
          ("audit_s", num audit_s);
          ("replica_scan_ok", str (if scan_ok then "true" else "false"));
          ("replica_write_rejected", str (if write_rejected then "true" else "false"));
        ]);
  if lost <> [] then failwith "replication: acknowledged writes were lost";
  if not write_rejected then failwith "replication: replica accepted a write"

let replication () = replica_failover ()
