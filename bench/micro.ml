(* Microbenchmark experiments (paper §6 and appendices C–E).

   Each function regenerates one table or figure of the paper, printing the
   same rows/series the paper reports.  Dataset sizes default to a
   laptop-scale fraction of the paper's 50 M keys and scale with
   [Common.scale]; EXPERIMENTS.md records paper-vs-measured shapes. *)

open Hi_util
open Hi_index
open Hybrid_index
open Common

let default_keys = 200_000
let default_ops = 200_000

(* --- Fig 5: Compaction & Compression evaluation --- *)

let read_throughput_dynamic (module D : Index_intf.DYNAMIC) keys probes =
  let t = D.create () in
  Array.iteri (fun i k -> D.insert t k i) keys;
  let (), secs = time (fun () -> Array.iter (fun k -> ignore (D.find t k)) probes) in
  (mops (Array.length probes) secs, D.memory_bytes t)

let read_throughput_static (module S : Index_intf.STATIC) keys probes =
  let t = S.build (entries_of_keys keys) in
  let (), secs = time (fun () -> Array.iter (fun k -> ignore (S.find t k)) probes) in
  (mops (Array.length probes) secs, S.memory_bytes t)

let fig5 () =
  section "Figure 5: Compaction & Compression — read throughput (Mops/s) and memory (MB)";
  let n = scaled default_keys and q = scaled default_ops in
  Printf.printf "%d keys, %d zipfian point queries per cell\n" n q;
  Printf.printf "%-12s %-10s | %10s %10s | %10s %10s | %10s\n" "structure" "keys" "orig Mops"
    "orig MB" "cmpct Mops" "cmpct MB" "ratio";
  hr ();
  List.iter
    (fun structure ->
      List.iter
        (fun kt ->
          let keys = Key_codec.generate_keys kt n in
          let probes = zipf_probes keys q 99 in
          let d_tput, d_mem = read_throughput_dynamic (dynamic_of structure) keys probes in
          let s_tput, s_mem = read_throughput_static (static_of structure) keys probes in
          Results.record
            ~config:
              [
                ("structure", Results.str structure);
                ("key_type", Results.str (Key_codec.key_type_name kt));
                ("keys", Results.int n);
                ("ops", Results.int q);
              ]
            ~metrics:
              [
                ("dynamic_mops", Results.num d_tput);
                ("dynamic_memory_bytes", Results.int d_mem);
                ("static_mops", Results.num s_tput);
                ("static_memory_bytes", Results.int s_mem);
              ];
          Printf.printf "%-12s %-10s | %10.2f %10.1f | %10.2f %10.1f | %9.0f%%\n" structure
            (Key_codec.key_type_name kt) d_tput (mb d_mem) s_tput (mb s_mem)
            (100.0 *. float_of_int s_mem /. float_of_int (max 1 d_mem)))
        Key_codec.all_key_types)
    structures;
  hr ();
  print_endline "Compressed B+tree (Compression rule, §4.4) and front-coded B+tree (§9 direction):";
  List.iter
    (fun kt ->
      let keys = Key_codec.generate_keys kt n in
      let probes = zipf_probes keys q 99 in
      let z_tput, z_mem = read_throughput_static (static_of "compressed-btree") keys probes in
      let f_tput, f_mem = read_throughput_static (static_of "frontcoded-btree") keys probes in
      List.iter
        (fun (structure, tput, mem) ->
          Results.record
            ~config:
              [
                ("structure", Results.str structure);
                ("key_type", Results.str (Key_codec.key_type_name kt));
                ("keys", Results.int n);
                ("ops", Results.int q);
              ]
            ~metrics:
              [ ("static_mops", Results.num tput); ("static_memory_bytes", Results.int mem) ])
        [ ("compressed-btree", z_tput, z_mem); ("frontcoded-btree", f_tput, f_mem) ];
      Printf.printf "%-12s %-10s | %10s %10s | %10.2f %10.1f |\n" "z-btree"
        (Key_codec.key_type_name kt) "" "" z_tput (mb z_mem);
      Printf.printf "%-12s %-10s | %10s %10s | %10.2f %10.1f |\n" "fc-btree"
        (Key_codec.key_type_name kt) "" "" f_tput (mb f_mem))
    Key_codec.all_key_types

(* --- Table 2: point-query profiling proxy --- *)

let table2 () =
  section "Table 2: point-query profiling (deterministic proxies for PAPI counters)";
  let n = scaled default_keys and q = scaled default_ops in
  Printf.printf "%d point queries of random 64-bit integer keys over %d keys\n" q n;
  Printf.printf "%-10s | %14s %14s %14s %14s\n" "structure" "instrs(model)" "comparisons"
    "ptr derefs" "cache lines";
  hr ();
  let keys = Key_codec.generate_keys Key_codec.Rand_int n in
  let probes = zipf_probes keys q 7 in
  List.iter
    (fun structure ->
      let (module D) = dynamic_of structure in
      let t = D.create () in
      Array.iteri (fun i k -> D.insert t k i) keys;
      Op_counter.reset ();
      let s0 = Op_counter.snapshot () in
      Array.iter (fun k -> ignore (D.find t k)) probes;
      let d = Op_counter.diff s0 (Op_counter.snapshot ()) in
      Results.record
        ~config:
          [
            ("structure", Results.str structure);
            ("index", Results.str "original");
            ("keys", Results.int n);
            ("ops", Results.int q);
          ]
        ~metrics:
          [
            ("instructions_model", Results.int (Op_counter.instructions d));
            ("key_comparisons", Results.int d.Op_counter.key_comparisons);
            ("pointer_derefs", Results.int d.Op_counter.pointer_derefs);
            ("cache_lines", Results.int (Op_counter.cache_lines_touched d));
          ];
      Printf.printf "%-10s | %14d %14d %14d %14d\n" structure (Op_counter.instructions d)
        d.Op_counter.key_comparisons d.Op_counter.pointer_derefs (Op_counter.cache_lines_touched d))
    structures;
  (* The same load through each structure's hybrid index, with merge and
     Bloom filter behaviour from the new stats/metrics plumbing.  A small
     [min_merge_size] makes merges happen even at smoke-test scales. *)
  hr ();
  Printf.printf "Hybrid variants: insert %d keys then run the %d probes\n" n q;
  Printf.printf "%-10s | %12s %12s %10s %8s %10s\n" "structure" "insert Mops" "find Mops" "MB"
    "merges" "bloom FPR";
  List.iter
    (fun structure ->
      let module H = (val hybrid_module structure) in
      let t =
        H.create ~config:{ Hybrid.default_config with min_merge_size = scaled 25_600 } ()
      in
      let (), ins_secs =
        time (fun () -> Array.iteri (fun i k -> ignore (H.insert_unique t k i)) keys)
      in
      let (), read_secs = time (fun () -> Array.iter (fun k -> ignore (H.find t k)) probes) in
      let st = H.stats t in
      let mem = H.memory_bytes t in
      Results.record
        ~config:
          [
            ("structure", Results.str structure);
            ("index", Results.str "hybrid");
            ("keys", Results.int n);
            ("ops", Results.int q);
          ]
        ~metrics:
          [
            ("insert_mops", Results.num (mops n ins_secs));
            ("find_mops", Results.num (mops q read_secs));
            ("memory_bytes", Results.int mem);
            ("merges", Results.int st.Hybrid.merges);
            ("merge_entries_moved", Results.int st.Hybrid.merge_entries_moved);
            ("bloom_measured_fpr", Results.num st.Hybrid.bloom_measured_fpr);
            ("bloom_negative_skips", Results.int st.Hybrid.bloom_negative_skips);
          ];
      Printf.printf "%-10s | %12.2f %12.2f %10.1f %8d %10.4f\n" structure (mops n ins_secs)
        (mops q read_secs) (mb mem) st.Hybrid.merges st.Hybrid.bloom_measured_fpr)
    structures

(* --- Fig 6: merge overhead --- *)

let fig6 () =
  section "Figure 6: merge time vs static-stage size (insert-only, merge ratio 10)";
  let n = scaled (default_keys * 4) in
  List.iter
    (fun structure ->
      Printf.printf "\n[%s]\n" structure;
      Printf.printf "%-10s | %12s %12s\n" "keys" "static MB" "merge ms";
      List.iter
        (fun kt ->
          let module H = (val match structure with
                              | "btree" -> (module Instances.Hybrid_btree : Hybrid.S)
                              | "masstree" -> (module Instances.Hybrid_masstree)
                              | "skiplist" -> (module Instances.Hybrid_skiplist)
                              | "art" -> (module Instances.Hybrid_art)
                              | s -> invalid_arg s)
          in
          let t = H.create ~config:{ Hybrid.default_config with min_merge_size = 4096 } () in
          let keys = Key_codec.generate_keys kt n in
          Array.iteri (fun i k -> ignore (H.insert_unique t k i)) keys;
          List.iter
            (fun (static_bytes, secs) ->
              Printf.printf "%-10s | %12.1f %12.2f\n" (Key_codec.key_type_name kt) (mb static_bytes)
                (secs *. 1000.0))
            (H.merge_log t);
          let st = H.stats t in
          Results.record
            ~config:
              [
                ("structure", Results.str structure);
                ("key_type", Results.str (Key_codec.key_type_name kt));
                ("keys", Results.int n);
              ]
            ~metrics:
              [
                ("merges", Results.int st.Hybrid.merges);
                ("total_merge_seconds", Results.num st.Hybrid.total_merge_seconds);
                ("last_merge_seconds", Results.num st.Hybrid.last_merge_seconds);
                ("merge_entries_moved", Results.int st.Hybrid.merge_entries_moved);
                ("merge_bytes_moved", Results.int st.Hybrid.merge_bytes_moved);
              ])
        Key_codec.all_key_types)
    structures

(* --- Fig 7: hybrid vs original, primary indexes --- *)

let ycsb_spec workload kt n ops =
  { Hi_ycsb.Ycsb.default_spec with workload; key_type = kt; num_keys = n; num_ops = ops }

let run_cell index spec = Hi_ycsb.Ycsb.run index spec

let fig7 () =
  section "Figure 7: hybrid vs original (primary indexes) — throughput (Mops/s) and memory (MB)";
  let n = scaled default_keys and ops = scaled (default_ops / 2) in
  Printf.printf "%d keys loaded, %d operations per workload cell\n" n ops;
  List.iter
    (fun structure ->
      Printf.printf "\n[%s]\n" structure;
      Printf.printf "%-10s | %-12s | %12s %12s | %12s %12s\n" "keys" "workload" "orig Mops"
        "hybrid Mops" "orig MB" "hybrid MB";
      hr ();
      List.iter
        (fun kt ->
          List.iter
            (fun workload ->
              let spec = ycsb_spec workload kt n ops in
              let orig = run_cell (List.assoc structure Instances.original_indexes) spec in
              let hyb = run_cell (hybrid_with ~structure Hybrid.default_config) spec in
              Results.record
                ~config:
                  [
                    ("structure", Results.str structure);
                    ("key_type", Results.str (Key_codec.key_type_name kt));
                    ("workload", Results.str (Hi_ycsb.Ycsb.workload_name workload));
                    ("keys", Results.int n);
                    ("ops", Results.int ops);
                  ]
                ~metrics:
                  [
                    ("orig_mops", Results.num orig.Hi_ycsb.Ycsb.run_mops);
                    ("hybrid_mops", Results.num hyb.Hi_ycsb.Ycsb.run_mops);
                    ("orig_memory_bytes", Results.int orig.Hi_ycsb.Ycsb.memory_bytes);
                    ("hybrid_memory_bytes", Results.int hyb.Hi_ycsb.Ycsb.memory_bytes);
                  ];
              Printf.printf "%-10s | %-12s | %12.2f %12.2f | %12.1f %12.1f\n"
                (Key_codec.key_type_name kt)
                (Hi_ycsb.Ycsb.workload_name workload)
                orig.Hi_ycsb.Ycsb.run_mops hyb.Hi_ycsb.Ycsb.run_mops
                (mb orig.Hi_ycsb.Ycsb.memory_bytes) (mb hyb.Hi_ycsb.Ycsb.memory_bytes))
            Hi_ycsb.Ycsb.all_workloads)
        Key_codec.all_key_types)
    structures;
  (* hybrid-compressed B+tree column of Fig 7 *)
  Printf.printf "\n[btree: hybrid-compressed]\n";
  List.iter
    (fun kt ->
      List.iter
        (fun workload ->
          let spec = ycsb_spec workload kt n ops in
          let hc = run_cell (hybrid_with ~structure:"compressed-btree" Hybrid.default_config) spec in
          Printf.printf "%-10s | %-12s | %12s %12.2f | %12s %12.1f\n"
            (Key_codec.key_type_name kt)
            (Hi_ycsb.Ycsb.workload_name workload)
            "" hc.Hi_ycsb.Ycsb.run_mops "" (mb hc.Hi_ycsb.Ycsb.memory_bytes))
        Hi_ycsb.Ycsb.all_workloads)
    Key_codec.all_key_types

(* --- Fig 11 (Appendix C): merge-ratio sensitivity --- *)

let fig11 () =
  section "Figure 11 (App C): merge-ratio sensitivity (hybrid B+tree, 64-bit random int)";
  let n = scaled default_keys and ops = scaled default_ops in
  Printf.printf "%-8s | %14s %14s\n" "ratio" "insert Mops" "read Mops";
  hr ();
  List.iter
    (fun ratio ->
      let config = { Hybrid.default_config with trigger = Hybrid.Ratio ratio } in
      let (module I) = hybrid_with config in
      (* extra keys fill the dynamic stage to ~50% before the read phase,
         as in the paper's methodology (App C) *)
      let extra = max 1 (n / (2 * ratio)) in
      let keys = Key_codec.generate_keys Key_codec.Rand_int (n + extra) in
      let t = I.create () in
      let (), ins_secs =
        time (fun () ->
            for i = 0 to n - 1 do
              ignore (I.insert_unique t keys.(i) i)
            done)
      in
      I.flush t;
      for i = n to n + extra - 1 do
        ignore (I.insert_unique t keys.(i) i)
      done;
      let probes = zipf_probes (Array.sub keys 0 n) ops 5 in
      let (), read_secs = time (fun () -> Array.iter (fun k -> ignore (I.find t k)) probes) in
      Results.record
        ~config:[ ("merge_ratio", Results.int ratio); ("keys", Results.int n); ("ops", Results.int ops) ]
        ~metrics:
          [
            ("insert_mops", Results.num (mops n ins_secs));
            ("read_mops", Results.num (mops ops read_secs));
          ];
      Printf.printf "%-8d | %14.2f %14.2f\n" ratio (mops n ins_secs) (mops ops read_secs))
    [ 1; 5; 10; 20; 40; 60; 80; 100 ]

(* --- Fig 12 (Appendix D): auxiliary structures ablation --- *)

let fig12 () =
  section "Figure 12 (App D): Bloom filter and node cache ablation (B+tree, 64-bit random int)";
  let n = scaled default_keys and ops = scaled (default_ops / 2) in
  let variants =
    [
      ("hybrid", "btree", { Hybrid.default_config with use_bloom = false }, None);
      ("hybrid + bloom", "btree", Hybrid.default_config, None);
      ("hyb-compressed", "compressed-btree", { Hybrid.default_config with use_bloom = false }, Some 1);
      ("hyb-comp + bloom", "compressed-btree", Hybrid.default_config, Some 1);
      ( "hyb-comp + cache",
        "compressed-btree",
        { Hybrid.default_config with use_bloom = false },
        Some 0 (* adaptive default *) );
      ( "hyb-comp + bloom + cache",
        "compressed-btree",
        Hybrid.default_config,
        Some 0 );
    ]
  in
  Printf.printf "%-26s |" "variant";
  List.iter (fun w -> Printf.printf " %12s" (Hi_ycsb.Ycsb.workload_name w)) Hi_ycsb.Ycsb.all_workloads;
  print_newline ();
  hr ();
  List.iter
    (fun (label, structure, config, cache) ->
      (match cache with Some c -> Hi_btree.Compressed_btree.set_cache_pages c | None -> ());
      Printf.printf "%-26s |" label;
      List.iter
        (fun workload ->
          let spec = ycsb_spec workload Key_codec.Rand_int n ops in
          let r = run_cell (hybrid_with ~structure config) spec in
          Results.record
            ~config:
              [
                ("variant", Results.str label);
                ("workload", Results.str (Hi_ycsb.Ycsb.workload_name workload));
                ("keys", Results.int n);
                ("ops", Results.int ops);
              ]
            ~metrics:[ ("mops", Results.num r.Hi_ycsb.Ycsb.run_mops) ];
          Printf.printf " %12.2f" r.Hi_ycsb.Ycsb.run_mops)
        Hi_ycsb.Ycsb.all_workloads;
      print_newline ())
    variants;
  Hi_btree.Compressed_btree.set_cache_pages 0;
  print_endline "(Mops/s per YCSB workload; bloom accelerates reads, node cache accelerates compressed reads)"

(* --- Fig 13 (Appendix E): secondary indexes --- *)

let fig13 () =
  section "Figure 13 (App E): secondary indexes (B+tree, 10 values per key)";
  let n = scaled (default_keys / 2) and ops = scaled (default_ops / 2) in
  let secondary_config = { Hybrid.default_config with kind = Hybrid.Secondary } in
  Printf.printf "%-12s | %12s %12s\n" "workload" "btree Mops" "hybrid Mops";
  hr ();
  List.iter
    (fun workload ->
      let spec =
        { (ycsb_spec workload Key_codec.Rand_int n ops) with values_per_key = 10 }
      in
      let orig = Hi_ycsb.Ycsb.run ~primary:false (module Instances.Btree_index) spec in
      let hyb = Hi_ycsb.Ycsb.run ~primary:false (hybrid_with secondary_config) spec in
      Results.record
        ~config:
          [
            ("workload", Results.str (Hi_ycsb.Ycsb.workload_name workload));
            ("kind", Results.str "secondary");
            ("keys", Results.int n);
            ("ops", Results.int ops);
          ]
        ~metrics:
          [
            ("btree_mops", Results.num orig.Hi_ycsb.Ycsb.run_mops);
            ("hybrid_mops", Results.num hyb.Hi_ycsb.Ycsb.run_mops);
          ];
      Printf.printf "%-12s | %12.2f %12.2f\n"
        (Hi_ycsb.Ycsb.workload_name workload)
        orig.Hi_ycsb.Ycsb.run_mops hyb.Hi_ycsb.Ycsb.run_mops)
    Hi_ycsb.Ycsb.all_workloads;
  Printf.printf "\n%-12s | %12s %12s\n" "keys" "btree MB" "hybrid MB";
  hr ();
  List.iter
    (fun kt ->
      let spec = { (ycsb_spec Hi_ycsb.Ycsb.Insert_only kt n 0) with values_per_key = 10 } in
      let orig = Hi_ycsb.Ycsb.run ~primary:false (module Instances.Btree_index) spec in
      let hyb = Hi_ycsb.Ycsb.run ~primary:false (hybrid_with secondary_config) spec in
      Results.record
        ~config:
          [
            ("key_type", Results.str (Key_codec.key_type_name kt));
            ("kind", Results.str "secondary");
            ("keys", Results.int n);
          ]
        ~metrics:
          [
            ("btree_memory_bytes", Results.int orig.Hi_ycsb.Ycsb.memory_bytes);
            ("hybrid_memory_bytes", Results.int hyb.Hi_ycsb.Ycsb.memory_bytes);
          ];
      Printf.printf "%-12s | %12.1f %12.1f\n" (Key_codec.key_type_name kt)
        (mb orig.Hi_ycsb.Ycsb.memory_bytes) (mb hyb.Hi_ycsb.Ycsb.memory_bytes))
    Key_codec.all_key_types

(* --- Extension (paper §9): blocking vs incremental merge tail latency --- *)

let ext_merge () =
  section "Extension (§9): blocking vs incremental merge — per-operation latency (insert-only)";
  let n = scaled (default_keys * 2) in
  let keys = Key_codec.generate_keys Key_codec.Rand_int n in
  let percentile_run label insert =
    let h = Histogram.create () in
    Array.iteri
      (fun i k ->
        let t0 = Unix.gettimeofday () in
        insert k i;
        Histogram.record h (Unix.gettimeofday () -. t0))
      keys;
    let us p = Histogram.percentile h p *. 1e6 in
    Results.record
      ~config:[ ("variant", Results.str label); ("keys", Results.int n) ]
      ~metrics:
        [
          ("p50_us", Results.num (us 50.0));
          ("p99_us", Results.num (us 99.0));
          ("max_us", Results.num (us 100.0));
        ];
    Printf.printf "%-22s | %10.2f %10.2f %12.2f\n" label (us 50.0) (us 99.0) (us 100.0)
  in
  Printf.printf "%d inserts, merge ratio 10\n" n;
  Printf.printf "%-22s | %10s %10s %12s\n" "variant" "p50 (us)" "p99 (us)" "MAX (us)";
  hr ();
  let module B = Instances.Hybrid_btree in
  let blocking = B.create () in
  percentile_run "hybrid (blocking)" (fun k v -> ignore (B.insert_unique blocking k v));
  let module I = Incremental.Incremental_btree in
  List.iter
    (fun step ->
      let t = I.create ~config:{ Incremental.default_config with step } () in
      percentile_run (Printf.sprintf "incremental step=%d" step) (fun k v -> ignore (I.insert_unique t k v)))
    [ 64; 256; 1024 ];
  print_endline "(the incremental merge bounds the MAX pause at a small p50/p99 premium)"

(* --- Ablation: merge strategies and triggers (DESIGN.md §5) --- *)

let ablation () =
  section "Ablation: merge strategy (merge-all vs merge-cold) and trigger (ratio vs constant)";
  let n = scaled default_keys and ops = scaled default_ops in
  let run_variant label config =
    let (module I) = hybrid_with config in
    let keys = Key_codec.generate_keys Key_codec.Rand_int n in
    let t = I.create () in
    let (), ins_secs = time (fun () -> Array.iteri (fun i k -> ignore (I.insert_unique t k i)) keys) in
    let probes = zipf_probes keys ops 5 in
    let (), read_secs = time (fun () -> Array.iter (fun k -> ignore (I.find t k)) probes) in
    Results.record
      ~config:[ ("variant", Results.str label); ("keys", Results.int n); ("ops", Results.int ops) ]
      ~metrics:
        [
          ("insert_mops", Results.num (mops n ins_secs));
          ("read_mops", Results.num (mops ops read_secs));
          ("memory_bytes", Results.int (I.memory_bytes t));
        ];
    Printf.printf "%-34s | %12.2f %12.2f | %10.1f\n" label (mops n ins_secs) (mops ops read_secs)
      (mb (I.memory_bytes t))
  in
  Printf.printf "%-34s | %12s %12s | %10s\n" "variant" "insert Mops" "read Mops" "MB";
  hr ();
  run_variant "merge-all + ratio 10 (default)" Hybrid.default_config;
  run_variant "merge-cold + ratio 10" { Hybrid.default_config with strategy = Hybrid.Merge_cold };
  run_variant "merge-all + constant 16k" { Hybrid.default_config with trigger = Hybrid.Constant 16_384 };
  run_variant "merge-all + constant 64k" { Hybrid.default_config with trigger = Hybrid.Constant 65_536 };
  run_variant "no bloom filter" { Hybrid.default_config with use_bloom = false };
  run_variant "bloom fpr 0.1%" { Hybrid.default_config with bloom_fpr = 0.001 };
  let run_structure label structure =
    let (module I) = hybrid_with ~structure Hybrid.default_config in
    let keys = Key_codec.generate_keys Key_codec.Email n in
    let t = I.create () in
    let (), ins_secs = time (fun () -> Array.iteri (fun i k -> ignore (I.insert_unique t k i)) keys) in
    let probes = zipf_probes keys ops 5 in
    let (), read_secs = time (fun () -> Array.iter (fun k -> ignore (I.find t k)) probes) in
    Results.record
      ~config:
        [
          ("variant", Results.str label);
          ("key_type", Results.str "email");
          ("keys", Results.int n);
          ("ops", Results.int ops);
        ]
      ~metrics:
        [
          ("insert_mops", Results.num (mops n ins_secs));
          ("read_mops", Results.num (mops ops read_secs));
          ("memory_bytes", Results.int (I.memory_bytes t));
        ];
    Printf.printf "%-34s | %12.2f %12.2f | %10.1f\n" label (mops n ins_secs) (mops ops read_secs)
      (mb (I.memory_bytes t))
  in
  Printf.printf "\nStatic-stage spectrum on email keys (compact / front-coded / compressed):\n";
  run_structure "hybrid compact (default)" "btree";
  run_structure "hybrid front-coded (§9)" "frontcoded-btree";
  run_structure "hybrid compressed (§4.4)" "compressed-btree";
  print_endline
    "(merge-cold trades insert throughput for hot-key reads; constant triggers over-merge as the\n\
    \ index grows — the paper's §5.2 arguments, measured)"

(* --- Appendix A: why order-preserving structures are the default --- *)

let appendix_a () =
  section "Appendix A: hash index vs order-preserving structures (point lookups; hash has no scans)";
  let n = scaled default_keys and q = scaled default_ops in
  let keys = Key_codec.generate_keys Key_codec.Rand_int n in
  let probes = zipf_probes keys q 21 in
  Printf.printf "%-10s | %12s %12s | %s\n" "structure" "find Mops" "MB" "range queries";
  hr ();
  let t = Hash_index.create () in
  Array.iteri (fun i k -> Hash_index.insert t k i) keys;
  let (), secs = time (fun () -> Array.iter (fun k -> ignore (Hash_index.find t k)) probes) in
  Results.record
    ~config:[ ("structure", Results.str "hash"); ("keys", Results.int n); ("ops", Results.int q) ]
    ~metrics:
      [
        ("find_mops", Results.num (mops q secs));
        ("memory_bytes", Results.int (Hash_index.memory_bytes t));
      ];
  Printf.printf "%-10s | %12.2f %12.1f | %s\n" "hash" (mops q secs) (mb (Hash_index.memory_bytes t))
    "unsupported";
  List.iter
    (fun structure ->
      let tput, mem = read_throughput_dynamic (dynamic_of structure) keys probes in
      Results.record
        ~config:[ ("structure", Results.str structure); ("keys", Results.int n); ("ops", Results.int q) ]
        ~metrics:[ ("find_mops", Results.num tput); ("memory_bytes", Results.int mem) ];
      Printf.printf "%-10s | %12.2f %12.1f | %s\n" structure tput (mb mem) "yes")
    structures;
  print_endline
    "(hash indexes win point lookups but cannot serve range scans, which is why every DBMS in\n\
    \ Table 4 defaults to an order-preserving structure — the ones hybrid indexes shrink)"
