(* HTAP bench: OLTP throughput degradation vs OLAP query latency
   (DESIGN.md §16).

   Two phases over identical fresh deployments — hybrid-index Db behind a
   loopback wire-protocol server:

     oltp-only   — point-op clients alone: the baseline tps
     oltp+olap   — the same OLTP load plus one analytical client issuing
                   grouped Scan_agg queries back-to-back

   The comparison is the HTAP claim: because analytical aggregates run
   against pinned snapshots outside the partition job loop (only capture
   is a partition job, and only once per merge generation), the OLTP tps
   of phase two should stay near the baseline while OLAP queries report
   their own latency and snapshot staleness — both recorded here, the
   staleness being the price of merge-boundary snapshots.  The CI
   htap-smoke job asserts both phases record rows with nonzero tps and
   that the mixed phase actually served OLAP queries. *)

open Hi_util
open Hi_server

let ops_per_client () = max 2_000 (Common.scaled 20_000)
let key_space = 50_000

let key rng = Key_codec.encode_u64 (Int64.of_int (Xorshift.int rng key_space))

let oltp_request rng =
  if Xorshift.int rng 10 < 6 then Db.Put (key rng, Db.Int (Xorshift.int rng 1_000))
  else Db.Get (key rng)

(* group by the first 4 key bytes: u64-encoded keys share a fixed-width
   prefix, so the answer has a handful of groups, not one per key *)
let olap_request = Db.Scan_agg { fn = Db.Sum; lo = ""; hi = None; group_prefix = 4 }

let preload ~port =
  let c = Client.connect ~port () in
  let rng = Xorshift.create 7 in
  let tickets = ref [] in
  for _ = 1 to 5_000 do
    tickets := Client.send c (Db.Put (key rng, Db.Int (Xorshift.int rng 1_000))) :: !tickets;
    if List.length !tickets >= 32 then begin
      List.iter (fun tk -> ignore (Client.await tk)) !tickets;
      tickets := []
    end
  done;
  List.iter (fun tk -> ignore (Client.await tk)) !tickets;
  Client.close c

let oltp_thread ~port ~ops ~seed ~failures ~hist =
  Thread.create
    (fun () ->
      let c = Client.connect ~port () in
      let rng = Xorshift.create seed in
      for _ = 1 to ops do
        let t0 = Unix.gettimeofday () in
        (match Client.call c (oltp_request rng) with
        | Db.Failed _ -> incr failures
        | _ -> ());
        Histogram.record hist (Unix.gettimeofday () -. t0)
      done;
      Client.close c)
    ()

type olap_stats = {
  o_lat : Histogram.t;  (* per-query completion latency, seconds *)
  o_age : Histogram.t;  (* reported snapshot staleness, seconds *)
  mutable o_queries : int;
  mutable o_rows : int;
  mutable o_failures : int;
}

(* Issue aggregates back-to-back until [stop] flips, then finish cleanly. *)
let olap_thread ~port ~stop stats =
  Thread.create
    (fun () ->
      let c = Client.connect ~port () in
      while not (Atomic.get stop) do
        let t0 = Unix.gettimeofday () in
        (match Client.call c olap_request with
        | Db.Aggregate a ->
          Histogram.record stats.o_lat (Unix.gettimeofday () -. t0);
          Histogram.record stats.o_age a.max_age_s;
          stats.o_queries <- stats.o_queries + 1;
          stats.o_rows <- stats.o_rows + a.rows_scanned
        | _ -> stats.o_failures <- stats.o_failures + 1)
      done;
      Client.close c)
    ()

let run_phase ~partitions ~clients ~analytics =
  let phase = if analytics then "oltp+olap" else "oltp-only" in
  let config = { Hi_hstore.Engine.default_config with index_kind = Hybrid_config } in
  let db = Db.create ~config ~partitions () in
  let server = Server.start ~db () in
  let port = Server.port server in
  preload ~port;
  let ops = ops_per_client () in
  let failures = List.init clients (fun _ -> ref 0) in
  let hists = List.init clients (fun _ -> Histogram.create ()) in
  let stop = Atomic.make false in
  let ostats =
    {
      o_lat = Histogram.create ();
      o_age = Histogram.create ();
      o_queries = 0;
      o_rows = 0;
      o_failures = 0;
    }
  in
  let olap = if analytics then Some (olap_thread ~port ~stop ostats) else None in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.mapi
      (fun i (fail, hist) -> oltp_thread ~port ~ops ~seed:(201 + i) ~failures:fail ~hist)
      (List.combine failures hists)
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  Option.iter Thread.join olap;
  Server.stop server;
  Db.close db;
  let total = ops * clients in
  let tps = if elapsed > 0.0 then float_of_int total /. elapsed else 0.0 in
  let failed = List.fold_left (fun acc r -> acc + !r) 0 failures in
  let all = Histogram.create () in
  List.iter (fun h -> Histogram.merge_into ~into:all h) hists;
  let rows_per_query =
    if ostats.o_queries = 0 then 0.0
    else float_of_int ostats.o_rows /. float_of_int ostats.o_queries
  in
  Printf.printf "%-10s %8d %12.0f %10.3f %10.3f %8d %10.3f %10.3f %10.3f %8.0f %6d\n%!" phase
    total tps
    (1000.0 *. Histogram.mean all)
    (1000.0 *. Histogram.percentile all 99.0)
    ostats.o_queries
    (1000.0 *. Histogram.mean ostats.o_lat)
    (1000.0 *. Histogram.percentile ostats.o_lat 99.0)
    (Histogram.max_value ostats.o_age)
    rows_per_query (failed + ostats.o_failures);
  Results.(
    record
      ~config:
        [
          ("phase", str phase);
          ("partitions", int partitions);
          ("clients", int clients);
          ("ops", int total);
        ]
      ~metrics:
        [
          ("oltp_tps", num tps);
          ("elapsed_s", num elapsed);
          ("oltp_mean_latency_ms", num (1000.0 *. Histogram.mean all));
          ("oltp_p99_latency_ms", num (1000.0 *. Histogram.percentile all 99.0));
          ("olap_queries", int ostats.o_queries);
          ("olap_mean_latency_ms", num (1000.0 *. Histogram.mean ostats.o_lat));
          ("olap_p99_latency_ms", num (1000.0 *. Histogram.percentile ostats.o_lat 99.0));
          ("snapshot_age_mean_s", num (Histogram.mean ostats.o_age));
          ("snapshot_age_max_s", num (Histogram.max_value ostats.o_age));
          ("olap_rows_per_query", num rows_per_query);
          ("failed", int (failed + ostats.o_failures));
        ]);
  tps

let htap () =
  let partitions = max 2 !Common.partitions in
  let clients = 2 in
  Common.section
    (Printf.sprintf "htap: OLTP vs OLAP over hybrid indexes (%d partitions, %d clients)"
       partitions clients);
  Printf.printf "%-10s %8s %12s %10s %10s %8s %10s %10s %10s %8s %6s\n" "phase" "ops" "tps"
    "mean ms" "p99 ms" "queries" "olap ms" "olap p99" "max age" "rows/q" "fail";
  let base = run_phase ~partitions ~clients ~analytics:false in
  let mixed = run_phase ~partitions ~clients ~analytics:true in
  if base > 0.0 then
    Printf.printf "\nOLTP throughput retained under analytics: %.1f%%\n" (100.0 *. mixed /. base)
