(* Benchmark harness entry point.

   Usage:  bench/main.exe [--scale F] [--out FILE] [--partitions N] [experiment ...]

   Experiments (one per table/figure of the paper — see DESIGN.md §4):
     table1 table2 table3 table4
     fig5 fig6 fig7 fig8 fig9 fig11 fig12 fig13
     scaling         (domain-per-partition throughput at --partitions N,
                      plus the multi_partition_mix axis: concurrent
                      transfer clients at 0/10/20% cross-partition 2PC,
                      recorded per mix — the ordered per-partition lock
                      protocol of DESIGN.md §14 is what lets the mixed
                      rows scale past one coordinator)
     netbench        (wire-protocol server loadgen over loopback TCP)
     htap            (OLTP tps degradation vs OLAP aggregate latency and
                      snapshot staleness over hybrid indexes, DESIGN.md §16)
     durability      (WAL group-commit cost + SIGKILL/recover verification)
     replication     (semi-sync WAL streaming: SIGKILL the primary,
                      audit every acknowledged write on the replica)
     bechamel        (OLS microbenchmarks of the core operations)
     all             (everything except bechamel and scaling; the default)

   --scale multiplies every dataset/operation count (default 1.0 runs a
   laptop-scale configuration in a few minutes).

   Besides the text tables on stdout, every experiment records structured
   rows that are written as JSON to --out (default BENCH_results.json in
   the working directory) — see DESIGN.md §10 for the schema. *)

let experiments : (string * (unit -> unit)) list =
  [
    ("table1", Dbms.table1);
    ("table2", Micro.table2);
    ("table3", Dbms.table3);
    ("table4", Dbms.table4);
    ("fig5", Micro.fig5);
    ("fig6", Micro.fig6);
    ("fig7", Micro.fig7);
    ("fig8", Dbms.fig8);
    ("fig9", Dbms.fig9);
    ("faults", Dbms.faults);
    ("fig11", Micro.fig11);
    ("fig12", Micro.fig12);
    ("fig13", Micro.fig13);
    ("ext-merge", Micro.ext_merge);
    ("ablation", Micro.ablation);
    ("appendixA", Micro.appendix_a);
    ("scaling", Shard_bench.scaling);
    ("netbench", Net_bench.netbench);
    ("htap", Htap.htap);
    ("durability", Durability.durability);
    ("replication", Replication.replication);
    ("bechamel", Bechamel_suite.run);
  ]

let all_order =
  [ "table4"; "table2"; "fig5"; "fig6"; "fig7"; "fig11"; "fig12"; "fig13"; "ext-merge"; "ablation"; "appendixA"; "table1"; "fig8"; "table3"; "fig9"; "faults" ]

let usage () =
  Printf.printf "usage: %s [--scale F] [--out FILE] [--partitions N] [%s|all]...\n" Sys.argv.(0)
    (String.concat "|" (List.map fst experiments));
  exit 1

let () =
  let out = ref "BENCH_results.json" in
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--scale" :: v :: rest ->
      (try Common.scale := float_of_string v with _ -> usage ());
      parse acc rest
    | "--out" :: v :: rest ->
      out := v;
      parse acc rest
    | "--partitions" :: v :: rest ->
      (try Common.partitions := max 1 (int_of_string v) with _ -> usage ());
      parse acc rest
    | ("-h" | "--help") :: _ -> usage ()
    | name :: rest ->
      if name = "all" || List.mem_assoc name experiments then parse (name :: acc) rest else usage ()
  in
  let selected = match parse [] args with [] -> [ "all" ] | l -> l in
  let selected = List.concat_map (fun n -> if n = "all" then all_order else [ n ]) selected in
  Printf.printf "Hybrid Indexes benchmark harness (scale %.2f)\n" !Common.scale;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      let f = List.assoc name experiments in
      let t1 = Unix.gettimeofday () in
      Results.set_experiment name;
      f ();
      Printf.printf "\n[%s completed in %.1f s]\n%!" name (Unix.gettimeofday () -. t1))
    selected;
  Printf.printf "\nTotal: %.1f s\n" (Unix.gettimeofday () -. t0);
  Results.write !out;
  Printf.printf "Wrote %d result rows to %s\n" (Results.count ()) !out
