(* Partition-scaling experiment (DESIGN.md §11): run Voter and TPC-C
   through the sharded runtime at 1 partition and at --partitions N, and
   record aggregate plus per-partition rows so CI can assert that adding
   domains adds committed throughput.

   Each configuration gets a fresh router (domains spawned per run, joined
   before the row is recorded), so the numbers are isolated runs, not a
   warm/cold comparison. *)

open Hi_shard
open Common

(* Floors keep the smoke configuration (--scale 0.01) large enough that
   domain spawn cost doesn't swamp the measurement. *)
let txns_for = function
  | "voter" -> max 20_000 (scaled 200_000)
  | "tpcc" -> max 4_000 (scaled 40_000)
  | _ -> scaled 20_000

let voter_scale () =
  { Hi_workloads.Voter.default_scale with phone_numbers = max 10_000 (scaled 50_000) }

let tpcc_scale ~partitions =
  {
    Hi_workloads.Tpcc.warehouses = max 4 partitions;
    items = max 100 (scaled 2_000);
    customers_per_district = max 10 (scaled 100);
  }

type instance = {
  next : int -> Shard_workload.spec;
  router : Router.t;
  consistent : unit -> bool;
  stop : unit -> unit;
}

let make_instance workload ~partitions ~seed =
  match workload with
  | "voter" ->
    let w =
      Shard_workload.Voter_shard.create ~scale:(voter_scale ()) ~seed ~partitions ()
    in
    {
      next = Shard_workload.Voter_shard.next w;
      router = Shard_workload.Voter_shard.router w;
      consistent = (fun () -> Shard_workload.Voter_shard.check_consistency w);
      stop = (fun () -> Shard_workload.Voter_shard.stop w);
    }
  | "tpcc" ->
    let w =
      Shard_workload.Tpcc_shard.create ~scale:(tpcc_scale ~partitions) ~seed ~partitions ()
    in
    {
      next = Shard_workload.Tpcc_shard.next w;
      router = Shard_workload.Tpcc_shard.router w;
      consistent = (fun () -> Shard_workload.Tpcc_shard.check_consistency w);
      stop = (fun () -> Shard_workload.Tpcc_shard.stop w);
    }
  | w -> invalid_arg ("unknown sharded workload " ^ w)

let run_one workload ~partitions =
  let txns = txns_for workload in
  let inst = make_instance workload ~partitions ~seed:31 in
  let stats = Shard_runner.run ~router:inst.router ~next:inst.next ~num_txns:txns () in
  let consistent = inst.consistent () in
  inst.stop ();
  (stats, consistent)

let record_rows workload ~partitions (stats : Shard_runner.stats) ~consistent =
  Results.(
    record
      ~config:
        [
          ("workload", str workload);
          ("partitions", int partitions);
          ("txns", int stats.total);
          ("row", str "aggregate");
        ]
      ~metrics:
        [
          ("tps", num stats.tps);
          ("committed", int stats.committed);
          ("aborted", int stats.aborted);
          ("multi_partition_txns", int stats.multi);
          ("multi_partition_aborts", int stats.multi_aborted);
          ("mean_latency_us", num (stats.mean_latency_s *. 1.0e6));
          ("p99_latency_us", num (stats.p99_latency_s *. 1.0e6));
          ("elapsed_s", num stats.elapsed_s);
          ("consistent", str (if consistent then "true" else "false"));
        ]);
  List.iter
    (fun (p : Shard_runner.per_partition) ->
      Results.(
        record
          ~config:
            [
              ("workload", str workload);
              ("partitions", int partitions);
              ("partition", int p.pid);
              ("row", str "per_partition");
            ]
          ~metrics:
            [
              ("committed", int p.committed);
              ("aborted", int p.aborted);
              ("queue_peak", int p.queue_peak);
            ]))
    stats.per_partition

let scaling () =
  let n = max 1 !Common.partitions in
  let parts_list = if n = 1 then [ 1 ] else [ 1; n ] in
  section
    (Printf.sprintf "Partition scaling: domain-per-partition runtime at %s partitions"
       (String.concat "/" (List.map string_of_int parts_list)));
  Printf.printf "%-9s | %4s | %10s %10s %8s %8s | %10s %10s | %s\n" "workload" "P" "committed"
    "aborted" "multi" "mp-abort" "tps" "p99 us" "consistent";
  hr ();
  List.iter
    (fun workload ->
      List.iter
        (fun partitions ->
          let stats, consistent = run_one workload ~partitions in
          record_rows workload ~partitions stats ~consistent;
          Printf.printf "%-9s | %4d | %10d %10d %8d %8d | %10.0f %10.1f | %b\n%!" workload
            partitions stats.committed stats.aborted stats.multi stats.multi_aborted stats.tps
            (stats.p99_latency_s *. 1.0e6) consistent)
        parts_list)
    [ "voter"; "tpcc" ]
