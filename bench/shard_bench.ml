(* Partition-scaling experiment (DESIGN.md §11): run Voter and TPC-C
   through the sharded runtime at 1 partition and at --partitions N, and
   record aggregate plus per-partition rows so CI can assert that adding
   domains adds committed throughput.

   Each configuration gets a fresh router (domains spawned per run, joined
   before the row is recorded), so the numbers are isolated runs, not a
   warm/cold comparison. *)

open Hi_shard
open Common

(* Floors keep the smoke configuration (--scale 0.01) large enough that
   domain spawn cost doesn't swamp the measurement. *)
let txns_for = function
  | "voter" -> max 20_000 (scaled 200_000)
  | "tpcc" -> max 4_000 (scaled 40_000)
  | _ -> scaled 20_000

let voter_scale () =
  { Hi_workloads.Voter.default_scale with phone_numbers = max 10_000 (scaled 50_000) }

let tpcc_scale ~partitions =
  {
    Hi_workloads.Tpcc.warehouses = max 4 partitions;
    items = max 100 (scaled 2_000);
    customers_per_district = max 10 (scaled 100);
  }

type instance = {
  next : int -> Shard_workload.spec;
  router : Router.t;
  consistent : unit -> bool;
  stop : unit -> unit;
}

let make_instance workload ~partitions ~seed =
  match workload with
  | "voter" ->
    let w =
      Shard_workload.Voter_shard.create ~scale:(voter_scale ()) ~seed ~partitions ()
    in
    {
      next = Shard_workload.Voter_shard.next w;
      router = Shard_workload.Voter_shard.router w;
      consistent = (fun () -> Shard_workload.Voter_shard.check_consistency w);
      stop = (fun () -> Shard_workload.Voter_shard.stop w);
    }
  | "tpcc" ->
    let w =
      Shard_workload.Tpcc_shard.create ~scale:(tpcc_scale ~partitions) ~seed ~partitions ()
    in
    {
      next = Shard_workload.Tpcc_shard.next w;
      router = Shard_workload.Tpcc_shard.router w;
      consistent = (fun () -> Shard_workload.Tpcc_shard.check_consistency w);
      stop = (fun () -> Shard_workload.Tpcc_shard.stop w);
    }
  | w -> invalid_arg ("unknown sharded workload " ^ w)

let run_one workload ~partitions =
  let txns = txns_for workload in
  let inst = make_instance workload ~partitions ~seed:31 in
  let stats = Shard_runner.run ~router:inst.router ~next:inst.next ~num_txns:txns () in
  let consistent = inst.consistent () in
  inst.stop ();
  (stats, consistent)

let record_rows workload ~partitions (stats : Shard_runner.stats) ~consistent =
  Results.(
    record
      ~config:
        [
          ("workload", str workload);
          ("partitions", int partitions);
          ("txns", int stats.total);
          ("row", str "aggregate");
        ]
      ~metrics:
        [
          ("tps", num stats.tps);
          ("committed", int stats.committed);
          ("aborted", int stats.aborted);
          ("multi_partition_txns", int stats.multi);
          ("multi_partition_aborts", int stats.multi_aborted);
          ("mean_latency_us", num (stats.mean_latency_s *. 1.0e6));
          ("p99_latency_us", num (stats.p99_latency_s *. 1.0e6));
          ("elapsed_s", num stats.elapsed_s);
          ("consistent", str (if consistent then "true" else "false"));
        ]);
  List.iter
    (fun (p : Shard_runner.per_partition) ->
      Results.(
        record
          ~config:
            [
              ("workload", str workload);
              ("partitions", int partitions);
              ("partition", int p.pid);
              ("row", str "per_partition");
            ]
          ~metrics:
            [
              ("committed", int p.committed);
              ("aborted", int p.aborted);
              ("queue_peak", int p.queue_peak);
            ]))
    stats.per_partition

(* --- multi_partition_mix axis: concurrent transfer clients ---------------

   Bank accounts striped [id mod partitions]; several client domains run
   transfers concurrently, a [mix] fraction of them cross-partition
   through the 2PC coordinator.  Before the ordered per-partition lock
   protocol (DESIGN.md §14) every cross-partition transfer serialized on
   one global coordinator lock; with it, coordinators with disjoint
   participant sets overlap — so on a multicore host committed tps at
   --partitions N must beat 1 partition even at 10–20% mix (CI asserts
   exactly that).  Clients issue transfers synchronously, one at a time,
   so the concurrency measured is the router's, not a pipelining
   artifact. *)

let transfer_clients = 4
let transfer_txns () = max 8_000 (scaled 80_000)
let transfer_accounts ~partitions = partitions * max 2_000 (scaled 8_000)

let transfer_schema =
  Hi_hstore.Schema.make ~name:"accounts"
    ~columns:[ ("id", Hi_hstore.Value.TInt); ("balance", Hi_hstore.Value.TInt) ]
    ~pk:[ "id" ] ()

let transfer_mix_run ~partitions ~mix =
  let module E = Hi_hstore.Engine in
  let module T = Hi_hstore.Table in
  let module V = Hi_hstore.Value in
  let universe = transfer_accounts ~partitions in
  let router =
    Router.create ~partitions
      ~init:(fun p engine ->
        let tbl = E.create_table engine transfer_schema in
        let id = ref p in
        while !id < universe do
          ignore (T.insert tbl [| V.Int !id; V.Int 1_000 |]);
          id := !id + partitions
        done)
      ()
  in
  let body id delta engine =
    let tbl = E.table engine "accounts" in
    match T.find_by_pk tbl [ V.Int id ] with
    | None -> raise (E.Abort "missing account")
    | Some rowid ->
      let bal = match (T.read tbl rowid).(1) with V.Int b -> b | _ -> 0 in
      if bal + delta < 0 then raise (E.Abort "insufficient");
      E.update engine tbl rowid [ (1, V.Int (bal + delta)) ]
  in
  let per_client = transfer_txns () / transfer_clients in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init transfer_clients (fun c ->
        Domain.spawn (fun () ->
            let rng = Hi_util.Xorshift.create (0xBEEF + (31 * c)) in
            let ok = ref 0 and ab = ref 0 and mp = ref 0 in
            for _ = 1 to per_client do
              let a = Hi_util.Xorshift.int rng universe in
              let cross = partitions > 1 && Hi_util.Xorshift.float01 rng < mix in
              let rec pick () =
                let b = Hi_util.Xorshift.int rng universe in
                let same_part = b mod partitions = a mod partitions in
                if (if cross then same_part else b = a || not same_part) then pick () else b
              in
              let b = pick () in
              let r =
                if cross then begin
                  incr mp;
                  Router.multi router
                    [
                      { Router.part = a mod partitions; body = body a (-1) };
                      { Router.part = b mod partitions; body = body b 1 };
                    ]
                end
                else
                  Router.single router ~partition:(a mod partitions) (fun engine ->
                      body a (-1) engine;
                      body b 1 engine)
              in
              match r with Ok () -> incr ok | Error _ -> incr ab
            done;
            (!ok, !ab, !mp)))
  in
  let results = List.map Domain.join domains in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (* conservation: transfers only move balance, so the total is fixed no
     matter how coordinators interleaved — the bench's consistency check *)
  let total =
    List.fold_left
      (fun acc p ->
        match
          Router.single router ~partition:p (fun engine ->
              let tbl = E.table engine "accounts" in
              let sum = ref 0 in
              T.iter_live tbl (fun _ row ->
                  match row.(1) with V.Int b -> sum := !sum + b | _ -> ());
              !sum)
        with
        | Ok s -> acc + s
        | Error _ -> acc)
      0
      (List.init partitions Fun.id)
  in
  let consistent = total = universe * 1_000 in
  Router.stop router;
  let committed = List.fold_left (fun acc (ok, _, _) -> acc + ok) 0 results in
  let aborted = List.fold_left (fun acc (_, ab, _) -> acc + ab) 0 results in
  let multi = List.fold_left (fun acc (_, _, mp) -> acc + mp) 0 results in
  (committed, aborted, multi, elapsed_s, consistent)

let transfer_mixes ~parts_list =
  List.iter
    (fun mix ->
      List.iter
        (fun partitions ->
          let committed, aborted, multi, elapsed_s, consistent =
            transfer_mix_run ~partitions ~mix
          in
          let tps = if elapsed_s > 0.0 then float_of_int committed /. elapsed_s else 0.0 in
          let mix_pct = int_of_float (mix *. 100.0) in
          Results.(
            record
              ~config:
                [
                  ("workload", str "transfer");
                  ("partitions", int partitions);
                  ("multi_partition_mix", int mix_pct);
                  ("clients", int transfer_clients);
                  ("txns", int (transfer_txns ()));
                  ("row", str "aggregate");
                ]
              ~metrics:
                [
                  ("tps", num tps);
                  ("committed", int committed);
                  ("aborted", int aborted);
                  ("multi_partition_txns", int multi);
                  ("elapsed_s", num elapsed_s);
                  ("consistent", str (if consistent then "true" else "false"));
                ]);
          Printf.printf "%-9s | %4d | %5d%% | %10d %10d %8d | %10.0f | %b\n%!" "transfer"
            partitions mix_pct committed aborted multi tps consistent)
        parts_list)
    [ 0.0; 0.10; 0.20 ]

let scaling () =
  let n = max 1 !Common.partitions in
  let parts_list = if n = 1 then [ 1 ] else [ 1; n ] in
  section
    (Printf.sprintf "Partition scaling: domain-per-partition runtime at %s partitions"
       (String.concat "/" (List.map string_of_int parts_list)));
  Printf.printf "%-9s | %4s | %10s %10s %8s %8s | %10s %10s | %s\n" "workload" "P" "committed"
    "aborted" "multi" "mp-abort" "tps" "p99 us" "consistent";
  hr ();
  List.iter
    (fun workload ->
      List.iter
        (fun partitions ->
          let stats, consistent = run_one workload ~partitions in
          record_rows workload ~partitions stats ~consistent;
          Printf.printf "%-9s | %4d | %10d %10d %8d %8d | %10.0f %10.1f | %b\n%!" workload
            partitions stats.committed stats.aborted stats.multi stats.multi_aborted stats.tps
            (stats.p99_latency_s *. 1.0e6) consistent)
        parts_list)
    [ "voter"; "tpcc" ];
  section
    (Printf.sprintf
       "Cross-partition mix: %d concurrent transfer clients, 0/10/20%% through 2PC" transfer_clients);
  Printf.printf "%-9s | %4s | %6s | %10s %10s %8s | %10s | %s\n" "workload" "P" "mix" "committed"
    "aborted" "multi" "tps" "consistent";
  hr ();
  transfer_mixes ~parts_list
