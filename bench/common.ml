(* Shared plumbing for the benchmark harness: timing, formatting,
   key/query generation and index construction helpers. *)

open Hi_util
open Hi_index
open Hybrid_index

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let mops ops seconds = if seconds <= 0.0 then 0.0 else float_of_int ops /. seconds /. 1.0e6

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let pct part total = if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let hr () = print_endline (String.make 100 '-')

let section title =
  print_newline ();
  print_endline (String.make 100 '=');
  Printf.printf "%s\n" title;
  print_endline (String.make 100 '=')

(* Scale factor supplied on the command line: multiplies the default
   dataset and operation counts of every experiment. *)
let scale = ref 1.0

let scaled n = max 1 (int_of_float (float_of_int n *. !scale))

(* --partitions: how many domain-backed partitions the scaling experiment
   spreads the sharded workloads over (DESIGN.md §11). *)
let partitions = ref 1

let structures = [ "btree"; "masstree"; "skiplist"; "art" ]

let dynamic_of = function
  | "btree" -> (module Hi_btree.Btree : Index_intf.DYNAMIC)
  | "masstree" -> (module Hi_masstree.Masstree)
  | "skiplist" -> (module Hi_skiplist.Skiplist)
  | "art" -> (module Hi_art.Art)
  | s -> invalid_arg ("unknown structure " ^ s)

let static_of = function
  | "btree" -> (module Hi_btree.Compact_btree : Index_intf.STATIC)
  | "masstree" -> (module Hi_masstree.Compact_masstree)
  | "skiplist" -> (module Hi_skiplist.Compact_skiplist)
  | "art" -> (module Hi_art.Compact_art)
  | "compressed-btree" -> (module Hi_btree.Compressed_btree)
  | "frontcoded-btree" -> (module Hi_btree.Frontcoded_btree)
  | s -> invalid_arg ("unknown structure " ^ s)

(* Sorted single-value entries for static-stage builds. *)
let entries_of_keys keys =
  let entries = Array.mapi (fun i k -> (k, [| i |])) keys in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) entries;
  entries

(* Zipfian probe sequence over the key set. *)
let zipf_probes keys nops seed =
  let rng = Xorshift.create seed in
  let z = Zipf.create ~items:(Array.length keys) rng in
  Array.init nops (fun _ -> keys.(Zipf.next z))

let hybrid_with ?(structure = "btree") config : Index_intf.index = Instances.hybrid_index ~config structure

(* The hybrid functor instance itself (not the erased Index_intf.index),
   for experiments that read [Hybrid.stats] — merge counts, measured
   Bloom FPR. *)
let hybrid_module structure =
  match structure with
  | "btree" -> (module Instances.Hybrid_btree : Hybrid.S)
  | "masstree" -> (module Instances.Hybrid_masstree)
  | "skiplist" -> (module Instances.Hybrid_skiplist)
  | "art" -> (module Instances.Hybrid_art)
  | s -> invalid_arg ("unknown structure " ^ s)
