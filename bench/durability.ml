(* Durability experiment (DESIGN.md §13).

   Two questions, two scenarios:

   - "put_pipelined": what does durability cost?  The same pipelined
     put stream (the server's Window fast path) runs against an
     in-memory database and against one with a write-ahead log, where
     every acknowledgment waits for the group-commit fsync.  Group
     commit is the whole game here: with a window of requests in
     flight, one fsync amortizes over the batch that accumulated while
     the previous fsync ran.

   - "kill_restart": does an acknowledgment actually mean durable?  A
     real `hybrid_db serve --wal-dir` subprocess takes a pipelined put
     burst over TCP and is SIGKILLed mid-burst with a window of writes
     still in flight.  Every response received before the kill is an
     acknowledged write; reopening the wal directory must recover every
     single one ("lost" must be 0).  In-flight unacknowledged writes
     may land either way — that is the contract. *)

open Hi_server
module Shard_runner = Hi_shard.Shard_runner
open Common

let key i = Printf.sprintf "dur%07d" i

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hi_bench_%s_%d_%d" name (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* -- scenario 1: durable vs in-memory pipelined put throughput ----------- *)

let put_pipelined ?wal_dir ~partitions ~n () =
  let db = Db.create ?wal_dir ~partitions () in
  let window = Shard_runner.Window.create ~router:(Db.router db) () in
  let failures = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    match Db.plan db (Db.Put (key i, Db.Int i)) with
    | Db.Single (partition, body) ->
      Shard_runner.Window.submit window ~partition
        ~body:(fun engine -> ignore (body engine))
        ~on_done:(fun r _dt ->
          match r with Ok () -> () | Error _ -> Atomic.incr failures)
    | Db.Inline | Db.Invalid _ -> assert false
  done;
  Shard_runner.Window.drain window;
  let elapsed = Unix.gettimeofday () -. t0 in
  (* acknowledged means readable (and, with a wal, durable) *)
  let sampled_ok = Db.get db (key (n - 1)) = Ok (Some (Db.Int (n - 1))) in
  Db.close db;
  let tps = if elapsed > 0.0 then float_of_int n /. elapsed else 0.0 in
  (tps, elapsed, Atomic.get failures, sampled_ok)

let throughput () =
  let partitions = max 2 !Common.partitions in
  let n = max 5_000 (scaled 100_000) in
  section
    (Printf.sprintf "Durability: pipelined put throughput, %d puts over %d partitions" n
       partitions);
  Printf.printf "%-16s | %12s %10s %8s\n" "mode" "tps" "elapsed s" "failed";
  hr ();
  let run label wal_dir =
    let tps, elapsed, failed, ok = put_pipelined ?wal_dir ~partitions ~n () in
    Printf.printf "%-16s | %12.0f %10.3f %8d%s\n%!" label tps elapsed failed
      (if ok then "" else "  (SAMPLE READBACK FAILED)");
    (tps, elapsed, failed, ok)
  in
  let mem_tps, mem_el, mem_fail, mem_ok = run "in-memory" None in
  let wal_tps, wal_el, wal_fail, wal_ok =
    run "wal+group-commit" (Some (fresh_dir "tput"))
  in
  Printf.printf "durable throughput is %.2fx in-memory\n%!"
    (if mem_tps > 0.0 then wal_tps /. mem_tps else 0.0);
  let row mode tps elapsed failed ok extra =
    Results.(
      record
        ~config:
          [
            ("scenario", str "put_pipelined");
            ("mode", str mode);
            ("partitions", int partitions);
            ("puts", int n);
          ]
        ~metrics:
          ([
             ("tps", num tps);
             ("elapsed_s", num elapsed);
             ("failed", int failed);
             ("sample_readback_ok", str (if ok then "true" else "false"));
           ]
          @ extra))
  in
  row "in_memory" mem_tps mem_el mem_fail mem_ok [];
  row "wal_group_commit" wal_tps wal_el wal_fail wal_ok
    [ ("slowdown_vs_memory", Results.num (if wal_tps > 0.0 then mem_tps /. wal_tps else 0.0)) ]

(* -- scenario 2: SIGKILL a real server mid-burst, recover, count losses --- *)

let server_exe () =
  match Sys.getenv_opt "HYBRID_DB_EXE" with
  | Some p -> p
  | None -> Filename.concat (Sys.getcwd ()) "_build/default/bin/hybrid_db.exe"

(* The serve banner: "... serving wire protocol v1 on 127.0.0.1:PORT (...". *)
let parse_port line =
  match String.index_opt line '(' with
  | None -> None
  | Some paren -> (
    match String.rindex_from_opt line paren ':' with
    | None -> None
    | Some colon ->
      int_of_string_opt (String.trim (String.sub line (colon + 1) (paren - colon - 1))))

let spawn_server ~exe ~wal_dir ~partitions =
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process exe
      [|
        exe; "serve"; "--port"; "0"; "--partitions"; string_of_int partitions; "--wal-dir";
        wal_dir;
      |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let rec await_banner () =
    match input_line ic with
    | line -> (
      match parse_port line with
      | Some p when String.length line > 0 -> p
      | _ -> await_banner ())
    | exception End_of_file ->
      ignore (Unix.waitpid [] pid);
      failwith "durability: server exited before printing its banner"
  in
  let port = await_banner () in
  (pid, port, ic)

let kill_restart () =
  let partitions = max 2 !Common.partitions in
  let target = max 500 (scaled 20_000) in
  let inflight_window = 64 in
  section
    (Printf.sprintf
       "Durability: SIGKILL mid-burst after %d acknowledged writes, then recover" target);
  let exe = server_exe () in
  if not (Sys.file_exists exe) then
    failwith
      (Printf.sprintf "durability: server binary %s not built (set HYBRID_DB_EXE)" exe);
  let wal_dir = fresh_dir "kill" in
  let pid, port, ic = spawn_server ~exe ~wal_dir ~partitions in
  Printf.printf "server pid %d on port %d, wal %s\n%!" pid port wal_dir;
  let c = Client.connect ~port () in
  let inflight = Queue.create () in
  let acked = ref [] in
  let n_acked = ref 0 in
  let next = ref 0 in
  let t0 = Unix.gettimeofday () in
  (try
     while !n_acked < target do
       while Queue.length inflight < inflight_window do
         let i = !next in
         incr next;
         Queue.push (i, Client.send c (Db.Put (key i, Db.Int i))) inflight
       done;
       let i, ticket = Queue.pop inflight in
       match Client.await ticket with
       | Db.Done _ ->
         acked := i :: !acked;
         incr n_acked
       | Db.Failed e -> failwith ("put failed before the kill: " ^ Db.error_to_string e)
       | _ -> failwith "unexpected response shape"
     done
   with e ->
     (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
     raise e);
  let burst_s = Unix.gettimeofday () -. t0 in
  (* the kill lands with a full window of unacknowledged writes in flight *)
  let in_flight_at_kill = Queue.length inflight in
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Client.close c;
  close_in_noerr ic;
  Printf.printf "killed with %d acks in %.2f s (%d writes in flight)\n%!" !n_acked burst_s
    in_flight_at_kill;
  let db = Db.create ~wal_dir ~partitions () in
  let recovery =
    match Db.recovery db with
    | Some r -> r
    | None -> failwith "durability: recovery report missing"
  in
  let lost =
    List.filter (fun i -> Db.get db (key i) <> Ok (Some (Db.Int i))) !acked
  in
  Db.close db;
  Printf.printf
    "recovered %d txns in %.3f s (%d torn tails truncated); %d/%d acknowledged writes \
     present, %d LOST\n\
     %!"
    recovery.Hi_shard.Router.replayed_txns recovery.duration_s recovery.torn_tails
    (!n_acked - List.length lost)
    !n_acked (List.length lost);
  Results.(
    record
      ~config:
        [
          ("scenario", str "kill_restart");
          ("partitions", int partitions);
          ("acked_target", int target);
          ("inflight_window", int inflight_window);
        ]
      ~metrics:
        [
          ("acked", int !n_acked);
          ("lost", int (List.length lost));
          ("in_flight_at_kill", int in_flight_at_kill);
          ("acked_tps", num (if burst_s > 0.0 then float_of_int !n_acked /. burst_s else 0.0));
          ("replayed_txns", int recovery.Hi_shard.Router.replayed_txns);
          ("torn_tails", int recovery.torn_tails);
          ("recovery_s", num recovery.duration_s);
        ]);
  if lost <> [] then failwith "durability: acknowledged writes were lost"

let durability () =
  throughput ();
  kill_restart ()
