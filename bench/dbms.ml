(* Full-DBMS experiments (paper §7): Table 1, Table 3, Fig 8 and Fig 9,
   driven through the H-Store-style engine with TPC-C, Voter and Articles. *)

open Hi_hstore
open Hi_workloads
open Common

let benchmarks = [ "tpcc"; "voter"; "articles" ]

let index_kinds = [ Engine.Btree_config; Engine.Hybrid_config; Engine.Hybrid_compressed_config ]

(* Workload scales for the DBMS experiments (multiplied by --scale). *)
let tpcc_scale () =
  { Tpcc.warehouses = 4; items = scaled 2_000; customers_per_district = scaled 100 }

let voter_scale () = { Voter.default_scale with phone_numbers = scaled 50_000 }

let articles_scale () =
  { Articles.users = scaled 5_000; initial_articles = scaled 2_000; comments_per_article = 3 }

(* A benchmark instance: load into [engine], return the transaction
   closure. *)
let load benchmark engine =
  match benchmark with
  | "tpcc" ->
    let st = Tpcc.setup ~scale:(tpcc_scale ()) engine in
    fun e -> ignore (Tpcc.transaction st e)
  | "voter" ->
    let st = Voter.setup ~scale:(voter_scale ()) engine in
    fun e -> ignore (Voter.transaction st e)
  | "articles" ->
    let st = Articles.setup ~scale:(articles_scale ()) engine in
    fun e -> ignore (Articles.transaction st e)
  | b -> invalid_arg ("unknown benchmark " ^ b)

let txns_for = function
  | "tpcc" -> scaled 15_000
  | "voter" -> scaled 60_000
  | "articles" -> scaled 40_000
  | _ -> scaled 20_000

let evictable_for = function
  | "tpcc" -> [ "history"; "order_line"; "orders" ]
  | "voter" -> [ "votes" ]
  | "articles" -> [ "comments"; "articles" ]
  | _ -> []

(* --- Table 1: memory breakdown with the default (B+tree) indexes --- *)

let table1 () =
  section "Table 1: % of memory for tuples / primary indexes / secondary indexes (B+tree defaults)";
  Printf.printf "%-10s | %8s %12s %14s %10s | %10s\n" "benchmark" "tuples" "primary idx"
    "secondary idx" "hash idx" "DB MB";
  hr ();
  List.iter
    (fun benchmark ->
      let engine = Engine.create () in
      let txn = load benchmark engine in
      for _ = 1 to 3 * txns_for benchmark do
        txn engine
      done;
      let m = Engine.memory_breakdown engine in
      let total = Engine.total_in_memory m in
      Results.record
        ~config:[ ("benchmark", Results.str benchmark); ("index", Results.str "B+tree") ]
        ~metrics:
          [
            ("tuple_bytes", Results.int m.Engine.tuple_bytes);
            ("pk_index_bytes", Results.int m.Engine.pk_index_bytes);
            ("secondary_index_bytes", Results.int m.Engine.secondary_index_bytes);
            ("hash_index_bytes", Results.int m.Engine.hash_index_bytes);
            ("total_bytes", Results.int total);
          ];
      Printf.printf "%-10s | %7.1f%% %11.1f%% %13.1f%% %9.1f%% | %10.1f\n" benchmark
        (pct m.Engine.tuple_bytes total)
        (pct m.Engine.pk_index_bytes total)
        (pct m.Engine.secondary_index_bytes total)
        (pct m.Engine.hash_index_bytes total)
        (mb total))
    benchmarks

(* --- Table 3: TPC-C transaction latencies --- *)

let table3 () =
  section "Table 3: TPC-C transaction latency (ms) per index configuration";
  Printf.printf "%-20s | %10s %10s %10s\n" "index" "50%-tile" "99%-tile" "MAX";
  hr ();
  List.iter
    (fun kind ->
      let engine = Engine.create ~config:{ Engine.default_config with index_kind = kind } () in
      let txn = load "tpcc" engine in
      let r = Runner.run engine ~transaction:(fun e -> txn e) ~num_txns:(txns_for "tpcc") () in
      let ms p = Hi_util.Histogram.percentile r.Runner.latency p *. 1000.0 in
      Results.record
        ~config:
          [
            ("benchmark", Results.str "tpcc");
            ("index", Results.str (Engine.index_kind_name kind));
            ("txns", Results.int r.Runner.txns);
          ]
        ~metrics:
          [
            ("p50_ms", Results.num (ms 50.0));
            ("p99_ms", Results.num (ms 99.0));
            ("max_ms", Results.num (ms 100.0));
            ("tps", Results.num r.Runner.tps);
          ];
      Printf.printf "%-20s | %10.3f %10.3f %10.3f\n" (Engine.index_kind_name kind) (ms 50.0)
        (ms 99.0) (ms 100.0))
    index_kinds

(* --- Fig 8: in-memory workloads --- *)

let fig8 () =
  section "Figure 8: in-memory workloads — throughput and memory per index configuration";
  List.iter
    (fun benchmark ->
      Printf.printf "\n[%s] %d transactions\n" benchmark (txns_for benchmark);
      Printf.printf "%-20s | %12s | %10s %10s %10s | %8s\n" "index" "Ktxn/s" "tuple MB"
        "index MB" "total MB" "idx %";
      hr ();
      List.iter
        (fun kind ->
          let engine = Engine.create ~config:{ Engine.default_config with index_kind = kind } () in
          let txn = load benchmark engine in
          let r = Runner.run engine ~transaction:(fun e -> txn e) ~num_txns:(txns_for benchmark) () in
          let m = r.Runner.memory in
          let index_bytes = m.Engine.pk_index_bytes + m.Engine.secondary_index_bytes in
          let total = Engine.total_in_memory m in
          Results.record
            ~config:
              [
                ("benchmark", Results.str benchmark);
                ("index", Results.str (Engine.index_kind_name kind));
                ("txns", Results.int r.Runner.txns);
              ]
            ~metrics:
              [
                ("tps", Results.num r.Runner.tps);
                ("tuple_bytes", Results.int m.Engine.tuple_bytes);
                ("index_bytes", Results.int index_bytes);
                ("hash_index_bytes", Results.int m.Engine.hash_index_bytes);
                ("total_bytes", Results.int total);
                ("committed", Results.int r.Runner.committed);
                ("user_aborts", Results.int r.Runner.user_aborts);
              ];
          Printf.printf "%-20s | %12.1f | %10.1f %10.1f %10.1f | %7.1f%%\n"
            (Engine.index_kind_name kind) (r.Runner.tps /. 1000.0) (mb m.Engine.tuple_bytes)
            (mb index_bytes) (mb total) (pct index_bytes total))
        index_kinds)
    benchmarks

(* --- Fig 9: larger-than-memory workloads (anti-caching) --- *)

let fig9 () =
  section "Figure 9: larger-than-memory workloads with anti-caching";
  List.iter
    (fun benchmark ->
      (* pick the eviction threshold so that eviction starts mid-run, as in
         the paper's 5 GB / 3 GB settings: 60% of the memory a threshold-free
         B+tree run of the same length reaches *)
      let probe = Engine.create () in
      let probe_txn = load benchmark probe in
      for _ = 1 to 2 * txns_for benchmark do
        probe_txn probe
      done;
      let peak = Engine.total_in_memory (Engine.memory_breakdown probe) in
      let threshold = peak * 6 / 10 in
      Printf.printf "\n[%s] eviction threshold %.1f MB, %d transactions\n" benchmark (mb threshold)
        (2 * txns_for benchmark);
      List.iter
        (fun kind ->
          let config =
            {
              Engine.default_config with
              index_kind = kind;
              eviction_threshold_bytes = Some threshold;
              evictable_tables = evictable_for benchmark;
            }
          in
          let engine = Engine.create ~config () in
          let txn = load benchmark engine in
          let num = 2 * txns_for benchmark in
          let r =
            Runner.run engine ~transaction:(fun e -> txn e) ~num_txns:num ~sample_every:(num / 8) ()
          in
          Results.record
            ~config:
              [
                ("benchmark", Results.str benchmark);
                ("index", Results.str (Engine.index_kind_name kind));
                ("txns", Results.int num);
                ("eviction_threshold_bytes", Results.int threshold);
              ]
            ~metrics:
              [
                ("tps", Results.num r.Runner.tps);
                ("evictions", Results.int (Anticache.eviction_count (Engine.anticache engine)));
                ("block_fetches", Results.int (Anticache.fetch_count (Engine.anticache engine)));
                ("evicted_restarts", Results.int r.Runner.evicted_restarts);
                ("disk_bytes", Results.int r.Runner.memory.Engine.anticache_disk_bytes);
              ];
          Printf.printf "  %s: %.1f Ktxn/s overall, %d evictions, %d block fetches, %d restarts\n"
            (Engine.index_kind_name kind) (r.Runner.tps /. 1000.0)
            (Anticache.eviction_count (Engine.anticache engine))
            (Anticache.fetch_count (Engine.anticache engine))
            r.Runner.evicted_restarts;
          Printf.printf "    %-10s %12s %12s %12s %12s %12s\n" "txns" "window tps" "tuple MB"
            "index MB" "in-mem MB" "disk MB";
          List.iter
            (fun (s : Runner.sample) ->
              let m = s.Runner.memory in
              Printf.printf "    %-10d %12.0f %12.1f %12.1f %12.1f %12.1f\n" s.Runner.at_txn
                s.Runner.window_tps (mb m.Engine.tuple_bytes)
                (mb (m.Engine.pk_index_bytes + m.Engine.secondary_index_bytes))
                (mb (Engine.total_in_memory m))
                (mb m.Engine.anticache_disk_bytes))
            r.Runner.samples)
        index_kinds)
    benchmarks

(* --- Fault injection: anti-caching under an unreliable cold store --- *)

(* Replays the Fig 9 anti-caching workload twice per benchmark — once on a
   reliable simulated disk, once under a seeded fault schedule (transient
   fetch failures, at-rest corruption, latency spikes) — and reports the
   throughput degradation, the retry/loss counters, and the post-run
   recovery + integrity check (DESIGN.md §8). *)

let fault_schedule =
  {
    Hi_util.Fault.no_faults with
    transient_fetch_p = 0.10;
    corrupt_block_p = 0.005;
    latency_spike_p = 0.02;
    latency_spike_s = 0.005;
  }

let faults () =
  section "Fault injection: anti-caching workloads on an unreliable cold store";
  Printf.printf "schedule: transient %.0f%%, corrupt %.1f%%, spike %.0f%% x %.0f ms (seed 42)\n"
    (100.0 *. fault_schedule.Hi_util.Fault.transient_fetch_p)
    (100.0 *. fault_schedule.Hi_util.Fault.corrupt_block_p)
    (100.0 *. fault_schedule.Hi_util.Fault.latency_spike_p)
    (1000.0 *. fault_schedule.Hi_util.Fault.latency_spike_s);
  List.iter
    (fun benchmark ->
      (* same threshold recipe as fig9: eviction starts mid-run *)
      let probe = Engine.create () in
      let probe_txn = load benchmark probe in
      for _ = 1 to 2 * txns_for benchmark do
        probe_txn probe
      done;
      let threshold = Engine.total_in_memory (Engine.memory_breakdown probe) * 6 / 10 in
      let num = 2 * txns_for benchmark in
      let run_one fault =
        let config =
          {
            Engine.default_config with
            index_kind = Engine.Hybrid_config;
            eviction_threshold_bytes = Some threshold;
            evictable_tables = evictable_for benchmark;
            anticache = { Anticache.default_config with fault };
          }
        in
        let engine = Engine.create ~config () in
        let txn = load benchmark engine in
        let r = Runner.run engine ~transaction:(fun e -> txn e) ~num_txns:num () in
        (engine, r)
      in
      Printf.printf "\n[%s] eviction threshold %.1f MB, %d transactions (Hybrid indexes)\n" benchmark
        (mb threshold) num;
      let _, base = run_one None in
      let engine, faulted = run_one (Some fault_schedule) in
      let s = Engine.fault_stats engine in
      let stats = Engine.stats engine in
      Printf.printf "  reliable disk : %8.1f Ktxn/s\n" (base.Runner.tps /. 1000.0);
      Printf.printf "  faulted disk  : %8.1f Ktxn/s  (%.1f%% degradation)\n"
        (faulted.Runner.tps /. 1000.0)
        (100.0 *. (1.0 -. (faulted.Runner.tps /. base.Runner.tps)));
      Printf.printf
        "  faults: %d transient (%d retries), %d corrupt, %d spikes | %d blocks lost, %d txns \
         failed on lost blocks\n"
        s.Anticache.transient_faults s.Anticache.retries s.Anticache.corrupt_blocks
        s.Anticache.latency_spikes s.Anticache.lost_blocks stats.Engine.lost_block_aborts;
      let r = Engine.recover engine in
      Printf.printf "  recovery: %d tables, %d live + %d evicted rows reindexed, %d rows dropped \
                     with %d dead blocks\n"
        r.Engine.tables_recovered r.Engine.recovered_live r.Engine.recovered_evicted
        r.Engine.dropped_rows r.Engine.dropped_blocks;
      let violations =
        match Engine.verify_integrity engine with
        | [] ->
          Printf.printf "  integrity: OK\n";
          0
        | vs ->
          Printf.printf "  integrity: %d VIOLATIONS\n" (List.length vs);
          List.iter (fun v -> Printf.printf "    %s\n" v) vs;
          List.length vs
      in
      Results.record
        ~config:
          [
            ("benchmark", Results.str benchmark);
            ("index", Results.str "Hybrid");
            ("txns", Results.int num);
            ("eviction_threshold_bytes", Results.int threshold);
          ]
        ~metrics:
          [
            ("base_tps", Results.num base.Runner.tps);
            ("faulted_tps", Results.num faulted.Runner.tps);
            ("transient_faults", Results.int s.Anticache.transient_faults);
            ("retries", Results.int s.Anticache.retries);
            ("corrupt_blocks", Results.int s.Anticache.corrupt_blocks);
            ("latency_spikes", Results.int s.Anticache.latency_spikes);
            ("lost_blocks", Results.int s.Anticache.lost_blocks);
            ("lost_block_aborts", Results.int stats.Engine.lost_block_aborts);
            ("dropped_rows", Results.int r.Engine.dropped_rows);
            ("integrity_violations", Results.int violations);
          ])
    benchmarks

(* --- Table 4: index-type survey (documentation table) --- *)

let table4 () =
  section "Table 4: index types in major in-memory OLTP DBMSs (survey, defaults in caps)";
  let rows =
    [
      ("ALTIBASE", "1999", "B-TREE/B+tree, R-tree");
      ("H-Store", "2007", "B+TREE, hash index");
      ("HyPer", "2010", "ADAPTIVE RADIX TREE, hash index");
      ("MSFT Hekaton", "2011", "BW-TREE, hash index");
      ("MySQL (MEMORY)", "2005", "B-tree, HASH INDEX");
      ("MemSQL", "2012", "SKIP LIST, hash index");
      ("Redis", "2009", "linked list, HASH, skip list");
      ("SAP HANA", "2010", "B+TREE/CPB+tree");
      ("Silo", "2013", "MASSTREE");
      ("SQLite", "2000", "B-TREE, R*-tree");
      ("TimesTen", "1995", "B-tree, T-TREE, hash index, bitmap");
      ("VoltDB", "2008", "RED-BLACK TREE, hash index");
    ]
  in
  Printf.printf "%-18s %-6s %s\n" "DBMS" "Year" "Supported index types";
  hr ();
  List.iter (fun (n, y, t) -> Printf.printf "%-18s %-6s %s\n" n y t) rows
