(* Network loadgen over the wire-protocol server (DESIGN.md §12): drive a
   loopback hi_server with pipelining clients and record client-observed
   throughput and latency.

   Each (workload, window) cell gets a fresh Db + Server so cells are
   isolated runs; [clients] threads then each keep up to [window] requests
   in flight (window 1 is the classic synchronous client, window 8 rides
   the server's per-connection batching).  The interesting comparison is
   window 1 vs window 8 at fixed everything-else: pipelining must at least
   recover the per-request round-trip cost — CI asserts pipelined
   throughput >= synchronous throughput, summed across workloads (the
   2PC-bound kv-mixed cell barely moves; kv-point provides the margin).

   Latency is closed-loop completion latency: tickets are awaited in send
   order, so at window > 1 a sample includes queueing behind the window's
   older requests — the client-experienced number, not the server-side
   service time (the "server" metrics scope has those). *)

open Hi_util
open Hi_server

let ops_per_client () = max 2_000 (Common.scaled 20_000)
let key_space = 50_000

let key rng = Key_codec.encode_u64 (Int64.of_int (Xorshift.int rng key_space))

(* [prep] loads a cell's working set before the clients start; [gen] draws
   one request. *)
type workload = { wname : string; prep : port:int -> unit; gen : Xorshift.t -> Db.request }

(* single-partition point ops only: every request takes the router's fast
   path through the per-connection window *)
(* pipelined bulk load shared by the prep phases *)
let pipelined_load ~port reqs =
  let c = Client.connect ~port () in
  let tickets = ref [] in
  List.iter
    (fun req ->
      tickets := Client.send c req :: !tickets;
      if List.length !tickets >= 32 then begin
        List.iter (fun tk -> ignore (Client.await tk)) !tickets;
        tickets := []
      end)
    reqs;
  List.iter (fun tk -> ignore (Client.await tk)) !tickets;
  Client.close c

(* sparse random preload: 2,000 of the 50,000 possible keys, so point ops
   mix hits and misses *)
let sparse_prep ~port =
  let rng = Xorshift.create 7 in
  pipelined_load ~port (List.init 2_000 (fun _ -> Db.Put (key rng, Db.Int 0)))

let kv_point =
  {
    wname = "kv-point";
    prep = sparse_prep;
    gen =
      (fun rng ->
        if Xorshift.int rng 10 < 6 then Db.Put (key rng, Db.Int (Xorshift.int rng 1_000))
        else Db.Get (key rng));
  }

(* transaction-heavy with scans: most requests fan out (2PC or merge), so
   the inline path and the window path interleave on one connection *)
let kv_mixed =
  {
    wname = "kv-mixed";
    prep = sparse_prep;
    gen =
      (fun rng ->
        let r = Xorshift.int rng 10 in
        if r < 7 then
          Db.Txn
            (List.init 4 (fun _ -> (key rng, Some (Db.Int (Xorshift.int rng 1_000)))))
        else if r < 9 then Db.Get (key rng)
        else Db.Scan_from (key rng, 16));
  }

(* YCSB workload C (100% point reads, paper §6): a dense preloaded key set
   so every Get hits a live row — the cell that isolates the hash
   sidecar's O(1) fast path against the ordered-only configuration. *)
let ycsb_keys = 4_096

let ycsb_key i = Key_codec.encode_u64 (Int64.of_int i)

let ycsb_c =
  {
    wname = "ycsb-c";
    prep = (fun ~port -> pipelined_load ~port (List.init ycsb_keys (fun i -> Db.Put (ycsb_key i, Db.Int i))));
    gen = (fun rng -> Db.Get (ycsb_key (Xorshift.int rng ycsb_keys)));
  }

let workloads = [ kv_point; kv_mixed ]

let hash_counter name =
  Option.value ~default:0
    (Metrics.find_counter Hi_index.Hash_index.metrics_scope name)

let client_thread ~port ~window ~ops ~seed ~gen ~failures ~hist =
  Thread.create
    (fun () ->
      let c = Client.connect ~port () in
      let rng = Xorshift.create seed in
      let outstanding = Queue.create () in
      let await_oldest () =
        let tk, t0 = Queue.pop outstanding in
        let resp = Client.await tk in
        Histogram.record hist (Unix.gettimeofday () -. t0);
        match resp with Db.Failed _ -> incr failures | _ -> ()
      in
      for _ = 1 to ops do
        if Queue.length outstanding >= window then await_oldest ();
        Queue.push (Client.send c (gen rng), Unix.gettimeofday ()) outstanding
      done;
      while not (Queue.is_empty outstanding) do
        await_oldest ()
      done;
      Client.close c)
    ()

let run_cell ~workload ~partitions ~clients ~window ~hash =
  let config = { Hi_hstore.Engine.default_config with hash_sidecar = hash } in
  let db = Db.create ~config ~partitions () in
  let server = Server.start ~db () in
  let port = Server.port server in
  workload.prep ~port;
  let errs0 = Server.protocol_errors server in
  (* process-wide counters; cells run sequentially, so deltas are per-cell *)
  let hits0 = hash_counter "hits" and misses0 = hash_counter "misses" in
  let ops = ops_per_client () in
  let failures = List.init clients (fun _ -> ref 0) in
  let hists = List.init clients (fun _ -> Histogram.create ()) in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.mapi
      (fun i (fail, hist) ->
        client_thread ~port ~window ~ops ~seed:(101 + i) ~gen:workload.gen ~failures:fail
          ~hist)
      (List.combine failures hists)
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let protocol_errors = Server.protocol_errors server - errs0 in
  let hash_hits = hash_counter "hits" - hits0
  and hash_misses = hash_counter "misses" - misses0 in
  Server.stop server;
  Db.close db;
  let total = ops * clients in
  let tps = if elapsed > 0.0 then float_of_int total /. elapsed else 0.0 in
  let failed = List.fold_left (fun acc r -> acc + !r) 0 failures in
  let all = Histogram.create () in
  List.iter (fun h -> Histogram.merge_into ~into:all h) hists;
  Printf.printf "%-10s %4s %8d %8d %8d %12.0f %10.3f %10.3f %6d %6d\n%!" workload.wname
    (if hash then "on" else "off")
    clients window total tps
    (1000.0 *. Histogram.mean all)
    (1000.0 *. Histogram.percentile all 99.0)
    failed protocol_errors;
  Results.(
    record
      ~config:
        [
          ("workload", str workload.wname);
          ("partitions", int partitions);
          ("clients", int clients);
          ("window", int window);
          ("hash", str (if hash then "on" else "off"));
          ("ops", int total);
        ]
      ~metrics:
        [
          ("tps", num tps);
          ("elapsed_s", num elapsed);
          ("mean_latency_ms", num (1000.0 *. Histogram.mean all));
          ("p99_latency_ms", num (1000.0 *. Histogram.percentile all 99.0));
          ("failed", int failed);
          ("protocol_errors", int protocol_errors);
          ("hash_hits", int hash_hits);
          ("hash_misses", int hash_misses);
        ])

(* The netbench experiment: loopback server, >=2 clients, >=2 partitions,
   synchronous vs pipelined windows on the kv workloads, plus the YCSB-C
   point-read cell with the hash sidecar on and off (the CI server-smoke
   job asserts nonzero throughput, zero protocol errors, summed pipelined
   >= summed synchronous throughput on the kv cells, nonzero sidecar hits
   on the hash-on YCSB-C cell, and hash-on tps >= hash-off tps). *)
let netbench () =
  let partitions = max 2 !Common.partitions in
  let clients = 2 in
  Common.section
    (Printf.sprintf "netbench: wire-protocol loadgen (%d partitions, %d clients)" partitions
       clients);
  Printf.printf "%-10s %4s %8s %8s %8s %12s %10s %10s %6s %6s\n" "workload" "hash" "clients"
    "window" "ops" "tps" "mean ms" "p99 ms" "fail" "perr";
  List.iter
    (fun workload ->
      List.iter
        (fun window -> run_cell ~workload ~partitions ~clients ~window ~hash:true)
        [ 1; 8 ])
    workloads;
  (* the hash fast-path comparison: identical dense point-read cells,
     differing only in Engine.config.hash_sidecar *)
  List.iter
    (fun hash -> run_cell ~workload:ycsb_c ~partitions ~clients ~window:8 ~hash)
    [ true; false ]
