(* Streaming replication tests (DESIGN.md §15): differential
   convergence between a primary and a TCP-fed replica — with and
   without mid-stream disconnects — and the headline failover property:
   SIGKILL the primary under semi-sync replication and every
   acknowledged write is still readable on the replica. *)

open Hi_check

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_differential () =
  List.iter
    (fun seed ->
      match Repl_check.run_differential ~seed () with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: %s" seed m)
    [ 1; 2; 3 ]

let test_differential_disconnects () =
  (* drop the replica's connection every 60 requests: resume-from-LSN
     and snapshot resync must still converge to identical state *)
  List.iter
    (fun seed ->
      match Repl_check.run_differential ~seed ~txns:600 ~disconnect_every:60 () with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: %s" seed m)
    [ 11; 12 ]

let test_failover () =
  let dir = Repl_check.fresh_dir "failover" in
  let o = Repl_check.failover_run ~dir () in
  Repl_check.rm_rf dir;
  check "burst acknowledged" true (o.Repl_check.acked >= 200);
  check_int "acknowledged writes lost" 0 o.Repl_check.lost;
  check "replica scan serves every acked row" true
    (o.Repl_check.replica_entries >= o.Repl_check.acked);
  check "replica rejects writes" true o.Repl_check.write_rejected

let () =
  Repl_check.maybe_crash_child ();
  Alcotest.run "repl"
    [
      ( "differential",
        [
          Alcotest.test_case "primary vs replica" `Quick test_differential;
          Alcotest.test_case "with disconnects" `Quick test_differential_disconnects;
        ] );
      ("failover", [ Alcotest.test_case "sigkill primary" `Quick test_failover ]);
    ]
