(* Streaming replication tests (DESIGN.md §15): differential
   convergence between a primary and a TCP-fed replica — with and
   without mid-stream disconnects — and the headline failover property:
   SIGKILL the primary under semi-sync replication and every
   acknowledged write is still readable on the replica. *)

open Hi_check
module Wire = Hi_server.Wire
module Db = Hi_server.Db
module Server = Hi_server.Server
module Replica = Hi_server.Replica
module Redo = Hi_hstore.Redo
module Value = Hi_hstore.Value
module Router = Hi_shard.Router
module Repl_tap = Hi_wal.Repl_tap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_differential () =
  List.iter
    (fun seed ->
      match Repl_check.run_differential ~seed () with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: %s" seed m)
    [ 1; 2; 3 ]

let test_differential_disconnects () =
  (* drop the replica's connection every 60 requests: resume-from-LSN
     and snapshot resync must still converge to identical state *)
  List.iter
    (fun seed ->
      match Repl_check.run_differential ~seed ~txns:600 ~disconnect_every:60 () with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: %s" seed m)
    [ 11; 12 ]

let test_failover () =
  let dir = Repl_check.fresh_dir "failover" in
  let o = Repl_check.failover_run ~dir () in
  Repl_check.rm_rf dir;
  check "burst acknowledged" true (o.Repl_check.acked >= 200);
  check_int "acknowledged writes lost" 0 o.Repl_check.lost;
  check "replica scan serves every acked row" true
    (o.Repl_check.replica_entries >= o.Repl_check.acked);
  check "replica rejects writes" true o.Repl_check.write_rejected

(* -- fake-primary wire harness ------------------------------------------- *)
(* A raw listening socket standing in for the primary lets the tests
   drive the replica through exact protocol sequences (partial
   snapshots, hand-built record batches) that a real primary would
   never emit on demand. *)

let listen_loopback () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 8;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  (fd, port)

let read_msg rd =
  let rec go () =
    match Wire.try_msg rd with
    | `Msg (_, m) -> m
    | `Nothing -> if Wire.refill rd = 0 then failwith "peer closed" else go ()
    | `Error e -> failwith (Wire.error_to_string e)
  in
  go ()

let expect_subscribe rd =
  match read_msg rd with
  | Wire.Subscribe { stream_id; applied } -> (stream_id, applied)
  | _ -> Alcotest.fail "expected a Subscribe"

let send fd msg = ignore (Wire.write_frame fd (Wire.encode_msg ~id:0 msg))

let send_batches fd ~stream ~lsn ~kind records =
  List.iter
    (fun f -> ignore (Wire.write_frame fd f))
    (Wire.encode_repl_batches ~stream ~lsn ~kind records)

let await ?(timeout_s = 10.0) f =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if f () then true
    else if Unix.gettimeofday () > deadline then false
    else (
      Thread.delay 0.002;
      go ())
  in
  go ()

(* A reconnect during a snapshot resync must re-subscribe with nothing
   resumable.  Pre-fix the replica adopted the primary's stream_id at
   the resync hello, so a mid-snapshot disconnect could resume on top
   of a partially-applied snapshot. *)
let test_resync_restart () =
  let lfd, port = listen_loopback () in
  let rdb = Db.create ~read_only:true ~partitions:2 () in
  let replica = Replica.start ~host:"127.0.0.1" ~port ~db:rdb () in
  let conn1, _ = Unix.accept lfd in
  let rd1 = Wire.reader conn1 in
  ignore (expect_subscribe rd1);
  send conn1 (Wire.Repl_hello { stream_id = 77; partitions = 2; resync = true });
  (* one of the three streams finishes its snapshot; the others never do *)
  send_batches conn1 ~stream:0 ~lsn:5 ~kind:(Wire.Snap { first = true; last = true }) [];
  check "partial snapshot applied" true
    (await (fun () ->
         Replica.stream_id replica = 77 && (Replica.applied replica).(0) = 5));
  check "still resyncing" true (Replica.resyncing replica);
  Unix.close conn1;
  let conn2, _ = Unix.accept lfd in
  let rd2 = Wire.reader conn2 in
  let stream_id, applied = expect_subscribe rd2 in
  check_int "re-subscribe offers no stream" 0 stream_id;
  check_int "re-subscribe offers no positions" 0 (Array.length applied);
  Replica.stop replica;
  Unix.close conn2;
  Unix.close lfd;
  Db.close rdb

(* Decision-stream Marks bound the replica's 2PC bookkeeping: a Mark
   flushes stashed Prepares of transactions that never decided
   (presumed abort) and prunes the decided set. *)
let test_mark_pruning () =
  let partitions = 2 in
  let lfd, port = listen_loopback () in
  let rdb = Db.create ~read_only:true ~partitions () in
  let replica = Replica.start ~host:"127.0.0.1" ~port ~db:rdb () in
  let conn, _ = Unix.accept lfd in
  let rd = Wire.reader conn in
  ignore (expect_subscribe rd);
  send conn (Wire.Repl_hello { stream_id = 9; partitions; resync = true });
  for s = 0 to partitions do
    send_batches conn ~stream:s ~lsn:(-1) ~kind:(Wire.Snap { first = true; last = true }) []
  done;
  check "empty snapshot applied" true (await (fun () -> not (Replica.resyncing replica)));
  (* a kv row as Db stores it: [key, vtag=3 (Str), vint, vfloat, vstr] *)
  let row k v = [| Value.Str k; Value.Int 3; Value.Int 0; Value.Float 0.0; Value.Str v |] in
  let prepare txn k v =
    Redo.encode (Redo.Prepare { txn; ops = [ Redo.Put { table = "kv"; row = row k v } ] })
  in
  let next = Array.make (partitions + 1) 0 in
  let send_log stream records =
    send_batches conn ~stream ~lsn:next.(stream) ~kind:Wire.Log records;
    next.(stream) <- next.(stream) + List.length records
  in
  let coord = partitions in
  send_log (Db.route rdb "alive") [ prepare 5 "alive" "yes" ];
  send_log (Db.route rdb "doomed") [ prepare 6 "doomed" "no" ];
  send_log coord [ Redo.encode (Redo.Decide { txn = 5 }) ];
  (* txn 6 never decides; the mark says everything below 7 is finished *)
  send_log coord [ Redo.encode (Redo.Mark { low = 7 }) ];
  check "bookkeeping pruned" true
    (await (fun () -> Replica.decided_size replica = 0 && Replica.stash_size replica = 0));
  check "decided txn readable" true
    (await (fun () -> Db.get rdb "alive" = Ok (Some (Value.Str "yes"))));
  check "undecided txn dropped as aborted" true (Db.get rdb "doomed" = Ok None);
  Replica.stop replica;
  Unix.close conn;
  Unix.close lfd;
  Db.close rdb

(* An exception escaping the apply path (here: a record naming a table
   the replica does not have) must surface as [fatal], not silently
   kill the driver thread leaving [connected] true forever. *)
let test_apply_failure_fatal () =
  let partitions = 2 in
  let lfd, port = listen_loopback () in
  let rdb = Db.create ~read_only:true ~partitions () in
  let replica = Replica.start ~host:"127.0.0.1" ~port ~db:rdb () in
  let conn, _ = Unix.accept lfd in
  let rd = Wire.reader conn in
  ignore (expect_subscribe rd);
  send conn (Wire.Repl_hello { stream_id = 3; partitions; resync = true });
  for s = 0 to partitions do
    send_batches conn ~stream:s ~lsn:(-1) ~kind:(Wire.Snap { first = true; last = true }) []
  done;
  check "empty snapshot applied" true (await (fun () -> not (Replica.resyncing replica)));
  let bad =
    Redo.encode
      (Redo.Commit [ Redo.Put { table = "no_such_table"; row = [| Value.Str "k" |] } ])
  in
  send_batches conn ~stream:0 ~lsn:0 ~kind:Wire.Log [ bad ];
  check "driver reports fatal" true (await (fun () -> Replica.fatal replica <> None));
  Replica.stop replica;
  Unix.close conn;
  Unix.close lfd;
  Db.close rdb

(* A follower that subscribes and never reads must be detached at the
   queued-bytes high-water mark instead of growing the primary's
   writer mailbox without bound. *)
let test_slow_follower_detached () =
  let dir = Repl_check.fresh_dir "overflow" in
  let primary =
    Db.create ~wal_dir:(Filename.concat dir "wal")
      ~replication:(Router.replication ()) ~partitions:2 ()
  in
  let server = Server.start ~repl_queue_bytes:(128 * 1024) ~db:primary () in
  let tap = Option.get (Router.repl_tap (Db.router primary)) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (* a tiny receive buffer keeps the kernel from absorbing the stream,
     so the backlog lands in the primary's queue where the limit is *)
  Unix.setsockopt_int fd Unix.SO_RCVBUF 4096;
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
  send fd (Wire.Subscribe { stream_id = 0; applied = [||] });
  check "follower attached" true (await (fun () -> Repl_tap.followers tap = 1));
  let payload = Value.Str (String.make 256 'x') in
  let i = ref 0 in
  while Repl_tap.followers tap > 0 && !i < 50_000 do
    incr i;
    ignore (Db.put primary (Printf.sprintf "k%05d" !i) payload)
  done;
  check "slow follower detached" true (await (fun () -> Repl_tap.followers tap = 0));
  (* the primary also hung up: draining our side must reach EOF *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  let buf = Bytes.create 65536 in
  let rec drain () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> true
    | _ -> drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> false
  in
  check "primary closed the connection" true (drain ());
  Unix.close fd;
  Server.stop server;
  Db.close primary;
  Repl_check.rm_rf dir

let () =
  Repl_check.maybe_crash_child ();
  Alcotest.run "repl"
    [
      ( "differential",
        [
          Alcotest.test_case "primary vs replica" `Quick test_differential;
          Alcotest.test_case "with disconnects" `Quick test_differential_disconnects;
        ] );
      ("failover", [ Alcotest.test_case "sigkill primary" `Quick test_failover ]);
      ( "protocol",
        [
          Alcotest.test_case "mid-snapshot restart forces fresh snapshot" `Quick
            test_resync_restart;
          Alcotest.test_case "marks prune 2PC bookkeeping" `Quick test_mark_pruning;
          Alcotest.test_case "apply failure surfaces as fatal" `Quick
            test_apply_failure_fatal;
          Alcotest.test_case "slow follower detached at high-water" `Quick
            test_slow_follower_detached;
        ] );
    ]
