(* Tests for the H-Store-style engine substrate: value encoding, schemas,
   tables with pluggable indexes, transactional undo, and anti-caching. *)

open Hi_hstore
open Value

open Common

(* --- value encoding --- *)

let test_int_key_order =
  QCheck.Test.make ~name:"int key encoding preserves signed order" ~count:1000
    QCheck.(pair int int)
    (fun (a, b) ->
      let ka = Value.encode_key_column (Int a) TInt in
      let kb = Value.encode_key_column (Int b) TInt in
      compare (compare a b) 0 = compare (String.compare ka kb) 0)

let test_str_key_order =
  QCheck.Test.make ~name:"padded string keys preserve order" ~count:1000
    QCheck.(pair (string_gen_of_size (Gen.int_range 0 10) Gen.printable) (string_gen_of_size (Gen.int_range 0 10) Gen.printable))
    (fun (a, b) ->
      (* strings without embedded NULs, within the declared width *)
      QCheck.assume (not (String.contains a '\000') && not (String.contains b '\000'));
      let ka = Value.encode_key_column (Str a) (TStr 12) in
      let kb = Value.encode_key_column (Str b) (TStr 12) in
      compare (compare a b) 0 = compare (String.compare ka kb) 0)

let test_float_key_order =
  QCheck.Test.make ~name:"float key encoding preserves order" ~count:1000
    QCheck.(pair (float_range (-1e9) 1e9) (float_range (-1e9) 1e9))
    (fun (a, b) ->
      let ka = Value.encode_key_column (Float a) TFloat in
      let kb = Value.encode_key_column (Float b) TFloat in
      compare (compare a b) 0 = compare (String.compare ka kb) 0)

let test_composite_key_order () =
  let schema =
    Schema.make ~name:"t" ~columns:[ ("a", TInt); ("b", TInt) ] ~pk:[ "a"; "b" ] ()
  in
  let key a b = Schema.key_of_values schema schema.Schema.primary_key [ Int a; Int b ] in
  check "lexicographic" true (String.compare (key 1 9) (key 2 0) < 0);
  check "second column breaks ties" true (String.compare (key 1 1) (key 1 2) < 0);
  check "negative first column" true (String.compare (key (-5) 0) (key 1 0) < 0)

(* --- tables --- *)

let simple_schema =
  Schema.make ~name:"accounts"
    ~columns:[ ("id", TInt); ("owner", TStr 16); ("balance", TInt) ]
    ~pk:[ "id" ]
    ~secondary:[ ("accounts_owner_idx", [ "owner"; "id" ], false) ]
    ()

let new_engine ?(config = Engine.default_config) () = Engine.create ~config ()

let setup_accounts engine n =
  let tbl = Engine.create_table engine simple_schema in
  for i = 1 to n do
    ignore (Table.insert tbl [| Int i; Str (Printf.sprintf "owner%d" (i mod 10)); Int (100 * i) |])
  done;
  tbl

let test_table_crud () =
  let engine = new_engine () in
  let tbl = setup_accounts engine 100 in
  check_int "rows" 100 (Table.row_count tbl);
  (match Table.find_by_pk tbl [ Int 42 ] with
  | Some rowid ->
    let row = Table.read tbl rowid in
    check_int "balance" 4200 (as_int row.(2));
    ignore (Table.update tbl rowid [ (2, Int 9999) ]);
    check_int "updated" 9999 (as_int (Table.read tbl rowid).(2))
  | None -> Alcotest.fail "pk lookup failed");
  check "missing pk" true (Table.find_by_pk tbl [ Int 999 ] = None)

let test_duplicate_pk () =
  let engine = new_engine () in
  let tbl = setup_accounts engine 10 in
  check "duplicate rejected" true
    (try
       ignore (Table.insert tbl [| Int 5; Str "x"; Int 0 |]);
       false
     with Table.Duplicate_key _ -> true);
  check_int "row count unchanged" 10 (Table.row_count tbl)

let test_secondary_lookup () =
  let engine = new_engine () in
  let tbl = setup_accounts engine 100 in
  (* owner3 owns ids 3, 13, ..., 93 *)
  let rowids = Table.scan_prefix_eq (Table.index_exn tbl "accounts_owner_idx") ~prefix:[ Str "owner3" ] ~limit:100 in
  check_int "ten accounts for owner3" 10 (List.length rowids);
  List.iter
    (fun r -> check "owner matches" true (as_str (Table.read tbl r).(1) = "owner3"))
    rowids

let test_delete_maintains_indexes () =
  let engine = new_engine () in
  let tbl = setup_accounts engine 20 in
  (match Table.find_by_pk tbl [ Int 3 ] with
  | Some rowid -> ignore (Table.delete tbl rowid)
  | None -> Alcotest.fail "missing row");
  check "pk entry gone" true (Table.find_by_pk tbl [ Int 3 ] = None);
  let rowids = Table.scan_prefix_eq (Table.index_exn tbl "accounts_owner_idx") ~prefix:[ Str "owner3" ] ~limit:100 in
  check_int "secondary entry gone" 1 (List.length rowids);
  (* rowid slot is recycled *)
  ignore (Table.insert tbl [| Int 3; Str "fresh"; Int 1 |]);
  check "reinserted" true (Table.find_by_pk tbl [ Int 3 ] <> None)

let test_update_indexed_column_rejected () =
  let engine = new_engine () in
  let tbl = setup_accounts engine 5 in
  match Table.find_by_pk tbl [ Int 1 ] with
  | Some rowid ->
    check "indexed column update rejected" true
      (try
         ignore (Table.update tbl rowid [ (0, Int 77) ]);
         false
       with Invalid_argument _ -> true)
  | None -> Alcotest.fail "missing row"

(* --- transactions --- *)

let test_txn_commit () =
  let engine = new_engine () in
  let tbl = setup_accounts engine 5 in
  let r =
    Engine.run engine (fun e ->
        ignore (Engine.insert e tbl [| Int 100; Str "new"; Int 1 |]);
        "done")
  in
  check "committed" true (r = Ok "done");
  check "row visible" true (Table.find_by_pk tbl [ Int 100 ] <> None)

let test_txn_abort_rolls_back_insert () =
  let engine = new_engine () in
  let tbl = setup_accounts engine 5 in
  let r =
    Engine.run engine (fun e ->
        ignore (Engine.insert e tbl [| Int 100; Str "new"; Int 1 |]);
        raise (Engine.Abort "nope"))
  in
  check "aborted" true (r = Error (Engine.Txn_aborted "nope"));
  check "insert rolled back" true (Table.find_by_pk tbl [ Int 100 ] = None);
  check_int "aborts counted" 1 (Engine.stats engine).Engine.user_aborts

let test_txn_abort_rolls_back_update_and_delete () =
  let engine = new_engine () in
  let tbl = setup_accounts engine 5 in
  let rowid1 = match Table.find_by_pk tbl [ Int 1 ] with Some r -> r | None -> assert false in
  let r =
    Engine.run engine (fun e ->
        Engine.update e tbl rowid1 [ (2, Int 0) ];
        (match Table.find_by_pk tbl [ Int 2 ] with
        | Some rowid2 -> Engine.delete e tbl rowid2
        | None -> assert false);
        raise (Engine.Abort "rollback"))
  in
  check "aborted" true (r = Error (Engine.Txn_aborted "rollback"));
  check_int "update rolled back" 100 (as_int (Table.read tbl rowid1).(2));
  check "delete rolled back" true (Table.find_by_pk tbl [ Int 2 ] <> None);
  check_int "row count restored" 5 (Table.row_count tbl)

(* --- memory breakdown --- *)

let test_memory_breakdown () =
  let engine = new_engine () in
  let _tbl = setup_accounts engine 1_000 in
  let m = Engine.memory_breakdown engine in
  check "tuples counted" true (m.Engine.tuple_bytes > 0);
  check "pk index counted" true (m.Engine.pk_index_bytes > 0);
  check "secondary counted" true (m.Engine.secondary_index_bytes > 0);
  check "no disk yet" true (m.Engine.anticache_disk_bytes = 0);
  (* 1000 rows x (8 hdr + 8 + 16 + 8) bytes *)
  check_int "tuple bytes model" (1000 * Schema.tuple_bytes simple_schema) m.Engine.tuple_bytes

let test_index_kind_memory () =
  (* Fig 8's shape: hybrid indexes shrink the DBMS's index memory *)
  let build kind =
    let engine = new_engine ~config:{ Engine.default_config with index_kind = kind } () in
    let _ = setup_accounts engine 20_000 in
    Engine.flush_indexes engine;
    let m = Engine.memory_breakdown engine in
    m.Engine.pk_index_bytes + m.Engine.secondary_index_bytes
  in
  let btree = build Engine.Btree_config in
  let hybrid = build Engine.Hybrid_config in
  check (Printf.sprintf "hybrid %d < btree %d" hybrid btree) true (hybrid < btree)

(* --- anti-caching --- *)

let anticache_config threshold =
  {
    Engine.default_config with
    eviction_threshold_bytes = Some threshold;
    evictable_tables = [ "accounts" ];
    eviction_block_rows = 64;
  }

let test_eviction_triggers () =
  let engine = new_engine ~config:(anticache_config 60_000) () in
  let tbl = Engine.create_table engine simple_schema in
  (* each insert runs as its own transaction so the eviction manager runs *)
  for i = 1 to 3_000 do
    ignore
      (Engine.run engine (fun e ->
           ignore (Engine.insert e tbl [| Int i; Str (Printf.sprintf "owner%d" (i mod 10)); Int i |])))
  done;
  check "rows evicted" true (Table.evicted_rows tbl > 0);
  check "disk holds blocks" true (Anticache.disk_bytes (Engine.anticache engine) > 0);
  (* only tuples evict; index keys stay resident (paper §7.1), so check
     that the tuple share collapsed to tombstones *)
  check "most tuples evicted" true (Table.live_rows tbl < 1_000);
  let m = Engine.memory_breakdown engine in
  check "tuple bytes shrank to tombstones + residue" true
    (m.Engine.tuple_bytes < 3_000 * Schema.tuple_bytes simple_schema / 2)

let test_unevict_on_access () =
  let engine = new_engine ~config:(anticache_config 40_000) () in
  let tbl = Engine.create_table engine simple_schema in
  for i = 1 to 2_000 do
    ignore
      (Engine.run engine (fun e ->
           ignore (Engine.insert e tbl [| Int i; Str (Printf.sprintf "owner%d" (i mod 10)); Int i |])))
  done;
  check "some rows evicted" true (Table.evicted_rows tbl > 0);
  (* the coldest rows are the earliest: read them all back through
     transactions, which must transparently unevict and restart *)
  for i = 1 to 2_000 do
    let r =
      Engine.run engine (fun e ->
          match Table.find_by_pk tbl [ Int i ] with
          | Some rowid -> as_int (Engine.read e tbl rowid).(2)
          | None -> raise (Engine.Abort "missing"))
    in
    check "value correct after uneviction" true (r = Ok i)
  done;
  check "restarts recorded" true ((Engine.stats engine).Engine.evicted_restarts > 0)

let test_eviction_preserves_index_keys () =
  let engine = new_engine ~config:(anticache_config 40_000) () in
  let tbl = Engine.create_table engine simple_schema in
  for i = 1 to 2_000 do
    ignore
      (Engine.run engine (fun e ->
           ignore (Engine.insert e tbl [| Int i; Str (Printf.sprintf "owner%d" (i mod 10)); Int i |])))
  done;
  (* paper §7.1: tombstones keep all index keys in memory *)
  for i = 1 to 2_000 do
    check "pk entry survives eviction" true (Table.find_by_pk tbl [ Int i ] <> None)
  done

(* --- transaction stress: random commit/abort sequences vs a model --- *)

let test_txn_stress () =
  let rng = Hi_util.Xorshift.create 77 in
  let engine = new_engine () in
  let tbl = Engine.create_table engine simple_schema in
  let model : (int, int) Hashtbl.t = Hashtbl.create 256 in
  for _txn = 1 to 2_000 do
    (* build a random transaction of 1-5 operations, decide commit/abort *)
    let ops =
      List.init (1 + Hi_util.Xorshift.int rng 5) (fun _ ->
          let id = Hi_util.Xorshift.int rng 300 in
          let v = Hi_util.Xorshift.int rng 10_000 in
          (Hi_util.Xorshift.int rng 3, id, v))
    in
    let abort = Hi_util.Xorshift.int rng 4 = 0 in
    let staged = Hashtbl.copy model in
    let r =
      Engine.run engine (fun e ->
          List.iter
            (fun (kind, id, v) ->
              match kind with
              | 0 -> (
                (* upsert *)
                match Table.find_by_pk tbl [ Int id ] with
                | Some rowid ->
                  Engine.update e tbl rowid [ (2, Int v) ];
                  Hashtbl.replace staged id v
                | None ->
                  ignore (Engine.insert e tbl [| Int id; Str "o"; Int v |]);
                  Hashtbl.replace staged id v)
              | 1 -> (
                match Table.find_by_pk tbl [ Int id ] with
                | Some rowid ->
                  Engine.delete e tbl rowid;
                  Hashtbl.remove staged id
                | None -> ())
              | _ -> (
                (* read: must agree with the staged model mid-transaction *)
                match Table.find_by_pk tbl [ Int id ] with
                | Some rowid ->
                  let v = as_int (Engine.read e tbl rowid).(2) in
                  if Hashtbl.find_opt staged id <> Some v then
                    Alcotest.failf "mid-txn read mismatch on %d" id
                | None ->
                  if Hashtbl.mem staged id then Alcotest.failf "mid-txn missing row %d" id))
            ops;
          if abort then raise (Engine.Abort "chaos"))
    in
    (match r with
    | Ok () ->
      Hashtbl.reset model;
      Hashtbl.iter (fun k v -> Hashtbl.replace model k v) staged
    | Error _ -> () (* model unchanged *));
    ()
  done;
  (* final state must equal the model exactly *)
  check_int "row count matches model" (Hashtbl.length model) (Table.row_count tbl);
  Hashtbl.iter
    (fun id v ->
      match Table.find_by_pk tbl [ Int id ] with
      | Some rowid -> check_int (Printf.sprintf "value of %d" id) v (as_int (Table.read tbl rowid).(2))
      | None -> Alcotest.failf "missing row %d" id)
    model

let () =
  Alcotest.run "hstore"
    [
      ( "encoding",
        Alcotest.test_case "composite keys" `Quick test_composite_key_order
        :: qsuite [ test_int_key_order; test_str_key_order; test_float_key_order ] );
      ( "table",
        [
          Alcotest.test_case "crud" `Quick test_table_crud;
          Alcotest.test_case "duplicate pk" `Quick test_duplicate_pk;
          Alcotest.test_case "secondary lookup" `Quick test_secondary_lookup;
          Alcotest.test_case "delete maintains indexes" `Quick test_delete_maintains_indexes;
          Alcotest.test_case "indexed column update rejected" `Quick test_update_indexed_column_rejected;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit" `Quick test_txn_commit;
          Alcotest.test_case "abort rolls back insert" `Quick test_txn_abort_rolls_back_insert;
          Alcotest.test_case "abort rolls back update+delete" `Quick test_txn_abort_rolls_back_update_and_delete;
          Alcotest.test_case "random commit/abort stress vs model" `Quick test_txn_stress;
        ] );
      ( "memory",
        [
          Alcotest.test_case "breakdown" `Quick test_memory_breakdown;
          Alcotest.test_case "hybrid index shrinks DBMS memory" `Quick test_index_kind_memory;
        ] );
      ( "anticache",
        [
          Alcotest.test_case "eviction triggers" `Quick test_eviction_triggers;
          Alcotest.test_case "unevict on access" `Quick test_unevict_on_access;
          Alcotest.test_case "index keys survive eviction" `Quick test_eviction_preserves_index_keys;
        ] );
    ]
