(* Tests for the stable Db API and the wire-protocol transport (DESIGN.md
   §12): codec pins and fuzz properties, Db semantics over the router
   (validation, padding twins, scans, 2PC transactions), the loopback TCP
   server/client pair with pipelining and per-connection ordering, and the
   differential property that the TCP path answers byte-identically to the
   in-process path. *)

open Hi_util
open Hi_shard
open Hi_server
open Hi_check
open Common

let seq_mode seed = Router.Sequential (Xorshift.create seed)

let mk_db ?(partitions = 2) ?mode () = Db.create ?mode ~partitions ()

let with_db ?partitions ?mode f =
  let db = mk_db ?partitions ?mode () in
  Fun.protect ~finally:(fun () -> Db.close db) (fun () -> f db)

let with_server ?partitions f =
  with_db ?partitions (fun db ->
      let server = Server.start ~db () in
      Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f db server))

let with_client server f =
  let c = Client.connect ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let check_resp msg expected actual =
  check_string msg (Db.response_to_string expected) (Db.response_to_string actual);
  check msg true (expected = actual)

(* --- wire codec: pinned layout --- *)

let test_wire_pinned_layout () =
  (* Get "k" under id 7: version 1, opcode 0x01, id u32, key as u16 len +
     bytes.  The payload bytes are pinned here; the CRC field is checked
     against the CRC module, which test_fault pins against the standard
     check value. *)
  let payload = "\x01\x01\x00\x00\x00\x07\x00\x01k" in
  let b = Buffer.create 32 in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_int32_be b (Crc32.string payload);
  check_string "Get frame" (Buffer.contents b) (Wire.encode_request ~id:7 (Db.Get "k"));
  (* Done true under id 0x01020304: opcode 0x82, bool byte *)
  let payload = "\x01\x82\x01\x02\x03\x04\x01" in
  let b = Buffer.create 32 in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_int32_be b (Crc32.string payload);
  check_string "Done frame" (Buffer.contents b)
    (Wire.encode_response ~id:0x01020304 (Db.Done true));
  (* Put with an Int value: i64 BE payload *)
  let payload = "\x01\x02\x00\x00\x00\x00\x00\x01k\x01\x00\x00\x00\x00\x00\x00\x01\x00" in
  let frame = Wire.encode_request ~id:0 (Db.Put ("k", Db.Int 256)) in
  check_string "Put payload" payload (String.sub frame 4 (String.length payload))

let test_wire_pinned_rejects () =
  let frame = Wire.encode_request ~id:3 (Db.Get "key") in
  (* corrupt one payload byte: CRC must catch it *)
  let corrupt =
    String.mapi (fun i c -> if i = 6 then Char.chr (Char.code c lxor 0x40) else c) frame
  in
  check "bad crc" true (Wire.decode_frame corrupt ~pos:0 = Error Wire.Bad_crc);
  (* version byte is payload byte 0: re-frame with a bumped version *)
  let payload = "\x02\x01\x00\x00\x00\x03\x00\x03key" in
  let b = Buffer.create 32 in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_int32_be b (Crc32.string payload);
  check "bad version" true
    (Wire.decode_frame (Buffer.contents b) ~pos:0 = Error (Wire.Bad_version 2));
  (* a declared length beyond the cap is rejected before buffering *)
  let b = Buffer.create 8 in
  Buffer.add_int32_be b (Int32.of_int (Wire.max_payload + 1));
  check "too large" true
    (Wire.decode_frame (Buffer.contents b) ~pos:0
    = Error (Wire.Frame_too_large (Wire.max_payload + 1)));
  (* truncation reports how many bytes are still owed *)
  check "empty needs header" true (Wire.decode_frame "" ~pos:0 = Error (Wire.Need_more 4));
  let cut = String.sub frame 0 (String.length frame - 3) in
  check "cut frame needs 3" true (Wire.decode_frame cut ~pos:0 = Error (Wire.Need_more 3));
  (* a negative declared length is a hostile 32-bit value, not a short
     frame: rejected outright, never wrapped into a bogus byte count *)
  check "negative length" true
    (Wire.decode_frame "\xff\xff\xff\xff\x00\x00\x00\x00" ~pos:0
    = Error (Wire.Frame_too_large (-1)));
  check "min_int length" true
    (Wire.decode_frame "\x80\x00\x00\x00\x00\x00\x00\x00" ~pos:0
    = Error (Wire.Frame_too_large (Int32.to_int Int32.min_int)))

let test_wire_pinned_repl_layout () =
  (* Repl_ack stream 2, lsn 256 under id 5: opcode 0x07, u16 stream,
     i64 BE lsn *)
  let payload = "\x01\x07\x00\x00\x00\x05\x00\x02\x00\x00\x00\x00\x00\x00\x01\x00" in
  check_string "Repl_ack payload" payload
    (let f = Wire.encode_msg ~id:5 (Wire.Repl_ack { stream = 2; lsn = 256 }) in
     String.sub f 4 (String.length payload));
  (* Subscribe from boot 1 with one stream at LSN -1: opcode 0x06,
     i64 stream_id, u16 count, i64 per stream (-1 = nothing applied) *)
  let payload =
    "\x01\x06\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01\x00\x01\xff\xff\xff\xff\xff\xff\xff\xff"
  in
  check_string "Subscribe payload" payload
    (let f = Wire.encode_msg ~id:0 (Wire.Subscribe { stream_id = 1; applied = [| -1 |] }) in
     String.sub f 4 (String.length payload))

let frame_of payload =
  let b = Buffer.create 64 in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_int32_be b (Crc32.string payload);
  Buffer.contents b

let test_wire_pinned_agg_layout () =
  (* Scan_agg {Sum; lo="a"; hi=Some "b"; prefix 2} under id 9: opcode 0x08,
     fn u8 (Count=0 Sum=1 Min=2 Max=3 Avg=4), lo str16, hi option tag +
     str16, group_prefix u8 *)
  let payload = "\x01\x08\x00\x00\x00\x09\x01\x00\x01a\x01\x00\x01b\x02" in
  check_string "Scan_agg frame" (frame_of payload)
    (Wire.encode_request ~id:9
       (Db.Scan_agg { fn = Db.Sum; lo = "a"; hi = Some "b"; group_prefix = 2 }));
  (* hi = None is a single 0 tag byte *)
  let payload = "\x01\x08\x00\x00\x00\x00\x00\x00\x00\x00\x00" in
  check_string "Scan_agg open range" (frame_of payload)
    (Wire.encode_request ~id:0
       (Db.Scan_agg { fn = Db.Count; lo = ""; hi = None; group_prefix = 0 }));
  (* Aggregate {rows 3; age 0.0; generation 4; one group "g" count 2 value
     1.5} under id 1: opcode 0x88, rows u32, age f64 bits, generation u32,
     ngroups u32, then key str16 + count i64 + value f64 bits per group *)
  let payload =
    "\x01\x88\x00\x00\x00\x01" ^ "\x00\x00\x00\x03"
    ^ "\x00\x00\x00\x00\x00\x00\x00\x00" ^ "\x00\x00\x00\x04" ^ "\x00\x00\x00\x01"
    ^ "\x00\x01g" ^ "\x00\x00\x00\x00\x00\x00\x00\x02" ^ "\x3f\xf8\x00\x00\x00\x00\x00\x00"
  in
  check_string "Aggregate frame" (frame_of payload)
    (Wire.encode_response ~id:1
       (Db.Aggregate
          {
            groups = [ { g_key = "g"; g_count = 2; g_value = 1.5 } ];
            rows_scanned = 3;
            max_age_s = 0.0;
            generation = 4;
          }))

let test_wire_pinned_agg_rejects () =
  let is_bad f =
    match Wire.decode_frame f ~pos:0 with Error (Wire.Bad_payload _) -> true | _ -> false
  in
  (* aggregate fn 5 is out of range *)
  check "bad fn" true (is_bad (frame_of "\x01\x08\x00\x00\x00\x00\x05\x00\x00\x00\x00"));
  (* hi option tag 2 is neither absent nor present *)
  check "bad option tag" true
    (is_bad (frame_of "\x01\x08\x00\x00\x00\x00\x00\x00\x00\x02\x00"));
  (* body cut before the group_prefix byte *)
  check "truncated body" true (is_bad (frame_of "\x01\x08\x00\x00\x00\x00\x00\x00\x00\x00"));
  (* an Aggregate declaring more groups than a frame can carry is rejected
     before any allocation *)
  check "oversized group count" true
    (is_bad
       (frame_of
          ("\x01\x88\x00\x00\x00\x00" ^ "\x00\x00\x00\x00"
         ^ "\x00\x00\x00\x00\x00\x00\x00\x00" ^ "\x00\x00\x00\x00" ^ "\x00\x10\x00\x01")));
  (* trailing bytes after a complete Scan_agg body *)
  check "trailing bytes" true
    (is_bad (frame_of "\x01\x08\x00\x00\x00\x00\x00\x00\x00\x00\x00\xff"))

let test_wire_roundtrip () =
  for seed = 1 to 400 do
    let rng = Xorshift.create seed in
    let id = Wire_check.gen_id rng in
    let msg = Wire_check.gen_msg rng in
    match Wire_check.roundtrip ~id msg with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_wire_prefixes () =
  for seed = 1 to 60 do
    let rng = Xorshift.create seed in
    let id = Wire_check.gen_id rng in
    let msg = Wire_check.gen_msg rng in
    match Wire_check.prefix_safe ~id msg with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_wire_corruption () =
  for seed = 1 to 400 do
    let rng = Xorshift.create seed in
    let id = Wire_check.gen_id rng in
    let msg = Wire_check.gen_msg rng in
    match Wire_check.corrupt_safe rng ~id msg with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_wire_hostile_lengths () =
  for seed = 1 to 60 do
    let rng = Xorshift.create seed in
    let id = Wire_check.gen_id rng in
    let msg = Wire_check.gen_msg rng in
    match Wire_check.hostile_length_safe ~id msg with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_wire_stream () =
  (* several frames in one buffer decode in sequence from moving [pos] *)
  let msgs =
    [
      (1, Wire.Request (Db.Get "a"));
      (2, Wire.Response (Db.Value (Some (Db.Str "v"))));
      (3, Wire.Request (Db.Txn [ ("k", Some (Db.Int 1)); ("l", None) ]));
    ]
  in
  let buf = String.concat "" (List.map (fun (id, m) -> Wire_check.encode ~id m) msgs) in
  let pos = ref 0 in
  List.iter
    (fun (id, m) ->
      match Wire.decode_frame buf ~pos:!pos with
      | Ok (id', m', consumed) ->
        check_int "stream id" id id';
        check "stream msg" true (m = m');
        pos := !pos + consumed
      | Error e -> Alcotest.fail (Wire.error_to_string e))
    msgs;
  check_int "stream consumed" (String.length buf) !pos

(* --- Db semantics (in-process transport) --- *)

let test_db_crud () =
  with_db ~mode:(seq_mode 11) (fun db ->
      check "put new" true (Db.put db "alpha" (Db.Int 1) = Ok true);
      check "put overwrite" true (Db.put db "alpha" (Db.Str "two") = Ok false);
      check "get" true (Db.get db "alpha" = Ok (Some (Db.Str "two")));
      check "get miss" true (Db.get db "beta" = Ok None);
      check "delete" true (Db.delete db "alpha" = Ok true);
      check "delete miss" true (Db.delete db "alpha" = Ok false);
      check "get after delete" true (Db.get db "alpha" = Ok None);
      (* all four value shapes survive a put/get cycle *)
      List.iter
        (fun v ->
          ignore (Db.put db "v" v);
          check "value roundtrip" true (Db.get db "v" = Ok (Some v)))
        [ Db.Null; Db.Int (-42); Db.Float 2.5; Db.Str "payload" ])

let test_db_validation () =
  with_db ~mode:(seq_mode 12) (fun db ->
      let is_bad = function Error (Db.Bad_request _) -> true | _ -> false in
      check "empty key" true (is_bad (Db.get db ""));
      check "long key" true (is_bad (Db.put db (String.make 129 'k') Db.Null));
      check "long value" true (is_bad (Db.put db "k" (Db.Str (String.make 257 'v'))));
      check "negative scan" true (is_bad (Db.scan_from db "" (-1)));
      check "empty txn" true (is_bad (Db.txn db []));
      check "long probe" true (is_bad (Db.scan_from db (String.make 129 'p') 1)))

let test_db_padding_twins () =
  (* "k" and "k\000" share a padded index key; the row stores the exact
     key, so the twin reads as a miss and a twin put aborts instead of
     overwriting. *)
  with_db ~partitions:1 ~mode:(seq_mode 13) (fun db ->
      check "put k" true (Db.put db "k" (Db.Int 1) = Ok true);
      check "twin get misses" true (Db.get db "k\000" = Ok None);
      check "twin delete misses" true (Db.delete db "k\000" = Ok false);
      (match Db.put db "k\000" (Db.Int 2) with
      | Error (Db.Aborted _) -> ()
      | r -> Alcotest.failf "twin put: %s" (Db.response_to_string
            (match r with Ok b -> Db.Done b | Error e -> Db.Failed e)));
      check "original intact" true (Db.get db "k" = Ok (Some (Db.Int 1))))

let test_db_scan () =
  with_db ~partitions:3 ~mode:(seq_mode 14) (fun db ->
      let keys = List.init 40 (fun i -> Key_codec.encode_u64 (Int64.of_int (i * 3))) in
      List.iter (fun k -> ignore (Db.put db k (Db.Str k))) keys;
      (* full scan merges every partition's slice in key order *)
      (match Db.scan_from db "" Db.max_scan with
      | Ok entries ->
        check "scan count" true (List.length entries = 40);
        check "scan sorted" true
          (List.map fst entries = List.sort String.compare keys);
        check "scan values ride along" true
          (List.for_all (fun (k, v) -> v = Db.Str k) entries)
      | Error e -> Alcotest.fail (Db.error_to_string e));
      (* probe starts mid-range, limit truncates after the global merge *)
      let probe = Key_codec.encode_u64 60L in
      match Db.scan_from db probe 5 with
      | Ok entries ->
        check_int "limited scan" 5 (List.length entries);
        check_string "scan from probe" probe (fst (List.hd entries))
      | Error e -> Alcotest.fail (Db.error_to_string e))

let test_db_txn () =
  with_db ~partitions:3 ~mode:(seq_mode 15) (fun db ->
      (* pick keys known to live on distinct partitions *)
      let all = List.init 64 (fun i -> Key_codec.email_of_id i) in
      let on p = List.find (fun k -> Db.route db k = p) all in
      let a = on 0 and b = on 1 and c = on 2 in
      check "multi-partition txn" true
        (Db.txn db [ (a, Some (Db.Int 1)); (b, Some (Db.Int 2)); (c, Some (Db.Int 3)) ]
        = Ok ());
      check "txn visible a" true (Db.get db a = Ok (Some (Db.Int 1)));
      check "txn visible c" true (Db.get db c = Ok (Some (Db.Int 3)));
      (* later ops in one txn see earlier ones: put then delete nets out *)
      check "put+delete txn" true (Db.txn db [ (a, Some (Db.Int 9)); (a, None) ] = Ok ());
      check "netted out" true (Db.get db a = Ok None);
      (* an aborting op (padding twin) rolls the whole txn back everywhere *)
      ignore (Db.put db b (Db.Int 2));
      let twin = a ^ "\000" in
      if Db.route db twin = Db.route db a then begin
        ignore (Db.put db a (Db.Int 1));
        (match Db.txn db [ (b, Some (Db.Int 99)); (twin, Some (Db.Int 0)) ] with
        | Error (Db.Aborted _) -> ()
        | _ -> Alcotest.fail "twin txn should abort");
        check "txn rolled back" true (Db.get db b = Ok (Some (Db.Int 2)))
      end)

(* --- TCP transport --- *)

let test_server_sync_calls () =
  with_server (fun _db server ->
      with_client server (fun c ->
          check_resp "put" (Db.Done true) (Client.call c (Db.Put ("k1", Db.Str "v1")));
          check_resp "get" (Db.Value (Some (Db.Str "v1"))) (Client.call c (Db.Get "k1"));
          check_resp "get miss" (Db.Value None) (Client.call c (Db.Get "nope"));
          check_resp "bad request" (Db.Failed (Db.Bad_request "empty key"))
            (Client.call c (Db.Get ""));
          check_resp "delete" (Db.Done true) (Client.call c (Db.Delete "k1"));
          check_resp "txn" (Db.Done true)
            (Client.call c (Db.Txn [ ("a", Some (Db.Int 1)); ("b", Some (Db.Int 2)) ]));
          match Client.call c (Db.Scan_from ("", 10)) with
          | Db.Entries [ ("a", Db.Int 1); ("b", Db.Int 2) ] -> ()
          | r -> Alcotest.failf "scan: %s" (Db.response_to_string r)))

let test_server_pipelining () =
  with_server (fun _db server ->
      with_client server (fun c ->
          let n = 300 in
          let tickets =
            List.init n (fun i ->
                Client.send c (Db.Put (Key_codec.encode_u64 (Int64.of_int i), Db.Int i)))
          in
          (* a pipelined read after pipelined writes observes them all:
             per-connection program order survives batching *)
          let scan = Client.send c (Db.Scan_from ("", Db.max_scan)) in
          List.iteri
            (fun i tk -> check_resp (Printf.sprintf "put %d" i) (Db.Done true) (Client.await tk))
            tickets;
          (match Client.await scan with
          | Db.Entries entries -> check_int "scan sees all writes" n (List.length entries)
          | r -> Alcotest.failf "scan: %s" (Db.response_to_string r));
          check_int "nothing pending" 0 (Client.pending c)))

let test_server_two_clients () =
  with_server (fun _db server ->
      with_client server (fun c1 ->
          with_client server (fun c2 ->
              let worker c tag =
                Thread.create
                  (fun () ->
                    for i = 0 to 99 do
                      let k = Printf.sprintf "%s-%d" tag i in
                      match Client.call c (Db.Put (k, Db.Int i)) with
                      | Db.Done true -> ()
                      | r -> Alcotest.failf "%s: %s" k (Db.response_to_string r)
                    done)
                  ()
              in
              let t1 = worker c1 "one" and t2 = worker c2 "two" in
              Thread.join t1;
              Thread.join t2;
              match Client.call c1 (Db.Scan_from ("", Db.max_scan)) with
              | Db.Entries entries -> check_int "both clients' writes" 200 (List.length entries)
              | r -> Alcotest.failf "scan: %s" (Db.response_to_string r))))

let test_server_rejects_garbage () =
  with_server (fun _db server ->
      let before = Server.protocol_errors server in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
      let garbage = "\x00\x00\x00\x04garbage-with-no-valid-crc" in
      ignore (Unix.write_substring fd garbage 0 (String.length garbage));
      (* server counts the protocol error and closes: read sees EOF *)
      let buf = Bytes.create 64 in
      let n = try Unix.read fd buf 0 64 with Unix.Unix_error _ -> 0 in
      Unix.close fd;
      check_int "closed without a response" 0 n;
      check "protocol error counted" true (Server.protocol_errors server > before);
      (* the server survives: a well-behaved client still works *)
      with_client server (fun c ->
          check_resp "still serving" (Db.Done true) (Client.call c (Db.Put ("k", Db.Null)))))

let test_client_disconnect () =
  with_server (fun _db server ->
      let c = Client.connect ~port:(Server.port server) () in
      check_resp "works" (Db.Done true) (Client.call c (Db.Put ("k", Db.Null)));
      Server.stop server;
      (* outstanding and future requests resolve to Disconnected, no raise *)
      let r = Client.call c (Db.Get "k") in
      (match r with
      | Db.Failed (Db.Disconnected _) -> ()
      | _ -> Alcotest.failf "after stop: %s" (Db.response_to_string r));
      Client.close c)

let test_client_close_fails_fast () =
  with_server (fun _db server ->
      let c = Client.connect ~port:(Server.port server) () in
      check_resp "works" (Db.Done true) (Client.call c (Db.Put ("k", Db.Null)));
      Client.close c;
      (* a send after close resolves immediately — no hang, no raise,
         nothing left registered as outstanding *)
      let t = Client.send c (Db.Get "k") in
      check_int "nothing pending" 0 (Client.pending c);
      (match Client.await t with
      | Db.Failed (Db.Disconnected _) -> ()
      | r -> Alcotest.failf "after close: %s" (Db.response_to_string r));
      (* close is idempotent and the state sticks *)
      Client.close c;
      match Client.call c (Db.Put ("x", Db.Null)) with
      | Db.Failed (Db.Disconnected _) -> ()
      | r -> Alcotest.failf "second send after close: %s" (Db.response_to_string r))

(* --- differential: TCP path vs in-process path, byte-identical --- *)

let test_differential_tcp_vs_inprocess () =
  for seed = 1 to 5 do
    let requests = Wire_check.gen_session (Xorshift.create (1000 + seed)) ~n:200 in
    let in_proc =
      with_db ~partitions:2 ~mode:(seq_mode seed) (fun db ->
          List.map (fun req -> Db.exec db req) requests)
    in
    let over_tcp =
      with_server ~partitions:2 (fun _db server ->
          with_client server (fun c -> List.map (fun req -> Client.call c req) requests))
    in
    List.iteri
      (fun i (a, b) ->
        if Wire.encode_response ~id:0 a <> Wire.encode_response ~id:0 b then
          Alcotest.failf "seed %d, request %d: in-process %s, tcp %s" seed i
            (Db.response_to_string a) (Db.response_to_string b))
      (List.combine in_proc over_tcp)
  done

let test_tcp_scan_agg () =
  with_server (fun _db server ->
      with_client server (fun c ->
          List.iteri
            (fun i k ->
              check_resp "agg load" (Db.Done true) (Client.call c (Db.Put (k, Db.Int (i + 1)))))
            [ "u1"; "u2"; "u3"; "u4" ];
          (match
             Client.call c (Db.Scan_agg { fn = Db.Sum; lo = "u"; hi = None; group_prefix = 0 })
           with
          | Db.Aggregate a -> (
            check_int "tcp agg rows" 4 a.rows_scanned;
            check "tcp agg age" true (a.max_age_s >= 0.0);
            match a.groups with
            | [ g ] ->
              check_int "tcp agg count" 4 g.g_count;
              check "tcp agg sum" true (g.g_value = 10.0)
            | gs -> Alcotest.failf "tcp agg: %d groups" (List.length gs))
          | r -> Alcotest.failf "tcp agg: %s" (Db.response_to_string r));
          (* a group_prefix that fits the wire's u8 but exceeds max_key_len
             is rejected by server-side validation, not the codec *)
          match
            Client.call c (Db.Scan_agg { fn = Db.Count; lo = ""; hi = None; group_prefix = 200 })
          with
          | Db.Failed (Db.Bad_request _) -> ()
          | r -> Alcotest.failf "hostile prefix: %s" (Db.response_to_string r)))

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "pinned layout" `Quick test_wire_pinned_layout;
          Alcotest.test_case "pinned rejects" `Quick test_wire_pinned_rejects;
          Alcotest.test_case "pinned repl layout" `Quick test_wire_pinned_repl_layout;
          Alcotest.test_case "pinned agg layout" `Quick test_wire_pinned_agg_layout;
          Alcotest.test_case "pinned agg rejects" `Quick test_wire_pinned_agg_rejects;
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "prefixes need more" `Quick test_wire_prefixes;
          Alcotest.test_case "corruption rejected" `Quick test_wire_corruption;
          Alcotest.test_case "hostile lengths" `Quick test_wire_hostile_lengths;
          Alcotest.test_case "frame stream" `Quick test_wire_stream;
        ] );
      ( "db",
        [
          Alcotest.test_case "crud" `Quick test_db_crud;
          Alcotest.test_case "validation" `Quick test_db_validation;
          Alcotest.test_case "padding twins" `Quick test_db_padding_twins;
          Alcotest.test_case "scan" `Quick test_db_scan;
          Alcotest.test_case "txn" `Quick test_db_txn;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "sync calls" `Quick test_server_sync_calls;
          Alcotest.test_case "pipelining" `Quick test_server_pipelining;
          Alcotest.test_case "two clients" `Quick test_server_two_clients;
          Alcotest.test_case "rejects garbage" `Quick test_server_rejects_garbage;
          Alcotest.test_case "scan_agg end-to-end" `Quick test_tcp_scan_agg;
          Alcotest.test_case "client disconnect" `Quick test_client_disconnect;
          Alcotest.test_case "client close fails fast" `Quick test_client_close_fails_fast;
          Alcotest.test_case "differential vs in-process" `Quick
            test_differential_tcp_vs_inprocess;
        ] );
    ]
