(* Tests for internal building blocks that the structure-level suites only
   exercise indirectly: Masstree's per-layer B+tree, the packed sorted
   store, the front-coded store's coding, lazy cursors, and error paths. *)

open Hi_util
open Hi_index

open Common

(* --- Layer_tree (Masstree's per-trie-node B+tree) --- *)

module LT = Hi_masstree.Layer_tree

let test_layer_tree_basic () =
  let t = LT.create "dummy" in
  LT.upsert t 5L 8 (function None -> "five" | Some _ -> Alcotest.fail "fresh key");
  LT.upsert t 3L 8 (function None -> "three" | Some _ -> Alcotest.fail "fresh key");
  Alcotest.(check (option string)) "find 5" (Some "five") (LT.find t 5L 8);
  Alcotest.(check (option string)) "find 3" (Some "three") (LT.find t 3L 8);
  Alcotest.(check (option string)) "miss" None (LT.find t 4L 8);
  (* same slice, different length marker = different key *)
  LT.upsert t 5L 3 (function None -> "short" | Some _ -> Alcotest.fail "fresh");
  Alcotest.(check (option string)) "slice+len keyed" (Some "short") (LT.find t 5L 3);
  check_int "size" 3 (LT.size t)

let test_layer_tree_upsert_mutates () =
  let t = LT.create 0 in
  LT.upsert t 1L 8 (function None -> 10 | Some _ -> Alcotest.fail "fresh");
  LT.upsert t 1L 8 (function None -> Alcotest.fail "must exist" | Some v -> v + 1);
  Alcotest.(check (option int)) "mutated" (Some 11) (LT.find t 1L 8);
  check_int "no duplicate" 1 (LT.size t)

let test_layer_tree_bulk_sorted () =
  let t = LT.create (-1) in
  let rng = Xorshift.create 5 in
  let keys = Array.init 5_000 (fun _ -> Xorshift.next_u64 rng) in
  Array.iteri (fun i s -> LT.upsert t s 8 (function None -> i | Some v -> v)) keys;
  (* iteration is in unsigned slice order *)
  let prev = ref None and ordered = ref true in
  LT.iter t (fun s _ _ ->
      (match !prev with Some p -> if Int64.unsigned_compare p s >= 0 then ordered := false | None -> ());
      prev := Some s);
  check "iteration in unsigned order" true !ordered;
  Array.iteri (fun i s -> Alcotest.(check (option int)) "find all" (Some i) (LT.find t s 8)) keys

let test_layer_tree_remove () =
  let t = LT.create (-1) in
  for i = 0 to 999 do
    LT.upsert t (Int64.of_int i) 8 (function None -> i | Some v -> v)
  done;
  for i = 0 to 999 do
    if i mod 3 = 0 then check "removed" true (LT.remove t (Int64.of_int i) 8)
  done;
  check "remove absent" false (LT.remove t 0L 8);
  check_int "size after removals" 666 (LT.size t);
  for i = 0 to 999 do
    if i mod 3 = 0 then check "gone" true (LT.find t (Int64.of_int i) 8 = None)
    else Alcotest.(check (option int)) "kept" (Some i) (LT.find t (Int64.of_int i) 8)
  done

let test_layer_tree_iter_from () =
  let t = LT.create (-1) in
  for i = 0 to 99 do
    LT.upsert t (Int64.of_int (2 * i)) 8 (function None -> i | Some v -> v)
  done;
  let seen = ref [] in
  (try
     LT.iter_from t 51L 0 (fun s _ _ ->
         if List.length !seen >= 3 then raise LT.Stop;
         seen := s :: !seen)
   with LT.Stop -> ());
  Alcotest.(check (list int64)) "from lower bound" [ 56L; 54L; 52L ] !seen

(* --- Packed_sorted --- *)

let build_packed keys =
  let entries = Array.mapi (fun i k -> (k, [| i |])) keys in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) entries;
  Packed_sorted.build entries

let test_packed_lower_bound_model =
  QCheck.Test.make ~name:"packed lower_bound = naive lower bound" ~count:300
    QCheck.(pair (list (string_gen_of_size (Gen.int_range 0 10) Gen.printable)) (string_gen_of_size (Gen.int_range 0 10) Gen.printable))
    (fun (keys, probe) ->
      let keys = List.sort_uniq compare keys in
      let arr = Array.of_list keys in
      let t = build_packed arr in
      let naive =
        let rec go i = if i >= Array.length arr then i else if String.compare arr.(i) probe >= 0 then i else go (i + 1) in
        go 0
      in
      Packed_sorted.lower_bound t probe = naive)

let test_packed_levels_built () =
  (* enough keys to force several separator levels *)
  let keys = Array.init 40_000 (fun i -> Printf.sprintf "%08d" i) in
  let t = build_packed keys in
  check "has levels" true (Packed_sorted.level_key_slots t > 0);
  (* every key findable through the level descent *)
  Array.iteri (fun i k -> Alcotest.(check (option int)) "find" (Some i) (Packed_sorted.find t k)) keys

(* --- Frontcoded_btree coding --- *)

module FC = Hi_btree.Frontcoded_btree

let test_frontcoded_roundtrip =
  QCheck.Test.make ~name:"front coding reconstructs every key" ~count:200
    QCheck.(list (string_gen_of_size (Gen.int_range 0 24) (Gen.oneofl [ 'a'; 'b'; 'c'; 'd' ])))
    (fun keys ->
      let keys = List.sort_uniq compare keys in
      let entries = Array.of_list (List.mapi (fun i k -> (k, [| i |])) keys) in
      let t = FC.build entries in
      List.for_all (fun (k, vs) -> FC.find t k = Some vs.(0)) (Array.to_list entries)
      &&
      let seen = ref [] in
      FC.iter_sorted t (fun k _ -> seen := k :: !seen);
      List.rev !seen = keys)

let test_frontcoded_shared_prefix_compresses () =
  let keys = Array.init 10_000 (fun i -> Printf.sprintf "common/prefix/path/item-%06d" i) in
  let entries = Array.mapi (fun i k -> (k, [| i |])) keys in
  let t = FC.build entries in
  (* 28-byte keys stored in ~8 bytes each once front-coded *)
  let per_key = float_of_int (FC.memory_bytes t) /. 10_000.0 in
  check (Printf.sprintf "bytes/key %.1f < 20" per_key) true (per_key < 20.0)

(* --- to_seq cursors agree with iter_sorted --- *)

let dump_seq seq = List.of_seq (Seq.map (fun (k, vs) -> (k, Array.to_list vs)) seq)

let dump_iter iter t =
  let out = ref [] in
  iter t (fun k vs -> out := (k, Array.to_list vs) :: !out);
  List.rev !out

let test_to_seq_equivalence () =
  let keys = Key_codec.generate_keys Key_codec.Email 2_000 in
  let entries = Array.mapi (fun i k -> (k, [| i |])) keys in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) entries;
  let check_one name iter_dump seq_dump = Alcotest.(check (list (pair string (list int)))) name iter_dump seq_dump in
  let cb = Hi_btree.Compact_btree.build entries in
  check_one "compact btree" (dump_iter Hi_btree.Compact_btree.iter_sorted cb) (dump_seq (Hi_btree.Compact_btree.to_seq cb));
  let cs = Hi_skiplist.Compact_skiplist.build entries in
  check_one "compact skiplist"
    (dump_iter Hi_skiplist.Compact_skiplist.iter_sorted cs)
    (dump_seq (Hi_skiplist.Compact_skiplist.to_seq cs));
  let cm = Hi_masstree.Compact_masstree.build entries in
  check_one "compact masstree"
    (dump_iter Hi_masstree.Compact_masstree.iter_sorted cm)
    (dump_seq (Hi_masstree.Compact_masstree.to_seq cm));
  let ca = Hi_art.Compact_art.build entries in
  check_one "compact art" (dump_iter Hi_art.Compact_art.iter_sorted ca) (dump_seq (Hi_art.Compact_art.to_seq ca));
  let cz = Hi_btree.Compressed_btree.build entries in
  check_one "compressed btree"
    (dump_iter Hi_btree.Compressed_btree.iter_sorted cz)
    (dump_seq (Hi_btree.Compressed_btree.to_seq cz));
  let fc = FC.build entries in
  check_one "frontcoded btree" (dump_iter FC.iter_sorted fc) (dump_seq (FC.to_seq fc))

(* --- error paths --- *)

let test_compress_corrupt_stream () =
  check "corrupt tag rejected" true
    (try
       ignore (Compress.decompress "\005\255garbage");
       false
     with Invalid_argument _ -> true)

let test_anticache_unknown_block () =
  let open Hi_hstore in
  let ac = Anticache.create () in
  check "unknown block rejected" true
    (try
       ignore (Anticache.fetch_block ac 42);
       false
     with Anticache.Fetch_failed { error = Anticache.Missing; _ } -> true)

let test_schema_errors () =
  let open Hi_hstore in
  check "unknown pk column" true
    (try
       ignore (Schema.make ~name:"t" ~columns:[ ("a", Value.TInt) ] ~pk:[ "nope" ] ());
       false
     with Invalid_argument _ -> true);
  let schema = Schema.make ~name:"t" ~columns:[ ("a", Value.TInt) ] ~pk:[ "a" ] () in
  check "arity mismatch" true
    (try
       ignore (Schema.key_of_values schema schema.Schema.primary_key [ Value.Int 1; Value.Int 2 ]);
       false
     with Invalid_argument _ -> true)

let test_value_type_checks () =
  let open Hi_hstore.Value in
  check "int matches" true (matches_ty (Int 3) TInt);
  check "string width enforced" false (matches_ty (Str "too long here") (TStr 4));
  check "null matches anything" true (matches_ty Null TInt && matches_ty Null (TStr 1));
  check "as_int rejects strings" true
    (try
       ignore (as_int (Str "x"));
       false
     with Invalid_argument _ -> true)

let test_table_dangling_rowid () =
  let open Hi_hstore in
  let engine = Engine.create () in
  let tbl =
    Engine.create_table engine (Schema.make ~name:"t" ~columns:[ ("a", Value.TInt) ] ~pk:[ "a" ] ())
  in
  let rowid = Table.insert tbl [| Value.Int 1 |] in
  ignore (Table.delete tbl rowid);
  check "dangling rowid rejected" true
    (try
       ignore (Table.read tbl rowid);
       false
     with Invalid_argument _ -> true)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "internals"
    [
      ( "layer_tree",
        [
          Alcotest.test_case "basic" `Quick test_layer_tree_basic;
          Alcotest.test_case "upsert mutates" `Quick test_layer_tree_upsert_mutates;
          Alcotest.test_case "bulk sorted" `Quick test_layer_tree_bulk_sorted;
          Alcotest.test_case "remove" `Quick test_layer_tree_remove;
          Alcotest.test_case "iter_from with stop" `Quick test_layer_tree_iter_from;
        ] );
      ( "packed_sorted",
        [
          qtest test_packed_lower_bound_model;
          Alcotest.test_case "separator levels" `Quick test_packed_levels_built;
        ] );
      ( "frontcoded",
        [
          qtest test_frontcoded_roundtrip;
          Alcotest.test_case "shared prefixes compress" `Quick test_frontcoded_shared_prefix_compresses;
        ] );
      ("cursors", [ Alcotest.test_case "to_seq = iter_sorted" `Quick test_to_seq_equivalence ]);
      ( "error-paths",
        [
          Alcotest.test_case "corrupt compressed stream" `Quick test_compress_corrupt_stream;
          Alcotest.test_case "unknown anticache block" `Quick test_anticache_unknown_block;
          Alcotest.test_case "schema errors" `Quick test_schema_errors;
          Alcotest.test_case "value type checks" `Quick test_value_type_checks;
          Alcotest.test_case "dangling rowid" `Quick test_table_dangling_rowid;
        ] );
    ]
