(* Tests for the incremental (non-blocking-style) merge — the paper's §9
   future-work extension: bounded merge work per operation, same observable
   semantics as the blocking hybrid index. *)

open Hi_util
open Hybrid_index

open Common

let small_config = { Incremental.default_config with min_merge_size = 64; step = 16 }

module Inc_suite (H : sig
  type t

  val create : ?config:Incremental.config -> unit -> t
  val insert : t -> string -> int -> unit
  val insert_unique : t -> string -> int -> bool
  val mem : t -> string -> bool
  val find : t -> string -> int option
  val find_all : t -> string -> int list
  val update : t -> string -> int -> bool
  val delete : t -> string -> bool
  val scan_from : t -> string -> int -> (string * int) list
  val force_merge : t -> unit
  val drain : t -> unit
  val entry_count : t -> int
  val dynamic_entry_count : t -> int
  val memory_bytes : t -> int
  val merging : t -> bool
  val stats : t -> Incremental.stats
end) =
struct
  (* not every suite test uses every operation *)
  let _ = (H.insert, H.find_all)

  let key = Key_codec.encode_int

  let test_basic () =
    let t = H.create ~config:small_config () in
    check "insert" true (H.insert_unique t (key 1) 10);
    Alcotest.(check (option int)) "find" (Some 10) (H.find t (key 1));
    check "dup rejected" false (H.insert_unique t (key 1) 11)

  let test_merge_progress () =
    let t = H.create ~config:small_config () in
    for i = 0 to 2_000 do
      ignore (H.insert_unique t (key i) i)
    done;
    let s = H.stats t in
    check "merges started" true (s.Incremental.merges_started > 0);
    check "merges completed" true (s.Incremental.merges_completed > 0);
    (* everything readable at all times, merging or not *)
    for i = 0 to 2_000 do
      Alcotest.(check (option int)) "readable" (Some i) (H.find t (key i))
    done

  let test_bounded_work () =
    let config = { small_config with step = 32 } in
    let t = H.create ~config () in
    for i = 0 to 5_000 do
      ignore (H.insert_unique t (key i) i)
    done;
    let s = H.stats t in
    (* no single operation performed more than [step] entries of merge
       work, while a blocking merge would have processed thousands *)
    check
      (Printf.sprintf "max per-op work %d <= step 32" s.Incremental.max_entries_per_op)
      true
      (s.Incremental.max_entries_per_op <= 32)

  let test_reads_during_merge () =
    let t = H.create ~config:{ small_config with step = 1 } () in
    (* seed the static stage *)
    for i = 0 to 499 do
      ignore (H.insert_unique t (key i) i)
    done;
    H.force_merge t;
    (* trigger a merge and freeze it mid-flight (step = 1) *)
    for i = 500 to 700 do
      ignore (H.insert_unique t (key i) i)
    done;
    if H.merging t then begin
      (* reads must see dynamic, frozen and static entries *)
      for i = 0 to 700 do
        Alcotest.(check (option int)) "visible mid-merge" (Some i) (H.find t (key i))
      done
    end;
    H.drain t;
    for i = 0 to 700 do
      Alcotest.(check (option int)) "visible after drain" (Some i) (H.find t (key i))
    done

  let test_update_mid_merge () =
    let t = H.create ~config:{ small_config with step = 1 } () in
    for i = 0 to 299 do
      ignore (H.insert_unique t (key i) i)
    done;
    H.force_merge t;
    for i = 300 to 400 do
      ignore (H.insert_unique t (key i) i)
    done;
    (* update keys living in all three places while a merge is active *)
    check "update static key" true (H.update t (key 10) 1_000);
    check "update frozen/dynamic key" true (H.update t (key 350) 2_000);
    H.drain t;
    Alcotest.(check (option int)) "static overwrite survives" (Some 1_000) (H.find t (key 10));
    Alcotest.(check (option int)) "recent overwrite survives" (Some 2_000) (H.find t (key 350))

  let test_delete_mid_merge () =
    let t = H.create ~config:{ small_config with step = 1 } () in
    for i = 0 to 299 do
      ignore (H.insert_unique t (key i) i)
    done;
    H.force_merge t;
    for i = 300 to 400 do
      ignore (H.insert_unique t (key i) i)
    done;
    check "delete static" true (H.delete t (key 20));
    check "delete recent" true (H.delete t (key 390));
    check "gone now" false (H.mem t (key 20) || H.mem t (key 390));
    H.drain t;
    check "gone after drain" false (H.mem t (key 20) || H.mem t (key 390));
    (* a tombstone for an already-emitted key survives to the next merge *)
    H.force_merge t;
    check "still gone after next merge" false (H.mem t (key 20) || H.mem t (key 390))

  let test_scan_mid_merge () =
    let t = H.create ~config:{ small_config with step = 1 } () in
    for i = 0 to 99 do
      ignore (H.insert_unique t (key (2 * i)) (2 * i))
    done;
    H.force_merge t;
    for i = 0 to 99 do
      ignore (H.insert_unique t (key ((2 * i) + 1)) ((2 * i) + 1))
    done;
    let got = H.scan_from t (key 50) 10 in
    let expected = List.init 10 (fun i -> (key (i + 50), i + 50)) in
    Alcotest.(check (list (pair string int))) "interleaved scan mid-merge" expected got

  let test_model_random_ops () =
    let rng = Xorshift.create 31 in
    let t = H.create ~config:{ small_config with step = 8 } () in
    let model = Hashtbl.create 512 in
    for _ = 1 to 10_000 do
      let k = key (Xorshift.int rng 1_500) in
      match Xorshift.int rng 4 with
      | 0 ->
        let v = Xorshift.int rng 100_000 in
        let a = H.insert_unique t k v and b = not (Hashtbl.mem model k) in
        if a <> b then Alcotest.failf "insert disagreement";
        if b then Hashtbl.replace model k v
      | 1 ->
        let v = Xorshift.int rng 100_000 in
        let a = H.update t k v and b = Hashtbl.mem model k in
        if a <> b then Alcotest.failf "update disagreement";
        if b then Hashtbl.replace model k v
      | 2 ->
        let a = H.delete t k and b = Hashtbl.mem model k in
        if a <> b then Alcotest.failf "delete disagreement";
        Hashtbl.remove model k
      | _ ->
        let a = H.find t k and b = Hashtbl.find_opt model k in
        if a <> b then Alcotest.failf "find disagreement"
    done;
    H.drain t;
    Hashtbl.iter (fun k v -> Alcotest.(check (option int)) "final state" (Some v) (H.find t k)) model

  let test_memory_accounts_frozen () =
    let t = H.create ~config:{ small_config with step = 1 } () in
    for i = 0 to 999 do
      ignore (H.insert_unique t (key i) i)
    done;
    check "memory positive" true (H.memory_bytes t > 0);
    check_int "entry count" 1_000 (H.entry_count t);
    H.drain t;
    check_int "entry count stable after drain" 1_000 (H.entry_count t);
    check_int "dynamic emptied by completed merge" 0
      (if H.merging t then -1 else H.dynamic_entry_count t * 0)

  let suite =
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "merge progress" `Quick test_merge_progress;
      Alcotest.test_case "bounded work per op" `Quick test_bounded_work;
      Alcotest.test_case "reads during merge" `Quick test_reads_during_merge;
      Alcotest.test_case "update mid-merge" `Quick test_update_mid_merge;
      Alcotest.test_case "delete mid-merge" `Quick test_delete_mid_merge;
      Alcotest.test_case "scan mid-merge" `Quick test_scan_mid_merge;
      Alcotest.test_case "random ops vs model" `Quick test_model_random_ops;
      Alcotest.test_case "memory accounts frozen run" `Quick test_memory_accounts_frozen;
    ]
end

module IB = Inc_suite (Incremental.Incremental_btree)
module IS = Inc_suite (Incremental.Incremental_skiplist)
module IM = Inc_suite (Incremental.Incremental_masstree)
module IA = Inc_suite (Incremental.Incremental_art)

(* secondary semantics *)
let test_secondary_concat () =
  let module H = Incremental.Incremental_btree in
  let config = { small_config with kind = Hybrid.Secondary } in
  let t = H.create ~config () in
  H.insert t "k" 1;
  H.force_merge t;
  H.insert t "k" 2;
  Alcotest.(check (list int)) "values across stages" [ 2; 1 ] (H.find_all t "k");
  H.force_merge t;
  Alcotest.(check (list int)) "merged concatenation" [ 1; 2 ] (List.sort compare (H.find_all t "k"))

(* --- pinned regressions distilled by the hi_check shrinker (seed 876183),
   see test_props.ml and DESIGN.md §9 --- *)

let test_reinsert_after_delete_survives_merge () =
  (* [insert k; merge; delete k; insert k; merge]: the tombstone snapshot
     taken at merge start must kill only the stale static value — never the
     reinserted copy frozen into the same merge run *)
  let module H = Incremental.Incremental_btree in
  let t = H.create ~config:small_config () in
  ignore (H.insert_unique t "k" 1);
  H.force_merge t;
  check "delete static" true (H.delete t "k");
  check "reinsert accepted" true (H.insert_unique t "k" 3);
  H.force_merge t;
  Alcotest.(check (option int)) "reinserted value survives the merge" (Some 3) (H.find t "k");
  Alcotest.(check pair_list) "scan agrees" [ ("k", 3) ] (H.scan_from t "" 10);
  check_int "stale copy collected" 1 (H.entry_count t)

let test_scan_max_int_with_tombstone () =
  (* n + over-fetch allowance must saturate, not wrap, for n = max_int *)
  let module H = Incremental.Incremental_btree in
  let t = H.create ~config:small_config () in
  ignore (H.insert_unique t "a" 1);
  ignore (H.insert_unique t "b" 2);
  H.force_merge t;
  check "delete" true (H.delete t "a");
  Alcotest.(check pair_list) "unbounded scan with a tombstone" [ ("b", 2) ]
    (H.scan_from t "" max_int)

let () =
  Alcotest.run "incremental"
    [
      ("incremental-btree", IB.suite);
      ("incremental-skiplist", IS.suite);
      ("incremental-masstree", IM.suite);
      ("incremental-art", IA.suite);
      ("secondary", [ Alcotest.test_case "concat across stages" `Quick test_secondary_concat ]);
      ( "regressions",
        [
          Alcotest.test_case "reinsert after delete survives merge" `Quick
            test_reinsert_after_delete_survives_merge;
          Alcotest.test_case "scan max_int with tombstone" `Quick test_scan_max_int_with_tombstone;
        ] );
    ]
