(* OLAP subsystem tests (DESIGN.md §16).

   Two layers: the pinned-snapshot differential (Olap_check) across index
   families — a snapshot must keep answering its capture-time state while
   writes and forced merges race the pin — and Scan_agg end-to-end through
   the Db facade, where the kv table's plain btree primary index advances
   its generation per write, so every query sees fresh data. *)

open Hi_util
open Hi_server
open Hi_check
open Common

(* -- the snapshot differential across index families ---------------------- *)

let diff_case name index =
  Alcotest.test_case ("differential: " ^ name) `Quick (fun () ->
      let r = Olap_check.run index ~seed:0xA11C ~rounds:10 ~ops_per_round:60 in
      List.iter (fun e -> Printf.printf "  olap_check %s: %s\n" name e) r.Olap_check.errors;
      check_int (name ^ " differential errors") 0 (List.length r.Olap_check.errors);
      check (name ^ " merges raced the pin") true (r.Olap_check.merges_raced > 0);
      check (name ^ " entries compared") true (r.Olap_check.entries_checked > 0))

let incremental_index : Hi_index.Index_intf.index =
  let module C = struct
    let config =
      {
        Hybrid_index.Incremental.default_config with
        trigger = Hybrid_index.Hybrid.Constant 24;
        min_merge_size = 16;
        step = 8;
      }
  end in
  (module Adapters.Of_incremental (Hybrid_index.Incremental.Incremental_btree) (C))

let differential_cases =
  [
    diff_case "btree" (module Hybrid_index.Instances.Btree_index : Hi_index.Index_intf.INDEX);
    diff_case "hybrid-btree" (Hybrid_index.Instances.hybrid_index "btree");
    diff_case "hybrid-compressed-btree" (Hybrid_index.Instances.hybrid_index "compressed-btree");
    diff_case "hybrid-skiplist" (Hybrid_index.Instances.hybrid_index "skiplist");
    diff_case "incremental-btree" incremental_index;
  ]

(* -- Scan_agg through the Db facade --------------------------------------- *)

let with_db ?(partitions = 2) f =
  let db = Db.create ~partitions () in
  Fun.protect ~finally:(fun () -> Db.close db) (fun () -> f db)

let agg ?(fn = Db.Count) ?(lo = "") ?hi ?(group_prefix = 0) db =
  match Db.scan_agg db { fn; lo; hi; group_prefix } with
  | Ok a -> a
  | Error e -> Alcotest.failf "scan_agg failed: %s" (Db.error_to_string e)

let one_group name (a : Db.agg_answer) =
  match a.groups with
  | [ g ] -> g
  | gs -> Alcotest.failf "%s: expected one group, got %d" name (List.length gs)

let test_aggregates () =
  with_db (fun db ->
      for i = 1 to 9 do
        check "put" true (Db.put db (Printf.sprintf "a%d" i) (Db.Int i) = Ok true)
      done;
      check "put str" true (Db.put db "b1" (Db.Str "text") = Ok true);
      check "put float" true (Db.put db "b2" (Db.Float 2.5) = Ok true);
      (* count sees every row, numeric or not *)
      let g = one_group "count" (agg db) in
      check_int "count rows" 11 g.g_count;
      check "count value" true (g.g_value = 11.0);
      (* sum/min/max/avg fold only the numeric rows in range *)
      let g = one_group "sum" (agg ~fn:Db.Sum ~lo:"a1" ~hi:"b" db) in
      check_int "sum group count" 9 g.g_count;
      check "sum 1..9" true (g.g_value = 45.0);
      let g = one_group "avg" (agg ~fn:Db.Avg ~lo:"a1" ~hi:"b" db) in
      check "avg 1..9" true (g.g_value = 5.0);
      let g = one_group "min" (agg ~fn:Db.Min ~lo:"a" db) in
      check "min" true (g.g_value = 1.0);
      let g = one_group "max" (agg ~fn:Db.Max ~lo:"a" db) in
      check "max" true (g.g_value = 9.0);
      (* the str row counts toward g_count but not the numeric fold *)
      let g = one_group "sum all" (agg ~fn:Db.Sum db) in
      check_int "sum all rows" 11 g.g_count;
      check "sum all value" true (g.g_value = 47.5);
      (* range bounds: lo inclusive, hi exclusive *)
      let g = one_group "hi excl" (agg ~lo:"a3" ~hi:"a7" db) in
      check_int "a3..a6" 4 g.g_count)

let test_group_by_prefix () =
  with_db (fun db ->
      List.iter
        (fun (k, v) -> check ("put " ^ k) true (Db.put db k (Db.Int v) = Ok true))
        [ ("ant", 1); ("axe", 2); ("bat", 3); ("bee", 4); ("cat", 5) ];
      match (agg ~fn:Db.Sum ~group_prefix:1 db).groups with
      | [ a; b; c ] ->
        check_string "group a" "a" a.g_key;
        check_int "a count" 2 a.g_count;
        check "a sum" true (a.g_value = 3.0);
        check_string "group b" "b" b.g_key;
        check "b sum" true (b.g_value = 7.0);
        check_string "group c" "c" c.g_key;
        check "c sum" true (c.g_value = 5.0)
      | gs -> Alcotest.failf "expected 3 groups, got %d" (List.length gs))

let test_freshness_and_generation () =
  with_db (fun db ->
      ignore (Db.put db "k1" (Db.Int 1));
      let a1 = agg db in
      check_int "first count" 1 (one_group "g1" a1).g_count;
      ignore (Db.put db "k2" (Db.Int 2));
      ignore (Db.delete db "k1");
      (* the kv table's plain btree advances its generation per write, so
         the next query re-captures and sees the delete *)
      let a2 = agg db in
      check_int "post-write count" 1 (one_group "g2" a2).g_count;
      check "generation advanced" true (a2.generation > a1.generation);
      check "age sane" true (a2.max_age_s >= 0.0 && a2.max_age_s < 60.0);
      check_int "rows scanned" 1 a2.rows_scanned)

let test_empty_and_validation () =
  with_db (fun db ->
      let a = agg db in
      check_int "empty db scans zero rows" 0 a.rows_scanned;
      check "empty db has no groups" true (a.groups = []);
      let is_bad = function Error (Db.Bad_request _) -> true | _ -> false in
      let long = String.make (Db.max_key_len + 1) 'x' in
      check "long lo rejected" true
        (is_bad (Db.scan_agg db { fn = Count; lo = long; hi = None; group_prefix = 0 }));
      check "long hi rejected" true
        (is_bad (Db.scan_agg db { fn = Count; lo = ""; hi = Some long; group_prefix = 0 }));
      check "oversized prefix rejected" true
        (is_bad
           (Db.scan_agg db
              { fn = Count; lo = ""; hi = None; group_prefix = Db.max_key_len + 1 })))

let test_many_partitions_merge () =
  with_db ~partitions:4 (fun db ->
      for i = 0 to 99 do
        ignore (Db.put db (Printf.sprintf "p%02d" i) (Db.Int i))
      done;
      let g = one_group "sum" (agg ~fn:Db.Sum db) in
      check_int "all partitions counted" 100 g.g_count;
      check "cross-partition sum" true (g.g_value = 4950.0);
      (* grouped: ten prefixes p0..p9, each summing its decade *)
      match (agg ~fn:Db.Count ~group_prefix:2 db).groups with
      | gs ->
        check_int "ten decades" 10 (List.length gs);
        List.iter (fun (g : Db.agg_group) -> check_int ("decade " ^ g.g_key) 10 g.g_count) gs)

let test_metrics_surface () =
  with_db (fun db ->
      ignore (Db.put db "m1" (Db.Int 7));
      ignore (agg db);
      let s = Metrics.scope "olap" in
      (match Metrics.find_counter s "scans_served" with
      | Some n -> check "scans_served counted" true (n > 0)
      | None -> Alcotest.fail "olap/scans_served metric missing");
      match Metrics.find_counter s "snapshot_captures" with
      | Some n -> check "captures counted" true (n > 0)
      | None -> Alcotest.fail "olap/snapshot_captures metric missing")

let () =
  Alcotest.run "olap"
    [
      ("differential", differential_cases);
      ( "scan_agg",
        [
          Alcotest.test_case "aggregate functions" `Quick test_aggregates;
          Alcotest.test_case "group by prefix" `Quick test_group_by_prefix;
          Alcotest.test_case "freshness and generation" `Quick test_freshness_and_generation;
          Alcotest.test_case "empty db and validation" `Quick test_empty_and_validation;
          Alcotest.test_case "cross-partition merge" `Quick test_many_partitions_merge;
          Alcotest.test_case "metrics surface" `Quick test_metrics_surface;
        ] );
    ]
