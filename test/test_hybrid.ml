(* Tests for the dual-stage hybrid index (paper §3, §5): stage interplay,
   Bloom filter, merge triggers and strategies, tombstones, primary vs
   secondary semantics — checked for all five hybrid instantiations. *)

open Hi_util
open Hybrid_index

open Common

let small_config =
  (* tiny merge floor so tests exercise merges without bulk data *)
  { Hybrid.default_config with min_merge_size = 16 }

module Hybrid_suite (H : Hybrid.S) = struct
  let create ?(config = small_config) () = H.create ~config ()

  let test_basic () =
    let t = create () in
    check "insert" true (H.insert_unique t "a" 1);
    Alcotest.(check (option int)) "find" (Some 1) (H.find t "a");
    check "duplicate insert rejected" false (H.insert_unique t "a" 2);
    Alcotest.(check (option int)) "value unchanged" (Some 1) (H.find t "a")

  let test_merge_moves_entries () =
    let t = create () in
    for i = 0 to 99 do
      ignore (H.insert_unique t (Key_codec.encode_int i) i)
    done;
    H.force_merge t;
    check_int "dynamic empty after merge" 0 (H.dynamic_entry_count t);
    check_int "static holds everything" 100 (H.static_entry_count t);
    for i = 0 to 99 do
      Alcotest.(check (option int)) "readable after merge" (Some i) (H.find t (Key_codec.encode_int i))
    done;
    check "at least one merge ran" true ((H.stats t).merges >= 1)

  let test_uniqueness_across_stages () =
    let t = create () in
    ignore (H.insert_unique t "k" 1);
    H.force_merge t;
    (* key now lives in the static stage *)
    check "duplicate rejected across stages" false (H.insert_unique t "k" 2);
    Alcotest.(check (option int)) "static value intact" (Some 1) (H.find t "k")

  let test_primary_update_overwrites_static () =
    let t = create () in
    ignore (H.insert_unique t "k" 1);
    H.force_merge t;
    check "update hits static key" true (H.update t "k" 42);
    Alcotest.(check (option int)) "new value read first" (Some 42) (H.find t "k");
    check_int "overwrite buffered in dynamic stage" 1 (H.dynamic_entry_count t);
    (* after the next merge the stale static entry is garbage-collected *)
    H.force_merge t;
    Alcotest.(check (option int)) "survives merge" (Some 42) (H.find t "k");
    check_int "exactly one entry remains" 1 (H.static_entry_count t)

  let test_update_missing () =
    let t = create () in
    check "update of absent key fails" false (H.update t "ghost" 1)

  let test_delete_dynamic () =
    let t = create () in
    ignore (H.insert_unique t "k" 1);
    check "delete" true (H.delete t "k");
    check "gone" false (H.mem t "k");
    check "re-insert allowed" true (H.insert_unique t "k" 2)

  let test_delete_static_tombstone () =
    let t = create () in
    ignore (H.insert_unique t "k" 1);
    ignore (H.insert_unique t "m" 2);
    H.force_merge t;
    check "delete static key" true (H.delete t "k");
    check "tombstone hides key" false (H.mem t "k");
    Alcotest.(check (option int)) "other key fine" (Some 2) (H.find t "m");
    check "double delete fails" false (H.delete t "k");
    (* the merge collects the tombstone *)
    H.force_merge t;
    check "still gone after merge" false (H.mem t "k");
    check_int "physically removed" 1 (H.static_entry_count t);
    check "re-insert after tombstone" true (H.insert_unique t "k" 3);
    Alcotest.(check (option int)) "new value" (Some 3) (H.find t "k")

  let test_scan_across_stages () =
    let t = create () in
    (* even keys to static, odd keys stay dynamic *)
    for i = 0 to 9 do
      ignore (H.insert_unique t (Printf.sprintf "k%02d" (2 * i)) (2 * i))
    done;
    H.force_merge t;
    for i = 0 to 9 do
      ignore (H.insert_unique t (Printf.sprintf "k%02d" ((2 * i) + 1)) ((2 * i) + 1))
    done;
    let got = H.scan_from t "k05" 6 in
    Alcotest.(check pair_list)
      "interleaved scan"
      (List.init 6 (fun i -> (Printf.sprintf "k%02d" (i + 5), i + 5)))
      got

  let test_scan_sees_overwrite_once () =
    let t = create () in
    ignore (H.insert_unique t "a" 1);
    ignore (H.insert_unique t "b" 2);
    H.force_merge t;
    ignore (H.update t "b" 20);
    let got = H.scan_from t "a" 10 in
    Alcotest.(check pair_list) "overwritten key appears once" [ ("a", 1); ("b", 20) ] got

  let test_scan_skips_tombstones () =
    let t = create () in
    List.iter (fun k -> ignore (H.insert_unique t k 0)) [ "a"; "b"; "c"; "d" ];
    H.force_merge t;
    ignore (H.delete t "b");
    let got = List.map fst (H.scan_from t "a" 10) in
    Alcotest.(check (list string)) "tombstoned key skipped" [ "a"; "c"; "d" ] got

  let test_ratio_trigger () =
    let config = { small_config with trigger = Hybrid.Ratio 10; min_merge_size = 32 } in
    let t = create ~config () in
    for i = 0 to 9_999 do
      ignore (H.insert_unique t (Key_codec.encode_int i) i)
    done;
    let s = H.stats t in
    check "ratio trigger fired" true (s.merges > 0);
    (* the dynamic stage stays roughly a tenth of the static stage *)
    check
      (Printf.sprintf "dynamic %d bounded by static %d" (H.dynamic_entry_count t) (H.static_entry_count t))
      true
      (H.dynamic_entry_count t <= max 64 (H.static_entry_count t / 10 * 2))

  let test_constant_trigger () =
    let config = { small_config with trigger = Hybrid.Constant 100 } in
    let t = create ~config () in
    for i = 0 to 999 do
      ignore (H.insert_unique t (Key_codec.encode_int i) i)
    done;
    let s = H.stats t in
    check (Printf.sprintf "%d merges with constant trigger" s.merges) true (s.merges >= 8);
    check "dynamic bounded by constant" true (H.dynamic_entry_count t <= 100)

  let test_merge_all_empties_dynamic () =
    let config = { small_config with strategy = Hybrid.Merge_all } in
    let t = create ~config () in
    for i = 0 to 199 do
      ignore (H.insert_unique t (Key_codec.encode_int i) i)
    done;
    H.force_merge t;
    check_int "merge-all leaves nothing behind" 0 (H.dynamic_entry_count t)

  let test_merge_cold_keeps_hot () =
    let config = { small_config with strategy = Hybrid.Merge_cold } in
    let t = create ~config () in
    for i = 0 to 199 do
      ignore (H.insert_unique t (Key_codec.encode_int i) i)
    done;
    (* touch a hot subset after all the inserts *)
    for i = 150 to 199 do
      ignore (H.find t (Key_codec.encode_int i))
    done;
    H.force_merge t;
    check "merge-cold retains recently accessed keys" true (H.dynamic_entry_count t > 0);
    check "merge-cold migrated the cold keys" true (H.static_entry_count t > 0);
    (* everything still readable *)
    for i = 0 to 199 do
      Alcotest.(check (option int)) "readable" (Some i) (H.find t (Key_codec.encode_int i))
    done

  let test_bloom_skips () =
    let config = { small_config with use_bloom = true } in
    let t = create ~config () in
    for i = 0 to 499 do
      ignore (H.insert_unique t (Key_codec.encode_int i) i)
    done;
    H.force_merge t;
    (* all keys are static now: every lookup should skip the dynamic stage *)
    for i = 0 to 499 do
      ignore (H.find t (Key_codec.encode_int i))
    done;
    let s = H.stats t in
    check (Printf.sprintf "%d bloom skips" s.bloom_negative_skips) true (s.bloom_negative_skips >= 450)

  let test_without_bloom_still_correct () =
    let config = { small_config with use_bloom = false } in
    let t = create ~config () in
    for i = 0 to 499 do
      ignore (H.insert_unique t (Key_codec.encode_int i) i)
    done;
    H.force_merge t;
    for i = 0 to 499 do
      Alcotest.(check (option int)) "found" (Some i) (H.find t (Key_codec.encode_int i))
    done

  let test_memory_breakdown () =
    let t = create () in
    for i = 0 to 999 do
      ignore (H.insert_unique t (Key_codec.encode_int i) i)
    done;
    H.force_merge t;
    check "static memory dominates after merge" true (H.static_memory_bytes t > H.dynamic_memory_bytes t);
    check_int "total = dyn + static + bloom" (H.memory_bytes t)
      (H.dynamic_memory_bytes t + H.static_memory_bytes t + H.bloom_memory_bytes t)

  let test_iter_sorted_both_stages () =
    let t = create () in
    List.iter (fun k -> ignore (H.insert_unique t k 0)) [ "b"; "d" ];
    H.force_merge t;
    List.iter (fun k -> ignore (H.insert_unique t k 1)) [ "a"; "c"; "e" ];
    let keys = ref [] in
    H.iter_sorted t (fun k _ -> keys := k :: !keys);
    Alcotest.(check (list string)) "interleaved sorted" [ "a"; "b"; "c"; "d"; "e" ] (List.rev !keys)

  let suite =
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "merge moves entries" `Quick test_merge_moves_entries;
      Alcotest.test_case "uniqueness across stages" `Quick test_uniqueness_across_stages;
      Alcotest.test_case "primary update overwrites static" `Quick test_primary_update_overwrites_static;
      Alcotest.test_case "update missing" `Quick test_update_missing;
      Alcotest.test_case "delete dynamic" `Quick test_delete_dynamic;
      Alcotest.test_case "delete static tombstone" `Quick test_delete_static_tombstone;
      Alcotest.test_case "scan across stages" `Quick test_scan_across_stages;
      Alcotest.test_case "scan sees overwrite once" `Quick test_scan_sees_overwrite_once;
      Alcotest.test_case "scan skips tombstones" `Quick test_scan_skips_tombstones;
      Alcotest.test_case "ratio trigger" `Quick test_ratio_trigger;
      Alcotest.test_case "constant trigger" `Quick test_constant_trigger;
      Alcotest.test_case "merge-all empties dynamic" `Quick test_merge_all_empties_dynamic;
      Alcotest.test_case "merge-cold keeps hot" `Quick test_merge_cold_keeps_hot;
      Alcotest.test_case "bloom filter skips dynamic stage" `Quick test_bloom_skips;
      Alcotest.test_case "correct without bloom" `Quick test_without_bloom_still_correct;
      Alcotest.test_case "memory breakdown" `Quick test_memory_breakdown;
      Alcotest.test_case "iter sorted both stages" `Quick test_iter_sorted_both_stages;
    ]
end

module HB = Hybrid_suite (Instances.Hybrid_btree)
module HS = Hybrid_suite (Instances.Hybrid_skiplist)
module HM = Hybrid_suite (Instances.Hybrid_masstree)
module HA = Hybrid_suite (Instances.Hybrid_art)
module HZ = Hybrid_suite (Instances.Hybrid_compressed_btree)

(* --- secondary-index semantics (paper §3, Appendix E) --- *)

module H = Instances.Hybrid_btree

let secondary_config = { small_config with kind = Hybrid.Secondary }

let test_secondary_multi_values () =
  let t = H.create ~config:secondary_config () in
  H.insert t "k" 1;
  H.insert t "k" 2;
  H.force_merge t;
  H.insert t "k" 3;
  Alcotest.(check (list int)) "values from both stages" [ 3; 1; 2 ] (H.find_all t "k")

let test_secondary_update_in_place () =
  let t = H.create ~config:secondary_config () in
  H.insert t "k" 1;
  H.force_merge t;
  (* §3: secondary updates happen in place even in the static stage, so the
     key is not duplicated into the dynamic stage *)
  check "update in static" true (H.update t "k" 9);
  check_int "no dynamic entry created" 0 (H.dynamic_entry_count t);
  Alcotest.(check (list int)) "updated in place" [ 9 ] (H.find_all t "k")

let test_secondary_delete_value_static () =
  let t = H.create ~config:secondary_config () in
  H.insert t "k" 1;
  H.insert t "k" 2;
  H.insert t "k" 3;
  H.force_merge t;
  check "delete one value" true (H.delete_value t "k" 2);
  Alcotest.(check (list int)) "survivors" [ 1; 3 ] (List.sort compare (H.find_all t "k"));
  check "delete absent value" false (H.delete_value t "k" 99)

let test_secondary_merge_concatenates () =
  let t = H.create ~config:secondary_config () in
  H.insert t "k" 1;
  H.force_merge t;
  H.insert t "k" 2;
  H.force_merge t;
  Alcotest.(check (list int)) "merged value list" [ 1; 2 ] (List.sort compare (H.find_all t "k"))

(* --- pinned regressions distilled by the hi_check shrinker (seed 876183),
   see test_props.ml and DESIGN.md §9 --- *)

let test_secondary_reinsert_after_delete () =
  (* [insert k; merge; delete k; insert k]: the tombstone must keep
     masking the dead static value without hiding the reinserted copy,
     and the next merge must keep the batch copy while collecting the
     stale one *)
  let t = H.create ~config:secondary_config () in
  H.insert t "k" 4;
  H.force_merge t;
  check "delete static values" true (H.delete t "k");
  H.insert t "k" 2;
  Alcotest.(check (list int)) "only the reinserted value" [ 2 ] (H.find_all t "k");
  Alcotest.(check pair_list) "scan agrees" [ ("k", 2) ] (H.scan_from t "" 10);
  H.force_merge t;
  Alcotest.(check (list int)) "survives tombstone collection" [ 2 ] (H.find_all t "k");
  check_int "stale static copy collected" 1 (H.static_entry_count t)

let test_secondary_scan_masked_multivalue () =
  (* a tombstoned key masking several static values must not make scans
     under-fetch: the static over-fetch allowance counts masked values,
     not masked keys *)
  let t = H.create ~config:secondary_config () in
  for v = 1 to 6 do
    H.insert t "a" v
  done;
  H.insert t "b" 10;
  H.insert t "c" 11;
  H.force_merge t;
  check "delete all of a" true (H.delete t "a");
  Alcotest.(check pair_list) "scan fills its budget past the masked key" [ ("b", 10); ("c", 11) ]
    (H.scan_from t "" 2)

let test_scan_max_int_with_tombstone () =
  (* n + over-fetch allowance must saturate, not wrap, for n = max_int *)
  let t = H.create ~config:small_config () in
  ignore (H.insert_unique t "a" 1);
  ignore (H.insert_unique t "b" 2);
  H.force_merge t;
  check "delete" true (H.delete t "a");
  Alcotest.(check pair_list) "unbounded scan with a tombstone" [ ("b", 2) ] (H.scan_from t "" max_int)

let test_merge_cold_collects_overwritten_key () =
  (* under Merge_cold a key overwritten in the dynamic stage must be merged
     even while hot, else the stale static copy is never collected *)
  let config = { small_config with strategy = Hybrid.Merge_cold } in
  let t = H.create ~config () in
  for i = 0 to 23 do
    ignore (H.insert_unique t (Key_codec.encode_int i) i)
  done;
  H.force_merge t;
  check "update merged key" true (H.update t (Key_codec.encode_int 3) 99);
  (* keep the overwrite hot so access recency alone would retain it *)
  for _ = 1 to 50 do
    ignore (H.find t (Key_codec.encode_int 3))
  done;
  H.force_merge t;
  Alcotest.(check (option int)) "new value served" (Some 99) (H.find t (Key_codec.encode_int 3));
  Alcotest.(check (list string)) "invariants clean" [] (H.check_invariants t);
  check_int "exactly one copy of the key" 24 (H.entry_count t)

let test_merge_cold_tombstone_only_merge () =
  (* delete a static-resident key, then force a merge while the dynamic
     stage is empty under Merge_cold: the tombstone must be collected
     through the static merge, not silently dropped — dropping it
     resurrected the deleted key *)
  let config = { small_config with strategy = Hybrid.Merge_cold } in
  let t = H.create ~config () in
  for i = 0 to 7 do
    ignore (H.insert_unique t (Key_codec.encode_int i) i)
  done;
  (* merge-cold keeps hot keys behind, so merge until the stage drains *)
  while H.dynamic_entry_count t > 0 do
    H.force_merge t
  done;
  check_int "all keys static" 8 (H.static_entry_count t);
  check "delete static key" true (H.delete t (Key_codec.encode_int 3));
  check_int "dynamic stage empty" 0 (H.dynamic_entry_count t);
  let merges_before = (H.stats t).merges in
  H.force_merge t;
  (* a tombstone-only merge did real work, so it is recorded *)
  check "tombstone-only merge recorded" true ((H.stats t).merges > merges_before);
  Alcotest.(check (option int)) "deleted key stays gone" None (H.find t (Key_codec.encode_int 3));
  check "mem agrees" false (H.mem t (Key_codec.encode_int 3));
  Alcotest.(check (list string)) "invariants clean" [] (H.check_invariants t);
  check_int "tombstoned key physically removed" 7 (H.static_entry_count t);
  (* a force_merge with no work at all must not count as a merge *)
  let merges_before = (H.stats t).merges in
  H.force_merge t;
  check_int "no-op force_merge not recorded" merges_before (H.stats t).merges

let test_bloom_fpr_stays_bounded () =
  (* at merge time the bloom filter is rebuilt sized for an empty dynamic
     stage (min_merge_size keys); under Ratio 10 the stage then grows to
     ~static/10 entries and the undersized filter used to saturate,
     driving the measured false-positive rate towards 1.  The filter must
     grow with the stage, keeping the measured FPR near the configured
     target. *)
  let config =
    { Hybrid.default_config with trigger = Hybrid.Ratio 10; min_merge_size = 64; bloom_fpr = 0.01 }
  in
  let t = H.create ~config () in
  for i = 0 to 21_999 do
    ignore (H.insert_unique t (Key_codec.encode_int i) i)
  done;
  (* probe absent keys: every bloom-positive that the dynamic stage then
     refutes is a measured false positive *)
  for i = 0 to 1_999 do
    ignore (H.find t (Key_codec.encode_int (100_000 + i)))
  done;
  let s = H.stats t in
  check "bloom rebuilt as the stage outgrew it" true (s.bloom_rebuilds > 0);
  check
    (Printf.sprintf "measured FPR %.4f within 2x the configured 0.01" s.bloom_measured_fpr)
    true
    (s.bloom_measured_fpr <= 0.02)

(* --- model-based end-to-end check: hybrid behaves like one big map --- *)

let test_hybrid_model () =
  let rng = Xorshift.create 123 in
  let config = { small_config with trigger = Hybrid.Constant 64 } in
  let t = H.create ~config () in
  let model = Hashtbl.create 1024 in
  for _ = 1 to 20_000 do
    let k = Printf.sprintf "key%04d" (Xorshift.int rng 3_000) in
    match Xorshift.int rng 4 with
    | 0 ->
      let v = Xorshift.int rng 1_000_000 in
      let a = H.insert_unique t k v in
      let b = not (Hashtbl.mem model k) in
      if a <> b then Alcotest.failf "insert_unique disagreement on %s" k;
      if b then Hashtbl.replace model k v
    | 1 ->
      let v = Xorshift.int rng 1_000_000 in
      let a = H.update t k v in
      let b = Hashtbl.mem model k in
      if a <> b then Alcotest.failf "update disagreement on %s" k;
      if b then Hashtbl.replace model k v
    | 2 ->
      let a = H.delete t k in
      let b = Hashtbl.mem model k in
      if a <> b then Alcotest.failf "delete disagreement on %s" k;
      Hashtbl.remove model k
    | _ ->
      let a = H.find t k in
      let b = Hashtbl.find_opt model k in
      if a <> b then Alcotest.failf "find disagreement on %s: %s vs %s" k
          (match a with Some v -> string_of_int v | None -> "none")
          (match b with Some v -> string_of_int v | None -> "none")
  done;
  (* final sweep *)
  Hashtbl.iter
    (fun k v -> Alcotest.(check (option int)) ("final " ^ k) (Some v) (H.find t k))
    model;
  check_int "entry count" (Hashtbl.length model)
    (let n = ref 0 in
     H.iter_sorted t (fun _ _ -> incr n);
     !n)

let () =
  Alcotest.run "hybrid"
    [
      ("hybrid-btree", HB.suite);
      ("hybrid-skiplist", HS.suite);
      ("hybrid-masstree", HM.suite);
      ("hybrid-art", HA.suite);
      ("hybrid-compressed-btree", HZ.suite);
      ( "secondary",
        [
          Alcotest.test_case "multi values across stages" `Quick test_secondary_multi_values;
          Alcotest.test_case "update in place in static" `Quick test_secondary_update_in_place;
          Alcotest.test_case "delete value from static" `Quick test_secondary_delete_value_static;
          Alcotest.test_case "merge concatenates" `Quick test_secondary_merge_concatenates;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "reinsert after delete" `Quick test_secondary_reinsert_after_delete;
          Alcotest.test_case "scan past masked multi-value key" `Quick
            test_secondary_scan_masked_multivalue;
          Alcotest.test_case "scan max_int with tombstone" `Quick test_scan_max_int_with_tombstone;
          Alcotest.test_case "merge-cold collects overwritten key" `Quick
            test_merge_cold_collects_overwritten_key;
          Alcotest.test_case "merge-cold tombstone-only merge" `Quick
            test_merge_cold_tombstone_only_merge;
          Alcotest.test_case "bloom FPR stays bounded past merge sizing" `Quick
            test_bloom_fpr_stays_bounded;
        ] );
      ("model", [ Alcotest.test_case "hybrid behaves like a map" `Slow test_hybrid_model ]);
    ]
